(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the ablations called out in DESIGN.md, then runs
   Bechamel micro-benchmarks of the core algorithms.

     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- table1 fig2
                                           -- run selected sections

   Sections: fig1 fig2 fig3_4 fig3_physical table1 table1_pipeline
             table1_delay variation table2 wires phase wpla yield
             yield_columns waveform cascade factored mapping fsm exact_gap
             ablation_crossover ablation_shrink ablation_tracks
             ablation_sharing parallel espresso micro

   The --quick flag shortens the espresso section's measurement windows
   (the CI smoke mode: dune exec bench/main.exe -- --quick espresso).
   --trace FILE records tracing spans across the selected sections and
   writes them as Chrome trace-event JSON (chrome://tracing, Perfetto).
   --run-out DIR makes the measured sections (parallel, espresso) emit
   Assess.Run artifacts for `cnfet_tool bench-ab`; --repeats N samples
   each of those sections N times into the run's metric series. *)

let section name description =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" name description;
  Printf.printf "================================================================\n%!"

(* --- Fig. 1: ambipolar device — polarity vs PG voltage ------------------------- *)

let run_fig1 () =
  section "fig1" "Ambipolar CNFET: the three states and the V-shaped transfer curve";
  let p = Device.Ambipolar.default in
  let t = Util.Tableau.create [ "V_PG (V)"; "state"; "|I_D| (A) @ CG=VDD" ] in
  List.iter
    (fun (vpg, i) ->
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.2f" vpg;
          Device.Ambipolar.polarity_to_string (Device.Ambipolar.polarity_of_pg p vpg);
          Printf.sprintf "%.2e" i;
        ])
    (Device.Ambipolar.transfer_curve p ~cg:p.Device.Ambipolar.vdd ~vds:p.Device.Ambipolar.vdd
       ~n:13);
  Util.Tableau.print t;
  print_endline
    "Shape check: conduction at both PG extremes (p- and n-branch), an\n\
     always-off valley at V0 = VDD/2 - the reconfigurable-polarity mechanism\n\
     of the paper's Fig. 1."

(* --- Fig. 2: the configured GNOR gate ------------------------------------------ *)

let run_fig2 () =
  section "fig2" "GNOR gate configured as Y = NOR(A, B', D), input C dropped";
  let modes = [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert; Cnfet.Gnor.Drop; Cnfet.Gnor.Pass |] in
  let t = Util.Tableau.create [ "A"; "B"; "C"; "D"; "Y (switch-level)"; "Y (expected)" ] in
  let mismatches = ref 0 in
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    let y = Cnfet.Gnor.simulate modes inputs in
    let expect = not (inputs.(0) || not inputs.(1) || inputs.(3)) in
    if y <> expect then incr mismatches;
    Util.Tableau.add_row t
      (List.map string_of_int
         [
           Bool.to_int inputs.(0);
           Bool.to_int inputs.(1);
           Bool.to_int inputs.(2);
           Bool.to_int inputs.(3);
           Bool.to_int y;
           Bool.to_int expect;
         ])
  done;
  Util.Tableau.print t;
  Printf.printf
    "Pre-charge/evaluate switch-level simulation vs the caption's function: %s\n"
    (if !mismatches = 0 then "all 16 patterns match"
     else Printf.sprintf "%d MISMATCHES" !mismatches)

(* --- Fig. 3/4: PLA planes, programming protocol, crossbar ----------------------- *)

let run_fig3_4 () =
  section "fig3_4" "GNOR-plane PLA with per-crosspoint programming and crossbar interconnect";
  let f =
    Logic.Expr.to_cover_multi ~n_in:4
      [
        Logic.Expr.(v 0 && v 1 || (not_ (v 2) && v 3));
        Logic.Expr.(v 1 && not_ (v 3));
      ]
  in
  let pla = Cnfet.Pla.of_minimized f in
  Printf.printf "function mapped: 4 inputs -> %d product rows -> 2 outputs\n"
    (Cnfet.Pla.num_products pla);
  Printf.printf "AND plane: %d x %d (ONE column per input)\nOR plane: %d x %d\n"
    (Cnfet.Plane.rows (Cnfet.Pla.and_plane pla))
    (Cnfet.Plane.cols (Cnfet.Pla.and_plane pla))
    (Cnfet.Plane.rows (Cnfet.Pla.or_plane pla))
    (Cnfet.Plane.cols (Cnfet.Pla.or_plane pla));
  let plane = Cnfet.Pla.and_plane pla in
  let prog =
    Cnfet.Program.create ~rows:(Cnfet.Plane.rows plane) ~cols:(Cnfet.Plane.cols plane) ()
  in
  Cnfet.Program.program_plane prog plane;
  Printf.printf "programming: %d write steps (1 per crosspoint), readback verified: %b\n"
    (Cnfet.Program.steps prog)
    (Cnfet.Program.verify prog plane);
  let x = Cnfet.Crossbar.create ~rows:4 ~cols:4 in
  Cnfet.Crossbar.connect x ~row:0 ~col:2;
  Cnfet.Crossbar.connect x ~row:1 ~col:0;
  Cnfet.Crossbar.connect x ~row:3 ~col:1;
  Printf.printf "crossbar 4x4: %d of 16 crosspoints programmed (PG=V+), %d wire groups\n"
    (Cnfet.Crossbar.programmed_count x)
    (List.length (Cnfet.Crossbar.components x));
  let hw = Cnfet.Pla.build_hw pla in
  let ok = ref true in
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    if Cnfet.Pla.simulate_hw hw inputs <> Cnfet.Pla.eval pla inputs then ok := false
  done;
  Printf.printf "three-phase switch-level cascade == functional model on all 16 patterns: %b\n"
    !ok

(* --- Fig. 3 at device level: the programming select network --------------------------- *)

let run_fig3_physical () =
  section "fig3_physical"
    "Extension: the VSelR/VSelC/VPG select network simulated at device level";
  let hw = Cnfet.Program_hw.build ~rows:4 ~cols:4 () in
  Cnfet.Program_hw.write_mode hw ~row:1 ~col:2 Cnfet.Gnor.Pass;
  let t = Util.Tableau.create [ "cell"; "role"; "stored (V)"; "decodes as" ] in
  let p = Device.Ambipolar.default in
  List.iter
    (fun ((r, c), role) ->
      let v = Cnfet.Program_hw.stored_voltage hw ~row:r ~col:c in
      Util.Tableau.add_row t
        [
          Printf.sprintf "(%d,%d)" r c;
          role;
          Printf.sprintf "%.3f" v;
          Cnfet.Gnor.mode_to_string
            (Cnfet.Gnor.mode_of_polarity (Device.Ambipolar.polarity_of_pg p v));
        ])
    [
      ((1, 2), "selected (written n-type)");
      ((1, 0), "half-selected, same row");
      ((3, 2), "half-selected, same column");
      ((0, 0), "unselected");
    ];
  Util.Tableau.print t;
  let plane = Cnfet.Plane.create ~rows:4 ~cols:4 in
  let rng = Util.Rng.create 8 in
  Cnfet.Plane.iter
    (fun r c _ ->
      let m =
        match Util.Rng.int rng 3 with
        | 0 -> Cnfet.Gnor.Pass
        | 1 -> Cnfet.Gnor.Invert
        | _ -> Cnfet.Gnor.Drop
      in
      Cnfet.Plane.set_mode plane ~row:r ~col:c m)
    plane;
  let hw2 = Cnfet.Program_hw.build ~rows:4 ~cols:4 () in
  Cnfet.Program_hw.program_plane hw2 plane;
  Printf.printf
    "\nfull 4x4 plane programmed through the transient solver (%d access\n\
     devices, one equalize+write cycle per crosspoint): readback verified = %b\n"
    (Cnfet.Program_hw.device_count hw2)
    (Cnfet.Program_hw.verify hw2 plane);
  print_endline
    "Word-line boosting delivers full VDD through the n-pass chain; the\n\
     equalization phase bounds row-mate charge-sharing disturb."

(* --- Table 1 --------------------------------------------------------------------- *)

let paper_cnfet_areas = [ ("max46", 27600); ("apla", 33000); ("t2", 102960) ]

let table1_rows profiles =
  let t = Util.Tableau.create [ ""; "Flash"; "EEPROM"; "CNFET"; "paper (CNFET)" ] in
  Util.Tableau.add_row t [ "Basic cell (L^2)"; "40"; "100"; "60"; "60" ];
  Util.Tableau.add_rule t;
  List.iter
    (fun (name, p) ->
      let area tech = Cnfet.Area.pla_area tech p in
      let base_name =
        if String.length name > 0 && name.[String.length name - 1] = '*' then
          String.sub name 0 (String.length name - 1)
        else name
      in
      Util.Tableau.add_row t
        [
          name ^ " (L^2)";
          Util.Tableau.cell_int (area Device.Tech.flash);
          Util.Tableau.cell_int (area Device.Tech.eeprom);
          Util.Tableau.cell_int (area Device.Tech.cnfet);
          (match List.assoc_opt base_name paper_cnfet_areas with
          | Some a -> Util.Tableau.cell_int a
          | None -> "-");
        ])
    profiles;
  Util.Tableau.print t

let run_table1 () =
  section "table1" "Area of logic functions in 3 technologies (recorded MCNC profiles)";
  table1_rows
    (List.map
       (fun p ->
         ( p.Mcnc.Profiles.name,
           {
             Cnfet.Area.n_in = p.Mcnc.Profiles.n_in;
             n_out = p.Mcnc.Profiles.n_out;
             n_products = p.Mcnc.Profiles.n_products;
           } ))
       Mcnc.Profiles.table1);
  let max46 = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 } in
  let apla = { Cnfet.Area.n_in = 10; n_out = 12; n_products = 25 } in
  Printf.printf
    "\nClaims: CNFET saves %.0f%% vs Flash on max46 (paper: ~21%%); overhead %.0f%%\n\
     on apla (paper: 3%%); CNFET always beats EEPROM (up to %.0f%% smaller).\n"
    (100.0 *. Cnfet.Area.cnfet_saving_vs Device.Tech.flash max46)
    (-100.0 *. Cnfet.Area.cnfet_saving_vs Device.Tech.flash apla)
    (100.0 *. Cnfet.Area.cnfet_saving_vs Device.Tech.eeprom max46)

let run_table1_pipeline () =
  section "table1_pipeline"
    "Table 1 through the full pipeline (synthetic twins: generate -> espresso -> map -> measure)";
  let rng = Util.Rng.create 2008 in
  (* The same staged vocabulary the population sweep drives
     (lib/sweep): each Table-1 twin runs generate -> profile as a
     [Sweep.Stage] pipeline, so its per-stage spans land in the bench
     trace alongside the sweep's. *)
  let pipeline =
    Sweep.Stage.(
      stage "bench.generate" (fun profile -> Mcnc.Synthetic.with_profile rng profile)
      >>> stage "bench.profile" (fun r ->
              (r, Cnfet.Area.profile_of_cover r.Mcnc.Synthetic.minimized)))
  in
  let results =
    List.map (fun p -> Sweep.Stage.exec_exn pipeline p) [ Mcnc.Profiles.max46; Mcnc.Profiles.apla; Mcnc.Profiles.t2 ]
  in
  table1_rows
    (List.map
       (fun (r, prof) -> (r.Mcnc.Synthetic.profile.Mcnc.Profiles.name ^ "*", prof))
       results);
  List.iter
    (fun (r, _) ->
      Printf.printf "%s*: target %d products, pipeline measured %d\n"
        r.Mcnc.Synthetic.profile.Mcnc.Profiles.name
        r.Mcnc.Synthetic.profile.Mcnc.Profiles.n_products r.Mcnc.Synthetic.achieved_products)
    results

let run_table1_delay () =
  section "table1_delay"
    "Extension: PLA evaluation delay and energy in the three technologies";
  let t =
    Util.Tableau.create
      [ "function"; "technology"; "delay (ps)"; "max freq (MHz)"; "energy/eval (fJ)" ]
  in
  List.iter
    (fun prof ->
      let p =
        {
          Cnfet.Area.n_in = prof.Mcnc.Profiles.n_in;
          n_out = prof.Mcnc.Profiles.n_out;
          n_products = prof.Mcnc.Profiles.n_products;
        }
      in
      List.iter
        (fun (fam, r) ->
          Util.Tableau.add_row t
            [
              prof.Mcnc.Profiles.name;
              Device.Tech.name fam;
              Printf.sprintf "%.0f" (r.Cnfet.Pla_timing.total_delay *. 1e12);
              Printf.sprintf "%.0f" (r.Cnfet.Pla_timing.max_frequency /. 1e6);
              Printf.sprintf "%.1f" (r.Cnfet.Pla_timing.energy_per_eval *. 1e15);
            ])
        (Cnfet.Pla_timing.compare_table1 p);
      Util.Tableau.add_rule t)
    Mcnc.Profiles.table1;
  Util.Tableau.print t;
  print_endline
    "Finding: intra-PLA delay is dominated by the product-line (bit-line)\n\
     length, where the CNFET's bigger basic cell partly offsets its halved\n\
     column count - CNFET sits between Flash and EEPROM on delay but wins\n\
     on energy (fewest, shortest switched lines). The system-level speedup\n\
     of Table 2 comes from routing, not from inside the PLA."

(* --- waveform: transient view of Fig. 2 --------------------------------------------- *)

let run_waveform () =
  section "waveform" "Transient (nodal) simulation of the GNOR pre-charge/evaluate cycle";
  let nl = Circuit.Netlist.create () in
  let clk = Circuit.Netlist.add_net nl "clk" in
  let a = Circuit.Netlist.add_net nl "a" in
  let b = Circuit.Netlist.add_net nl "b" in
  let g = Cnfet.Gnor.build nl ~name:"g" ~clock:clk ~inputs:[| a; b |] in
  Cnfet.Gnor.configure nl g [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert |];
  let tr = Circuit.Transient.create nl in
  let y = Cnfet.Gnor.output g in
  Circuit.Transient.record tr y;
  Circuit.Transient.drive tr a 1.2;
  Circuit.Transient.drive tr b 1.2;
  Circuit.Transient.drive tr clk 0.0;
  Circuit.Transient.run tr ~until:50e-12;
  Circuit.Transient.drive tr clk 1.2;
  Circuit.Transient.run tr ~until:150e-12;
  (* ASCII waveform, one sample every 5 ps. *)
  let samples = Circuit.Transient.waveform tr y in
  let vdd = 1.2 in
  print_endline "Y = NOR(A, B')  with A=1, B=1: pre-charge (clk=0) then discharge (clk=1)";
  print_endline "t(ps) |0V                    1.2V|";
  List.iter
    (fun (time, v) ->
      let ps = time *. 1e12 in
      if Float.rem ps 5.0 < 0.05 then begin
        let col = int_of_float (v /. vdd *. 28.0) in
        Printf.printf "%5.0f |%s*\n" ps (String.make (max 0 col) ' ')
      end)
    samples;
  (match Circuit.Transient.crossing_time tr y ~level:0.6 ~rising:false with
  | Some t -> Printf.printf "measured 50%%-discharge at t = %.1f ps after start\n" (t *. 1e12)
  | None -> print_endline "no discharge crossing (unexpected)");
  print_endline
    "The non-discharging input case (A=0) holds the pre-charged level - see\n\
     the switch-level truth table in section fig2."

(* --- cascade: multi-level NOR planes -------------------------------------------------- *)

let run_cascade () =
  section "cascade"
    "Cascaded NOR planes through crossbars realize any function (paper par.4)";
  let t =
    Util.Tableau.create
      [ "function"; "2-level devices"; "cascade devices"; "stages"; "ratio"; "verified" ]
  in
  List.iter
    (fun n ->
      let net = Cnfet.Cascade.xor_tree ~n in
      let c = Cnfet.Cascade.of_network net in
      let two_level =
        Cnfet.Pla.of_minimized
          (Logic.Expr.to_cover_multi ~n_in:n [ Logic.Expr.parity (List.init n Logic.Expr.v) ])
      in
      let d2 = Cnfet.Pla.crosspoint_count two_level in
      let dc = Cnfet.Cascade.device_count c in
      Util.Tableau.add_row t
        [
          Printf.sprintf "xor%d" n;
          string_of_int d2;
          string_of_int dc;
          string_of_int (Cnfet.Cascade.num_stages c);
          Printf.sprintf "%.1fx" (float_of_int d2 /. float_of_int dc);
          string_of_bool (Cnfet.Cascade.verify_against_network c net);
        ])
    [ 4; 6; 8; 10 ];
  Util.Tableau.print t;
  print_endline
    "Two GNOR planes need 2^(n-1) product rows for parity; the crossbar-\n\
     interleaved cascade grows linearly - the architectural point of Fig. 3."

(* --- ablation: channel width ----------------------------------------------------------- *)

let run_ablation_tracks () =
  section "ablation_tracks"
    "Minimum routable channel width: classical fabric vs GNOR fabric";
  let t =
    Util.Tableau.create [ "design"; "standard tracks"; "CNFET tracks"; "ratio" ]
  in
  List.iter
    (fun (name, seed, blocks, grid) ->
      let d =
        Fpga.Design.random (Util.Rng.create seed) ~n_pi:(2 * grid) ~n_blocks:blocks ~layers:8 ()
      in
      let p_std =
        Fpga.Place.place (Util.Rng.create seed) (Fpga.Arch.standard ~grid) d
      in
      let p_cn =
        Fpga.Place.place (Util.Rng.create seed) (Fpga.Arch.cnfet ~grid)
          (Fpga.Design.absorb_inverters d)
      in
      match (Fpga.Route.minimum_channel_width p_std, Fpga.Route.minimum_channel_width p_cn) with
      | Some w_std, Some w_cn ->
        Util.Tableau.add_row t
          [
            name;
            string_of_int w_std;
            string_of_int w_cn;
            Printf.sprintf "%.2fx" (float_of_int w_std /. float_of_int w_cn);
          ]
      | _ -> Util.Tableau.add_row t [ name; "unroutable"; "unroutable"; "-" ])
    [ ("60 blocks / 8x8", 21, 60, 8); ("100 blocks / 10x10", 22, 100, 10); ("140 blocks / 12x12", 23, 140, 12) ];
  Util.Tableau.print t;
  print_endline
    "Routing both signal polarities costs the classical fabric about twice\n\
     the channel width - the routability face of the paper's wire-count claim."

(* --- yield with column permutation ------------------------------------------------------ *)

let run_yield_columns () =
  section "yield_columns" "Extension: input-column permutation as an extra repair axis";
  let f = Mcnc.Generators.comparator ~bits:2 in
  let pla = Cnfet.Pla.of_minimized f in
  let n_products = Cnfet.Pla.num_products pla in
  let n_in = Cnfet.Plane.cols (Cnfet.Pla.and_plane pla) in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  let rng = Util.Rng.create 33 in
  let trials = 150 in
  let t = Util.Tableau.create [ "defect rate"; "rows only"; "rows + column perm" ] in
  List.iter
    (fun rate ->
      let rows_only = ref 0 and with_cols = ref 0 in
      for _ = 1 to trials do
        let and_d = Fault.Defect.random rng ~rows:n_products ~cols:n_in ~rate () in
        let or_d = Fault.Defect.random rng ~rows:n_out ~cols:n_products ~rate () in
        (match Fault.Repair.repair ~and_defects:and_d ~or_defects:or_d pla with
        | Fault.Repair.Repaired _ -> incr rows_only
        | Fault.Repair.Unrepairable -> ());
        match
          Fault.Repair.repair_permuting_inputs rng ~attempts:60 ~and_defects:and_d
            ~or_defects:or_d pla
        with
        | Some _ -> incr with_cols
        | None -> ()
      done;
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.1f%%" (100.0 *. rate);
          Util.Tableau.cell_pct (float_of_int !rows_only /. float_of_int trials);
          Util.Tableau.cell_pct (float_of_int !with_cols /. float_of_int trials);
        ])
    [ 0.01; 0.03; 0.06 ];
  Util.Tableau.print t;
  Printf.printf "(cmp2: %d products x %d inputs; %d trials/point)\n" n_products n_in trials

let run_variation () =
  section "variation"
    "Extension: PLA timing under device variation (the 'unreliable devices' view)";
  let t =
    Util.Tableau.create
      [ "sigma"; "technology"; "mean delay (ps)"; "sd (ps)"; "worst (ps)"; "timing yield" ]
  in
  let p = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 } in
  List.iter
    (fun sigma ->
      List.iter
        (fun fam ->
          let rng = Util.Rng.create 99 in
          let v =
            Cnfet.Pla_timing.monte_carlo rng ~trials:400 ~sigma (Device.Tech.get fam) p
          in
          Util.Tableau.add_row t
            [
              Printf.sprintf "%.0f%%" (100.0 *. sigma);
              Device.Tech.name fam;
              Printf.sprintf "%.0f" (v.Cnfet.Pla_timing.mean_delay *. 1e12);
              Printf.sprintf "%.0f" (v.Cnfet.Pla_timing.sigma_delay *. 1e12);
              Printf.sprintf "%.0f" (v.Cnfet.Pla_timing.worst_delay *. 1e12);
              Util.Tableau.cell_pct v.Cnfet.Pla_timing.yield_at_nominal;
            ])
        Device.Tech.all;
      Util.Tableau.add_rule t)
    [ 0.05; 0.15; 0.30 ];
  Util.Tableau.print t;
  print_endline
    "(max46 profile, 400 trials/point; yield = trials within 1.15x the\n\
     variation-free delay — wide nanotube process spreads eat the margin)"

(* --- Table 2 ----------------------------------------------------------------------- *)

let run_table2 () =
  section "table2" "Frequency of standard FPGA and CNFET FPGA (place, route, time)";
  Printf.printf "running paper-scale experiment (grid 17, ~286 CLBs)...\n%!";
  let t = Fpga.Flow.table2_experiment () in
  let s = t.Fpga.Flow.standard and c = t.Fpga.Flow.cnfet in
  let tab = Util.Tableau.create [ ""; "Standard FPGA"; "CNFET FPGA"; "paper" ] in
  Util.Tableau.add_row tab
    [
      "Occupied area";
      Util.Tableau.cell_pct s.Fpga.Flow.occupancy;
      Util.Tableau.cell_pct c.Fpga.Flow.occupancy;
      "99% / 44.9%";
    ];
  Util.Tableau.add_row tab
    [
      "Frequency";
      Printf.sprintf "%.0f MHz" (s.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6);
      Printf.sprintf "%.0f MHz" (c.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6);
      "154 / 349 MHz";
    ];
  Util.Tableau.print tab;
  Printf.printf
    "\nspeed-up %.2fx (paper: 2.27x); routed wire-segments %d (2 wires/conn) vs %d\n\
     (1 wire/conn); route overflow %d vs %d; logic levels %d vs %d\n"
    t.Fpga.Flow.speedup
    (2 * s.Fpga.Flow.routed_segments)
    c.Fpga.Flow.routed_segments s.Fpga.Flow.route_overflow c.Fpga.Flow.route_overflow
    s.Fpga.Flow.timing.Fpga.Timing.logic_levels c.Fpga.Flow.timing.Fpga.Timing.logic_levels

(* --- §5 wires: signal-count reduction ------------------------------------------------ *)

let run_wires () =
  section "wires" "Signals to route: classical needs both polarities, GNOR generates them";
  let t = Util.Tableau.create [ "function"; "classical wires"; "GNOR wires"; "reduction" ] in
  let cases =
    List.map
      (fun p ->
        ( p.Mcnc.Profiles.name,
          {
            Cnfet.Area.n_in = p.Mcnc.Profiles.n_in;
            n_out = p.Mcnc.Profiles.n_out;
            n_products = p.Mcnc.Profiles.n_products;
          } ))
      Mcnc.Profiles.table1
    @ List.map
        (fun (name, f) -> (name, Cnfet.Area.profile_of_cover (Espresso.Minimize.cover f)))
        Mcnc.Generators.all
  in
  List.iter
    (fun (name, p) ->
      Util.Tableau.add_row t
        [
          name;
          string_of_int (Cnfet.Area.total_wires Device.Tech.flash p);
          string_of_int (Cnfet.Area.total_wires Device.Tech.cnfet p);
          Printf.sprintf "%.2fx" (Cnfet.Area.wire_reduction_factor p);
        ])
    cases;
  Util.Tableau.print t;
  print_endline "Input-signal count is reduced by exactly the paper's 'almost factor 2'."

(* --- §5 phase optimization ------------------------------------------------------------ *)

let run_phase () =
  section "phase" "Output-phase optimization enabled by internal inversion (Sasao/MINI II)";
  let t = Util.Tableau.create [ "function"; "all-positive"; "phase-optimized"; "gain" ] in
  List.iter
    (fun (name, f) ->
      let r = Espresso.Phase.optimize f in
      Util.Tableau.add_row t
        [
          name;
          string_of_int r.Espresso.Phase.products_all_positive;
          string_of_int r.Espresso.Phase.products_optimized;
          Printf.sprintf "%.0f%%"
            (100.0
            *. (1.0
               -. float_of_int r.Espresso.Phase.products_optimized
                  /. float_of_int (max 1 r.Espresso.Phase.products_all_positive)));
        ])
    Mcnc.Generators.all;
  Util.Tableau.print t

(* --- §5 Whirlpool PLA ------------------------------------------------------------------- *)

let run_wpla () =
  section "wpla" "Whirlpool PLA (4 cascaded NOR planes) via Doppio-Espresso";
  let t =
    Util.Tableau.create
      [ "function"; "2-level products"; "WPLA products"; "pos pair"; "neg pair"; "correct" ]
  in
  let cases =
    [
      ("rd53", Mcnc.Generators.rd ~n:5);
      ("cmp3", Mcnc.Generators.comparator ~bits:3);
      ("add2", Mcnc.Generators.adder ~bits:2);
      ( "or6+and3",
        Logic.Expr.to_cover_multi ~n_in:6
          [
            Logic.Expr.(Or [ v 0; v 1; v 2; v 3; v 4; v 5 ]);
            Logic.Expr.(And [ v 0; v 1; v 2 ]);
          ] );
      ("mux2", Mcnc.Generators.mux ~select_bits:2);
    ]
  in
  List.iter
    (fun (name, f) ->
      let w = Cnfet.Wpla.of_function f in
      let pair = function
        | None -> "-"
        | Some pla -> string_of_int (Cnfet.Pla.num_products pla)
      in
      Util.Tableau.add_row t
        [
          name;
          string_of_int (Cnfet.Wpla.products_two_level w);
          string_of_int (Cnfet.Wpla.products w);
          pair (Cnfet.Wpla.positive_pla w);
          pair (Cnfet.Wpla.negative_pla w);
          string_of_bool (Cnfet.Wpla.verify_against w f);
        ])
    cases;
  Util.Tableau.print t

(* --- §5 fault tolerance -------------------------------------------------------------------- *)

let run_yield () =
  section "yield" "Fault tolerance on the regular array: remapping + spare rows";
  let f = Mcnc.Generators.comparator ~bits:3 in
  let pla = Cnfet.Pla.of_minimized f in
  let rng = Util.Rng.create 42 in
  let t = Util.Tableau.create [ "defect rate"; "fixed rows"; "remapped"; "+3 spare rows" ] in
  List.iter
    (fun p ->
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.1f%%" (100.0 *. p.Fault.Yield.defect_rate);
          Util.Tableau.cell_pct p.Fault.Yield.yield_baseline;
          Util.Tableau.cell_pct p.Fault.Yield.yield_remap;
          Util.Tableau.cell_pct p.Fault.Yield.yield_spares;
        ])
    (Fault.Yield.sweep rng ~trials:400 ~spare_rows:3 pla
       ~rates:[ 0.002; 0.005; 0.01; 0.02; 0.05 ]);
  Util.Tableau.print t;
  Printf.printf "(cmp3 mapped to %d products x %d inputs x %d outputs; 400 trials/point)\n"
    (Cnfet.Pla.num_products pla) (Cnfet.Pla.num_inputs pla) (Cnfet.Pla.num_outputs pla)

let run_yield_xbar () =
  section "yield_xbar" "Extension: routing through defective interconnect crossbars";
  let rng = Util.Rng.create 55 in
  let t =
    Util.Tableau.create
      [ "defect rate"; "fixed columns"; "reassigned columns (4 spares)" ]
  in
  List.iter
    (fun p ->
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.1f%%" (100.0 *. p.Fault.Xbar.defect_rate);
          Util.Tableau.cell_pct p.Fault.Xbar.yield_identity;
          Util.Tableau.cell_pct p.Fault.Xbar.yield_assigned;
        ])
    (Fault.Xbar.yield_sweep rng ~trials:400 ~rows:12 ~cols:16 ~demands:12
       [ 0.005; 0.01; 0.02; 0.05 ]);
  Util.Tableau.print t;
  print_endline
    "(12 signals through a 12x16 crossbar; stuck-closed crosspoints short\n\
     wires, stuck-open ones lose connections; column reassignment is the\n\
     interconnect analogue of PLA row remapping)"

let run_atpg () =
  section "atpg" "Extension: test-pattern generation for programmed PLAs";
  let t =
    Util.Tableau.create
      [ "function"; "crosspoints"; "faults"; "test vectors"; "input space"; "redundant faults" ]
  in
  List.iter
    (fun (name, f) ->
      let pla = Cnfet.Pla.of_minimized f in
      if Cnfet.Pla.num_inputs pla <= 7 then begin
        let tests, undetectable = Fault.Atpg.generate pla in
        Util.Tableau.add_row t
          [
            name;
            string_of_int (Cnfet.Pla.crosspoint_count pla);
            string_of_int (List.length (Fault.Atpg.all_faults pla));
            string_of_int (List.length tests);
            string_of_int (1 lsl Cnfet.Pla.num_inputs pla);
            string_of_int (List.length undetectable);
          ]
      end)
    Mcnc.Generators.all;
  Util.Tableau.print t;
  print_endline
    "A handful of vectors covers every detectable single crosspoint fault\n\
     (stuck-open and stuck-closed) - the testing payoff of the regular\n\
     array structure."

let run_folding () =
  section "folding" "Extension: simple column folding on top of the GNOR area win";
  let t =
    Util.Tableau.create
      [ "function"; "flat CNFET (L^2)"; "folded CNFET (L^2)"; "saving"; "Flash flat (L^2)" ]
  in
  List.iter
    (fun (name, f) ->
      let pla = Cnfet.Pla.of_minimized f in
      let profile = Cnfet.Area.profile_of_pla pla in
      let base = Cnfet.Area.pla_area Device.Tech.cnfet profile in
      let folded = Cnfet.Folding.folded_pla_area Device.Tech.cnfet pla in
      Util.Tableau.add_row t
        [
          name;
          Util.Tableau.cell_int base;
          Util.Tableau.cell_int folded;
          Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. float_of_int folded /. float_of_int base));
          Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.flash profile);
        ])
    Mcnc.Generators.all;
  Util.Tableau.print t;
  print_endline
    "Folding shares physical columns between signals with disjoint,\n\
     separable users - strongest on one-hot-ish output planes (dec4) and\n\
     inert on dense parity planes; it compounds with the single-column\n\
     GNOR advantage."

(* --- ablation A: area crossover vs input count ----------------------------------------------- *)

let run_ablation_crossover () =
  section "ablation_crossover"
    "Where does the CNFET PLA start winning? Area vs input count (products=32)";
  let t =
    Util.Tableau.create [ "n_in"; "n_out"; "Flash (L^2)"; "CNFET (L^2)"; "CNFET saving" ]
  in
  List.iter
    (fun (n_in, n_out) ->
      let p = { Cnfet.Area.n_in; n_out; n_products = 32 } in
      Util.Tableau.add_row t
        [
          string_of_int n_in;
          string_of_int n_out;
          Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.flash p);
          Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.cnfet p);
          Printf.sprintf "%+.1f%%" (100.0 *. Cnfet.Area.cnfet_saving_vs Device.Tech.flash p);
        ])
    [ (2, 4); (4, 4); (6, 4); (8, 4); (12, 4); (16, 4); (24, 4); (32, 4) ];
  Util.Tableau.print t;
  (match Cnfet.Area.crossover_inputs Device.Tech.flash ~n_out:4 with
  | Some n ->
    Printf.printf "\ncrossover vs Flash at n_out=4: n_in >= %d (model: n_in > n_out)\n" n
  | None -> print_endline "no crossover");
  print_endline
    "The paper's observation: savings only for PLAs with many inputs (max46), a\n\
     small overhead otherwise (apla)."

(* --- ablation B: frequency vs CLB shrink factor ------------------------------------------------ *)

let run_ablation_shrink () =
  section "ablation_shrink" "Frequency vs CLB area shrink (grid 13, same design)";
  let grid = 13 in
  let rng = Util.Rng.create 7 in
  let sites = grid * grid in
  let design =
    Fpga.Design.random rng ~n_pi:(2 * grid)
      ~n_blocks:(int_of_float (0.99 *. float_of_int sites))
      ~fanin:4 ~inverter_fraction:0.095 ~layers:12 ()
  in
  let std = Fpga.Arch.standard ~grid in
  let t = Util.Tableau.create [ "CLB area"; "grid"; "occupancy"; "frequency"; "speed-up" ] in
  let base_freq = ref 0.0 in
  List.iter
    (fun area_factor ->
      (* CLB area scales the pitch by sqrt(area) and the site count
         inversely; 100% with 2 wires/connection is the standard fabric. *)
      let shrink = sqrt area_factor in
      let arch =
        if area_factor = 1.0 then std
        else
          {
            std with
            Fpga.Arch.flavour = Fpga.Arch.Cnfet;
            grid = int_of_float (floor (float_of_int grid /. shrink));
            wires_per_connection = 1;
            clb_pitch = std.Fpga.Arch.clb_pitch *. shrink;
            seg_resistance = std.Fpga.Arch.seg_resistance *. shrink;
            seg_capacitance = std.Fpga.Arch.seg_capacitance *. shrink;
            clb_delay = std.Fpga.Arch.clb_delay /. 1.75;
          }
      in
      let d = if area_factor = 1.0 then design else Fpga.Design.absorb_inverters design in
      let outcome = Fpga.Flow.run (Util.Rng.split rng) arch d in
      let freq = outcome.Fpga.Flow.timing.Fpga.Timing.frequency_hz in
      if area_factor = 1.0 then base_freq := freq;
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. area_factor);
          Printf.sprintf "%dx%d" outcome.Fpga.Flow.grid outcome.Fpga.Flow.grid;
          Util.Tableau.cell_pct outcome.Fpga.Flow.occupancy;
          Printf.sprintf "%.0f MHz" (freq /. 1e6);
          Printf.sprintf "%.2fx" (freq /. !base_freq);
        ])
    [ 1.0; 0.7; 0.5; 0.35 ];
  Util.Tableau.print t;
  print_endline
    "(100% = classical CLB with both polarities routed; the paper's design\n\
     point is the 50% row)"

(* --- factored multi-level synthesis --------------------------------------------------------- *)

let run_factored () =
  section "factored"
    "Extension: algebraic factoring + NOR synthesis (the paper's 'high-performance design tools')";
  let t =
    Util.Tableau.create
      [ "function"; "SOP literals"; "factored literals"; "2-level devices"; "cascade devices"; "verified" ]
  in
  List.iter
    (fun (name, f) ->
      let m = Espresso.Minimize.cover f in
      let exprs = Espresso.Factor.factor_multi m in
      let verified = Espresso.Factor.verify m exprs in
      let net = Cnfet.Cascade.network_of_factored ~n_in:(Logic.Cover.num_inputs m) exprs in
      let c = Cnfet.Cascade.of_network net in
      let fact_lits =
        Array.fold_left (fun n e -> n + Espresso.Factor.literal_count e) 0 exprs
      in
      Util.Tableau.add_row t
        [
          name;
          string_of_int (Espresso.Factor.flat_literal_count m);
          string_of_int fact_lits;
          string_of_int (Cnfet.Pla.crosspoint_count (Cnfet.Pla.of_cover m));
          string_of_int (Cnfet.Cascade.device_count c);
          string_of_bool verified;
        ])
    Mcnc.Generators.all;
  Util.Tableau.print t;
  print_endline
    "Factoring cuts single-output literals by up to ~47% (rd73). The cascade\n\
     devices include per-stage crossbars; with cheap products (two-level\n\
     friendly functions) the flat PLA stays smaller - multi-level wins where\n\
     SOP explodes (see section cascade). SOP literals are shared across\n\
     outputs; factored counts are per-output."

(* --- technology mapping into CLBs --------------------------------------------------------------- *)

let run_mapping () =
  section "mapping"
    "Extension: splitting real functions into CLB-sized blocks (paper par.5)";
  let t =
    Util.Tableau.create
      [ "function"; "CLB inputs"; "blocks"; "levels"; "max fanin"; "equivalent" ]
  in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun k ->
          let m = Fpga.Map.map_cover ~clb_inputs:k f in
          Util.Tableau.add_row t
            [
              name;
              string_of_int k;
              string_of_int (Fpga.Map.block_count m);
              string_of_int (Fpga.Map.levels m);
              string_of_int (Fpga.Map.max_block_inputs m);
              string_of_bool (Fpga.Map.verify_against m f);
            ])
        [ 4; 6 ];
      Util.Tableau.add_rule t)
    [
      ("rd73", Mcnc.Generators.rd ~n:7);
      ("cmp3", Mcnc.Generators.comparator ~bits:3);
      ("alu2", Mcnc.Generators.alu_slice ());
    ];
  Util.Tableau.print t;
  (* End to end: a real mapped function through place & route on both
     fabrics. *)
  let f = Mcnc.Generators.rd ~n:7 in
  let mapped = Fpga.Map.map_cover ~clb_inputs:4 f in
  let d = Fpga.Map.to_design mapped in
  let grid = 7 in
  let std = Fpga.Flow.run (Util.Rng.create 5) (Fpga.Arch.standard ~grid) d in
  let cn = Fpga.Flow.run (Util.Rng.create 5) (Fpga.Arch.cnfet ~grid) d in
  Printf.printf
    "\nrd73 mapped at k=4 (%d CLBs), placed and routed:\n\
    \  standard fabric: %.0f MHz   CNFET fabric: %.0f MHz   speed-up %.2fx\n"
    (Fpga.Design.block_count d)
    (std.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6)
    (cn.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6)
    (cn.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. std.Fpga.Flow.timing.Fpga.Timing.frequency_hz)

(* --- ablation: net-tree routing ------------------------------------------------------------------ *)

let run_ablation_sharing () =
  section "ablation_sharing"
    "Extension: per-connection wires vs shared net trees (fanout Steiner sharing)";
  let t =
    Util.Tableau.create
      [ "fabric"; "routing"; "segments"; "peak usage"; "overflow" ]
  in
  let d = Fpga.Design.random (Util.Rng.create 31) ~n_pi:20 ~n_blocks:120 ~layers:10 () in
  List.iter
    (fun (fab, arch, design) ->
      let p = Fpga.Place.place (Util.Rng.create 31) arch design in
      List.iter
        (fun (mode, share) ->
          let r = Fpga.Route.route ~share_nets:share p in
          Util.Tableau.add_row t
            [
              fab;
              mode;
              string_of_int r.Fpga.Route.total_segments;
              string_of_int r.Fpga.Route.max_usage;
              string_of_int r.Fpga.Route.overflow;
            ])
        [ ("point-to-point", false); ("net trees", true) ];
      Util.Tableau.add_rule t)
    [
      ("standard", Fpga.Arch.standard ~grid:11, d);
      ("CNFET", Fpga.Arch.cnfet ~grid:11, Fpga.Design.absorb_inverters d);
    ];
  Util.Tableau.print t;
  print_endline
    "Net trees share fanout wiring and cut peak channel demand on both\n\
     fabrics; the polarity-duplication penalty of the classical fabric\n\
     persists either way."

(* --- FSMs on registered PLAs -------------------------------------------------------------------- *)

let run_fsm () =
  section "fsm"
    "Extension: finite-state machines on registered GNOR PLAs (binary vs one-hot)";
  let t =
    Util.Tableau.create
      [ "machine"; "encoding"; "state bits"; "PLA products"; "PLA area (CNFET, L^2)"; "verified" ]
  in
  let specs =
    [
      ("det(101)", Cnfet.Fsm.sequence_detector ~pattern:[ true; false; true ]);
      ("det(1101)", Cnfet.Fsm.sequence_detector ~pattern:[ true; true; false; true ]);
      ("counter mod 5", Cnfet.Fsm.counter ~modulo:5);
      ("counter mod 12", Cnfet.Fsm.counter ~modulo:12);
    ]
  in
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun enc ->
          let fsm = Cnfet.Fsm.synthesize ~encoding:enc spec in
          let pla = Cnfet.Fsm.pla fsm in
          let profile = Cnfet.Area.profile_of_pla pla in
          Util.Tableau.add_row t
            [
              name;
              (match enc with Cnfet.Fsm.Binary -> "binary" | Cnfet.Fsm.One_hot -> "one-hot");
              string_of_int (Cnfet.Fsm.state_bits fsm);
              string_of_int (Cnfet.Pla.num_products pla);
              Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.cnfet profile);
              string_of_bool (Cnfet.Fsm.verify_against_spec fsm spec);
            ])
        [ Cnfet.Fsm.Binary; Cnfet.Fsm.One_hot ];
      Util.Tableau.add_rule t)
    specs;
  Util.Tableau.print t;
  print_endline
    "Unused state codes become don't-cares for the minimizer; binary encoding\n\
     keeps the GNOR planes narrow, one-hot trades columns for simpler rows."

(* --- heuristic vs exact gap ----------------------------------------------------------------------- *)

let run_exact_gap () =
  section "exact_gap"
    "Extension: heuristic espresso vs exact multi-output minimum (small functions)";
  let t =
    Util.Tableau.create [ "instance"; "espresso cubes"; "exact minimum"; "gap" ]
  in
  let rng = Util.Rng.create 77 in
  let total_gap = ref 0 and n_cases = ref 0 in
  for k = 1 to 12 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f =
      Logic.Cover.random rng ~n_in ~n_out ~n_cubes:(3 + Util.Rng.int rng 7) ~dc_bias:0.4
    in
    if not (Logic.Cover.is_empty f) then begin
      incr n_cases;
      let heur = Logic.Cover.size (Espresso.Minimize.cover f) in
      let exact = Espresso.Exact.minimum_cubes f in
      total_gap := !total_gap + (heur - exact);
      Util.Tableau.add_row t
        [
          Printf.sprintf "random-%d (%d in, %d out)" k n_in n_out;
          string_of_int heur;
          string_of_int exact;
          string_of_int (heur - exact);
        ]
    end
  done;
  List.iter
    (fun (name, f) ->
      let heur = Logic.Cover.size (Espresso.Minimize.cover f) in
      let exact = Espresso.Exact.minimum_cubes f in
      incr n_cases;
      total_gap := !total_gap + (heur - exact);
      Util.Tableau.add_row t
        [ name; string_of_int heur; string_of_int exact; string_of_int (heur - exact) ])
    [
      ("rd53", Mcnc.Generators.rd ~n:5);
      ("cmp2", Mcnc.Generators.comparator ~bits:2);
      ("gray4", Mcnc.Generators.gray ~bits:4);
      ("mux2", Mcnc.Generators.mux ~select_bits:2);
    ];
  Util.Tableau.print t;
  Printf.printf "total gap over %d instances: %d cubes\n" !n_cases !total_gap

(* --- parallel: the lib/runtime batch-evaluation engine ------------------------------------------ *)

(* Measured sections double as Assess profiles: with --run-out DIR each
   emits its scalars as an Assess.Run artifact next to the BENCH_*.json
   derived view, so `cnfet_tool bench-ab` can compare any two harness
   invocations. *)
let run_out_dir = ref None
let assess_repeats = ref 1

let save_assess_run arun =
  match !run_out_dir with
  | None -> ()
  | Some dir -> (
    match Assess.Run.save ~dir arun with
    | Ok path -> Printf.printf "assess run: %s\n" path
    | Error e ->
      Printf.eprintf "cannot write assess run: %s\n" (Assess.Run.error_to_string e);
      exit 1)

let run_parallel () =
  section "parallel"
    "Sequential vs parallel batch evaluation (lib/runtime: pool + batch + cache + metrics)";
  let jobs =
    match Sys.getenv_opt "CNFET_BENCH_JOBS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> Runtime.Pool.default_jobs ())
    | None -> Runtime.Pool.default_jobs ()
  in
  let metrics = Runtime.Metrics.create () in
  let cache = Runtime.Cache.create () in
  Printf.printf "worker domains: %d (recommended for this machine: %d)\n%!" jobs
    (Domain.recommended_domain_count ());
  let reports, arun =
    Runtime.Bench.run_assess ~metrics ~cache ~seed:2008 ~trials:1000
      ~repeats:!assess_repeats ~jobs ()
  in
  save_assess_run arun;
  let t =
    Util.Tableau.create [ "workload"; "items"; "sequential (s)"; "parallel (s)"; "speedup"; "identical" ]
  in
  List.iter
    (fun r ->
      Util.Tableau.add_row t
        [
          r.Runtime.Bench.name;
          string_of_int r.Runtime.Bench.items;
          Printf.sprintf "%.3f" r.Runtime.Bench.seq_s;
          Printf.sprintf "%.3f" r.Runtime.Bench.par_s;
          Printf.sprintf "%.2fx" r.Runtime.Bench.speedup;
          string_of_bool r.Runtime.Bench.identical;
        ])
    reports;
  Util.Tableau.print t;
  Printf.printf "cache: %d hits / %d misses (hit rate %.1f%%, %d entries)\n"
    (Runtime.Cache.hits cache) (Runtime.Cache.misses cache)
    (100.0 *. Runtime.Cache.hit_rate cache)
    (Runtime.Cache.size cache);
  let path = "BENCH_runtime.json" in
  Runtime.Bench.write_json ~cache ~metrics ~jobs ~path reports;
  Printf.printf "machine-readable results -> %s\n" path;
  print_endline
    "Fan-out is chunked and merged by submission index, so the parallel\n\
     column is bit-identical to the sequential one; speedup tracks the\n\
     worker-domain count on multicore hosts (a single-core container\n\
     reports ~1x). Set CNFET_BENCH_JOBS to override the domain count."

(* --- espresso: the word-parallel cover kernel --------------------------------------------------- *)

let quick_mode = ref false

let run_espresso () =
  section "espresso"
    "Word-parallel packed cover kernel vs naive reference (minimize, set ops, compiled eval)";
  let quick = !quick_mode in
  let metrics = Runtime.Metrics.create () in
  let reports, arun =
    Runtime.Bench_espresso.run_assess ~metrics ~quick ~seed:2008 ~repeats:!assess_repeats ()
  in
  save_assess_run arun;
  let t =
    Util.Tableau.create
      [ "function"; "in/out"; "cubes"; "minimize (s)"; "packed Mop/s"; "naive Mop/s"; "speedup"; "eval Meval/s"; "block Meval/s"; "block speedup"; "identical" ]
  in
  List.iter
    (fun r ->
      Util.Tableau.add_row t
        [
          r.Runtime.Bench_espresso.name;
          Printf.sprintf "%d/%d" r.Runtime.Bench_espresso.n_in r.Runtime.Bench_espresso.n_out;
          Printf.sprintf "%d->%d" r.Runtime.Bench_espresso.cubes_before
            r.Runtime.Bench_espresso.cubes_after;
          Printf.sprintf "%.4f" r.Runtime.Bench_espresso.minimize_s;
          Printf.sprintf "%.2f" r.Runtime.Bench_espresso.packed_mops;
          Printf.sprintf "%.2f" r.Runtime.Bench_espresso.naive_mops;
          Printf.sprintf "%.2fx" r.Runtime.Bench_espresso.op_speedup;
          Printf.sprintf "%.2f" r.Runtime.Bench_espresso.eval_mevals;
          Printf.sprintf "%.2f" r.Runtime.Bench_espresso.eval_block_mevals;
          Printf.sprintf "%.2fx" r.Runtime.Bench_espresso.block_speedup;
          string_of_bool
            (r.Runtime.Bench_espresso.identical
            && r.Runtime.Bench_espresso.block_identical);
        ])
    reports;
  Util.Tableau.print t;
  Printf.printf "packed-vs-naive op speedup (geomean): %.2fx\n"
    (Runtime.Bench_espresso.geomean_speedup reports);
  Printf.printf "blocked-vs-scalar eval speedup (geomean): %.2fx\n"
    (Runtime.Bench_espresso.geomean_block_speedup reports);
  let path = "BENCH_espresso.json" in
  Runtime.Bench_espresso.write_json ~quick ~seed:2008 ~path reports;
  Printf.printf "machine-readable results -> %s\n" path;
  print_endline
    "Both kernels run the same all-pairs contains/distance/intersect/\n\
     supercube workload and must produce identical checksums; the speedup\n\
     column is the bit-packing win. Pass --quick for the short CI windows."

(* --- Bechamel micro-benchmarks ------------------------------------------------------------------ *)

(* --- sweep: population-scale staged pipeline --------------------------------------------------- *)

let run_sweep () =
  section "sweep"
    "Population-scale silicon sweep (lib/sweep: staged pipeline sharded over the domain pool)";
  let config =
    if !quick_mode then Sweep.Drive.quick
    else { Sweep.Drive.default with profiles = 96; jobs = Runtime.Pool.default_jobs () }
  in
  let metrics = Runtime.Metrics.create () in
  let t0 = Unix.gettimeofday () in
  let last = ref None in
  let per_repeat =
    List.init !assess_repeats (fun _ ->
        let r = Sweep.Drive.run ~metrics config in
        last := Some r;
        Sweep.Report.to_metrics r)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let r = Option.get !last in
  print_string (Sweep.Report.summary r);
  let arun =
    Assess.Run.create ~profile:"sweep" ~seed:config.Sweep.Drive.seed ~wall_s
      ~meta:
        [
          ("jobs", string_of_int config.Sweep.Drive.jobs);
          ("profiles", string_of_int config.Sweep.Drive.profiles);
          ("quick", string_of_bool !quick_mode);
          ("repeats", string_of_int !assess_repeats);
        ]
      (Sweep.Report.merge_metrics per_repeat)
  in
  save_assess_run arun;
  let path = "BENCH_sweep.json" in
  Sweep.Report.write ~path (Sweep.Report.bench_json r);
  Printf.printf "machine-readable results -> %s\n" path;
  print_endline
    "Every item derives its random streams from (seed, salt, index), so the\n\
     population - and the area/frequency/yield Pareto fronts above - are\n\
     bit-identical at any worker-domain count; only the latency columns\n\
     move between machines."

let run_micro () =
  section "micro" "Bechamel micro-benchmarks of the core algorithms";
  let open Bechamel in
  let rd53 = Mcnc.Generators.rd ~n:5 in
  let cmp3 = Mcnc.Generators.comparator ~bits:3 in
  let random_cover =
    Logic.Cover.random (Util.Rng.create 1) ~n_in:8 ~n_out:2 ~n_cubes:24 ~dc_bias:0.4
  in
  let pla = Cnfet.Pla.of_minimized cmp3 in
  let hw = Cnfet.Pla.build_hw pla in
  let inputs6 = [| true; false; true; true; false; true |] in
  let small_design = Fpga.Design.random (Util.Rng.create 3) ~n_pi:8 ~n_blocks:40 ~layers:6 () in
  let placement =
    Fpga.Place.place (Util.Rng.create 3) (Fpga.Arch.standard ~grid:8) small_design
  in
  let tests =
    [
      Test.make ~name:"table1.espresso-rd53"
        (Staged.stage (fun () -> ignore (Espresso.Minimize.cover rd53)));
      Test.make ~name:"table1.espresso-random8x2"
        (Staged.stage (fun () -> ignore (Espresso.Minimize.cover random_cover)));
      Test.make ~name:"fig2.gnor-switch-level"
        (Staged.stage (fun () ->
             ignore
               (Cnfet.Gnor.simulate
                  [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert; Cnfet.Gnor.Drop; Cnfet.Gnor.Pass |]
                  [| true; false; true; false |])));
      Test.make ~name:"fig3_4.pla-switch-level"
        (Staged.stage (fun () -> ignore (Cnfet.Pla.simulate_hw hw inputs6)));
      Test.make ~name:"logic.complement-rd53"
        (Staged.stage (fun () -> ignore (Logic.Cover.complement rd53)));
      Test.make ~name:"logic.tautology-random"
        (Staged.stage (fun () -> ignore (Logic.Cover.tautology random_cover)));
      Test.make ~name:"table2.route-8x8"
        (Staged.stage (fun () -> ignore (Fpga.Route.route placement)));
      Test.make ~name:"wpla.doppio-cmp3"
        (Staged.stage (fun () -> ignore (Espresso.Doppio.minimize cmp3)));
      (let rng = Util.Rng.create 9 in
       Test.make ~name:"yield.repair-2pct"
         (Staged.stage (fun () ->
              ignore (Fault.Yield.functional_check rng pla cmp3 ~defect_rate:0.02 ~spare_rows:2))));
    ]
  in
  let grouped = Test.make_grouped ~name:"cnfet" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let t = Util.Tableau.create [ "benchmark"; "time/run"; "r^2" ] in
  let pp_time ns =
    if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, o) ->
      let est = match Analyze.OLS.estimates o with Some [ e ] -> pp_time e | _ -> "?" in
      let r2 =
        match Analyze.OLS.r_square o with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Util.Tableau.add_row t [ name; est; r2 ])
    (List.sort compare rows);
  Util.Tableau.print t

(* --- driver ---------------------------------------------------------------------------------------- *)

let sections =
  [
    ("fig1", run_fig1);
    ("fig2", run_fig2);
    ("fig3_4", run_fig3_4);
    ("fig3_physical", run_fig3_physical);
    ("table1", run_table1);
    ("table1_pipeline", run_table1_pipeline);
    ("table1_delay", run_table1_delay);
    ("variation", run_variation);
    ("table2", run_table2);
    ("wires", run_wires);
    ("phase", run_phase);
    ("wpla", run_wpla);
    ("yield", run_yield);
    ("yield_columns", run_yield_columns);
    ("yield_xbar", run_yield_xbar);
    ("atpg", run_atpg);
    ("folding", run_folding);
    ("waveform", run_waveform);
    ("cascade", run_cascade);
    ("factored", run_factored);
    ("mapping", run_mapping);
    ("fsm", run_fsm);
    ("exact_gap", run_exact_gap);
    ("ablation_crossover", run_ablation_crossover);
    ("ablation_shrink", run_ablation_shrink);
    ("ablation_tracks", run_ablation_tracks);
    ("ablation_sharing", run_ablation_sharing);
    ("parallel", run_parallel);
    ("espresso", run_espresso);
    ("sweep", run_sweep);
    ("micro", run_micro);
  ]

(* Pull "--<flag> VALUE" out of the argument list, returning the value
   (if present) and the remaining arguments. *)
let rec extract_opt flag = function
  | [] -> (None, [])
  | a :: value :: rest when a = flag ->
    let _, others = extract_opt flag rest in
    (Some value, others)
  | [ a ] when a = flag ->
    Printf.eprintf "%s needs an argument\n" flag;
    exit 2
  | a :: rest ->
    let v, others = extract_opt flag rest in
    (v, a :: others)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace, args = extract_opt "--trace" args in
  let run_out, args = extract_opt "--run-out" args in
  let repeats, args = extract_opt "--repeats" args in
  run_out_dir := run_out;
  (match repeats with
  | None -> ()
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> assess_repeats := n
    | _ ->
      Printf.eprintf "--repeats needs a positive integer, got %S\n" s;
      exit 2));
  let names = List.filter (fun a -> a <> "--quick") args in
  quick_mode := List.mem "--quick" args;
  let collector =
    match trace with
    | None -> None
    | Some path ->
      let t = Obs.Trace.create () in
      Obs.Trace.install t;
      Some (t, path)
  in
  let requested =
    match names with
    | _ :: _ -> names
    | [] -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run -> Obs.Span.with_ ~args:[ ("section", name) ] "bench.section" run
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 2)
    requested;
  (match collector with
  | None -> ()
  | Some (t, path) ->
    Obs.Trace.uninstall ();
    let events = Obs.Trace.events t in
    let oc = open_out path in
    output_string oc (Obs.Export.to_chrome_json events);
    close_out oc;
    Printf.printf "\ntrace: %d events (%d dropped); subsystems: %s -> %s\n"
      (List.length events) (Obs.Trace.dropped t)
      (String.concat ", " (Obs.Export.subsystems events))
      path;
    print_string (Obs.Export.text_profile events));
  print_newline ()
