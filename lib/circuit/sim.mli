(** Switch-level relaxation simulator with dynamic-logic phases.

    Within a {e phase}, primary inputs and rails hold fixed values and the
    simulator relaxes to a fixpoint: every conducting switch merges the
    values at its source/drain (strength-resolved per {!Value.merge}).
    Between phases, driven values decay to charge ({!Value.weaken}),
    modelling dynamic nodes — this is what makes pre-charge / evaluate
    sequences work.

    Gate conduction is switch-level: an n-type device conducts when its
    gate resolves to logic 1, a p-type when it resolves to 0, an off-state
    device never. A gate at [X] conservatively propagates [X] across the
    switch when source and drain disagree. *)

type t

val create : Netlist.t -> t
(** All nets start {!Value.floating} except the rails. *)

val netlist : t -> Netlist.t

val set_input : t -> Netlist.net -> bool -> unit
(** Pin a net to a supply-strength level for subsequent phases. *)

val set_input_x : t -> Netlist.net -> unit
(** Pin a net to supply-strength [X] (unknown input). *)

val release_input : t -> Netlist.net -> unit
(** Stop driving the net (it keeps its value as charge). *)

val value : t -> Netlist.net -> Value.t

val bool_of_net : t -> Netlist.net -> bool option

val phase : t -> unit
(** Run one phase: weaken previous driven values, re-assert rails and
    pinned inputs, relax to fixpoint. Raises [Failure] if the relaxation
    does not converge (it always does on pass-transistor networks; the
    bound is [4 × nets + 16] sweeps); the message names the net count, the
    sweep limit and the nets still changing in the last sweep. *)

val phases_total : unit -> int
(** Cumulative number of {!phase} calls across every simulator instance
    (and every domain) since program start. Feeds the runtime metrics. *)

val sweeps_total : unit -> int
(** Cumulative relaxation sweeps across every simulator instance. *)

val run_phases : t -> int -> unit
(** [run_phases t k] runs [k] consecutive phases. *)
