let identifier k =
  (* Printable VCD id codes: ! .. ~ *)
  let base = 94 and first = 33 in
  let buf = Buffer.create 2 in
  let rec go k =
    Buffer.add_char buf (Char.chr (first + (k mod base)));
    if k >= base then go ((k / base) - 1)
  in
  go k;
  Buffer.contents buf

(* VCD reference names are whitespace-delimited tokens inside a
   [$var ... $end] construct, so embedded whitespace splits the
   declaration and a '$' can start a reserved keyword mid-token; both
   corrupt the file for downstream readers. Map every such byte (plus
   non-printables) to '_'. *)
let sanitize_name name =
  if name = "" then "_"
  else
    String.map (fun c -> if c <= ' ' || c = '$' || c > '~' then '_' else c) name

let to_string ?(timescale_ps = 1) ?(resolution = 1e-3) tr ~nets =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$comment ambipolar-cnfet transient dump $end\n";
  Printf.bprintf buf "$timescale %d ps $end\n" timescale_ps;
  Buffer.add_string buf "$scope module cnfet $end\n";
  List.iteri
    (fun k (_, name) ->
      Printf.bprintf buf "$var real 64 %s %s $end\n" (identifier k) (sanitize_name name))
    nets;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Merge all waveforms into a time-ordered change list. *)
  let changes = ref [] in
  List.iteri
    (fun k (net, _) ->
      let id = identifier k in
      let last = ref infinity in
      List.iter
        (fun (time, v) ->
          if Float.abs (v -. !last) > resolution then begin
            last := v;
            let ticks =
              int_of_float (Float.round (time /. (float_of_int timescale_ps *. 1e-12)))
            in
            changes := (ticks, id, v) :: !changes
          end)
        (Transient.waveform tr net))
    nets;
  let ordered = List.sort compare (List.rev !changes) in
  let current_time = ref (-1) in
  List.iter
    (fun (ticks, id, v) ->
      if ticks <> !current_time then begin
        Printf.bprintf buf "#%d\n" ticks;
        current_time := ticks
      end;
      Printf.bprintf buf "r%.6g %s\n" v id)
    ordered;
  Buffer.contents buf

let write_file path ?timescale_ps ?resolution tr ~nets =
  let oc = open_out path in
  output_string oc (to_string ?timescale_ps ?resolution tr ~nets);
  close_out oc
