type pin = Pinned0 | Pinned1 | PinnedX | Free

type t = {
  nl : Netlist.t;
  mutable values : Value.t array;
  mutable pins : pin array;
}

let create nl =
  let n = Netlist.net_count nl in
  { nl; values = Array.make n Value.floating; pins = Array.make n Free }

let netlist t = t.nl

let sync t =
  (* The netlist may have grown since creation. *)
  let n = Netlist.net_count t.nl in
  if n > Array.length t.values then begin
    let values = Array.make n Value.floating in
    Array.blit t.values 0 values 0 (Array.length t.values);
    let pins = Array.make n Free in
    Array.blit t.pins 0 pins 0 (Array.length t.pins);
    t.values <- values;
    t.pins <- pins
  end

let set_input t net b =
  sync t;
  t.pins.(Netlist.net_index net) <- (if b then Pinned1 else Pinned0)

let set_input_x t net =
  sync t;
  t.pins.(Netlist.net_index net) <- PinnedX

let release_input t net =
  sync t;
  t.pins.(Netlist.net_index net) <- Free

let value t net =
  sync t;
  t.values.(Netlist.net_index net)

let bool_of_net t net = Value.to_bool (value t net)

(* Conduction of an ambipolar device given its gate value. Returns
   [`On | `Off | `Unknown]. *)
let conduction pol (gate : Value.t) =
  match (pol, gate.Value.level, gate.Value.strength) with
  | Device.Ambipolar.Off_state, _, _ -> `Off
  | _, _, Value.Floating -> `Unknown
  | Device.Ambipolar.N_type, Value.L1, _ -> `On
  | Device.Ambipolar.N_type, Value.L0, _ -> `Off
  | Device.Ambipolar.P_type, Value.L0, _ -> `On
  | Device.Ambipolar.P_type, Value.L1, _ -> `Off
  | (Device.Ambipolar.N_type | Device.Ambipolar.P_type), Value.X, _ -> `Unknown

let assert_pins t =
  let v = t.values in
  v.(Netlist.net_index (Netlist.vdd t.nl)) <- Value.supply1;
  v.(Netlist.net_index (Netlist.gnd t.nl)) <- Value.supply0;
  Array.iteri
    (fun i p ->
      match p with
      | Pinned0 -> v.(i) <- Value.supply0
      | Pinned1 -> v.(i) <- Value.supply1
      | PinnedX -> v.(i) <- { Value.level = Value.X; strength = Value.Supply }
      | Free -> ())
    t.pins

(* Cumulative relaxation work across every simulator instance, for the
   runtime metrics layer. [Atomic] so parallel batch workers can share the
   counters without locking. *)
let total_phases = Atomic.make 0
let total_sweeps = Atomic.make 0

let phases_total () = Atomic.get total_phases
let sweeps_total () = Atomic.get total_sweeps

let nonconvergence_message t ~limit ~oscillating =
  let n = Array.length t.values in
  let names =
    List.sort_uniq compare oscillating
    |> List.map (fun i -> Netlist.net_name t.nl (Netlist.net_of_int t.nl i))
  in
  let shown, more =
    let rec take k = function
      | [] -> ([], 0)
      | _ :: _ as rest when k = 0 -> ([], List.length rest)
      | x :: rest ->
        let xs, dropped = take (k - 1) rest in
        (x :: xs, dropped)
    in
    take 8 names
  in
  Printf.sprintf
    "Sim.phase: relaxation did not converge (%d nets, sweep limit %d); still-oscillating nets: %s%s"
    n limit
    (if shown = [] then "<none recorded>" else String.concat ", " shown)
    (if more > 0 then Printf.sprintf " (+%d more)" more else "")

let phase t =
  Obs.Span.with_ "sim.phase" @@ fun () ->
  sync t;
  (* Decay previous phase's driven values to charge. *)
  t.values <- Array.map Value.weaken t.values;
  assert_pins t;
  let devs = Netlist.devices t.nl in
  let n = Array.length t.values in
  let limit = (4 * n) + 16 in
  let changed = ref true in
  let sweeps = ref 0 in
  Atomic.incr total_phases;
  (* Net indices that changed during the current sweep; on non-convergence
     the last completed sweep's set names the oscillating nets. *)
  let osc = ref [] in
  while !changed do
    if !sweeps > limit then failwith (nonconvergence_message t ~limit ~oscillating:!osc);
    incr sweeps;
    Atomic.incr total_sweeps;
    changed := false;
    osc := [];
    List.iter
      (fun d ->
        let gate, src, drn = Netlist.device_terminals t.nl d in
        let gi = Netlist.net_index gate
        and si = Netlist.net_index src
        and di = Netlist.net_index drn in
        let update i v =
          (* Pinned nets and rails never change. *)
          if t.pins.(i) = Free && i > 1 then begin
            let merged = Value.merge t.values.(i) v in
            if not (Value.equal merged t.values.(i)) then begin
              t.values.(i) <- merged;
              osc := i :: !osc;
              changed := true
            end
          end
        in
        (* A value seen through a switch is at most Driven: rails drive
           nets, they do not turn them into rails. *)
        let cap (v : Value.t) =
          match v.Value.strength with
          | Value.Supply -> { v with Value.strength = Value.Driven }
          | Value.Driven | Value.Charged | Value.Floating -> v
        in
        match conduction (Netlist.polarity t.nl d) t.values.(gi) with
        | `Off -> ()
        | `On ->
          update si (cap t.values.(di));
          update di (cap t.values.(si))
        | `Unknown ->
          (* If the two sides disagree at comparable strength the result is
             unknown; propagate a conservative X at the weaker side's
             strength. *)
          let a = t.values.(si) and b = t.values.(di) in
          if a.Value.level <> b.Value.level || a.Value.level = Value.X then begin
            let weaker (x : Value.t) (y : Value.t) =
              let rank (s : Value.strength) =
                match s with
                | Value.Floating -> 0
                | Value.Charged -> 1
                | Value.Driven -> 2
                | Value.Supply -> 3
              in
              if rank x.Value.strength <= rank y.Value.strength then x.Value.strength
              else y.Value.strength
            in
            let s = weaker a b in
            if s <> Value.Floating then begin
              let x = { Value.level = Value.X; strength = s } in
              update si x;
              update di x
            end
          end)
      devs
  done;
  if Obs.Span.enabled () then
    Obs.Span.instant ~args:[ ("sweeps", string_of_int !sweeps) ] "sim.settle"

let run_phases t k =
  for _ = 1 to k do
    phase t
  done
