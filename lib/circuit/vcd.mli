(** Value-change-dump (VCD) export of transient waveforms.

    Writes the nets recorded by a {!Transient} simulation as IEEE-1364 VCD
    with [real]-typed variables, viewable in GTKWave and friends. Samples
    are emitted only when a net moves by more than [resolution] volts, so
    dumps stay small. *)

val sanitize_name : string -> string
(** Display names are emitted as single VCD tokens: whitespace, ['$'] and
    non-printable bytes would corrupt the [$var] declaration, so each maps
    to ['_'] (empty names become ["_"]). *)

val to_string : ?timescale_ps:int -> ?resolution:float -> Transient.t -> nets:(Netlist.net * string) list -> string
(** [to_string tr ~nets] renders the recorded waveforms of the given nets
    (with display names, passed through {!sanitize_name}). Nets without
    recordings contribute no changes. Default timescale 1 ps, resolution
    1 mV. *)

val write_file : string -> ?timescale_ps:int -> ?resolution:float -> Transient.t -> nets:(Netlist.net * string) list -> unit
