(* Deterministic runtime fault injection.

   The central trick: a decision at a site is a pure function of
   (seed, site tag, index). Each tap hashes the coordinates (FNV-1a),
   feeds the hash to a fresh SplitMix stream and draws from that. No
   shared rng state means no lock on the hot path and no dependence on
   domain scheduling — two runs with the same seed inject exactly the
   same faults even when the pool interleaves differently. *)

exception Injected_fault of { site : string; index : int }

let () =
  Printexc.register_printer (function
    | Injected_fault { site; index } ->
      Some (Printf.sprintf "Fault.Inject.Injected_fault (%s #%d)" site index)
    | _ -> None)

type site =
  | Pool_task of { index : int }
  | Cache_store of { key : string }
  | Crosspoint of { index : int }
  | Pg_charge of { index : int }
  | Weight_cell of { index : int }
  | Read_port of { index : int }
  | Adc_sample of { index : int }

type action =
  | No_fault
  | Raise of exn
  | Crash_worker of exn
  | Stall of float
  | Corrupt

type plan = {
  task_raise : float;
  task_stall : float;
  stall_s : float;
  worker_crash : float;
  cache_corrupt : float;
  crosspoint_flip : float;
  crosspoint_closed_share : float;
  pg_drift : float;
  pg_drift_v : float;
  weight_sigma : float;
  read_noise_lsb : int;
  adc_bits : int;
}

let nothing =
  {
    task_raise = 0.0;
    task_stall = 0.0;
    stall_s = 0.0;
    worker_crash = 0.0;
    cache_corrupt = 0.0;
    crosspoint_flip = 0.0;
    crosspoint_closed_share = 0.25;
    pg_drift = 0.0;
    pg_drift_v = 0.0;
    weight_sigma = 0.0;
    read_noise_lsb = 0;
    adc_bits = 0;
  }

let default =
  {
    task_raise = 0.04;
    task_stall = 0.04;
    stall_s = 0.002;
    worker_crash = 0.03;
    cache_corrupt = 0.4;
    (* Device-fault rates must sit in the regime the spare budget can
       absorb (paper §5 argues ~1e-2): much higher and every map is
       honestly unrepairable, which exercises nothing. *)
    crosspoint_flip = 0.015;
    crosspoint_closed_share = 0.25;
    pg_drift = 0.08;
    pg_drift_v = 1.2;
    (* The analog classification knobs stay off in the default chaos
       plan: they only shape Classify evaluation, which arms its own
       engines with explicit sigma/LSB/ADC settings per grid point. *)
    weight_sigma = 0.0;
    read_noise_lsb = 0;
    adc_bits = 0;
  }

let categories =
  [
    "adc_clamp";
    "cache_corrupt";
    "crosspoint_flip";
    "pg_drift";
    "read_noise";
    "task_raise";
    "task_stall";
    "weight_perturb";
    "worker_crash";
  ]

type t = {
  seed : int;
  plan : plan;
  tallies : (string * int Atomic.t) list;  (* category -> injected count *)
}

let engine : t option Atomic.t = Atomic.make None

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Inject.arm: %s = %g not a probability" name p)

let check_nonneg name x =
  if not (x >= 0.0) then
    invalid_arg (Printf.sprintf "Inject.arm: %s = %g negative (or NaN)" name x)

let check_nonneg_int name x =
  if x < 0 then invalid_arg (Printf.sprintf "Inject.arm: %s = %d negative" name x)

let make ~seed plan =
  check_probability "task_raise" plan.task_raise;
  check_probability "task_stall" plan.task_stall;
  check_probability "worker_crash" plan.worker_crash;
  check_probability "cache_corrupt" plan.cache_corrupt;
  check_probability "crosspoint_flip" plan.crosspoint_flip;
  check_probability "crosspoint_closed_share" plan.crosspoint_closed_share;
  check_probability "pg_drift" plan.pg_drift;
  check_nonneg "weight_sigma" plan.weight_sigma;
  check_nonneg_int "read_noise_lsb" plan.read_noise_lsb;
  check_nonneg_int "adc_bits" plan.adc_bits;
  { seed; plan; tallies = List.map (fun c -> (c, Atomic.make 0)) categories }

let arm ~seed plan =
  let t = make ~seed plan in
  if not (Atomic.compare_and_set engine None (Some t)) then
    invalid_arg "Inject.arm: an engine is already armed";
  t

let disarm () = Atomic.set engine None

let armed () = Atomic.get engine <> None

let with_armed ~seed plan f =
  let t = arm ~seed plan in
  Fun.protect ~finally:disarm (fun () -> f t)

let counts t = List.map (fun (c, a) -> (c, Atomic.get a)) t.tallies

let total t = List.fold_left (fun n (_, a) -> n + Atomic.get a) 0 t.tallies

let tally t category = Atomic.incr (List.assoc category t.tallies)

(* --- decision streams --------------------------------------------------- *)

let fnv1a seed tag index_str =
  let h = ref 0xcbf29ce484222325L in
  let mix c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L
  in
  String.iter mix (string_of_int seed);
  mix '/';
  String.iter mix tag;
  mix '#';
  String.iter mix index_str;
  Int64.to_int !h

(* A short private stream per decision; draw order within a site is fixed
   by the code below, so every decision is reproducible in isolation. *)
let stream t tag index_str = Util.Rng.create (fnv1a t.seed tag index_str)

let site_tag = function
  | Pool_task _ -> "pool_task"
  | Cache_store _ -> "cache_store"
  | Crosspoint _ -> "crosspoint"
  | Pg_charge _ -> "pg_charge"
  | Weight_cell _ -> "weight_cell"
  | Read_port _ -> "read_port"
  | Adc_sample _ -> "adc_sample"

let site_index_str = function
  | Pool_task { index }
  | Crosspoint { index }
  | Pg_charge { index }
  | Weight_cell { index }
  | Read_port { index }
  | Adc_sample { index } -> string_of_int index
  | Cache_store { key } -> Digest.to_hex (Digest.string key)

(* Approximately standard normal: Irwin–Hall sum of 12 uniforms minus 6,
   the same shape Pla_timing uses. Bounded in ±6, which suits a device
   model better than a true unbounded gaussian. *)
let gauss rng =
  let s = ref 0.0 in
  for _ = 1 to 12 do
    s := !s +. Util.Rng.float rng 1.0
  done;
  !s -. 6.0

(* Raw (tally-free) draws shared by [tap] and the derived helpers. *)
let raw_weight_factor t index =
  if t.plan.weight_sigma = 0.0 then 1.0
  else 1.0 +. (t.plan.weight_sigma *. gauss (stream t "weight_cell" (string_of_int index)))

let raw_read_offset t index =
  let lsb = t.plan.read_noise_lsb in
  if lsb = 0 then 0
  else Util.Rng.int (stream t "read_port" (string_of_int index)) ((2 * lsb) + 1) - lsb

let tap site =
  match Atomic.get engine with
  | None -> No_fault
  | Some t -> (
    let tag = site_tag site and idx = site_index_str site in
    let rng = stream t tag idx in
    let decide category action =
      tally t category;
      action
    in
    match site with
    | Pool_task { index } ->
      (* Draw order: crash, raise, stall — one decision wins. *)
      if Util.Rng.bernoulli rng t.plan.worker_crash then
        decide "worker_crash" (Crash_worker (Injected_fault { site = "worker_crash"; index }))
      else if Util.Rng.bernoulli rng t.plan.task_raise then
        decide "task_raise" (Raise (Injected_fault { site = "task_raise"; index }))
      else if Util.Rng.bernoulli rng t.plan.task_stall then
        decide "task_stall" (Stall t.plan.stall_s)
      else No_fault
    | Cache_store _ ->
      if Util.Rng.bernoulli rng t.plan.cache_corrupt then decide "cache_corrupt" Corrupt
      else No_fault
    | Crosspoint _ ->
      if Util.Rng.bernoulli rng t.plan.crosspoint_flip then decide "crosspoint_flip" Corrupt
      else No_fault
    | Pg_charge _ ->
      if Util.Rng.bernoulli rng t.plan.pg_drift then decide "pg_drift" Corrupt else No_fault
    | Weight_cell { index } ->
      if raw_weight_factor t index <> 1.0 then decide "weight_perturb" Corrupt else No_fault
    | Read_port { index } ->
      if raw_read_offset t index <> 0 then decide "read_noise" Corrupt else No_fault
    | Adc_sample _ ->
      (* Clamping is value-dependent, not stochastic: a non-zero ADC
         width means every sample at this site is subject to it. *)
      if t.plan.adc_bits > 0 then decide "adc_clamp" Corrupt else No_fault)

let crosspoint_fault_of t ~index =
  let rng = stream t "crosspoint" (string_of_int index) in
  if Util.Rng.bernoulli rng t.plan.crosspoint_flip then begin
    tally t "crosspoint_flip";
    if Util.Rng.bernoulli rng t.plan.crosspoint_closed_share then Defect.Stuck_closed
    else Defect.Stuck_open
  end
  else Defect.Good

let crosspoint_fault ~index =
  match Atomic.get engine with
  | None -> Defect.Good
  | Some t -> crosspoint_fault_of t ~index

let pg_drift ~index =
  match Atomic.get engine with
  | None -> 0.0
  | Some t ->
    let rng = stream t "pg_charge" (string_of_int index) in
    if Util.Rng.bernoulli rng t.plan.pg_drift then begin
      tally t "pg_drift";
      if Util.Rng.bool rng then t.plan.pg_drift_v else -.t.plan.pg_drift_v
    end
    else 0.0

(* --- classification non-idealities --------------------------------------- *)

let weight_factor_of t ~index =
  let f = raw_weight_factor t index in
  if f <> 1.0 then tally t "weight_perturb";
  f

let weight_factor ~index =
  match Atomic.get engine with None -> 1.0 | Some t -> weight_factor_of t ~index

let read_offset_of t ~index =
  let off = raw_read_offset t index in
  if off <> 0 then tally t "read_noise";
  off

let read_offset ~index =
  match Atomic.get engine with None -> 0 | Some t -> read_offset_of t ~index

let adc_clamp_of t v =
  if t.plan.adc_bits = 0 then v
  else begin
    let lo = -(1 lsl (t.plan.adc_bits - 1)) in
    let hi = (1 lsl (t.plan.adc_bits - 1)) - 1 in
    if v < lo then begin
      tally t "adc_clamp";
      lo
    end
    else if v > hi then begin
      tally t "adc_clamp";
      hi
    end
    else v
  end

let adc_clamp v = match Atomic.get engine with None -> v | Some t -> adc_clamp_of t v
