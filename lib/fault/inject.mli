(** Deterministic runtime fault injection (the chaos engine).

    The offline fault layer ({!Defect}, {!Atpg}, {!Repair}) models a
    fabric that was broken at manufacture; this module breaks it {e while
    the runtime is serving}: pool tasks raise or stall, worker domains
    die mid-task, compiled-cache entries rot, programmed crosspoints flip
    to stuck states and polarity-gate charge drifts off its level — the
    failure modes the paper's programming protocol (Figs. 3–4) exists to
    survive.

    Sites in the runtime call {!tap} (or a convenience wrapper) at each
    hook point. With no engine armed every call is a single atomic load
    and a branch — the production no-op. When armed, the decision at a
    site is a {e pure function} of [(seed, site, index)]: a SplitMix
    stream keyed by hashing the coordinates, never shared mutable state,
    so the set of injected faults is identical no matter how pool
    domains interleave and a seeded chaos run is exactly reproducible.

    Only one engine can be armed at a time (they are process-global, like
    {!Obs.Trace} collectors). Arming is not nestable. *)

exception Injected_fault of { site : string; index : int }
(** The exception delivered by [Raise] and [Crash_worker] decisions.
    [site]/[index] name the decision coordinates so a failure is
    attributable to the plan, not to real code. *)

(** Where a fault can strike. The [index] (or key) is the deterministic
    coordinate of the decision. *)
type site =
  | Pool_task of { index : int }  (** a submitted task, keyed by submission number *)
  | Cache_store of { key : string }  (** a compiled entry at insert time *)
  | Crosspoint of { index : int }  (** programmed array cell, keyed by round *)
  | Pg_charge of { index : int }  (** polarity-gate storage node, keyed by round *)

(** What the site should do. *)
type action =
  | No_fault
  | Raise of exn  (** task fails alone with {!Injected_fault} *)
  | Crash_worker of exn  (** task fails {e and} the worker domain dies *)
  | Stall of float  (** artificial delay, seconds *)
  | Corrupt  (** site-specific silent data corruption *)

(** Per-site fault probabilities, all in [0, 1]. [nothing] disables
    everything; start from it and override. *)
type plan = {
  task_raise : float;  (** pool task raises {!Injected_fault} *)
  task_stall : float;  (** pool task stalls for [stall_s] first *)
  stall_s : float;
  worker_crash : float;  (** task poisons its whole worker domain *)
  cache_corrupt : float;  (** compiled entry bit-flipped at store time *)
  crosspoint_flip : float;  (** programmed cell goes stuck mid-run *)
  crosspoint_closed_share : float;  (** fraction of flips that are stuck-closed *)
  pg_drift : float;  (** stored PG charge drifts off its level *)
  pg_drift_v : float;  (** drift magnitude, volts *)
}

val nothing : plan

val default : plan
(** A moderately hostile plan used by [cnfet_tool chaos]: a few percent
    of tasks raise/stall, rare worker crashes, frequent cache corruption
    and crosspoint/PG faults. *)

type t
(** An armed engine: the seed, the plan and the per-category counters. *)

val arm : seed:int -> plan -> t
(** Install the engine process-wide. Raises [Invalid_argument] if one is
    already armed or a probability is out of range. *)

val disarm : unit -> unit
(** Remove the armed engine (idempotent). *)

val armed : unit -> bool

val with_armed : seed:int -> plan -> (t -> 'a) -> 'a
(** [arm], run, [disarm] even on exceptions. *)

val tap : site -> action
(** The hook the runtime calls. [No_fault] when disarmed. Decisions are
    counted on the armed engine by category. *)

val counts : t -> (string * int) list
(** Injected-fault counts by category ([task_raise], [task_stall],
    [worker_crash], [cache_corrupt], [crosspoint_flip], [pg_drift]),
    name-sorted, zero entries included. *)

val total : t -> int
(** Sum of all categories. *)

(** {2 Derived site decisions}

    Convenience wrappers for orchestrators that own the mutation (the
    chaos loop flips the crosspoint itself; the engine only decides). *)

val crosspoint_fault : index:int -> Defect.kind
(** [Good] unless the armed plan fires, else [Stuck_open]/[Stuck_closed]
    split by [crosspoint_closed_share]. *)

val pg_drift : index:int -> float
(** 0 unless the armed plan fires, else ±[pg_drift_v] (sign from the
    decision stream). *)
