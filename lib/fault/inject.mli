(** Deterministic runtime fault injection (the chaos engine).

    The offline fault layer ({!Defect}, {!Atpg}, {!Repair}) models a
    fabric that was broken at manufacture; this module breaks it {e while
    the runtime is serving}: pool tasks raise or stall, worker domains
    die mid-task, compiled-cache entries rot, programmed crosspoints flip
    to stuck states and polarity-gate charge drifts off its level — the
    failure modes the paper's programming protocol (Figs. 3–4) exists to
    survive.

    Sites in the runtime call {!tap} (or a convenience wrapper) at each
    hook point. With no engine armed every call is a single atomic load
    and a branch — the production no-op. When armed, the decision at a
    site is a {e pure function} of [(seed, site, index)]: a SplitMix
    stream keyed by hashing the coordinates, never shared mutable state,
    so the set of injected faults is identical no matter how pool
    domains interleave and a seeded chaos run is exactly reproducible.

    Only one engine can be armed at a time (they are process-global, like
    {!Obs.Trace} collectors). Arming is not nestable. *)

exception Injected_fault of { site : string; index : int }
(** The exception delivered by [Raise] and [Crash_worker] decisions.
    [site]/[index] name the decision coordinates so a failure is
    attributable to the plan, not to real code. *)

(** Where a fault can strike. The [index] (or key) is the deterministic
    coordinate of the decision. *)
type site =
  | Pool_task of { index : int }  (** a submitted task, keyed by submission number *)
  | Cache_store of { key : string }  (** a compiled entry at insert time *)
  | Crosspoint of { index : int }  (** programmed array cell, keyed by round *)
  | Pg_charge of { index : int }  (** polarity-gate storage node, keyed by round *)
  | Weight_cell of { index : int }
      (** classifier weight conductance, keyed by (class, feature) cell *)
  | Read_port of { index : int }  (** analog column read, keyed by (sample, class) *)
  | Adc_sample of { index : int }  (** ADC conversion of a column read *)

(** What the site should do. *)
type action =
  | No_fault
  | Raise of exn  (** task fails alone with {!Injected_fault} *)
  | Crash_worker of exn  (** task fails {e and} the worker domain dies *)
  | Stall of float  (** artificial delay, seconds *)
  | Corrupt  (** site-specific silent data corruption *)

(** Per-site fault probabilities, all in [0, 1]. [nothing] disables
    everything; start from it and override. *)
type plan = {
  task_raise : float;  (** pool task raises {!Injected_fault} *)
  task_stall : float;  (** pool task stalls for [stall_s] first *)
  stall_s : float;
  worker_crash : float;  (** task poisons its whole worker domain *)
  cache_corrupt : float;  (** compiled entry bit-flipped at store time *)
  crosspoint_flip : float;  (** programmed cell goes stuck mid-run *)
  crosspoint_closed_share : float;  (** fraction of flips that are stuck-closed *)
  pg_drift : float;  (** stored PG charge drifts off its level *)
  pg_drift_v : float;  (** drift magnitude, volts *)
  weight_sigma : float;
      (** D2D variation: each classifier weight cell's effective
          conductance is scaled once by [1 + sigma·g], [g] ≈ N(0,1) drawn
          from the cell's own (seed, site, index) stream — fixed for the
          device's lifetime, so it perturbs every read identically. 0
          disables. Must be ≥ 0 (not a probability). *)
  read_noise_lsb : int;
      (** per-read noise: every column read is offset by a uniform draw
          in [-lsb, +lsb], keyed by the read's (sample, class) index. 0
          disables. *)
  adc_bits : int;
      (** ADC width: accumulated scores are clamped to the signed
          [adc_bits] window [-2^(b-1), 2^(b-1)-1]. 0 means an ideal
          (unclamped) converter. *)
}

val nothing : plan

val default : plan
(** A moderately hostile plan used by [cnfet_tool chaos]: a few percent
    of tasks raise/stall, rare worker crashes, frequent cache corruption
    and crosspoint/PG faults. *)

type t
(** An armed engine: the seed, the plan and the per-category counters. *)

val make : seed:int -> plan -> t
(** Validate the plan and build an engine {e without} installing it
    process-wide. An explicit engine feeds the [_of] decision helpers
    below, so many independently-seeded engines can run concurrently
    (one per envelope grid point) while the global slot stays free.
    Raises [Invalid_argument] on an out-of-range plan field. *)

val arm : seed:int -> plan -> t
(** Install the engine process-wide. Raises [Invalid_argument] if one is
    already armed or a probability is out of range. *)

val disarm : unit -> unit
(** Remove the armed engine (idempotent). *)

val armed : unit -> bool

val with_armed : seed:int -> plan -> (t -> 'a) -> 'a
(** [arm], run, [disarm] even on exceptions. *)

val tap : site -> action
(** The hook the runtime calls. [No_fault] when disarmed. Decisions are
    counted on the armed engine by category. *)

val counts : t -> (string * int) list
(** Injected-fault counts by category ([task_raise], [task_stall],
    [worker_crash], [cache_corrupt], [crosspoint_flip], [pg_drift],
    [weight_perturb], [read_noise], [adc_clamp]), name-sorted, zero
    entries included. *)

val total : t -> int
(** Sum of all categories. *)

(** {2 Derived site decisions}

    Convenience wrappers for orchestrators that own the mutation (the
    chaos loop flips the crosspoint itself; the engine only decides). *)

val crosspoint_fault : index:int -> Defect.kind
(** [Good] unless the armed plan fires, else [Stuck_open]/[Stuck_closed]
    split by [crosspoint_closed_share]. *)

val crosspoint_fault_of : t -> index:int -> Defect.kind
(** {!crosspoint_fault} on an explicit engine from {!make}. Because each
    cell's decision is one uniform draw from its own (seed, site, index)
    stream compared against [crosspoint_flip], raising the rate on the
    same seed only {e adds} defective cells — defect sets are nested
    across rates, which is what makes envelope degradation curves
    monotone by construction. *)

val pg_drift : index:int -> float
(** 0 unless the armed plan fires, else ±[pg_drift_v] (sign from the
    decision stream). *)

(** {2 Classification non-idealities}

    The analog corruption model for the crossbar classifier (ported from
    the snn-soc FPGA plan: σ-percent D2D weight perturbation, ±LSB read
    noise, clamped ADC). Each comes in two forms: a global-engine form
    that is a single atomic load and a branch when disarmed — the
    production no-op, same discipline as {!tap} — and an [_of] form
    taking an explicit engine from {!make}, used when many engines with
    different plans run concurrently. Every draw is a pure function of
    (seed, site, index). *)

val weight_factor_of : t -> index:int -> float
(** Lifetime conductance scale for weight cell [index]: [1 + sigma·g]
    with [g] ≈ N(0,1) from the cell's stream; exactly 1.0 when
    [weight_sigma] is 0. Tallies [weight_perturb] on a non-unit draw. *)

val weight_factor : index:int -> float
(** Global-engine {!weight_factor_of}; 1.0 when disarmed. *)

val read_offset_of : t -> index:int -> int
(** Additive read noise for read [index]: uniform in
    [[-read_noise_lsb, +read_noise_lsb]]; 0 when the plan's LSB is 0.
    Tallies [read_noise] on a non-zero draw. *)

val read_offset : index:int -> int
(** Global-engine {!read_offset_of}; 0 when disarmed. *)

val adc_clamp_of : t -> int -> int
(** Clamp a score to the signed [adc_bits] window
    [[-2^(b-1), 2^(b-1)-1]]; identity when [adc_bits] is 0. Tallies
    [adc_clamp] when the value actually clips. *)

val adc_clamp : int -> int
(** Global-engine {!adc_clamp_of}; identity when disarmed. *)
