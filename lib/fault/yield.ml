type point = {
  defect_rate : float;
  yield_baseline : float;
  yield_remap : float;
  yield_spares : float;
  trials : int;
}

let draw_maps rng ?closed_share pla ~spare_rows ~defect_rate =
  let n_products = Cnfet.Pla.num_products pla in
  let n_rows = n_products + spare_rows in
  let n_in = Cnfet.Plane.cols (Cnfet.Pla.and_plane pla) in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  let and_defects =
    Defect.random rng ~rows:n_rows ~cols:n_in ~rate:defect_rate ?closed_share ()
  in
  let or_defects =
    Defect.random rng ~rows:n_out ~cols:n_rows ~rate:defect_rate ?closed_share ()
  in
  (and_defects, or_defects)

(* Restrict a defect map pair to the first n_products rows/columns for the
   no-spare scenarios. *)
let truncate_maps (and_defects, or_defects) n_products =
  let a = Defect.perfect ~rows:n_products ~cols:(Defect.cols and_defects) in
  for r = 0 to n_products - 1 do
    for c = 0 to Defect.cols and_defects - 1 do
      Defect.set a ~row:r ~col:c (Defect.kind and_defects ~row:r ~col:c)
    done
  done;
  let o = Defect.perfect ~rows:(Defect.rows or_defects) ~cols:n_products in
  for r = 0 to Defect.rows or_defects - 1 do
    for c = 0 to n_products - 1 do
      Defect.set o ~row:r ~col:c (Defect.kind or_defects ~row:r ~col:c)
    done
  done;
  (a, o)

type trial_outcome = { ok_baseline : bool; ok_remap : bool; ok_spares : bool }

let trial rng ?(spare_rows = 2) ?closed_share pla ~defect_rate =
  let n_products = Cnfet.Pla.num_products pla in
  let maps = draw_maps rng ?closed_share pla ~spare_rows ~defect_rate in
  let and_trunc, or_trunc = truncate_maps maps n_products in
  let ok_baseline = Repair.identity_works ~and_defects:and_trunc ~or_defects:or_trunc pla in
  let ok_remap =
    match Repair.repair ~spare_rows:0 ~and_defects:and_trunc ~or_defects:or_trunc pla with
    | Repair.Repaired _ -> true
    | Repair.Unrepairable -> false
  in
  let and_full, or_full = maps in
  let ok_spares =
    match Repair.repair ~spare_rows ~and_defects:and_full ~or_defects:or_full pla with
    | Repair.Repaired _ -> true
    | Repair.Unrepairable -> false
  in
  { ok_baseline; ok_remap; ok_spares }

let point_of_outcomes ~defect_rate outcomes =
  let trials = Array.length outcomes in
  let count f = Array.fold_left (fun n o -> if f o then n + 1 else n) 0 outcomes in
  let frac n = if trials = 0 then 0.0 else float_of_int n /. float_of_int trials in
  {
    defect_rate;
    yield_baseline = frac (count (fun o -> o.ok_baseline));
    yield_remap = frac (count (fun o -> o.ok_remap));
    yield_spares = frac (count (fun o -> o.ok_spares));
    trials;
  }

(* The generic sweep engine: every yield curve in the repo — the offline
   matching-feasibility one below, and the runtime chaos path in
   [Runtime.Chaos] (detect -> repair -> re-verify through the serving
   stack) — funnels through this one function, so BENCH/EXPERIMENTS
   numbers and chaos reports cannot drift apart structurally. *)

(* Each trial runs on its own [Rng.split] child, drawn in strict trial
   order: a trial's internal draw count can change (richer trial
   functions, more defect draws) without perturbing any later trial. *)
let estimate_with ~trial:run_trial rng ?(trials = 200) ~defect_rate () =
  let acc = ref [] in
  for _ = 1 to trials do
    let child = Util.Rng.split rng in
    acc := run_trial child ~defect_rate :: !acc
  done;
  point_of_outcomes ~defect_rate (Array.of_list (List.rev !acc))

(* FNV-1a over the little-endian bytes of each 64-bit word. *)
let fnv64 words =
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun w ->
      for b = 0 to 7 do
        let byte = Int64.logand (Int64.shift_right_logical w (8 * b)) 0xffL in
        h := Int64.mul (Int64.logxor !h byte) 0x100000001b3L
      done)
    words;
  !h

(* Every rate's stream is keyed by (one up-front master draw, the rate's
   own bit pattern) — never by the rate's position — so editing the rate
   list cannot shift any other rate's trials. The historical behaviour
   (one rng threaded through all rates in list order) made every point
   downstream of an inserted rate silently move; test_fault pins the
   independence. *)
let sweep_with ~trial rng ?trials ~rates () =
  let master = Util.Rng.bits64 rng in
  List.map
    (fun rate ->
      let key = fnv64 [ master; Int64.bits_of_float rate ] in
      estimate_with ~trial (Util.Rng.create (Int64.to_int key)) ?trials ~defect_rate:rate ())
    rates

let estimate rng ?trials ?(spare_rows = 2) ?closed_share pla ~defect_rate =
  estimate_with
    ~trial:(fun rng ~defect_rate -> trial rng ~spare_rows ?closed_share pla ~defect_rate)
    rng ?trials ~defect_rate ()

let sweep rng ?trials ?(spare_rows = 2) ?closed_share pla ~rates =
  sweep_with
    ~trial:(fun rng ~defect_rate -> trial rng ~spare_rows ?closed_share pla ~defect_rate)
    rng ?trials ~rates ()

let functional_check rng ?closed_share pla cover ~defect_rate ~spare_rows =
  let n_in = Cnfet.Pla.num_inputs pla in
  if n_in > 16 then invalid_arg "Yield.functional_check: too many inputs";
  let maps = draw_maps rng ?closed_share pla ~spare_rows ~defect_rate in
  let and_defects, or_defects = maps in
  match Repair.repair ~spare_rows ~and_defects ~or_defects pla with
  | Repair.Unrepairable -> None
  | Repair.Repaired assignment ->
    let rows = Cnfet.Pla.num_products pla + spare_rows in
    let physical = Repair.apply pla assignment ~rows in
    (* Evaluate the physical PLA through the defects and compare with the
       intended function. *)
    let ok = ref true in
    for m = 0 to (1 lsl n_in) - 1 do
      let inputs = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
      let products =
        Defect.eval_with_defects and_defects (Cnfet.Pla.and_plane physical) inputs
      in
      let or_rows = Defect.eval_with_defects or_defects (Cnfet.Pla.or_plane physical) products in
      let want = Logic.Cover.eval cover inputs in
      for o = 0 to Cnfet.Pla.num_outputs physical - 1 do
        let got = if Cnfet.Pla.output_inverted physical o then not or_rows.(o) else or_rows.(o) in
        if got <> Util.Bitvec.get want o then ok := false
      done
    done;
    Some !ok
