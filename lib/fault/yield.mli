(** Monte-Carlo yield of PLAs on defective arrays.

    For each trial a defect map is drawn at the given device defect rate
    and the mapped function is declared alive if (a) the identity mapping
    survives (baseline), or (b) remapping products to rows — with optional
    spare rows — finds a working assignment (fault-tolerant flow). The
    ratio of live trials estimates functional yield, the quantity the
    paper expects the regular architecture to improve. *)

type point = {
  defect_rate : float;
  yield_baseline : float;  (** identity mapping, no spares *)
  yield_remap : float;  (** matching-based remap, no spares *)
  yield_spares : float;  (** remap with the requested spare rows *)
  trials : int;
}

type trial_outcome = { ok_baseline : bool; ok_remap : bool; ok_spares : bool }
(** Survival of one drawn defect map under the three repair policies. *)

val trial : Util.Rng.t -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> defect_rate:float -> trial_outcome
(** One Monte-Carlo trial: draw a defect map from [rng] and judge the
    three policies on it. Exposed so batch engines can run trials on
    independently-seeded rngs in parallel (see [Runtime.Batch]). *)

val point_of_outcomes : defect_rate:float -> trial_outcome array -> point
(** Fold trial outcomes into a yield point. *)

val draw_maps : Util.Rng.t -> ?closed_share:float -> Cnfet.Pla.t -> spare_rows:int -> defect_rate:float -> Defect.map * Defect.map
(** Draw one (AND, OR) defect-map pair sized for [pla] plus [spare_rows]
    physical rows — the same draw {!trial} makes internally. Exposed so
    the runtime chaos loop injects defects with exactly the geometry the
    offline yield model uses. *)

val sweep_with : trial:(Util.Rng.t -> defect_rate:float -> trial_outcome) -> Util.Rng.t -> ?trials:int -> rates:float list -> unit -> point list
(** Generic sweep engine behind {!sweep}: run [trial] at each rate and
    fold the outcomes. [Runtime.Chaos] plugs in a trial that pushes each
    drawn defect map through the full detect → repair → re-verify serving
    path, so offline and chaos yield curves share one harness.

    Randomness is keyed, not threaded: one master draw is taken from
    [rng] up front, and each rate's trial stream derives from
    (master, the rate's value) with each trial on its own split child —
    so a rate's points depend only on the seed and that rate, never on
    which other rates are in the list or how many draws their trials
    made. Adding, removing or reordering rates leaves every other point
    bit-identical (duplicated rates repeat the same stream). *)

val estimate : Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> defect_rate:float -> point
(** Default 200 trials, 2 spare rows. Equivalent to folding {!trial}
    outcomes, each drawn on its own [Rng.split] child of [rng] in trial
    order. *)

val sweep : Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> rates:float list -> point list

val functional_check : Util.Rng.t -> ?closed_share:float -> Cnfet.Pla.t -> Logic.Cover.t -> defect_rate:float -> spare_rows:int -> bool option
(** Draw one defect map; if repair succeeds, exhaustively verify that the
    repaired PLA {e evaluated through the defects} still implements the
    cover ([Some ok]); [None] when unrepairable. Inputs must be ≤ 16. *)
