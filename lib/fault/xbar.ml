type demand = { row : int; label : int }

exception Duplicate_demand_row of { row : int }

exception Demand_out_of_range of { row : int; rows : int }

exception Bad_sweep_geometry of { demands : int; rows : int; cols : int }

let () =
  Printexc.register_printer (function
    | Duplicate_demand_row { row } ->
      Some (Printf.sprintf "Fault.Xbar.Duplicate_demand_row (row %d demanded twice)" row)
    | Demand_out_of_range { row; rows } ->
      Some (Printf.sprintf "Fault.Xbar.Demand_out_of_range (row %d of %d)" row rows)
    | Bad_sweep_geometry { demands; rows; cols } ->
      Some
        (Printf.sprintf
           "Fault.Xbar.Bad_sweep_geometry (%d demands cannot fit a %dx%d crossbar)" demands
           rows cols)
    | _ -> None)

let stuck_closed_rows_of_col m c =
  let acc = ref [] in
  for r = 0 to Defect.rows m - 1 do
    if Defect.kind m ~row:r ~col:c = Defect.Stuck_closed then acc := r :: !acc
  done;
  !acc

let rows_shorted m =
  let pairs = ref [] in
  for c = 0 to Defect.cols m - 1 do
    let rec all_pairs = function
      | r1 :: rest ->
        List.iter (fun r2 -> pairs := (min r1 r2, max r1 r2) :: !pairs) rest;
        all_pairs rest
      | [] -> ()
    in
    all_pairs (stuck_closed_rows_of_col m c)
  done;
  List.sort_uniq compare !pairs

let column_usable m ~row ~col =
  (match Defect.kind m ~row ~col with
  | Defect.Stuck_open -> false
  | Defect.Good | Defect.Stuck_closed -> true)
  && List.for_all
       (fun r -> r = row)
       (stuck_closed_rows_of_col m col)

let check_demands m demands =
  let rec first_duplicate seen = function
    | [] -> ()
    | r :: rest ->
      if List.mem r seen then raise (Duplicate_demand_row { row = r })
      else first_duplicate (r :: seen) rest
  in
  first_duplicate [] (List.map (fun d -> d.row) demands);
  List.iter
    (fun d ->
      if d.row < 0 || d.row >= Defect.rows m then
        raise (Demand_out_of_range { row = d.row; rows = Defect.rows m }))
    demands

(* Demanded rows shorted together carry conflicting signals. *)
let shorted_demand_conflict m demands =
  let demanded = List.map (fun d -> d.row) demands in
  List.exists
    (fun (r1, r2) -> List.mem r1 demanded && List.mem r2 demanded)
    (rows_shorted m)

let assign m demands =
  check_demands m demands;
  if shorted_demand_conflict m demands then None
  else begin
    let darr = Array.of_list demands in
    let n = Array.length darr in
    let n_cols = Defect.cols m in
    (* Augmenting-path matching demands -> columns. *)
    let col_of = Array.make n_cols (-1) in
    let assigned = Array.make n (-1) in
    let rec augment k visited =
      let rec try_cols c =
        if c >= n_cols then false
        else if (not visited.(c)) && column_usable m ~row:darr.(k).row ~col:c then begin
          visited.(c) <- true;
          if col_of.(c) = -1 || augment col_of.(c) visited then begin
            col_of.(c) <- k;
            assigned.(k) <- c;
            true
          end
          else try_cols (c + 1)
        end
        else try_cols (c + 1)
      in
      try_cols 0
    in
    let ok = ref true in
    for k = 0 to n - 1 do
      if !ok && not (augment k (Array.make n_cols false)) then ok := false
    done;
    if !ok then Some (List.mapi (fun k d -> (d, assigned.(k))) (Array.to_list darr))
    else None
  end

let identity_feasible m demands =
  check_demands m demands;
  (not (shorted_demand_conflict m demands))
  && List.for_all Fun.id
       (List.mapi (fun k d -> k < Defect.cols m && column_usable m ~row:d.row ~col:k) demands)

type point = {
  defect_rate : float;
  yield_identity : float;
  yield_assigned : float;
  trials : int;
}

let yield_sweep rng ?(trials = 300) ~rows ~cols ~demands rates =
  if demands > rows || demands > cols then raise (Bad_sweep_geometry { demands; rows; cols });
  let demand_list = List.init demands (fun k -> { row = k; label = k }) in
  List.map
    (fun rate ->
      let id_ok = ref 0 and as_ok = ref 0 in
      for _ = 1 to trials do
        let m = Defect.random rng ~rows ~cols ~rate () in
        if identity_feasible m demand_list then incr id_ok;
        if assign m demand_list <> None then incr as_ok
      done;
      {
        defect_rate = rate;
        yield_identity = float_of_int !id_ok /. float_of_int trials;
        yield_assigned = float_of_int !as_ok /. float_of_int trials;
        trials;
      })
    rates
