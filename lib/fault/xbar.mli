(** Defect tolerance in the interconnect crossbar (paper §4's pass-
    transistor array meets §5's unreliable devices).

    A routing demand asks each logical signal, entering on a fixed row, to
    reach its own output column; which {e physical} column serves which
    logical output is free. Defects constrain the choice:
    {ul
    {- a [Stuck_open] crosspoint cannot realize its connection;}
    {- a [Stuck_closed] crosspoint permanently ties its row and column:
       harmless when that very connection is wanted (a free switch), fatal
       for the column otherwise, and two stuck-closed devices on one
       column short their rows together, killing both if both carry
       demanded signals.}}

    Feasibility reduces to bipartite matching of logical outputs onto
    usable columns. *)

type demand = { row : int; label : int }
(** One signal entering on [row]; [label] identifies the logical output. *)

exception Duplicate_demand_row of { row : int }
(** Two demands on the same physical row. *)

exception Demand_out_of_range of { row : int; rows : int }
(** A demand row outside the defect map. *)

exception Bad_sweep_geometry of { demands : int; rows : int; cols : int }
(** More demands than the crossbar has rows or columns. *)

val rows_shorted : Defect.map -> (int * int) list
(** Pairs of distinct rows tied together by a doubly-stuck-closed
    column. *)

val column_usable : Defect.map -> row:int -> col:int -> bool
(** Can [col] deliver the signal of [row]? *)

val assign : Defect.map -> demand list -> (demand * int) list option
(** Assign a distinct physical column to every demand, avoiding defects;
    [None] when impossible. Demands must sit on distinct rows. *)

val identity_feasible : Defect.map -> demand list -> bool
(** Baseline without column freedom: demand [k] (in list order) must use
    physical column [k]. *)

type point = {
  defect_rate : float;
  yield_identity : float;
  yield_assigned : float;
  trials : int;
}

val yield_sweep : Util.Rng.t -> ?trials:int -> rows:int -> cols:int -> demands:int -> float list -> point list
(** [yield_sweep rng ~rows ~cols ~demands rates]: random defect maps at each rate, demands on the first
    [demands] rows; fraction of trials routable without and with column
    reassignment ([cols ≥ demands] gives spare columns). *)
