(** Test-pattern generation for programmed CNFET PLAs.

    After manufacture (or field reconfiguration) the array must be
    {e tested}: which input vectors expose which crosspoint faults? The
    single-fault model covers every crosspoint of both planes going
    stuck-open or stuck-closed. A fault is {e detected} by a vector when
    the faulty PLA's outputs differ from the good one's.

    Generation enumerates the input space (≤ 14 inputs), finds the
    detectable faults, and greedily compacts a complete test set — the
    regular structure keeps these sets small, one more practical payoff of
    the PLA architecture. *)

type plane_kind = And_plane | Or_plane

type fault = {
  plane : plane_kind;
  row : int;
  col : int;
  kind : Defect.kind;  (** [Stuck_open] or [Stuck_closed] *)
}

exception Too_many_inputs of { inputs : int; limit : int }
(** Raised by {!generate} and {!coverage} when the PLA has more than
    {!input_limit} inputs: both enumerate the whole input space, so the
    work is [2^inputs] and the limit is a guard against runaway jobs, not
    a soft heuristic. Catch it to fall back to sampled testing. *)

val input_limit : int
(** Largest exhaustively-enumerable input count (14). *)

val all_faults : Cnfet.Pla.t -> fault list
(** Every crosspoint of both planes × both fault kinds, except
    stuck-open faults on crosspoints programmed [Drop] (no effect by
    construction). *)

val faulty_outputs : Cnfet.Pla.t -> fault -> bool array -> bool array
(** Outputs of the PLA with the single fault injected. *)

val detects : Cnfet.Pla.t -> fault -> bool array -> bool

val generate : Cnfet.Pla.t -> bool array list * fault list
(** [(tests, undetectable)]: a compacted vector set detecting every
    detectable fault, and the faults no vector exposes (logically
    redundant crosspoint states).

    @raise Too_many_inputs above {!input_limit} inputs. *)

val coverage : Cnfet.Pla.t -> bool array list -> float
(** Fraction of detectable faults caught by a given vector set.

    @raise Too_many_inputs above {!input_limit} inputs. *)
