module Pla = Cnfet.Pla
module Plane = Cnfet.Plane
module Gnor = Cnfet.Gnor

type plane_kind = And_plane | Or_plane

type fault = { plane : plane_kind; row : int; col : int; kind : Defect.kind }

let all_faults pla =
  let faults = ref [] in
  let scan plane_kind plane =
    Plane.iter
      (fun row col mode ->
        if mode <> Gnor.Drop then
          faults := { plane = plane_kind; row; col; kind = Defect.Stuck_open } :: !faults;
        faults := { plane = plane_kind; row; col; kind = Defect.Stuck_closed } :: !faults)
      plane
  in
  scan And_plane (Pla.and_plane pla);
  scan Or_plane (Pla.or_plane pla);
  List.rev !faults

let maps_for pla fault =
  let and_plane = Pla.and_plane pla and or_plane = Pla.or_plane pla in
  let and_d = Defect.perfect ~rows:(Plane.rows and_plane) ~cols:(Plane.cols and_plane) in
  let or_d = Defect.perfect ~rows:(Plane.rows or_plane) ~cols:(Plane.cols or_plane) in
  (match fault.plane with
  | And_plane -> Defect.set and_d ~row:fault.row ~col:fault.col fault.kind
  | Or_plane -> Defect.set or_d ~row:fault.row ~col:fault.col fault.kind);
  (and_d, or_d)

let eval_with pla (and_d, or_d) inputs =
  let products = Defect.eval_with_defects and_d (Pla.and_plane pla) inputs in
  let rows = Defect.eval_with_defects or_d (Pla.or_plane pla) products in
  Array.init (Pla.num_outputs pla) (fun o ->
      if Pla.output_inverted pla o then not rows.(o) else rows.(o))

let faulty_outputs pla fault inputs = eval_with pla (maps_for pla fault) inputs

let detects pla fault inputs = faulty_outputs pla fault inputs <> Pla.eval pla inputs

exception Too_many_inputs of { inputs : int; limit : int }

let input_limit = 14

let check_size pla =
  let inputs = Pla.num_inputs pla in
  if inputs > input_limit then raise (Too_many_inputs { inputs; limit = input_limit })

let generate pla =
  check_size pla;
  let n_in = Pla.num_inputs pla in
  let faults = Array.of_list (all_faults pla) in
  let nf = Array.length faults in
  let maps = Array.map (maps_for pla) faults in
  (* detection matrix: for each vector, the set of faults it exposes. *)
  let total = 1 lsl n_in in
  let vector m = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
  let detected_by =
    Array.init total (fun m ->
        let inputs = vector m in
        let good = Pla.eval pla inputs in
        let hits = ref [] in
        for k = 0 to nf - 1 do
          if eval_with pla maps.(k) inputs <> good then hits := k :: !hits
        done;
        !hits)
  in
  let detectable = Array.make nf false in
  Array.iter (List.iter (fun k -> detectable.(k) <- true)) detected_by;
  (* Greedy cover: repeatedly take the vector exposing the most remaining
     faults. *)
  let remaining = Hashtbl.create nf in
  Array.iteri (fun k d -> if d then Hashtbl.replace remaining k ()) detectable;
  let tests = ref [] in
  while Hashtbl.length remaining > 0 do
    let best_m = ref 0 and best_gain = ref (-1) in
    for m = 0 to total - 1 do
      let gain = List.length (List.filter (Hashtbl.mem remaining) detected_by.(m)) in
      if gain > !best_gain then begin
        best_gain := gain;
        best_m := m
      end
    done;
    assert (!best_gain > 0);
    tests := vector !best_m :: !tests;
    List.iter (Hashtbl.remove remaining) detected_by.(!best_m)
  done;
  let undetectable = List.filteri (fun k _ -> not detectable.(k)) (Array.to_list faults) in
  (List.rev !tests, undetectable)

let coverage pla tests =
  check_size pla;
  let faults = all_faults pla in
  let detectable =
    List.filter
      (fun f ->
        let n_in = Pla.num_inputs pla in
        let rec any m =
          m < 1 lsl n_in
          && (detects pla f (Array.init n_in (fun i -> m land (1 lsl i) <> 0)) || any (m + 1))
        in
        any 0)
      faults
  in
  if detectable = [] then 1.0
  else begin
    let caught =
      List.filter (fun f -> List.exists (fun v -> detects pla f v) tests) detectable
    in
    float_of_int (List.length caught) /. float_of_int (List.length detectable)
  end
