type assignment = int array

type outcome = Repaired of assignment | Unrepairable

type plane_side = And_side | Or_side

exception No_spare_rows of { fn : string; spare_rows : int }

exception
  Shape_mismatch of {
    fn : string;
    plane : plane_side;
    expected_rows : int;
    expected_cols : int;
    got_rows : int;
    got_cols : int;
  }

exception Bad_product of { fn : string; product : int; num_products : int }

exception Bad_row of { fn : string; row : int; rows : int }

exception Bad_assignment of { fn : string; expected : int; got : int }

let side_name = function And_side -> "AND" | Or_side -> "OR"

let () =
  Printexc.register_printer (function
    | No_spare_rows { fn; spare_rows } ->
      Some (Printf.sprintf "Fault.Repair.No_spare_rows (%s: spare_rows = %d)" fn spare_rows)
    | Shape_mismatch { fn; plane; expected_rows; expected_cols; got_rows; got_cols } ->
      Some
        (Printf.sprintf
           "Fault.Repair.Shape_mismatch (%s: %s-plane defect map is %dx%d, PLA needs %dx%d)"
           fn (side_name plane) got_rows got_cols expected_rows expected_cols)
    | Bad_product { fn; product; num_products } ->
      Some
        (Printf.sprintf "Fault.Repair.Bad_product (%s: product %d of %d)" fn product
           num_products)
    | Bad_row { fn; row; rows } ->
      Some (Printf.sprintf "Fault.Repair.Bad_row (%s: row %d of %d)" fn row rows)
    | Bad_assignment { fn; expected; got } ->
      Some
        (Printf.sprintf "Fault.Repair.Bad_assignment (%s: %d entries for %d products)" fn got
           expected)
    | _ -> None)

(* The defect maps must agree with the physical array hosting the PLA:
   AND plane is [products + spares] rows x [input columns] (or wider,
   when the flow also carries spare columns — column permutation),
   OR plane is [outputs] rows x [products + spares] columns. Anything
   else means the caller mixed up arrays — fail loudly before matching. *)
let check_shapes ?(allow_spare_columns = false) ~fn ~spare_rows ~and_defects ~or_defects pla =
  if spare_rows < 0 then raise (No_spare_rows { fn; spare_rows });
  let n_rows = Cnfet.Pla.num_products pla + spare_rows in
  let and_cols = Cnfet.Plane.cols (Cnfet.Pla.and_plane pla) in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  let and_cols_bad =
    if allow_spare_columns then Defect.cols and_defects < and_cols
    else Defect.cols and_defects <> and_cols
  in
  if Defect.rows and_defects <> n_rows || and_cols_bad then
    raise
      (Shape_mismatch
         {
           fn;
           plane = And_side;
           expected_rows = n_rows;
           expected_cols = and_cols;
           got_rows = Defect.rows and_defects;
           got_cols = Defect.cols and_defects;
         });
  if Defect.rows or_defects <> n_out || Defect.cols or_defects <> n_rows then
    raise
      (Shape_mismatch
         {
           fn;
           plane = Or_side;
           expected_rows = n_out;
           expected_cols = n_rows;
           got_rows = Defect.rows or_defects;
           got_cols = Defect.cols or_defects;
         })

(* A stuck-closed device conducts regardless of its gate: anywhere in an OR
   row it discharges that output's pre-charged line on every evaluation and
   kills the output outright — no assignment can help. *)
let or_row_dead or_defects o =
  let dead = ref false in
  for c = 0 to Defect.cols or_defects - 1 do
    if Defect.kind or_defects ~row:o ~col:c = Defect.Stuck_closed then dead := true
  done;
  !dead

let product_row_compatible ~and_defects ~or_defects pla ~product ~row =
  let and_plane = Cnfet.Pla.and_plane pla and or_plane = Cnfet.Pla.or_plane pla in
  if product < 0 || product >= Cnfet.Plane.rows and_plane then
    raise
      (Bad_product
         {
           fn = "product_row_compatible";
           product;
           num_products = Cnfet.Plane.rows and_plane;
         });
  if row < 0 || row >= Defect.rows and_defects then
    raise (Bad_row { fn = "product_row_compatible"; row; rows = Defect.rows and_defects });
  Defect.compatible_and_row and_defects ~row (Cnfet.Plane.row_modes and_plane product)
  &&
  (* OR plane: physical column [row] feeds every output; a stuck-open
     crosspoint (o, row) cannot deliver a selected product, and any
     stuck-closed crosspoint kills the output (checked globally too). *)
  (let n_out = Cnfet.Plane.rows or_plane in
   let rec outputs_ok o =
     if o >= n_out then true
     else begin
       let selected = Cnfet.Plane.mode or_plane ~row:o ~col:product = Cnfet.Gnor.Pass in
       let ok =
         match Defect.kind or_defects ~row:o ~col:row with
         | Defect.Good -> true
         | Defect.Stuck_open -> not selected
         | Defect.Stuck_closed -> false
       in
       ok && outputs_ok (o + 1)
     end
   in
   outputs_ok 0)

(* Augmenting-path bipartite matching: products on the left, physical rows
   on the right. Returns the assignment array (unmatched products hold -1)
   and the matching size. *)
let matching compat n_products n_rows =
  let row_of = Array.make n_rows (-1) in
  let assigned = Array.make n_products (-1) in
  let rec augment j visited =
    let rec try_rows r =
      if r >= n_rows then false
      else if (not visited.(r)) && compat j r then begin
        visited.(r) <- true;
        if row_of.(r) = -1 || augment row_of.(r) visited then begin
          row_of.(r) <- j;
          assigned.(j) <- r;
          true
        end
        else try_rows (r + 1)
      end
      else try_rows (r + 1)
    in
    try_rows 0
  in
  let size = ref 0 in
  for j = 0 to n_products - 1 do
    if augment j (Array.make n_rows false) then incr size
  done;
  (assigned, !size)

let repair ?(spare_rows = 0) ~and_defects ~or_defects pla =
  check_shapes ~fn:"repair" ~spare_rows ~and_defects ~or_defects pla;
  let n_products = Cnfet.Pla.num_products pla in
  let n_rows = n_products + spare_rows in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  let any_dead_output =
    List.exists (fun o -> or_row_dead or_defects o) (List.init n_out Fun.id)
  in
  if any_dead_output then Unrepairable
  else begin
    let compat j r = product_row_compatible ~and_defects ~or_defects pla ~product:j ~row:r in
    let assigned, size = matching compat n_products n_rows in
    if size = n_products then Repaired assigned else Unrepairable
  end

let identity_works ~and_defects ~or_defects pla =
  let n_products = Cnfet.Pla.num_products pla in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  (not (List.exists (fun o -> or_row_dead or_defects o) (List.init n_out Fun.id)))
  &&
  let rec go j =
    j >= n_products
    || (product_row_compatible ~and_defects ~or_defects pla ~product:j ~row:j && go (j + 1))
  in
  go 0

let apply pla assignment ~rows =
  let and_plane = Cnfet.Pla.and_plane pla and or_plane = Cnfet.Pla.or_plane pla in
  let n_products = Cnfet.Pla.num_products pla in
  if Array.length assignment <> n_products then
    raise (Bad_assignment { fn = "apply"; expected = n_products; got = Array.length assignment });
  let n_in = Cnfet.Pla.num_inputs pla and n_out = Cnfet.Pla.num_outputs pla in
  let new_and = Cnfet.Plane.create ~rows ~cols:(Cnfet.Plane.cols and_plane) in
  let new_or = Cnfet.Plane.create ~rows:(Cnfet.Plane.rows or_plane) ~cols:rows in
  Array.iteri
    (fun j r ->
      if r < 0 || r >= rows then raise (Bad_row { fn = "apply"; row = r; rows });
      Cnfet.Plane.configure_row new_and r (Cnfet.Plane.row_modes and_plane j);
      for o = 0 to Cnfet.Plane.rows or_plane - 1 do
        Cnfet.Plane.set_mode new_or ~row:o ~col:r (Cnfet.Plane.mode or_plane ~row:o ~col:j)
      done)
    assignment;
  let inverted = Array.init n_out (fun o -> Cnfet.Pla.output_inverted pla o) in
  Cnfet.Pla.of_planes ~n_in ~n_out ~and_plane:new_and ~or_plane:new_or
    ~inverted_outputs:(Array.map not inverted)

(* --- input-column permutation --------------------------------------------- *)

type column_outcome = { row_assignment : assignment; column_of_input : int array }

(* Compatibility of product [j] with physical row [r] when logical input [i]
   rides physical column [columns.(i)]. *)
let compatible_permuted ~and_defects ~or_defects ~columns pla ~product ~row =
  let and_plane = Cnfet.Pla.and_plane pla in
  let logical = Cnfet.Plane.row_modes and_plane product in
  let physical = Array.make (Defect.cols and_defects) Cnfet.Gnor.Drop in
  Array.iteri (fun i m -> physical.(columns.(i)) <- m) logical;
  Defect.compatible_and_row and_defects ~row physical
  &&
  let or_plane = Cnfet.Pla.or_plane pla in
  let n_out = Cnfet.Plane.rows or_plane in
  let rec outputs_ok o =
    if o >= n_out then true
    else begin
      let selected = Cnfet.Plane.mode or_plane ~row:o ~col:product = Cnfet.Gnor.Pass in
      let ok =
        match Defect.kind or_defects ~row:o ~col:row with
        | Defect.Good -> true
        | Defect.Stuck_open -> not selected
        | Defect.Stuck_closed -> false
      in
      ok && outputs_ok (o + 1)
    end
  in
  outputs_ok 0

let matching_size ?(spare_rows = 0) ~and_defects ~or_defects ~columns pla =
  check_shapes ~allow_spare_columns:true ~fn:"matching_size" ~spare_rows ~and_defects
    ~or_defects pla;
  let n_products = Cnfet.Pla.num_products pla in
  let n_rows = n_products + spare_rows in
  let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
  if List.exists (fun o -> or_row_dead or_defects o) (List.init n_out Fun.id) then 0
  else begin
    let compat j r =
      compatible_permuted ~and_defects ~or_defects ~columns pla ~product:j ~row:r
    in
    snd (matching compat n_products n_rows)
  end

let repair_permuting_inputs rng ?(spare_rows = 0) ?(attempts = 200) ~and_defects ~or_defects
    pla =
  check_shapes ~allow_spare_columns:true ~fn:"repair_permuting_inputs" ~spare_rows
    ~and_defects ~or_defects pla;
  let n_products = Cnfet.Pla.num_products pla in
  let n_cols = Defect.cols and_defects in
  let columns = Array.init n_cols Fun.id in
  let score cols = matching_size ~spare_rows ~and_defects ~or_defects ~columns:cols pla in
  let best = ref (score columns) in
  let result () =
    if !best < n_products then None
    else begin
      let compat j r =
        compatible_permuted ~and_defects ~or_defects ~columns pla ~product:j ~row:r
      in
      let assigned, size = matching compat n_products (n_products + spare_rows) in
      assert (size = n_products);
      Some { row_assignment = assigned; column_of_input = Array.copy columns }
    end
  in
  match result () with
  | Some r -> Some r
  | None ->
    (* Hill-climb on random column swaps, keeping non-degrading moves. *)
    let rec climb k =
      if k = 0 then result ()
      else if !best >= n_products then result ()
      else begin
        let a = Util.Rng.int rng n_cols and b = Util.Rng.int rng n_cols in
        if a = b then climb (k - 1)
        else begin
          let swap () =
            let t = columns.(a) in
            columns.(a) <- columns.(b);
            columns.(b) <- t
          in
          swap ();
          let s = score columns in
          if s >= !best then begin
            best := s;
            climb (k - 1)
          end
          else begin
            swap ();
            climb (k - 1)
          end
        end
      end
    in
    climb attempts

let apply_with_columns pla outcome ~rows =
  let moved = apply pla outcome.row_assignment ~rows in
  let and_plane = Cnfet.Pla.and_plane moved in
  let n_in = Cnfet.Pla.num_inputs pla and n_out = Cnfet.Pla.num_outputs pla in
  let n_cols = Cnfet.Plane.cols and_plane in
  let permuted = Cnfet.Plane.create ~rows:(Cnfet.Plane.rows and_plane) ~cols:n_cols in
  for r = 0 to Cnfet.Plane.rows and_plane - 1 do
    for i = 0 to n_in - 1 do
      Cnfet.Plane.set_mode permuted ~row:r ~col:outcome.column_of_input.(i)
        (Cnfet.Plane.mode and_plane ~row:r ~col:i)
    done
  done;
  let inverted = Array.init n_out (fun o -> Cnfet.Pla.output_inverted pla o) in
  Cnfet.Pla.of_planes ~n_in ~n_out ~and_plane:permuted
    ~or_plane:(Cnfet.Pla.or_plane moved) ~inverted_outputs:(Array.map not inverted)
