(** Defect-avoiding mapping of a cover onto a PLA with spare rows.

    Product terms are interchangeable across physical AND-plane rows, so a
    defective array can still host a function if an assignment of products
    to rows exists in which every product lands on a compatible row. The
    assignment must respect both planes:
    {ul
    {- the AND-plane row must accept the product's literal pattern
       ({!Defect.compatible_and_row});}
    {- for every output, the OR-plane crosspoint [(o, row)] must be
       programmable to the needed state: [Stuck_open] is fine when output
       [o] does not select the product; a [Stuck_closed] crosspoint
       conducts regardless of its gate and therefore kills output [o]
       outright (the whole PLA is unrepairable without a spare output).}}

    The assignment is found with augmenting-path bipartite matching
    (optimal for this per-row compatibility model: it finds a complete
    matching whenever one exists). *)

type assignment = int array
(** [assignment.(j)] = physical AND row hosting product [j]. *)

type outcome = Repaired of assignment | Unrepairable

(** {1 Typed errors}

    Misuse raises one of these instead of a bare [Invalid_argument]: each
    carries the offending call, the expected geometry and what was
    actually passed, and registers a printer, so a failure deep inside a
    chaos run or a shrunk property counterexample names itself. *)

type plane_side = And_side | Or_side

exception No_spare_rows of { fn : string; spare_rows : int }
(** Negative spare-row budget. *)

exception
  Shape_mismatch of {
    fn : string;
    plane : plane_side;
    expected_rows : int;
    expected_cols : int;
    got_rows : int;
    got_cols : int;
  }
(** A defect map's dimensions disagree with the PLA being repaired: the
    AND map must be [products + spares] x [input columns] (at least that
    wide for the column-permuting flow), the OR map [outputs] x
    [products + spares]. *)

exception Bad_product of { fn : string; product : int; num_products : int }

exception Bad_row of { fn : string; row : int; rows : int }

exception Bad_assignment of { fn : string; expected : int; got : int }
(** An assignment array whose length is not the product count. *)

val product_row_compatible : and_defects:Defect.map -> or_defects:Defect.map -> Cnfet.Pla.t -> product:int -> row:int -> bool
(** Can product [product] of the mapped PLA live on physical row [row]? *)

val repair : ?spare_rows:int -> and_defects:Defect.map -> or_defects:Defect.map -> Cnfet.Pla.t -> outcome
(** Find an assignment of the PLA's products to the physical rows
    (products + [spare_rows] of them; the defect maps must have exactly
    that many rows in the AND plane / columns in the OR plane). *)

val identity_works : and_defects:Defect.map -> or_defects:Defect.map -> Cnfet.Pla.t -> bool
(** Baseline without remapping: does the identity assignment (product [j]
    on row [j], spares unused) survive the defects? *)

val apply : Cnfet.Pla.t -> assignment -> rows:int -> Cnfet.Pla.t
(** Rebuild the PLA with products moved to their assigned physical rows
    ([rows] total; unused rows stay fully dropped). The result computes
    the same function on a defect-free array. *)

(** {1 Input-column permutation}

    Rows are not the only degree of freedom of the regular array: which
    {e physical column} carries which logical input is also free (the
    column order only changes wiring at the PLA boundary). Permuting
    columns can dodge defects that no row assignment avoids. *)

type column_outcome = {
  row_assignment : assignment;
  column_of_input : int array;  (** logical input [i] rides physical column
                                    [column_of_input.(i)] *)
}

val matching_size : ?spare_rows:int -> and_defects:Defect.map -> or_defects:Defect.map -> columns:int array -> Cnfet.Pla.t -> int
(** Largest number of products placeable under the given column
    permutation (bipartite matching size); equals the product count iff a
    full repair exists. *)

val repair_permuting_inputs : Util.Rng.t -> ?spare_rows:int -> ?attempts:int -> and_defects:Defect.map -> or_defects:Defect.map -> Cnfet.Pla.t -> column_outcome option
(** Hill-climb over column swaps (default 200 attempts), maximizing the
    matching size; returns the first permutation achieving a complete
    repair. Starts from the identity, so it subsumes {!repair}. *)

val apply_with_columns : Cnfet.Pla.t -> column_outcome -> rows:int -> Cnfet.Pla.t
(** Rebuild the PLA with both the row assignment and the column
    permutation applied. *)
