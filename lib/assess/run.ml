type metric = {
  name : string;
  units : string;
  higher_is_better : bool;
  samples : float array;
}

type t = {
  schema_version : int;
  run_id : string;
  profile : string;
  seed : int;
  git_rev : string;
  host : string;
  created_at : string;
  wall_s : float;
  meta : (string * string) list;
  metrics : metric list;
}

type error =
  | Parse of Json.error
  | Schema of string
  | Io of string

let pp_error fmt = function
  | Parse { pos; msg } -> Format.fprintf fmt "parse error at byte %d: %s" pos msg
  | Schema msg -> Format.fprintf fmt "schema error: %s" msg
  | Io msg -> Format.fprintf fmt "io error: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

let schema_version = 1
let default_dir = "_bench/runs"

let metric ?(units = "") ?(higher_is_better = true) name samples =
  { name; units; higher_is_better; samples }

let find_metric t name = List.find_opt (fun m -> m.name = name) t.metrics

(* --- environment probes --------------------------------------------------- *)

let utc_stamp ?(compact = false) () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let fmt : _ format =
    if compact then "%04d%02d%02dT%02d%02d%02dZ" else "%04d-%02d-%02dT%02d:%02d:%02dZ"
  in
  Printf.sprintf fmt (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let read_first_line path =
  try
    let ic = open_in path in
    let line = try Some (input_line ic) with End_of_file -> None in
    close_in_noerr ic;
    line
  with Sys_error _ -> None

(* Best-effort git revision without shelling out: follow .git/HEAD one
   level, walking up from the current directory. *)
let git_rev_of_env () =
  let rec find_git dir depth =
    if depth > 6 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists (Filename.concat cand "HEAD") then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git -> (
    match read_first_line (Filename.concat git "HEAD") with
    | None -> "unknown"
    | Some head ->
      let prefix = "ref: " in
      if String.length head > String.length prefix
         && String.sub head 0 (String.length prefix) = prefix
      then begin
        let ref_path =
          String.sub head (String.length prefix) (String.length head - String.length prefix)
        in
        match read_first_line (Filename.concat git ref_path) with
        | Some rev when String.length rev >= 7 -> String.sub rev 0 12
        | _ -> "unknown"
      end
      else if String.length head >= 7 then String.sub head 0 12
      else "unknown")

(* Process-local counter + PID + time: unique ids without any global
   random state. *)
let id_counter = Atomic.make 0

let sanitize_component s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let fresh_run_id ~profile ~seed =
  let k = Atomic.fetch_and_add id_counter 1 in
  let entropy =
    (Unix.getpid () * 131071) lxor (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF)
    lxor (k * 8191)
  in
  Printf.sprintf "%s-%s-s%d-%06x"
    (sanitize_component profile)
    (utc_stamp ~compact:true ())
    seed (entropy land 0xFFFFFF)

let create ?run_id ?git_rev ?host ?created_at ?(meta = []) ~profile ~seed ~wall_s metrics
    =
  let run_id = match run_id with Some id -> id | None -> fresh_run_id ~profile ~seed in
  let git_rev = match git_rev with Some r -> r | None -> git_rev_of_env () in
  let host =
    match host with
    | Some h -> h
    | None -> ( try Unix.gethostname () with Unix.Unix_error _ -> "unknown")
  in
  let created_at = match created_at with Some c -> c | None -> utc_stamp () in
  { schema_version; run_id; profile; seed; git_rev; host; created_at; wall_s; meta; metrics }

(* --- JSON ------------------------------------------------------------------ *)

let json_of_metric m =
  Json.Obj
    [
      ("name", Json.String m.name);
      ("units", Json.String m.units);
      ("higher_is_better", Json.Bool m.higher_is_better);
      ("samples", Json.List (Array.to_list (Array.map (fun s -> Json.Number s) m.samples)));
    ]

let to_json t =
  Json.to_string ~indent:2
    (Json.Obj
       [
         ("schema_version", Json.Number (float_of_int t.schema_version));
         ("run_id", Json.String t.run_id);
         ("profile", Json.String t.profile);
         ("seed", Json.Number (float_of_int t.seed));
         ("git_rev", Json.String t.git_rev);
         ("host", Json.String t.host);
         ("created_at", Json.String t.created_at);
         ("wall_s", Json.Number t.wall_s);
         ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.meta));
         ("metrics", Json.List (List.map json_of_metric t.metrics));
       ])
  ^ "\n"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv v =
  match Json.member name v with
  | None -> Error (Schema (Printf.sprintf "missing field %S" name))
  | Some x -> (
    match conv x with
    | Some y -> Ok y
    | None -> Error (Schema (Printf.sprintf "field %S has the wrong type" name)))

let metric_of_json v =
  let* name = field "name" Json.to_str v in
  let* units = field "units" Json.to_str v in
  let* higher_is_better = field "higher_is_better" Json.to_bool v in
  let* samples = field "samples" Json.to_list v in
  let rec floats acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | x :: rest -> (
      match Json.to_float x with
      | Some f when Float.is_finite f -> floats (f :: acc) rest
      | Some _ -> Error (Schema (Printf.sprintf "metric %S: non-finite sample" name))
      | None -> Error (Schema (Printf.sprintf "metric %S: non-number sample" name)))
  in
  let* samples = floats [] samples in
  Ok { name; units; higher_is_better; samples }

let of_json s =
  match Json.parse s with
  | Error e -> Error (Parse e)
  | Ok v ->
    let* schema_version = field "schema_version" Json.to_int v in
    if schema_version <> 1 then
      Error (Schema (Printf.sprintf "unsupported schema_version %d" schema_version))
    else
      let* run_id = field "run_id" Json.to_str v in
      let* profile = field "profile" Json.to_str v in
      let* seed = field "seed" Json.to_int v in
      let* git_rev = field "git_rev" Json.to_str v in
      let* host = field "host" Json.to_str v in
      let* created_at = field "created_at" Json.to_str v in
      let* wall_s = field "wall_s" Json.to_float v in
      let* wall_s =
        if Float.is_finite wall_s then Ok wall_s
        else Error (Schema "field \"wall_s\" is not finite")
      in
      let* meta_obj =
        match Json.member "meta" v with
        | Some (Json.Obj fields) -> Ok fields
        | Some _ -> Error (Schema "field \"meta\" has the wrong type")
        | None -> Error (Schema "missing field \"meta\"")
      in
      let rec meta_strings acc = function
        | [] -> Ok (List.rev acc)
        | (k, x) :: rest -> (
          match Json.to_str x with
          | Some s -> meta_strings ((k, s) :: acc) rest
          | None -> Error (Schema (Printf.sprintf "meta %S: non-string value" k)))
      in
      let* meta = meta_strings [] meta_obj in
      let* metric_vals = field "metrics" Json.to_list v in
      let rec metrics acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest ->
          let* m = metric_of_json x in
          metrics (m :: acc) rest
      in
      let* metrics = metrics [] metric_vals in
      Ok
        {
          schema_version;
          run_id;
          profile;
          seed;
          git_rev;
          host;
          created_at;
          wall_s;
          meta;
          metrics;
        }

(* --- artifact directories -------------------------------------------------- *)

let mkdir_p path =
  let rec go path =
    if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
    else begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let save ~dir t =
  try
    let run_dir = Filename.concat dir t.run_id in
    mkdir_p run_dir;
    let path = Filename.concat run_dir "run.json" in
    let oc = open_out path in
    output_string oc (to_json t);
    close_out oc;
    let index = Filename.concat dir "index.tsv" in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 index in
    Printf.fprintf oc "%s\t%s\t%s\t%d\n" t.run_id t.profile t.created_at t.seed;
    close_out oc;
    Ok run_dir
  with
  | Sys_error msg -> Error (Io msg)
  | Unix.Unix_error (e, fn, arg) ->
    Error (Io (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let load path =
  let file =
    if Sys.file_exists path && Sys.is_directory path then Filename.concat path "run.json"
    else path
  in
  match
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in_noerr ic;
    s
  with
  | s -> of_json s
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (file ^ ": truncated read"))
