(** The benchmark-run artifact model.

    One {!t} is one execution of a named bench profile: who ran it (git
    rev, host), how (seed, repeats), and what it measured — named metric
    {e series} carrying every repeat sample, not a single point, because
    the A/B comparator needs the spread to tell signal from noise.

    Runs serialize to a stable JSON schema and live in per-run artifact
    directories: {!save} writes [dir/<run_id>/run.json] and appends a
    line to [dir/index.tsv]; {!load} accepts the run directory, the
    [run.json] inside it, or any path to a run document (so the tracked
    baseline under [_bench/baseline/<profile>/] loads the same way as a
    fresh run under [_bench/runs/]). Parsing is total: truncated or
    corrupted documents yield a typed {!error}, never an exception. *)

type metric = {
  name : string;
  units : string;
  higher_is_better : bool;
  samples : float array;  (** one entry per repeat, in execution order *)
}

type t = {
  schema_version : int;
  run_id : string;
  profile : string;
  seed : int;
  git_rev : string;
  host : string;
  created_at : string;  (** ISO-8601 UTC wall-clock stamp *)
  wall_s : float;  (** total wall time the profile took *)
  meta : (string * string) list;  (** free-form context (jobs, quick, ...) *)
  metrics : metric list;
}

type error =
  | Parse of Json.error
  | Schema of string  (** well-formed JSON, wrong shape *)
  | Io of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val schema_version : int

val metric : ?units:string -> ?higher_is_better:bool -> string -> float array -> metric
(** Defaults: dimensionless units [""], [higher_is_better = true]. *)

val find_metric : t -> string -> metric option

val fresh_run_id : profile:string -> seed:int -> string
(** [<profile>-<utc stamp>-s<seed>-<entropy>]: unique across repeated
    invocations in the same second, filesystem-safe. *)

val create :
  ?run_id:string ->
  ?git_rev:string ->
  ?host:string ->
  ?created_at:string ->
  ?meta:(string * string) list ->
  profile:string ->
  seed:int ->
  wall_s:float ->
  metric list ->
  t
(** Fills [run_id], [git_rev] (from [.git/HEAD]), [host] and
    [created_at] from the environment unless overridden — tests override
    all four for determinism. *)

val to_json : t -> string
val of_json : string -> (t, error) result

val save : dir:string -> t -> (string, error) result
(** Creates [dir/<run_id>/], writes [run.json], appends
    [run_id<TAB>profile<TAB>created_at<TAB>seed] to [dir/index.tsv];
    returns the run directory path. *)

val load : string -> (t, error) result

val default_dir : string
(** ["_bench/runs"], the gitignored working area. *)
