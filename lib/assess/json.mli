(** Minimal total JSON codec for benchmark-run artifacts.

    The parser is a dependency-free recursive-descent reader that never
    raises on any input byte string: malformed, truncated or bit-flipped
    documents come back as a typed {!error} carrying the byte offset.
    Numbers are binary64 floats printed with ["%.17g"], so every finite
    float round-trips bit-identically — the property the
    [assess/run-roundtrip] battery pins down. Strings are raw byte
    strings; control characters, double quotes and backslashes are
    escaped on output and [\uXXXX] escapes decode to UTF-8 on input. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { pos : int; msg : string }

val parse : string -> (t, error) result
(** Total: any byte string yields a value or a positioned error, never an
    exception. The whole input must be one JSON value (trailing
    whitespace allowed), so every strict prefix of an object document is
    itself an error. *)

val to_string : ?indent:int -> t -> string
(** Render; [indent] > 0 pretty-prints with that step. Non-finite
    numbers render as [null] (JSON has no representation for them). *)

val escape_string : string -> string
(** The body of a JSON string literal for [s] (no surrounding quotes). *)

(** Accessors used by the schema readers; all total. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
