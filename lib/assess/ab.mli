(** Metric-by-metric comparison of two benchmark runs.

    For every metric present in both runs, {!compare} runs
    {!Stats.compare_samples} under a per-metric noise floor

    {[ floor = max min_floor (floor_mult * max (rel_spread a) (rel_spread b)) ]}

    — the repeat spread within each run {e is} the same-binary A/A noise
    estimate, widened by [floor_mult] and clamped below by [min_floor]
    so an implausibly tight spread can't turn scheduler jitter into a
    verdict. Metrics whose comparison degenerates (single samples on
    both sides with all-equal values, zero medians) are reported with
    their typed error and never count as regressions; metrics present on
    only one side are listed separately.

    [cnfet_tool bench-ab] renders the report and exits non-zero iff
    {!regressed} is non-empty — the CI gate that replaces hard-coded
    magic floors. *)

type metric_result = {
  metric : string;
  units : string;
  result : (Stats.comparison, Stats.error) result;
}

type report = {
  a : Run.t;
  b : Run.t;
  min_floor : float;
  floor_mult : float;
  metrics : metric_result list;  (** in run-A metric order *)
  only_in_a : string list;
  only_in_b : string list;
}

val default_min_floor : float
(** 0.05: 5% relative band. *)

val default_floor_mult : float
(** 3.0: three noise spreads. *)

val compare :
  ?min_floor:float ->
  ?floor_mult:float ->
  ?seed:int ->
  ?filter:(string -> bool) ->
  Run.t ->
  Run.t ->
  report
(** [compare a b]: [b] is the candidate, [a] the reference. [filter]
    restricts which metric names participate (default: all). Total — a
    per-metric statistics error lands in that metric's [result]. *)

val regressed : report -> string list
val improved : report -> string list
val within_noise : report -> string list
val errored : report -> (string * Stats.error) list

val has_regression : report -> bool

val to_json : report -> string
val pp : Format.formatter -> report -> unit
