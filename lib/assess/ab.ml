type metric_result = {
  metric : string;
  units : string;
  result : (Stats.comparison, Stats.error) result;
}

type report = {
  a : Run.t;
  b : Run.t;
  min_floor : float;
  floor_mult : float;
  metrics : metric_result list;
  only_in_a : string list;
  only_in_b : string list;
}

let default_min_floor = 0.05
let default_floor_mult = 3.0

let spread_or_zero samples =
  match Stats.rel_spread samples with Ok s -> s | Error _ -> 0.

let compare ?(min_floor = default_min_floor) ?(floor_mult = default_floor_mult)
    ?(seed = 9001) ?(filter = fun _ -> true) (a : Run.t) (b : Run.t) =
  let wanted (m : Run.metric) = filter m.Run.name in
  let a_metrics = List.filter wanted a.Run.metrics in
  let b_metrics = List.filter wanted b.Run.metrics in
  let in_b name = List.exists (fun (m : Run.metric) -> m.Run.name = name) b_metrics in
  let in_a name = List.exists (fun (m : Run.metric) -> m.Run.name = name) a_metrics in
  let only_in_a =
    List.filter_map
      (fun (m : Run.metric) -> if in_b m.Run.name then None else Some m.Run.name)
      a_metrics
  in
  let only_in_b =
    List.filter_map
      (fun (m : Run.metric) -> if in_a m.Run.name then None else Some m.Run.name)
      b_metrics
  in
  let metrics =
    List.filter_map
      (fun (ma : Run.metric) ->
        match List.find_opt (fun (mb : Run.metric) -> mb.Run.name = ma.Run.name) b_metrics with
        | None -> None
        | Some mb ->
          let floor =
            Float.max min_floor
              (floor_mult
              *. Float.max (spread_or_zero ma.Run.samples) (spread_or_zero mb.Run.samples))
          in
          let result =
            Stats.compare_samples ~seed ~higher_is_better:ma.Run.higher_is_better ~floor
              ma.Run.samples mb.Run.samples
          in
          Some { metric = ma.Run.name; units = ma.Run.units; result })
      a_metrics
  in
  { a; b; min_floor; floor_mult; metrics; only_in_a; only_in_b }

let with_verdict v report =
  List.filter_map
    (fun m ->
      match m.result with
      | Ok c when c.Stats.verdict = v -> Some m.metric
      | _ -> None)
    report.metrics

let regressed = with_verdict Stats.Regressed
let improved = with_verdict Stats.Improved
let within_noise = with_verdict Stats.Within_noise

let errored report =
  List.filter_map
    (fun m -> match m.result with Error e -> Some (m.metric, e) | Ok _ -> None)
    report.metrics

let has_regression report = regressed report <> []

(* --- rendering ------------------------------------------------------------- *)

let json_of_metric m =
  let base = [ ("metric", Json.String m.metric); ("units", Json.String m.units) ] in
  match m.result with
  | Error e -> Json.Obj (base @ [ ("error", Json.String (Stats.error_to_string e)) ])
  | Ok c ->
    let ci =
      match c.Stats.ci with
      | None -> []
      | Some { Stats.lo; hi; level } ->
        [
          ("ci_lo", Json.Number lo);
          ("ci_hi", Json.Number hi);
          ("ci_level", Json.Number level);
        ]
    in
    Json.Obj
      (base
      @ [
          ("a_n", Json.Number (float_of_int c.Stats.a_n));
          ("b_n", Json.Number (float_of_int c.Stats.b_n));
          ("a_median", Json.Number c.Stats.a_median);
          ("b_median", Json.Number c.Stats.b_median);
          ("ratio", Json.Number c.Stats.ratio);
        ]
      @ ci
      @ [
          ("floor", Json.Number c.Stats.floor);
          ("verdict", Json.String (Stats.verdict_to_string c.Stats.verdict));
        ])

let to_json report =
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.to_string ~indent:2
    (Json.Obj
       [
         ( "run_a",
           Json.Obj
             [
               ("run_id", Json.String report.a.Run.run_id);
               ("profile", Json.String report.a.Run.profile);
               ("git_rev", Json.String report.a.Run.git_rev);
             ] );
         ( "run_b",
           Json.Obj
             [
               ("run_id", Json.String report.b.Run.run_id);
               ("profile", Json.String report.b.Run.profile);
               ("git_rev", Json.String report.b.Run.git_rev);
             ] );
         ("min_floor", Json.Number report.min_floor);
         ("floor_mult", Json.Number report.floor_mult);
         ("metrics", Json.List (List.map json_of_metric report.metrics));
         ("regressed", strings (regressed report));
         ("improved", strings (improved report));
         ("within_noise", strings (within_noise report));
         ("only_in_a", strings report.only_in_a);
         ("only_in_b", strings report.only_in_b);
       ])
  ^ "\n"

let pp fmt report =
  Format.fprintf fmt "A: %s (%s, %s)@." report.a.Run.run_id report.a.Run.profile
    report.a.Run.git_rev;
  Format.fprintf fmt "B: %s (%s, %s)@." report.b.Run.run_id report.b.Run.profile
    report.b.Run.git_rev;
  List.iter
    (fun m ->
      match m.result with
      | Error e ->
        Format.fprintf fmt "  %-40s  --            (%s)@." m.metric
          (Stats.error_to_string e)
      | Ok c ->
        let ci =
          match c.Stats.ci with
          | None -> "point estimate"
          | Some { Stats.lo; hi; _ } -> Format.sprintf "ci [%.3f, %.3f]" lo hi
        in
        Format.fprintf fmt "  %-40s  %-12s  %9.4g -> %9.4g  x%.3f  %s  floor %.1f%%@."
          m.metric
          (Stats.verdict_to_string c.Stats.verdict)
          c.Stats.a_median c.Stats.b_median c.Stats.ratio ci (100. *. c.Stats.floor))
    report.metrics;
  (match report.only_in_a with
  | [] -> ()
  | l -> Format.fprintf fmt "  only in A: %s@." (String.concat ", " l));
  (match report.only_in_b with
  | [] -> ()
  | l -> Format.fprintf fmt "  only in B: %s@." (String.concat ", " l));
  Format.fprintf fmt "verdicts: %d improved, %d regressed, %d within noise, %d degenerate@."
    (List.length (improved report))
    (List.length (regressed report))
    (List.length (within_noise report))
    (List.length (errored report))
