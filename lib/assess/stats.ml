type error =
  | Not_enough_samples of { what : string; need : int; got : int }
  | Degenerate_samples of string
  | Non_finite of string

let pp_error fmt = function
  | Not_enough_samples { what; need; got } ->
    Format.fprintf fmt "%s: need >= %d samples, got %d" what need got
  | Degenerate_samples what -> Format.fprintf fmt "%s: degenerate samples" what
  | Non_finite what -> Format.fprintf fmt "%s: non-finite sample" what

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_finite what xs =
  if Array.for_all Float.is_finite xs then Ok () else Error (Non_finite what)

(* Median of a non-empty array, destructive on a private copy. *)
let median_unchecked xs =
  let a = Array.copy xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let median xs =
  if Array.length xs = 0 then
    Error (Not_enough_samples { what = "median"; need = 1; got = 0 })
  else
    let* () = check_finite "median" xs in
    Ok (median_unchecked xs)

let mad xs =
  let n = Array.length xs in
  if n < 2 then Error (Not_enough_samples { what = "mad"; need = 2; got = n })
  else
    let* () = check_finite "mad" xs in
    let m = median_unchecked xs in
    Ok (median_unchecked (Array.map (fun x -> Float.abs (x -. m)) xs))

let rel_spread xs =
  let* spread = mad xs in
  let m = median_unchecked xs in
  if spread = 0. then Error (Degenerate_samples "rel_spread: all-equal series")
  else if m = 0. then Error (Degenerate_samples "rel_spread: zero median")
  else Ok (spread /. Float.abs m)

type ci = { lo : float; hi : float; level : float }

(* One bootstrap resample of [xs] into [scratch], then its median. *)
let resample_median rng xs scratch =
  let n = Array.length xs in
  for i = 0 to n - 1 do
    scratch.(i) <- xs.(Util.Rng.int rng n)
  done;
  median_unchecked scratch

let percentile_of_sorted a p =
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let bootstrap_ci ?(seed = 9001) ?(resamples = 2000) ?(level = 0.95) xs =
  let n = Array.length xs in
  if n < 2 then Error (Not_enough_samples { what = "bootstrap_ci"; need = 2; got = n })
  else
    let* () = check_finite "bootstrap_ci" xs in
    let rng = Util.Rng.create seed in
    let scratch = Array.make n 0. in
    let medians =
      Array.init resamples (fun _ -> resample_median rng xs scratch)
    in
    Array.sort Float.compare medians;
    let alpha = (1. -. level) /. 2. in
    Ok
      {
        lo = percentile_of_sorted medians alpha;
        hi = percentile_of_sorted medians (1. -. alpha);
        level;
      }

type verdict = Improved | Regressed | Within_noise

let verdict_to_string = function
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Within_noise -> "within-noise"

type comparison = {
  a_n : int;
  b_n : int;
  a_median : float;
  b_median : float;
  ratio : float;
  ci : ci option;
  floor : float;
  verdict : verdict;
}

(* Oriented improvement ratio of B over A: > 1 means B is better. *)
let orient ~higher_is_better ~a ~b = if higher_is_better then b /. a else a /. b

(* Bootstrap the oriented ratio-of-medians. Equal-length sides resample
   pair indices (the interleaved-repeat pairing), unequal sides resample
   independently. Returns the sorted ratio draws. *)
let bootstrap_ratio ~seed ~resamples ~higher_is_better a b =
  let rng = Util.Rng.create seed in
  let na = Array.length a and nb = Array.length b in
  let sa = Array.make na 0. and sb = Array.make nb 0. in
  let draws =
    Array.init resamples (fun _ ->
        let ma, mb =
          if na = nb then begin
            for i = 0 to na - 1 do
              let k = Util.Rng.int rng na in
              sa.(i) <- a.(k);
              sb.(i) <- b.(k)
            done;
            (median_unchecked sa, median_unchecked sb)
          end
          else
            (resample_median rng a sa, resample_median rng b sb)
        in
        orient ~higher_is_better ~a:ma ~b:mb)
  in
  Array.sort Float.compare draws;
  draws

let compare_samples ?(seed = 9001) ?(resamples = 2000) ?(level = 0.95)
    ~higher_is_better ~floor a b =
  let a_n = Array.length a and b_n = Array.length b in
  if a_n = 0 then Error (Not_enough_samples { what = "compare_samples: run A"; need = 1; got = 0 })
  else if b_n = 0 then
    Error (Not_enough_samples { what = "compare_samples: run B"; need = 1; got = 0 })
  else
    let* () = check_finite "compare_samples: run A" a in
    let* () = check_finite "compare_samples: run B" b in
    let a_median = median_unchecked a and b_median = median_unchecked b in
    if a_median = 0. || b_median = 0. then
      Error (Degenerate_samples "compare_samples: zero median")
    else begin
      let ratio = orient ~higher_is_better ~a:a_median ~b:b_median in
      let ci =
        if a_n < 2 || b_n < 2 then None
        else begin
          let draws = bootstrap_ratio ~seed ~resamples ~higher_is_better a b in
          let alpha = (1. -. level) /. 2. in
          Some
            {
              lo = percentile_of_sorted draws alpha;
              hi = percentile_of_sorted draws (1. -. alpha);
              level;
            }
        end
      in
      let verdict =
        match ci with
        | Some { lo; hi; _ } ->
          if lo > 1. +. floor then Improved
          else if hi < 1. -. floor then Regressed
          else Within_noise
        | None ->
          (* single-sample fallback: point estimate against the floor *)
          if ratio > 1. +. floor then Improved
          else if ratio < 1. -. floor then Regressed
          else Within_noise
      in
      Ok { a_n; b_n; a_median; b_median; ratio; ci; floor; verdict }
    end

let aa_floor ~a ~b =
  let* ma = median a in
  let* mb = median b in
  if ma = 0. || mb = 0. then Error (Degenerate_samples "aa_floor: zero median")
  else begin
    let shift = Float.abs ((mb /. ma) -. 1.) in
    let spread side =
      match rel_spread side with
      | Ok s -> s
      | Error _ -> 0.  (* all-equal repeats contribute no spread term *)
    in
    Ok (shift +. (2. *. Float.max (spread a) (spread b)))
  end
