type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { pos : int; msg : string }

(* --- parsing -------------------------------------------------------------- *)

exception Fail of int * string

let max_depth = 128

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Fail (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> utf8_add buf (hex4 ())
          | _ -> fail "bad escape character"));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let k = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = k then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "unparseable number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) -> Error { pos; msg }
  (* Defensive: the reader is meant to be total, but a decoder bug must
     still come back as a typed error, never an escaping exception. *)
  | exception e -> Error { pos = !pos; msg = "internal: " ^ Printexc.to_string e }

(* --- printing ------------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) v =
  let buf = Buffer.create 256 in
  let pad level = if indent > 0 then Buffer.add_string buf (String.make (level * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f ->
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i v ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          go (level + 1) v)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if indent > 0 then "\": " else "\":");
          go (level + 1) v)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f && Float.abs f <= 2. ** 62. -> Some (int_of_float f)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
