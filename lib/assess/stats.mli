(** Robust statistics for benchmark metric series.

    Every estimator is total over its declared domain and returns a typed
    {!error} on degenerate input — empty series, single samples where a
    spread is needed, all-equal samples where a relative spread would
    divide by zero — instead of silently producing NaN. Randomness
    (bootstrap resampling) draws from an explicit-seed {!Util.Rng.t}, so
    results are reproducible and CI-stable.

    The comparison model follows the paired interleaved A/B discipline:
    two runs of the same profile each carry n repeat samples per metric,
    medians summarise each side, a bootstrap confidence interval bounds
    the median ratio, and a metric only counts as improved/regressed when
    the whole interval clears the noise floor — a relative band derived
    from the spread of same-binary A/A repeats. *)

type error =
  | Not_enough_samples of { what : string; need : int; got : int }
  | Degenerate_samples of string
      (** all-equal where a spread is required, or zero median where a
          ratio is required *)
  | Non_finite of string  (** NaN or infinity in the input series *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val median : float array -> (float, error) result
(** Errors on an empty or non-finite series. *)

val mad : float array -> (float, error) result
(** Median absolute deviation from the median. Needs >= 2 samples. *)

val rel_spread : float array -> (float, error) result
(** [mad / |median|]: the relative noise of a repeat series. Errors on
    < 2 samples, a zero median, or an all-equal series (whose zero
    spread says nothing about the measurement noise). *)

type ci = { lo : float; hi : float; level : float }

val bootstrap_ci :
  ?seed:int -> ?resamples:int -> ?level:float -> float array -> (ci, error) result
(** Percentile-bootstrap confidence interval for the median. Needs >= 2
    samples. Defaults: seed 9001, 2000 resamples, level 0.95. *)

type verdict = Improved | Regressed | Within_noise

val verdict_to_string : verdict -> string

type comparison = {
  a_n : int;
  b_n : int;
  a_median : float;
  b_median : float;
  ratio : float;  (** oriented so > 1 means B is better than A *)
  ci : ci option;  (** bootstrap CI of the oriented ratio; [None] when
                       either side has a single sample *)
  floor : float;  (** relative noise floor the verdict was taken against *)
  verdict : verdict;
}

val compare_samples :
  ?seed:int ->
  ?resamples:int ->
  ?level:float ->
  higher_is_better:bool ->
  floor:float ->
  float array ->
  float array ->
  (comparison, error) result
(** [compare_samples ~higher_is_better ~floor a b]: paired interleaved
    comparison of two repeat series of one metric.
    The oriented ratio (B improvement over A) is bounded by a bootstrap
    CI — paired resampling when [a] and [b] have equal length (adjacent
    interleaved repeats cancel drift), independent otherwise — and the
    verdict is [Improved]/[Regressed] only when the {e whole} interval
    clears [1 +- floor]; anything straddling the band is
    [Within_noise]. Single-sample sides fall back to the point ratio
    against the floor with [ci = None]. Errors on empty, non-finite, or
    zero-median [a] input. *)

val aa_floor : a:float array -> b:float array -> (float, error) result
(** Noise-floor estimate from a same-binary A/A pair: the observed
    median shift plus twice the larger relative spread. This is the
    number EXPERIMENTS.md tabulates per metric; {!Ab} applies the same
    spread logic per comparison. *)
