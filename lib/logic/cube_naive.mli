(** Byte-per-literal reference cubes.

    The pre-packing implementation of {!Cube}, retained as the oracle for
    the word-parallel bit-packed kernel: the differential test suite runs
    every set operation through both representations and demands identical
    results, and the espresso benchmark reports packed-vs-naive throughput
    against this module. Semantics match {!Cube} operation for operation;
    only the representation (one byte per input literal) differs. Not for
    production use. *)

type t

val make : n_in:int -> n_out:int -> t

val universe : n_in:int -> n_out:int -> t

val of_literals : Cube.literal list -> outs:Util.Bitvec.t -> t

val of_cube : Cube.t -> t
(** Convert from the packed representation (copies the output part). *)

val num_inputs : t -> int

val num_outputs : t -> int

val get : t -> int -> Cube.literal

val set : t -> int -> Cube.literal -> t

val raw_get : t -> int -> int

val raw_set : t -> int -> int -> t

val outputs : t -> Util.Bitvec.t

val with_outputs : t -> Util.Bitvec.t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val contains : t -> t -> bool

val intersect : t -> t -> t option

val distance : t -> t -> int

val supercube2 : t -> t -> t

val cofactor : t -> by:t -> t option

val literal_count : t -> int

val matches : t -> bool array -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
