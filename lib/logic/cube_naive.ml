(* The pre-packing byte-per-literal cube implementation, retained verbatim
   as a differential-testing and benchmarking reference for the
   word-parallel kernel in {!Cube}. One byte per input position holding
   1 (Zero), 2 (One) or 3 (Dc); 0 would denote the empty literal set and
   never appears in a well-formed cube. *)

type t = { ins : Bytes.t; outs : Util.Bitvec.t }

let lit_zero = 1
let lit_one = 2
let lit_dc = 3

let int_of_literal = function
  | Cube.Zero -> lit_zero
  | Cube.One -> lit_one
  | Cube.Dc -> lit_dc

let literal_of_int = function
  | 1 -> Cube.Zero
  | 2 -> Cube.One
  | 3 -> Cube.Dc
  | n -> invalid_arg (Printf.sprintf "Cube_naive.literal_of_int: %d" n)

let make ~n_in ~n_out =
  { ins = Bytes.make n_in (Char.chr lit_dc); outs = Util.Bitvec.create n_out }

let universe ~n_in ~n_out =
  { ins = Bytes.make n_in (Char.chr lit_dc); outs = Util.Bitvec.create_full n_out }

let of_literals lits ~outs =
  let n = List.length lits in
  let ins = Bytes.create n in
  List.iteri (fun i l -> Bytes.set ins i (Char.chr (int_of_literal l))) lits;
  { ins; outs }

let of_cube c =
  let n = Cube.num_inputs c in
  let ins = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set ins i (Char.chr (Cube.raw_get c i))
  done;
  { ins; outs = Util.Bitvec.copy (Cube.outputs c) }

let num_inputs t = Bytes.length t.ins

let num_outputs t = Util.Bitvec.length t.outs

let raw_get t i = Char.code (Bytes.get t.ins i)

let raw_set t i v =
  assert (v >= 1 && v <= 3);
  let ins = Bytes.copy t.ins in
  Bytes.set ins i (Char.chr v);
  { t with ins }

let get t i = literal_of_int (raw_get t i)

let set t i l = raw_set t i (int_of_literal l)

let outputs t = t.outs

let with_outputs t outs = { t with outs }

let equal a b = Bytes.equal a.ins b.ins && Util.Bitvec.equal a.outs b.outs

let compare a b =
  let c = Bytes.compare a.ins b.ins in
  if c <> 0 then c else Util.Bitvec.compare a.outs b.outs

let contains a b =
  assert (num_inputs a = num_inputs b);
  let rec go i =
    i >= Bytes.length a.ins
    || (let x = Char.code (Bytes.get a.ins i) and y = Char.code (Bytes.get b.ins i) in
        y land lnot x = 0 && go (i + 1))
  in
  go 0 && Util.Bitvec.subset b.outs a.outs

let intersect a b =
  assert (num_inputs a = num_inputs b);
  let n = Bytes.length a.ins in
  let ins = Bytes.create n in
  let rec go i =
    if i >= n then true
    else
      let v = Char.code (Bytes.get a.ins i) land Char.code (Bytes.get b.ins i) in
      if v = 0 then false
      else begin
        Bytes.set ins i (Char.chr v);
        go (i + 1)
      end
  in
  if not (go 0) then None
  else
    let outs = Util.Bitvec.inter a.outs b.outs in
    if Util.Bitvec.is_empty outs then None else Some { ins; outs }

let distance a b =
  assert (num_inputs a = num_inputs b);
  let d = ref 0 in
  for i = 0 to Bytes.length a.ins - 1 do
    if Char.code (Bytes.get a.ins i) land Char.code (Bytes.get b.ins i) = 0 then incr d
  done;
  if Util.Bitvec.disjoint a.outs b.outs then incr d;
  !d

let supercube2 a b =
  assert (num_inputs a = num_inputs b);
  let n = Bytes.length a.ins in
  let ins = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set ins i (Char.chr (Char.code (Bytes.get a.ins i) lor Char.code (Bytes.get b.ins i)))
  done;
  { ins; outs = Util.Bitvec.union a.outs b.outs }

let cofactor a ~by:p =
  assert (num_inputs a = num_inputs p);
  match intersect a p with
  | None -> None
  | Some _ ->
    let n = Bytes.length a.ins in
    let ins = Bytes.create n in
    for i = 0 to n - 1 do
      let v =
        Char.code (Bytes.get a.ins i) lor (lnot (Char.code (Bytes.get p.ins i)) land lit_dc)
      in
      Bytes.set ins i (Char.chr v)
    done;
    let outs = Util.Bitvec.union a.outs (Util.Bitvec.complement p.outs) in
    Some { ins; outs }

let literal_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if Char.code c <> lit_dc then incr n) t.ins;
  !n

let matches t minterm =
  assert (Array.length minterm = num_inputs t);
  let rec go i =
    i >= Bytes.length t.ins
    || (let bit = if minterm.(i) then lit_one else lit_zero in
        Char.code (Bytes.get t.ins i) land bit <> 0 && go (i + 1))
  in
  go 0

let to_string t =
  let buf = Buffer.create (num_inputs t + num_outputs t + 1) in
  Bytes.iter
    (fun c ->
      Buffer.add_char buf
        (match Char.code c with 1 -> '0' | 2 -> '1' | 3 -> '-' | _ -> '?'))
    t.ins;
  if num_outputs t > 0 then begin
    Buffer.add_char buf ' ';
    for o = 0 to num_outputs t - 1 do
      Buffer.add_char buf (if Util.Bitvec.get t.outs o then '1' else '0')
    done
  end;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
