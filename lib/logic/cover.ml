type t = {
  n_in : int;
  n_out : int;
  cubes : Cube.t array;
  mutable lits : int; (* cached literal_total; -1 = not yet computed *)
}

(* Work counters for the runtime metrics layer ([Atomic] so parallel
   minimization domains can share them). [scc_pairs] accumulates the
   pair count an all-pairs containment scan would have inspected,
   [scc_checks] the containment tests the sort-based algorithm actually
   ran — their ratio is the containment-prune rate. *)
let scc_calls = Atomic.make 0
let scc_checks = Atomic.make 0
let scc_pairs = Atomic.make 0

let scc_calls_total () = Atomic.get scc_calls
let scc_checks_total () = Atomic.get scc_checks
let scc_pairs_total () = Atomic.get scc_pairs

let check_arity t c =
  if Cube.num_inputs c <> t.n_in || Cube.num_outputs c <> t.n_out then
    invalid_arg "Cover: cube arity mismatch"

(* Internal constructor: the cubes are known well-arity (built from an
   existing cover's cubes), so skip validation and own the array. *)
let unsafe ~n_in ~n_out cubes = { n_in; n_out; cubes; lits = -1 }

let make ~n_in ~n_out cubes =
  let t = unsafe ~n_in ~n_out (Array.of_list cubes) in
  Array.iter (check_arity t) t.cubes;
  t

let of_array ~n_in ~n_out cubes =
  let t = unsafe ~n_in ~n_out (Array.copy cubes) in
  Array.iter (check_arity t) t.cubes;
  t

let empty ~n_in ~n_out = unsafe ~n_in ~n_out [||]

let num_inputs t = t.n_in
let num_outputs t = t.n_out
let cubes t = Array.to_list t.cubes
let to_array t = t.cubes
let size t = Array.length t.cubes
let is_empty t = Array.length t.cubes = 0

let literal_total t =
  if t.lits < 0 then
    t.lits <- Array.fold_left (fun acc c -> acc + Cube.literal_count c) 0 t.cubes;
  t.lits

let add t c =
  check_arity t c;
  let n = Array.length t.cubes in
  let cubes = Array.make (n + 1) c in
  Array.blit t.cubes 0 cubes 1 n;
  let lits = if t.lits < 0 then -1 else t.lits + Cube.literal_count c in
  { t with cubes; lits }

let union a b =
  if a.n_in <> b.n_in || a.n_out <> b.n_out then invalid_arg "Cover.union: arity mismatch";
  let lits = if a.lits < 0 || b.lits < 0 then -1 else a.lits + b.lits in
  { a with cubes = Array.append a.cubes b.cubes; lits }

let equal_as_sets a b =
  let mem c cs = Array.exists (Cube.equal c) cs in
  a.n_in = b.n_in && a.n_out = b.n_out
  && Array.for_all (fun c -> mem c b.cubes) a.cubes
  && Array.for_all (fun c -> mem c a.cubes) b.cubes

(* Single-cube containment, sort-based. A cube is dropped iff another
   single cube contains it; among equal duplicates the last occurrence
   survives (matching the historical scan exactly). Sorting by
   (literal count asc, output popcount desc, index desc) guarantees every
   potential container of a cube is processed before it — a container has
   fewer-or-equal literals, and ties force equality where the index order
   picks the later duplicate — so one pass keeping cubes not contained in
   an already-kept cube reproduces the old all-pairs result with far fewer
   containment tests. Output preserves original cube order. *)
let single_cube_containment t =
  Atomic.incr scc_calls;
  let n = Array.length t.cubes in
  if n <= 1 then t
  else begin
    ignore (Atomic.fetch_and_add scc_pairs (n * (n - 1)));
    let lits = Array.map Cube.literal_count t.cubes in
    let pops = Array.map (fun c -> Util.Bitvec.pop_count (Cube.outputs c)) t.cubes in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = Stdlib.compare lits.(i) lits.(j) in
        if c <> 0 then c
        else
          let c = Stdlib.compare pops.(j) pops.(i) in
          if c <> 0 then c else Stdlib.compare j i)
      order;
    let kept_flag = Array.make n false in
    let kept = ref [] in
    let checks = ref 0 in
    Array.iter
      (fun i ->
        let ci = t.cubes.(i) in
        let contained =
          List.exists
            (fun j ->
              incr checks;
              Cube.contains t.cubes.(j) ci)
            !kept
        in
        if not contained then begin
          kept_flag.(i) <- true;
          kept := i :: !kept
        end)
      order;
    ignore (Atomic.fetch_and_add scc_checks !checks);
    let n_kept = List.length !kept in
    if n_kept = n then t
    else begin
      let out = Array.make n_kept t.cubes.(0) in
      let next = ref 0 in
      for i = 0 to n - 1 do
        if kept_flag.(i) then begin
          out.(!next) <- t.cubes.(i);
          incr next
        end
      done;
      unsafe ~n_in:t.n_in ~n_out:t.n_out out
    end
  end

let eval t minterm =
  let acc = Util.Bitvec.create t.n_out in
  let packed = Cube.pack_minterm minterm in
  Array.iter
    (fun c ->
      if Cube.matches_packed c packed then Util.Bitvec.union_inplace acc (Cube.outputs c))
    t.cubes;
  acc

let filter_map_cubes t ~n_out f =
  let acc = ref [] in
  for i = Array.length t.cubes - 1 downto 0 do
    match f t.cubes.(i) with None -> () | Some c -> acc := c :: !acc
  done;
  unsafe ~n_in:t.n_in ~n_out (Array.of_list !acc)

let restrict_output t o =
  let on = Util.Bitvec.of_list 1 [ 0 ] in
  filter_map_cubes t ~n_out:1 (fun c ->
      if Util.Bitvec.get (Cube.outputs c) o then Some (Cube.with_outputs c on) else None)

let cofactor_cube t ~by =
  filter_map_cubes t ~n_out:t.n_out (fun c -> Cube.cofactor c ~by)

let cofactor_var t i lit =
  (match lit with
  | Cube.Dc -> invalid_arg "Cover.cofactor_var: Dc"
  | Cube.Zero | Cube.One -> ());
  let p = Cube.set (Cube.universe ~n_in:t.n_in ~n_out:t.n_out) i lit in
  cofactor_cube t ~by:p

(* --- Unate recursive paradigm ------------------------------------------- *)

(* A cube's input part is "all don't care" iff it imposes no input
   constraint; with a full output part it covers the whole space. The
   recursions below work on covers whose output parts are already full
   (guaranteed by entry points that cofactor per output). *)

let input_universe = Cube.input_universe

(* Most binate variable: maximise the number of cubes in which the variable
   appears; tie-break on balance between 0- and 1-phase occurrences. Returns
   None when the cover is unate in every variable that appears. *)
let most_binate_var t =
  let zeros = Array.make t.n_in 0 and ones = Array.make t.n_in 0 in
  Array.iter
    (fun c ->
      for i = 0 to t.n_in - 1 do
        match Cube.raw_get c i with
        | 1 -> zeros.(i) <- zeros.(i) + 1
        | 2 -> ones.(i) <- ones.(i) + 1
        | _ -> ()
      done)
    t.cubes;
  let best = ref None in
  for i = 0 to t.n_in - 1 do
    if zeros.(i) > 0 && ones.(i) > 0 then begin
      let score = (zeros.(i) + ones.(i), -abs (zeros.(i) - ones.(i))) in
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (i, score)
    end
  done;
  match !best with Some (i, _) -> Some i | None -> None

(* Any variable that actually appears (used when the cover is unate but we
   still want to recurse — not needed for tautology thanks to the unate leaf
   rule, but kept for the complement). *)
let any_active_var t =
  let active i = Array.exists (fun c -> Cube.raw_get c i <> 3) t.cubes in
  let rec go i = if i >= t.n_in then None else if active i then Some i else go (i + 1) in
  go 0

let rec tautology_inputs t =
  if Array.exists input_universe t.cubes then true
  else if Array.length t.cubes = 0 then false
  else
    match most_binate_var t with
    | None ->
      (* Unate cover: tautology iff it contains the universal cube, which we
         already checked. *)
      false
    | Some j ->
      tautology_inputs (cofactor_var t j Cube.Zero)
      && tautology_inputs (cofactor_var t j Cube.One)

let tautology t =
  if t.n_out = 0 then true
  else
    let rec go o =
      o >= t.n_out
      || (tautology_inputs (restrict_output t o) && go (o + 1))
    in
    go 0

let covers_cube t c =
  check_arity t c;
  let outs = Cube.outputs c in
  let rec check_output o =
    if o >= t.n_out then true
    else if not (Util.Bitvec.get outs o) then check_output (o + 1)
    else
      let fo = restrict_output t o in
      let single = Cube.with_outputs c (Util.Bitvec.of_list 1 [ 0 ]) in
      tautology_inputs (cofactor_cube fo ~by:single) && check_output (o + 1)
  in
  check_output 0

let covers t g = Array.for_all (covers_cube t) g.cubes

let equivalent a b = covers a b && covers b a

(* Complement of a single-output cover (output parts assumed full width 1),
   by unate recursion: ¬F = x'·¬F_{x'} ∪ x·¬F_x, merged with the branch
   literal. Base cases: empty cover → universe; cover containing the
   universal cube → empty; single cube → De Morgan. *)
let complement_single t =
  let out1 = Util.Bitvec.of_list 1 [ 0 ] in
  let universe = Cube.universe ~n_in:t.n_in ~n_out:1 in
  let demorgan c =
    let acc = ref [] in
    for i = 0 to t.n_in - 1 do
      match Cube.raw_get c i with
      | 3 -> ()
      | v ->
        (* flip within the 2-bit domain *)
        let flipped = lnot v land 3 in
        acc := Cube.raw_set universe i flipped :: !acc
    done;
    !acc
  in
  let rec go t =
    if Array.exists input_universe t.cubes then []
    else
      match Array.length t.cubes with
      | 0 -> [ universe ]
      | 1 -> demorgan t.cubes.(0)
      | _ ->
        let j =
          match most_binate_var t with
          | Some j -> j
          | None -> (
            match any_active_var t with
            | Some j -> j
            | None -> assert false (* some cube would be the universe *))
        in
        let left = go (cofactor_var t j Cube.Zero) in
        let right = go (cofactor_var t j Cube.One) in
        List.map (fun c -> Cube.set c j Cube.Zero) left
        @ List.map (fun c -> Cube.set c j Cube.One) right
  in
  let cubes = go t in
  single_cube_containment
    (unsafe ~n_in:t.n_in ~n_out:1
       (Array.of_list (List.map (fun c -> Cube.with_outputs c out1) cubes)))

let complement t =
  if t.n_out = 0 then { t with cubes = [||]; lits = 0 }
  else begin
    let parts = ref [] in
    for o = t.n_out - 1 downto 0 do
      let single = complement_single (restrict_output t o) in
      let widen c =
        let outs = Util.Bitvec.of_list t.n_out [ o ] in
        Cube.of_literals (List.init t.n_in (Cube.get c)) ~outs
      in
      parts := List.map widen (cubes single) @ !parts
    done;
    unsafe ~n_in:t.n_in ~n_out:t.n_out (Array.of_list !parts)
  end

let sharp a b =
  if a.n_in <> b.n_in || a.n_out <> b.n_out then invalid_arg "Cover.sharp: arity mismatch";
  let nb = complement b in
  let acc = ref [] in
  for i = Array.length a.cubes - 1 downto 0 do
    let c = a.cubes.(i) in
    for j = Array.length nb.cubes - 1 downto 0 do
      match Cube.intersect c nb.cubes.(j) with
      | None -> ()
      | Some x -> acc := x :: !acc
    done
  done;
  single_cube_containment (unsafe ~n_in:a.n_in ~n_out:a.n_out (Array.of_list !acc))

let complement_of_incompletely_specified on dc = complement (union on dc)

let minterms t =
  if t.n_in > 24 then invalid_arg "Cover.minterms: too many inputs";
  let total = 1 lsl t.n_in in
  let acc = ref [] in
  let minterm_cube idx o =
    let lits =
      List.init t.n_in (fun i -> if idx land (1 lsl i) <> 0 then Cube.One else Cube.Zero)
    in
    Cube.of_literals lits ~outs:(Util.Bitvec.of_list t.n_out [ o ])
  in
  for idx = total - 1 downto 0 do
    let assignment = Array.init t.n_in (fun i -> idx land (1 lsl i) <> 0) in
    let outs = eval t assignment in
    Util.Bitvec.iter_set (fun o -> acc := minterm_cube idx o :: !acc) outs
  done;
  unsafe ~n_in:t.n_in ~n_out:t.n_out (Array.of_list !acc)

let random rng ~n_in ~n_out ~n_cubes ~dc_bias =
  let cube () =
    let lits =
      List.init n_in (fun _ ->
          if Util.Rng.bernoulli rng dc_bias then Cube.Dc
          else if Util.Rng.bool rng then Cube.One
          else Cube.Zero)
    in
    let outs = Util.Bitvec.create n_out in
    Util.Bitvec.set outs (Util.Rng.int rng n_out) true;
    for o = 0 to n_out - 1 do
      if Util.Rng.bernoulli rng (1.0 /. float_of_int (2 * n_out)) then
        Util.Bitvec.set outs o true
    done;
    Cube.of_literals lits ~outs
  in
  unsafe ~n_in ~n_out (Array.of_list (List.init n_cubes (fun _ -> cube ())))

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun c -> Format.fprintf fmt "%a@," Cube.pp c) t.cubes;
  Format.fprintf fmt "@]"

let to_string t = String.concat "\n" (List.map Cube.to_string (cubes t))
