(** Multiple-output cubes in positional-cube notation.

    A cube is a product term over [n_in] binary inputs together with the set
    of outputs it feeds. Each input position holds one of three literals:
    {ul
    {- [Zero] — the input appears complemented (the input must be 0);}
    {- [One] — the input appears uncomplemented (the input must be 1);}
    {- [Dc] — the input does not appear (don't care).}}

    Internally a literal is a 2-bit set ([01] = Zero, [10] = One,
    [11] = Dc): bit 0 says "matches input value 0", bit 1 says "matches
    input value 1". The sets are packed 31 literals per 63-bit [int] word
    (bit [2k] / [2k+1] of a word for field [k]), so set operations on cubes
    are word-parallel AND/OR/popcount, exactly as in espresso's
    positional-cube representation; [00] (the empty literal set) never
    appears in a well-formed cube, and padding bits past the last field are
    always 0. A cube denotes the set of (minterm, output) pairs where the
    minterm lies in the input product and the output belongs to the cube's
    output part. *)

type literal = Zero | One | Dc

type t

val make : n_in:int -> n_out:int -> t
(** All-don't-care input part, empty output part. *)

val universe : n_in:int -> n_out:int -> t
(** All-don't-care input part, all outputs set: the full space. *)

val of_literals : literal list -> outs:Util.Bitvec.t -> t

val num_inputs : t -> int

val num_outputs : t -> int

val get : t -> int -> literal
(** Literal at input position [i]. *)

val set : t -> int -> literal -> t
(** Functional update of input position [i]. *)

val outputs : t -> Util.Bitvec.t
(** The output part (do not mutate; treat as read-only). *)

val with_outputs : t -> Util.Bitvec.t -> t

val raw_get : t -> int -> int
(** 2-bit literal set at position [i] (1, 2 or 3). *)

val raw_set : t -> int -> int -> t
(** Functional update with a raw 2-bit literal set (must be 1, 2 or 3). *)

val raw_words : t -> int array
(** Copy of the packed input words (31 2-bit fields per word, padding bits
    zero). Canonical for a given input part — suitable for digests and
    content hashes. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val contains : t -> t -> bool
(** [contains a b] iff cube [b]'s (minterm, output) set is a subset of
    [a]'s. *)

val intersect : t -> t -> t option
(** Set intersection; [None] when empty. *)

val intersects : t -> t -> bool
(** [intersects a b] iff the cubes share a (minterm, output) pair —
    equivalent to [distance a b = 0] but early-exits on the first
    conflicting word. *)

val input_universe : t -> bool
(** [true] iff every input position is [Dc] (the input part imposes no
    constraint). *)

val distance : t -> t -> int
(** Number of input positions whose literal sets are disjoint, plus 1 if the
    output parts are disjoint. Distance 0 iff the cubes intersect. *)

val first_input_conflicts : t -> t -> int * int
(** [first_input_conflicts a b] is [(count, pos)]: the number of input
    positions at which the literal sets are disjoint, capped at 2, and the
    first such position ([-1] if none). Output parts are not considered.
    Feeds expand's blocker-count cache. *)

val supercube : t -> t
(** Identity (for symmetry with {!supercube2}). *)

val supercube2 : t -> t -> t
(** Smallest cube containing both arguments. *)

val cofactor : t -> by:t -> t option
(** Espresso generalized cofactor [a / p]; [None] when [a] and [p] are
    disjoint. Input positions: [a_i ∪ ¬p_i]; outputs: [a_o ∪ ¬p_o]. *)

val literal_count : t -> int
(** Number of non-[Dc] input positions. *)

val matches : t -> bool array -> bool
(** [matches c minterm] iff the input part of [c] covers the minterm
    (outputs not considered). *)

val pack_minterm : bool array -> int array
(** Pack a minterm into the cube word layout once, for repeated
    {!matches_packed} tests against many cubes of the same arity. *)

val matches_packed : t -> int array -> bool
(** [matches_packed c (pack_minterm m)] = [matches c m], one AND-compare
    per word. *)

val to_string : t -> string
(** Espresso-style text: input part as [0/1/-], space, output part as
    [0/1]. *)

val pp : Format.formatter -> t -> unit
