type literal = Zero | One | Dc

(* Word-parallel bit-packed positional-cube representation.

   The input part packs 2 bits per literal into 63-bit native ints, 31
   literals per word (62 payload bits): bit [2k] of a word says "position
   matches input value 0", bit [2k+1] says "matches input value 1". A
   literal is therefore the 2-bit set 01 (Zero), 10 (One) or 11 (Dc); 00
   (the empty set) never appears in a well-formed cube, which is what lets
   intersection emptiness, containment and distance collapse to a handful
   of AND/OR/popcount operations per 31 positions. Padding bits above the
   last valid field of the final word are kept at 0 by every constructor,
   so whole-word AND/OR/XOR need no end-of-cube masking. *)

let lit_zero = 1
let lit_one = 2
let lit_dc = 3

let fields_per_word = 31

let int_of_literal = function Zero -> lit_zero | One -> lit_one | Dc -> lit_dc

let literal_of_int = function
  | 1 -> Zero
  | 2 -> One
  | 3 -> Dc
  | n -> invalid_arg (Printf.sprintf "Cube.literal_of_int: %d" n)

type t = { n_in : int; ins : int array; outs : Util.Bitvec.t }

let words_for n = (n + fields_per_word - 1) / fields_per_word

(* dc_masks.(k): the k lowest 2-bit fields all set to 11 (the all-Dc word
   for k valid fields, and also the padding mask). low_masks.(k): bit 0 of
   each of those fields (the 01…01 pattern popcounts work against). For
   k = 31 the 62-bit all-ones value is exactly [max_int]. *)
let dc_masks =
  Array.init (fields_per_word + 1) (fun k ->
      if k = fields_per_word then max_int else (1 lsl (2 * k)) - 1)

let low_masks = Array.map (fun m -> m / 3) dc_masks

(* Number of valid 2-bit fields in word [k] of an [n]-input cube. *)
let fields_in n k =
  let w = words_for n in
  if k = w - 1 then n - (k * fields_per_word) else fields_per_word

(* SWAR popcount for 62-bit payloads. The first mask only needs to cover
   bits 0..60 because [x lsr 1] of a 62-bit value has no higher bit set. *)
let m1 = 0x1555555555555555
let m2 = 0x3333333333333333
let m4 = 0x0F0F0F0F0F0F0F0F
let h01 = 0x0101010101010101

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

let all_dc_ins n =
  let w = words_for n in
  Array.init w (fun k -> dc_masks.(fields_in n k))

let make ~n_in ~n_out =
  { n_in; ins = all_dc_ins n_in; outs = Util.Bitvec.create n_out }

let universe ~n_in ~n_out =
  { n_in; ins = all_dc_ins n_in; outs = Util.Bitvec.create_full n_out }

let of_literals lits ~outs =
  let n = List.length lits in
  let ins = Array.make (words_for n) 0 in
  List.iteri
    (fun i l ->
      let k = i / fields_per_word and j = i mod fields_per_word in
      ins.(k) <- ins.(k) lor (int_of_literal l lsl (2 * j)))
    lits;
  { n_in = n; ins; outs }

let num_inputs t = t.n_in

let num_outputs t = Util.Bitvec.length t.outs

let raw_get t i =
  (t.ins.(i / fields_per_word) lsr (2 * (i mod fields_per_word))) land 3

let raw_set t i v =
  assert (v >= 1 && v <= 3);
  let ins = Array.copy t.ins in
  let k = i / fields_per_word and j = i mod fields_per_word in
  ins.(k) <- (ins.(k) land lnot (3 lsl (2 * j))) lor (v lsl (2 * j));
  { t with ins }

let get t i = literal_of_int (raw_get t i)

let set t i l = raw_set t i (int_of_literal l)

let outputs t = t.outs

let with_outputs t outs = { t with outs }

let raw_words t = Array.copy t.ins

let equal a b =
  a.n_in = b.n_in
  && (let rec go k = k < 0 || (a.ins.(k) = b.ins.(k) && go (k - 1)) in
      go (Array.length a.ins - 1))
  && Util.Bitvec.equal a.outs b.outs

(* Positional-lexicographic order with literal values 1 < 2 < 3 — the same
   total order the old byte-per-literal [Bytes.compare] induced, which the
   deterministic espresso pipeline depends on. The first differing word is
   decided by its lowest differing 2-bit field. *)
let compare a b =
  if a.n_in <> b.n_in then Stdlib.compare a.n_in b.n_in
  else begin
    let w = Array.length a.ins in
    let rec go k =
      if k >= w then Util.Bitvec.compare a.outs b.outs
      else
        let x = a.ins.(k) and y = b.ins.(k) in
        if x = y then go (k + 1)
        else begin
          let d = x lxor y in
          let j = ref 0 in
          while (d lsr (2 * !j)) land 3 = 0 do incr j done;
          Stdlib.compare ((x lsr (2 * !j)) land 3) ((y lsr (2 * !j)) land 3)
        end
    in
    go 0
  end

let hash t = Hashtbl.hash (t.n_in, t.ins, Util.Bitvec.hash t.outs)

let contains a b =
  assert (a.n_in = b.n_in);
  let w = Array.length a.ins in
  let rec go k = k >= w || (b.ins.(k) land lnot a.ins.(k) = 0 && go (k + 1)) in
  go 0 && Util.Bitvec.subset b.outs a.outs

(* A word of an intersection is valid iff no 2-bit field went to 00:
   fold each field's two bits onto its low bit and compare with the
   all-fields-present pattern. *)

let input_universe t =
  let w = Array.length t.ins in
  let rec go k = k >= w || (t.ins.(k) = dc_masks.(fields_in t.n_in k) && go (k + 1)) in
  go 0

let intersects a b =
  assert (a.n_in = b.n_in);
  let w = Array.length a.ins in
  let rec go k =
    if k >= w then true
    else
      let v = a.ins.(k) land b.ins.(k) in
      let lm = low_masks.(fields_in a.n_in k) in
      (v lor (v lsr 1)) land lm = lm && go (k + 1)
  in
  go 0 && not (Util.Bitvec.disjoint a.outs b.outs)

let intersect a b =
  assert (a.n_in = b.n_in);
  let w = Array.length a.ins in
  let ins = Array.make w 0 in
  let rec go k =
    if k >= w then true
    else
      let v = a.ins.(k) land b.ins.(k) in
      let lm = low_masks.(fields_in a.n_in k) in
      if (v lor (v lsr 1)) land lm <> lm then false
      else begin
        ins.(k) <- v;
        go (k + 1)
      end
  in
  if not (go 0) then None
  else
    let outs = Util.Bitvec.inter a.outs b.outs in
    if Util.Bitvec.is_empty outs then None else Some { a with ins; outs }

let distance a b =
  assert (a.n_in = b.n_in);
  let w = Array.length a.ins in
  let d = ref 0 in
  for k = 0 to w - 1 do
    let v = a.ins.(k) land b.ins.(k) in
    let lm = low_masks.(fields_in a.n_in k) in
    d := !d + popcount (lm lxor ((v lor (v lsr 1)) land lm))
  done;
  if Util.Bitvec.disjoint a.outs b.outs then incr d;
  !d

(* [(count, pos)] where [count] is the number of input positions at which
   [a] and [b] conflict (their literal sets are disjoint), capped at 2, and
   [pos] is the first such position (or -1). The single-position case is
   what expand's blocker-count cache consumes. *)
let first_input_conflicts a b =
  assert (a.n_in = b.n_in);
  let w = Array.length a.ins in
  let count = ref 0 and pos = ref (-1) in
  (try
     for k = 0 to w - 1 do
       let v = a.ins.(k) land b.ins.(k) in
       let lm = low_masks.(fields_in a.n_in k) in
       let empty = lm lxor ((v lor (v lsr 1)) land lm) in
       if empty <> 0 then begin
         if !pos < 0 then begin
           let j = ref 0 in
           while (empty lsr (2 * !j)) land 1 = 0 do incr j done;
           pos := (k * fields_per_word) + !j
         end;
         count := !count + popcount empty;
         if !count >= 2 then raise Exit
       end
     done
   with Exit -> ());
  (min !count 2, !pos)

let supercube t = t

let supercube2 a b =
  assert (a.n_in = b.n_in);
  let ins = Array.mapi (fun k x -> x lor b.ins.(k)) a.ins in
  { a with ins; outs = Util.Bitvec.union a.outs b.outs }

let cofactor a ~by:p =
  assert (a.n_in = p.n_in);
  if not (intersects a p) then None
  else begin
    let ins =
      Array.mapi
        (fun k x -> x lor (lnot p.ins.(k) land dc_masks.(fields_in a.n_in k)))
        a.ins
    in
    let outs = Util.Bitvec.union a.outs (Util.Bitvec.complement p.outs) in
    Some { a with ins; outs }
  end

let literal_count t =
  let w = Array.length t.ins in
  let dc = ref 0 in
  for k = 0 to w - 1 do
    let v = t.ins.(k) in
    dc := !dc + popcount (v land (v lsr 1) land low_masks.(fields_in t.n_in k))
  done;
  t.n_in - !dc

let pack_minterm minterm =
  let n = Array.length minterm in
  let ins = Array.make (words_for n) 0 in
  for i = n - 1 downto 0 do
    let k = i / fields_per_word and j = i mod fields_per_word in
    ins.(k) <- ins.(k) lor ((if minterm.(i) then lit_one else lit_zero) lsl (2 * j))
  done;
  ins

let matches_packed t packed =
  assert (Array.length packed = Array.length t.ins);
  let w = Array.length t.ins in
  let rec go k = k >= w || (t.ins.(k) land packed.(k) = packed.(k) && go (k + 1)) in
  go 0

let matches t minterm =
  assert (Array.length minterm = t.n_in);
  matches_packed t (pack_minterm minterm)

let to_string t =
  let n_out = num_outputs t in
  let buf = Buffer.create (t.n_in + n_out + 1) in
  for i = 0 to t.n_in - 1 do
    Buffer.add_char buf
      (match raw_get t i with 1 -> '0' | 2 -> '1' | 3 -> '-' | _ -> '?')
  done;
  if n_out > 0 then begin
    Buffer.add_char buf ' ';
    for o = 0 to n_out - 1 do
      Buffer.add_char buf (if Util.Bitvec.get t.outs o then '1' else '0')
    done
  end;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
