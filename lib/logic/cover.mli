(** Covers: sets of multiple-output cubes denoting two-level logic.

    A cover represents, for each output, the union of its cubes' input
    products. All cubes of a cover share the same input/output arity. The
    module provides the classic espresso set operations — containment,
    tautology, complement, generalized cofactor — implemented with the unate
    recursive paradigm. *)

type t

val make : n_in:int -> n_out:int -> Cube.t list -> t
(** Builds a cover; every cube must have the stated arity. *)

val of_array : n_in:int -> n_out:int -> Cube.t array -> t
(** As {!make} from an array (the array is copied). *)

val empty : n_in:int -> n_out:int -> t

val num_inputs : t -> int

val num_outputs : t -> int

val cubes : t -> Cube.t list
(** The cubes as a fresh list (O(n) copy; prefer {!to_array} in hot
    loops). *)

val to_array : t -> Cube.t array
(** The underlying cube array, without copying — treat as read-only. *)

val size : t -> int
(** Number of cubes. O(1). *)

val literal_total : t -> int
(** Total input-literal count over all cubes (a standard cost metric).
    Cached after the first computation. *)

val is_empty : t -> bool

val add : t -> Cube.t -> t

val union : t -> t -> t
(** Cube-list union (no simplification). Arities must agree. *)

val equal_as_sets : t -> t -> bool
(** Equality of the cube {e lists} up to order and duplicates (not logical
    equivalence; see {!equivalent}). *)

val single_cube_containment : t -> t
(** Remove every cube contained in another single cube of the cover.
    Sort-based: cubes are visited by ascending literal count so only
    already-kept cubes need be tested as containers. *)

val scc_calls_total : unit -> int
(** Cumulative {!single_cube_containment} invocations across the program
    (all domains). Feeds the runtime metrics. *)

val scc_checks_total : unit -> int
(** Cumulative containment tests actually run by
    {!single_cube_containment}. *)

val scc_pairs_total : unit -> int
(** Cumulative ordered cube pairs an all-pairs containment scan would have
    inspected; [1 - checks/pairs] is the prune rate of the sort-based
    algorithm. *)

val eval : t -> bool array -> Util.Bitvec.t
(** [eval f minterm] is the set of outputs on for that input assignment. *)

val restrict_output : t -> int -> t
(** [restrict_output f o] keeps only cubes feeding output [o], as a
    single-output cover (n_out = 1, every kept cube's output part = {0}). *)

val cofactor_cube : t -> by:Cube.t -> t
(** Generalized cofactor of every cube (dropping cubes disjoint from [by]). *)

val cofactor_var : t -> int -> Cube.literal -> t
(** Shannon cofactor with respect to input [i] set to a value ([Dc] is
    rejected). *)

val tautology : t -> bool
(** [true] iff the cover covers the whole (minterm × output) space — i.e.
    every output is the constant-1 function. Unate recursive paradigm. *)

val covers_cube : t -> Cube.t -> bool
(** [covers_cube f c] iff every (minterm, output) of [c] is covered by [f]. *)

val covers : t -> t -> bool
(** [covers f g] iff every cube of [g] is covered by [f]. *)

val equivalent : t -> t -> bool
(** Logical equivalence (mutual covering). *)

val complement : t -> t
(** Cover of the complement, computed per output with unate recursion.
    The result's cubes each carry a single output. *)

val sharp : t -> t -> t
(** [sharp a b] is the set difference [a \ b] as a cover
    ([a ∩ ¬b], simplified by single-cube containment). *)

val complement_of_incompletely_specified : t -> t -> t
(** [complement_of_incompletely_specified on dc] is [¬(on ∪ dc)]: the
    minterms certainly off in the incompletely specified function. *)

val minterms : t -> t
(** Expansion into minterm cubes (exponential; intended for small functions
    and test oracles). Each result cube has a full input part (no [Dc]) and
    a single output. *)

val random : Util.Rng.t -> n_in:int -> n_out:int -> n_cubes:int -> dc_bias:float -> t
(** Random cover for tests and synthetic benchmarks: each input position is
    [Dc] with probability [dc_bias], else a random polarity; each cube feeds
    a uniformly chosen non-empty output subset. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
