let dominates ~maximize a b =
  let n = Array.length maximize in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Pareto.dominates: axis count mismatch";
  let at_least_as_good = ref true in
  let strictly_better = ref false in
  for k = 0 to n - 1 do
    let va, vb = if maximize.(k) then (a.(k), b.(k)) else (-.a.(k), -.b.(k)) in
    if va < vb then at_least_as_good := false;
    if va > vb then strictly_better := true
  done;
  !at_least_as_good && !strictly_better

let front ~maximize ~values items =
  let coords = List.map (fun it -> (it, values it)) items in
  List.filter_map
    (fun (it, v) ->
      if List.exists (fun (_, w) -> dominates ~maximize w v) coords then None else Some it)
    coords
