type failure = { fl_index : int; fl_name : string; fl_stage : string; fl_error : string }

type 'a spec = {
  total : int;
  jobs : int;
  window : int;
  checkpoint : string option;
  meta : Assess.Json.t;
  item_json : 'a -> Assess.Json.t;
  item_of_json : Assess.Json.t -> 'a option;
  index_of_item : 'a -> int;
  name_of_index : int -> string;
  task : int -> ('a, failure) result;
}

type 'a outcome = {
  sh_results : ('a, failure) result option array;
  sh_resumed : int;
}

(* Completed items recorded by a prior run with an equivalent config, or
   [None] when the file is absent/foreign/stale and must be restarted. *)
let load_checkpoint spec path =
  if not (Sys.file_exists path) then None
  else
    In_channel.with_open_text path (fun ic ->
        match In_channel.input_line ic with
        | None -> None
        | Some header -> (
            match Assess.Json.parse header with
            | Ok meta when meta = spec.meta ->
                let tbl = Hashtbl.create 64 in
                let rec lines () =
                  match In_channel.input_line ic with
                  | None -> ()
                  | Some line ->
                      (match Assess.Json.parse line with
                      | Ok j -> (
                          match spec.item_of_json j with
                          | Some it -> Hashtbl.replace tbl (spec.index_of_item it) it
                          | None -> ())
                      | Error _ -> () (* torn tail line from an interrupted run *));
                      lines ()
                in
                lines ();
                Some tbl
            | _ -> None))

let run ?metrics spec =
  if spec.total < 0 then invalid_arg "Sweep.Shard.run: negative population";
  let total = spec.total in
  let outcomes : ('a, failure) Stdlib.result option array = Array.make (max total 1) None in
  let resumed = ref 0 in
  (match spec.checkpoint with
  | None -> ()
  | Some path -> (
      match load_checkpoint spec path with
      | Some tbl ->
          Hashtbl.iter
            (fun i it ->
              if i >= 0 && i < total then (
                outcomes.(i) <- Some (Ok it);
                incr resumed))
            tbl
      | None ->
          (* Fresh or foreign file: restart it with our header. *)
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Assess.Json.to_string spec.meta);
              Out_channel.output_char oc '\n')));
  let ck_oc =
    match spec.checkpoint with
    | None -> None
    | Some path ->
        let exists = Sys.file_exists path in
        let oc = Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path in
        if not exists then (
          Out_channel.output_string oc (Assess.Json.to_string spec.meta);
          Out_channel.output_char oc '\n');
        Some oc
  in
  let record i (outcome : ('a, failure) Stdlib.result) =
    outcomes.(i) <- Some outcome;
    match (outcome, ck_oc) with
    | Ok it, Some oc ->
        Out_channel.output_string oc (Assess.Json.to_string (spec.item_json it));
        Out_channel.output_char oc '\n';
        Out_channel.flush oc
    | _ -> ()
  in
  let todo = ref [] in
  for i = total - 1 downto 0 do
    if outcomes.(i) = None then todo := i :: !todo
  done;
  (if !todo <> [] then
     let window = if spec.window > 0 then spec.window else max 4 (4 * spec.jobs) in
     Runtime.Pool.with_pool ?metrics ~jobs:spec.jobs (fun pool ->
         (* Bounded in-flight window, awaited in submission (= index)
            order: memory stays O(window) however large the population,
            and checkpoint lines land in index order. *)
         let inflight = Queue.create () in
         let submit i = Queue.add (i, Runtime.Pool.submit pool (fun () -> spec.task i)) inflight in
         let settle () =
           let i, fut = Queue.pop inflight in
           match Runtime.Pool.await_result fut with
           | Ok outcome -> record i outcome
           | Error (e, _) ->
               (* The pool wrapper itself failed (worker crash): contain
                  it like any stage failure. *)
               record i
                 (Error
                    {
                      fl_index = i;
                      fl_name = spec.name_of_index i;
                      fl_stage = "sweep.pool";
                      fl_error = Printexc.to_string e;
                    })
         in
         List.iter
           (fun i ->
             if Queue.length inflight >= window then settle ();
             submit i)
           !todo;
         while not (Queue.is_empty inflight) do
           settle ()
         done));
  Option.iter Out_channel.close ck_oc;
  { sh_results = outcomes; sh_resumed = !resumed }
