(** The generic sharded item driver behind {!Drive} and
    [Classify.Envelope]: fan an indexed population over the domain pool
    with a bounded in-flight window, JSONL checkpoint/resume behind a
    config-pinning meta header, and typed per-item failure containment.

    The driver knows nothing about what an item {e is} — a {!spec}
    supplies the task, the item codec, and the checkpoint header. What it
    guarantees is scheduling-independence of everything it stores: the
    task is called with the item index only, so as long as the task is a
    pure function of (its config, index), results are bit-identical at
    any [jobs] count and any window, and a checkpoint-resumed run equals
    an uninterrupted one. *)

type failure = { fl_index : int; fl_name : string; fl_stage : string; fl_error : string }
(** A contained per-item failure: which item, which pipeline stage, what
    it raised. [fl_stage] is ["sweep.pool"] when the pool wrapper itself
    died (worker crash) rather than a stage of the item's pipeline. *)

type 'a spec = {
  total : int;  (** population size; items are indices [0..total-1] *)
  jobs : int;  (** worker domains *)
  window : int;  (** max in-flight pool items; 0 = [max 4 (4 × jobs)] *)
  checkpoint : string option;  (** JSONL progress file *)
  meta : Assess.Json.t;
      (** checkpoint header. Pin every knob that shapes item values;
          leave out scheduling knobs (jobs/window/total) so a resume may
          widen the pool or extend the population. *)
  item_json : 'a -> Assess.Json.t;
  item_of_json : Assess.Json.t -> 'a option;  (** total inverse; ill-typed → [None] *)
  index_of_item : 'a -> int;
  name_of_index : int -> string;  (** display name for failure records *)
  task : int -> ('a, failure) result;
      (** compute one item; already containment-typed. Must be a pure
          function of the index (plus the spec's own config) — never of
          scheduling. An exception escaping [task] crashes the worker; use
          {!Stage.exec} or equivalent inside. *)
}

type 'a outcome = {
  sh_results : ('a, failure) result option array;
      (** length [total], every slot [Some] on return (index order) *)
  sh_resumed : int;  (** items loaded from the checkpoint, not recomputed *)
}

val run : ?metrics:Runtime.Metrics.t -> 'a spec -> 'a outcome
(** Fan indices [0..total-1] over a fresh pool of [jobs] domains with at
    most [window] items in flight, awaited in submission (= index) order
    so memory stays O(window) and checkpoint lines land in index order.

    With [checkpoint = Some path], completed items are appended as JSONL
    after the meta header; a later run whose [meta] equals the header
    loads them back (tolerating a torn tail line from an interrupted
    writer) and computes only the missing indices, while a mismatched
    header starts the file over. Failures are never checkpointed, so a
    resume retries them. *)
