(** Report views over a sweep result.

    Two disciplines coexist here and must not be mixed. The
    {e deterministic} views ({!front_json}, {!deterministic_json}) are
    pure functions of the swept values — no wall-clock, no job count, no
    stage latencies — so a fixed-seed sweep renders them byte-identically
    on any machine at any [--jobs]; the golden regression and the
    cross-job determinism property both compare these bytes. The
    {e measurement} views ({!bench_json}, {!to_metrics}) carry everything
    else: latency percentiles, throughput, wall time. *)

type fronts = {
  area_frequency : Drive.item list;  (** area min × frequency max *)
  area_yield : Drive.item list;  (** area min × yield max *)
  frequency_yield : Drive.item list;  (** frequency max × yield max *)
  area_frequency_yield : Drive.item list;  (** all three axes *)
}

val fronts : Drive.item list -> fronts
(** Pareto fronts over the population, each in item (= index) order. *)

type stage_stat = { st_name : string; st_count : int; st_p50_s : float; st_p95_s : float }

val stage_stats : Drive.item list -> stage_stat list
(** Per-stage latency summary pooled across items, in first-seen
    (pipeline) order. Percentiles by nearest-rank on the sorted pool. *)

val front_json : Drive.result -> Assess.Json.t
(** The golden-regression view: seed, space, front membership (items
    without [stage_s]). Deterministic. *)

val deterministic_json : Drive.result -> Assess.Json.t
(** Everything value-like: config echo (minus [jobs]), every item (minus
    [stage_s]), every failure, plus {!front_json}'s fronts. Two sweeps
    agree on these bytes iff they swept identical populations. *)

val bench_json : Drive.result -> Assess.Json.t
(** The full artifact: {!deterministic_json} plus jobs, wall seconds,
    resumed count, throughput and {!stage_stats}. *)

val write : path:string -> Assess.Json.t -> unit
(** Pretty-print the view to [path] (2-space indent, trailing newline). *)

val to_metrics : Drive.result -> Assess.Run.metric list
(** One single-sample metric per measured quantity — [sweep.wall_s],
    [sweep.items_per_s], and [sweep.stage.<name>.p50_s] / [.p95_s] per
    stage — for folding repeated sweeps into an {!Assess.Run} artifact
    the [bench-ab] gate can compare. *)

val merge_metrics : Assess.Run.metric list list -> Assess.Run.metric list
(** Zip per-repeat metric lists (as from {!to_metrics}) into multi-sample
    metrics, keyed by name; a metric missing from some repeat keeps only
    the samples it has. *)

val summary : Drive.result -> string
(** Human digest: population, failures, front sizes, hot stages. *)
