(* Re-export of the stage engine under its public name: [Sweep.Stage] is
   the API, [Stage_core] exists only so [Fpga.Flow] (which [Sweep.Drive]
   builds on) can be staged without a dependency cycle. *)
include Stage_core
