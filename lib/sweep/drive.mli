(** The population-scale silicon sweep: thousands of synthetic MCNC-style
    profiles through generate → minimize → phase → fold → map → place →
    route → time → yield, sharded over the domain pool.

    Determinism is the load-bearing property. Every item derives its
    random streams from [(seed, salt, index)] alone — never from
    scheduling — so the swept population is bit-identical at any [jobs]
    count and any in-flight window, and a checkpoint-resumed sweep equals
    an uninterrupted one. Item failures are typed data: a raising stage
    records a {!failure} (which profile, which stage, what it raised) and
    the sweep keeps going.

    Wall-clock per-stage latencies ride on each {!item} ([it_stage_s],
    filled from the stage engine's observer); they are measurement, not
    identity — the deterministic report views drop them. *)

type space = { inputs : int list; outputs : int list; products : int list }
(** The swept profile dimensions. The population tiles the cross product
    [inputs × outputs × products] in row-major order; item [i] gets cell
    [i mod size] (repeat visits draw fresh functions from fresh
    per-index rngs, so tiling never duplicates an item). *)

type config = {
  profiles : int;  (** population size *)
  seed : int;
  jobs : int;  (** worker domains *)
  window : int;  (** max in-flight pool items; 0 = [4 × jobs] *)
  space : space;
  yield_trials : int;  (** Monte-Carlo trials behind each item's yield *)
  defect_rate : float;
  spare_rows : int;
  clb_inputs : int;  (** CLB input budget for technology mapping *)
  checkpoint : string option;  (** JSONL progress file; see {!run} *)
}

val default_space : space
(** 6 input points × 4 output points × 4 product points = 96 grid cells,
    inputs 5–10 — the production population shape. *)

val quick_space : space
(** 2 × 2 × 2 small cells for smoke runs and the golden regression. *)

val tiny_space : space
(** Minimal cells (≤ 5 inputs) for property-based checks that run whole
    sweeps per case. *)

val default : config
(** 1024 profiles over {!default_space}, seed 2008, default pool size,
    16 yield trials at 2% defects. *)

val quick : config
(** 8 profiles over {!quick_space}, 8 yield trials — the [--quick] /
    golden-regression configuration. *)

type item = {
  it_index : int;
  it_name : string;  (** [p<index>-<in>x<out>x<products>] *)
  it_n_in : int;
  it_n_out : int;
  it_target_products : int;
  it_achieved_products : int;  (** after two-level minimization *)
  it_products : int;  (** after output-phase optimization *)
  it_area : int;  (** folded CNFET PLA area, L² *)
  it_blocks : int;  (** mapped CLB count placed on the fabric *)
  it_grid : int;  (** standard grid the CNFET arch was derived from *)
  it_frequency_hz : float;  (** routed+timed frequency on the CNFET fabric *)
  it_yield : float;  (** spare-row repair yield at [defect_rate] *)
  it_stage_s : (string * float) list;  (** per-stage wall seconds, execution order *)
}

type failure = Shard.failure = {
  fl_index : int;
  fl_name : string;
  fl_stage : string;
  fl_error : string;
}
(** Alias of {!Shard.failure}: the generic sharded driver owns the
    containment type; this sweep is one client of it. *)

type result = {
  r_profiles : int;
  r_seed : int;
  r_jobs : int;
  r_space : space;
  r_items : item list;  (** index order; failed indices absent *)
  r_failures : failure list;  (** index order *)
  r_resumed : int;  (** items loaded from the checkpoint, not recomputed *)
  r_wall_s : float;
}

val profile_for : space -> int -> Mcnc.Profiles.t
(** The grid cell item [index] sweeps. *)

val name_for : space -> int -> string

val item_rng : seed:int -> salt:int -> int -> Util.Rng.t
(** The per-item stream family: a fresh generator keyed by
    [(seed, salt, index)] through FNV-1a — pure in its arguments, so item
    streams are independent of scheduling, job count and each other.
    Salts 0/1/2 are the generate/flow/yield streams. *)

val item_pipeline : config -> index:int -> (unit, item) Stage.t
(** The staged per-item flow. Stage names, in order: [sweep.generate]
    (profile-matched synthesis, which includes the espresso
    minimization), [sweep.phase], [sweep.fold], [sweep.map], then the
    reused {!Fpga.Flow.staged} pipeline ([fpga.place], [fpga.route],
    [fpga.timing]) under the [sweep.pnr] dyn segment (the architecture is
    sized from the mapped design), and [sweep.yield]. *)

val item_json : item -> Assess.Json.t

val item_of_json : Assess.Json.t -> item option
(** Total inverse of {!item_json} (missing/ill-typed fields → [None]). *)

val run :
  ?metrics:Runtime.Metrics.t ->
  ?pipeline:(config -> index:int -> (unit, item) Stage.t) ->
  config ->
  result
(** Fan the population over a fresh pool of [config.jobs] domains with at
    most [window] items in flight; results are folded in index order.

    With [checkpoint = Some path], completed items are appended to [path]
    as JSONL after a meta header; a later run with an equivalent config
    (same seed/space/knobs — [jobs]/[window]/[profiles] may differ) loads
    them back and computes only the missing indices, while a run whose
    config mismatches the header starts the file over. Failed items are
    never checkpointed, so a resume retries them.

    [pipeline] (default {!item_pipeline}) is the per-item flow — tests
    substitute pipelines with planted raising stages to exercise
    containment. *)
