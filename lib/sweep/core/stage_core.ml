type ('a, 'b) stage = { name : string; f : 'a -> 'b }

type ('a, 'b) t =
  | Stage : ('a, 'b) stage -> ('a, 'b) t
  | Pure : ('a -> 'b) -> ('a, 'b) t
  | Seq : ('a, 'c) t * ('c, 'b) t -> ('a, 'b) t
  | Dyn : string * ('a -> ('a, 'b) t) -> ('a, 'b) t

let stage name f = Stage { name; f }
let pure f = Pure f
let ( >>> ) p q = Seq (p, q)
let dyn label build = Dyn (label, build)

let rec first : type a b c. (a, b) t -> (a * c, b * c) t = function
  | Stage s -> Stage { name = s.name; f = (fun (x, carry) -> (s.f x, carry)) }
  | Pure f -> Pure (fun (x, carry) -> (f x, carry))
  | Seq (p, q) -> Seq (first p, first q)
  | Dyn (label, build) -> Dyn (label, fun (x, _carry) -> first (build x))

let rec names : type a b. (a, b) t -> string list = function
  | Stage s -> [ s.name ]
  | Pure _ -> []
  | Seq (p, q) -> names p @ names q
  | Dyn (label, _) -> [ label ]

type failure = { stage : string; error : string }

exception Stage_failed of failure * exn

let failure_to_string f = Printf.sprintf "stage %s: %s" f.stage f.error

let contain stage e = Stage_failed ({ stage; error = Printexc.to_string e }, e)

(* One instrumented stage: span around the body, duration into the
   [sweep.stage.<name>] histogram and the observer. The duration hooks
   fire only on success — a raising stage is an error datum, not a
   latency sample. *)
let run_stage ?metrics ?observe ~catch (s : _ stage) x =
  let t0 = Obs.Clock.monotonic () in
  match Obs.Span.with_ s.name (fun () -> s.f x) with
  | y ->
    let dur_s = Int64.to_float (Int64.sub (Obs.Clock.monotonic ()) t0) /. 1e9 in
    (match metrics with
    | Some m -> Runtime.Metrics.observe m ("sweep.stage." ^ s.name) dur_s
    | None -> ());
    (match observe with Some f -> f ~stage:s.name ~dur_s | None -> ());
    y
  | exception e when catch -> raise (contain s.name e)

let rec go :
    type a b.
    catch:bool ->
    metrics:Runtime.Metrics.t option ->
    observe:(stage:string -> dur_s:float -> unit) option ->
    (a, b) t ->
    a ->
    b =
 fun ~catch ~metrics ~observe p x ->
  match p with
  | Stage s -> run_stage ?metrics ?observe ~catch s x
  | Pure f -> ( match f x with y -> y | exception e when catch -> raise (contain "(pure)" e))
  | Seq (p, q) ->
    let y = go ~catch ~metrics ~observe p x in
    go ~catch ~metrics ~observe q y
  | Dyn (label, build) ->
    let inner =
      match build x with
      | inner -> inner
      | exception e when catch -> raise (contain label e)
    in
    go ~catch ~metrics ~observe inner x

let exec ?metrics ?observe p x =
  match go ~catch:true ~metrics ~observe p x with
  | y -> Ok y
  | exception Stage_failed (f, _) -> Error f

let exec_exn ?metrics ?observe p x = go ~catch:false ~metrics ~observe p x
