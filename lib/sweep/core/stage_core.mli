(** Typed staged pipelines: the shared backbone of [Fpga.Flow] and
    [Sweep.Drive].

    A pipeline is a composition of {e named} stages. Executing one runs
    every stage in order under a tracing span ([Obs.Span]) and a latency
    histogram ([sweep.stage.<name>] when a metrics registry is supplied),
    and reports each stage's wall-clock duration to an optional observer —
    the hook the population-sweep driver uses to build per-item,
    per-stage latency series.

    Two execution disciplines cover the two call sites:

    {ul
    {- {!exec} captures a raising stage as a typed {!failure} carrying the
       stage's name, so one bad item in a thousand-profile sweep is a
       recorded datum, not a crashed run;}
    {- {!exec_exn} lets the stage's exception propagate unchanged — the
       drop-in discipline for refactored single-design entry points
       ([Fpga.Flow.run]) whose callers already handle the underlying
       exceptions.}} *)

type ('a, 'b) stage = private { name : string; f : 'a -> 'b }

type ('a, 'b) t =
  | Stage : ('a, 'b) stage -> ('a, 'b) t
  | Pure : ('a -> 'b) -> ('a, 'b) t
  | Seq : ('a, 'c) t * ('c, 'b) t -> ('a, 'b) t
  | Dyn : string * ('a -> ('a, 'b) t) -> ('a, 'b) t

val stage : string -> ('a -> 'b) -> ('a, 'b) t
(** A named, instrumented stage. *)

val pure : ('a -> 'b) -> ('a, 'b) t
(** Anonymous glue (tupling, projection): runs inline with no span, no
    histogram and no observer callback. Exceptions from [pure] code are
    attributed to the pseudo-stage name ["(pure)"] by {!exec}. *)

val ( >>> ) : ('a, 'c) t -> ('c, 'b) t -> ('a, 'b) t
(** Left-to-right composition. *)

val dyn : string -> ('a -> ('a, 'b) t) -> ('a, 'b) t
(** A pipeline segment whose shape depends on the value flowing through it
    (e.g. place/route stages whose architecture is sized from the mapped
    design). The builder runs un-instrumented under the given label; the
    pipeline it returns is executed with full instrumentation. *)

val first : ('a, 'b) t -> ('a * 'c, 'b * 'c) t
(** Run the pipeline on the first component of a pair, carrying the second
    through untouched — stage names are preserved, so instrumentation of a
    reused pipeline ([Fpga.Flow.staged] inside a sweep) is unchanged. *)

val names : ('a, 'b) t -> string list
(** Stage names in execution order. [Dyn] segments contribute their label
    (their inner stages are not known statically); [Pure] glue is
    invisible. *)

type failure = { stage : string; error : string }
(** A stage that raised: which stage, and [Printexc.to_string] of what it
    raised. *)

exception Stage_failed of failure * exn
(** Internal carrier; {!exec} never lets it escape. The original
    exception rides along for {!exec_exn}. *)

val failure_to_string : failure -> string

val exec :
  ?metrics:Runtime.Metrics.t ->
  ?observe:(stage:string -> dur_s:float -> unit) ->
  ('a, 'b) t ->
  'a ->
  ('b, failure) result
(** Run the pipeline on one item. Every named stage is wrapped in an
    [Obs.Span] and, with [metrics], observed into the
    [sweep.stage.<name>] histogram; [observe] fires after each completed
    stage with its duration. The first raising stage stops the pipeline
    and becomes [Error failure]; no exception escapes. *)

val exec_exn :
  ?metrics:Runtime.Metrics.t ->
  ?observe:(stage:string -> dur_s:float -> unit) ->
  ('a, 'b) t ->
  'a ->
  'b
(** Same instrumentation, exception-transparent: a raising stage's
    original exception (and backtrace) propagates to the caller as if the
    stages had been called directly. *)
