type space = { inputs : int list; outputs : int list; products : int list }

type config = {
  profiles : int;
  seed : int;
  jobs : int;
  window : int;
  space : space;
  yield_trials : int;
  defect_rate : float;
  spare_rows : int;
  clb_inputs : int;
  checkpoint : string option;
}

let default_space =
  { inputs = [ 5; 6; 7; 8; 9; 10 ]; outputs = [ 1; 2; 4; 8 ]; products = [ 8; 16; 24; 32 ] }

let quick_space = { inputs = [ 5; 6 ]; outputs = [ 1; 2 ]; products = [ 6; 10 ] }
let tiny_space = { inputs = [ 4; 5 ]; outputs = [ 1; 2 ]; products = [ 3; 5 ] }

let default =
  {
    profiles = 1024;
    seed = 2008;
    jobs = Runtime.Pool.default_jobs ();
    window = 0;
    space = default_space;
    yield_trials = 16;
    defect_rate = 0.02;
    spare_rows = 2;
    clb_inputs = 4;
    checkpoint = None;
  }

let quick = { default with profiles = 8; space = quick_space; yield_trials = 8; jobs = 2 }

type item = {
  it_index : int;
  it_name : string;
  it_n_in : int;
  it_n_out : int;
  it_target_products : int;
  it_achieved_products : int;
  it_products : int;
  it_area : int;
  it_blocks : int;
  it_grid : int;
  it_frequency_hz : float;
  it_yield : float;
  it_stage_s : (string * float) list;
}

type failure = Shard.failure = {
  fl_index : int;
  fl_name : string;
  fl_stage : string;
  fl_error : string;
}

type result = {
  r_profiles : int;
  r_seed : int;
  r_jobs : int;
  r_space : space;
  r_items : item list;
  r_failures : failure list;
  r_resumed : int;
  r_wall_s : float;
}

(* ------------------------------------------------------------------ *)
(* Profile grid *)

let profile_for space index =
  let ni = List.length space.inputs
  and no = List.length space.outputs
  and np = List.length space.products in
  if ni = 0 || no = 0 || np = 0 then invalid_arg "Sweep.Drive.profile_for: empty space";
  let cell = index mod (ni * no * np) in
  let n_in = List.nth space.inputs (cell / (no * np)) in
  let n_out = List.nth space.outputs (cell / np mod no) in
  let n_products = List.nth space.products (cell mod np) in
  {
    Mcnc.Profiles.name = Printf.sprintf "syn-%dx%dx%d" n_in n_out n_products;
    n_in;
    n_out;
    n_products;
  }

let name_for space index =
  let p = profile_for space index in
  Printf.sprintf "p%05d-%dx%dx%d" index p.Mcnc.Profiles.n_in p.n_out p.n_products

(* ------------------------------------------------------------------ *)
(* Deterministic per-item streams *)

(* FNV-1a over the little-endian bytes of each word. The stream key is a
   pure function of (seed, salt, index): nothing about scheduling, job
   count or resume order can reach it. *)
let mix64 words =
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun w ->
      let w = Int64.of_int w in
      for b = 0 to 7 do
        let byte = Int64.logand (Int64.shift_right_logical w (8 * b)) 0xffL in
        h := Int64.mul (Int64.logxor !h byte) 0x100000001b3L
      done)
    words;
  Int64.to_int !h

let item_rng ~seed ~salt index = Util.Rng.create (mix64 [ seed; salt; index ])

(* ------------------------------------------------------------------ *)
(* The per-item staged flow *)

(* Smallest CNFET grid that keeps CLB occupancy at or under 80% — the
   headroom placement needs to anneal rather than tile. *)
let grid_for blocks =
  let rec fit g =
    if Fpga.Arch.sites (Fpga.Arch.cnfet ~grid:g) * 4 >= blocks * 5 then g else fit (g + 1)
  in
  fit 3

let item_pipeline config ~index =
  let profile = profile_for config.space index in
  let name = name_for config.space index in
  let gen_rng = item_rng ~seed:config.seed ~salt:0 index in
  let flow_rng = item_rng ~seed:config.seed ~salt:1 index in
  let yield_rng = item_rng ~seed:config.seed ~salt:2 index in
  let open Stage in
  stage "sweep.generate" (fun () ->
      let syn = Mcnc.Synthetic.with_profile gen_rng profile in
      (syn.Mcnc.Synthetic.minimized, syn.achieved_products))
  >>> stage "sweep.phase" (fun (minimized, achieved) ->
          let ph = Espresso.Phase.optimize ~max_rounds:1 minimized in
          (minimized, achieved, ph.Espresso.Phase.cover))
  >>> stage "sweep.fold" (fun (minimized, achieved, phased) ->
          let pla = Cnfet.Pla.of_minimized phased in
          let area = Cnfet.Folding.folded_pla_area Device.Tech.cnfet pla in
          (minimized, (achieved, Logic.Cover.size phased, pla, area)))
  >>> stage "sweep.map" (fun (minimized, carry) ->
          let mapped = Fpga.Map.map_cover ~clb_inputs:config.clb_inputs minimized in
          let design = Fpga.Design.absorb_inverters (Fpga.Map.to_design mapped) in
          (design, carry))
  >>> dyn "sweep.pnr" (fun (design, _carry) ->
          let grid = grid_for (Fpga.Design.block_count design) in
          let arch = Fpga.Arch.cnfet ~grid in
          first (Fpga.Flow.staged flow_rng arch)
          >>> pure (fun (attempt, carry) -> (attempt, grid, carry)))
  >>> stage "sweep.yield" (fun (attempt, grid, (achieved, products, pla, area)) ->
          let outcome = attempt.Fpga.Flow.a_outcome in
          let point =
            Fault.Yield.estimate yield_rng ~trials:config.yield_trials
              ~spare_rows:config.spare_rows pla ~defect_rate:config.defect_rate
          in
          {
            it_index = index;
            it_name = name;
            it_n_in = profile.Mcnc.Profiles.n_in;
            it_n_out = profile.n_out;
            it_target_products = profile.n_products;
            it_achieved_products = achieved;
            it_products = products;
            it_area = area;
            it_blocks = outcome.Fpga.Flow.blocks_used;
            it_grid = grid;
            it_frequency_hz = outcome.timing.Fpga.Timing.frequency_hz;
            it_yield = point.Fault.Yield.yield_spares;
            it_stage_s = [];
          })

(* ------------------------------------------------------------------ *)
(* Item JSON (shared by checkpoints and reports) *)

let item_json it =
  let num x = Assess.Json.Number x in
  let int x = num (float_of_int x) in
  Assess.Json.Obj
    [
      ("index", int it.it_index);
      ("name", Assess.Json.String it.it_name);
      ("n_in", int it.it_n_in);
      ("n_out", int it.it_n_out);
      ("target_products", int it.it_target_products);
      ("achieved_products", int it.it_achieved_products);
      ("products", int it.it_products);
      ("area", int it.it_area);
      ("blocks", int it.it_blocks);
      ("grid", int it.it_grid);
      ("frequency_hz", num it.it_frequency_hz);
      ("yield", num it.it_yield);
      ("stage_s", Assess.Json.Obj (List.map (fun (k, v) -> (k, num v)) it.it_stage_s));
    ]

let item_of_json j =
  let open Assess.Json in
  let ( let* ) o f = Option.bind o f in
  let* it_index = Option.bind (member "index" j) to_int in
  let* it_name = Option.bind (member "name" j) to_str in
  let* it_n_in = Option.bind (member "n_in" j) to_int in
  let* it_n_out = Option.bind (member "n_out" j) to_int in
  let* it_target_products = Option.bind (member "target_products" j) to_int in
  let* it_achieved_products = Option.bind (member "achieved_products" j) to_int in
  let* it_products = Option.bind (member "products" j) to_int in
  let* it_area = Option.bind (member "area" j) to_int in
  let* it_blocks = Option.bind (member "blocks" j) to_int in
  let* it_grid = Option.bind (member "grid" j) to_int in
  let* it_frequency_hz = Option.bind (member "frequency_hz" j) to_float in
  let* it_yield = Option.bind (member "yield" j) to_float in
  let* it_stage_s =
    match member "stage_s" j with
    | Some (Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* v = to_float v in
            Some ((k, v) :: acc))
          (Some []) kvs
        |> Option.map List.rev
    | _ -> None
  in
  Some
    {
      it_index;
      it_name;
      it_n_in;
      it_n_out;
      it_target_products;
      it_achieved_products;
      it_products;
      it_area;
      it_blocks;
      it_grid;
      it_frequency_hz;
      it_yield;
      it_stage_s;
    }

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

(* The header pins every knob that shapes item results. [jobs], [window]
   and [profiles] are deliberately absent: they change scheduling and
   population size, never the value any index computes, so a resume may
   widen the pool or extend the sweep. *)
let checkpoint_meta config =
  let int x = Assess.Json.Number (float_of_int x) in
  Assess.Json.Obj
    [
      ("sweep_checkpoint", int 1);
      ("seed", int config.seed);
      ("inputs", Assess.Json.List (List.map (fun x -> int x) config.space.inputs));
      ("outputs", Assess.Json.List (List.map (fun x -> int x) config.space.outputs));
      ("products", Assess.Json.List (List.map (fun x -> int x) config.space.products));
      ("yield_trials", int config.yield_trials);
      ("defect_rate", Assess.Json.Number config.defect_rate);
      ("spare_rows", int config.spare_rows);
      ("clb_inputs", int config.clb_inputs);
    ]

(* ------------------------------------------------------------------ *)
(* The sharded driver — the generic machinery lives in {!Shard}; this
   binds it to the silicon-sweep item type and staged pipeline. *)

let run ?metrics ?(pipeline = item_pipeline) config =
  if config.profiles < 0 then invalid_arg "Sweep.Drive.run: negative profile count";
  let t0 = Unix.gettimeofday () in
  let task i =
    let durs = ref [] in
    let observe ~stage ~dur_s = durs := (stage, dur_s) :: !durs in
    match Stage.exec ?metrics ~observe (pipeline config ~index:i) () with
    | Ok it -> Ok { it with it_stage_s = List.rev !durs }
    | Error f ->
        Error
          {
            fl_index = i;
            fl_name = name_for config.space i;
            fl_stage = f.Stage.stage;
            fl_error = f.error;
          }
  in
  let outcome =
    Shard.run ?metrics
      {
        Shard.total = config.profiles;
        jobs = config.jobs;
        window = config.window;
        checkpoint = config.checkpoint;
        meta = checkpoint_meta config;
        item_json;
        item_of_json;
        index_of_item = (fun it -> it.it_index);
        name_of_index = name_for config.space;
        task;
      }
  in
  let items = ref [] and failures = ref [] in
  for i = config.profiles - 1 downto 0 do
    match outcome.Shard.sh_results.(i) with
    | Some (Ok it) -> items := it :: !items
    | Some (Error f) -> failures := f :: !failures
    | None -> assert false
  done;
  {
    r_profiles = config.profiles;
    r_seed = config.seed;
    r_jobs = config.jobs;
    r_space = config.space;
    r_items = !items;
    r_failures = !failures;
    r_resumed = outcome.Shard.sh_resumed;
    r_wall_s = Unix.gettimeofday () -. t0;
  }
