(** Pareto-front extraction over swept items.

    Orientation is per-axis ([maximize.(k)]); dominance is the strict
    kind: [a] dominates [b] when [a] is at least as good on every axis
    and strictly better on at least one. Points with identical
    coordinates never dominate each other, so duplicated optima all stay
    on the front. *)

val dominates : maximize:bool array -> float array -> float array -> bool
(** [dominates ~maximize a b]: [a] strictly Pareto-dominates [b]. The
    three arrays must have equal length. *)

val front : maximize:bool array -> values:('a -> float array) -> 'a list -> 'a list
(** Non-dominated subset, in input order (the extraction is stable, so a
    deterministic sweep yields a byte-stable front). O(n²) comparisons. *)
