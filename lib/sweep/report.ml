type fronts = {
  area_frequency : Drive.item list;
  area_yield : Drive.item list;
  frequency_yield : Drive.item list;
  area_frequency_yield : Drive.item list;
}

let area it = float_of_int it.Drive.it_area
let freq it = it.Drive.it_frequency_hz
let yld it = it.Drive.it_yield

let fronts items =
  {
    area_frequency =
      Pareto.front ~maximize:[| false; true |] ~values:(fun it -> [| area it; freq it |]) items;
    area_yield =
      Pareto.front ~maximize:[| false; true |] ~values:(fun it -> [| area it; yld it |]) items;
    frequency_yield =
      Pareto.front ~maximize:[| true; true |] ~values:(fun it -> [| freq it; yld it |]) items;
    area_frequency_yield =
      Pareto.front
        ~maximize:[| false; true; true |]
        ~values:(fun it -> [| area it; freq it; yld it |])
        items;
  }

type stage_stat = { st_name : string; st_count : int; st_p50_s : float; st_p95_s : float }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let stage_stats items =
  let order = ref [] in
  let pools : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun it ->
      List.iter
        (fun (name, dur) ->
          match Hashtbl.find_opt pools name with
          | Some pool -> pool := dur :: !pool
          | None ->
              Hashtbl.add pools name (ref [ dur ]);
              order := name :: !order)
        it.Drive.it_stage_s)
    items;
  List.rev_map
    (fun name ->
      let samples = Array.of_list !(Hashtbl.find pools name) in
      Array.sort compare samples;
      {
        st_name = name;
        st_count = Array.length samples;
        st_p50_s = percentile samples 50.0;
        st_p95_s = percentile samples 95.0;
      })
    !order

(* ------------------------------------------------------------------ *)
(* JSON views *)

let num x = Assess.Json.Number x
let int x = num (float_of_int x)
let int_list xs = Assess.Json.List (List.map int xs)

(* Deterministic item rendering: the full value record, latencies
   dropped. *)
let det_item it =
  match Drive.item_json { it with Drive.it_stage_s = [] } with
  | Assess.Json.Obj kvs -> Assess.Json.Obj (List.remove_assoc "stage_s" kvs)
  | j -> j

let space_json (s : Drive.space) =
  Assess.Json.Obj
    [ ("inputs", int_list s.inputs); ("outputs", int_list s.outputs); ("products", int_list s.products) ]

let fronts_json fs =
  let front items = Assess.Json.List (List.map det_item items) in
  Assess.Json.Obj
    [
      ("area_frequency", front fs.area_frequency);
      ("area_yield", front fs.area_yield);
      ("frequency_yield", front fs.frequency_yield);
      ("area_frequency_yield", front fs.area_frequency_yield);
    ]

let front_json (r : Drive.result) =
  Assess.Json.Obj
    [
      ("schema", Assess.Json.String "sweep-fronts-v1");
      ("seed", int r.r_seed);
      ("profiles", int r.r_profiles);
      ("space", space_json r.r_space);
      ("fronts", fronts_json (fronts r.r_items));
    ]

let failure_json (f : Drive.failure) =
  Assess.Json.Obj
    [
      ("index", int f.fl_index);
      ("name", Assess.Json.String f.fl_name);
      ("stage", Assess.Json.String f.fl_stage);
      ("error", Assess.Json.String f.fl_error);
    ]

let deterministic_json (r : Drive.result) =
  Assess.Json.Obj
    [
      ("schema", Assess.Json.String "sweep-population-v1");
      ("seed", int r.r_seed);
      ("profiles", int r.r_profiles);
      ("space", space_json r.r_space);
      ("items", Assess.Json.List (List.map det_item r.r_items));
      ("failures", Assess.Json.List (List.map failure_json r.r_failures));
      ("fronts", fronts_json (fronts r.r_items));
    ]

let bench_json (r : Drive.result) =
  let det =
    match deterministic_json r with Assess.Json.Obj kvs -> kvs | _ -> assert false
  in
  let stats = stage_stats r.r_items in
  let stage_json =
    Assess.Json.Obj
      (List.map
         (fun s ->
           ( s.st_name,
             Assess.Json.Obj
               [ ("count", int s.st_count); ("p50_s", num s.st_p50_s); ("p95_s", num s.st_p95_s) ]
           ))
         stats)
  in
  let completed = List.length r.r_items in
  let throughput = if r.r_wall_s > 0.0 then float_of_int completed /. r.r_wall_s else 0.0 in
  Assess.Json.Obj
    (det
    @ [
        ("jobs", int r.r_jobs);
        ("resumed", int r.r_resumed);
        ("wall_s", num r.r_wall_s);
        ("items_per_s", num throughput);
        ("stages", stage_json);
      ])

let write ~path json =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Assess.Json.to_string ~indent:2 json);
      Out_channel.output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Assess metrics *)

let to_metrics (r : Drive.result) =
  let completed = List.length r.r_items in
  let throughput = if r.r_wall_s > 0.0 then float_of_int completed /. r.r_wall_s else 0.0 in
  let base =
    [
      Assess.Run.metric ~units:"s" ~higher_is_better:false "sweep.wall_s" [| r.r_wall_s |];
      Assess.Run.metric ~units:"items/s" "sweep.items_per_s" [| throughput |];
    ]
  in
  let per_stage =
    List.concat_map
      (fun s ->
        [
          Assess.Run.metric ~units:"s" ~higher_is_better:false
            (Printf.sprintf "sweep.stage.%s.p50_s" s.st_name)
            [| s.st_p50_s |];
          Assess.Run.metric ~units:"s" ~higher_is_better:false
            (Printf.sprintf "sweep.stage.%s.p95_s" s.st_name)
            [| s.st_p95_s |];
        ])
      (stage_stats r.r_items)
  in
  base @ per_stage

let merge_metrics per_repeat =
  let order = ref [] in
  let pools : (string, Assess.Run.metric * float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (m : Assess.Run.metric) ->
         match Hashtbl.find_opt pools m.name with
         | Some (_, pool) -> pool := List.rev_append (Array.to_list m.samples) !pool
         | None ->
             Hashtbl.add pools m.name (m, ref (List.rev (Array.to_list m.samples)));
             order := m.name :: !order))
    per_repeat;
  List.rev_map
    (fun name ->
      let m, pool = Hashtbl.find pools name in
      { m with Assess.Run.samples = Array.of_list (List.rev !pool) })
    !order

let summary (r : Drive.result) =
  let fs = fronts r.r_items in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "sweep: %d/%d items ok, %d failed, %d resumed, %.1fs (%d jobs)\n"
    (List.length r.r_items) r.r_profiles
    (List.length r.r_failures)
    r.r_resumed r.r_wall_s r.r_jobs;
  Printf.bprintf buf
    "fronts: area×freq %d, area×yield %d, freq×yield %d, area×freq×yield %d\n"
    (List.length fs.area_frequency)
    (List.length fs.area_yield)
    (List.length fs.frequency_yield)
    (List.length fs.area_frequency_yield);
  List.iter
    (fun s ->
      Printf.bprintf buf "  %-16s p50 %8.3f ms  p95 %8.3f ms  (%d)\n" s.st_name
        (s.st_p50_s *. 1e3) (s.st_p95_s *. 1e3) s.st_count)
    (stage_stats r.r_items);
  List.iter
    (fun (f : Drive.failure) ->
      Printf.bprintf buf "  FAILED %s at %s: %s\n" f.fl_name f.fl_stage f.fl_error)
    r.r_failures;
  Buffer.contents buf
