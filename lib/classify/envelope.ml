module Inject = Fault.Inject
module Defect = Fault.Defect
module Repair = Fault.Repair
module Pla = Cnfet.Pla
module Json = Assess.Json

type config = {
  seed : int;
  jobs : int;
  window : int;
  samples : int;
  trials : int;
  rates : float list;
  sigmas : float list;
  read_noise_lsb : int;
  adc_bits : int;
  spare_rows : int;
  checkpoint : string option;
}

let default =
  {
    seed = 2008;
    jobs = Runtime.Pool.default_jobs ();
    window = 0;
    samples = 512;
    trials = 8;
    rates = [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05 ];
    sigmas = [ 0.0; 0.05; 0.1; 0.2 ];
    read_noise_lsb = 1;
    adc_bits = 7;
    spare_rows = 2;
    checkpoint = None;
  }

let quick =
  {
    default with
    jobs = 2;
    samples = 128;
    trials = 4;
    rates = [ 0.0; 0.01; 0.05 ];
    sigmas = [ 0.0; 0.1 ];
  }

type point = {
  pt_index : int;
  pt_rate : float;
  pt_sigma : float;
  pt_acc_clean : float;
  pt_acc_analog : float;
  pt_acc_pre : float;
  pt_acc_post : float;
  pt_trials : int;
  pt_injected : int;
  pt_detected : int;
  pt_repaired : int;
  pt_unrepairable : int;
  pt_undetected : int;
  pt_reverify_failed : int;
  pt_recovery_s : float list;
}

type report = {
  ep_seed : int;
  ep_jobs : int;
  ep_samples : int;
  ep_trials : int;
  ep_spare_rows : int;
  ep_read_noise_lsb : int;
  ep_adc_bits : int;
  ep_rates : float list;
  ep_sigmas : float list;
  ep_products : int;
  ep_area : int;
  ep_label_bits : int;
  ep_acc_clean : float;
  ep_confusion : int array array;
  ep_points : point list;
  ep_failures : Sweep.Shard.failure list;
  ep_resumed : int;
  ep_wall_s : float;
}

let point_index config ~rate_i ~sigma_i = (rate_i * List.length config.sigmas) + sigma_i

let grid config index =
  let nsig = List.length config.sigmas in
  (List.nth config.rates (index / nsig), List.nth config.sigmas (index mod nsig))

let point_name config index =
  let rate, sigma = grid config index in
  Printf.sprintf "r%g-s%g" rate sigma

(* ------------------------------------------------------------------ *)
(* Point JSON (shared by checkpoints and reports) *)

let point_json pt =
  let num x = Json.Number x in
  let int x = num (float_of_int x) in
  Json.Obj
    [
      ("index", int pt.pt_index);
      ("rate", num pt.pt_rate);
      ("sigma", num pt.pt_sigma);
      ("acc_clean", num pt.pt_acc_clean);
      ("acc_analog", num pt.pt_acc_analog);
      ("acc_pre", num pt.pt_acc_pre);
      ("acc_post", num pt.pt_acc_post);
      ("trials", int pt.pt_trials);
      ("injected", int pt.pt_injected);
      ("detected", int pt.pt_detected);
      ("repaired", int pt.pt_repaired);
      ("unrepairable", int pt.pt_unrepairable);
      ("undetected", int pt.pt_undetected);
      ("reverify_failed", int pt.pt_reverify_failed);
      ("recovery_s", Json.List (List.map (fun s -> num s) pt.pt_recovery_s));
    ]

let point_of_json j =
  let open Json in
  let ( let* ) o f = Option.bind o f in
  let* pt_index = Option.bind (member "index" j) to_int in
  let* pt_rate = Option.bind (member "rate" j) to_float in
  let* pt_sigma = Option.bind (member "sigma" j) to_float in
  let* pt_acc_clean = Option.bind (member "acc_clean" j) to_float in
  let* pt_acc_analog = Option.bind (member "acc_analog" j) to_float in
  let* pt_acc_pre = Option.bind (member "acc_pre" j) to_float in
  let* pt_acc_post = Option.bind (member "acc_post" j) to_float in
  let* pt_trials = Option.bind (member "trials" j) to_int in
  let* pt_injected = Option.bind (member "injected" j) to_int in
  let* pt_detected = Option.bind (member "detected" j) to_int in
  let* pt_repaired = Option.bind (member "repaired" j) to_int in
  let* pt_unrepairable = Option.bind (member "unrepairable" j) to_int in
  let* pt_undetected = Option.bind (member "undetected" j) to_int in
  let* pt_reverify_failed = Option.bind (member "reverify_failed" j) to_int in
  let* pt_recovery_s =
    match member "recovery_s" j with
    | Some (List xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* v = to_float x in
            Some (v :: acc))
          (Some []) xs
        |> Option.map List.rev
    | _ -> None
  in
  Some
    {
      pt_index;
      pt_rate;
      pt_sigma;
      pt_acc_clean;
      pt_acc_analog;
      pt_acc_pre;
      pt_acc_post;
      pt_trials;
      pt_injected;
      pt_detected;
      pt_repaired;
      pt_unrepairable;
      pt_undetected;
      pt_reverify_failed;
      pt_recovery_s;
    }

(* ------------------------------------------------------------------ *)
(* Checkpoint meta *)

(* Integer FNV-1a over the model's parameters: the checkpoint must not
   survive a weight change. *)
let model_fingerprint (m : Model.t) =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (v land 0xffff))) 0x100000001b3L
  in
  mix m.Model.n_features;
  mix m.Model.n_classes;
  mix m.Model.weight_bits;
  Array.iter (Array.iter mix) m.Model.weights;
  Array.iter mix m.Model.bias;
  Int64.to_int !h land max_int

(* Pins every knob that shapes point values; jobs/window are absent so a
   resume may widen the pool. *)
let checkpoint_meta config (m : Model.t) =
  let int x = Json.Number (float_of_int x) in
  let nums xs = Json.List (List.map (fun x -> Json.Number x) xs) in
  Json.Obj
    [
      ("classify_checkpoint", int 1);
      ("seed", int config.seed);
      ("samples", int config.samples);
      ("trials", int config.trials);
      ("rates", nums config.rates);
      ("sigmas", nums config.sigmas);
      ("read_noise_lsb", int config.read_noise_lsb);
      ("adc_bits", int config.adc_bits);
      ("spare_rows", int config.spare_rows);
      ("model_fingerprint", int (model_fingerprint m));
    ]

(* ------------------------------------------------------------------ *)
(* The per-point computation *)

(* Defect cells are keyed (trial, linear cell) at the config seed: a
   cell fires iff its own uniform is under the rate, so defect sets are
   nested across rates and the stuck kind is stable per cell. *)
let trial_span = 1_000_000

let draw_trial_maps engine ~trial ~rows ~and_cols ~n_out =
  let ctr = ref (trial * trial_span) in
  let draw m ~row ~col =
    incr ctr;
    match Inject.crosspoint_fault_of engine ~index:!ctr with
    | Defect.Good -> ()
    | k -> Defect.set m ~row ~col k
  in
  let and_defects = Defect.perfect ~rows ~cols:and_cols in
  for r = 0 to rows - 1 do
    for c = 0 to and_cols - 1 do
      draw and_defects ~row:r ~col:c
    done
  done;
  let or_defects = Defect.perfect ~rows:n_out ~cols:rows in
  for r = 0 to n_out - 1 do
    for c = 0 to rows - 1 do
      draw or_defects ~row:r ~col:c
    done
  done;
  (and_defects, or_defects)

let point_pipeline config ~mapped ~tests ~phys_identity ~acc_clean ~index =
  let rate, sigma = grid config index in
  let m = mapped.Map.model in
  let nsamples = config.samples in
  let sample_at s = Dataset.sample Dataset.default ~seed:config.seed s in
  let open Sweep.Stage in
  stage "classify.analog" (fun () ->
      (* The analog path: D2D σ + read noise + ADC on the reference MAC.
         Seeded at the config seed for every point, so σ scales one
         fixed device population. *)
      let engine =
        Inject.make ~seed:config.seed
          {
            Inject.nothing with
            weight_sigma = sigma;
            read_noise_lsb = config.read_noise_lsb;
            adc_bits = config.adc_bits;
          }
      in
      let correct = ref 0 in
      for s = 0 to nsamples - 1 do
        let x, label = sample_at s in
        if Model.predict_dev ~engine m ~sample:s x = label then incr correct
      done;
      float_of_int !correct /. float_of_int nsamples)
  >>> stage "classify.faults" (fun acc_analog ->
          let engine =
            Inject.make ~seed:config.seed
              { Inject.nothing with crosspoint_flip = rate }
          in
          let products = Pla.num_products mapped.Map.pla in
          let rows = products + config.spare_rows in
          let and_cols = Cnfet.Plane.cols (Pla.and_plane mapped.Map.pla) in
          let n_out = Cnfet.Plane.rows (Pla.or_plane mapped.Map.pla) in
          let accuracy_through ~and_defects ~or_defects phys =
            let correct = ref 0 in
            for s = 0 to nsamples - 1 do
              let x, label = sample_at s in
              if Map.classify_defective ~and_defects ~or_defects phys x = label then
                incr correct
            done;
            float_of_int !correct /. float_of_int nsamples
          in
          let injected = ref 0 in
          let detected = ref 0 in
          let repaired = ref 0 in
          let unrepairable = ref 0 in
          let undetected = ref 0 in
          let reverify_failed = ref 0 in
          let recovery = ref [] in
          let pre_sum = ref 0.0 and post_sum = ref 0.0 in
          for trial = 0 to config.trials - 1 do
            let and_defects, or_defects =
              draw_trial_maps engine ~trial ~rows ~and_cols ~n_out
            in
            injected :=
              !injected + Defect.defect_count and_defects + Defect.defect_count or_defects;
            let pre = accuracy_through ~and_defects ~or_defects phys_identity in
            pre_sum := !pre_sum +. pre;
            let rv =
              Runtime.Chaos.recover ~spare_rows:config.spare_rows ~tests ~and_defects
                ~or_defects mapped.Map.pla
            in
            recovery := rv.Runtime.Chaos.rv_wall_s :: !recovery;
            let post =
              match rv.Runtime.Chaos.rv_status with
              | `Repaired assignment ->
                  incr detected;
                  incr repaired;
                  let phys = Repair.apply mapped.Map.pla assignment ~rows in
                  accuracy_through ~and_defects ~or_defects phys
              | `Unrepairable ->
                  incr detected;
                  incr unrepairable;
                  pre
              | `Reverify_failed ->
                  incr detected;
                  incr reverify_failed;
                  pre
              | `Undetected ->
                  incr undetected;
                  pre
              | `Clean -> pre
            in
            post_sum := !post_sum +. post
          done;
          let trial_mean s =
            if config.trials = 0 then acc_clean else s /. float_of_int config.trials
          in
          {
            pt_index = index;
            pt_rate = rate;
            pt_sigma = sigma;
            pt_acc_clean = acc_clean;
            pt_acc_analog = acc_analog;
            pt_acc_pre = trial_mean !pre_sum;
            pt_acc_post = trial_mean !post_sum;
            pt_trials = config.trials;
            pt_injected = !injected;
            pt_detected = !detected;
            pt_repaired = !repaired;
            pt_unrepairable = !unrepairable;
            pt_undetected = !undetected;
            pt_reverify_failed = !reverify_failed;
            pt_recovery_s = List.rev !recovery;
          })

(* ------------------------------------------------------------------ *)
(* The sharded run *)

let validate config =
  if config.samples < 1 then invalid_arg "Classify.Envelope.run: samples < 1";
  if config.trials < 0 then invalid_arg "Classify.Envelope.run: negative trials";
  if config.spare_rows < 0 then invalid_arg "Classify.Envelope.run: negative spare_rows";
  if config.rates = [] then invalid_arg "Classify.Envelope.run: empty rates";
  if config.sigmas = [] then invalid_arg "Classify.Envelope.run: empty sigmas";
  List.iter
    (fun r ->
      if not (r >= 0.0 && r <= 1.0) then
        invalid_arg (Printf.sprintf "Classify.Envelope.run: rate %g not a probability" r))
    config.rates;
  List.iter
    (fun s ->
      if not (s >= 0.0) then
        invalid_arg (Printf.sprintf "Classify.Envelope.run: sigma %g negative" s))
    config.sigmas

let run ?metrics ?(model = Pretrained.model) config =
  validate config;
  let t0 = Unix.gettimeofday () in
  let mapped = Map.lower model in
  let tests, _undetectable = Fault.Atpg.generate mapped.Map.pla in
  let phys_identity = Map.identity_physical mapped ~spare_rows:config.spare_rows in
  (* Clean-device population pass: accuracy + confusion, once. *)
  let nc = model.Model.n_classes in
  let confusion = Array.make_matrix nc nc 0 in
  let clean_correct = ref 0 in
  for s = 0 to config.samples - 1 do
    let x, label = Dataset.sample Dataset.default ~seed:config.seed s in
    let pred = Map.classify mapped x in
    if pred >= 0 && pred < nc then
      confusion.(label).(pred) <- confusion.(label).(pred) + 1;
    if pred = label then incr clean_correct
  done;
  let acc_clean = float_of_int !clean_correct /. float_of_int config.samples in
  let total = List.length config.rates * List.length config.sigmas in
  let task i =
    match
      Sweep.Stage.exec ?metrics
        (point_pipeline config ~mapped ~tests ~phys_identity ~acc_clean ~index:i)
        ()
    with
    | Ok pt -> Ok pt
    | Error f ->
        Error
          {
            Sweep.Shard.fl_index = i;
            fl_name = point_name config i;
            fl_stage = f.Sweep.Stage.stage;
            fl_error = f.error;
          }
  in
  let outcome =
    Sweep.Shard.run ?metrics
      {
        Sweep.Shard.total;
        jobs = config.jobs;
        window = config.window;
        checkpoint = config.checkpoint;
        meta = checkpoint_meta config model;
        item_json = point_json;
        item_of_json = point_of_json;
        index_of_item = (fun pt -> pt.pt_index);
        name_of_index = point_name config;
        task;
      }
  in
  let points = ref [] and failures = ref [] in
  for i = total - 1 downto 0 do
    match outcome.Sweep.Shard.sh_results.(i) with
    | Some (Ok pt) -> points := pt :: !points
    | Some (Error f) -> failures := f :: !failures
    | None -> assert false
  done;
  {
    ep_seed = config.seed;
    ep_jobs = config.jobs;
    ep_samples = config.samples;
    ep_trials = config.trials;
    ep_spare_rows = config.spare_rows;
    ep_read_noise_lsb = config.read_noise_lsb;
    ep_adc_bits = config.adc_bits;
    ep_rates = config.rates;
    ep_sigmas = config.sigmas;
    ep_products = Pla.num_products mapped.Map.pla;
    ep_area = mapped.Map.area;
    ep_label_bits = Model.label_bits model;
    ep_acc_clean = acc_clean;
    ep_confusion = confusion;
    ep_points = !points;
    ep_failures = !failures;
    ep_resumed = outcome.Sweep.Shard.sh_resumed;
    ep_wall_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Views *)

let num x = Json.Number x

let int x = num (float_of_int x)

let failure_json (f : Sweep.Shard.failure) =
  Json.Obj
    [
      ("index", int f.Sweep.Shard.fl_index);
      ("name", Json.String f.fl_name);
      ("stage", Json.String f.fl_stage);
      ("error", Json.String f.fl_error);
    ]

let strip_measured j =
  match j with
  | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "recovery_s") kvs)
  | j -> j

let confusion_json c =
  Json.List
    (Array.to_list (Array.map (fun row -> Json.List (Array.to_list (Array.map int row))) c))

(* Everything that must be bit-identical at any jobs/window and across
   checkpoint resumes; no jobs, no resumed count, no wall clock, no
   latencies. *)
let deterministic_json r =
  Json.Obj
    [
      ("seed", int r.ep_seed);
      ("samples", int r.ep_samples);
      ("trials", int r.ep_trials);
      ("spare_rows", int r.ep_spare_rows);
      ("read_noise_lsb", int r.ep_read_noise_lsb);
      ("adc_bits", int r.ep_adc_bits);
      ("rates", Json.List (List.map num r.ep_rates));
      ("sigmas", Json.List (List.map num r.ep_sigmas));
      ("products", int r.ep_products);
      ("area", int r.ep_area);
      ("label_bits", int r.ep_label_bits);
      ("acc_clean", num r.ep_acc_clean);
      ("confusion", confusion_json r.ep_confusion);
      ("points", Json.List (List.map (fun pt -> strip_measured (point_json pt)) r.ep_points));
      ("failures", Json.List (List.map failure_json r.ep_failures));
    ]

let recovery_percentiles r =
  let h = Runtime.Histogram.create () in
  List.iter
    (fun pt -> List.iter (fun s -> Runtime.Histogram.observe h s) pt.pt_recovery_s)
    r.ep_points;
  if Runtime.Histogram.count h = 0 then []
  else Runtime.Histogram.percentiles h [ 50.; 90.; 99.; 100. ]

let json r =
  let det = match deterministic_json r with Json.Obj kvs -> kvs | _ -> assert false in
  let recovery =
    match recovery_percentiles r with
    | [] -> Json.Obj []
    | ps ->
        Json.Obj
          (List.map
             (fun (p, v) ->
               ((if p = 100. then "max" else Printf.sprintf "p%g" p), num v))
             ps)
  in
  Json.Obj
    (det
    @ [
        ("jobs", int r.ep_jobs);
        ("resumed", int r.ep_resumed);
        ("wall_s", num r.ep_wall_s);
        ("recovery_latency_s", recovery);
        ("points_full", Json.List (List.map point_json r.ep_points));
      ])

let summary r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "classify: seed %d, %d samples x %d trials, %d products (area %d L2), clean accuracy %.4f\n"
    r.ep_seed r.ep_samples r.ep_trials r.ep_products r.ep_area r.ep_acc_clean;
  pf "  %-8s %-6s %-10s %-8s %-8s  %s\n" "rate" "sigma" "analog" "pre" "post" "repair";
  List.iter
    (fun pt ->
      pf "  %-8g %-6g %-10.4f %-8.4f %-8.4f  det %d rep %d unrep %d masked %d\n" pt.pt_rate
        pt.pt_sigma pt.pt_acc_analog pt.pt_acc_pre pt.pt_acc_post pt.pt_detected
        pt.pt_repaired pt.pt_unrepairable pt.pt_undetected)
    r.ep_points;
  (match recovery_percentiles r with
  | [] -> ()
  | ps ->
      pf "  recovery latency (s):";
      List.iter
        (fun (p, v) ->
          if p = 100. then pf " max %.6f" v else pf " p%g %.6f" p v)
        ps;
      pf "\n");
  if r.ep_failures <> [] then pf "  %d contained point failures\n" (List.length r.ep_failures);
  if r.ep_resumed > 0 then pf "  %d points resumed from checkpoint\n" r.ep_resumed;
  Buffer.contents b
