(** Lowering quantized weight rows onto the GNOR-plane crossbar.

    The quantized classifier's decision function over 1-bit features is
    a finite boolean function: [label_bits] outputs of [n_features]
    inputs, the bit [b] output being "bit [b] of argmax(Wx + b)". The
    lowering enumerates it, espresso-minimizes the cover, and programs
    it as a two-plane GNOR PLA — the same silicon as every other
    workload, so the fault machinery (defect maps, ATPG, spare-row
    repair) applies unchanged.

    On clean devices the mapped array is bit-identical to
    {!Model.predict}; the [classify/mapped-vs-reference] property and
    the test battery pin that. *)

type t = {
  model : Model.t;
  cover : Logic.Cover.t;  (** minimized label-bit cover *)
  pla : Cnfet.Pla.t;  (** the programmed GNOR planes *)
  area : int;  (** folded CNFET PLA area, L² *)
}

val lower : ?minimize:bool -> Model.t -> t
(** Enumerate all [2^n_features] minterms (guarded at ≤ 16 features),
    build the label-bit cover, minimize ([minimize] defaults true;
    false keeps the raw minterm cover — only tests use that), program
    the PLA, and measure the folded area. *)

val decode : bool array -> int
(** LSB-first bits to an integer — total on any width. *)

val classify : t -> bool array -> int
(** Mapped-crossbar inference on clean devices:
    [decode (Pla.eval pla x)]. *)

val identity_physical : t -> spare_rows:int -> Cnfet.Pla.t
(** The array as first programmed: products on rows 0..products-1 via
    the identity assignment, [spare_rows] spare rows fully dropped —
    the geometry defect maps for the repair flow must match. *)

val eval_defective :
  and_defects:Fault.Defect.map -> or_defects:Fault.Defect.map -> Cnfet.Pla.t ->
  bool array -> bool array
(** Outputs of a (physical) PLA evaluated through per-plane defect maps,
    output-phase inversion applied. Map geometry must match the planes.
    Total for in-range inputs: defects degrade data, never raise. *)

val classify_defective :
  and_defects:Fault.Defect.map -> or_defects:Fault.Defect.map -> Cnfet.Pla.t ->
  bool array -> int
(** [decode] of {!eval_defective} — the label the broken array actually
    reads out. May name no class; that is a wrong answer, not an
    error. *)
