(** The checked-in production model: {!Train.train} output over
    {!Dataset.default}, committed as data so inference never trains.
    [test_classify] re-runs the trainer and fails if this file drifts
    from it. *)

val model : Model.t
