(** The deterministic synthetic classification task.

    Each class has a 1-bit prototype pattern; a sample is its class's
    prototype with every bit independently flipped at [flip_p]. Sample
    [i] belongs to class [i mod n_classes] (the population is balanced
    by construction) and its bits are drawn from a stream keyed by
    [(seed, i)] alone — so any slice of the population is reproducible
    in isolation, in parallel, and independent of every other sample. *)

type t = {
  n_features : int;
  n_classes : int;
  flip_p : float;  (** per-bit corruption probability *)
  prototypes : bool array array;  (** [n_classes × n_features] *)
}

val make : flip_p:float -> prototypes:bool array array -> t
(** Validates: ≥ 2 non-empty equal-width prototypes, [flip_p] a
    probability. Raises [Invalid_argument] otherwise. *)

val default : t
(** 8 features, 4 classes, [flip_p = 0.125]. The prototypes are a
    Hadamard-like code with pairwise Hamming distance 4, so one expected
    bit flip per sample leaves classes separable but not trivially so. *)

val sample : t -> seed:int -> int -> bool array * int
(** [(features, label)] of population member [index], a pure function of
    [(seed, index)]. *)

val labels : t -> int
(** Alias for [n_classes]. *)
