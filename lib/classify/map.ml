module Pla = Cnfet.Pla
module Defect = Fault.Defect

type t = {
  model : Model.t;
  cover : Logic.Cover.t;
  pla : Cnfet.Pla.t;
  area : int;
}

let lower ?(minimize = true) (m : Model.t) =
  let nf = m.Model.n_features in
  if nf > 16 then
    invalid_arg
      (Printf.sprintf "Classify.Map.lower: %d features (exhaustive lowering capped at 16)" nf);
  let nb = Model.label_bits m in
  let minterms = 1 lsl nf in
  let cubes = ref [] in
  for v = minterms - 1 downto 0 do
    let x = Array.init nf (fun i -> v land (1 lsl i) <> 0) in
    let label = Model.predict m x in
    if label <> 0 then begin
      let outs = Util.Bitvec.create nb in
      for b = 0 to nb - 1 do
        if label land (1 lsl b) <> 0 then Util.Bitvec.set outs b true
      done;
      let literals =
        List.init nf (fun i -> if x.(i) then Logic.Cube.One else Logic.Cube.Zero)
      in
      cubes := Logic.Cube.of_literals literals ~outs :: !cubes
    end
  done;
  let raw = Logic.Cover.make ~n_in:nf ~n_out:nb !cubes in
  let cover = if minimize then Espresso.Minimize.cover raw else raw in
  let pla = Pla.of_cover cover in
  let area = Cnfet.Folding.folded_pla_area Device.Tech.cnfet pla in
  { model = m; cover; pla; area }

let decode bits =
  let v = ref 0 in
  Array.iteri (fun b on -> if on then v := !v lor (1 lsl b)) bits;
  !v

let classify t x = decode (Pla.eval t.pla x)

let identity_physical t ~spare_rows =
  if spare_rows < 0 then invalid_arg "Classify.Map.identity_physical: negative spare_rows";
  let products = Pla.num_products t.pla in
  Fault.Repair.apply t.pla (Array.init products Fun.id) ~rows:(products + spare_rows)

let eval_defective ~and_defects ~or_defects pla x =
  let products = Defect.eval_with_defects and_defects (Pla.and_plane pla) x in
  let outs = Defect.eval_with_defects or_defects (Pla.or_plane pla) products in
  Array.mapi (fun o v -> if Pla.output_inverted pla o then not v else v) outs

let classify_defective ~and_defects ~or_defects pla x =
  decode (eval_defective ~and_defects ~or_defects pla x)
