(** The degradation envelope: classification accuracy over a
    fault-rate × noise-σ grid, before and after closed-loop repair.

    Each grid point is one item of a {!Sweep.Shard} population: computed
    on the domain pool under a bounded window, checkpointed as JSONL,
    contained on failure, and — the load-bearing property — a pure
    function of [(seed, point index)]. Coupling is deliberate:

    {ul
    {- every point evaluates the {e same} sample population (streams
       keyed by [(seed, sample)]);}
    {- D2D weight factors are keyed per cell at the shared seed, so a
       higher σ scales the same unit-normal draws — the device
       population is fixed while the knob turns;}
    {- defect cells are keyed per (trial, cell) at the shared seed and a
       cell fails iff its uniform is below the rate, so defect sets are
       {e nested} across rates and accuracy degrades monotonically.}}

    Per point, the crossbar path measures accuracy through the drawn
    defects on the identity-programmed array (pre), hands the array to
    {!Runtime.Chaos.recover} (ATPG detect → spare-row repair →
    re-verify, wall-clock timed), and measures again on the repaired
    physical array (post). The analog path measures the reference
    evaluator under D2D/read-noise/ADC corruption
    ({!Model.predict_dev}). Accuracies and counts are deterministic;
    recovery latencies are measurement and excluded from the
    deterministic view. *)

type config = {
  seed : int;
  jobs : int;  (** worker domains *)
  window : int;  (** max in-flight points; 0 = [4 × jobs] *)
  samples : int;  (** evaluation population size *)
  trials : int;  (** defect-map draws per grid point *)
  rates : float list;  (** crosspoint fault rates (grid rows) *)
  sigmas : float list;  (** D2D weight σ values (grid columns) *)
  read_noise_lsb : int;
  adc_bits : int;
  spare_rows : int;
  checkpoint : string option;
}

val default : config
(** 512 samples × 8 trials over 6 rates × 4 σ, seed 2008. *)

val quick : config
(** 128 samples × 4 trials over 3 rates × 2 σ — the [--quick] / CI
    smoke / golden-regression configuration. *)

type point = {
  pt_index : int;
  pt_rate : float;
  pt_sigma : float;
  pt_acc_clean : float;  (** mapped crossbar, no faults (population accuracy) *)
  pt_acc_analog : float;  (** reference evaluator under σ/±LSB/ADC *)
  pt_acc_pre : float;  (** through defects, identity mapping, before repair (trial mean) *)
  pt_acc_post : float;  (** through defects on the repaired array (trial mean) *)
  pt_trials : int;
  pt_injected : int;  (** defective cells drawn, summed over trials *)
  pt_detected : int;  (** trials where the ATPG set exposed the defects *)
  pt_repaired : int;  (** trials repaired and re-verified *)
  pt_unrepairable : int;
  pt_undetected : int;  (** trials with defects masked on the test set *)
  pt_reverify_failed : int;
  pt_recovery_s : float list;  (** measured recover() wall seconds, trial order *)
}

type report = {
  ep_seed : int;
  ep_jobs : int;
  ep_samples : int;
  ep_trials : int;
  ep_spare_rows : int;
  ep_read_noise_lsb : int;
  ep_adc_bits : int;
  ep_rates : float list;
  ep_sigmas : float list;
  ep_products : int;  (** mapped PLA products after minimization *)
  ep_area : int;  (** folded CNFET PLA area, L² *)
  ep_label_bits : int;
  ep_acc_clean : float;
  ep_confusion : int array array;  (** clean devices: [true class × predicted], over the population *)
  ep_points : point list;  (** index order; failed indices absent *)
  ep_failures : Sweep.Shard.failure list;
  ep_resumed : int;
  ep_wall_s : float;
}

val point_index : config -> rate_i:int -> sigma_i:int -> int
(** Grid linearization: [rate_i × |sigmas| + sigma_i]. *)

val point_json : point -> Assess.Json.t

val point_of_json : Assess.Json.t -> point option
(** Total inverse of {!point_json} — floats survive byte-exactly through
    the [%.17g] codec, so a checkpoint resume is bit-exact. *)

val run : ?metrics:Runtime.Metrics.t -> ?model:Model.t -> config -> report
(** Lower [model] (default {!Pretrained.model}), measure the clean
    population once, then shard the grid. Raises [Invalid_argument] on
    an empty grid, out-of-range knobs, or a model too wide to lower. *)

val deterministic_json : report -> Assess.Json.t
(** The identity view: everything except recovery latencies and wall
    time — byte-identical at any [jobs]/[window], golden-compared in
    CI. *)

val json : report -> Assess.Json.t
(** The full measured report (BENCH_classify.json): the deterministic
    view plus per-point recovery latencies and pooled
    p50/p90/p99/max. *)

val recovery_percentiles : report -> (float * float) list
(** [(percentile, seconds)] over all points' recovery samples, at
    50/90/99/100. Empty when no recoveries ran. *)

val summary : report -> string
(** Human-readable accuracy table (rate × σ) plus repair counters. *)
