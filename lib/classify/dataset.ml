type t = {
  n_features : int;
  n_classes : int;
  flip_p : float;
  prototypes : bool array array;
}

let make ~flip_p ~prototypes =
  let n_classes = Array.length prototypes in
  if n_classes < 2 then invalid_arg "Classify.Dataset.make: need at least 2 prototypes";
  let n_features = Array.length prototypes.(0) in
  if n_features < 1 then invalid_arg "Classify.Dataset.make: empty prototype";
  Array.iter
    (fun p ->
      if Array.length p <> n_features then
        invalid_arg "Classify.Dataset.make: prototype width mismatch")
    prototypes;
  if not (flip_p >= 0.0 && flip_p <= 1.0) then
    invalid_arg "Classify.Dataset.make: flip_p not a probability";
  { n_features; n_classes; flip_p; prototypes = Array.map Array.copy prototypes }

let of_bits s = Array.init (String.length s) (fun i -> s.[i] = '1')

(* Pairwise Hamming distance 4 between every two prototypes (rows of a
   Hadamard-like code), so a single expected flip at flip_p = 0.125 over
   8 bits rarely crosses a decision boundary. *)
let default =
  make ~flip_p:0.125
    ~prototypes:
      [| of_bits "00001111"; of_bits "11110000"; of_bits "00110011"; of_bits "01010101" |]

(* Sample streams ride the same (seed, salt, index) family as the sweep
   driver; salt 0x0da7a keeps them disjoint from any other user of the
   family at the same seed. *)
let dataset_salt = 0x0da7a

let sample t ~seed index =
  if index < 0 then invalid_arg "Classify.Dataset.sample: negative index";
  let label = index mod t.n_classes in
  let rng = Sweep.Drive.item_rng ~seed ~salt:dataset_salt index in
  let features =
    Array.map (fun bit -> if Util.Rng.bernoulli rng t.flip_p then not bit else bit)
      t.prototypes.(label)
  in
  (features, label)

let labels t = t.n_classes
