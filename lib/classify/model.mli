(** The reference quantized linear classifier.

    A model is [n_classes] rows of signed [weight_bits]-wide integer
    weights over 1-bit features plus a bias per class; inference is an
    integer multiply-accumulate (with 1-bit inputs, an AND and a
    conditional add — the crossbar-friendly form) followed by argmax.
    This integer evaluator is the {e oracle}: the crossbar mapping
    ({!Map}) must be bit-identical to it on clean devices, and the
    non-ideal device path ({!predict_dev}) must collapse to it when no
    fault engine is armed. *)

type t = {
  n_features : int;
  n_classes : int;
  weight_bits : int;  (** signed width every weight and bias fits in *)
  weights : int array array;  (** [n_classes × n_features], row per class *)
  bias : int array;  (** [n_classes] *)
}

val make :
  n_features:int -> n_classes:int -> weight_bits:int -> weights:int array array ->
  bias:int array -> t
(** Validates shape and range: [n_features ≥ 1], [n_classes ≥ 2],
    [weight_bits ≥ 2], every weight and bias in the signed [weight_bits]
    window. Raises [Invalid_argument] otherwise. Arrays are copied. *)

val scores : t -> bool array -> int array
(** Per-class integer scores [Σ w·x + b]. *)

val predict : t -> bool array -> int
(** Argmax of {!scores}; ties break to the lowest class index. *)

val label_bits : t -> int
(** Output bits of the binary label encoding: [⌈log₂ n_classes⌉]. *)

val encode_label : t -> int -> bool array
(** LSB-first binary encoding of a label, [label_bits] wide. *)

val decode_label : t -> bool array -> int
(** Total inverse of {!encode_label} on any [label_bits]-wide vector.
    Under faults the decoded value may name no class
    ([≥ n_classes] when [n_classes] is not a power of two) — that is
    data (a wrong label), never an exception. *)

val predict_dev : ?engine:Fault.Inject.t -> t -> sample:int -> bool array -> int
(** Inference through the device non-ideality model: each weight and
    bias cell is scaled by its lifetime D2D factor
    ({!Fault.Inject.weight_factor}, keyed by the cell's index), each
    class read at [sample] is offset by ±LSB read noise (keyed by
    [sample × n_classes + class]) and clamped by the ADC window.

    With [engine] the draws come from that explicit engine's [_of]
    helpers; without it they come from the process-global engine — and
    when that is disarmed the call is one atomic load plus {!predict},
    bit-identical to the reference. *)

val weight_cell_index : t -> class_:int -> feature:int -> int
(** The {!Fault.Inject.site} coordinate of a weight cell:
    [class_ × (n_features + 1) + feature]; [feature = n_features]
    addresses the class's bias cell. *)
