(** Offline training and quantization — the script that produced
    {!Pretrained}, kept in-tree so the checked-in weights are
    reproducible (the test battery asserts
    [train Dataset.default = Pretrained.model] and fails on drift).
    Nothing here runs at inference time. *)

val quantize_scale : weight_bits:int -> float array array -> float array -> float
(** The max-abs symmetric scale: the largest magnitude over all weights
    and biases divided by [2^(bits-1) - 1] (1.0 when everything is 0). *)

val quantize :
  weight_bits:int -> float array array -> float array -> int array array * int array
(** Round-to-nearest symmetric quantization at {!quantize_scale}:
    [q = round(w / scale)], clamped into the signed window. Every
    quantized value times the scale is within [scale / 2] of its float
    source (the round-trip bound the tests pin). *)

val train :
  ?seed:int -> ?train_samples:int -> ?epochs:int -> ?weight_bits:int -> Dataset.t -> Model.t
(** Multi-class perceptron on the dataset's deterministic sample stream
    (seed 7002, 256 samples, 8 epochs, 4-bit weights by default), then
    {!quantize}. Pure in its arguments: same call, same model, any
    machine. *)

val emit_pretrained : Model.t -> string
(** OCaml source text for [pretrained.ml] — regenerate with
    [Train.(emit_pretrained (train Dataset.default))] after changing the
    trainer or dataset, and paste the output over that file. *)
