type t = {
  n_features : int;
  n_classes : int;
  weight_bits : int;
  weights : int array array;
  bias : int array;
}

let make ~n_features ~n_classes ~weight_bits ~weights ~bias =
  if n_features < 1 then invalid_arg "Classify.Model.make: n_features < 1";
  if n_classes < 2 then invalid_arg "Classify.Model.make: n_classes < 2";
  if weight_bits < 2 then invalid_arg "Classify.Model.make: weight_bits < 2";
  if Array.length weights <> n_classes then
    invalid_arg "Classify.Model.make: weights must have one row per class";
  if Array.length bias <> n_classes then
    invalid_arg "Classify.Model.make: bias must have one entry per class";
  let lo = -(1 lsl (weight_bits - 1)) and hi = (1 lsl (weight_bits - 1)) - 1 in
  let check_range what v =
    if v < lo || v > hi then
      invalid_arg
        (Printf.sprintf "Classify.Model.make: %s = %d outside signed %d-bit [%d, %d]" what v
           weight_bits lo hi)
  in
  Array.iteri
    (fun c row ->
      if Array.length row <> n_features then
        invalid_arg "Classify.Model.make: weight row width mismatch";
      Array.iteri (fun f w -> check_range (Printf.sprintf "weights.(%d).(%d)" c f) w) row)
    weights;
  Array.iteri (fun c b -> check_range (Printf.sprintf "bias.(%d)" c) b) bias;
  {
    n_features;
    n_classes;
    weight_bits;
    weights = Array.map Array.copy weights;
    bias = Array.copy bias;
  }

let check_input m x =
  if Array.length x <> m.n_features then
    invalid_arg
      (Printf.sprintf "Classify.Model: input width %d, expected %d features" (Array.length x)
         m.n_features)

let scores m x =
  check_input m x;
  Array.init m.n_classes (fun c ->
      let row = m.weights.(c) in
      let acc = ref m.bias.(c) in
      for f = 0 to m.n_features - 1 do
        if x.(f) then acc := !acc + row.(f)
      done;
      !acc)

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let predict m x = argmax (scores m x)

let label_bits m =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits m.n_classes 0

let encode_label m label =
  let nb = label_bits m in
  Array.init nb (fun b -> label land (1 lsl b) <> 0)

let decode_label m bits =
  let nb = label_bits m in
  if Array.length bits <> nb then
    invalid_arg
      (Printf.sprintf "Classify.Model.decode_label: %d bits, expected %d" (Array.length bits) nb);
  let v = ref 0 in
  for b = 0 to nb - 1 do
    if bits.(b) then v := !v lor (1 lsl b)
  done;
  !v

let weight_cell_index m ~class_ ~feature = (class_ * (m.n_features + 1)) + feature

(* The analog path: per-cell lifetime conductance factors, per-read ±LSB
   offsets and ADC clamping, every draw keyed by (seed, site, index)
   through the engine. Disarmed, the factors are exactly 1.0 and the
   offsets 0, and small-integer float arithmetic is exact, so the result
   equals [predict] — but we short-circuit to the integer path anyway so
   the disarmed cost is a single atomic load. *)
let predict_dev ?engine m ~sample x =
  let module I = Fault.Inject in
  match engine with
  | None when not (I.armed ()) -> predict m x
  | _ ->
    check_input m x;
    let weight_factor, read_offset, adc_clamp =
      match engine with
      | Some t ->
        ( (fun ~index -> I.weight_factor_of t ~index),
          (fun ~index -> I.read_offset_of t ~index),
          I.adc_clamp_of t )
      | None -> (I.weight_factor, I.read_offset, I.adc_clamp)
    in
    let dev_scores =
      Array.init m.n_classes (fun c ->
          let row = m.weights.(c) in
          let acc = ref 0.0 in
          for f = 0 to m.n_features - 1 do
            if x.(f) then
              acc :=
                !acc
                +. (float_of_int row.(f)
                   *. weight_factor ~index:(weight_cell_index m ~class_:c ~feature:f))
          done;
          acc :=
            !acc
            +. (float_of_int m.bias.(c)
               *. weight_factor ~index:(weight_cell_index m ~class_:c ~feature:m.n_features));
          let read = int_of_float (Float.round !acc) + read_offset ~index:((sample * m.n_classes) + c) in
          adc_clamp read)
    in
    argmax dev_scores
