(** Versioned binary wire protocol for the evaluation service.

    Every message travels as one length-prefixed frame: a 4-byte
    big-endian payload length, then the payload — magic byte, protocol
    version, message tag, body. Input batches and result batches are
    packed bit matrices (one row per vector, LSB-first within each
    byte), so a 16-input vector costs 2 bytes on the wire, not 16; a
    row always occupies at least one byte, so a claimed row count can
    never outrun the bytes that back it.

    The decoder is {e total}: any byte string either decodes to a
    message or to a typed {!error} — it never raises, never reads out
    of bounds, and rejects both oversized frames (before buffering the
    payload) and payloads with trailing bytes. That totality is what
    lets the server treat a misbehaving client as a session-local
    event, and it is enforced by the [serve/codec-roundtrip] property
    in {!Prop.Props}. *)

val version : int
(** Current protocol version (1). *)

val default_limit : int
(** Default maximum payload size accepted by the decoder (16 MiB). *)

val header_bytes : int
(** Bytes of framing before the payload (the 4-byte length prefix). *)

(** Why the server refused a request that was syntactically valid. *)
type error_code =
  | Parse_failed  (** the submitted [.pla] program did not parse *)
  | Arity_mismatch  (** batch vector width ≠ the program's input count *)
  | Batch_too_large  (** more vectors than the server's per-request cap *)
  | Internal  (** anything else; the message says what *)

type matrix = private { m_rows : int; m_width : int; m_data : string }
(** A packed bit matrix, kept in wire form: [m_data] holds [m_rows] rows
    of [max 1 (ceil (m_width/8))] bytes each, bit [i] of a row in byte
    [i/8] at position [i mod 8] (LSB-first). Private so the
    length/stride invariant always holds; build with
    {!matrix_of_vectors} or {!matrix_init}. *)

val matrix_stride : int -> int
(** Bytes per row at a given width: [max 1 (ceil (width/8))]. *)

val matrix_rows : matrix -> int

val matrix_width : matrix -> int

val matrix_of_vectors : bool array array -> matrix
(** Pack row vectors (all the same width; raises [Invalid_argument] on a
    ragged batch). An empty array packs as a 0×0 matrix. *)

val matrix_init : rows:int -> width:int -> (int -> int -> bool) -> matrix
(** [matrix_init ~rows ~width f] with bit [(r, i)] = [f r i]. *)

val matrix_row : matrix -> int -> bool array
(** Unpack one row. *)

val vectors_of_matrix : matrix -> bool array array
(** Unpack every row; inverse of {!matrix_of_vectors}. *)

val matrix_sub : matrix -> first:int -> len:int -> matrix
(** Row slice [first .. first+len-1]; used to chunk replies. *)

val matrix_block : matrix -> first:int -> lanes:int -> int array
(** Transposed gather for the bit-sliced evaluator: word [c] of the
    result packs column [c] of rows [first .. first+lanes-1], row
    [first+v] in bit [v] — the {!Runtime.Cache.block} layout, read
    straight from the packed bytes. [lanes <= 63]. *)

type message =
  | Eval_request of {
      tenant : string;  (** cache-quota accounting identity *)
      program : string;  (** the PLA program, espresso [.pla] text *)
      batch : matrix;  (** input vectors, one row per vector *)
    }
  | Classify_request of {
      tenant : string;  (** cache-quota accounting identity *)
      model : string;  (** registered classifier name, e.g. ["default"] *)
      batch : matrix;  (** feature vectors, one row per sample *)
    }
      (** Classify a batch on a server-registered crossbar model. The
          reply is the same [Result_chunk]/[Eval_done] stream as an eval
          request, each output row the binary-encoded predicted label
          (LSB-first, {!Classify.Model.label_bits} wide). An unknown
          [model] is answered with [Parse_failed]. *)
  | Ping
  | Result_chunk of {
      first : int;  (** batch index of [outputs] row 0 *)
      outputs : matrix;
    }
  | Eval_done of {
      total : int;  (** vectors evaluated, across all chunks *)
      cache_hit : bool;  (** compiled PLA came from the tenant cache *)
      eval_ns : int64;  (** server-side compile+eval wall time *)
    }
  | Overloaded of { queued : int; inflight : int }
      (** Admission control shed the request; the fields are the
          admission state at shed time, for client-side backoff. *)
  | Error_response of { code : error_code; message : string }
  | Pong

(** Typed decode failures. *)
type error =
  | Truncated of { expected : int; got : int }
      (** fewer bytes than the frame or field announced *)
  | Bad_magic of int
  | Unsupported_version of int
  | Bad_tag of int
  | Oversized of { length : int; limit : int }
      (** announced payload length exceeds the decoder's limit; raised
          before any payload byte is buffered *)
  | Bad_payload of string
      (** structurally invalid body (bad field, inconsistent sizes,
          trailing bytes) *)

val error_to_string : error -> string

val tag_name : message -> string
(** Short constructor name, for spans and logs. *)

(** {2 Pure codec} *)

val encode : message -> string
(** The full frame, length prefix included. Raises [Invalid_argument]
    on unencodable messages (string or matrix dimensions beyond the
    field widths). Exception: [Overloaded] counters saturate
    at 65535 instead of raising, so an overload response survives any
    configured queue bound. *)

val decode : ?limit:int -> string -> (message * int, error) result
(** Decode one frame from the head of the string; on success also
    returns the number of bytes consumed (so a buffer holding several
    frames can be walked). Never raises. *)

(** {2 Channel transport} *)

val write_message : out_channel -> message -> unit
(** Write one frame and flush. *)

val read_message : ?limit:int -> in_channel -> [ `Msg of message | `Eof | `Error of error ]
(** Read one frame. [`Eof] only at a clean frame boundary; end-of-input
    mid-frame is [`Error (Truncated _)]. An [Oversized] length prefix is
    reported without buffering the payload. *)
