(* Two counters under one lock: [inflight] slots executing, [queued]
   waiting for a slot. The shed decision is made without ever blocking —
   a request either gets a slot, takes a bounded queue position, or is
   refused on the spot. *)

type t = {
  lock : Mutex.t;
  slot_free : Condition.t;
  queue_limit : int;
  max_inflight : int;
  mutable queued : int;
  mutable inflight : int;
  mutable next_ticket : int;  (* arrival order of waiters *)
  mutable serving : int;  (* lowest ticket allowed to take a slot *)
  mutable admitted : int;
  mutable shed : int;
  mutable closed : bool;
  metrics : Runtime.Metrics.t option;
}

type decision = Admitted | Shed of { queued : int; inflight : int }

let create ?metrics ~queue_limit ~max_inflight () =
  if max_inflight < 1 then invalid_arg "Admission.create: max_inflight < 1";
  if queue_limit < 0 then invalid_arg "Admission.create: queue_limit < 0";
  {
    lock = Mutex.create ();
    slot_free = Condition.create ();
    queue_limit;
    max_inflight;
    queued = 0;
    inflight = 0;
    next_ticket = 0;
    serving = 0;
    admitted = 0;
    shed = 0;
    closed = false;
    metrics;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_gauges t =
  match t.metrics with
  | None -> ()
  | Some m ->
    Runtime.Metrics.set_gauge (Runtime.Metrics.gauge m "serve.admission.queued") (float_of_int t.queued);
    Runtime.Metrics.set_gauge (Runtime.Metrics.gauge m "serve.admission.inflight") (float_of_int t.inflight)

let tick t name = match t.metrics with Some m -> Runtime.Metrics.incr_named m name | None -> ()

let shed_locked t =
  t.shed <- t.shed + 1;
  tick t "serve.shed";
  Shed { queued = t.queued; inflight = t.inflight }

let admit_locked t =
  t.inflight <- t.inflight + 1;
  t.admitted <- t.admitted + 1;
  tick t "serve.admitted";
  set_gauges t;
  Admitted

let admit t =
  locked t (fun () ->
      if t.closed then shed_locked t
      else if t.inflight < t.max_inflight && t.queued = 0 then
        (* Fast path; [queued = 0] keeps arrival-order fairness — a free
           slot with waiters present belongs to the head of the queue. *)
        admit_locked t
      else if t.queued >= t.queue_limit then shed_locked t
      else begin
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        t.queued <- t.queued + 1;
        set_gauges t;
        while (not t.closed) && not (t.inflight < t.max_inflight && t.serving = ticket) do
          Condition.wait t.slot_free t.lock
        done;
        t.queued <- t.queued - 1;
        t.serving <- t.serving + 1;
        (* The next waiter may also be eligible (several slots freed at
           once, or a closing controller draining its queue). *)
        Condition.broadcast t.slot_free;
        if t.closed then begin
          set_gauges t;
          shed_locked t
        end
        else admit_locked t
      end)

let release t =
  locked t (fun () ->
      if t.inflight <= 0 then invalid_arg "Admission.release: nothing inflight";
      t.inflight <- t.inflight - 1;
      set_gauges t;
      Condition.broadcast t.slot_free)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.slot_free)

let queued t = locked t (fun () -> t.queued)

let inflight t = locked t (fun () -> t.inflight)

let admitted_total t = locked t (fun () -> t.admitted)

let shed_total t = locked t (fun () -> t.shed)
