(** Admission control for the evaluation service: a bounded wait queue in
    front of a max-inflight execution cap, with shed-on-overload.

    A request first tries to take one of [max_inflight] execution slots.
    If none is free it waits — but only if fewer than [queue_limit]
    requests are already waiting; otherwise it is {e shed} immediately
    and explicitly (the caller sends {!Wire.Overloaded}; nothing is ever
    silently dropped). Waiters are admitted in arrival order.

    All transitions are metered: [serve.admitted] / [serve.shed]
    counters and [serve.admission.queued] / [serve.admission.inflight]
    gauges when a {!Runtime.Metrics.t} is attached. *)

type t

type decision =
  | Admitted  (** an execution slot is held; {!release} it when done *)
  | Shed of { queued : int; inflight : int }
      (** no slot and the wait queue is full (or the controller is
          closed); the payload is the state at shed time *)

val create : ?metrics:Runtime.Metrics.t -> queue_limit:int -> max_inflight:int -> unit -> t
(** [max_inflight >= 1], [queue_limit >= 0] ([0] = shed as soon as all
    slots are busy). *)

val admit : t -> decision
(** Take a slot, waiting in the bounded queue if necessary. Blocks only
    while queued; never blocks when the queue is at [queue_limit]. *)

val release : t -> unit
(** Give back a slot taken by a successful {!admit}. *)

val close : t -> unit
(** Stop admitting: current and future {!admit} calls shed immediately
    (counted). Queued waiters are woken and shed. Idempotent. *)

(** {2 Introspection} *)

val queued : t -> int

val inflight : t -> int

val admitted_total : t -> int

val shed_total : t -> int
