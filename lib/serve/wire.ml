(* Length-prefixed binary frames.

   Layout: 4-byte big-endian payload length, then the payload:

     magic 'C' | version | tag | body

   Integers are big-endian; strings are length-prefixed (u16 for tenant
   names, u32 for programs and error messages); bit matrices are
   u32 rows, u16 width, then rows * max(1, ceil(width/8)) bytes with
   bit i of a row in byte i/8 at position i mod 8 (LSB-first). Every
   row occupies at least one byte — even at width 0 — so a claimed row
   count is always backed by payload bytes and the decoder can bound it
   before allocating anything.

   The decoder works through a bounds-checked cursor whose every read
   can fail only by raising the private [Fail] exception, converted to a
   [result] at the [decode] boundary — so no input, however mangled, can
   escape as an exception or an out-of-bounds access. *)

let version = 1

let magic = 0x43 (* 'C' *)

let default_limit = 16 * 1024 * 1024

let header_bytes = 4

type error_code = Parse_failed | Arity_mismatch | Batch_too_large | Internal

(* Bit matrices stay in wire form on both sides of the codec: [m_data]
   is exactly the bytes that go on (or came off) the wire — rows of
   [max 1 (ceil (width/8))] bytes, LSB-first within each byte. Keeping
   them packed lets the server feed 8 row bits per byte straight into
   the bit-sliced evaluator without ever materializing bool arrays. *)
type matrix = { m_rows : int; m_width : int; m_data : string }

let matrix_stride width = max 1 ((width + 7) / 8)

let matrix_rows m = m.m_rows

let matrix_width m = m.m_width

let matrix_of_vectors rows =
  let n = Array.length rows in
  let width = if n = 0 then 0 else Array.length rows.(0) in
  let stride = matrix_stride width in
  let data = Bytes.make (n * stride) '\000' in
  Array.iteri
    (fun r row ->
      if Array.length row <> width then invalid_arg "Wire.matrix_of_vectors: ragged batch";
      let base = r * stride in
      Array.iteri
        (fun i bit ->
          if bit then begin
            let j = base + (i / 8) in
            Bytes.unsafe_set data j
              (Char.unsafe_chr (Char.code (Bytes.unsafe_get data j) lor (1 lsl (i mod 8))))
          end)
        row)
    rows;
  { m_rows = n; m_width = width; m_data = Bytes.unsafe_to_string data }

let matrix_init ~rows ~width f =
  if rows < 0 || width < 0 then invalid_arg "Wire.matrix_init";
  let stride = matrix_stride width in
  let data = Bytes.make (rows * stride) '\000' in
  for r = 0 to rows - 1 do
    let base = r * stride in
    for i = 0 to width - 1 do
      if f r i then begin
        let j = base + (i / 8) in
        Bytes.unsafe_set data j
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get data j) lor (1 lsl (i mod 8))))
      end
    done
  done;
  { m_rows = rows; m_width = width; m_data = Bytes.unsafe_to_string data }

let matrix_row m r =
  if r < 0 || r >= m.m_rows then invalid_arg "Wire.matrix_row";
  let base = r * matrix_stride m.m_width in
  Array.init m.m_width (fun i ->
      Char.code (String.unsafe_get m.m_data (base + (i / 8))) land (1 lsl (i mod 8)) <> 0)

let vectors_of_matrix m = Array.init m.m_rows (matrix_row m)

let matrix_sub m ~first ~len =
  if first < 0 || len < 0 || first + len > m.m_rows then invalid_arg "Wire.matrix_sub";
  let stride = matrix_stride m.m_width in
  { m_rows = len; m_width = m.m_width; m_data = String.sub m.m_data (first * stride) (len * stride) }

(* Gather rows [first .. first+lanes-1] into transposed lane words —
   bit v of word c is row (first+v)'s column c — reading the packed
   bytes directly. This is the serve path's bridge into
   [Runtime.Cache.eval_block] with no bool-array round-trip. *)
let matrix_block m ~first ~lanes =
  if lanes < 0 || lanes > 63 || first < 0 || first + lanes > m.m_rows then
    invalid_arg "Wire.matrix_block";
  let stride = matrix_stride m.m_width in
  let words = Array.make m.m_width 0 in
  for v = 0 to lanes - 1 do
    let base = (first + v) * stride in
    for c = 0 to m.m_width - 1 do
      let bit =
        (Char.code (String.unsafe_get m.m_data (base + (c / 8))) lsr (c land 7)) land 1
      in
      Array.unsafe_set words c (Array.unsafe_get words c lor (bit lsl v))
    done
  done;
  words

type message =
  | Eval_request of { tenant : string; program : string; batch : matrix }
  | Classify_request of { tenant : string; model : string; batch : matrix }
  | Ping
  | Result_chunk of { first : int; outputs : matrix }
  | Eval_done of { total : int; cache_hit : bool; eval_ns : int64 }
  | Overloaded of { queued : int; inflight : int }
  | Error_response of { code : error_code; message : string }
  | Pong

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic of int
  | Unsupported_version of int
  | Bad_tag of int
  | Oversized of { length : int; limit : int }
  | Bad_payload of string

let error_to_string = function
  | Truncated { expected; got } -> Printf.sprintf "truncated frame: expected %d bytes, got %d" expected got
  | Bad_magic b -> Printf.sprintf "bad magic byte 0x%02x" b
  | Unsupported_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_tag t -> Printf.sprintf "unknown message tag 0x%02x" t
  | Oversized { length; limit } -> Printf.sprintf "oversized frame: %d bytes (limit %d)" length limit
  | Bad_payload msg -> Printf.sprintf "bad payload: %s" msg

let tag_name = function
  | Eval_request _ -> "eval_request"
  | Classify_request _ -> "classify_request"
  | Ping -> "ping"
  | Result_chunk _ -> "result_chunk"
  | Eval_done _ -> "eval_done"
  | Overloaded _ -> "overloaded"
  | Error_response _ -> "error_response"
  | Pong -> "pong"

(* --- tags ---------------------------------------------------------------- *)

let tag_of_message = function
  | Eval_request _ -> 0x01
  | Ping -> 0x02
  | Classify_request _ -> 0x03
  | Result_chunk _ -> 0x81
  | Eval_done _ -> 0x82
  | Overloaded _ -> 0x83
  | Error_response _ -> 0x84
  | Pong -> 0x85

let code_to_int = function Parse_failed -> 0 | Arity_mismatch -> 1 | Batch_too_large -> 2 | Internal -> 3

let code_of_int = function
  | 0 -> Some Parse_failed
  | 1 -> Some Arity_mismatch
  | 2 -> Some Batch_too_large
  | 3 -> Some Internal
  | _ -> None

(* --- encoding ------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)

let add_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Wire.encode: u16 field out of range";
  Buffer.add_uint16_be b v

let add_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.encode: u32 field out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_matrix b m =
  add_u32 b m.m_rows;
  add_u16 b m.m_width;
  (* [m_data] is already the wire form; its length is an invariant of
     matrix construction ([rows * stride]). *)
  Buffer.add_string b m.m_data

let encode msg =
  let body = Buffer.create 64 in
  add_u8 body magic;
  add_u8 body version;
  add_u8 body (tag_of_message msg);
  (match msg with
  | Eval_request { tenant; program; batch } ->
    add_str16 body tenant;
    add_str32 body program;
    add_matrix body batch
  | Classify_request { tenant; model; batch } ->
    add_str16 body tenant;
    add_str16 body model;
    add_matrix body batch
  | Ping | Pong -> ()
  | Result_chunk { first; outputs } ->
    add_u32 body first;
    add_matrix body outputs
  | Eval_done { total; cache_hit; eval_ns } ->
    add_u32 body total;
    add_u8 body (if cache_hit then 1 else 0);
    Buffer.add_int64_be body eval_ns
  | Overloaded { queued; inflight } ->
    (* The overload response must be deliverable whatever queue bounds
       the server was configured with: saturate at the field width
       rather than raise and kill the session that most needs the
       backoff hint. *)
    add_u16 body (min queued 0xffff);
    add_u16 body (min inflight 0xffff)
  | Error_response { code; message } ->
    add_u8 body (code_to_int code);
    add_str32 body message);
  let frame = Buffer.create (Buffer.length body + header_bytes) in
  add_u32 frame (Buffer.length body);
  Buffer.add_buffer frame body;
  Buffer.contents frame

(* --- decoding ------------------------------------------------------------ *)

exception Fail of error

type cursor = { buf : string; limit : int; mutable pos : int }

let need c n =
  if c.pos + n > c.limit then raise (Fail (Truncated { expected = c.pos + n; got = c.limit }))

let u8 c =
  need c 1;
  let v = Char.code (String.unsafe_get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let hi = u16 c in
  let lo = u16 c in
  (hi lsl 16) lor lo

let u64 c =
  need c 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 c))
  done;
  !v

let str c len =
  need c len;
  let s = String.sub c.buf c.pos len in
  c.pos <- c.pos + len;
  s

let str16 c = str c (u16 c)

let str32 c = str c (u32 c)

let matrix c =
  let n = u32 c in
  let width = u16 c in
  let stride = max 1 ((width + 7) / 8) in
  (* The size claim must fit the remaining payload before any allocation
     is sized from it — a u32 row count in a 20-byte frame must die as
     Truncated, not as a gigabyte allocation. Rows are at least one byte
     each on the wire (see [add_matrix]), so this single check bounds
     the row count even for zero-width matrices. *)
  need c (n * stride);
  let data = String.sub c.buf c.pos (n * stride) in
  c.pos <- c.pos + (n * stride);
  { m_rows = n; m_width = width; m_data = data }

let decode_payload payload =
  let c = { buf = payload; limit = String.length payload; pos = 0 } in
  let m = u8 c in
  if m <> magic then raise (Fail (Bad_magic m));
  let v = u8 c in
  if v <> version then raise (Fail (Unsupported_version v));
  let tag = u8 c in
  let msg =
    match tag with
    | 0x01 ->
      let tenant = str16 c in
      let program = str32 c in
      let batch = matrix c in
      Eval_request { tenant; program; batch }
    | 0x02 -> Ping
    | 0x03 ->
      let tenant = str16 c in
      let model = str16 c in
      let batch = matrix c in
      Classify_request { tenant; model; batch }
    | 0x81 ->
      let first = u32 c in
      let outputs = matrix c in
      Result_chunk { first; outputs }
    | 0x82 ->
      let total = u32 c in
      let hit = u8 c in
      if hit > 1 then raise (Fail (Bad_payload "cache_hit flag not 0/1"));
      let eval_ns = u64 c in
      Eval_done { total; cache_hit = hit = 1; eval_ns }
    | 0x83 ->
      let queued = u16 c in
      let inflight = u16 c in
      Overloaded { queued; inflight }
    | 0x84 -> (
      match code_of_int (u8 c) with
      | None -> raise (Fail (Bad_payload "unknown error code"))
      | Some code ->
        let message = str32 c in
        Error_response { code; message })
    | 0x85 -> Pong
    | t -> raise (Fail (Bad_tag t))
  in
  if c.pos <> c.limit then raise (Fail (Bad_payload "trailing bytes after message body"));
  msg

let decode ?(limit = default_limit) s =
  match
    let c = { buf = s; limit = String.length s; pos = 0 } in
    let len = u32 c in
    if len > limit then raise (Fail (Oversized { length = len; limit }));
    let payload = str c len in
    (decode_payload payload, c.pos)
  with
  | v -> Ok v
  | exception Fail e -> Error e

(* --- channels ------------------------------------------------------------ *)

let write_message oc msg =
  output_string oc (encode msg);
  flush oc

let really_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string b)
    else
      match input ic b off (n - off) with
      | 0 -> if off = 0 then None else raise (Fail (Truncated { expected = n; got = off }))
      | k -> go (off + k)
  in
  go 0

let read_message ?(limit = default_limit) ic =
  match
    match really_read ic header_bytes with
    | None -> `Eof
    | Some hdr ->
      let len =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if len > limit then `Error (Oversized { length = len; limit })
      else begin
        match really_read ic len with
        | None -> `Error (Truncated { expected = len; got = 0 })
        | Some payload -> `Msg (decode_payload payload)
      end
  with
  | r -> r
  | exception Fail e -> `Error e
  | exception End_of_file -> `Error (Truncated { expected = header_bytes; got = 0 })
