(** The evaluation service daemon.

    Clients speak {!Wire} over either a Unix-domain socket (one session
    thread per connection) or a single stdin/stdout pipe session (tests,
    CI). A session submits PLA programs and input batches; the server
    admits the request through {!Admission} (shedding with
    {!Wire.Overloaded} when saturated), compiles through the tenant's
    quota-bounded {!Runtime.Cache} ({!Tenants}), evaluates on the shared
    {!Runtime.Pool}, and streams {!Wire.Result_chunk} frames back.

    Sessions are supervised in the sense that no client can take the
    daemon down: oversized frames, garbage bytes, mid-stream
    disconnects and poison programs all terminate or degrade only their
    own session, with the failure metered. Every stage is wrapped in an
    {!Obs} span ([serve.session], [serve.decode], [serve.request],
    [serve.admit], [serve.compile], [serve.eval], [serve.encode]). *)

type config = {
  jobs : int option;  (** evaluation pool size; [None] = cores - 1 *)
  queue_limit : int;  (** admission wait-queue bound *)
  max_inflight : int;  (** concurrently evaluating requests *)
  max_tenants : int;  (** tenant caches kept before tenant-LRU eviction *)
  tenant_quota : int;  (** compiled programs per tenant cache *)
  max_frame : int;  (** payload bytes; larger frames end the session *)
  chunk_vectors : int;  (** result vectors per {!Wire.Result_chunk} *)
  max_batch : int;  (** vectors per request; more is [Batch_too_large] *)
}

val default_config : config
(** queue 64, inflight 8, 16 tenants × 32 programs, 4 MiB frames,
    512-vector chunks, 65536-vector batches. *)

type t

val create : ?metrics:Runtime.Metrics.t -> config -> t
(** Builds the pool, admission controller and tenant table. The server
    owns its pool; {!stop} drains it. *)

val config : t -> config

val admission : t -> Admission.t

val tenants : t -> Tenants.t

val pool : t -> Runtime.Pool.t

(** {2 Serving} *)

val serve_session : t -> in_channel -> out_channel -> unit
(** Run one client session until EOF, a framing error, or disconnect.
    Never raises: session-fatal failures are metered
    ([serve.session_errors], [serve.decode_errors]) and end only this
    session. May be called from any number of threads concurrently. *)

val run_unix : t -> sock_path:string -> unit
(** Bind, listen and accept on a Unix-domain socket, one session thread
    per connection. Returns after {!request_stop} (the socket file is
    removed). *)

val request_stop : t -> unit
(** Ask a running {!run_unix} loop to exit: sets the stop flag and
    wakes the accept loop. Takes no locks, so it is safe to call from a
    signal handler (which OCaml may run on a thread that already holds
    one); the caller completes shutdown — shedding queued requests and
    draining the pool — by calling {!stop} once {!run_unix} returns. *)

val stop : t -> unit
(** Close admission (queued requests shed) and gracefully drain the
    evaluation pool — inflight work finishes first. Idempotent. *)

(** {2 Introspection} *)

type stats = {
  sessions_active : int;
  sessions_total : int;
  requests : int;
  responses_ok : int;
  request_errors : int;  (** requests answered with [Error_response] *)
  session_errors : int;  (** sessions ended by decode failure/disconnect *)
  vectors_evaluated : int;
  fallback_evals : int;  (** served uncompiled after repeated cache rot *)
}

val stats : t -> stats
