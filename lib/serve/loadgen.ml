module Rng = Util.Rng
module Histogram = Runtime.Histogram

type config = {
  connect : unit -> in_channel * out_channel * (unit -> unit);
  concurrency : int;
  tenants : int;
  requests_per_worker : int;
  batch : int;
  seed : int;
  classify_share : float;
}

type report = {
  label : string;
  concurrency : int;
  tenants : int;
  batch : int;
  requests : int;
  completed : int;
  shed : int;
  errors : int;
  miscompares : int;
  vectors : int;
  classified : int;
  wall_s : float;
  throughput_rps : float;
  shed_rate : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  mean_s : float;
  max_s : float;
}

(* ------------------------------------------------------------------ *)
(* Workload: exactly-constructed benchmark covers, pre-rendered to
   [.pla] text once, each with a direct [Pla.eval] oracle. Small input
   counts keep single requests cheap so saturation comes from request
   volume, not one giant program. *)

type workload = {
  name : string;
  n_in : int;
  text : string;
  oracle : Cnfet.Pla.t;
}

let workloads =
  lazy
    (Mcnc.Generators.all
    |> List.filter (fun (_, c) -> Logic.Cover.num_inputs c <= 8)
    |> List.map (fun (name, cover) ->
           let n_in = Logic.Cover.num_inputs cover in
           let n_out = Logic.Cover.num_outputs cover in
           let text =
             Logic.Pla_io.to_string ~on_set:cover ~dc_set:(Logic.Cover.empty ~n_in ~n_out) ()
           in
           { name; n_in; text; oracle = Cnfet.Pla.of_cover cover })
    |> Array.of_list)

(* ------------------------------------------------------------------ *)

type tally = {
  lock : Mutex.t;
  mutable requests : int;
  mutable completed : int;
  mutable shed : int;
  mutable errors : int;
  mutable miscompares : int;
  mutable vectors : int;
  mutable classified : int;
  latency : Histogram.t;
}

let tally_add ?(classified = 0) tl ~requests ~completed ~shed ~errors ~miscompares ~vectors =
  Mutex.lock tl.lock;
  tl.requests <- tl.requests + requests;
  tl.completed <- tl.completed + completed;
  tl.shed <- tl.shed + shed;
  tl.errors <- tl.errors + errors;
  tl.miscompares <- tl.miscompares + miscompares;
  tl.vectors <- tl.vectors + vectors;
  tl.classified <- tl.classified + classified;
  Mutex.unlock tl.lock

let random_vector rng n = Array.init n (fun _ -> Rng.bool rng)

(* Read one full reply off the wire. Chunks accumulate until
   [Eval_done]; anything session-fatal surfaces as [`Transport]. *)
let read_reply ic =
  let chunks = ref [] in
  let rec go () =
    match Wire.read_message ic with
    | `Eof | `Error _ -> `Transport
    | `Msg (Wire.Result_chunk { first; outputs }) ->
      chunks := (first, outputs) :: !chunks;
      go ()
    | `Msg (Wire.Eval_done { total; _ }) -> `Done (total, List.rev !chunks)
    | `Msg (Wire.Overloaded _) -> `Shed
    | `Msg (Wire.Error_response { code; message }) -> `Error (code, message)
    | `Msg _ -> `Transport
  in
  go ()

(* Compare every served output row against [expect idx]; returns
   mismatching vector count. *)
let miscompares_of ~expect ~n chunks =
  let bad = ref 0 in
  List.iter
    (fun (first, outputs) ->
      for i = 0 to Wire.matrix_rows outputs - 1 do
        let idx = first + i in
        if idx < 0 || idx >= n then incr bad
        else if Wire.matrix_row outputs i <> expect idx then incr bad
      done)
    chunks;
  !bad

(* The classification oracle: the reference integer model, labels
   binary-encoded the way the server's mapped crossbar emits them. *)
let classify_oracle = lazy Classify.Pretrained.model

let classify_expected m x =
  let label = Classify.Model.predict m x in
  let nb = Classify.Model.label_bits m in
  Array.init nb (fun b -> label land (1 lsl b) <> 0)

let worker cfg tl rng () =
  let wl = Lazy.force workloads in
  match cfg.connect () with
  | exception _ -> tally_add tl ~requests:0 ~completed:0 ~shed:0 ~errors:1 ~miscompares:0 ~vectors:0
  | ic, oc, close ->
    let alive = ref true in
    let i = ref 0 in
    while !alive && !i < cfg.requests_per_worker do
      incr i;
      (* Drawing the request-kind decision only when the mix asks for
         classification keeps a share of 0.0 byte-identical to the
         pre-classify request stream. *)
      let classify =
        cfg.classify_share > 0.0 && Rng.float rng 1.0 < cfg.classify_share
      in
      let request, expect =
        if classify then begin
          let m = Lazy.force classify_oracle in
          let tenant = Printf.sprintf "tenant-%d" (Rng.int rng (max 1 cfg.tenants)) in
          let batch =
            Array.init cfg.batch (fun _ -> random_vector rng m.Classify.Model.n_features)
          in
          ( Wire.Classify_request
              { tenant; model = "default"; batch = Wire.matrix_of_vectors batch },
            fun idx -> classify_expected m batch.(idx) )
        end
        else begin
          let w = Rng.pick rng wl in
          let tenant = Printf.sprintf "tenant-%d" (Rng.int rng (max 1 cfg.tenants)) in
          let batch = Array.init cfg.batch (fun _ -> random_vector rng w.n_in) in
          ( Wire.Eval_request
              { tenant; program = w.text; batch = Wire.matrix_of_vectors batch },
            fun idx -> Cnfet.Pla.eval w.oracle batch.(idx) )
        end
      in
      let classified = if classify then 1 else 0 in
      let t0 = Unix.gettimeofday () in
      match
        Wire.write_message oc request;
        read_reply ic
      with
      | exception _ ->
        tally_add tl ~requests:1 ~completed:0 ~shed:0 ~errors:1 ~miscompares:0 ~vectors:0;
        alive := false
      | `Transport ->
        tally_add tl ~requests:1 ~completed:0 ~shed:0 ~errors:1 ~miscompares:0 ~vectors:0;
        alive := false
      | `Shed -> tally_add tl ~requests:1 ~completed:0 ~shed:1 ~errors:0 ~miscompares:0 ~vectors:0
      | `Error _ ->
        tally_add tl ~requests:1 ~completed:0 ~shed:0 ~errors:1 ~miscompares:0 ~vectors:0
      | `Done (total, chunks) ->
        let dt = Unix.gettimeofday () -. t0 in
        Histogram.observe tl.latency dt;
        let served =
          List.fold_left (fun acc (_, o) -> acc + Wire.matrix_rows o) 0 chunks
        in
        let bad =
          miscompares_of ~expect ~n:cfg.batch chunks
          + if total <> cfg.batch || served <> cfg.batch then 1 else 0
        in
        tally_add ~classified tl ~requests:1 ~completed:1 ~shed:0 ~errors:0 ~miscompares:bad
          ~vectors:served
    done;
    close ()

let run ?(label = "loadgen") (cfg : config) =
  if cfg.concurrency < 1 then invalid_arg "Loadgen.run: concurrency < 1";
  if cfg.batch < 1 then invalid_arg "Loadgen.run: batch < 1";
  if not (cfg.classify_share >= 0.0 && cfg.classify_share <= 1.0) then
    invalid_arg "Loadgen.run: classify_share not a probability";
  let tl =
    {
      lock = Mutex.create ();
      requests = 0;
      completed = 0;
      shed = 0;
      errors = 0;
      miscompares = 0;
      vectors = 0;
      classified = 0;
      latency = Histogram.create ();
    }
  in
  let root = Rng.create cfg.seed in
  let rngs = Array.init cfg.concurrency (fun _ -> Rng.split root) in
  let t0 = Unix.gettimeofday () in
  let threads = Array.map (fun rng -> Thread.create (worker cfg tl rng) ()) rngs in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let ps = Histogram.percentiles tl.latency [ 50.; 95.; 99. ] in
  let p x = List.assoc x ps in
  let count = Histogram.count tl.latency in
  {
    label;
    concurrency = cfg.concurrency;
    tenants = cfg.tenants;
    batch = cfg.batch;
    requests = tl.requests;
    completed = tl.completed;
    shed = tl.shed;
    errors = tl.errors;
    miscompares = tl.miscompares;
    vectors = tl.vectors;
    classified = tl.classified;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int tl.completed /. wall_s else 0.);
    shed_rate =
      (if tl.requests > 0 then float_of_int tl.shed /. float_of_int tl.requests else 0.);
    p50_s = (if count > 0 then p 50. else 0.);
    p95_s = (if count > 0 then p 95. else 0.);
    p99_s = (if count > 0 then p 99. else 0.);
    mean_s = (if count > 0 then Histogram.mean tl.latency else 0.);
    max_s = (if count > 0 then Histogram.percentile tl.latency 100. else 0.);
  }

(* ------------------------------------------------------------------ *)
(* Assess.Run emission: each sweep point contributes one series per
   field under its label ("c8/throughput_rps", ...). A single loadgen
   invocation yields n=1 series — the A/B comparator falls back to
   point-vs-floor verdicts there; pass repeated points for CIs. *)

let profile_name = "serve-loadgen"

let report_fields =
  [
    ("throughput_rps", "req/s", true, fun r -> r.throughput_rps);
    ("p50_s", "s", false, fun r -> r.p50_s);
    ("p95_s", "s", false, fun r -> r.p95_s);
    ("p99_s", "s", false, fun r -> r.p99_s);
    ("shed_rate", "", false, fun r -> r.shed_rate);
    ("completed", "req", true, fun r -> float_of_int r.completed);
    ("miscompares", "", false, fun r -> float_of_int r.miscompares);
    ("errors", "", false, fun r -> float_of_int r.errors);
  ]

let to_run ~seed (points : report list) =
  let wall_s = List.fold_left (fun acc r -> acc +. r.wall_s) 0. points in
  (* group repeated points of the same label into one series per field *)
  let labels =
    List.fold_left
      (fun acc r -> if List.mem r.label acc then acc else acc @ [ r.label ])
      [] points
  in
  let metrics =
    List.concat_map
      (fun label ->
        let here = List.filter (fun r -> r.label = label) points in
        List.map
          (fun (field, units, higher_is_better, get) ->
            Assess.Run.metric ~units ~higher_is_better
              (label ^ "/" ^ field)
              (Array.of_list (List.map get here)))
          report_fields)
      labels
  in
  Assess.Run.create
    ~meta:[ ("bench", "serve-loadgen"); ("points", string_of_int (List.length points)) ]
    ~profile:profile_name ~seed ~wall_s metrics

(* ------------------------------------------------------------------ *)
(* JSON rendering (same hand-rolled style as the other bench JSON). *)

let json_of_report ~indent r =
  let pad = String.make indent ' ' in
  let f = Printf.sprintf in
  String.concat ("\n" ^ pad)
    [
      "{";
      f "  \"label\": %S," r.label;
      f "  \"concurrency\": %d," r.concurrency;
      f "  \"tenants\": %d," r.tenants;
      f "  \"batch\": %d," r.batch;
      f "  \"requests\": %d," r.requests;
      f "  \"completed\": %d," r.completed;
      f "  \"shed\": %d," r.shed;
      f "  \"errors\": %d," r.errors;
      f "  \"miscompares\": %d," r.miscompares;
      f "  \"vectors\": %d," r.vectors;
      f "  \"classified\": %d," r.classified;
      f "  \"wall_s\": %.6f," r.wall_s;
      f "  \"throughput_rps\": %.2f," r.throughput_rps;
      f "  \"shed_rate\": %.4f," r.shed_rate;
      "  \"latency_s\": {";
      f "    \"p50\": %.6f," r.p50_s;
      f "    \"p95\": %.6f," r.p95_s;
      f "    \"p99\": %.6f," r.p99_s;
      f "    \"mean\": %.6f," r.mean_s;
      f "    \"max\": %.6f" r.max_s;
      "  }";
      "}";
    ]

let to_json r =
  String.concat "\n"
    [
      "{";
      "  \"bench\": \"serve\",";
      Printf.sprintf "  \"saturation_throughput_rps\": %.2f," r.throughput_rps;
      Printf.sprintf "  \"shed_rate\": %.4f," r.shed_rate;
      Printf.sprintf "  \"miscompares\": %d," r.miscompares;
      "  \"run\": " ^ json_of_report ~indent:2 r;
      "}";
      "";
    ]

let sweep_to_json (reports : report list) =
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.throughput_rps >= r.throughput_rps -> acc
        | _ -> Some r)
      None reports
  in
  match best with
  | None -> "{\n  \"bench\": \"serve\",\n  \"sweep\": []\n}\n"
  | Some b ->
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"serve\",";
        Printf.sprintf "  \"saturation_throughput_rps\": %.2f," b.throughput_rps;
        Printf.sprintf "  \"saturation_concurrency\": %d," b.concurrency;
        Printf.sprintf "  \"shed_rate\": %.4f," b.shed_rate;
        Printf.sprintf "  \"miscompares\": %d,"
          (List.fold_left (fun acc (r : report) -> acc + r.miscompares) 0 reports);
        "  \"latency_s\": {";
        Printf.sprintf "    \"p50\": %.6f," b.p50_s;
        Printf.sprintf "    \"p95\": %.6f," b.p95_s;
        Printf.sprintf "    \"p99\": %.6f" b.p99_s;
        "  },";
        "  \"sweep\": [";
        String.concat ",\n" (List.map (fun r -> "    " ^ json_of_report ~indent:4 r) reports);
        "  ]";
        "}";
        "";
      ]
