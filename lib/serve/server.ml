module Metrics = Runtime.Metrics
module Cache = Runtime.Cache

type config = {
  jobs : int option;
  queue_limit : int;
  max_inflight : int;
  max_tenants : int;
  tenant_quota : int;
  max_frame : int;
  chunk_vectors : int;
  max_batch : int;
}

let default_config =
  {
    jobs = None;
    queue_limit = 64;
    max_inflight = 8;
    max_tenants = 16;
    tenant_quota = 32;
    max_frame = 4 * 1024 * 1024;
    chunk_vectors = 512;
    max_batch = 65536;
  }

type stats = {
  sessions_active : int;
  sessions_total : int;
  requests : int;
  responses_ok : int;
  request_errors : int;
  session_errors : int;
  vectors_evaluated : int;
  fallback_evals : int;
}

type t = {
  cfg : config;
  metrics : Metrics.t option;
  pool : Runtime.Pool.t;
  admission : Admission.t;
  tenants : Tenants.t;
  lock : Mutex.t;
  mutable st : stats;
  stop_flag : bool Atomic.t;
  mutable sock_path : string option;  (* set while [run_unix] is live *)
}

let create ?metrics cfg =
  (* A client that hangs up mid-stream must surface as EPIPE on write
     (handled per-session), not as a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if cfg.chunk_vectors < 1 then invalid_arg "Server.create: chunk_vectors < 1";
  if cfg.max_batch < 1 then invalid_arg "Server.create: max_batch < 1";
  if cfg.max_frame < Wire.header_bytes then invalid_arg "Server.create: max_frame too small";
  let pool = Runtime.Pool.create ?metrics ?jobs:cfg.jobs () in
  let admission = Admission.create ?metrics ~queue_limit:cfg.queue_limit ~max_inflight:cfg.max_inflight () in
  let tenants = Tenants.create ?metrics ~max_tenants:cfg.max_tenants ~quota:cfg.tenant_quota () in
  {
    cfg;
    metrics;
    pool;
    admission;
    tenants;
    lock = Mutex.create ();
    st =
      {
        sessions_active = 0;
        sessions_total = 0;
        requests = 0;
        responses_ok = 0;
        request_errors = 0;
        session_errors = 0;
        vectors_evaluated = 0;
        fallback_evals = 0;
      };
    stop_flag = Atomic.make false;
    sock_path = None;
  }

let config t = t.cfg
let admission t = t.admission
let tenants t = t.tenants
let pool t = t.pool

let stats t =
  Mutex.lock t.lock;
  let s = t.st in
  Mutex.unlock t.lock;
  s

let bump t f =
  Mutex.lock t.lock;
  t.st <- f t.st;
  Mutex.unlock t.lock

let tick t name = match t.metrics with Some m -> Metrics.incr_named m name | None -> ()

let observe t name v = match t.metrics with Some m -> Metrics.observe m name v | None -> ()

(* ------------------------------------------------------------------ *)
(* Request pipeline: admit -> parse -> compile -> eval.               *)

exception Reject of Wire.error_code * string
(* request-level failure; answered with [Error_response], session lives *)

(* How this request's program gets evaluated: through the bit-sliced
   compiled entry, or — only if the tenant cache rots repeatedly —
   uncompiled straight off the mapped PLA. *)
type engine = Compiled of Cache.compiled | Uncompiled of Cnfet.Pla.t

(* Compiled evaluator plus whether the tenant cache already had it —
   reported by the cache for this lookup alone, since diffing its
   shared hit counter would race with concurrent requests on the same
   tenant. A rotten cache entry ([Corrupt_entry] self-evicts) gets one
   recompile; if the cover key rots twice in a row, the mapped PLA is
   compiled under its plane-content key (a distinct entry, same
   per-call hit reporting via [compile_of_pla_hit]) before giving up
   and serving this request uncompiled. *)
let evaluator t tcache cover =
  match Cache.compile_hit tcache cover with
  | compiled, hit -> (Compiled compiled, hit)
  | exception Cache.Corrupt_entry _ -> (
    match Cache.compile_hit tcache cover with
    | compiled, hit -> (Compiled compiled, hit)
    | exception Cache.Corrupt_entry _ -> (
      let pla = Cnfet.Pla.of_cover cover in
      match Cache.compile_of_pla_hit tcache pla with
      | compiled, hit -> (Compiled compiled, hit)
      | exception Cache.Corrupt_entry _ ->
        bump t (fun s -> { s with fallback_evals = s.fallback_evals + 1 });
        tick t "serve.fallback_evals";
        (Uncompiled pla, false)))

(* The classifier registry: model name -> lowered crossbar. Lowering
   (minterm enumeration + espresso) is paid once per process on first
   classify request, then every request compiles the mapped cover
   through the same per-tenant cache as eval programs. *)
let classify_models =
  lazy [ ("default", Classify.Map.lower Classify.Pretrained.model) ]

let lookup_model name =
  match List.assoc_opt name (Lazy.force classify_models) with
  | Some mapped -> mapped
  | None -> raise (Reject (Wire.Parse_failed, Printf.sprintf "unknown model %S" name))

let parse_program program =
  match Logic.Pla_io.parse program with
  | spec -> spec
  | exception Logic.Pla_io.Parse_error (line, msg) ->
    raise (Reject (Wire.Parse_failed, Printf.sprintf "line %d: %s" line msg))
  | exception e -> raise (Reject (Wire.Parse_failed, Printexc.to_string e))

(* Big batches go to the domain pool; tiny ones are cheaper inline than
   the future round-trip. *)
let parallel_threshold = 64

type reply =
  | Stream of { outputs : Wire.matrix; cache_hit : bool; eval_ns : int64 }
  | One of Wire.message

(* The compiled fast path: full 63-vector blocks gather straight from
   the request matrix's packed bytes ([Wire.matrix_block]) into the
   bit-sliced evaluator — no bool-array round-trip — with one pool item
   per block when the batch is big enough, then the ragged tail runs
   scalar. The reply matrix is assembled from the lane words directly. *)
let eval_engine t engine batch =
  let n = Wire.matrix_rows batch in
  match engine with
  | Compiled compiled ->
    let lanes = Cache.lanes_per_word in
    let n_blocks = n / lanes in
    let n_full = n_blocks * lanes in
    let eval_block b =
      Cache.eval_block compiled
        { Cache.words = Wire.matrix_block batch ~first:(b * lanes) ~lanes; lanes }
    in
    let block_words =
      if n >= parallel_threshold && n_blocks > 0 then
        Runtime.Batch.map ?metrics:t.metrics t.pool eval_block (Array.init n_blocks Fun.id)
      else Array.init n_blocks eval_block
    in
    let tail =
      Array.init (n - n_full) (fun i ->
          Cache.eval compiled (Wire.matrix_row batch (n_full + i)))
    in
    let n_out = Cnfet.Pla.num_outputs (Cache.pla compiled) in
    Wire.matrix_init ~rows:n ~width:n_out (fun r o ->
        if r < n_full then block_words.(r / lanes).(o) land (1 lsl (r mod lanes)) <> 0
        else tail.(r - n_full).(o))
  | Uncompiled pla ->
    let eval_row i = Cnfet.Pla.eval pla (Wire.matrix_row batch i) in
    let rows =
      if n >= parallel_threshold then
        Runtime.Batch.map ?metrics:t.metrics t.pool eval_row (Array.init n Fun.id)
      else Array.init n eval_row
    in
    Wire.matrix_init ~rows:n ~width:(Cnfet.Pla.num_outputs pla) (fun r o -> rows.(r).(o))

(* Shared request wrapper: count, admit (or shed), cap the batch, and
   convert any per-request explosion to a typed error — the daemon and
   other sessions keep going. [f] gets the admitted batch size and runs
   the request-specific parse/compile/eval. *)
let admitted t ~batch f =
  bump t (fun s -> { s with requests = s.requests + 1 });
  tick t "serve.requests";
  match Obs.Span.with_ "serve.admit" (fun () -> Admission.admit t.admission) with
  | Admission.Shed { queued; inflight } -> One (Wire.Overloaded { queued; inflight })
  | Admission.Admitted -> (
    match
      Fun.protect
        ~finally:(fun () -> Admission.release t.admission)
        (fun () ->
          let n = Wire.matrix_rows batch in
          if n > t.cfg.max_batch then
            raise
              (Reject
                 ( Wire.Batch_too_large,
                   Printf.sprintf "%d vectors exceed the per-request cap of %d" n t.cfg.max_batch ));
          f n)
    with
    | reply -> reply
    | exception Reject (code, message) -> One (Wire.Error_response { code; message })
    | exception e ->
      tick t "serve.request_crashes";
      One (Wire.Error_response { code = Wire.Internal; message = Printexc.to_string e }))

(* Compile [cover] through the tenant's cache and evaluate the batch
   through the bit-sliced path, timing the whole thing. *)
let compile_and_eval t ~tenant ~batch ~n cover =
  let t0 = Unix.gettimeofday () in
  let engine, cache_hit =
    Obs.Span.with_ ~args:[ ("tenant", tenant) ] "serve.compile" (fun () ->
        evaluator t (Tenants.cache t.tenants tenant) cover)
  in
  let outputs =
    Obs.Span.with_ ~args:[ ("vectors", string_of_int n) ] "serve.eval" (fun () ->
        eval_engine t engine batch)
  in
  let dt = Unix.gettimeofday () -. t0 in
  observe t "serve.eval_latency_s" dt;
  bump t (fun s -> { s with vectors_evaluated = s.vectors_evaluated + n });
  (match t.metrics with Some m -> Metrics.incr_named ~by:n m "serve.vectors" | None -> ());
  Stream { outputs; cache_hit; eval_ns = Int64.of_float (dt *. 1e9) }

let process t ~tenant ~program ~batch =
  admitted t ~batch (fun n ->
      let spec = parse_program program in
      if n > 0 && Wire.matrix_width batch <> spec.Logic.Pla_io.n_in then
        raise
          (Reject
             ( Wire.Arity_mismatch,
               Printf.sprintf "batch width %d, program has %d inputs"
                 (Wire.matrix_width batch) spec.Logic.Pla_io.n_in ));
      compile_and_eval t ~tenant ~batch ~n spec.Logic.Pla_io.on_set)

let process_classify t ~tenant ~model ~batch =
  admitted t ~batch (fun n ->
      let mapped = lookup_model model in
      let n_features = mapped.Classify.Map.model.Classify.Model.n_features in
      if n > 0 && Wire.matrix_width batch <> n_features then
        raise
          (Reject
             ( Wire.Arity_mismatch,
               Printf.sprintf "batch width %d, model has %d features"
                 (Wire.matrix_width batch) n_features ));
      compile_and_eval t ~tenant ~batch ~n mapped.Classify.Map.cover)

(* ------------------------------------------------------------------ *)
(* Sessions.                                                          *)

let write_reply t oc = function
  | One msg ->
    (match msg with
    | Wire.Error_response _ -> bump t (fun s -> { s with request_errors = s.request_errors + 1 })
    | _ -> ());
    Obs.Span.with_ "serve.encode" (fun () -> Wire.write_message oc msg)
  | Stream { outputs; cache_hit; eval_ns } ->
    Obs.Span.with_ "serve.encode" (fun () ->
        let n = Wire.matrix_rows outputs in
        let chunk = t.cfg.chunk_vectors in
        let first = ref 0 in
        while !first < n do
          let len = min chunk (n - !first) in
          Wire.write_message oc
            (Wire.Result_chunk
               { first = !first; outputs = Wire.matrix_sub outputs ~first:!first ~len });
          first := !first + len
        done;
        Wire.write_message oc (Wire.Eval_done { total = n; cache_hit; eval_ns }));
    bump t (fun s -> { s with responses_ok = s.responses_ok + 1 })

let serve_session t ic oc =
  bump t (fun s ->
      { s with sessions_active = s.sessions_active + 1; sessions_total = s.sessions_total + 1 });
  tick t "serve.sessions";
  let outcome =
    try
      Obs.Span.with_ "serve.session" (fun () ->
          let rec loop () =
            match
              Obs.Span.with_ "serve.decode" (fun () ->
                  Wire.read_message ~limit:t.cfg.max_frame ic)
            with
            | `Eof -> `Clean
            | `Error e ->
              (* framing is lost; tell the client why, then hang up *)
              tick t "serve.decode_errors";
              (try
                 Wire.write_message oc
                   (Wire.Error_response
                      { code = Wire.Internal; message = "decode: " ^ Wire.error_to_string e })
               with _ -> ());
              `Decode_error
            | `Msg Wire.Ping ->
              Wire.write_message oc Wire.Pong;
              loop ()
            | `Msg (Wire.Eval_request { tenant; program; batch }) ->
              write_reply t oc (process t ~tenant ~program ~batch);
              loop ()
            | `Msg (Wire.Classify_request { tenant; model; batch }) ->
              write_reply t oc (process_classify t ~tenant ~model ~batch);
              loop ()
            | `Msg other ->
              bump t (fun s -> { s with request_errors = s.request_errors + 1 });
              Wire.write_message oc
                (Wire.Error_response
                   {
                     code = Wire.Internal;
                     message = "unexpected client message: " ^ Wire.tag_name other;
                   });
              loop ()
          in
          loop ())
    with _ ->
      (* disconnect mid-stream (EPIPE surfaces as Sys_error) or any other
         session-fatal surprise: this session only *)
      `Disconnected
  in
  (match outcome with
  | `Clean -> ()
  | `Decode_error | `Disconnected ->
    bump t (fun s -> { s with session_errors = s.session_errors + 1 });
    tick t "serve.session_errors");
  bump t (fun s -> { s with sessions_active = s.sessions_active - 1 })

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                         *)

let stop t =
  Atomic.set t.stop_flag true;
  Admission.close t.admission;
  Runtime.Pool.drain t.pool

let request_stop t =
  (* Runs from SIGINT/SIGTERM handlers, which OCaml executes at a safe
     point in an {e arbitrary} thread — possibly one already holding
     the admission lock, so taking any mutex here (Admission.close)
     could self-deadlock. Only flip the atomic flag and poke the
     listener; [stop], which the caller runs once the accept loop
     returns, closes admission and drains the pool. *)
  Atomic.set t.stop_flag true;
  (* wake a blocked [accept] by connecting to ourselves; harmless if the
     listener is already gone *)
  match t.sock_path with
  | None -> ()
  | Some path -> (
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path) with _ -> ());
      Unix.close fd
    with _ -> ())

let session_thread t fd =
  (* Separate descriptors per direction so the two channels can be
     closed independently (closing a shared fd twice races with fd
     reuse in other threads). *)
  let out_fd = Unix.dup fd in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr out_fd in
  serve_session t ic oc;
  close_out_noerr oc;
  close_in_noerr ic

let run_unix t ~sock_path =
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX sock_path);
  Unix.listen listener 64;
  t.sock_path <- Some sock_path;
  Fun.protect
    ~finally:(fun () ->
      t.sock_path <- None;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink sock_path with Unix.Unix_error _ -> ()))
    (fun () ->
      let rec accept_loop () =
        if Atomic.get t.stop_flag then ()
        else
          match Unix.accept listener with
          | fd, _ ->
            if Atomic.get t.stop_flag then (try Unix.close fd with Unix.Unix_error _ -> ())
            else ignore (Thread.create (fun () -> session_thread t fd) () : Thread.t);
            accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            (* listener closed under us during shutdown *)
            ()
          | exception e -> if Atomic.get t.stop_flag then () else raise e
      in
      accept_loop ())
