(** Closed-loop load generator for the evaluation service.

    [concurrency] worker threads each hold one connection and drive it
    closed-loop: send an {!Wire.Eval_request}, wait for the full reply,
    send the next. Programs are drawn from the {!Mcnc.Generators}
    benchmark families, tenants round a configurable mix, and {e every}
    returned output vector is checked bit-for-bit against a direct
    [Pla.eval] oracle — a served result that differs is a miscompare,
    the one number that must stay zero.

    Latencies feed a shared {!Runtime.Histogram}; the report carries
    p50/p95/p99, sustained (saturation) throughput and the shed rate,
    and {!to_json} / {!sweep_to_json} render the [BENCH_serve.json]
    artifact. Fixed [seed] ⇒ a reproducible request sequence. *)

type config = {
  connect : unit -> in_channel * out_channel * (unit -> unit);
      (** fresh transport per worker; the thunk closes it *)
  concurrency : int;  (** closed-loop workers *)
  tenants : int;  (** distinct tenant identities in the mix *)
  requests_per_worker : int;
  batch : int;  (** input vectors per request *)
  seed : int;
  classify_share : float;
      (** fraction of requests sent as {!Wire.Classify_request} against
          the server's ["default"] crossbar classifier, oracle-checked
          against {!Classify.Model.predict}. 0 keeps the request stream
          byte-identical to an eval-only run. *)
}

type report = {
  label : string;
  concurrency : int;
  tenants : int;
  batch : int;
  requests : int;  (** issued = completed + shed + errors *)
  completed : int;
  shed : int;  (** answered {!Wire.Overloaded} *)
  errors : int;  (** answered {!Wire.Error_response} or transport death *)
  miscompares : int;  (** output vectors differing from the oracle *)
  vectors : int;  (** oracle-checked output vectors *)
  classified : int;  (** completed requests that were classification *)
  wall_s : float;
  throughput_rps : float;  (** completed / wall — saturation throughput *)
  shed_rate : float;  (** shed / requests *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
  mean_s : float;
  max_s : float;
}

val run : ?label:string -> config -> report

val profile_name : string
(** ["serve-loadgen"]: the {!Assess.Run.t} profile name. *)

val to_run : seed:int -> report list -> Assess.Run.t
(** Packages loadgen points as an {!Assess.Run.t}: one metric series per
    (label, field) pair, repeated same-label points stacking into one
    series. A single point per label means n=1 series, which
    {!Assess.Ab} compares by point estimate against the floor. *)

val to_json : report -> string

val sweep_to_json : report list -> string
(** One JSON document for a concurrency sweep: the highest-throughput
    point is promoted to the top level ([saturation_throughput_rps],
    [latency_s], [shed_rate]) with the full per-point table under
    ["sweep"]. *)
