(** Per-tenant compiled-PLA caches with quotas and two-level LRU
    eviction.

    Each tenant gets its own {!Runtime.Cache.t} capped at [quota]
    entries, so one tenant churning through thousands of programs can
    never evict another tenant's working set — {e within} a tenant the
    cache's own LRU applies, and those per-entry evictions are metered
    by the cache itself. Across tenants, at most [max_tenants] caches
    are kept; creating one beyond that evicts the least-recently-used
    {e tenant} wholesale (metered, with its discarded entry count
    carried into {!entry_evictions}).

    Thread-safe; all counts survive tenant eviction. *)

type t

val create : ?metrics:Runtime.Metrics.t -> ?max_tenants:int -> ?quota:int -> unit -> t
(** Defaults: 16 tenants, 32 compiled programs per tenant. With
    [metrics], maintains the [serve.tenants] gauge and
    [serve.tenant_evictions] counter. *)

val cache : t -> string -> Runtime.Cache.t
(** Find-or-create the named tenant's cache (touches its LRU slot; may
    evict the least-recently-used other tenant). *)

val quota : t -> int

val tenant_count : t -> int

val tenant_evictions : t -> int
(** Whole tenants evicted so far. *)

val entry_evictions : t -> int
(** Compiled entries lost to quota pressure: LRU evictions inside every
    live tenant cache, plus all entries (evicted or live) of tenants
    that were themselves evicted, counted at the moment of tenant
    eviction. Approximate under concurrency: a request that already
    holds an evicted tenant's cache may keep using the orphaned object,
    and activity in it after the eviction snapshot is not counted. *)

val stats : t -> (string * int) list
(** Live tenants with their current entry counts, most recently used
    first. *)
