module Cache = Runtime.Cache
module Metrics = Runtime.Metrics

type entry = { cache : Cache.t; mutable last_used : int }

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_tenants : int;
  quota : int;
  mutable clock : int;
  mutable tenant_evictions : int;
  mutable carried_entry_evictions : int;
      (* entry evictions recorded inside caches that have since been
         evicted, plus their live entries at eviction time — kept so
         [entry_evictions] never goes backwards when a tenant dies.
         Approximate under concurrency: a session thread that already
         holds an evicted tenant's cache can keep compiling into the
         orphaned object, and whatever it adds or evicts there after
         this snapshot is never counted. Metrics-only drift, accepted;
         an exact count would need weak references to dead caches. *)
  metrics : Metrics.t option;
}

let create ?metrics ?(max_tenants = 16) ?(quota = 32) () =
  if max_tenants < 1 then invalid_arg "Tenants.create: max_tenants < 1";
  if quota < 1 then invalid_arg "Tenants.create: quota < 1";
  let t =
    {
      lock = Mutex.create ();
      table = Hashtbl.create 16;
      max_tenants;
      quota;
      clock = 0;
      tenant_evictions = 0;
      carried_entry_evictions = 0;
      metrics;
    }
  in
  (match metrics with
  | Some m ->
    Metrics.register_gauge m "serve.tenants" (fun () ->
        Mutex.lock t.lock;
        let n = Hashtbl.length t.table in
        Mutex.unlock t.lock;
        float_of_int n)
  | None -> ());
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let evict_lru_tenant t =
  let victim = ref None in
  Hashtbl.iter
    (fun name e ->
      match !victim with
      | Some (_, _, age) when e.last_used >= age -> ()
      | _ -> victim := Some (name, e, e.last_used))
    t.table;
  match !victim with
  | None -> ()
  | Some (name, e, _) ->
    Hashtbl.remove t.table name;
    t.tenant_evictions <- t.tenant_evictions + 1;
    t.carried_entry_evictions <- t.carried_entry_evictions + Cache.evictions e.cache + Cache.size e.cache;
    (match t.metrics with Some m -> Metrics.incr_named m "serve.tenant_evictions" | None -> ());
    if Obs.Span.enabled () then Obs.Span.instant ~args:[ ("tenant", name) ] "serve.tenant_evicted"

let cache t name =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.table name with
      | Some e ->
        e.last_used <- t.clock;
        e.cache
      | None ->
        if Hashtbl.length t.table >= t.max_tenants then evict_lru_tenant t;
        let cache = Cache.create ~capacity:t.quota () in
        Hashtbl.replace t.table name { cache; last_used = t.clock };
        cache)

let quota t = t.quota

let tenant_count t = locked t (fun () -> Hashtbl.length t.table)

let tenant_evictions t = locked t (fun () -> t.tenant_evictions)

let entry_evictions t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> acc + Cache.evictions e.cache) t.table t.carried_entry_evictions)

let stats t =
  locked t (fun () ->
      Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.table []
      |> List.sort (fun (_, a) (_, b) -> compare b.last_used a.last_used)
      |> List.map (fun (name, e) -> (name, Cache.size e.cache)))
