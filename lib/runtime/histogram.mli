(** Thread-safe sample histograms with percentile queries.

    Observations are kept exactly (the evaluation workloads record
    thousands of latencies, not millions), so percentiles follow the same
    nearest-rank convention as {!Util.Stats.percentile} and the metrics
    dump agrees with offline analysis of the raw samples. All operations
    may be called from any domain. *)

type t

val create : unit -> t

val observe : t -> float -> unit

val count : t -> int

val sum : t -> float

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]; nearest-rank, identical to
    {!Util.Stats.percentile} on the same samples. 0 when empty. *)

val percentiles : t -> float list -> (float * float) list
(** [percentiles t ps] is [(p, percentile)] for each requested rank, all
    computed from one frozen snapshot sorted once — the one way every
    bench and the serve tier compute percentile families, so p50/p95/p99
    always describe the same sample set. *)

val snapshot : t -> float array
(** The observations so far, in observation order. *)

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : t -> summary

val reset : t -> unit

val pp_summary : Format.formatter -> summary -> unit
