(** Espresso + cover-kernel microbenchmarks.

    Measures, per MCNC Table-1 profile (synthetic twins of max46, apla and
    t2) and per small generator function: espresso minimize wall-time,
    cover set-operation throughput through the word-parallel packed kernel
    versus the retained byte-per-literal reference ({!Logic.Cube_naive}),
    and compiled-PLA evaluation throughput. Renders to
    [BENCH_espresso.json]. Shared by [cnfet_tool bench-espresso] and the
    [espresso] section of [bench/main.exe]. *)

type report = {
  name : string;
  n_in : int;
  n_out : int;
  cubes_before : int;  (** on-set cubes before minimization *)
  cubes_after : int;  (** cubes in the minimized cover *)
  lits_after : int;  (** literal total of the minimized cover *)
  minimize_s : float;  (** seconds per {!Espresso.Minimize.minimize} call *)
  iterations : int;  (** reduce/expand/irredundant rounds of that call *)
  packed_mops : float;  (** million cover set-ops per second, packed kernel *)
  naive_mops : float;  (** same workload through the naive reference *)
  op_speedup : float;  (** [packed_mops /. naive_mops] *)
  eval_mevals : float;  (** million compiled-PLA evaluations per second, scalar *)
  eval_block_mevals : float;  (** same workload through {!Cache.eval_block} *)
  block_speedup : float;  (** [eval_block_mevals /. eval_mevals] *)
  identical : bool;  (** packed and naive checksums agreed *)
  block_identical : bool;  (** blocked eval bit-identical to scalar eval *)
}

val run : ?metrics:Metrics.t -> ?quick:bool -> ?seed:int -> unit -> report list
(** Runs the benchmark set. [quick] (default false) shortens measurement
    windows and skips the generator functions — the CI smoke mode. The
    three Table-1 profiles are always measured. Registers the library
    gauges on [metrics] when given. *)

val hw_crosscheck : unit -> bool
(** Minimizes a 2-bit comparator, programs it onto a PLA and simulates
    the switch-level netlist against the compiled evaluator over all
    minterms; [true] iff every minterm agrees. Exercises the espresso,
    runtime and circuit subsystems, each under its tracing spans. *)

val geomean_speedup : report list -> float
(** Geometric mean of the packed-vs-naive op speedups. *)

val geomean_block_speedup : report list -> float
(** Geometric mean of the blocked-vs-scalar eval speedups. *)

val profile_name : quick:bool -> string
(** ["espresso-quick"] / ["espresso-full"]: the {!Assess.Run.t} profile
    names this bench emits. *)

val metrics_of_repeats : report list list -> Assess.Run.metric list
(** One metric series per (function, field) pair — sample [i] of every
    series comes from repeat [i], the pairing {!Assess.Ab} leans on —
    plus the two geomean series. Correctness flags ([identical],
    [block_identical]) ride along as 0/1 series. *)

val run_assess :
  ?metrics:Metrics.t ->
  ?quick:bool ->
  ?seed:int ->
  ?repeats:int ->
  unit ->
  report list * Assess.Run.t
(** Runs the bench [repeats] times (default 1) and packages every
    repeat's scalars as an {!Assess.Run.t} metric series. Returns the
    last repeat's reports (the derived [BENCH_espresso.json] view) and
    the run artifact. *)

val to_json : quick:bool -> seed:int -> report list -> string

val write_json : quick:bool -> seed:int -> path:string -> report list -> unit

val pp_report : Format.formatter -> report -> unit
