(* Compiled-PLA cache.

   Mapping a cover onto a PLA (espresso-free path: cube -> plane modes)
   and building its switch-level netlist are pure functions of the
   programmed cover — the cube list plus the output-polarity
   configuration. The cache keys on an MD5 digest of that content and
   memoises four artefacts per entry:

     - the mapped [Pla.t];
     - a compiled scalar evaluator: per-row masks / index lists that
       skip [Drop] crosspoints (bit-parallel over the inputs when they
       fit a native int), bit-identical to [Pla.eval];
     - a bit-sliced transposed evaluator: per-row column-index lists
       driven by words in which lane v (bit position v) carries input
       vector v, so one AND/NOR sweep evaluates 63 vectors at once
       ([eval_block]);
     - the switch-level netlist, built lazily on first use.

   Hits, misses and evictions are counted. Eviction is
   least-recently-used at a fixed capacity, tracked by an intrusive
   doubly-linked list threaded through the entries (touch and evict are
   O(1); no full-table scan). All operations are guarded by a mutex so
   batch workers can share one cache. *)

module Cover = Logic.Cover
module Cube = Logic.Cube
module Pla = Cnfet.Pla
module Plane = Cnfet.Plane
module Gnor = Cnfet.Gnor

type key = string

let key_of_cover ?inverted_outputs cover =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "i%d;o%d;" (Cover.num_inputs cover) (Cover.num_outputs cover));
  Array.iter
    (fun c ->
      (* The packed input words are canonical for the input part (padding
         bits always zero), so digest them directly instead of rendering
         the cube to text. *)
      Array.iter (fun w -> Buffer.add_int64_le buf (Int64.of_int w)) (Cube.raw_words c);
      Util.Bitvec.iter_set
        (fun o -> Buffer.add_string buf (string_of_int o ^ ","))
        (Cube.outputs c);
      Buffer.add_char buf '\n')
    (Cover.to_array cover);
  Buffer.add_string buf "pol:";
  (match inverted_outputs with
  | None -> Buffer.add_char buf '.'
  | Some a -> Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) a);
  Digest.string (Buffer.contents buf)

(* --- compiled evaluator ------------------------------------------------ *)

(* A GNOR row is the NOR of its contributions: a [Pass] crosspoint
   contributes the input, an [Invert] one its complement, a [Drop] one
   nothing. Row i is therefore high iff no Pass input is 1 and no Invert
   input is 0. With <= 62 columns the row compiles to two masks and the
   whole test is two ANDs; otherwise to index lists that still skip every
   Drop crosspoint. *)
type row =
  | Masked of { pass : int; invert : int }
  | Indexed of { pass : int array; invert : int array }

(* The same row in bit-sliced form: explicit column-index lists, uniform
   for both the Masked and the Indexed case. [eval_block] walks them with
   one word op per non-Drop crosspoint, each op covering 63 vectors. *)
type srow = { s_pass : int array; s_invert : int array }

let lanes_per_word = 63

type block = { words : int array; lanes : int }

let compile_plane plane =
  let cols = Plane.cols plane in
  Array.init (Plane.rows plane) (fun r ->
      let modes = Plane.row_modes plane r in
      if cols <= 62 then begin
        let pass = ref 0 and invert = ref 0 in
        Array.iteri
          (fun c m ->
            match m with
            | Gnor.Pass -> pass := !pass lor (1 lsl c)
            | Gnor.Invert -> invert := !invert lor (1 lsl c)
            | Gnor.Drop -> ())
          modes;
        Masked { pass = !pass; invert = !invert }
      end
      else begin
        let pass = ref [] and invert = ref [] in
        Array.iteri
          (fun c m ->
            match m with
            | Gnor.Pass -> pass := c :: !pass
            | Gnor.Invert -> invert := c :: !invert
            | Gnor.Drop -> ())
          modes;
        Indexed
          {
            pass = Array.of_list (List.rev !pass);
            invert = Array.of_list (List.rev !invert);
          }
      end)

(* Lower a compiled row onto the sliced lanes. The >62-column Indexed
   form already is a column-index list; Masked rows expand their masks.
   Arrays are copied so the scalar and sliced forms stay physically
   independent — the integrity checksum covers each separately. *)
let slice_of_row = function
  | Masked { pass; invert } ->
    let bits m =
      let l = ref [] in
      for c = 62 downto 0 do
        if m land (1 lsl c) <> 0 then l := c :: !l
      done;
      Array.of_list !l
    in
    { s_pass = bits pass; s_invert = bits invert }
  | Indexed { pass; invert } ->
    { s_pass = Array.copy pass; s_invert = Array.copy invert }

let eval_rows_into rows inputs out =
  let n = Array.length inputs in
  (* Pack once per evaluation; shared by every Masked row. *)
  let packed =
    if n <= 62 then begin
      let w = ref 0 in
      for i = 0 to n - 1 do
        if inputs.(i) then w := !w lor (1 lsl i)
      done;
      !w
    end
    else 0
  in
  for r = 0 to Array.length rows - 1 do
    out.(r) <-
      (match rows.(r) with
      | Masked { pass; invert } -> packed land pass = 0 && lnot packed land invert = 0
      | Indexed { pass; invert } ->
        (not (Array.exists (fun c -> inputs.(c)) pass))
        && not (Array.exists (fun c -> not inputs.(c)) invert))
  done

(* Reusable per-compiled buffers for the scalar path: the degenerate-shape
   padding and both plane-output arrays used to be allocated on every
   [eval] call. A single scratch is parked on the compiled entry and
   claimed with an atomic exchange — concurrent evaluators on other
   domains simply allocate a fresh one, so reuse is race-free without a
   lock on the hot path. *)
type scratch = { padded : bool array; products : bool array; sums : bool array }

(* The blocked path's equivalent: one word per AND row and per OR row,
   loaned the same way. *)
type bscratch = { bproducts : int array; bsums : int array }

type compiled = {
  pla : Pla.t;
  and_rows : row array;
  or_rows : row array;
  sand_rows : srow array;  (* bit-sliced AND plane *)
  sor_rows : srow array;  (* bit-sliced OR plane *)
  inverted : bool array;
  scratch : scratch option Atomic.t;
  bscratch : bscratch option Atomic.t;
  hw : Pla.hw Lazy.t;
}

let compile_pla pla =
  let and_rows = compile_plane (Pla.and_plane pla) in
  let or_rows = compile_plane (Pla.or_plane pla) in
  {
    pla;
    and_rows;
    or_rows;
    sand_rows = Array.map slice_of_row and_rows;
    sor_rows = Array.map slice_of_row or_rows;
    inverted = Array.init (Pla.num_outputs pla) (Pla.output_inverted pla);
    scratch = Atomic.make None;
    bscratch = Atomic.make None;
    hw = lazy (Pla.build_hw pla);
  }

let pla c = c.pla

let hw c = Lazy.force c.hw

(* --- checksums ---------------------------------------------------------- *)

(* A cheap integer digest over everything [eval] and [eval_block] read:
   both scalar row arrays, both sliced row arrays and the output-polarity
   vector. SplitMix64's finalizer gives good avalanche, so any single
   bit-flip in a mask, an index list, a sliced lane list or a polarity
   changes the digest. Recomputed on every serve and compared with the
   value recorded at compile time — the cache's defence against entries
   rotting in place (injected by [Fault.Inject], or real memory
   corruption in a long-lived server). *)
let mix h x =
  let h = Int64.logxor h (Int64.of_int x) in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let checksum_of_compiled c =
  let h = ref 0x9e3779b97f4a7c15L in
  let row r =
    match r with
    | Masked { pass; invert } ->
      h := mix !h 1;
      h := mix !h pass;
      h := mix !h invert
    | Indexed { pass; invert } ->
      h := mix !h 2;
      Array.iter (fun x -> h := mix !h x) pass;
      h := mix !h (-1);
      Array.iter (fun x -> h := mix !h x) invert
  in
  let srow s =
    h := mix !h 3;
    h := mix !h (Array.length s.s_pass);
    Array.iter (fun x -> h := mix !h x) s.s_pass;
    h := mix !h (Array.length s.s_invert);
    Array.iter (fun x -> h := mix !h x) s.s_invert
  in
  Array.iter row c.and_rows;
  h := mix !h (-2);
  Array.iter row c.or_rows;
  h := mix !h (-3);
  Array.iter srow c.sand_rows;
  h := mix !h (-4);
  Array.iter srow c.sor_rows;
  h := mix !h (-5);
  Array.iter (fun b -> h := mix !h (if b then 1 else 0)) c.inverted;
  Int64.to_int !h

(* Deterministic silent corruption for the chaos engine: flip the first
   output's polarity — both the scalar and the sliced evaluator read it,
   so [eval] and [eval_block] keep running but return wrong bits, which
   is exactly the failure the checksum must catch before serving. *)
let corrupt_compiled c =
  if Array.length c.inverted > 0 then c.inverted.(0) <- not c.inverted.(0)
  else if Array.length c.and_rows > 0 then begin
    c.and_rows.(0) <-
      (match c.and_rows.(0) with
      | Masked { pass; invert } -> Masked { pass = pass lxor 1; invert }
      | Indexed r -> Indexed { r with pass = Array.map succ r.pass });
    if Array.length c.sand_rows > 0 then begin
      let s = c.sand_rows.(0) in
      c.sand_rows.(0) <- { s_pass = s.s_invert; s_invert = s.s_pass }
    end
  end

(* Rot only the bit-sliced arrays, leaving the scalar rows intact: the
   next serve must still raise [Corrupt_entry], proving the checksum
   covers the transposed form and not just the scalar one. Pass/invert
   swapping keeps every index in range, so even a mistaken evaluation of
   the rotten entry stays memory-safe. *)
let corrupt_block_compiled c =
  let swap rows =
    let found = ref false in
    Array.iteri
      (fun i s ->
        if (not !found) && Array.length s.s_pass + Array.length s.s_invert > 0 then begin
          found := true;
          rows.(i) <- { s_pass = s.s_invert; s_invert = s.s_pass }
        end)
      rows;
    !found
  in
  if not (swap c.sand_rows) then
    if not (swap c.sor_rows) then
      if Array.length c.inverted > 0 then c.inverted.(0) <- not c.inverted.(0)

(* --- scalar evaluation --------------------------------------------------- *)

let alloc_scratch c =
  {
    padded = Array.make (Plane.cols (Pla.and_plane c.pla)) false;
    products = Array.make (Array.length c.and_rows) false;
    sums = Array.make (Array.length c.or_rows) false;
  }

let eval c inputs =
  let n_in = Pla.num_inputs c.pla in
  if Array.length inputs <> n_in then invalid_arg "Cache.eval";
  let s =
    match Atomic.exchange c.scratch None with Some s -> s | None -> alloc_scratch c
  in
  let padded =
    (* Degenerate shapes pad the AND plane to at least one column; the
       scratch pad's suffix is never written, so it stays false. *)
    if Array.length s.padded = n_in then inputs
    else begin
      Array.blit inputs 0 s.padded 0 n_in;
      s.padded
    end
  in
  eval_rows_into c.and_rows padded s.products;
  eval_rows_into c.or_rows s.products s.sums;
  let result =
    Array.init (Array.length c.inverted) (fun o ->
        if c.inverted.(o) then not s.sums.(o) else s.sums.(o))
  in
  Atomic.set c.scratch (Some s);
  result

(* --- bit-sliced (transposed) evaluation ----------------------------------- *)

let lane_mask lanes = if lanes >= lanes_per_word then -1 else (1 lsl lanes) - 1

let transpose vectors ~first ~lanes =
  if lanes < 0 || lanes > lanes_per_word then invalid_arg "Cache.transpose: lanes";
  if first < 0 || first + lanes > Array.length vectors then
    invalid_arg "Cache.transpose: vector range";
  let n_in = if lanes = 0 then 0 else Array.length vectors.(first) in
  let words = Array.make n_in 0 in
  for v = 0 to lanes - 1 do
    let row = vectors.(first + v) in
    if Array.length row <> n_in then invalid_arg "Cache.transpose: ragged batch";
    (* Branchless: a bool is already 0/1, so shift it into the lane
       instead of testing it — random input bits would mispredict half
       the time. *)
    for c = 0 to n_in - 1 do
      Array.unsafe_set words c
        (Array.unsafe_get words c lor (Bool.to_int (Array.unsafe_get row c) lsl v))
    done
  done;
  { words; lanes }

let untranspose words ~lanes =
  if lanes < 0 || lanes > lanes_per_word then invalid_arg "Cache.untranspose: lanes";
  let n = Array.length words in
  Array.init lanes (fun v ->
      let bit = 1 lsl v in
      Array.init n (fun c -> words.(c) land bit <> 0))

(* One plane sweep: for each row, AND together the complements of its
   Pass columns and its Invert columns — the GNOR test, 63 vectors per
   word op. Bits above [lanes] carry garbage mid-pipeline; the output
   stage masks them off. *)
(* Sliced column indices are compile-derived and always in range for the
   plane they index (every corruption path preserves that invariant), so
   the word reads skip the bounds check — it is the hot loop. *)
let eval_srows_into srows words out =
  for r = 0 to Array.length srows - 1 do
    let s = Array.unsafe_get srows r in
    let acc = ref (-1) in
    let pass = s.s_pass in
    for i = 0 to Array.length pass - 1 do
      acc := !acc land lnot (Array.unsafe_get words (Array.unsafe_get pass i))
    done;
    let invert = s.s_invert in
    for i = 0 to Array.length invert - 1 do
      acc := !acc land Array.unsafe_get words (Array.unsafe_get invert i)
    done;
    Array.unsafe_set out r !acc
  done

let alloc_bscratch c =
  {
    bproducts = Array.make (Array.length c.sand_rows) 0;
    bsums = Array.make (Array.length c.sor_rows) 0;
  }

let eval_block c { words; lanes } =
  let n_in = Pla.num_inputs c.pla in
  if lanes < 0 || lanes > lanes_per_word then invalid_arg "Cache.eval_block: lanes";
  if Array.length words <> n_in then invalid_arg "Cache.eval_block: input width";
  let cols = Plane.cols (Pla.and_plane c.pla) in
  let words =
    (* Degenerate shapes pad the AND plane to at least one column; a
       padded column reads as constant-0 lanes, like the scalar path's
       false padding. *)
    if cols = n_in then words else Array.append words (Array.make (cols - n_in) 0)
  in
  let s =
    match Atomic.exchange c.bscratch None with Some s -> s | None -> alloc_bscratch c
  in
  eval_srows_into c.sand_rows words s.bproducts;
  eval_srows_into c.sor_rows s.bproducts s.bsums;
  let m = lane_mask lanes in
  let sums = s.bsums in
  let result =
    Array.init (Array.length c.inverted) (fun o ->
        (if c.inverted.(o) then lnot sums.(o) else sums.(o)) land m)
  in
  Atomic.set c.bscratch (Some s);
  result

(* --- the cache proper --------------------------------------------------- *)

(* Entries carry their own LRU links: [prev] points toward the head
   (most recently used), [next] toward the tail (the eviction victim).
   Touch and evict are O(1) pointer splices under the cache lock. *)
type entry = {
  ekey : key;
  compiled : compiled;
  check : int;
  mutable prev : entry option;
  mutable next : entry option;
}

exception Corrupt_entry of { key : key }

let () =
  Printexc.register_printer (function
    | Corrupt_entry { key } ->
      Some (Printf.sprintf "Cache.Corrupt_entry (key %s)" (Digest.to_hex key))
    | _ -> None)

type t = {
  lock : Mutex.t;
  table : (key, entry) Hashtbl.t;
  capacity : int;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corruptions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    corruptions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let remove_entry t e =
  unlink t e;
  Hashtbl.remove t.table e.ekey

let evict_lru t =
  match t.tail with
  | Some victim ->
    remove_entry t victim;
    t.evictions <- t.evictions + 1
  | None -> ()

(* Returns the compiled entry plus whether it was already cached, so
   callers that care (the serve layer reports cache_hit per request)
   get the answer for this call alone instead of racing on the shared
   [hits] counter. *)
let find_or_compile t key build =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        unlink t e;
        push_front t e;
        (* Serve-time integrity check: never hand out an entry whose
           content no longer matches the digest recorded at compile
           time. The rotten entry is evicted so a retry recompiles. *)
        if checksum_of_compiled e.compiled <> e.check then begin
          t.corruptions <- t.corruptions + 1;
          remove_entry t e;
          if Obs.Span.enabled () then Obs.Span.instant "cache.corruption_detected";
          raise (Corrupt_entry { key })
        end;
        (e.compiled, true)
      | None ->
        t.misses <- t.misses + 1;
        let compiled = Obs.Span.with_ "cache.compile" build in
        let check = checksum_of_compiled compiled in
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        let e = { ekey = key; compiled; check; prev = None; next = None } in
        Hashtbl.replace t.table key e;
        push_front t e;
        (* Chaos hook: a freshly stored entry may rot immediately. The
           just-built value is the stored value, so verify before
           returning it — the caller must never evaluate through a
           corrupt entry. *)
        (match Fault.Inject.tap (Fault.Inject.Cache_store { key }) with
        | Fault.Inject.Corrupt -> corrupt_compiled compiled
        | _ -> ());
        if checksum_of_compiled compiled <> check then begin
          t.corruptions <- t.corruptions + 1;
          remove_entry t e;
          if Obs.Span.enabled () then Obs.Span.instant "cache.corruption_detected";
          raise (Corrupt_entry { key })
        end;
        (compiled, false))

let compile_hit t ?inverted_outputs cover =
  let key = key_of_cover ?inverted_outputs cover in
  find_or_compile t key (fun () -> compile_pla (Pla.of_cover ?inverted_outputs cover))

let compile t ?inverted_outputs cover = fst (compile_hit t ?inverted_outputs cover)

let compile_of_pla_hit t pla_v =
  (* Key on the planes' programmed content rather than a source cover. *)
  let buf = Buffer.create 256 in
  let add_plane p =
    Buffer.add_string buf (Printf.sprintf "%dx%d:" (Plane.rows p) (Plane.cols p));
    Plane.iter
      (fun _ _ m ->
        Buffer.add_char buf
          (match m with Gnor.Pass -> 'p' | Gnor.Invert -> 'i' | Gnor.Drop -> '.'))
      p
  in
  add_plane (Pla.and_plane pla_v);
  Buffer.add_char buf '|';
  add_plane (Pla.or_plane pla_v);
  Buffer.add_string buf "pol:";
  for o = 0 to Pla.num_outputs pla_v - 1 do
    Buffer.add_char buf (if Pla.output_inverted pla_v o then '1' else '0')
  done;
  let key = Digest.string (Buffer.contents buf) in
  find_or_compile t key (fun () -> compile_pla pla_v)

let compile_of_pla t pla_v = fst (compile_of_pla_hit t pla_v)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let corruptions t = locked t (fun () -> t.corruptions)
let size t = locked t (fun () -> Hashtbl.length t.table)

let corrupt_for_test = corrupt_compiled
let corrupt_block_for_test = corrupt_block_compiled

let hit_rate t =
  locked t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total)

let export_metrics t m =
  Metrics.register_gauge m "cache.entries" (fun () -> float_of_int (size t));
  Metrics.register_gauge m "cache.hits" (fun () -> float_of_int (hits t));
  Metrics.register_gauge m "cache.misses" (fun () -> float_of_int (misses t));
  Metrics.register_gauge m "cache.evictions" (fun () -> float_of_int (evictions t));
  Metrics.register_gauge m "cache.corruptions_detected" (fun () -> float_of_int (corruptions t));
  Metrics.register_gauge m "cache.hit_rate" (fun () -> hit_rate t)
