(* Compiled-PLA cache.

   Mapping a cover onto a PLA (espresso-free path: cube -> plane modes)
   and building its switch-level netlist are pure functions of the
   programmed cover — the cube list plus the output-polarity
   configuration. The cache keys on an MD5 digest of that content and
   memoises three artefacts per entry:

     - the mapped [Pla.t];
     - a compiled evaluator: per-row closures over precomputed masks /
       index lists that skip [Drop] crosspoints (bit-parallel over the
       inputs when they fit a native int), bit-identical to [Pla.eval];
     - the switch-level netlist, built lazily on first use.

   Hits, misses and evictions are counted. Eviction is
   least-recently-used at a fixed capacity. All operations are guarded by
   a mutex so batch workers can share one cache. *)

module Cover = Logic.Cover
module Cube = Logic.Cube
module Pla = Cnfet.Pla
module Plane = Cnfet.Plane
module Gnor = Cnfet.Gnor

type key = string

let key_of_cover ?inverted_outputs cover =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "i%d;o%d;" (Cover.num_inputs cover) (Cover.num_outputs cover));
  Array.iter
    (fun c ->
      (* The packed input words are canonical for the input part (padding
         bits always zero), so digest them directly instead of rendering
         the cube to text. *)
      Array.iter (fun w -> Buffer.add_int64_le buf (Int64.of_int w)) (Cube.raw_words c);
      Util.Bitvec.iter_set
        (fun o -> Buffer.add_string buf (string_of_int o ^ ","))
        (Cube.outputs c);
      Buffer.add_char buf '\n')
    (Cover.to_array cover);
  Buffer.add_string buf "pol:";
  (match inverted_outputs with
  | None -> Buffer.add_char buf '.'
  | Some a -> Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) a);
  Digest.string (Buffer.contents buf)

(* --- compiled evaluator ------------------------------------------------ *)

(* A GNOR row is the NOR of its contributions: a [Pass] crosspoint
   contributes the input, an [Invert] one its complement, a [Drop] one
   nothing. Row i is therefore high iff no Pass input is 1 and no Invert
   input is 0. With <= 62 columns the row compiles to two masks and the
   whole test is two ANDs; otherwise to index lists that still skip every
   Drop crosspoint. *)
type row =
  | Masked of { pass : int; invert : int }
  | Indexed of { pass : int array; invert : int array }

let compile_plane plane =
  let cols = Plane.cols plane in
  Array.init (Plane.rows plane) (fun r ->
      let modes = Plane.row_modes plane r in
      if cols <= 62 then begin
        let pass = ref 0 and invert = ref 0 in
        Array.iteri
          (fun c m ->
            match m with
            | Gnor.Pass -> pass := !pass lor (1 lsl c)
            | Gnor.Invert -> invert := !invert lor (1 lsl c)
            | Gnor.Drop -> ())
          modes;
        Masked { pass = !pass; invert = !invert }
      end
      else begin
        let pass = ref [] and invert = ref [] in
        Array.iteri
          (fun c m ->
            match m with
            | Gnor.Pass -> pass := c :: !pass
            | Gnor.Invert -> invert := c :: !invert
            | Gnor.Drop -> ())
          modes;
        Indexed
          {
            pass = Array.of_list (List.rev !pass);
            invert = Array.of_list (List.rev !invert);
          }
      end)

let eval_rows rows inputs =
  let n = Array.length inputs in
  (* Pack once per evaluation; shared by every Masked row. *)
  let packed =
    if n <= 62 then begin
      let w = ref 0 in
      for i = 0 to n - 1 do
        if inputs.(i) then w := !w lor (1 lsl i)
      done;
      !w
    end
    else 0
  in
  Array.map
    (fun row ->
      match row with
      | Masked { pass; invert } -> packed land pass = 0 && lnot packed land invert = 0
      | Indexed { pass; invert } ->
        (not (Array.exists (fun c -> inputs.(c)) pass))
        && not (Array.exists (fun c -> not inputs.(c)) invert))
    rows

type compiled = {
  pla : Pla.t;
  and_rows : row array;
  or_rows : row array;
  inverted : bool array;
  hw : Pla.hw Lazy.t;
}

let compile_pla pla =
  {
    pla;
    and_rows = compile_plane (Pla.and_plane pla);
    or_rows = compile_plane (Pla.or_plane pla);
    inverted = Array.init (Pla.num_outputs pla) (Pla.output_inverted pla);
    hw = lazy (Pla.build_hw pla);
  }

let pla c = c.pla

let hw c = Lazy.force c.hw

(* --- checksums ---------------------------------------------------------- *)

(* A cheap integer digest over everything [eval] reads: both row arrays
   and the output-polarity vector. SplitMix64's finalizer gives good
   avalanche, so any single bit-flip in a mask, an index list or a
   polarity changes the digest. Recomputed on every serve and compared
   with the value recorded at compile time — the cache's defence against
   entries rotting in place (injected by [Fault.Inject], or real memory
   corruption in a long-lived server). *)
let mix h x =
  let h = Int64.logxor h (Int64.of_int x) in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let checksum_of_compiled c =
  let h = ref 0x9e3779b97f4a7c15L in
  let row r =
    match r with
    | Masked { pass; invert } ->
      h := mix !h 1;
      h := mix !h pass;
      h := mix !h invert
    | Indexed { pass; invert } ->
      h := mix !h 2;
      Array.iter (fun x -> h := mix !h x) pass;
      h := mix !h (-1);
      Array.iter (fun x -> h := mix !h x) invert
  in
  Array.iter row c.and_rows;
  h := mix !h (-2);
  Array.iter row c.or_rows;
  h := mix !h (-3);
  Array.iter (fun b -> h := mix !h (if b then 1 else 0)) c.inverted;
  Int64.to_int !h

(* Deterministic silent corruption for the chaos engine: flip the first
   output's polarity — [eval] keeps running but returns wrong bits, which
   is exactly the failure the checksum must catch before serving. *)
let corrupt_compiled c =
  if Array.length c.inverted > 0 then c.inverted.(0) <- not c.inverted.(0)
  else if Array.length c.and_rows > 0 then
    c.and_rows.(0) <-
      (match c.and_rows.(0) with
      | Masked { pass; invert } -> Masked { pass = pass lxor 1; invert }
      | Indexed r -> Indexed { r with pass = Array.map succ r.pass })

let eval c inputs =
  if Array.length inputs <> Pla.num_inputs c.pla then invalid_arg "Cache.eval";
  let padded =
    (* Degenerate shapes pad the AND plane to at least one column. *)
    let cols = Plane.cols (Pla.and_plane c.pla) in
    if Array.length inputs = cols then inputs
    else Array.append inputs (Array.make (cols - Array.length inputs) false)
  in
  let products = eval_rows c.and_rows padded in
  let rows = eval_rows c.or_rows products in
  Array.init (Array.length c.inverted) (fun o ->
      if c.inverted.(o) then not rows.(o) else rows.(o))

(* --- the cache proper --------------------------------------------------- *)

type entry = { compiled : compiled; check : int; mutable last_used : int }

exception Corrupt_entry of { key : key }

let () =
  Printexc.register_printer (function
    | Corrupt_entry { key } ->
      Some (Printf.sprintf "Cache.Corrupt_entry (key %s)" (Digest.to_hex key))
    | _ -> None)

type t = {
  lock : Mutex.t;
  table : (key, entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corruptions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    corruptions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when e.last_used >= age -> ()
      | _ -> victim := Some (k, e.last_used))
    t.table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1
  | None -> ()

(* Returns the compiled entry plus whether it was already cached, so
   callers that care (the serve layer reports cache_hit per request)
   get the answer for this call alone instead of racing on the shared
   [hits] counter. *)
let find_or_compile t key build =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.table key with
      | Some e ->
        t.hits <- t.hits + 1;
        e.last_used <- t.clock;
        (* Serve-time integrity check: never hand out an entry whose
           content no longer matches the digest recorded at compile
           time. The rotten entry is evicted so a retry recompiles. *)
        if checksum_of_compiled e.compiled <> e.check then begin
          t.corruptions <- t.corruptions + 1;
          Hashtbl.remove t.table key;
          if Obs.Span.enabled () then Obs.Span.instant "cache.corruption_detected";
          raise (Corrupt_entry { key })
        end;
        (e.compiled, true)
      | None ->
        t.misses <- t.misses + 1;
        let compiled = Obs.Span.with_ "cache.compile" build in
        let check = checksum_of_compiled compiled in
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        Hashtbl.replace t.table key { compiled; check; last_used = t.clock };
        (* Chaos hook: a freshly stored entry may rot immediately. The
           just-built value is the stored value, so verify before
           returning it — the caller must never evaluate through a
           corrupt entry. *)
        (match Fault.Inject.tap (Fault.Inject.Cache_store { key }) with
        | Fault.Inject.Corrupt -> corrupt_compiled compiled
        | _ -> ());
        if checksum_of_compiled compiled <> check then begin
          t.corruptions <- t.corruptions + 1;
          Hashtbl.remove t.table key;
          if Obs.Span.enabled () then Obs.Span.instant "cache.corruption_detected";
          raise (Corrupt_entry { key })
        end;
        (compiled, false))

let compile_hit t ?inverted_outputs cover =
  let key = key_of_cover ?inverted_outputs cover in
  find_or_compile t key (fun () -> compile_pla (Pla.of_cover ?inverted_outputs cover))

let compile t ?inverted_outputs cover = fst (compile_hit t ?inverted_outputs cover)

let compile_of_pla t pla_v =
  (* Key on the planes' programmed content rather than a source cover. *)
  let buf = Buffer.create 256 in
  let add_plane p =
    Buffer.add_string buf (Printf.sprintf "%dx%d:" (Plane.rows p) (Plane.cols p));
    Plane.iter
      (fun _ _ m ->
        Buffer.add_char buf
          (match m with Gnor.Pass -> 'p' | Gnor.Invert -> 'i' | Gnor.Drop -> '.'))
      p
  in
  add_plane (Pla.and_plane pla_v);
  Buffer.add_char buf '|';
  add_plane (Pla.or_plane pla_v);
  Buffer.add_string buf "pol:";
  for o = 0 to Pla.num_outputs pla_v - 1 do
    Buffer.add_char buf (if Pla.output_inverted pla_v o then '1' else '0')
  done;
  let key = Digest.string (Buffer.contents buf) in
  fst (find_or_compile t key (fun () -> compile_pla pla_v))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let corruptions t = locked t (fun () -> t.corruptions)
let size t = locked t (fun () -> Hashtbl.length t.table)

let corrupt_for_test = corrupt_compiled

let hit_rate t =
  locked t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total)

let export_metrics t m =
  Metrics.register_gauge m "cache.entries" (fun () -> float_of_int (size t));
  Metrics.register_gauge m "cache.hits" (fun () -> float_of_int (hits t));
  Metrics.register_gauge m "cache.misses" (fun () -> float_of_int (misses t));
  Metrics.register_gauge m "cache.evictions" (fun () -> float_of_int (evictions t));
  Metrics.register_gauge m "cache.corruptions_detected" (fun () -> float_of_int (corruptions t));
  Metrics.register_gauge m "cache.hit_rate" (fun () -> hit_rate t)
