(** Sequential-vs-parallel evaluation harness.

    Each workload runs its sequential reference, then the same work
    through {!Batch} on a {!Pool}, verifies the results are bit-identical
    and reports both wall times. Used by the [bench-parallel] CLI
    subcommand and the [parallel] section of [bench/main.exe]; results
    render to machine-readable JSON ([BENCH_runtime.json]). *)

type report = {
  name : string;
  items : int;  (** vectors / trials processed per leg *)
  seq_s : float;
  par_s : float;
  speedup : float;  (** [seq_s /. par_s] *)
  identical : bool;  (** parallel output bit-identical to sequential *)
}

val time : (unit -> 'a) -> 'a * float
(** Wall-clock an evaluation. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (shared by the
    espresso bench's renderer). *)

val hw_sweep : ?metrics:Metrics.t -> Pool.t -> report
(** Exhaustive switch-level truth-table sweeps over the MCNC generator
    functions with ≤ 7 inputs. *)

val compiled_sweep : ?metrics:Metrics.t -> cache:Cache.t -> rounds:int -> Pool.t -> report
(** Repeated functional sweeps through cache-compiled evaluators
    ([rounds] requests over the working set; first round misses, the rest
    hit). Also cross-checks compiled output against [Pla.eval]. *)

val yield_mc : ?metrics:Metrics.t -> seed:int -> trials:int -> Pool.t -> report
(** Monte-Carlo functional yield (cmp3, 2% defects, 3 spares) on split
    rngs. *)

val variation_mc : ?metrics:Metrics.t -> seed:int -> trials:int -> Pool.t -> report
(** Device-variation timing Monte-Carlo (max46 profile). *)

val run : ?metrics:Metrics.t -> ?cache:Cache.t -> ?seed:int -> ?trials:int -> jobs:int -> unit -> report list
(** All four workloads on a fresh pool of [jobs] domains. [trials]
    (default 1000) sizes the yield Monte-Carlo; the variation Monte-Carlo
    uses [8 × trials]. Registers library and cache gauges on [metrics]
    when given. *)

val profile_name : string
(** ["parallel"]: the {!Assess.Run.t} profile name this bench emits. *)

val metrics_of_repeats : report list list -> Assess.Run.metric list
(** One metric series per (workload, field) — [seq_s]/[par_s] (lower is
    better), [speedup] and the 0/1 [identical] flag — with sample [i]
    taken from repeat [i]. *)

val run_assess :
  ?metrics:Metrics.t ->
  ?cache:Cache.t ->
  ?seed:int ->
  ?trials:int ->
  ?repeats:int ->
  jobs:int ->
  unit ->
  report list * Assess.Run.t
(** Runs {!run} [repeats] times (default 1) and packages the scalars as
    an {!Assess.Run.t}; returns the last repeat's reports for the
    derived [BENCH_runtime.json] view. *)

val to_json : ?cache:Cache.t -> ?metrics:Metrics.t -> jobs:int -> report list -> string

val write_json : ?cache:Cache.t -> ?metrics:Metrics.t -> jobs:int -> path:string -> report list -> unit

val pp_report : Format.formatter -> report -> unit
