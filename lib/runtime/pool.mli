(** Fixed-size worker pool on OCaml 5 domains.

    A FIFO task queue guarded by a mutex/condition pair feeds [jobs]
    worker domains. Submitting returns a future; awaiting re-raises the
    task's exception (with its backtrace) at the join point, so parallel
    failures surface exactly where sequential ones would. Shutdown is
    graceful: queued tasks drain before the domains are joined. *)

type t

type 'a future

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the submitting domain. *)

val create : ?metrics:Metrics.t -> ?jobs:int -> unit -> t
(** Spawn the worker domains. [jobs] defaults to {!default_jobs}; it is
    clamped to at least 1. With [metrics], the pool maintains the
    [pool.tasks] counter, the [pool.queue_depth] gauge, per-domain
    [pool.domain<i>.busy_s] gauges and the [pool.task_latency_s]
    histogram. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completed; re-raise its exception if it failed. *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** Submit every thunk, then await them in submission order — the result
    array lines up index-for-index with the input, and the first failing
    index (not the first to fail in wall time) is the exception that
    propagates. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every worker domain. Idempotent. *)

val with_pool : ?metrics:Metrics.t -> ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} even on exceptions. *)
