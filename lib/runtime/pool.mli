(** Fixed-size worker pool on OCaml 5 domains, with crash isolation.

    A FIFO task queue guarded by a mutex/condition pair feeds [jobs]
    worker domains. Submitting returns a future; awaiting re-raises the
    task's exception (with its backtrace) at the join point, so parallel
    failures surface exactly where sequential ones would. Shutdown is
    graceful: queued tasks drain before the domains are joined.

    A poisoned task — an exception escaping the task wrapper itself, as
    injected by {!Fault.Inject} worker-crash decisions — fails alone: its
    future is failed (joiners never hang), the crash is counted, and the
    pool spawns a replacement domain and keeps draining. With [metrics],
    crashes and respawns appear as [pool.worker_crashes] /
    [pool.respawns]. *)

type t

type 'a future

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the submitting domain. *)

val create : ?metrics:Metrics.t -> ?jobs:int -> unit -> t
(** Spawn the worker domains. [jobs] defaults to {!default_jobs}; it is
    clamped to at least 1. With [metrics], the pool maintains the
    [pool.tasks] counter, the [pool.queue_depth] gauge, per-domain
    [pool.domain<i>.busy_s] gauges and the [pool.task_latency_s]
    histogram. *)

val jobs : t -> int

val crashes : t -> int
(** Worker domains poisoned (and replaced) so far. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completed; re-raise its exception if it failed. *)

val await_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Blocking fan-in that never raises: the task's failure is a value, so
    a caller draining many futures can collect every outcome before
    deciding what to re-raise. *)

val peek : 'a future -> ('a, exn * Printexc.raw_backtrace) result option
(** Non-blocking: [None] while the task is still pending. The building
    block for deadline-bounded awaiting ({!Supervisor}). *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** Submit every thunk, then await them in submission order. Every
    future is drained — a failing task never abandons its queued
    siblings — and only then is the failure with the smallest submission
    index re-raised (what a sequential run would have hit first, not the
    first to fail in wall time). *)

exception Shutdown
(** Failure recorded on a queued-but-unstarted task's future when
    {!shutdown} discards it: joiners unblock with this instead of waiting
    on work that will never start. *)

val drain : t -> unit
(** Graceful stop: reject new submissions ({!submit} raises from here
    on), finish every queued and inflight task, then join every worker
    domain ever spawned — including replacements for crashed workers and
    the corpses they replaced. Idempotent and safe under concurrent
    callers: every caller blocks until the pool is fully stopped, no
    matter who got there first or how many workers died mid-task. *)

val shutdown : t -> unit
(** Fast stop: like {!drain}, but queued tasks that no worker has started
    yet are discarded — their futures fail with {!Shutdown} — so only
    tasks already inflight run to completion before the domains are
    joined. Same idempotence and concurrent-caller guarantees as
    {!drain}. The entry point for signal handlers. *)

val with_pool : ?metrics:Metrics.t -> ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!drain} even on exceptions. *)
