(* Recovery layer over the pool. The pool isolates failures (a poisoned
   task fails alone); this module decides what to do about them: wait no
   longer than a deadline, retry with decorrelated-jitter backoff, trip a
   circuit breaker when the compiled cache keeps serving rot, and stop
   trusting the pool altogether once it has burned through too many
   workers. Time and sleeping are injected so every schedule runs under
   [Obs.Clock.fixed_step] in tests without real waiting. *)

module Backoff = struct
  type policy = { base_s : float; cap_s : float }

  let default = { base_s = 1e-3; cap_s = 0.25 }

  (* AWS-style "decorrelated jitter": each delay is drawn uniformly from
     [base, 3 * prev], so the envelope grows exponentially while
     concurrent retries spread out instead of thundering together. *)
  let next p rng ~prev_s =
    let prev = if prev_s <= 0. then p.base_s else prev_s in
    let hi = Float.max p.base_s (3. *. prev) in
    Float.min p.cap_s (p.base_s +. (Util.Rng.float rng 1.0 *. (hi -. p.base_s)))

  let schedule p rng ~attempts =
    let rec go prev k acc =
      if k <= 0 then List.rev acc
      else
        let d = next p rng ~prev_s:prev in
        go d (k - 1) (d :: acc)
    in
    go 0. attempts []
end

exception Deadline_exceeded of { label : string; deadline_s : float; attempt : int }

exception Retries_exhausted of { label : string; attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { label; deadline_s; attempt } ->
      Some
        (Printf.sprintf "Supervisor.Deadline_exceeded (%s: attempt %d outlived %gs)" label
           attempt deadline_s)
    | Retries_exhausted { label; attempts; last } ->
      Some
        (Printf.sprintf "Supervisor.Retries_exhausted (%s: %d attempts, last: %s)" label
           attempts (Printexc.to_string last))
    | _ -> None)

type config = {
  max_attempts : int;
  deadline_s : float option;
  backoff : Backoff.policy;
  poll_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  crash_tolerance : int;
}

let default_config =
  {
    max_attempts = 3;
    deadline_s = None;
    backoff = Backoff.default;
    poll_s = 5e-4;
    breaker_threshold = 3;
    breaker_cooldown_s = 0.05;
    crash_tolerance = 8;
  }

type breaker_state = Closed | Open | Half_open

type t = {
  pool : Pool.t;
  metrics : Metrics.t option;
  clock : Obs.Clock.t;
  sleep : float -> unit;
  cfg : config;
  jitter : Util.Rng.t;
  jitter_lock : Mutex.t;
  breaker_lock : Mutex.t;
  mutable breaker : breaker_state;
  mutable strikes : int;  (* consecutive cache corruptions while closed *)
  mutable opened_s : float;  (* clock reading when the breaker opened *)
}

let tick ?(by = 1) t name =
  match t.metrics with Some m -> Metrics.incr_named ~by m name | None -> ()

let create ?metrics ?(clock = Obs.Clock.monotonic) ?(sleep = Unix.sleepf) ?(seed = 0)
    ?(config = default_config) pool =
  if config.max_attempts < 1 then invalid_arg "Supervisor.create: max_attempts < 1";
  if config.breaker_threshold < 1 then invalid_arg "Supervisor.create: breaker_threshold < 1";
  let t =
    {
      pool;
      metrics;
      clock;
      sleep;
      cfg = config;
      jitter = Util.Rng.create seed;
      jitter_lock = Mutex.create ();
      breaker_lock = Mutex.create ();
      breaker = Closed;
      strikes = 0;
      opened_s = 0.;
    }
  in
  (match metrics with
  | Some m ->
    Metrics.register_gauge m "supervisor.breaker_state" (fun () ->
        Mutex.lock t.breaker_lock;
        let s = t.breaker in
        Mutex.unlock t.breaker_lock;
        match s with Closed -> 0. | Half_open -> 1. | Open -> 2.)
  | None -> ());
  t

let pool t = t.pool

let config t = t.cfg

let healthy t = Pool.crashes t.pool <= t.cfg.crash_tolerance

let next_delay t ~prev_s =
  Mutex.lock t.jitter_lock;
  let d = Backoff.next t.cfg.backoff t.jitter ~prev_s in
  Mutex.unlock t.jitter_lock;
  d

let now_s t = Int64.to_float (t.clock ()) /. 1e9

(* Wait for a future, but no longer than the configured deadline: poll
   [Pool.peek] and hand the interim back to the injected sleep. The
   abandoned task keeps running in the pool; only its result is
   dropped. *)
let await_deadline t fut ~label ~attempt =
  match t.cfg.deadline_s with
  | None -> Pool.await_result fut
  | Some deadline_s ->
    let start = now_s t in
    let rec wait () =
      match Pool.peek fut with
      | Some outcome -> outcome
      | None ->
        if now_s t -. start >= deadline_s then begin
          tick t "supervisor.deadline_expiries";
          Obs.Span.instant
            ~args:[ ("label", label); ("attempt", string_of_int attempt) ]
            "supervisor.deadline_exceeded";
          Error (Deadline_exceeded { label; deadline_s; attempt }, Printexc.get_callstack 0)
        end
        else begin
          t.sleep t.cfg.poll_s;
          wait ()
        end
    in
    wait ()

let exec_once t ~label ~attempt thunk =
  if healthy t then begin
    match Pool.submit t.pool thunk with
    | fut -> await_deadline t fut ~label ~attempt
    | exception e -> Error (e, Printexc.get_callstack 0)
  end
  else begin
    (* The pool has burned too many workers to be trusted with new work:
       degrade to sequential execution in the submitting domain rather
       than refuse service. *)
    tick t "supervisor.serial_fallbacks";
    match thunk () with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  end

let rec recover t ~label thunk ~attempt ~prev_delay = function
  | Ok v -> v
  | Error (e, bt) ->
    if attempt >= t.cfg.max_attempts then begin
      tick t "supervisor.giveups";
      if t.cfg.max_attempts = 1 then
        (* No retry budget was configured: stay transparent and re-raise
           the task's own exception where [Pool.await] would have. *)
        Printexc.raise_with_backtrace e bt
      else raise (Retries_exhausted { label; attempts = attempt; last = e })
    end
    else begin
      tick t "supervisor.retries";
      let d = next_delay t ~prev_s:prev_delay in
      (match t.metrics with Some m -> Metrics.observe m "supervisor.backoff_s" d | None -> ());
      Obs.Span.instant
        ~args:
          [ ("label", label); ("attempt", string_of_int attempt); ("backoff_s", string_of_float d) ]
        "supervisor.retry";
      t.sleep d;
      let next = attempt + 1 in
      recover t ~label thunk ~attempt:next ~prev_delay:d (exec_once t ~label ~attempt:next thunk)
    end

let run ?(label = "task") t thunk =
  Obs.Span.with_ ~args:[ ("label", label) ] "supervisor.run" @@ fun () ->
  recover t ~label thunk ~attempt:1 ~prev_delay:0. (exec_once t ~label ~attempt:1 thunk)

let run_all ?(label = "batch") t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else
    Obs.Span.with_ ~args:[ ("label", label); ("tasks", string_of_int n) ] "supervisor.run_all"
    @@ fun () ->
    (* First pass: everything in flight at once (when the pool deserves
       it), exactly like [Pool.run_all]. Failures are then retried one
       index at a time — a bad item costs only its own re-execution, not
       its siblings' completed work. *)
    let futures = Array.make n None in
    if healthy t then
      for i = 0 to n - 1 do
        match Pool.submit t.pool thunks.(i) with
        | fut -> futures.(i) <- Some fut
        | exception _ -> () (* picked up serially below *)
      done;
    let results = Array.make n None in
    for i = 0 to n - 1 do
      let lbl = Printf.sprintf "%s[%d]" label i in
      let first =
        match futures.(i) with
        | Some fut -> await_deadline t fut ~label:lbl ~attempt:1
        | None -> (
          tick t "supervisor.serial_fallbacks";
          match thunks.(i) () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      results.(i) <- Some (recover t ~label:lbl thunks.(i) ~attempt:1 ~prev_delay:0. first)
    done;
    Array.map Option.get results

(* --- cache circuit breaker --------------------------------------------- *)

let breaker_state t =
  Mutex.lock t.breaker_lock;
  let s = t.breaker in
  Mutex.unlock t.breaker_lock;
  s

let fallback_eval ?inverted_outputs t cover inputs =
  tick t "supervisor.fallback_evals";
  Cnfet.Pla.eval (Cnfet.Pla.of_cover ?inverted_outputs cover) inputs

let eval ?inverted_outputs t cache cover inputs =
  (* Decide the path under the lock, evaluate outside it. *)
  Mutex.lock t.breaker_lock;
  let state =
    match t.breaker with
    | Open when now_s t -. t.opened_s >= t.cfg.breaker_cooldown_s ->
      t.breaker <- Half_open;
      Half_open
    | s -> s
  in
  Mutex.unlock t.breaker_lock;
  match state with
  | Open -> fallback_eval ?inverted_outputs t cover inputs
  | Closed | Half_open -> (
    match Cache.compile cache ?inverted_outputs cover with
    | compiled ->
      let r = Cache.eval compiled inputs in
      Mutex.lock t.breaker_lock;
      t.strikes <- 0;
      let closed_now = t.breaker = Half_open in
      if closed_now then t.breaker <- Closed;
      Mutex.unlock t.breaker_lock;
      if closed_now then begin
        tick t "supervisor.breaker_closes";
        Obs.Span.instant "supervisor.breaker_close"
      end;
      r
    | exception Cache.Corrupt_entry _ ->
      (* The rotten entry is already evicted; count the strike, open the
         breaker on repeated rot (or instantly when a half-open probe
         fails), and serve this evaluation uncompiled. *)
      Mutex.lock t.breaker_lock;
      t.strikes <- t.strikes + 1;
      let opened = state = Half_open || t.strikes >= t.cfg.breaker_threshold in
      if opened then begin
        t.breaker <- Open;
        t.opened_s <- now_s t;
        t.strikes <- 0
      end;
      Mutex.unlock t.breaker_lock;
      tick t "supervisor.cache_strikes";
      if opened then begin
        tick t "supervisor.breaker_opens";
        Obs.Span.instant "supervisor.breaker_open"
      end;
      fallback_eval ?inverted_outputs t cover inputs)
