(* Deterministic fan-out/fan-in of evaluation jobs.

   Work is cut into contiguous chunks, each chunk becomes one pool task,
   and results are written back by input index — so the merged output is
   bit-identical to a sequential run no matter how the chunks interleave
   across domains. Monte-Carlo fan-out derives one rng per trial from the
   caller's seed rng by sequential splitting; a trial's stream depends
   only on its index, never on which domain runs it.

   Exceptions raised inside items are re-raised at the fan-in point
   wrapped in [Item_failed] carrying the item's index; when several items
   fail, the smallest index wins — again matching what a sequential run
   would have hit first. *)

module Pla = Cnfet.Pla
module Cascade = Cnfet.Cascade
module Wpla = Cnfet.Wpla

exception Item_failed of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Item_failed { index; exn } ->
      Some (Printf.sprintf "Batch.Item_failed (item %d): %s" index (Printexc.to_string exn))
    | _ -> None)

let default_chunk ~jobs n = max 1 (n / (4 * max 1 jobs))

let map ?chunk ?metrics pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk ~jobs:(Pool.jobs pool) n
    in
    let n_chunks = (n + chunk - 1) / chunk in
    Obs.Span.with_
      ~args:[ ("items", string_of_int n); ("chunks", string_of_int n_chunks) ]
      "batch.map"
    @@ fun () ->
    (match metrics with
    | Some m ->
      Metrics.incr (Metrics.counter m "batch.jobs");
      Metrics.incr ~by:n (Metrics.counter m "batch.items");
      Metrics.incr ~by:n_chunks (Metrics.counter m "batch.chunks")
    | None -> ());
    let results = Array.make n None in
    let failure = Array.make n_chunks None in
    let thunks =
      Array.init n_chunks (fun c ->
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          fun () ->
            Obs.Span.with_ "batch.chunk" @@ fun () ->
            (* Record the chunk's first failing index but keep the chunk
               task itself from raising, so every chunk completes and the
               smallest failing index across the whole batch can win. *)
            let rec go i =
              if i < hi then begin
                (match f items.(i) with
                | v -> results.(i) <- Some v
                | exception e ->
                  if failure.(c) = None then failure.(c) <- Some (i, e));
                go (i + 1)
              end
            in
            go lo)
    in
    ignore (Pool.run_all pool thunks);
    let first_failure =
      Array.fold_left
        (fun acc fl ->
          match (acc, fl) with
          | Some (i, _), Some (j, _) when i <= j -> acc
          | _, Some _ -> fl
          | _, None -> acc)
        None failure
    in
    match first_failure with
    | Some (index, exn) -> raise (Item_failed { index; exn })
    | None -> Array.map Option.get results
  end

let mapi ?chunk ?metrics pool f items =
  map ?chunk ?metrics pool (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) items)

(* --- input-vector sweeps ------------------------------------------------ *)

let minterm n_in m = Array.init n_in (fun i -> m land (1 lsl i) <> 0)

let sweep ?chunk ?metrics pool ~n_in f =
  if n_in < 0 || n_in > 24 then invalid_arg "Batch.sweep: n_in must be in 0..24";
  map ?chunk ?metrics pool (fun m -> f (minterm n_in m)) (Array.init (1 lsl n_in) Fun.id)

let sweep_pla ?chunk ?metrics pool pla =
  sweep ?chunk ?metrics pool ~n_in:(Pla.num_inputs pla) (Pla.eval pla)

(* --- blocked (bit-sliced) fan-out ---------------------------------------- *)

(* One pool item per 63-vector block: transpose a contiguous slice of the
   batch into lane words, sweep the compiled planes once for all 63
   vectors, untranspose at fan-in. [map] already writes results back by
   block index, so the merged output is bit-identical to scalar order;
   the ragged tail (batch size mod 63) runs through the scalar
   evaluator. *)
let eval_batch ?chunk ?metrics pool compiled vectors =
  let lanes = Cache.lanes_per_word in
  let n = Array.length vectors in
  let n_blocks = n / lanes in
  Obs.Span.with_
    ~args:[ ("vectors", string_of_int n); ("blocks", string_of_int n_blocks) ]
    "batch.eval_batch"
  @@ fun () ->
  let results = Array.make n [||] in
  if n_blocks > 0 then begin
    let per_block =
      map ?chunk ?metrics pool
        (fun b ->
          let block = Cache.transpose vectors ~first:(b * lanes) ~lanes in
          Cache.untranspose (Cache.eval_block compiled block) ~lanes)
        (Array.init n_blocks Fun.id)
    in
    Array.iteri (fun b outs -> Array.blit outs 0 results (b * lanes) lanes) per_block
  end;
  for i = n_blocks * lanes to n - 1 do
    results.(i) <- Cache.eval compiled vectors.(i)
  done;
  results

let sweep_compiled ?chunk ?metrics pool compiled =
  let n_in = Pla.num_inputs (Cache.pla compiled) in
  if n_in < 0 || n_in > 24 then invalid_arg "Batch.sweep_compiled: n_in must be in 0..24";
  let lanes = Cache.lanes_per_word in
  let total = 1 lsl n_in in
  let n_blocks = total / lanes in
  let results = Array.make total [||] in
  if n_blocks > 0 then begin
    let per_block =
      map ?chunk ?metrics pool
        (fun b ->
          (* Pack minterms [first .. first+62] directly: lane v of input
             column c is bit c of minterm (first + v). *)
          let first = b * lanes in
          let words =
            Array.init n_in (fun c ->
                let w = ref 0 in
                for v = 0 to lanes - 1 do
                  if (first + v) land (1 lsl c) <> 0 then w := !w lor (1 lsl v)
                done;
                !w)
          in
          Cache.untranspose (Cache.eval_block compiled { Cache.words; lanes }) ~lanes)
        (Array.init n_blocks Fun.id)
    in
    Array.iteri (fun b outs -> Array.blit outs 0 results (b * lanes) lanes) per_block
  end;
  for m = n_blocks * lanes to total - 1 do
    results.(m) <- Cache.eval compiled (minterm n_in m)
  done;
  results

let sweep_pla_hw ?chunk ?metrics pool pla =
  let hw = Pla.build_hw pla in
  sweep ?chunk ?metrics pool ~n_in:(Pla.num_inputs pla) (Pla.simulate_hw hw)

let sweep_cascade ?chunk ?metrics pool cascade =
  sweep ?chunk ?metrics pool ~n_in:(Cascade.num_inputs cascade) (Cascade.eval cascade)

let sweep_wpla ?chunk ?metrics pool wpla =
  sweep ?chunk ?metrics pool ~n_in:(Wpla.num_inputs wpla) (Wpla.eval wpla)

(* --- Monte-Carlo fan-out ------------------------------------------------ *)

(* Explicit loop: split order must be by trial index for reproducibility
   (Array.init's application order is unspecified). *)
let split_rngs rng n =
  if n = 0 then [||]
  else begin
    let a = Array.make n rng in
    for i = 0 to n - 1 do
      a.(i) <- Util.Rng.split rng
    done;
    a
  end

let monte_carlo ?chunk ?metrics pool rng ~trials f =
  if trials < 0 then invalid_arg "Batch.monte_carlo";
  map ?chunk ?metrics pool (fun r -> f r) (split_rngs rng trials)

let yield_estimate ?chunk ?metrics pool rng ?(trials = 200) ?(spare_rows = 2) ?closed_share
    pla ~defect_rate =
  let outcomes =
    monte_carlo ?chunk ?metrics pool rng ~trials (fun r ->
        Fault.Yield.trial r ~spare_rows ?closed_share pla ~defect_rate)
  in
  Fault.Yield.point_of_outcomes ~defect_rate outcomes

let yield_sweep ?chunk ?metrics pool rng ?trials ?spare_rows ?closed_share pla ~rates =
  List.map
    (fun defect_rate ->
      yield_estimate ?chunk ?metrics pool rng ?trials ?spare_rows ?closed_share pla
        ~defect_rate)
    rates

let variation_monte_carlo ?chunk ?metrics pool rng ?(trials = 300) ?sigma ?params tech
    profile =
  let delays =
    monte_carlo ?chunk ?metrics pool rng ~trials (fun r ->
        Cnfet.Pla_timing.trial_delay r ?sigma ?params tech profile)
  in
  Cnfet.Pla_timing.variation_of_delays ?params tech profile (Array.to_list delays)
