(* The inject → detect → repair → re-verify loop. Orchestration runs in
   the submitting domain; only the supervised batch scenario fans out to
   pool workers, so every fault-site draw below happens in a fixed,
   deterministic order for a given seed. *)

module Pla = Cnfet.Pla
module Plane = Cnfet.Plane
module Program_hw = Cnfet.Program_hw
module Crossbar = Cnfet.Crossbar
module Inject = Fault.Inject
module Defect = Fault.Defect
module Repair = Fault.Repair
module Atpg = Fault.Atpg

type scenario = {
  sc_name : string;
  sc_rounds : int;
  sc_injected : int;
  sc_detected : int;
  sc_repaired : int;
  sc_unrepairable : int;
  sc_undetected : int;
}

type report = {
  seed : int;
  budget_s : float;
  wall_s : float;
  rounds : int;
  jobs : int;
  spare_rows : int;
  injected_by_category : (string * int) list;
  injected_total : int;
  scenarios : scenario list;
  miscompares : int;
  worker_crashes : int;
  retries : int;
  deadline_expiries : int;
  serial_fallbacks : int;
  cache_corruptions : int;
  fallback_evals : int;
  breaker_opens : int;
  degradation : float;
  recoveries : int;
  recovery_p50_s : float;
  recovery_p90_s : float;
  recovery_p99_s : float;
  recovery_max_s : float;
}

let detected_unrepaired r =
  List.fold_left
    (fun n sc -> n + (sc.sc_detected - sc.sc_repaired - sc.sc_unrepairable))
    0 r.scenarios

(* Mutable per-scenario tally, frozen into [scenario] at the end. *)
type tally = {
  name : string;
  mutable rounds : int;
  mutable injected : int;
  mutable detected : int;
  mutable repaired : int;
  mutable unrepairable : int;
  mutable undetected : int;
}

let tally name = { name; rounds = 0; injected = 0; detected = 0; repaired = 0; unrepairable = 0; undetected = 0 }

let freeze t =
  {
    sc_name = t.name;
    sc_rounds = t.rounds;
    sc_injected = t.injected;
    sc_detected = t.detected;
    sc_repaired = t.repaired;
    sc_unrepairable = t.unrepairable;
    sc_undetected = t.undetected;
  }

(* --- fault-site draws ---------------------------------------------------- *)

(* Each drawn decision consumes one fresh site index from a counter, so a
   run's decision sequence is a pure function of the seed. *)
let draw_defect_map ctr ~rows ~cols =
  let m = Defect.perfect ~rows ~cols in
  let injected = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      incr ctr;
      match Inject.crosspoint_fault ~index:!ctr with
      | Defect.Good -> ()
      | k ->
        incr injected;
        Defect.set m ~row:r ~col:c k
    done
  done;
  (m, !injected)

let truncate_map m ~rows ~cols =
  let t = Defect.perfect ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Defect.set t ~row:r ~col:c (Defect.kind m ~row:r ~col:c)
    done
  done;
  t

(* Outputs of [pla] evaluated through per-plane defect maps. *)
let defective_outputs ~and_defects ~or_defects pla inputs =
  let products = Defect.eval_with_defects and_defects (Pla.and_plane pla) inputs in
  let or_rows = Defect.eval_with_defects or_defects (Pla.or_plane pla) products in
  Array.mapi (fun o v -> if Pla.output_inverted pla o then not v else v) or_rows

let minterm n_in m = Array.init n_in (fun i -> m land (1 lsl i) <> 0)

(* --- the reusable detect → repair → re-verify kernel --------------------- *)

type recovery_outcome = {
  rv_status :
    [ `Clean | `Undetected | `Repaired of Repair.assignment | `Unrepairable | `Reverify_failed ];
  rv_wall_s : float;
}

let recover ?(spare_rows = 2) ~tests ~and_defects ~or_defects pla =
  let clock = Obs.Clock.monotonic in
  let now_s () = Int64.to_float (clock ()) /. 1e9 in
  let t0 = now_s () in
  let finish status = { rv_status = status; rv_wall_s = now_s () -. t0 } in
  if Defect.defect_count and_defects + Defect.defect_count or_defects = 0 then finish `Clean
  else begin
    let products = Pla.num_products pla in
    let and_cols = Plane.cols (Pla.and_plane pla) in
    let n_out = Plane.rows (Pla.or_plane pla) in
    (* Detection on the identity mapping (the array as programmed). *)
    let and_id = truncate_map and_defects ~rows:products ~cols:and_cols in
    let or_id = truncate_map or_defects ~rows:n_out ~cols:products in
    let miscompare v =
      defective_outputs ~and_defects:and_id ~or_defects:or_id pla v <> Pla.eval pla v
    in
    if not (List.exists miscompare tests) then finish `Undetected
    else
      match Repair.repair ~spare_rows ~and_defects ~or_defects pla with
      | Repair.Unrepairable -> finish `Unrepairable
      | Repair.Repaired assignment ->
        let rows = products + spare_rows in
        let physical = Repair.apply pla assignment ~rows in
        (* Re-verify the full function through the defects. *)
        let n_in = Pla.num_inputs pla in
        let ok = ref true in
        for m = 0 to (1 lsl n_in) - 1 do
          let v = minterm n_in m in
          if defective_outputs ~and_defects ~or_defects physical v <> Pla.eval pla v then
            ok := false
        done;
        if !ok then finish (`Repaired assignment) else finish `Reverify_failed
  end

(* --- workloads ----------------------------------------------------------- *)

type workload = {
  w_name : string;
  cover : Logic.Cover.t;
  pla : Pla.t;
  golden : bool array array;  (** oracle outputs for every minterm *)
  tests : bool array list;  (** ATPG vectors for the programmed PLA *)
}

let make_workload (w_name, cover) =
  let pla = Pla.of_cover cover in
  let n_in = Pla.num_inputs pla in
  let golden = Array.init (1 lsl n_in) (fun m -> Pla.eval pla (minterm n_in m)) in
  let tests, _undetectable = Atpg.generate pla in
  { w_name; cover; pla; golden; tests }

let workloads () =
  Mcnc.Generators.all
  |> List.filter (fun (_, c) ->
         Logic.Cover.num_inputs c <= 6 && List.length (Logic.Cover.cubes c) <= 24)
  |> List.map make_workload

(* --- the run ------------------------------------------------------------- *)

let run ?(seed = 42) ?(budget_s = 10.) ?(max_rounds = 50) ?(spare_rows = 2) ?jobs
    ?(plan = Inject.default) () =
  let metrics = Metrics.create () in
  let clock = Obs.Clock.monotonic in
  let now_s () = Int64.to_float (clock ()) /. 1e9 in
  let t0 = now_s () in
  let recovery = Histogram.create () in
  let timed_recovery f =
    let s = now_s () in
    let r = f () in
    Histogram.observe recovery (now_s () -. s);
    r
  in
  let ws = Array.of_list (workloads ()) in
  if Array.length ws = 0 then invalid_arg "Chaos.run: no workloads";
  let batch_t = tally "supervised_batch"
  and xpoint_t = tally "crosspoint_repair"
  and pg_t = tally "pg_drift_scrub"
  and xbar_t = tally "crossbar_scrub" in
  let miscompares = Atomic.make 0 in
  let evals = Atomic.make 0 in
  let tasks = ref 0 in
  let xp_ctr = ref 0 and pg_ctr = ref 1_000_000_000 in
  let reprograms = ref 0 in
  Inject.with_armed ~seed plan @@ fun engine ->
  Pool.with_pool ~metrics ?jobs @@ fun pool ->
  let sup =
    Supervisor.create ~metrics
      ~config:
        {
          Supervisor.default_config with
          max_attempts = 4;
          deadline_s = Some 0.5;
          crash_tolerance = 64;
        }
      pool
  in
  let cache = Cache.create () in

  (* Scenario 1 — supervised batch sweep: full input space through the
     pool and the breaker-guarded cache, checked against the oracle. *)
  let batch_round w =
    batch_t.rounds <- batch_t.rounds + 1;
    let n = Array.length w.golden in
    let chunk = 8 in
    let n_chunks = (n + chunk - 1) / chunk in
    let n_in = Pla.num_inputs w.pla in
    let thunks =
      Array.init n_chunks (fun c ->
          let lo = c * chunk and hi = min n ((c + 1) * chunk) in
          fun () ->
            for m = lo to hi - 1 do
              Atomic.incr evals;
              let out = Supervisor.eval sup cache w.cover (minterm n_in m) in
              if out <> w.golden.(m) then Atomic.incr miscompares
            done)
    in
    tasks := !tasks + n_chunks;
    ignore (Supervisor.run_all ~label:("chaos." ^ w.w_name) sup thunks)
  in

  (* Scenario 2 — crosspoint faults: ATPG detect, spare-row repair,
     physical reprogram, functional re-verify through the defects. *)
  let crosspoint_round w =
    xpoint_t.rounds <- xpoint_t.rounds + 1;
    let products = Pla.num_products w.pla in
    let rows = products + spare_rows in
    let and_cols = Plane.cols (Pla.and_plane w.pla) in
    let n_out = Plane.rows (Pla.or_plane w.pla) in
    let and_defects, inj_a = draw_defect_map xp_ctr ~rows ~cols:and_cols in
    let or_defects, inj_o = draw_defect_map xp_ctr ~rows:n_out ~cols:rows in
    let injected = inj_a + inj_o in
    xpoint_t.injected <- xpoint_t.injected + injected;
    if injected > 0 then begin
      (* Detection on the identity mapping (the array as programmed). *)
      let and_id = truncate_map and_defects ~rows:products ~cols:and_cols in
      let or_id = truncate_map or_defects ~rows:n_out ~cols:products in
      let n_in = Pla.num_inputs w.pla in
      let miscompare v =
        defective_outputs ~and_defects:and_id ~or_defects:or_id w.pla v <> Pla.eval w.pla v
      in
      if not (List.exists miscompare w.tests) then
        (* All faults masked on the test set: nothing observable to heal. *)
        xpoint_t.undetected <- xpoint_t.undetected + injected
      else begin
        xpoint_t.detected <- xpoint_t.detected + injected;
        let healed =
          timed_recovery @@ fun () ->
          match Repair.repair ~spare_rows ~and_defects ~or_defects w.pla with
          | Repair.Unrepairable -> `Unrepairable
          | Repair.Repaired assignment ->
            let physical = Repair.apply w.pla assignment ~rows in
            (* Re-verify the full function through the defects. *)
            let ok = ref true in
            for m = 0 to (1 lsl n_in) - 1 do
              let v = minterm n_in m in
              let got = defective_outputs ~and_defects ~or_defects physical v in
              let want = Logic.Cover.eval w.cover v in
              Array.iteri (fun o g -> if g <> Util.Bitvec.get want o then ok := false) got
            done;
            if not !ok then `Failed
            else begin
              (* Push the repaired AND plane through the physical
                 programming network when the array is small enough to
                 simulate, and check the stored charge pattern. *)
              let ap = Pla.and_plane physical in
              if !reprograms < 5 && Plane.rows ap * Plane.cols ap <= 64 then begin
                incr reprograms;
                let hw = Program_hw.build ~rows:(Plane.rows ap) ~cols:(Plane.cols ap) () in
                Program_hw.program_plane hw ap;
                if Program_hw.verify hw ap then `Repaired else `Failed
              end
              else `Repaired
            end
        in
        match healed with
        | `Repaired -> xpoint_t.repaired <- xpoint_t.repaired + injected
        | `Unrepairable -> xpoint_t.unrepairable <- xpoint_t.unrepairable + injected
        | `Failed -> ()
      end
    end
  in

  (* Scenario 3 — PG charge drift on a live programmed array: disturb
     storage nodes, detect decode flips by readback, rewrite, verify.
     The array persists across rounds, so masked drift can accumulate
     until it finally flips a decode — exactly what periodic scrubbing
     exists to catch. *)
  let pg_plane = Pla.and_plane (Array.get ws 0).pla in
  let pg_hw = Program_hw.build ~rows:(Plane.rows pg_plane) ~cols:(Plane.cols pg_plane) () in
  Program_hw.program_plane pg_hw pg_plane;
  let pg_round () =
    pg_t.rounds <- pg_t.rounds + 1;
    let injected = ref 0 in
    for r = 0 to Plane.rows pg_plane - 1 do
      for c = 0 to Plane.cols pg_plane - 1 do
        incr pg_ctr;
        let d = Inject.pg_drift ~index:!pg_ctr in
        if d <> 0. then begin
          incr injected;
          Program_hw.disturb pg_hw ~row:r ~col:c d
        end
      done
    done;
    pg_t.injected <- pg_t.injected + !injected;
    if !injected > 0 then begin
      let readback = Program_hw.readback pg_hw in
      let flipped = ref [] in
      Plane.iter
        (fun r c m -> if m <> Plane.mode pg_plane ~row:r ~col:c then flipped := (r, c) :: !flipped)
        readback;
      match !flipped with
      | [] -> pg_t.undetected <- pg_t.undetected + !injected
      | cells ->
        let n = List.length cells in
        pg_t.detected <- pg_t.detected + n;
        pg_t.undetected <- pg_t.undetected + (!injected - n);
        let ok =
          timed_recovery @@ fun () ->
          List.iter
            (fun (r, c) ->
              Program_hw.write_mode pg_hw ~row:r ~col:c (Plane.mode pg_plane ~row:r ~col:c))
            cells;
          Program_hw.verify pg_hw pg_plane
        in
        if ok then pg_t.repaired <- pg_t.repaired + n
    end
  in

  (* Scenario 4 — crossbar scrubbing: flip interconnect crosspoints
     against a golden snapshot, detect by comparison, restore, re-check
     the demanded routes. *)
  let xb_n = 6 in
  let xb = Crossbar.create ~rows:xb_n ~cols:xb_n in
  for i = 0 to xb_n - 1 do
    Crossbar.connect xb ~row:i ~col:i
  done;
  let xb_golden = Crossbar.copy xb in
  let xbar_round () =
    xbar_t.rounds <- xbar_t.rounds + 1;
    let injected = ref 0 in
    for r = 0 to xb_n - 1 do
      for c = 0 to xb_n - 1 do
        incr xp_ctr;
        match Inject.crosspoint_fault ~index:!xp_ctr with
        | Defect.Good -> ()
        | Defect.Stuck_closed ->
          if not (Crossbar.connected xb ~row:r ~col:c) then begin
            incr injected;
            Crossbar.connect xb ~row:r ~col:c
          end
        | Defect.Stuck_open ->
          if Crossbar.connected xb ~row:r ~col:c then begin
            incr injected;
            Crossbar.disconnect xb ~row:r ~col:c
          end
      done
    done;
    xbar_t.injected <- xbar_t.injected + !injected;
    if !injected > 0 then
      if Crossbar.equal xb xb_golden then xbar_t.undetected <- xbar_t.undetected + !injected
      else begin
        xbar_t.detected <- xbar_t.detected + !injected;
        let ok =
          timed_recovery @@ fun () ->
          for r = 0 to xb_n - 1 do
            for c = 0 to xb_n - 1 do
              if Crossbar.connected xb_golden ~row:r ~col:c then Crossbar.connect xb ~row:r ~col:c
              else Crossbar.disconnect xb ~row:r ~col:c
            done
          done;
          Crossbar.equal xb xb_golden
          && List.for_all
               (fun i -> Crossbar.route_point_to_point xb ~from_row:i ~to_col:i)
               (List.init xb_n Fun.id)
        in
        if ok then xbar_t.repaired <- xbar_t.repaired + !injected
      end
  in

  let rounds = ref 0 in
  Obs.Span.with_ ~args:[ ("seed", string_of_int seed) ] "chaos.run" (fun () ->
      while !rounds < max_rounds && now_s () -. t0 < budget_s do
        let w = ws.(!rounds mod Array.length ws) in
        Obs.Span.with_
          ~args:[ ("round", string_of_int !rounds); ("workload", w.w_name) ]
          "chaos.round"
          (fun () ->
            batch_round w;
            crosspoint_round w;
            pg_round ();
            xbar_round ());
        incr rounds
      done);
  let counter name = Option.value ~default:0 (List.assoc_opt name (Metrics.counters metrics)) in
  let retries = counter "supervisor.retries" in
  let deadline_expiries = counter "supervisor.deadline_expiries" in
  let serial_fallbacks = counter "supervisor.serial_fallbacks" in
  let fallback_evals = counter "supervisor.fallback_evals" in
  let breaker_opens = counter "supervisor.breaker_opens" in
  let total_ops = Atomic.get evals + !tasks in
  let degraded = retries + deadline_expiries + serial_fallbacks + fallback_evals in
  let recoveries = Histogram.count recovery in
  let recovery_ps = Histogram.percentiles recovery [ 50.; 90.; 99.; 100. ] in
  let recovery_p p = if recoveries = 0 then 0. else List.assoc p recovery_ps in
  {
    seed;
    budget_s;
    wall_s = now_s () -. t0;
    rounds = !rounds;
    jobs = Pool.jobs pool;
    spare_rows;
    injected_by_category = Inject.counts engine;
    injected_total = Inject.total engine;
    scenarios = [ freeze batch_t; freeze xpoint_t; freeze pg_t; freeze xbar_t ];
    miscompares = Atomic.get miscompares;
    worker_crashes = Pool.crashes pool;
    retries;
    deadline_expiries;
    serial_fallbacks;
    cache_corruptions = Cache.corruptions cache;
    fallback_evals;
    breaker_opens;
    degradation = float_of_int degraded /. float_of_int (max 1 total_ops);
    recoveries;
    recovery_p50_s = recovery_p 50.;
    recovery_p90_s = recovery_p 90.;
    recovery_p99_s = recovery_p 99.;
    recovery_max_s = recovery_p 100.;
  }

(* --- rendering ----------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"seed\": %d,\n" r.seed;
  pf "  \"budget_s\": %g,\n" r.budget_s;
  pf "  \"wall_s\": %.3f,\n" r.wall_s;
  pf "  \"rounds\": %d,\n" r.rounds;
  pf "  \"jobs\": %d,\n" r.jobs;
  pf "  \"spare_rows\": %d,\n" r.spare_rows;
  pf "  \"injected_total\": %d,\n" r.injected_total;
  pf "  \"injected_by_category\": {";
  List.iteri
    (fun i (k, v) -> pf "%s\"%s\": %d" (if i = 0 then " " else ", ") (json_escape k) v)
    r.injected_by_category;
  pf " },\n";
  pf "  \"scenarios\": [\n";
  List.iteri
    (fun i sc ->
      pf
        "    { \"name\": \"%s\", \"rounds\": %d, \"injected\": %d, \"detected\": %d, \
         \"repaired\": %d, \"unrepairable\": %d, \"undetected\": %d }%s\n"
        (json_escape sc.sc_name) sc.sc_rounds sc.sc_injected sc.sc_detected sc.sc_repaired
        sc.sc_unrepairable sc.sc_undetected
        (if i = List.length r.scenarios - 1 then "" else ","))
    r.scenarios;
  pf "  ],\n";
  pf "  \"detected_unrepaired\": %d,\n" (detected_unrepaired r);
  pf "  \"miscompares\": %d,\n" r.miscompares;
  pf "  \"worker_crashes\": %d,\n" r.worker_crashes;
  pf "  \"retries\": %d,\n" r.retries;
  pf "  \"deadline_expiries\": %d,\n" r.deadline_expiries;
  pf "  \"serial_fallbacks\": %d,\n" r.serial_fallbacks;
  pf "  \"cache_corruptions\": %d,\n" r.cache_corruptions;
  pf "  \"fallback_evals\": %d,\n" r.fallback_evals;
  pf "  \"breaker_opens\": %d,\n" r.breaker_opens;
  pf "  \"degradation\": %.6f,\n" r.degradation;
  pf "  \"recoveries\": %d,\n" r.recoveries;
  pf "  \"recovery_latency_s\": { \"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, \"max\": %.6f }\n"
    r.recovery_p50_s r.recovery_p90_s r.recovery_p99_s r.recovery_max_s;
  pf "}\n";
  Buffer.contents b

let summary r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "chaos: seed %d, %d rounds in %.2fs (%d jobs, %d spare rows)\n" r.seed r.rounds r.wall_s
    r.jobs r.spare_rows;
  pf "  injected %d faults:" r.injected_total;
  List.iter (fun (k, v) -> if v > 0 then pf " %s=%d" k v) r.injected_by_category;
  pf "\n";
  List.iter
    (fun sc ->
      pf "  %-18s injected %4d  detected %4d  repaired %4d  unrepairable %2d  masked %4d\n"
        sc.sc_name sc.sc_injected sc.sc_detected sc.sc_repaired sc.sc_unrepairable
        sc.sc_undetected)
    r.scenarios;
  pf "  runtime: %d worker crashes, %d retries, %d deadline expiries, %d serial fallbacks\n"
    r.worker_crashes r.retries r.deadline_expiries r.serial_fallbacks;
  pf "  cache: %d corruptions detected, %d fallback evals, %d breaker opens\n"
    r.cache_corruptions r.fallback_evals r.breaker_opens;
  pf "  miscompares vs oracle: %d; degradation: %.2f%%\n" r.miscompares (100. *. r.degradation);
  if r.recoveries > 0 then
    pf "  recovery latency (s): p50 %.4f  p90 %.4f  p99 %.4f  max %.4f over %d recoveries\n"
      r.recovery_p50_s r.recovery_p90_s r.recovery_p99_s r.recovery_max_s r.recoveries;
  pf "  detected-but-unrepaired: %d\n" (detected_unrepaired r);
  Buffer.contents b
