(* Espresso + cover-kernel microbenchmarks shared by the [bench-espresso]
   CLI subcommand and the [espresso] section of bench/main.exe.

   For each Table-1 MCNC profile (max46, apla, t2 — via their synthetic
   twins) and a few generator functions, the harness measures:

     - espresso minimize wall-time on the unminimized on-set;
     - cover set-operation throughput (contains/distance/intersect/
       supercube2 over all cube pairs) through the word-parallel packed
       kernel AND through the retained byte-per-literal reference
       ({!Logic.Cube_naive}), cross-checking both paths' checksums;
     - compiled-PLA evaluation throughput on random minterms.

   The packed-vs-naive ratio is the measured speedup of the bit-packed
   representation. Reports render to BENCH_espresso.json. *)

module Cube = Logic.Cube
module Cube_naive = Logic.Cube_naive
module Cover = Logic.Cover

type report = {
  name : string;
  n_in : int;
  n_out : int;
  cubes_before : int;
  cubes_after : int;
  lits_after : int;
  minimize_s : float;
  iterations : int;
  packed_mops : float;  (* million cover set-ops per second, packed kernel *)
  naive_mops : float;  (* same workload through the naive reference *)
  op_speedup : float;  (* packed_mops / naive_mops *)
  eval_mevals : float;  (* million compiled-PLA evals per second, scalar *)
  eval_block_mevals : float;  (* same workload through the bit-sliced path *)
  block_speedup : float;  (* eval_block_mevals / eval_mevals *)
  identical : bool;  (* packed and naive op checksums agree *)
  block_identical : bool;  (* blocked eval bit-identical to scalar eval *)
}

(* Run [f] repeatedly until [min_s] of wall time has accumulated (at least
   once); returns (last result, seconds per run). *)
let time_amortized ~min_s f =
  let t0 = Unix.gettimeofday () in
  let v = ref (f ()) in
  let reps = ref 1 in
  while Unix.gettimeofday () -. t0 < min_s do
    v := f ();
    incr reps
  done;
  (!v, (Unix.gettimeofday () -. t0) /. float_of_int !reps)

(* One pass of cover set-ops over all ordered cube pairs, folded into a
   checksum so the work cannot be optimized away and the two kernels can
   be cross-checked. 4 ops per pair. *)
let packed_pass cubes =
  let n = Array.length cubes in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let ci = cubes.(i) in
    for j = 0 to n - 1 do
      let cj = cubes.(j) in
      acc := !acc + Cube.distance ci cj;
      if Cube.contains ci cj then incr acc;
      (match Cube.intersect ci cj with
      | Some x -> acc := !acc + Cube.literal_count x
      | None -> ());
      acc := !acc + Cube.literal_count (Cube.supercube2 ci cj)
    done
  done;
  !acc

let naive_pass cubes =
  let n = Array.length cubes in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let ci = cubes.(i) in
    for j = 0 to n - 1 do
      let cj = cubes.(j) in
      acc := !acc + Cube_naive.distance ci cj;
      if Cube_naive.contains ci cj then incr acc;
      (match Cube_naive.intersect ci cj with
      | Some x -> acc := !acc + Cube_naive.literal_count x
      | None -> ());
      acc := !acc + Cube_naive.literal_count (Cube_naive.supercube2 ci cj)
    done
  done;
  !acc

let bench_function ~quick ~rng name on_set =
  Obs.Span.with_ ~args:[ ("function", name) ] "bench.function" @@ fun () ->
  let min_s = if quick then 0.02 else 0.2 in
  let n_in = Cover.num_inputs on_set and n_out = Cover.num_outputs on_set in
  let result, minimize_s =
    time_amortized ~min_s (fun () -> Espresso.Minimize.minimize on_set)
  in
  (* Cover-op throughput over the on-set's cubes, both kernels. *)
  let packed = Cover.to_array on_set in
  let naive = Array.map Cube_naive.of_cube packed in
  let ops_per_pass = 4 * Array.length packed * Array.length packed in
  let packed_sum, packed_pass_s =
    time_amortized ~min_s (fun () -> packed_pass packed)
  in
  let naive_sum, naive_pass_s = time_amortized ~min_s (fun () -> naive_pass naive) in
  let mops s = float_of_int ops_per_pass /. s /. 1e6 in
  (* Compiled-PLA evaluation on random minterms. *)
  let compiled = Cache.compile (Cache.create ~capacity:4 ()) result.Espresso.Minimize.cover in
  let n_minterms = 1024 in
  let minterms =
    Array.init n_minterms (fun _ -> Array.init n_in (fun _ -> Util.Rng.bool rng))
  in
  let _, eval_s =
    time_amortized ~min_s (fun () ->
        let acc = ref 0 in
        Array.iter
          (fun m -> if (Cache.eval compiled m).(0) then incr acc)
          minterms;
        !acc)
  in
  (* The same minterms through the bit-sliced path: full 63-lane blocks
     plus the scalar tail, folding output 0's popcount so the sweep
     cannot be optimized away. *)
  let lanes = Cache.lanes_per_word in
  let n_blocks = n_minterms / lanes in
  let popcount v =
    let rec go v acc = if v = 0 then acc else go (v land (v - 1)) (acc + 1) in
    go v 0
  in
  let _, eval_block_s =
    time_amortized ~min_s (fun () ->
        let acc = ref 0 in
        for b = 0 to n_blocks - 1 do
          let block = Cache.transpose minterms ~first:(b * lanes) ~lanes in
          acc := !acc + popcount (Cache.eval_block compiled block).(0)
        done;
        for i = n_blocks * lanes to n_minterms - 1 do
          if (Cache.eval compiled minterms.(i)).(0) then incr acc
        done;
        !acc)
  in
  let block_identical =
    let ok = ref true in
    for b = 0 to n_blocks - 1 do
      let block = Cache.transpose minterms ~first:(b * lanes) ~lanes in
      let outs = Cache.untranspose (Cache.eval_block compiled block) ~lanes in
      for v = 0 to lanes - 1 do
        if outs.(v) <> Cache.eval compiled minterms.((b * lanes) + v) then ok := false
      done
    done;
    !ok
  in
  {
    name;
    n_in;
    n_out;
    cubes_before = Cover.size on_set;
    cubes_after = Cover.size result.Espresso.Minimize.cover;
    lits_after = Cover.literal_total result.Espresso.Minimize.cover;
    minimize_s;
    iterations = result.Espresso.Minimize.iterations;
    packed_mops = mops packed_pass_s;
    naive_mops = mops naive_pass_s;
    op_speedup = naive_pass_s /. packed_pass_s;
    eval_mevals = float_of_int n_minterms /. eval_s /. 1e6;
    eval_block_mevals = float_of_int n_minterms /. eval_block_s /. 1e6;
    block_speedup = eval_s /. eval_block_s;
    identical = packed_sum = naive_sum;
    block_identical;
  }

let run ?metrics ?(quick = false) ?(seed = 2008) () =
  (match metrics with Some m -> Metrics.register_library_gauges m | None -> ());
  let rng = Util.Rng.create seed in
  (* Synthetic twins of the paper's Table-1 workloads. *)
  let profile_reports =
    List.map
      (fun r ->
        bench_function ~quick ~rng
          (r.Mcnc.Synthetic.profile.Mcnc.Profiles.name ^ "-synth")
          r.Mcnc.Synthetic.on_set)
      (Mcnc.Synthetic.table1_set (Util.Rng.create seed))
  in
  let generator_reports =
    if quick then []
    else
      List.map
        (fun (name, f) -> bench_function ~quick ~rng name f)
        (List.filter
           (fun (_, f) -> Cover.num_inputs f <= 10)
           Mcnc.Generators.all)
  in
  profile_reports @ generator_reports

let geomean_speedup reports =
  match reports with
  | [] -> 1.0
  | _ ->
    exp
      (List.fold_left (fun acc r -> acc +. log r.op_speedup) 0.0 reports
      /. float_of_int (List.length reports))

let geomean_block_speedup reports =
  match reports with
  | [] -> 1.0
  | _ ->
    exp
      (List.fold_left (fun acc r -> acc +. log r.block_speedup) 0.0 reports
      /. float_of_int (List.length reports))

(* --- Assess.Run emission -------------------------------------------------- *)

let profile_name ~quick = if quick then "espresso-quick" else "espresso-full"

(* Per-function scalar fields worth tracking across repeats. Correctness
   flags ride along as 0/1 series so an A/B run surfaces a cross-check
   flip as a (maximally) regressed metric, not just a CI grep. *)
let report_fields =
  [
    ("minimize_s", "s", false, fun r -> r.minimize_s);
    ("packed_mops", "Mop/s", true, fun r -> r.packed_mops);
    ("naive_mops", "Mop/s", true, fun r -> r.naive_mops);
    ("op_speedup", "x", true, fun r -> r.op_speedup);
    ("eval_mevals", "Mev/s", true, fun r -> r.eval_mevals);
    ("eval_block_mevals", "Mev/s", true, fun r -> r.eval_block_mevals);
    ("block_speedup", "x", true, fun r -> r.block_speedup);
    ("identical", "bool", true, fun r -> if r.identical then 1. else 0.);
    ("block_identical", "bool", true, fun r -> if r.block_identical then 1. else 0.);
  ]

(* [repeats] is one report list per full bench repeat; every repeat runs
   the same profile, so sample [i] of every metric comes from the same
   pass — the pairing the A/B comparator leans on. *)
let metrics_of_repeats (repeats : report list list) : Assess.Run.metric list =
  match repeats with
  | [] -> []
  | first :: _ ->
    let series_of fn_name (field, units, higher_is_better, get) =
      let samples =
        List.filter_map
          (fun reports ->
            Option.map get (List.find_opt (fun r -> r.name = fn_name) reports))
          repeats
      in
      Assess.Run.metric ~units ~higher_is_better
        (fn_name ^ "/" ^ field)
        (Array.of_list samples)
    in
    let per_function =
      List.concat_map (fun r -> List.map (series_of r.name) report_fields) first
    in
    let geomean units name f =
      Assess.Run.metric ~units ~higher_is_better:true name
        (Array.of_list (List.map f repeats))
    in
    per_function
    @ [
        geomean "x" "geomean/op_speedup" geomean_speedup;
        geomean "x" "geomean/block_speedup" geomean_block_speedup;
      ]

let run_assess ?metrics ?(quick = false) ?(seed = 2008) ?(repeats = 1) () =
  let t0 = Unix.gettimeofday () in
  let all = List.init (max 1 repeats) (fun _ -> run ?metrics ~quick ~seed ()) in
  let wall_s = Unix.gettimeofday () -. t0 in
  let arun =
    Assess.Run.create
      ~meta:
        [
          ("bench", "espresso");
          ("quick", string_of_bool quick);
          ("repeats", string_of_int (max 1 repeats));
        ]
      ~profile:(profile_name ~quick) ~seed ~wall_s (metrics_of_repeats all)
  in
  (List.rev all |> List.hd, arun)

(* Switch-level cross-check: minimize a small comparator, program it onto
   a PLA, and simulate the ambipolar-CNFET netlist against the symbolic
   evaluator over every minterm. Cheap enough for CI smoke runs, and it
   exercises the circuit simulator (so a traced bench run records spans
   from the espresso, runtime and circuit subsystems even in quick
   mode). *)
let hw_crosscheck () =
  Obs.Span.with_ "bench.hw-crosscheck" @@ fun () ->
  let on_set = Mcnc.Generators.comparator ~bits:2 in
  let result = Espresso.Minimize.minimize on_set in
  let compiled =
    Cache.compile (Cache.create ~capacity:4 ()) result.Espresso.Minimize.cover
  in
  let pla = Cache.pla compiled in
  let hw = Cnfet.Pla.build_hw pla in
  let n_in = Cnfet.Pla.num_inputs pla in
  let ok = ref true in
  for m = 0 to (1 lsl n_in) - 1 do
    let inputs = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
    if Cnfet.Pla.simulate_hw hw inputs <> Cache.eval compiled inputs then ok := false
  done;
  !ok

(* --- JSON rendering ------------------------------------------------------ *)

let json_of_report r =
  Printf.sprintf
    "{\"name\":\"%s\",\"n_in\":%d,\"n_out\":%d,\"cubes_before\":%d,\"cubes_after\":%d,\"lits_after\":%d,\"minimize_s\":%.6f,\"iterations\":%d,\"packed_mops\":%.3f,\"naive_mops\":%.3f,\"op_speedup\":%.3f,\"eval_mevals\":%.3f,\"eval_block_mevals\":%.3f,\"block_speedup\":%.3f,\"identical\":%b,\"block_identical\":%b}"
    (Bench.json_escape r.name) r.n_in r.n_out r.cubes_before r.cubes_after
    r.lits_after r.minimize_s r.iterations r.packed_mops r.naive_mops r.op_speedup
    r.eval_mevals r.eval_block_mevals r.block_speedup r.identical r.block_identical

let counters_json () =
  let naive = Espresso.Minimize.blocker_scans_naive_total () in
  let scans = Espresso.Minimize.blocker_scans_total () in
  let pairs = Cover.scc_pairs_total () in
  let checks = Cover.scc_checks_total () in
  let rate saved total = if total = 0 then 0.0 else 1.0 -. (float_of_int saved /. float_of_int total) in
  Printf.sprintf
    "{\"minimize_calls\":%d,\"minimize_iterations\":%d,\"expand_cubes\":%d,\"blocker_scans\":%d,\"blocker_scans_naive\":%d,\"blocker_cache_savings\":%.4f,\"scc_calls\":%d,\"scc_checks\":%d,\"scc_pairs\":%d,\"scc_prune_rate\":%.4f}"
    (Espresso.Minimize.calls_total ())
    (Espresso.Minimize.iterations_total ())
    (Espresso.Minimize.expand_cubes_total ())
    scans naive (rate scans naive) (Cover.scc_calls_total ()) checks pairs
    (rate checks pairs)

let to_json ~quick ~seed reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf "  \"functions\": [\n    ";
  Buffer.add_string buf (String.concat ",\n    " (List.map json_of_report reports));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"op_speedup_geomean\": %.3f,\n" (geomean_speedup reports));
  Buffer.add_string buf
    (Printf.sprintf "  \"block_speedup_geomean\": %.3f,\n"
       (geomean_block_speedup reports));
  Buffer.add_string buf (Printf.sprintf "  \"espresso_counters\": %s\n" (counters_json ()));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json ~quick ~seed ~path reports =
  let oc = open_out path in
  output_string oc (to_json ~quick ~seed reports);
  close_out oc

let pp_report fmt r =
  Format.fprintf fmt
    "%-16s %2d in %2d out  %3d->%3d cubes  min %8.4fs  ops %8.2f vs %8.2f Mop/s  %5.2fx  eval %6.2f vs %6.2f Mev/s  %5.2fx  %s"
    r.name r.n_in r.n_out r.cubes_before r.cubes_after r.minimize_s r.packed_mops
    r.naive_mops r.op_speedup r.eval_mevals r.eval_block_mevals r.block_speedup
    (if r.identical && r.block_identical then "bit-identical" else "MISMATCH")
