(** Deterministic fan-out/fan-in of evaluation jobs over a {!Pool}.

    Inputs are cut into contiguous chunks (one pool task each) and results
    merged by input index, so parallel output is bit-identical to a
    sequential run. Monte-Carlo fan-out derives one rng per trial by
    splitting the caller's seed rng in trial order — a trial's random
    stream depends only on its index, never on scheduling, so
    [jobs = 1] and [jobs = N] produce the same estimate. *)

exception Item_failed of { index : int; exn : exn }
(** Raised at the fan-in point when an item's function raised. [index] is
    the failing input's index; with several failures the smallest index
    wins (what a sequential run would have hit first). Combined with
    {!Cnfet.Gnor.Floating_output} this pinpoints which vector and output
    failed inside a parallel sweep. *)

val map : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], deterministic. [chunk] is the number of items
    per pool task (default: enough for ~4 chunks per worker). With
    [metrics], counts [batch.jobs], [batch.items] and [batch.chunks]. *)

val mapi : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** {2 Input-vector sweeps}

    All sweeps enumerate minterms [0 .. 2^n_in - 1] in order (bit [i] of
    the minterm is input [i]), capped at 24 inputs. *)

val minterm : int -> int -> bool array
(** [minterm n_in m] is the input assignment for minterm [m]. *)

val sweep : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> n_in:int -> (bool array -> 'b) -> 'b array

val sweep_pla : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cnfet.Pla.t -> bool array array
(** Functional truth-table sweep. *)

val sweep_compiled : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cache.compiled -> bool array array
(** Same through a {!Cache}-compiled evaluator, blocked: minterms are
    packed 63 per word ({!Cache.eval_block}) with one pool item per
    block, so [chunk] counts blocks. Bit-identical to the scalar sweep. *)

val eval_batch : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cache.compiled -> bool array array -> bool array array
(** Evaluate an arbitrary batch of input vectors through the bit-sliced
    compiled path: full 63-vector blocks are transposed and fanned out
    across the pool (one block per item; [chunk] counts blocks), the
    ragged tail runs through the scalar evaluator. Results are in input
    order, bit-identical to mapping {!Cache.eval} over the batch. *)

val sweep_pla_hw : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cnfet.Pla.t -> bool array array
(** Switch-level sweep: builds the netlist once, simulates every vector
    (each worker gets its own simulator state over the shared, read-only
    netlist). *)

val sweep_cascade : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cnfet.Cascade.t -> bool array array

val sweep_wpla : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Cnfet.Wpla.t -> bool array array

(** {2 Monte-Carlo fan-out} *)

val split_rngs : Util.Rng.t -> int -> Util.Rng.t array
(** [n] independent rngs split off the seed rng in index order. *)

val monte_carlo : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Util.Rng.t -> trials:int -> (Util.Rng.t -> 'a) -> 'a array
(** Run [trials] independent trials, one split rng each; results in trial
    order. *)

val yield_estimate : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> defect_rate:float -> Fault.Yield.point
(** Parallel {!Fault.Yield.estimate} over split rngs (defaults: 200
    trials, 2 spare rows). Deterministic in the seed rng's state. *)

val yield_sweep : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> rates:float list -> Fault.Yield.point list

val variation_monte_carlo : ?chunk:int -> ?metrics:Metrics.t -> Pool.t -> Util.Rng.t -> ?trials:int -> ?sigma:float -> ?params:Device.Ambipolar.params -> Device.Tech.t -> Cnfet.Area.profile -> Cnfet.Pla_timing.variation
(** Parallel device-variation Monte-Carlo (see
    {!Cnfet.Pla_timing.monte_carlo}). *)
