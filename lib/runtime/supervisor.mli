(** Supervised execution over {!Pool}: deadlines, bounded retry with
    decorrelated-jitter backoff, a circuit breaker over the compiled-PLA
    {!Cache}, and serial fallback when the pool itself is unhealthy.

    The pool gives crash {e isolation} (a poisoned task fails alone);
    the supervisor adds crash {e recovery}: a failed or overdue attempt
    is retried — with a fresh submission, hence a fresh
    {!Fault.Inject} decision stream — after an exponentially growing,
    jittered pause, up to a bounded attempt budget. Time is read through
    an injectable {!Obs.Clock.t} and pauses go through an injectable
    sleep, so every schedule is unit-testable with
    {!Obs.Clock.fixed_step} and no real waiting.

    All recovery activity is counted in {!Metrics}
    ([supervisor.retries], [supervisor.deadline_expiries],
    [supervisor.breaker_opens], [supervisor.fallback_evals],
    [supervisor.serial_fallbacks]) and marked in {!Obs} traces. *)

(** {1 Backoff} *)

module Backoff : sig
  type policy = { base_s : float; cap_s : float }

  val default : policy
  (** 1 ms base, 250 ms cap. *)

  val next : policy -> Util.Rng.t -> prev_s:float -> float
  (** Decorrelated jitter: [min cap_s (base_s + u * (3 * prev_s - base_s))]
      with [u] uniform in [0,1) — the schedule grows roughly
      exponentially but never synchronizes retries across tasks. Pass
      [prev_s = 0.] for the first delay. *)

  val schedule : policy -> Util.Rng.t -> attempts:int -> float list
  (** The successive delays [next] would produce; for tests and docs. *)
end

(** {1 Errors} *)

exception Deadline_exceeded of { label : string; deadline_s : float; attempt : int }
(** One attempt outlived its per-task deadline. The abandoned task may
    still complete in the pool; its result is discarded. *)

exception
  Retries_exhausted of { label : string; attempts : int; last : exn }
(** Every attempt failed; [last] is the final attempt's exception. *)

(** {1 Configuration} *)

type config = {
  max_attempts : int;  (** total attempts per task, >= 1 *)
  deadline_s : float option;  (** per-attempt deadline; [None] = unbounded *)
  backoff : Backoff.policy;
  poll_s : float;  (** deadline poll interval *)
  breaker_threshold : int;  (** consecutive cache corruptions that open the breaker *)
  breaker_cooldown_s : float;  (** open -> half-open delay *)
  crash_tolerance : int;  (** pool worker crashes beyond which new work runs serially *)
}

val default_config : config
(** 3 attempts, no deadline, default backoff, 0.5 ms poll, breaker at 3
    corruptions with a 50 ms cooldown, serial fallback after 8 crashes. *)

(** {1 Supervisor} *)

type t

val create :
  ?metrics:Metrics.t ->
  ?clock:Obs.Clock.t ->
  ?sleep:(float -> unit) ->
  ?seed:int ->
  ?config:config ->
  Pool.t ->
  t
(** Wrap a pool. [clock] defaults to {!Obs.Clock.monotonic}, [sleep] to
    [Unix.sleepf], [seed] (jitter stream) to 0. The supervisor never
    owns the pool: shut it down separately. *)

val pool : t -> Pool.t

val config : t -> config

val healthy : t -> bool
(** [false] once the pool has lost more than [crash_tolerance] workers;
    subsequent {!run} calls execute in the submitting domain. *)

val run : ?label:string -> t -> (unit -> 'a) -> 'a
(** Execute the thunk under supervision: submit to the pool (or run
    serially when {!healthy} is false), bound the wait by
    [deadline_s], retry failures up to [max_attempts] with backoff.
    Raises {!Retries_exhausted} when the budget is spent. *)

val run_all : ?label:string -> t -> (unit -> 'a) array -> 'a array
(** Parallel first pass over all thunks, then per-index supervised
    retry of any failure — the supervised analogue of {!Pool.run_all}:
    one bad item never discards its siblings' completed work. *)

(** {1 Cache circuit breaker} *)

type breaker_state = Closed | Open | Half_open

val breaker_state : t -> breaker_state

val eval : ?inverted_outputs:bool array -> t -> Cache.t -> Logic.Cover.t -> bool array -> bool array
(** Evaluate through the compiled cache while the breaker is closed.
    Each {!Cache.Corrupt_entry} (checksum mismatch at serve time) counts
    one strike and the evaluation falls back to building an uncompiled
    [Pla] directly; [breaker_threshold] consecutive strikes open the
    breaker and {e all} evaluations bypass the cache until
    [breaker_cooldown_s] has passed, after which one half-open probe
    either closes it (clean serve) or re-opens it. Results are
    bit-identical between the compiled and fallback paths. *)
