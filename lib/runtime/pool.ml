(* A fixed-size worker pool on OCaml 5 domains.

   Tasks are closures pushed onto a FIFO queue guarded by a mutex and a
   condition variable; [jobs] worker domains loop popping tasks until
   shutdown. Each [submit] returns a future; [await] blocks until the
   task ran and re-raises its exception (with the worker-side backtrace)
   if it failed, so errors surface at the join point exactly as they
   would have sequentially.

   Crash isolation: a queued task carries both its body and a [poison]
   callback that fails its future. The body already converts ordinary
   exceptions into the future's [Failed] state; anything that escapes it
   anyway — an injected worker crash ([Fault.Inject]), an asynchronous
   exception, a bug in the wrapping itself — is treated as domain
   poisoning: the future is failed (so joiners never hang), the crash is
   counted, a replacement domain is spawned while the poisoned one exits,
   and the queue keeps draining. [shutdown] joins every domain ever
   spawned, including replacements and the corpses they replaced, so it
   stays safe no matter how many workers died mid-task.

   When [jobs = 1] and the machine is single-core this degenerates to a
   slightly slower sequential loop — the pool never reorders work, so
   results are deterministic regardless of the domain count (fan-in is
   always by submission index, see {!Batch}). *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable state : 'a state;
}

(* What actually sits in the queue: [index] is the submission number (the
   chaos engine's deterministic coordinate), [poison] fails the future if
   the body never got to set it. *)
type task = {
  index : int;
  run : unit -> unit;
  poison : exn -> Printexc.raw_backtrace -> unit;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;  (* broadcast when the last domain has been joined *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable joining : bool;  (* some stopper currently owns the domain join *)
  mutable stopped : bool;  (* every domain ever spawned has been joined *)
  mutable domains : unit Domain.t list;  (* every domain ever spawned *)
  mutable next_index : int;
  mutable crashes : int;
  jobs : int;
  metrics : Metrics.t option;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let crashes t =
  Mutex.lock t.lock;
  let n = t.crashes in
  Mutex.unlock t.lock;
  n

exception Worker_poisoned of exn

let rec worker pool i =
  let busy_gauge =
    Option.map (fun m -> Metrics.gauge m (Printf.sprintf "pool.domain%d.busy_s" i)) pool.metrics
  in
  let busy = ref 0.0 in
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.queue && pool.stopping then Mutex.unlock pool.lock
    else begin
      let task = Queue.pop pool.queue in
      (match pool.metrics with
      | Some m -> Metrics.set_gauge (Metrics.gauge m "pool.queue_depth") (float_of_int (Queue.length pool.queue))
      | None -> ());
      Mutex.unlock pool.lock;
      let t0 = Unix.gettimeofday () in
      (try run_task task
       with Worker_poisoned cause ->
         (* The domain is considered unreliable after a crash: count it,
            spawn a fresh replacement and let this one exit. The queue
            keeps draining on the replacement. Accounting happens before
            the future is failed, so a joiner that observes the failure
            already sees the crash counted. *)
         crash pool i cause;
         task.poison cause (Printexc.get_callstack 0);
         raise Exit);
      busy := !busy +. (Unix.gettimeofday () -. t0);
      Option.iter (fun g -> Metrics.set_gauge g !busy) busy_gauge;
      loop ()
    end
  and run_task task =
    match Fault.Inject.tap (Fault.Inject.Pool_task { index = task.index }) with
    | Fault.Inject.No_fault -> run_isolated task
    | Fault.Inject.Stall s ->
      if s > 0.0 then Unix.sleepf s;
      run_isolated task
    | Fault.Inject.Raise e ->
      (* The task fails alone, exactly as if its body had raised. *)
      task.poison e (Printexc.get_callstack 0)
    | Fault.Inject.Crash_worker e -> raise (Worker_poisoned e)
    | Fault.Inject.Corrupt -> run_isolated task
  and run_isolated task =
    (* [run] converts the body's exceptions into the future itself;
       anything escaping it is domain poisoning, not a task failure. *)
    match task.run () with
    | () -> ()
    | exception e -> raise (Worker_poisoned e)
  in
  try loop () with Exit -> ()

and crash pool i _cause =
  Mutex.lock pool.lock;
  pool.crashes <- pool.crashes + 1;
  (match pool.metrics with
  | Some m ->
    Metrics.incr (Metrics.counter m "pool.worker_crashes");
    Metrics.incr (Metrics.counter m "pool.respawns")
  | None -> ());
  if not pool.stopping then
    pool.domains <- Domain.spawn (fun () -> worker pool i) :: pool.domains;
  Mutex.unlock pool.lock;
  if Obs.Span.enabled () then Obs.Span.instant ~args:[ ("domain", string_of_int i) ] "pool.worker_crash"

let create ?metrics ?jobs () =
  let jobs = match jobs with Some n -> max 1 n | None -> default_jobs () in
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      joining = false;
      stopped = false;
      domains = [];
      next_index = 0;
      crashes = 0;
      jobs;
      metrics;
    }
  in
  pool.domains <- List.init jobs (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let submit pool f =
  let fut = { f_lock = Mutex.create (); f_cond = Condition.create (); state = Pending } in
  let resolve outcome =
    Mutex.lock fut.f_lock;
    (* First writer wins: a poison racing a completed body is dropped. *)
    (match fut.state with
    | Pending ->
      fut.state <- outcome;
      Condition.broadcast fut.f_cond
    | Done _ | Failed _ -> ());
    Mutex.unlock fut.f_lock
  in
  let run () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    resolve outcome
  in
  let run =
    match pool.metrics with
    | None -> run
    | Some m -> fun () -> Metrics.time m "pool.task_latency_s" run
  in
  let poison e bt = resolve (Failed (e, bt)) in
  Mutex.lock pool.lock;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let index = pool.next_index in
  pool.next_index <- index + 1;
  Queue.push { index; run; poison } pool.queue;
  (match pool.metrics with
  | Some m ->
    Metrics.incr (Metrics.counter m "pool.tasks");
    Metrics.set_gauge (Metrics.gauge m "pool.queue_depth") (float_of_int (Queue.length pool.queue))
  | None -> ());
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock;
  fut

let is_pending fut = match fut.state with Pending -> true | Done _ | Failed _ -> false

let await_result fut =
  Mutex.lock fut.f_lock;
  while is_pending fut do
    Condition.wait fut.f_cond fut.f_lock
  done;
  let st = fut.state in
  Mutex.unlock fut.f_lock;
  match st with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let await fut =
  match await_result fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let peek fut =
  Mutex.lock fut.f_lock;
  let st = fut.state in
  Mutex.unlock fut.f_lock;
  match st with
  | Pending -> None
  | Done v -> Some (Ok v)
  | Failed (e, bt) -> Some (Error (e, bt))

let run_all pool thunks =
  let futures = Array.map (fun f -> submit pool f) thunks in
  (* Drain every future before raising anything: one failing task must not
     abandon its already-queued siblings (their exceptions would be lost
     and their results discarded half-computed). The failure re-raised is
     the smallest submission index — what a sequential run would have hit
     first — regardless of wall-clock completion order. *)
  let outcomes = Array.map await_result futures in
  let first_failure = ref None in
  Array.iter
    (fun o ->
      match (o, !first_failure) with
      | Error eb, None -> first_failure := Some eb
      | _ -> ())
    outcomes;
  match !first_failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.map (function Ok v -> v | Error _ -> assert false) outcomes

exception Shutdown

let () =
  Printexc.register_printer (function
    | Shutdown -> Some "Pool.Shutdown (queued task discarded by shutdown)"
    | _ -> None)

(* Single stop path shared by [drain] and [shutdown]. Safe under any
   number of concurrent callers (serve's signal handler racing a
   supervisor fallback, say): the first caller to get here owns the
   domain join; everyone else blocks on [idle] until the join completes,
   so every stopper returns to a fully-stopped pool. [discard_queued]
   fails queued-but-unstarted tasks with {!Shutdown} instead of running
   them — their joiners unblock immediately rather than waiting on work
   that will never start. *)
let stop ~discard_queued pool =
  Mutex.lock pool.lock;
  if not pool.stopping then begin
    pool.stopping <- true;
    Condition.broadcast pool.nonempty
  end;
  if discard_queued then begin
    let bt = Printexc.get_callstack 0 in
    while not (Queue.is_empty pool.queue) do
      (Queue.pop pool.queue).poison Shutdown bt
    done
  end;
  if pool.joining || pool.stopped then begin
    while not pool.stopped do
      Condition.wait pool.idle pool.lock
    done;
    Mutex.unlock pool.lock
  end
  else begin
    pool.joining <- true;
    (* A crashing worker may have spawned a replacement after we took the
       list; loop until no new domains appear. Joining an already-exited
       domain returns immediately, so corpses cost nothing. *)
    let rec join_all () =
      match pool.domains with
      | [] ->
        pool.stopped <- true;
        Condition.broadcast pool.idle;
        Mutex.unlock pool.lock
      | ds ->
        pool.domains <- [];
        Mutex.unlock pool.lock;
        List.iter Domain.join ds;
        Mutex.lock pool.lock;
        Condition.broadcast pool.nonempty;
        join_all ()
    in
    join_all ()
  end

let drain pool = stop ~discard_queued:false pool

let shutdown pool = stop ~discard_queued:true pool

let with_pool ?metrics ?jobs f =
  let pool = create ?metrics ?jobs () in
  Fun.protect ~finally:(fun () -> drain pool) (fun () -> f pool)
