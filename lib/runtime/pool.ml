(* A fixed-size worker pool on OCaml 5 domains.

   Tasks are closures pushed onto a FIFO queue guarded by a mutex and a
   condition variable; [jobs] worker domains loop popping tasks until
   shutdown. Each [submit] returns a future; [await] blocks until the
   task ran and re-raises its exception (with the worker-side backtrace)
   if it failed, so errors surface at the join point exactly as they
   would have sequentially.

   When [jobs = 1] and the machine is single-core this degenerates to a
   slightly slower sequential loop — the pool never reorders work, so
   results are deterministic regardless of the domain count (fan-in is
   always by submission index, see {!Batch}). *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable state : 'a state;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  jobs : int;
  metrics : Metrics.t option;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let worker pool i =
  let busy_gauge =
    Option.map (fun m -> Metrics.gauge m (Printf.sprintf "pool.domain%d.busy_s" i)) pool.metrics
  in
  let busy = ref 0.0 in
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.queue && pool.stopping then Mutex.unlock pool.lock
    else begin
      let task = Queue.pop pool.queue in
      (match pool.metrics with
      | Some m -> Metrics.set_gauge (Metrics.gauge m "pool.queue_depth") (float_of_int (Queue.length pool.queue))
      | None -> ());
      Mutex.unlock pool.lock;
      let t0 = Unix.gettimeofday () in
      task ();
      busy := !busy +. (Unix.gettimeofday () -. t0);
      Option.iter (fun g -> Metrics.set_gauge g !busy) busy_gauge;
      loop ()
    end
  in
  loop ()

let create ?metrics ?jobs () =
  let jobs = match jobs with Some n -> max 1 n | None -> default_jobs () in
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      jobs;
      metrics;
    }
  in
  pool.domains <- List.init jobs (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let submit pool f =
  let fut = { f_lock = Mutex.create (); f_cond = Condition.create (); state = Pending } in
  let task () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_lock;
    fut.state <- outcome;
    Condition.broadcast fut.f_cond;
    Mutex.unlock fut.f_lock
  in
  let task =
    match pool.metrics with
    | None -> task
    | Some m ->
      fun () -> Metrics.time m "pool.task_latency_s" task
  in
  Mutex.lock pool.lock;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  (match pool.metrics with
  | Some m ->
    Metrics.incr (Metrics.counter m "pool.tasks");
    Metrics.set_gauge (Metrics.gauge m "pool.queue_depth") (float_of_int (Queue.length pool.queue))
  | None -> ());
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock;
  fut

let is_pending fut = match fut.state with Pending -> true | Done _ | Failed _ -> false

let await fut =
  Mutex.lock fut.f_lock;
  while is_pending fut do
    Condition.wait fut.f_cond fut.f_lock
  done;
  let st = fut.state in
  Mutex.unlock fut.f_lock;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run_all pool thunks =
  let futures = Array.map (fun f -> submit pool f) thunks in
  (* Await in submission order: the first failure (by index) is the one
     re-raised, matching what a sequential run would have hit first. *)
  Array.map await futures

let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.stopping then begin
    pool.stopping <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end
  else Mutex.unlock pool.lock

let with_pool ?metrics ?jobs f =
  let pool = create ?metrics ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
