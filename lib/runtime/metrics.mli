(** A lightweight metrics registry: counters, gauges and latency
    histograms, all safe to mutate from any domain.

    Counters are monotone and atomic; gauges hold an instantaneous value
    or a callback evaluated at dump time; histograms are
    {!Histogram.t}s keyed by name. {!dump} renders the whole registry as
    sorted text, one metric per line. *)

type t

val create : unit -> t

val global : t
(** Process-wide registry used by the CLI front ends. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create by name. *)

val incr : ?by:int -> counter -> unit

val incr_named : ?by:int -> t -> string -> unit
(** [incr_named t name] bumps the counter [name], creating it on first
    use — convenience for call sites that don't keep the handle. *)

val count : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit

val register_gauge : t -> string -> (unit -> float) -> unit
(** Computed gauge: the callback is evaluated at read/dump time. *)

val read_gauge : gauge -> float

(** {2 Histograms} *)

val histogram : t -> string -> Histogram.t

val observe : t -> string -> float -> unit
(** Observe into the named histogram (created on first use). *)

val span_observer : t -> name:string -> dur_s:float -> unit
(** Observer for {!Obs.Trace.set_observer}: records each completed span's
    duration (seconds) into the histogram [span.<name>], creating it on
    first use. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration (seconds) into the
    named histogram, whether it returns or raises. *)

(** {2 Reporting} *)

val dump : t -> string
(** Text rendering, metrics sorted by name within each kind. *)

val counters : t -> (string * int) list
(** Name-sorted counter values. *)

val gauges : t -> (string * float) list
(** Name-sorted gauge readings (callbacks evaluated now). *)

val histograms : t -> (string * Histogram.summary) list
(** Name-sorted histogram summaries. *)

val reset : t -> unit
(** Zero counters and set gauges, clear histograms. Callback gauges keep
    their callback. *)

val register_library_gauges : t -> unit
(** Register callback gauges exposing the library-wide work counters:
    [sim.phases_total], [sim.sweeps_total], [espresso.minimize_calls] and
    [espresso.minimize_iterations]. *)
