(** Compiled-PLA cache with content-hash keys and hit/miss accounting.

    Mapping a cover onto a PLA and building its switch-level netlist are
    pure functions of the programmed content — the cube list plus the
    output-polarity configuration — so they are memoised under an MD5
    digest of exactly that content. Each entry holds the mapped
    {!Cnfet.Pla.t}, a compiled evaluator (per-row closures over
    precomputed masks that skip [Drop] crosspoints; bit-identical to
    [Pla.eval]) and the lazily-built switch-level netlist. Eviction is
    LRU at a fixed capacity. Thread-safe. *)

type t

type key = string
(** MD5 digest of the programmed content. *)

exception Corrupt_entry of { key : key }
(** Raised by {!compile} / {!compile_of_pla} when the entry about to be
    served (or just stored, under {!Fault.Inject} chaos) no longer
    matches the integrity checksum recorded at compile time. The rotten
    entry is evicted before raising, so a plain retry recompiles from
    source; {!Supervisor} additionally counts these toward its
    circuit breaker and falls back to uncompiled evaluation. *)

val key_of_cover : ?inverted_outputs:bool array -> Logic.Cover.t -> key
(** The cache key {!compile} uses: digest of [n_in], [n_out], the cube
    list in order, and the polarity configuration. *)

val create : ?capacity:int -> unit -> t
(** LRU capacity defaults to 256 entries. *)

(** {2 Compiled entries} *)

type compiled

val compile : t -> ?inverted_outputs:bool array -> Logic.Cover.t -> compiled
(** Find-or-build the compiled PLA for this programmed cover.
    [inverted_outputs] follows {!Cnfet.Pla.of_cover}'s convention and is
    part of the key. *)

val compile_hit : t -> ?inverted_outputs:bool array -> Logic.Cover.t -> compiled * bool
(** {!compile}, additionally reporting whether the entry was already
    cached ([true] = hit). The flag describes this call alone —
    inferring it by diffing the shared {!hits} counter races with
    concurrent lookups on the same cache. *)

val compile_of_pla : t -> Cnfet.Pla.t -> compiled
(** Same, keyed on an already-mapped PLA's plane contents (used for
    repaired / hand-built PLAs that have no source cover). *)

val pla : compiled -> Cnfet.Pla.t

val eval : compiled -> bool array -> bool array
(** Compiled functional evaluation; bit-identical to [Pla.eval] on the
    underlying PLA. *)

val hw : compiled -> Cnfet.Pla.hw
(** The switch-level realization, built on first use and memoised. *)

(** {2 Accounting} *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val corruptions : t -> int
(** Checksum mismatches detected (and evicted) so far. *)

val size : t -> int

val corrupt_for_test : compiled -> unit
(** Deterministically rot a compiled entry in place (flips the first
    output's polarity) {e without} updating its stored checksum — the
    next serve of that entry must raise {!Corrupt_entry}. Chaos/test
    hook; never call it in production paths. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val export_metrics : t -> Metrics.t -> unit
(** Register [cache.*] callback gauges on a registry. *)
