(** Compiled-PLA cache with content-hash keys and hit/miss accounting.

    Mapping a cover onto a PLA and building its switch-level netlist are
    pure functions of the programmed content — the cube list plus the
    output-polarity configuration — so they are memoised under an MD5
    digest of exactly that content. Each entry holds the mapped
    {!Cnfet.Pla.t}, a compiled scalar evaluator (per-row masks that skip
    [Drop] crosspoints; bit-identical to [Pla.eval]), a bit-sliced
    transposed evaluator ({!eval_block}: 63 input vectors per native
    int) and the lazily-built switch-level netlist. Eviction is LRU at a
    fixed capacity, tracked by an intrusive doubly-linked list (touch
    and evict are O(1)). Thread-safe. *)

type t

type key = string
(** MD5 digest of the programmed content. *)

exception Corrupt_entry of { key : key }
(** Raised by {!compile} / {!compile_of_pla} when the entry about to be
    served (or just stored, under {!Fault.Inject} chaos) no longer
    matches the integrity checksum recorded at compile time. The rotten
    entry is evicted before raising, so a plain retry recompiles from
    source; {!Supervisor} additionally counts these toward its
    circuit breaker and falls back to uncompiled evaluation. *)

val key_of_cover : ?inverted_outputs:bool array -> Logic.Cover.t -> key
(** The cache key {!compile} uses: digest of [n_in], [n_out], the cube
    list in order, and the polarity configuration. *)

val create : ?capacity:int -> unit -> t
(** LRU capacity defaults to 256 entries. *)

(** {2 Compiled entries} *)

type compiled

val compile : t -> ?inverted_outputs:bool array -> Logic.Cover.t -> compiled
(** Find-or-build the compiled PLA for this programmed cover.
    [inverted_outputs] follows {!Cnfet.Pla.of_cover}'s convention and is
    part of the key. *)

val compile_hit : t -> ?inverted_outputs:bool array -> Logic.Cover.t -> compiled * bool
(** {!compile}, additionally reporting whether the entry was already
    cached ([true] = hit). The flag describes this call alone —
    inferring it by diffing the shared {!hits} counter races with
    concurrent lookups on the same cache. *)

val compile_of_pla : t -> Cnfet.Pla.t -> compiled
(** Same, keyed on an already-mapped PLA's plane contents (used for
    repaired / hand-built PLAs that have no source cover). *)

val compile_of_pla_hit : t -> Cnfet.Pla.t -> compiled * bool
(** {!compile_of_pla} with the same per-call hit flag as
    {!compile_hit}. *)

val pla : compiled -> Cnfet.Pla.t

val eval : compiled -> bool array -> bool array
(** Compiled functional evaluation; bit-identical to [Pla.eval] on the
    underlying PLA. Allocation-light: plane scratch buffers are reused
    across calls on the same compiled entry (claimed atomically, so
    concurrent evaluators on other domains stay correct). *)

val hw : compiled -> Cnfet.Pla.hw
(** The switch-level realization, built on first use and memoised. *)

(** {2 Bit-sliced (transposed) evaluation}

    The transposed layout: one native [int] per input column, in which
    bit (lane) [v] holds that column's value for vector [v] of the
    block. A block carries up to {!lanes_per_word} = 63 vectors — the
    payload width of an OCaml tagged int — so one AND/NOR word op per
    non-[Drop] crosspoint evaluates all 63 at once. *)

val lanes_per_word : int
(** 63: vectors per block word. *)

type block = { words : int array; lanes : int }
(** [words.(c)] packs input column [c] across [lanes] vectors; bit [v]
    of [words.(c)] is vector [v]'s value. [0 <= lanes <= 63]. Bits at
    and above [lanes] must be zero. *)

val transpose : bool array array -> first:int -> lanes:int -> block
(** [transpose vectors ~first ~lanes] packs
    [vectors.(first .. first+lanes-1)] into a block. All selected
    vectors must share [vectors.(first)]'s width.
    @raise Invalid_argument on a ragged batch or out-of-range slice. *)

val untranspose : int array -> lanes:int -> bool array array
(** Inverse fan-in: unpack per-column (or per-output) words back into
    [lanes] row vectors, in lane order — bit-identical to evaluating
    the vectors one by one. *)

val eval_block : compiled -> block -> int array
(** Evaluate 63-at-a-time: returns one word per output, lane [v] of
    word [o] being output [o] of vector [v] — bit-identical to {!eval}
    on each lane. Covers with more than 62 input columns (the scalar
    [Indexed] fallback) run on the same sliced lanes. Bits at and above
    [block.lanes] are zero in the result.
    @raise Invalid_argument if [Array.length block.words] differs from
    the compiled PLA's input count or [block.lanes] is out of range. *)

(** {2 Accounting} *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val corruptions : t -> int
(** Checksum mismatches detected (and evicted) so far. *)

val size : t -> int

val corrupt_for_test : compiled -> unit
(** Deterministically rot a compiled entry in place (flips the first
    output's polarity) {e without} updating its stored checksum — the
    next serve of that entry must raise {!Corrupt_entry}. Chaos/test
    hook; never call it in production paths. *)

val corrupt_block_for_test : compiled -> unit
(** Like {!corrupt_for_test} but rots only the bit-sliced arrays,
    leaving the scalar rows intact — proves the integrity checksum
    covers the transposed form too. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val export_metrics : t -> Metrics.t -> unit
(** Register [cache.*] callback gauges on a registry. *)
