(** The closed self-healing loop: inject → detect → repair → re-verify.

    Arms {!Fault.Inject} and drives the whole serving stack through it in
    rounds, exercising every recovery mechanism the runtime owns:

    {ul
    {- {b supervised batches}: input-space sweeps through
       {!Supervisor.run_all} / {!Supervisor.eval} while pool tasks raise,
       stall and crash their workers and compiled-cache entries rot —
       results must stay bit-identical to the fault-free oracle (crashes
       are respawned, failures retried, corrupt entries checksum-detected
       and served via the uncompiled fallback);}
    {- {b crosspoint faults}: programmed cells flip to stuck states,
       {!Fault.Atpg} vectors expose the miscompares, {!Fault.Repair}
       re-maps products onto spare rows, small arrays are physically
       reprogrammed through {!Cnfet.Program_hw} and the result is
       re-verified through the defects;}
    {- {b PG charge drift}: storage nodes of a live programmed array
       drift ({!Cnfet.Program_hw.disturb}), readback catches the decode
       flips, the cells are rewritten and verified;}
    {- {b crossbar scrub}: interconnect crosspoints flip against a
       golden snapshot ({!Cnfet.Crossbar.copy}/[equal]); the scrubber
       restores and re-verifies routing.}}

    Every recovery is timed; the report carries latency percentiles and
    a [degradation] fraction (operations that had to leave the fast
    path), the numbers the CI smoke gate checks. *)

type scenario = {
  sc_name : string;
  sc_rounds : int;
  sc_injected : int;  (** faults this scenario's sites drew *)
  sc_detected : int;
  sc_repaired : int;
  sc_unrepairable : int;  (** repair infeasible within the spare budget *)
  sc_undetected : int;  (** injected but masked (no observable miscompare) *)
}

type report = {
  seed : int;
  budget_s : float;
  wall_s : float;
  rounds : int;
  jobs : int;
  spare_rows : int;
  injected_by_category : (string * int) list;
  injected_total : int;
  scenarios : scenario list;
  miscompares : int;  (** supervised-batch results differing from the oracle — must be 0 *)
  worker_crashes : int;
  retries : int;
  deadline_expiries : int;
  serial_fallbacks : int;
  cache_corruptions : int;
  fallback_evals : int;
  breaker_opens : int;
  degradation : float;  (** degraded operations / total operations *)
  recoveries : int;
  recovery_p50_s : float;
  recovery_p90_s : float;
  recovery_p99_s : float;
  recovery_max_s : float;
}

val detected_unrepaired : report -> int
(** Faults that were injected {e and} detected but neither repaired nor
    proven unrepairable within the spare budget — the CI smoke gate
    requires 0. *)

val run :
  ?seed:int ->
  ?budget_s:float ->
  ?max_rounds:int ->
  ?spare_rows:int ->
  ?jobs:int ->
  ?plan:Fault.Inject.plan ->
  unit ->
  report
(** Run chaos rounds until the wall-clock budget (default 10 s) or
    [max_rounds] (default 50) is exhausted. Deterministic in [seed]
    (default 42) up to wall-clock-dependent round count and latency
    readings: pin [max_rounds] under a generous budget for exact
    reproducibility. Arms {!Fault.Inject} for the duration; raises
    [Invalid_argument] if an engine is already armed. *)

val to_json : report -> string

val summary : report -> string
(** Human-readable multi-line rendering. *)
