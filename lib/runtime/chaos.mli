(** The closed self-healing loop: inject → detect → repair → re-verify.

    Arms {!Fault.Inject} and drives the whole serving stack through it in
    rounds, exercising every recovery mechanism the runtime owns:

    {ul
    {- {b supervised batches}: input-space sweeps through
       {!Supervisor.run_all} / {!Supervisor.eval} while pool tasks raise,
       stall and crash their workers and compiled-cache entries rot —
       results must stay bit-identical to the fault-free oracle (crashes
       are respawned, failures retried, corrupt entries checksum-detected
       and served via the uncompiled fallback);}
    {- {b crosspoint faults}: programmed cells flip to stuck states,
       {!Fault.Atpg} vectors expose the miscompares, {!Fault.Repair}
       re-maps products onto spare rows, small arrays are physically
       reprogrammed through {!Cnfet.Program_hw} and the result is
       re-verified through the defects;}
    {- {b PG charge drift}: storage nodes of a live programmed array
       drift ({!Cnfet.Program_hw.disturb}), readback catches the decode
       flips, the cells are rewritten and verified;}
    {- {b crossbar scrub}: interconnect crosspoints flip against a
       golden snapshot ({!Cnfet.Crossbar.copy}/[equal]); the scrubber
       restores and re-verifies routing.}}

    Every recovery is timed; the report carries latency percentiles and
    a [degradation] fraction (operations that had to leave the fast
    path), the numbers the CI smoke gate checks. *)

type scenario = {
  sc_name : string;
  sc_rounds : int;
  sc_injected : int;  (** faults this scenario's sites drew *)
  sc_detected : int;
  sc_repaired : int;
  sc_unrepairable : int;  (** repair infeasible within the spare budget *)
  sc_undetected : int;  (** injected but masked (no observable miscompare) *)
}

type report = {
  seed : int;
  budget_s : float;
  wall_s : float;
  rounds : int;
  jobs : int;
  spare_rows : int;
  injected_by_category : (string * int) list;
  injected_total : int;
  scenarios : scenario list;
  miscompares : int;  (** supervised-batch results differing from the oracle — must be 0 *)
  worker_crashes : int;
  retries : int;
  deadline_expiries : int;
  serial_fallbacks : int;
  cache_corruptions : int;
  fallback_evals : int;
  breaker_opens : int;
  degradation : float;  (** degraded operations / total operations *)
  recoveries : int;
  recovery_p50_s : float;
  recovery_p90_s : float;
  recovery_p99_s : float;
  recovery_max_s : float;
}

val detected_unrepaired : report -> int
(** Faults that were injected {e and} detected but neither repaired nor
    proven unrepairable within the spare budget — the CI smoke gate
    requires 0. *)

(** One pass of the closed repair loop on a single programmed array —
    the kernel of the crosspoint scenario, exposed so other workloads
    (the classification degradation envelope) drive the {e same}
    detect → repair → re-verify path instead of reimplementing it. *)
type recovery_outcome = {
  rv_status :
    [ `Clean  (** the defect maps carry no defects; nothing to do *)
    | `Undetected  (** defects present but masked on the test set *)
    | `Repaired of Fault.Repair.assignment
      (** spare-row remap found and re-verified through the defects *)
    | `Unrepairable
    | `Reverify_failed  (** remap found but still miscompares through the defects *) ];
  rv_wall_s : float;  (** measured detect + repair + re-verify wall seconds *)
}

val recover :
  ?spare_rows:int ->
  tests:bool array list ->
  and_defects:Fault.Defect.map ->
  or_defects:Fault.Defect.map ->
  Cnfet.Pla.t ->
  recovery_outcome
(** Detection runs [tests] (normally {!Fault.Atpg.generate} vectors) on
    the identity-mapped array through the defects; on a miscompare,
    {!Fault.Repair.repair} searches an assignment over
    [products + spare_rows] physical rows (the defect maps must have
    that geometry), and the repaired array is re-verified exhaustively
    through the defects. The status is deterministic in its arguments;
    [rv_wall_s] is measurement. *)

val run :
  ?seed:int ->
  ?budget_s:float ->
  ?max_rounds:int ->
  ?spare_rows:int ->
  ?jobs:int ->
  ?plan:Fault.Inject.plan ->
  unit ->
  report
(** Run chaos rounds until the wall-clock budget (default 10 s) or
    [max_rounds] (default 50) is exhausted. Deterministic in [seed]
    (default 42) up to wall-clock-dependent round count and latency
    readings: pin [max_rounds] under a generous budget for exact
    reproducibility. Arms {!Fault.Inject} for the duration; raises
    [Invalid_argument] if an engine is already armed. *)

val to_json : report -> string

val summary : report -> string
(** Human-readable multi-line rendering. *)
