(* A latency histogram that stores every observation (the workloads here
   observe thousands of samples, not millions) and answers percentile
   queries with exactly the same rank convention as {!Util.Stats.percentile},
   so metrics dumps agree with offline analysis of the raw samples.

   Thread-safe: a private mutex guards the growable sample buffer, so
   workers on different domains can observe into one histogram. *)

type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  lock : Mutex.t;
}

let create () =
  {
    samples = Array.make 64 0.0;
    len = 0;
    sum = 0.0;
    lo = infinity;
    hi = neg_infinity;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let observe t x =
  locked t (fun () ->
      if t.len = Array.length t.samples then begin
        let bigger = Array.make (2 * Array.length t.samples) 0.0 in
        Array.blit t.samples 0 bigger 0 t.len;
        t.samples <- bigger
      end;
      t.samples.(t.len) <- x;
      t.len <- t.len + 1;
      t.sum <- t.sum +. x;
      if x < t.lo then t.lo <- x;
      if x > t.hi then t.hi <- x)

let count t = locked t (fun () -> t.len)

let sum t = locked t (fun () -> t.sum)

let mean t = locked t (fun () -> if t.len = 0 then 0.0 else t.sum /. float_of_int t.len)

let snapshot t = locked t (fun () -> Array.sub t.samples 0 t.len)

(* Same nearest-rank definition as Util.Stats.percentile. *)
let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile t p =
  let a = snapshot t in
  Array.sort Float.compare a;
  percentile_of_sorted a p

let percentiles t ps =
  (* One snapshot, one sort, however many ranks — so a percentile family
     (p50/p95/p99) is consistent: every rank is read off the same frozen
     sample set even while other domains keep observing. *)
  let a = snapshot t in
  Array.sort Float.compare a;
  List.map (fun p -> (p, percentile_of_sorted a p)) ps

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize t =
  let a = snapshot t in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then { n = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      n;
      mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
      min = a.(0);
      max = a.(n - 1);
      p50 = percentile_of_sorted a 50.0;
      p95 = percentile_of_sorted a 95.0;
      p99 = percentile_of_sorted a 99.0;
    }

let reset t =
  locked t (fun () ->
      t.len <- 0;
      t.sum <- 0.0;
      t.lo <- infinity;
      t.hi <- neg_infinity)

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n s.mean
    s.min s.p50 s.p95 s.p99 s.max
