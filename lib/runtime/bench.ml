(* The sequential-vs-parallel evaluation harness shared by the
   [bench-parallel] CLI subcommand and the [parallel] section of
   bench/main.exe.

   Every workload runs its sequential reference first, then the same work
   through {!Batch} on a {!Pool}, checks the two results bit-for-bit, and
   reports wall times. The reports (plus cache and histogram state) render
   to machine-readable JSON — BENCH_runtime.json in CI. *)

module Pla = Cnfet.Pla

type report = {
  name : string;
  items : int;
  seq_s : float;
  par_s : float;
  speedup : float;
  identical : bool;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let minterm = Batch.minterm

(* MCNC generator functions small enough for exhaustive switch-level
   sweeps. *)
let sweep_functions () =
  List.filter
    (fun (_, f) -> Logic.Cover.num_inputs f <= 7)
    Mcnc.Generators.all

(* --- workload 1: exhaustive switch-level sweeps over Table-1 functions --- *)

let hw_sweep ?metrics pool =
  let cases =
    List.map (fun (name, f) -> (name, Pla.of_minimized f)) (sweep_functions ())
  in
  let items =
    List.fold_left (fun n (_, pla) -> n + (1 lsl Pla.num_inputs pla)) 0 cases
  in
  let sequential () =
    List.map
      (fun (_, pla) ->
        let hw = Pla.build_hw pla in
        let n = Pla.num_inputs pla in
        Array.init (1 lsl n) (fun m -> Pla.simulate_hw hw (minterm n m)))
      cases
  in
  let parallel () = List.map (fun (_, pla) -> Batch.sweep_pla_hw ?metrics pool pla) cases in
  let seq, seq_s = time sequential in
  let par, par_s = time parallel in
  {
    name = "table1-hw-sweep";
    items;
    seq_s;
    par_s;
    speedup = (if par_s > 0.0 then seq_s /. par_s else 0.0);
    identical = seq = par;
  }

(* --- workload 2: compiled functional sweeps through the PLA cache -------- *)

let compiled_sweep ?metrics ~cache ~rounds pool =
  let cases = sweep_functions () in
  let covers = List.map (fun (_, f) -> Espresso.Minimize.cover f) cases in
  let items = rounds * List.fold_left (fun n c -> n + (1 lsl Logic.Cover.num_inputs c)) 0 covers in
  (* Each round re-requests every cover from the cache, modelling repeated
     service traffic over a small working set: first round misses, the
     rest hit. *)
  let sequential () =
    List.init rounds (fun _ ->
        List.map
          (fun cover ->
            let compiled = Cache.compile cache cover in
            let n = Logic.Cover.num_inputs cover in
            Array.init (1 lsl n) (fun m -> Cache.eval compiled (minterm n m)))
          covers)
  in
  let parallel () =
    List.init rounds (fun _ ->
        List.map
          (fun cover ->
            let compiled = Cache.compile cache cover in
            Batch.sweep_compiled ?metrics pool compiled)
          covers)
  in
  let seq, seq_s = time sequential in
  let par, par_s = time parallel in
  (* Also cross-check the compiled evaluator against the uncompiled model. *)
  let reference =
    List.map
      (fun cover ->
        let pla = Pla.of_cover cover in
        let n = Logic.Cover.num_inputs cover in
        Array.init (1 lsl n) (fun m -> Pla.eval pla (minterm n m)))
      covers
  in
  let identical = seq = par && List.for_all (fun round -> round = reference) seq in
  {
    name = "compiled-cache-sweep";
    items;
    seq_s;
    par_s;
    speedup = (if par_s > 0.0 then seq_s /. par_s else 0.0);
    identical;
  }

(* --- workload 3: Monte-Carlo yield -------------------------------------- *)

let yield_mc ?metrics ~seed ~trials pool =
  let pla = Pla.of_minimized (Mcnc.Generators.comparator ~bits:3) in
  let defect_rate = 0.02 and spare_rows = 3 in
  let sequential () =
    let rngs = Batch.split_rngs (Util.Rng.create seed) trials in
    Fault.Yield.point_of_outcomes ~defect_rate
      (Array.map (fun r -> Fault.Yield.trial r ~spare_rows pla ~defect_rate) rngs)
  in
  let parallel () =
    Batch.yield_estimate ?metrics pool (Util.Rng.create seed) ~trials ~spare_rows pla
      ~defect_rate
  in
  let seq, seq_s = time sequential in
  let par, par_s = time parallel in
  {
    name = "yield-monte-carlo";
    items = trials;
    seq_s;
    par_s;
    speedup = (if par_s > 0.0 then seq_s /. par_s else 0.0);
    identical = seq = par;
  }

(* --- workload 4: device-variation Monte-Carlo ---------------------------- *)

let variation_mc ?metrics ~seed ~trials pool =
  let profile = { Cnfet.Area.n_in = 9; n_out = 1; n_products = 46 } in
  let tech = Device.Tech.cnfet in
  let sigma = 0.15 in
  let sequential () =
    let rngs = Batch.split_rngs (Util.Rng.create seed) trials in
    Cnfet.Pla_timing.variation_of_delays tech profile
      (Array.to_list (Array.map (fun r -> Cnfet.Pla_timing.trial_delay r ~sigma tech profile) rngs))
  in
  let parallel () =
    Batch.variation_monte_carlo ?metrics pool (Util.Rng.create seed) ~trials ~sigma tech
      profile
  in
  let seq, seq_s = time sequential in
  let par, par_s = time parallel in
  {
    name = "variation-monte-carlo";
    items = trials;
    seq_s;
    par_s;
    speedup = (if par_s > 0.0 then seq_s /. par_s else 0.0);
    identical = seq = par;
  }

(* --- driver -------------------------------------------------------------- *)

let run ?metrics ?cache ?(seed = 2008) ?(trials = 1000) ~jobs () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  (match metrics with
  | Some m ->
    Metrics.register_library_gauges m;
    Cache.export_metrics cache m
  | None -> ());
  Pool.with_pool ?metrics ~jobs (fun pool ->
      [
        hw_sweep ?metrics pool;
        compiled_sweep ?metrics ~cache ~rounds:8 pool;
        yield_mc ?metrics ~seed ~trials pool;
        variation_mc ?metrics ~seed ~trials:(8 * trials) pool;
      ])

(* --- Assess.Run emission -------------------------------------------------- *)

let profile_name = "parallel"

let report_fields =
  [
    ("seq_s", "s", false, fun r -> r.seq_s);
    ("par_s", "s", false, fun r -> r.par_s);
    ("speedup", "x", true, fun r -> r.speedup);
    ("identical", "bool", true, fun r -> if r.identical then 1. else 0.);
  ]

let metrics_of_repeats (repeats : report list list) : Assess.Run.metric list =
  match repeats with
  | [] -> []
  | first :: _ ->
    let series_of wl_name (field, units, higher_is_better, get) =
      let samples =
        List.filter_map
          (fun reports ->
            Option.map get (List.find_opt (fun r -> r.name = wl_name) reports))
          repeats
      in
      Assess.Run.metric ~units ~higher_is_better
        (wl_name ^ "/" ^ field)
        (Array.of_list samples)
    in
    List.concat_map (fun r -> List.map (series_of r.name) report_fields) first

let run_assess ?metrics ?cache ?(seed = 2008) ?(trials = 1000) ?(repeats = 1) ~jobs () =
  let t0 = Unix.gettimeofday () in
  let all =
    List.init (max 1 repeats) (fun _ -> run ?metrics ?cache ~seed ~trials ~jobs ())
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let arun =
    Assess.Run.create
      ~meta:
        [
          ("bench", "parallel");
          ("jobs", string_of_int jobs);
          ("trials", string_of_int trials);
          ("repeats", string_of_int (max 1 repeats));
        ]
      ~profile:profile_name ~seed ~wall_s (metrics_of_repeats all)
  in
  (List.rev all |> List.hd, arun)

(* --- JSON rendering ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_report r =
  Printf.sprintf
    "{\"name\":\"%s\",\"items\":%d,\"seq_s\":%.6f,\"par_s\":%.6f,\"speedup\":%.3f,\"identical\":%b}"
    (json_escape r.name) r.items r.seq_s r.par_s r.speedup r.identical

let to_json ?cache ?metrics ~jobs reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"workloads\": [\n    ";
  Buffer.add_string buf (String.concat ",\n    " (List.map json_of_report reports));
  Buffer.add_string buf "\n  ]";
  (match cache with
  | Some c ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"entries\": %d, \"hit_rate\": %.4f}"
         (Cache.hits c) (Cache.misses c) (Cache.evictions c) (Cache.size c) (Cache.hit_rate c))
  | None -> ());
  (match metrics with
  | Some m ->
    let hists =
      List.map
        (fun (name, s) ->
          Printf.sprintf
            "\"%s\": {\"n\": %d, \"mean\": %.6g, \"min\": %.6g, \"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, \"max\": %.6g}"
            (json_escape name) s.Histogram.n s.Histogram.mean s.Histogram.min s.Histogram.p50
            s.Histogram.p95 s.Histogram.p99 s.Histogram.max)
        (Metrics.histograms m)
    in
    Buffer.add_string buf
      (Printf.sprintf ",\n  \"histograms\": {%s}" (String.concat ", " hists))
  | None -> ());
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_json ?cache ?metrics ~jobs ~path reports =
  let oc = open_out path in
  output_string oc (to_json ?cache ?metrics ~jobs reports);
  close_out oc

let pp_report fmt r =
  Format.fprintf fmt "%-24s %7d items  seq %8.3fs  par %8.3fs  %5.2fx  %s" r.name r.items
    r.seq_s r.par_s r.speedup
    (if r.identical then "bit-identical" else "MISMATCH")
