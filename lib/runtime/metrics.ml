(* A small metrics registry: named counters (monotone, atomic), gauges
   (instantaneous, settable or computed by callback) and latency
   histograms. One registry per service; a process-wide [global] registry
   is provided for convenience and is what the CLI's [--metrics] flag
   dumps.

   All mutation paths are safe to call from any domain: counters are
   [Atomic], histograms carry their own lock, and the name table is
   guarded by the registry mutex. *)

type counter = int Atomic.t

type gauge_value = Set of float | Callback of (unit -> float)

type gauge = { mutable value : gauge_value }

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let global = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let intern table lock name fresh =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
        let v = fresh () in
        Hashtbl.replace table name v;
        v)

let counter t name = intern t.counters t.lock name (fun () -> Atomic.make 0)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)

let incr_named ?by t name = incr ?by (counter t name)

let count c = Atomic.get c

let gauge t name = intern t.gauges t.lock name (fun () -> { value = Set 0.0 })

let set_gauge g v = g.value <- Set v

let register_gauge t name f =
  let g = gauge t name in
  g.value <- Callback f

let read_gauge g = match g.value with Set v -> v | Callback f -> f ()

let histogram t name = intern t.histograms t.lock name (fun () -> Histogram.create ())

let observe t name x = Histogram.observe (histogram t name) x

(* Bridge for [Obs.Trace.set_observer]: every completed span feeds a
   duration histogram named after it, so traces and metrics stay in one
   registry without [obs] depending on [runtime]. *)
let span_observer t ~name ~dur_s = observe t ("span." ^ name) dur_s

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0))
    f

(* --- dump ------------------------------------------------------------- *)

let sorted_bindings table = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let histograms t =
  locked t (fun () -> sorted_bindings t.histograms)
  |> List.map (fun (name, h) -> (name, Histogram.summarize h))

let counters t = locked t (fun () -> sorted_bindings t.counters) |> List.map (fun (n, c) -> (n, count c))

let gauges t = locked t (fun () -> sorted_bindings t.gauges) |> List.map (fun (n, g) -> (n, read_gauge g))

let dump t =
  let counters, gauges, histograms =
    locked t (fun () ->
        (sorted_bindings t.counters, sorted_bindings t.gauges, sorted_bindings t.histograms))
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, c) -> Buffer.add_string buf (Printf.sprintf "counter %-32s %d\n" name (count c)))
    counters;
  List.iter
    (fun (name, g) ->
      Buffer.add_string buf (Printf.sprintf "gauge   %-32s %.6g\n" name (read_gauge g)))
    gauges;
  List.iter
    (fun (name, h) ->
      let s = Histogram.summarize h in
      Buffer.add_string buf
        (Printf.sprintf
           "hist    %-32s n=%d mean=%.6g min=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g\n" name
           s.Histogram.n s.Histogram.mean s.Histogram.min s.Histogram.p50 s.Histogram.p95
           s.Histogram.p99 s.Histogram.max))
    histograms;
  Buffer.contents buf

let reset t =
  locked t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) t.counters;
      Hashtbl.iter (fun _ g -> match g.value with Set _ -> g.value <- Set 0.0 | Callback _ -> ()) t.gauges;
      Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms)

(* Wire the library-wide work counters (simulator sweeps, espresso rounds)
   into a registry as callback gauges. *)
let register_library_gauges t =
  register_gauge t "sim.phases_total" (fun () -> float_of_int (Circuit.Sim.phases_total ()));
  register_gauge t "sim.sweeps_total" (fun () -> float_of_int (Circuit.Sim.sweeps_total ()));
  register_gauge t "espresso.minimize_calls" (fun () ->
      float_of_int (Espresso.Minimize.calls_total ()));
  register_gauge t "espresso.minimize_iterations" (fun () ->
      float_of_int (Espresso.Minimize.iterations_total ()));
  register_gauge t "espresso.expand_cubes" (fun () ->
      float_of_int (Espresso.Minimize.expand_cubes_total ()));
  (* Fraction of the old per-position off-set rescans the blocker-count
     cache avoids (0 until expand has run). *)
  register_gauge t "espresso.blocker_cache_savings" (fun () ->
      let naive = Espresso.Minimize.blocker_scans_naive_total () in
      if naive = 0 then 0.0
      else
        1.0
        -. (float_of_int (Espresso.Minimize.blocker_scans_total ())
           /. float_of_int naive));
  register_gauge t "cover.scc_calls" (fun () ->
      float_of_int (Logic.Cover.scc_calls_total ()));
  register_gauge t "cover.scc_containment_checks" (fun () ->
      float_of_int (Logic.Cover.scc_checks_total ()));
  (* Fraction of all-pairs containment tests the sort-based
     single-cube-containment skipped. *)
  register_gauge t "cover.scc_prune_rate" (fun () ->
      let pairs = Logic.Cover.scc_pairs_total () in
      if pairs = 0 then 0.0
      else
        1.0
        -. (float_of_int (Logic.Cover.scc_checks_total ()) /. float_of_int pairs))
