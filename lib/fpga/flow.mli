(** End-to-end FPGA flow (generate → place → route → time) and the paper's
    Table 2 experiment, built as {!Stage_core} pipelines.

    The experiment mirrors the paper's emulation: one logical design is
    implemented on (a) a standard PLA-based FPGA it fills to ~99%, routing
    two wires per connection and keeping inverters as blocks, and (b) the
    ambipolar-CNFET fabric on the same die — CLBs at half area (pitch /
    √2), one wire per connection, inverters absorbed into GNOR polarity
    configuration.

    Every entry point below is a composition of named stages
    ([fpga.place], [fpga.route], [fpga.timing], plus [fpga.criticality] /
    [fpga.replace] for timing-driven refinement and [table2.*] for the
    experiment), so flows inherit spans, per-stage latency histograms and
    typed failure capture from the stage engine — and the population
    sweep ({!Sweep.Drive}) reuses {!staged} verbatim. The pre-refactor
    direct-call bodies are kept in {!Unstaged}; the
    [sweep/pipeline-equivalence] property pins the two implementations
    outcome-identical. *)

type outcome = {
  flavour : Arch.flavour;
  grid : int;
  sites : int;
  blocks_used : int;
  occupancy : float;
  wirelength : int;
  routed_segments : int;
  route_overflow : int;
  route_iterations : int;
  timing : Timing.report;
}

type attempt = { a_placement : Place.t; a_routing : Route.result; a_outcome : outcome }
(** One executed place → route → time pipeline, keeping the physical
    results the next refinement round needs. *)

val staged : ?weights:float array -> Util.Rng.t -> Arch.t -> (Design.t, attempt) Stage_core.t
(** The flow as a reusable pipeline: [fpga.place >>> fpga.route >>>
    fpga.timing]. The rng is consumed by the place stage exactly as the
    direct calls would. *)

val run : Util.Rng.t -> Arch.t -> Design.t -> outcome
(** Place, route and time one design on one architecture
    ({!Stage_core.exec_exn} of {!staged}: stage exceptions propagate
    unchanged). *)

val run_timing_driven : ?rounds:int -> Util.Rng.t -> Arch.t -> Design.t -> outcome
(** {!run}, then [rounds] (default 1) executions of the refinement round
    pipeline — [fpga.criticality] turns the previous attempt's timing
    into connection weights [1 + 7·criticality⁸], and a [dyn] segment
    re-runs {!staged} with those weights — keeping whichever placement
    times best. Gains a few percent on designs with uneven path depths
    (mapped functions); depth-uniform netlists have nothing to trade. *)

val run_standard : Util.Rng.t -> grid:int -> Design.t -> outcome

val run_cnfet : Util.Rng.t -> grid:int -> Design.t -> outcome
(** [grid] is the {e standard} grid; the CNFET architecture derives its
    own (larger) grid from the same die. Inverters are absorbed before
    mapping. *)

type table2 = { standard : outcome; cnfet : outcome; speedup : float }

val table2_experiment : ?seed:int -> ?grid:int -> unit -> table2
(** Full Table 2 reproduction as a [table2.design >>> table2.standard >>>
    table2.cnfet] pipeline. The design is sized to fill the standard
    device to ≈99%; defaults: [seed 2008], [grid 17]. *)

(** The pre-refactor monolith, kept verbatim as the oracle for the
    [sweep/pipeline-equivalence] property. Do not add call sites: every
    production path goes through the staged pipeline above. *)
module Unstaged : sig
  val run : Util.Rng.t -> Arch.t -> Design.t -> outcome
  val run_timing_driven : ?rounds:int -> Util.Rng.t -> Arch.t -> Design.t -> outcome
end

val pp_outcome : Format.formatter -> outcome -> unit
