module Stage = Stage_core

type outcome = {
  flavour : Arch.flavour;
  grid : int;
  sites : int;
  blocks_used : int;
  occupancy : float;
  wirelength : int;
  routed_segments : int;
  route_overflow : int;
  route_iterations : int;
  timing : Timing.report;
}

let outcome_of_routed arch design placement routing timing =
  let used = Design.block_count design in
  {
    flavour = arch.Arch.flavour;
    grid = arch.Arch.grid;
    sites = Arch.sites arch;
    blocks_used = used;
    occupancy = Arch.occupancy arch ~used;
    wirelength = Place.total_wirelength placement;
    routed_segments = routing.Route.total_segments;
    route_overflow = routing.Route.overflow;
    route_iterations = routing.Route.iterations;
    timing;
  }

(* --- the staged flow ---------------------------------------------------- *)

type attempt = { a_placement : Place.t; a_routing : Route.result; a_outcome : outcome }

let place_stage ?weights rng arch =
  Stage.stage "fpga.place" (fun design -> (design, Place.place ?weights rng arch design))

let route_stage =
  Stage.stage "fpga.route" (fun (design, placement) -> (design, placement, Route.route placement))

let timing_stage arch =
  Stage.stage "fpga.timing" (fun (design, placement, routing) ->
      let timing = Timing.analyze placement routing in
      {
        a_placement = placement;
        a_routing = routing;
        a_outcome = outcome_of_routed arch design placement routing timing;
      })

let staged ?weights rng arch =
  Stage.(place_stage ?weights rng arch >>> route_stage >>> timing_stage arch)

let run_attempt ?weights rng arch design = Stage.exec_exn (staged ?weights rng arch) design

let run rng arch design = (run_attempt rng arch design).a_outcome

(* Timing-driven refinement: each round is one more execution of the same
   staged place → route → time pipeline, preceded by a criticality stage
   that turns the previous round's timing into connection weights. *)
let criticality_stage =
  Stage.stage "fpga.criticality" (fun a ->
      let crits = Timing.criticalities a.a_placement a.a_routing in
      (* Sharp exponent (VPR-style): only the truly critical connections
         should dominate the cost. *)
      (a, Array.map (fun c -> 1.0 +. (7.0 *. (c ** 8.0))) crits))

(* The weights computed by the criticality stage shape the next place
   stage, so the round's tail is a [dyn] segment built from the value
   flowing through the pipeline. *)
let refinement_round rng arch design =
  Stage.(
    criticality_stage
    >>> dyn "fpga.replace" (fun (_prev, weights) ->
            pure (fun (_ : attempt * float array) -> design) >>> staged ~weights rng arch))

let run_timing_driven ?(rounds = 1) rng arch design =
  let first = run_attempt rng arch design in
  let round = refinement_round rng arch design in
  let rec refine best_outcome prev k =
    if k = 0 then best_outcome
    else begin
      let attempt = Stage.exec_exn round prev in
      let best =
        if
          attempt.a_outcome.timing.Timing.critical_path
          < best_outcome.timing.Timing.critical_path
        then attempt.a_outcome
        else best_outcome
      in
      refine best attempt (k - 1)
    end
  in
  refine first.a_outcome first rounds

let run_standard rng ~grid design = run rng (Arch.standard ~grid) design

let run_cnfet rng ~grid design =
  let absorbed = Design.absorb_inverters design in
  (* Same die: the CNFET grid is derived from the standard one; half-area
     CLBs pack √2 more per side. *)
  let arch = Arch.cnfet ~grid in
  run rng arch absorbed

type table2 = { standard : outcome; cnfet : outcome; speedup : float }

let table2_design rng ~grid =
  let sites = grid * grid in
  let n_blocks = int_of_float (0.99 *. float_of_int sites) in
  Design.random rng ~n_pi:(2 * grid) ~n_blocks ~fanin:4 ~inverter_fraction:0.095 ~layers:12 ()

let table2_experiment ?(seed = 2008) ?(grid = 17) () =
  let rng = Util.Rng.create seed in
  let pipeline =
    Stage.(
      stage "table2.design" (fun () -> table2_design rng ~grid)
      >>> stage "table2.standard" (fun design ->
              (design, run_standard (Util.Rng.split rng) ~grid design))
      >>> stage "table2.cnfet" (fun (design, standard) ->
              let cnfet = run_cnfet (Util.Rng.split rng) ~grid design in
              {
                standard;
                cnfet;
                speedup =
                  cnfet.timing.Timing.frequency_hz /. standard.timing.Timing.frequency_hz;
              }))
  in
  Stage.exec_exn pipeline ()

(* --- the pre-refactor monolith ------------------------------------------ *)

(* Kept verbatim as the reference implementation for the
   [sweep/pipeline-equivalence] property: the staged flow above must be
   outcome-identical to these direct-call bodies on every design. *)
module Unstaged = struct
  let run rng arch design =
    let placement = Place.place rng arch design in
    let routing = Route.route placement in
    let timing = Timing.analyze placement routing in
    let used = Design.block_count design in
    {
      flavour = arch.Arch.flavour;
      grid = arch.Arch.grid;
      sites = Arch.sites arch;
      blocks_used = used;
      occupancy = Arch.occupancy arch ~used;
      wirelength = Place.total_wirelength placement;
      routed_segments = routing.Route.total_segments;
      route_overflow = routing.Route.overflow;
      route_iterations = routing.Route.iterations;
      timing;
    }

  let outcome_of arch design placement =
    let routing = Route.route placement in
    let timing = Timing.analyze placement routing in
    let used = Design.block_count design in
    ( routing,
      {
        flavour = arch.Arch.flavour;
        grid = arch.Arch.grid;
        sites = Arch.sites arch;
        blocks_used = used;
        occupancy = Arch.occupancy arch ~used;
        wirelength = Place.total_wirelength placement;
        routed_segments = routing.Route.total_segments;
        route_overflow = routing.Route.overflow;
        route_iterations = routing.Route.iterations;
        timing;
      } )

  let run_timing_driven ?(rounds = 1) rng arch design =
    let placement = Place.place rng arch design in
    let routing, first = outcome_of arch design placement in
    let rec refine best_outcome prev_placement prev_routing k =
      if k = 0 then best_outcome
      else begin
        let crits = Timing.criticalities prev_placement prev_routing in
        let weights = Array.map (fun c -> 1.0 +. (7.0 *. (c ** 8.0))) crits in
        let placement' = Place.place ~weights rng arch design in
        let routing', outcome' = outcome_of arch design placement' in
        let best =
          if
            outcome'.timing.Timing.critical_path
            < best_outcome.timing.Timing.critical_path
          then outcome'
          else best_outcome
        in
        refine best placement' routing' (k - 1)
      end
    in
    refine first placement routing rounds
end

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: grid=%dx%d blocks=%d occ=%.1f%% wl=%d segs=%d overflow=%d iters=%d %a"
    (Arch.flavour_name o.flavour) o.grid o.grid o.blocks_used (100.0 *. o.occupancy)
    o.wirelength o.routed_segments o.route_overflow o.route_iterations Timing.pp_report
    o.timing
