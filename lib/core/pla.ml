module Cover = Logic.Cover
module Cube = Logic.Cube
module N = Circuit.Netlist

type t = {
  n_in : int;
  n_out : int;
  and_plane : Plane.t;
  or_plane : Plane.t;
  inverted : bool array;
      (* inverted.(o): the *driver* inverts the second-plane row, which is
         the case when the mapped cover holds the positive phase of output
         o (the row computes ¬f_o). *)
}

let of_cover ?inverted_outputs cover =
  let n_in = Cover.num_inputs cover and n_out = Cover.num_outputs cover in
  let cubes = Cover.to_array cover in
  let n_products = Array.length cubes in
  let neg =
    match inverted_outputs with
    | Some a ->
      if Array.length a <> n_out then invalid_arg "Pla.of_cover: inverted_outputs length";
      a
    | None -> Array.make n_out false
  in
  (* A PLA needs at least one row/column per plane; pad degenerate shapes. *)
  let and_plane = Plane.create ~rows:(max 1 n_products) ~cols:(max 1 n_in) in
  let or_plane = Plane.create ~rows:(max 1 n_out) ~cols:(max 1 n_products) in
  Array.iteri
    (fun j c ->
      for i = 0 to n_in - 1 do
        let m =
          match Cube.get c i with
          | Cube.One -> Gnor.Invert
          | Cube.Zero -> Gnor.Pass
          | Cube.Dc -> Gnor.Drop
        in
        Plane.set_mode and_plane ~row:j ~col:i m
      done)
    cubes;
  Array.iteri
    (fun j c ->
      let outs = Cube.outputs c in
      for o = 0 to n_out - 1 do
        if Util.Bitvec.get outs o then Plane.set_mode or_plane ~row:o ~col:j Gnor.Pass
      done)
    cubes;
  (* Driver inverts when the cover carries the positive phase. *)
  let inverted = Array.map not neg in
  { n_in; n_out; and_plane; or_plane; inverted }

let of_minimized ?dc cover = of_cover (Espresso.Minimize.cover ?dc cover)

let of_planes ~n_in ~n_out ~and_plane ~or_plane ~inverted_outputs =
  if Plane.cols and_plane <> max 1 n_in then invalid_arg "Pla.of_planes: AND plane width";
  if Plane.rows or_plane <> max 1 n_out then invalid_arg "Pla.of_planes: OR plane height";
  if Plane.cols or_plane <> Plane.rows and_plane then
    invalid_arg "Pla.of_planes: plane product dimensions disagree";
  if Array.length inverted_outputs <> n_out then invalid_arg "Pla.of_planes: inverted_outputs";
  { n_in; n_out; and_plane; or_plane; inverted = Array.map not inverted_outputs }

let num_inputs t = t.n_in
let num_outputs t = t.n_out
let num_products t = Plane.rows t.and_plane

let and_plane t = t.and_plane
let or_plane t = t.or_plane

let output_inverted t o =
  if o < 0 || o >= t.n_out then invalid_arg "Pla.output_inverted";
  t.inverted.(o)

let eval_products t inputs =
  if Array.length inputs <> t.n_in then invalid_arg "Pla.eval_products";
  let padded =
    if t.n_in = Plane.cols t.and_plane then inputs
    else Array.append inputs (Array.make (Plane.cols t.and_plane - t.n_in) false)
  in
  Plane.eval t.and_plane padded

let eval t inputs =
  let products = eval_products t inputs in
  let rows = Plane.eval t.or_plane products in
  Array.init t.n_out (fun o -> if t.inverted.(o) then not rows.(o) else rows.(o))

let verify_against t cover =
  if Cover.num_inputs cover <> t.n_in || Cover.num_outputs cover <> t.n_out then false
  else if t.n_in > 16 then invalid_arg "Pla.verify_against: too many inputs"
  else begin
    let ok = ref true in
    for m = 0 to (1 lsl t.n_in) - 1 do
      let assignment = Array.init t.n_in (fun i -> m land (1 lsl i) <> 0) in
      let got = eval t assignment in
      let want = Cover.eval cover assignment in
      for o = 0 to t.n_out - 1 do
        if got.(o) <> Util.Bitvec.get want o then ok := false
      done
    done;
    !ok
  end

let crosspoint_count t =
  Plane.crosspoint_count t.and_plane + Plane.crosspoint_count t.or_plane

type hw = {
  netlist : N.t;
  clock1 : N.net;
  clock2 : N.net;
  input_nets : N.net array;
  product_gates : Gnor.gate array;
  output_gates : Gnor.gate array;
  output_nets : N.net array;
}

let build_inverter nl ~name ~input =
  let out = N.add_net nl (name ^ ".out") in
  let _p =
    N.add_device nl ~name:(name ^ ".P") ~gate:input ~src:(N.vdd nl) ~drn:out
      ~polarity:Device.Ambipolar.P_type
  in
  let _n =
    N.add_device nl ~name:(name ^ ".N") ~gate:input ~src:out ~drn:(N.gnd nl)
      ~polarity:Device.Ambipolar.N_type
  in
  out

(* A non-inverting driver is two cascaded inverters at switch level. *)
let build_buffer nl ~name ~input =
  let mid = build_inverter nl ~name:(name ^ ".i0") ~input in
  build_inverter nl ~name:(name ^ ".i1") ~input:mid

let build_hw ?params t =
  let nl = N.create ?params () in
  let clock1 = N.add_net nl "phi1" in
  let clock2 = N.add_net nl "phi2" in
  let input_nets =
    Array.init (Plane.cols t.and_plane) (fun i -> N.add_net nl (Printf.sprintf "x%d" i))
  in
  let product_gates =
    Array.init (Plane.rows t.and_plane) (fun j ->
        let g = Gnor.build nl ~name:(Printf.sprintf "and%d" j) ~clock:clock1 ~inputs:input_nets in
        Gnor.configure nl g (Plane.row_modes t.and_plane j);
        g)
  in
  let product_nets = Array.map Gnor.output product_gates in
  let output_gates =
    Array.init (Plane.rows t.or_plane) (fun o ->
        let g = Gnor.build nl ~name:(Printf.sprintf "or%d" o) ~clock:clock2 ~inputs:product_nets in
        Gnor.configure nl g (Plane.row_modes t.or_plane o);
        g)
  in
  let output_nets =
    Array.init t.n_out (fun o ->
        let row = Gnor.output output_gates.(o) in
        let name = Printf.sprintf "y%d" o in
        if t.inverted.(o) then build_inverter nl ~name ~input:row
        else build_buffer nl ~name ~input:row)
  in
  { netlist = nl; clock1; clock2; input_nets; product_gates; output_gates; output_nets }

let simulate_hw hw inputs =
  if Array.length inputs <> Array.length hw.input_nets then invalid_arg "Pla.simulate_hw";
  let sim = Circuit.Sim.create hw.netlist in
  Array.iteri (fun i b -> Circuit.Sim.set_input sim hw.input_nets.(i) b) inputs;
  (* Phase 1: pre-charge both planes. *)
  Circuit.Sim.set_input sim hw.clock1 false;
  Circuit.Sim.set_input sim hw.clock2 false;
  Circuit.Sim.phase sim;
  (* Phase 2: evaluate the AND plane. *)
  Circuit.Sim.set_input sim hw.clock1 true;
  Circuit.Sim.phase sim;
  (* Phase 3: evaluate the OR plane while the AND plane holds. *)
  Circuit.Sim.set_input sim hw.clock2 true;
  Circuit.Sim.phase sim;
  Array.mapi
    (fun o net ->
      match Circuit.Sim.bool_of_net sim net with
      | Some b -> b
      | None -> raise (Gnor.Floating_output { output = o; phase = "or-evaluate" }))
    hw.output_nets
