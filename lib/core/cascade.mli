(** Multi-level logic as cascaded GNOR planes interleaved with crossbars
    (paper §4: "Interleaving PLA and interconnects enables cascades of NOR
    planes and realizes any logic function").

    The input is a {e NOR network}: a DAG of generalized-NOR nodes, each
    taking earlier signals with a per-fanin inversion flag (free on this
    fabric — it is a polarity-gate setting). The mapper levelizes the
    network, builds one GNOR plane per level, and routes each level's
    fanins from the signal pool (primary inputs plus previous levels)
    through a programmed crossbar, exactly the Fig. 3 floorplan.

    Two-level covers embed trivially ({!network_of_cover}); the payoff is
    on functions that are exponential in two levels but small as networks
    — see {!xor_tree}. *)

type signal = Pi of int | Node of int

type nor_node = (signal * bool) list
(** Fanins with inversion flags: the node computes
    [NOR_i (maybe-invert s_i)]. The empty node is constant 1. *)

type network = {
  n_pi : int;
  nodes : nor_node array;  (** topologically ordered: fanins reference
                               earlier nodes only *)
  outputs : signal array;
}

val validate_network : network -> unit
(** Raises [Invalid_argument] on forward references or bad PI indices. *)

val eval_network : network -> bool array -> bool array
(** Reference semantics. *)

val network_of_cover : Logic.Cover.t -> network
(** The two-level NOR-NOR embedding (products as level-1 nodes, outputs as
    level-2 nodes plus a free output inversion as a third-level node where
    needed). *)

val xor_tree : n:int -> network
(** Parity of [n] inputs as a tree of 3-node NOR XORs — linear in [n]
    where the two-level form needs [2^(n-1)] products. *)

val network_of_factored : n_in:int -> Espresso.Factor.expr array -> network
(** NOR-only synthesis of factored forms: AND becomes a NOR of inverted
    fanins, OR a NOR followed by a (free or explicit) inversion —
    polarities are tracked so inverters appear only at polarity
    mismatches, and structurally identical subexpressions share one
    node. This is the automatic route from {!Espresso.Factor} into the
    cascade fabric. *)

(** {1 Mapped cascades} *)

type t

val of_network : network -> t
(** Levelize and map. *)

val num_stages : t -> int

val num_inputs : t -> int
(** Primary inputs of the source network. *)

val num_outputs : t -> int

val plane_dims : t -> (int * int) list
(** Per stage, (rows, cols) of the GNOR plane. *)

val crossbar_dims : t -> (int * int) list
(** Per stage, (pool wires tapped, plane columns) of the routing
    crossbar. *)

val eval : t -> bool array -> bool array
(** Evaluation {e through the mapped structure} (planes + crossbar routing
    tables), not the source network — mapping bugs surface here. *)

val device_count : t -> int
(** Crosspoints over all planes and crossbars. *)

val area : Device.Tech.t -> t -> int

val verify_against_network : t -> network -> bool
(** Exhaustive equivalence with the source network (n_pi ≤ 16). *)

(** {1 Switch-level realization}

    Each stage's GNOR plane gets its own clock; evaluation ripples one
    stage per phase while earlier stages hold their dynamic values, the
    domino discipline of {!Pla.simulate_hw} generalized to [n] stages. *)

type hw

val build_hw : ?params:Device.Ambipolar.params -> t -> hw
(** Instantiate every plane on one netlist; crossbar routing is realized
    as wiring (each plane column connects to its source signal's net). *)

val hw_netlist : hw -> Circuit.Netlist.t

val simulate_hw : hw -> bool array -> bool array
(** Pre-charge everything, then evaluate stage 1, stage 2, … in
    successive phases; read the output nets. *)
