module A = Device.Ambipolar
module Tech = Device.Tech

type result = {
  input_delay : float;
  and_plane_delay : float;
  or_plane_delay : float;
  driver_delay : float;
  total_delay : float;
  energy_per_eval : float;
  static_power : float;
  max_frequency : float;
}

(* Interconnect constants per lithography unit L of wire (32 nm-class
   minimum-pitch metal): resistance and capacitance scale linearly with
   length measured in L. *)
let r_wire_per_l = 2.5 (* Ω per L *)
let c_wire_per_l = 0.04e-15 (* F per L *)

(* A line crossing [cells] crosspoints of pitch [pitch_l] (in L), loaded at
   each crosspoint with [load_per_cell], driven through [r_driver]:
   Elmore on a uniform RC ladder. *)
let line_delay ~r_driver ~pitch_l ~cells ~load_per_cell =
  if cells <= 0 then 0.0
  else begin
    let r_seg = r_wire_per_l *. pitch_l in
    let c_seg = (c_wire_per_l *. pitch_l) +. load_per_cell in
    (* Σ_k (r_driver + k·r_seg)·c_seg = r_driver·n·c + r·c·n(n+1)/2 *)
    let n = float_of_int cells in
    (r_driver *. n *. c_seg) +. (r_seg *. c_seg *. n *. (n +. 1.0) /. 2.0)
  end

let evaluate ?(params = A.default) ?(activity = 0.5) tech (p : Area.profile) =
  let pitch_l = sqrt (float_of_int tech.Tech.cell_area) in
  let input_columns = Tech.columns_per_input tech * p.Area.n_in in
  let and_row_cells = input_columns in
  let or_row_cells = p.Area.n_products in
  let column_cells = p.Area.n_products in
  (* Input buffer drives its column: one gate load per product row. *)
  let input_delay =
    line_delay ~r_driver:(2.0 *. params.A.r_on) ~pitch_l ~cells:column_cells
      ~load_per_cell:params.A.c_gate
  in
  (* Row discharge: through one crosspoint device in series with the foot
     device (2·R_on of drive), against the full row wire plus one junction
     capacitance per crosspoint. *)
  let row_delay cells =
    line_delay ~r_driver:(2.0 *. params.A.r_on) ~pitch_l ~cells
      ~load_per_cell:(0.5 *. params.A.c_gate)
  in
  let and_plane_delay = row_delay and_row_cells in
  let or_plane_delay = row_delay or_row_cells in
  (* Output driver: a two-device static stage into a fanout-4-ish load. *)
  let driver_delay = params.A.r_on *. 8.0 *. params.A.c_gate in
  let total_delay = input_delay +. and_plane_delay +. or_plane_delay +. driver_delay in
  (* Pre-charge energy: every switching row line is recharged to VDD. *)
  let row_line_cap cells =
    float_of_int cells *. ((c_wire_per_l *. pitch_l) +. (0.5 *. params.A.c_gate))
  in
  let switched_caps =
    activity
    *. ((float_of_int p.Area.n_products *. row_line_cap and_row_cells)
       +. (float_of_int p.Area.n_out *. row_line_cap or_row_cells))
  in
  let energy_per_eval = switched_caps *. params.A.vdd *. params.A.vdd in
  (* Every crosspoint leaks i_off under bias for roughly half the cycle. *)
  let devices = (input_columns * p.Area.n_products) + (p.Area.n_out * p.Area.n_products) in
  let static_power = 0.5 *. float_of_int devices *. params.A.i_off *. params.A.vdd in
  {
    input_delay;
    and_plane_delay;
    or_plane_delay;
    driver_delay;
    total_delay;
    energy_per_eval;
    static_power;
    max_frequency = 1.0 /. (2.0 *. total_delay);
  }

let compare_table1 ?params p =
  List.map (fun fam -> (fam, evaluate ?params (Tech.get fam) p)) Tech.all

type variation = {
  mean_delay : float;
  sigma_delay : float;
  worst_delay : float;
  yield_at_nominal : float;
  trials : int;
}

(* A positive random factor with relative spread sigma: exp(sigma · g)
   with g approximately standard normal (sum of 12 uniforms - 6). *)
let lognormalish rng sigma =
  let g = ref (-6.0) in
  for _ = 1 to 12 do
    g := !g +. Util.Rng.float rng 1.0
  done;
  exp (sigma *. !g)

let trial_delay rng ?(sigma = 0.15) ?(params = A.default) tech p =
  let scale_r = lognormalish rng sigma in
  let scale_wire = lognormalish rng sigma in
  (* Slowed devices and wires: scale r_on (device drive) and, through
     an effective params tweak, the gate load. *)
  let varied =
    {
      params with
      A.r_on = params.A.r_on *. scale_r;
      A.c_gate = params.A.c_gate *. scale_wire;
    }
  in
  (evaluate ~params:varied tech p).total_delay

let variation_of_delays ?(params = A.default) tech p delays =
  let nominal = (evaluate ~params tech p).total_delay in
  let mean = Util.Stats.mean delays in
  let sd = Util.Stats.stddev delays in
  let _, worst = Util.Stats.min_max delays in
  let budget = 1.15 *. nominal in
  let met = List.length (List.filter (fun d -> d <= budget) delays) in
  let trials = List.length delays in
  {
    mean_delay = mean;
    sigma_delay = sd;
    worst_delay = worst;
    yield_at_nominal = (if trials = 0 then 0.0 else float_of_int met /. float_of_int trials);
    trials;
  }

let monte_carlo rng ?(trials = 300) ?(sigma = 0.15) ?(params = A.default) tech p =
  let acc = ref [] in
  for _ = 1 to trials do
    acc := trial_delay rng ~sigma ~params tech p :: !acc
  done;
  variation_of_delays ~params tech p (List.rev !acc)
