module A = Device.Ambipolar
module N = Circuit.Netlist

type input_mode = Pass | Invert | Drop

exception Floating_output of { output : int; phase : string }

let () =
  Printexc.register_printer (function
    | Floating_output { output; phase } ->
      Some
        (Printf.sprintf "Floating_output (output %d, %s phase): net is neither driven nor held"
           output phase)
    | _ -> None)

let mode_to_string = function Pass -> "pass" | Invert -> "invert" | Drop -> "drop"

let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

let mode_polarity = function
  | Pass -> A.N_type
  | Invert -> A.P_type
  | Drop -> A.Off_state

let mode_pg_voltage p m = A.pg_of_polarity p (mode_polarity m)

let mode_of_polarity = function
  | A.N_type -> Pass
  | A.P_type -> Invert
  | A.Off_state -> Drop

let eval_functional modes inputs =
  if Array.length modes <> Array.length inputs then invalid_arg "Gnor.eval_functional";
  let contribution i m =
    match m with Pass -> inputs.(i) | Invert -> not inputs.(i) | Drop -> false
  in
  let any = ref false in
  Array.iteri (fun i m -> if contribution i m then any := true) modes;
  not !any

type gate = {
  out : N.net;
  foot : N.net;  (** node between the pulldown network and TEV *)
  input_devices : N.device array;
  tpc : N.device;
  tev : N.device;
}

let build nl ~name ~clock ~inputs =
  let out = N.add_net nl (name ^ ".Y") in
  let foot = N.add_net nl (name ^ ".S") in
  (* TPC: p-type, conducts while the clock is low, pre-charging Y to VDD. *)
  let tpc =
    N.add_device nl ~name:(name ^ ".TPC") ~gate:clock ~src:(N.vdd nl) ~drn:out
      ~polarity:A.P_type
  in
  (* TEV: n-type foot device, connects the network to GND while the clock is
     high (evaluation). *)
  let tev =
    N.add_device nl ~name:(name ^ ".TEV") ~gate:clock ~src:foot ~drn:(N.gnd nl)
      ~polarity:A.N_type
  in
  let input_devices =
    Array.mapi
      (fun i inp ->
        N.add_device nl
          ~name:(Printf.sprintf "%s.M%d" name i)
          ~gate:inp ~src:out ~drn:foot ~polarity:A.Off_state)
      inputs
  in
  { out; foot; input_devices; tpc; tev }

let configure nl g modes =
  if Array.length modes <> Array.length g.input_devices then invalid_arg "Gnor.configure";
  Array.iteri (fun i m -> N.set_polarity nl g.input_devices.(i) (mode_polarity m)) modes

let output g = g.out

let input_device g i = g.input_devices.(i)

let precharge_device g = g.tpc

let evaluate_device g = g.tev

let simulate ?params modes inputs =
  if Array.length modes <> Array.length inputs then invalid_arg "Gnor.simulate";
  let nl = N.create ?params () in
  let clock = N.add_net nl "phi" in
  let input_nets = Array.mapi (fun i _ -> N.add_net nl (Printf.sprintf "in%d" i)) inputs in
  let g = build nl ~name:"gnor" ~clock ~inputs:input_nets in
  configure nl g modes;
  let sim = Circuit.Sim.create nl in
  Array.iteri (fun i b -> Circuit.Sim.set_input sim input_nets.(i) b) inputs;
  (* Pre-charge phase: clock low. *)
  Circuit.Sim.set_input sim clock false;
  Circuit.Sim.phase sim;
  (* Evaluate phase: clock high. *)
  Circuit.Sim.set_input sim clock true;
  Circuit.Sim.phase sim;
  match Circuit.Sim.bool_of_net sim (output g) with
  | Some b -> b
  | None -> raise (Floating_output { output = 0; phase = "evaluate" })
