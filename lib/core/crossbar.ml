type t = { nrows : int; ncols : int; matrix : bool array array }

type wire = Row of int | Col of int

type signal = Driven of bool | Conflict | Floating

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Crossbar.create";
  { nrows = rows; ncols = cols; matrix = Array.init rows (fun _ -> Array.make cols false) }

let rows t = t.nrows
let cols t = t.ncols

let check t ~row ~col =
  if row < 0 || row >= t.nrows || col < 0 || col >= t.ncols then
    invalid_arg "Crossbar: out of range"

let connect t ~row ~col =
  check t ~row ~col;
  t.matrix.(row).(col) <- true

let disconnect t ~row ~col =
  check t ~row ~col;
  t.matrix.(row).(col) <- false

let connected t ~row ~col =
  check t ~row ~col;
  t.matrix.(row).(col)

let crosspoint_polarity t ~row ~col =
  if connected t ~row ~col then Device.Ambipolar.N_type else Device.Ambipolar.Off_state

(* Wires are numbered 0..nrows-1 (rows) then nrows..nrows+ncols-1 (cols);
   union-find over that range. *)
let wire_id t = function
  | Row r ->
    if r < 0 || r >= t.nrows then invalid_arg "Crossbar: bad row wire";
    r
  | Col c ->
    if c < 0 || c >= t.ncols then invalid_arg "Crossbar: bad col wire";
    t.nrows + c

let wire_of_id t i = if i < t.nrows then Row i else Col (i - t.nrows)

let union_find t =
  let n = t.nrows + t.ncols in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  for r = 0 to t.nrows - 1 do
    for c = 0 to t.ncols - 1 do
      if t.matrix.(r).(c) then union r (t.nrows + c)
    done
  done;
  fun i -> find i

let components t =
  let find = union_find t in
  let n = t.nrows + t.ncols in
  let groups = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let root = find i in
    let existing = try Hashtbl.find groups root with Not_found -> [] in
    Hashtbl.replace groups root (wire_of_id t i :: existing)
  done;
  let roots = List.init n Fun.id |> List.filter (fun i -> find i = i) in
  List.map (fun r -> Hashtbl.find groups r) roots

let resolve t ~driven target =
  let find = union_find t in
  let root = find (wire_id t target) in
  let values =
    List.filter_map
      (fun (w, v) -> if find (wire_id t w) = root then Some v else None)
      driven
  in
  match values with
  | [] -> Floating
  | v :: rest -> if List.for_all (Bool.equal v) rest then Driven v else Conflict

let route_point_to_point t ~from_row ~to_col =
  let find = union_find t in
  find (wire_id t (Row from_row)) = find (wire_id t (Col to_col))

let copy t = { t with matrix = Array.map Array.copy t.matrix }

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 (fun ra rb -> ra = rb) a.matrix b.matrix

let programmed_count t =
  let n = ref 0 in
  Array.iter (Array.iter (fun b -> if b then incr n)) t.matrix;
  !n

let area tech t = tech.Device.Tech.cell_area * t.nrows * t.ncols

(* --- switch level ---------------------------------------------------------- *)

type hw = {
  nl : Circuit.Netlist.t;
  row_nets : Circuit.Netlist.net array;
  col_nets : Circuit.Netlist.net array;
}

let build_hw ?params t =
  let nl = Circuit.Netlist.create ?params () in
  (* All control gates share one always-high line. *)
  let cg = Circuit.Netlist.add_net nl "CG" in
  let row_nets = Array.init t.nrows (fun r -> Circuit.Netlist.add_net nl (Printf.sprintf "h%d" r)) in
  let col_nets = Array.init t.ncols (fun c -> Circuit.Netlist.add_net nl (Printf.sprintf "v%d" c)) in
  for r = 0 to t.nrows - 1 do
    for c = 0 to t.ncols - 1 do
      ignore
        (Circuit.Netlist.add_device nl
           ~name:(Printf.sprintf "x%d_%d" r c)
           ~gate:cg ~src:row_nets.(r) ~drn:col_nets.(c)
           ~polarity:(crosspoint_polarity t ~row:r ~col:c))
    done
  done;
  ignore cg;
  { nl; row_nets; col_nets }

let hw_netlist hw = hw.nl

let simulate_hw hw ~driven =
  let sim = Circuit.Sim.create hw.nl in
  (* CG is net index 2 (first added): recover it by name-independent means —
     it is the only net that is neither a rail nor a row/col net. Drive it
     high. *)
  let is_row_or_col n =
    Array.exists (fun m -> m = n) hw.row_nets || Array.exists (fun m -> m = n) hw.col_nets
  in
  for i = 0 to Circuit.Netlist.net_count hw.nl - 1 do
    let n = Circuit.Netlist.net_of_int hw.nl i in
    if
      n <> Circuit.Netlist.vdd hw.nl
      && n <> Circuit.Netlist.gnd hw.nl
      && not (is_row_or_col n)
    then Circuit.Sim.set_input sim n true
  done;
  List.iter (fun (r, v) -> Circuit.Sim.set_input sim hw.row_nets.(r) v) driven;
  Circuit.Sim.phase sim;
  ( Array.map (fun n -> Circuit.Sim.bool_of_net sim n) hw.row_nets,
    Array.map (fun n -> Circuit.Sim.bool_of_net sim n) hw.col_nets )
