module Cover = Logic.Cover
module Cube = Logic.Cube

type signal = Pi of int | Node of int

type nor_node = (signal * bool) list

type network = { n_pi : int; nodes : nor_node array; outputs : signal array }

let validate_network net =
  if net.n_pi <= 0 then invalid_arg "Cascade: no primary inputs";
  let check_signal limit = function
    | Pi i -> if i < 0 || i >= net.n_pi then invalid_arg "Cascade: bad PI"
    | Node j ->
      if j < 0 || j >= limit then invalid_arg "Cascade: fanin must reference earlier node"
  in
  Array.iteri
    (fun k fanins -> List.iter (fun (s, _) -> check_signal k s) fanins)
    net.nodes;
  Array.iter (fun s -> check_signal (Array.length net.nodes) s) net.outputs

let eval_network net pis =
  if Array.length pis <> net.n_pi then invalid_arg "Cascade.eval_network";
  let values = Array.make (Array.length net.nodes) false in
  let read = function Pi i -> pis.(i) | Node j -> values.(j) in
  Array.iteri
    (fun k fanins ->
      let any = List.exists (fun (s, inv) -> if inv then not (read s) else read s) fanins in
      values.(k) <- not any)
    net.nodes;
  Array.map read net.outputs

let network_of_cover cover =
  let n_in = Cover.num_inputs cover and n_out = Cover.num_outputs cover in
  let cubes = Cover.to_array cover in
  let n_products = Array.length cubes in
  (* Level 1: one NOR node per product. P_j = NOR of the complement-adjusted
     literals (positive literal -> inverted fanin). *)
  let product_node c =
    let fanins = ref [] in
    for i = n_in - 1 downto 0 do
      match Cube.get c i with
      | Cube.Dc -> ()
      | Cube.One -> fanins := (Pi i, true) :: !fanins
      | Cube.Zero -> fanins := (Pi i, false) :: !fanins
    done;
    !fanins
  in
  (* Level 2: NOR of the selected products gives ¬f_o; level 3 inverts. *)
  let or_node o =
    let fanins = ref [] in
    for j = n_products - 1 downto 0 do
      if Util.Bitvec.get (Cube.outputs cubes.(j)) o then fanins := (Node j, false) :: !fanins
    done;
    !fanins
  in
  let nodes =
    Array.append
      (Array.map product_node cubes)
      (Array.append
         (Array.init n_out or_node)
         (Array.init n_out (fun o -> [ (Node (n_products + o), false) ])))
  in
  let outputs = Array.init n_out (fun o -> Node (n_products + n_out + o)) in
  let net = { n_pi = n_in; nodes; outputs } in
  validate_network net;
  net

let xor_tree ~n =
  if n < 1 then invalid_arg "Cascade.xor_tree";
  (* XOR(a, b) = NOR(NOR(a, b), AND(a, b)) with AND(a,b) = NOR(a', b'). *)
  let nodes = ref [] in
  let count = ref 0 in
  let add fanins =
    nodes := fanins :: !nodes;
    incr count;
    Node (!count - 1)
  in
  let xor a b =
    let nor_ab = add [ (a, false); (b, false) ] in
    let and_ab = add [ (a, true); (b, true) ] in
    add [ (nor_ab, false); (and_ab, false) ]
  in
  let rec reduce = function
    | [] -> assert false
    | [ s ] -> s
    | signals ->
      let rec pair = function
        | a :: b :: rest -> xor a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      reduce (pair signals)
  in
  let out = reduce (List.init n (fun i -> Pi i)) in
  let net =
    { n_pi = n; nodes = Array.of_list (List.rev !nodes); outputs = [| out |] }
  in
  validate_network net;
  net

let network_of_factored ~n_in exprs =
  let nodes = ref [] in
  let count = ref 0 in
  let add fanins =
    nodes := fanins :: !nodes;
    incr count;
    Node (!count - 1)
  in
  (* Structural sharing: the same subexpression maps to one node. *)
  let memo : (Espresso.Factor.expr, signal * bool) Hashtbl.t = Hashtbl.create 64 in
  (* build e = (signal, polarity): the signal carries e when polarity is
     true and ¬e when false; fanin inversion flags absorb polarity. *)
  let rec build e =
    match Hashtbl.find_opt memo e with
    | Some r -> r
    | None ->
      let r =
        match e with
        | Espresso.Factor.Lit (i, ph) ->
          if i < 0 || i >= n_in then invalid_arg "Cascade.network_of_factored: bad literal";
          (Pi i, ph)
        | Espresso.Factor.Or es ->
          let fanins =
            List.map
              (fun x ->
                let s, p = build x in
                (s, not p) (* contribution must be x itself *))
              es
          in
          (add fanins, false) (* NOR = ¬(∨) *)
        | Espresso.Factor.And es ->
          let fanins =
            List.map
              (fun x ->
                let s, p = build x in
                (s, p) (* contribution must be ¬x *))
              es
          in
          (add fanins, true) (* NOR(¬x_i) = ∧ x_i *)
      in
      Hashtbl.replace memo e r;
      r
  in
  let outputs =
    Array.map
      (fun e ->
        let s, p = build e in
        if p then s else add [ (s, false) ] (* explicit inverter *))
      exprs
  in
  let net = { n_pi = n_in; nodes = Array.of_list (List.rev !nodes); outputs } in
  validate_network net;
  net

(* --- mapping ------------------------------------------------------------- *)

type stage = {
  plane : Plane.t;
  sources : signal array;  (** pool signal feeding each plane column *)
  node_ids : int array;  (** network node realized by each plane row *)
  pool_taps : int;  (** distinct pool wires entering this stage *)
}

type t = { net : network; stages : stage list }

let level_of net =
  let levels = Array.make (Array.length net.nodes) 0 in
  Array.iteri
    (fun k fanins ->
      let from_signal = function Pi _ -> 0 | Node j -> levels.(j) in
      levels.(k) <- 1 + List.fold_left (fun m (s, _) -> max m (from_signal s)) 0 fanins)
    net.nodes;
  levels

let of_network net =
  validate_network net;
  let levels = level_of net in
  let max_level = Array.fold_left max 0 levels in
  let stage_of_level lvl =
    let node_ids =
      Array.of_list
        (List.filter (fun k -> levels.(k) = lvl) (List.init (Array.length net.nodes) Fun.id))
    in
    (* Distinct source signals of this level, in first-use order. *)
    let sources = ref [] in
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun k ->
        List.iter
          (fun (s, _) ->
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.replace seen s (List.length !sources);
              sources := s :: !sources
            end)
          net.nodes.(k))
      node_ids;
    let sources = Array.of_list (List.rev !sources) in
    let col_of s = Hashtbl.find seen s in
    let plane = Plane.create ~rows:(max 1 (Array.length node_ids)) ~cols:(max 1 (Array.length sources)) in
    Array.iteri
      (fun row k ->
        List.iter
          (fun (s, inv) ->
            let col = col_of s in
            let wanted = if inv then Gnor.Invert else Gnor.Pass in
            (* One physical device per crosspoint: a node using both
               polarities of one signal has no plane realization. *)
            (match Plane.mode plane ~row ~col with
            | Gnor.Drop -> ()
            | existing ->
              if existing <> wanted then
                invalid_arg
                  "Cascade.of_network: node uses both polarities of one signal \
                   (simplify the network first)");
            Plane.set_mode plane ~row ~col wanted)
          net.nodes.(k))
      node_ids;
    { plane; sources; node_ids; pool_taps = Array.length sources }
  in
  let stages = List.map stage_of_level (List.init max_level (fun l -> l + 1)) in
  { net; stages }

let num_stages t = List.length t.stages

let num_inputs t = t.net.n_pi

let num_outputs t = Array.length t.net.outputs

let plane_dims t =
  List.map (fun s -> (Plane.rows s.plane, Plane.cols s.plane)) t.stages

let crosbar_cols s = Array.length s.sources

let crossbar_dims t = List.map (fun s -> (s.pool_taps, crosbar_cols s)) t.stages

let eval t pis =
  if Array.length pis <> t.net.n_pi then invalid_arg "Cascade.eval";
  let values = Array.make (Array.length t.net.nodes) false in
  let read = function Pi i -> pis.(i) | Node j -> values.(j) in
  List.iter
    (fun s ->
      let inputs = Array.map read s.sources in
      let inputs = if Array.length inputs = 0 then [| false |] else inputs in
      let outs = Plane.eval s.plane inputs in
      Array.iteri (fun row k -> values.(k) <- outs.(row)) s.node_ids)
    t.stages;
  Array.map read t.net.outputs

let device_count t =
  List.fold_left
    (fun acc s -> acc + Plane.crosspoint_count s.plane + (s.pool_taps * crosbar_cols s))
    0 t.stages

let area tech t = tech.Device.Tech.cell_area * device_count t

let verify_against_network t net =
  if net.n_pi > 16 then invalid_arg "Cascade.verify_against_network: too many inputs";
  let ok = ref true in
  for m = 0 to (1 lsl net.n_pi) - 1 do
    let pis = Array.init net.n_pi (fun i -> m land (1 lsl i) <> 0) in
    if eval t pis <> eval_network net pis then ok := false
  done;
  !ok

(* --- switch level ---------------------------------------------------------- *)

type hw = {
  netlist : Circuit.Netlist.t;
  clocks : Circuit.Netlist.net list;  (* one per stage *)
  pi_nets : Circuit.Netlist.net array;
  output_nets : Circuit.Netlist.net array;
  hw_n_pi : int;
}

let build_hw ?params t =
  let nl = Circuit.Netlist.create ?params () in
  let pi_nets =
    Array.init t.net.n_pi (fun i -> Circuit.Netlist.add_net nl (Printf.sprintf "pi%d" i))
  in
  let node_nets = Array.make (Array.length t.net.nodes) (Circuit.Netlist.vdd nl) in
  let net_of_signal = function Pi i -> pi_nets.(i) | Node j -> node_nets.(j) in
  let clocks =
    List.mapi
      (fun k s ->
        let clock = Circuit.Netlist.add_net nl (Printf.sprintf "phi%d" (k + 1)) in
        (* The crossbar is realized as wiring: plane column c is driven by
           its source signal's net. *)
        let inputs = Array.map net_of_signal s.sources in
        let inputs = if Array.length inputs = 0 then [| Circuit.Netlist.gnd nl |] else inputs in
        Array.iteri
          (fun row node_id ->
            let g =
              Gnor.build nl ~name:(Printf.sprintf "s%dr%d" (k + 1) row) ~clock ~inputs
            in
            Gnor.configure nl g (Plane.row_modes s.plane row);
            node_nets.(node_id) <- Gnor.output g)
          s.node_ids;
        clock)
      t.stages
  in
  {
    netlist = nl;
    clocks;
    pi_nets;
    output_nets = Array.map net_of_signal t.net.outputs;
    hw_n_pi = t.net.n_pi;
  }

let hw_netlist hw = hw.netlist

let simulate_hw hw pis =
  if Array.length pis <> hw.hw_n_pi then invalid_arg "Cascade.simulate_hw";
  let sim = Circuit.Sim.create hw.netlist in
  Array.iteri (fun i b -> Circuit.Sim.set_input sim hw.pi_nets.(i) b) pis;
  (* Pre-charge all stages. *)
  List.iter (fun clk -> Circuit.Sim.set_input sim clk false) hw.clocks;
  Circuit.Sim.phase sim;
  (* Evaluate stage by stage. *)
  List.iter
    (fun clk ->
      Circuit.Sim.set_input sim clk true;
      Circuit.Sim.phase sim)
    hw.clocks;
  Array.mapi
    (fun o net ->
      match Circuit.Sim.bool_of_net sim net with
      | Some b -> b
      | None -> raise (Gnor.Floating_output { output = o; phase = "final-stage" }))
    hw.output_nets
