(** Generalized NOR (GNOR) gates built from ambipolar CNFETs (paper §3).

    A GNOR gate is a dynamic NOR whose pulldown network has one ambipolar
    CNFET per input; the polarity gate of each device selects how that
    input contributes:
    {ul
    {- [Pass] (PG = V+, n-type): the input participates directly;}
    {- [Invert] (PG = V−, p-type): the input participates complemented;}
    {- [Drop] (PG = V0, always off): the input is removed from the
       function.}}

    The output is pre-charged high through TPC (p-type) and conditionally
    discharged through the network in series with the foot device TEV
    (n-type); TPC and TEV share the clock and have opposite polarities, as
    in the paper's Fig. 2. With controls [C] and inputs [A], the gate
    computes [NOR_i (C_i ⊕ A_i)] over the non-dropped inputs. *)

type input_mode = Pass | Invert | Drop

exception Floating_output of { output : int; phase : string }
(** Raised by the switch-level simulation helpers ({!simulate},
    {!Plane.simulate_hw}, {!Pla.simulate_hw}, {!Cascade.simulate_hw}) when
    an output net resolves to neither 0 nor 1 after the evaluation phases.
    [output] is the index of the offending output in the raising module's
    output array and [phase] names the schedule step, so batch evaluation
    workers can report exactly which vector and output failed. *)

val mode_to_string : input_mode -> string

val pp_mode : Format.formatter -> input_mode -> unit

val mode_polarity : input_mode -> Device.Ambipolar.polarity
(** Device state implementing a mode ([Pass] → n-type, [Invert] → p-type,
    [Drop] → off). *)

val mode_pg_voltage : Device.Ambipolar.params -> input_mode -> float
(** PG programming voltage for a mode (V+, V− or V0). *)

val mode_of_polarity : Device.Ambipolar.polarity -> input_mode

val eval_functional : input_mode array -> bool array -> bool
(** Zero-delay model: [¬ (∨_i contribution_i)] where a [Pass] input
    contributes its value, an [Invert] input its complement and a [Drop]
    input nothing. A GNOR with every input dropped evaluates to [true]
    (nothing discharges the pre-charged node). *)

(** Switch-level realization on a netlist. *)
type gate

val build : Circuit.Netlist.t -> name:string -> clock:Circuit.Netlist.net -> inputs:Circuit.Netlist.net array -> gate
(** Instantiate TPC, TEV and one ambipolar device per input. All input
    devices start in the [Drop] state. *)

val configure : Circuit.Netlist.t -> gate -> input_mode array -> unit
(** Program the polarity gates (length must match the input count). *)

val output : gate -> Circuit.Netlist.net

val input_device : gate -> int -> Circuit.Netlist.device
(** The pulldown device of input [i] (for defect injection and programming
    tests). *)

val precharge_device : gate -> Circuit.Netlist.device
(** TPC. *)

val evaluate_device : gate -> Circuit.Netlist.device
(** TEV. *)

val simulate : ?params:Device.Ambipolar.params -> input_mode array -> bool array -> bool
(** Build a standalone gate, program it, run a pre-charge then an evaluate
    phase, and read the output. Raises {!Floating_output} if the output floats. *)
