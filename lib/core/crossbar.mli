(** Ambipolar-CNFET interconnect crossbar (paper §4).

    Every crosspoint holds an ambipolar CNFET used as a pass transistor
    between a horizontal and a vertical wire. All control gates sit at a
    shared high level, so the polarity gate alone decides connectivity:
    PG = V+ (n-type, conducting with CG high) connects the wires,
    PG = V0 (always off) leaves them disconnected. Interleaving such
    crossbars with GNOR planes cascades NOR planes into arbitrary logic. *)

type t

type wire = Row of int | Col of int

type signal = Driven of bool | Conflict | Floating

val create : rows:int -> cols:int -> t
(** All crosspoints open. *)

val rows : t -> int

val cols : t -> int

val connect : t -> row:int -> col:int -> unit

val disconnect : t -> row:int -> col:int -> unit

val connected : t -> row:int -> col:int -> bool

val crosspoint_polarity : t -> row:int -> col:int -> Device.Ambipolar.polarity
(** [N_type] when connected, [Off_state] otherwise — what the programming
    protocol must store. *)

val components : t -> wire list list
(** Connected groups of wires (singletons included), rows first. *)

val resolve : t -> driven:(wire * bool) list -> wire -> signal
(** Value observed on a wire when the given wires are driven: the common
    value of its component's drivers, [Conflict] if they disagree,
    [Floating] if none. *)

val route_point_to_point : t -> from_row:int -> to_col:int -> bool
(** Convenience: is the horizontal wire [from_row] electrically connected
    to the vertical wire [to_col]? *)

val copy : t -> t
(** Independent deep copy of the connection matrix — snapshot a known-good
    configuration before a chaos run mutates crosspoints. *)

val equal : t -> t -> bool
(** Same shape and same connection matrix. *)

val programmed_count : t -> int
(** Number of conducting crosspoints. *)

val area : Device.Tech.t -> t -> int
(** Crossbar area: one basic cell per crosspoint. *)

(** {1 Switch-level realization} *)

type hw

val build_hw : ?params:Device.Ambipolar.params -> t -> hw
(** One pass transistor per crosspoint on a fresh netlist: CG tied to the
    shared always-high line, polarity programmed from the connection
    matrix (n-type = connected, off = open), exactly §4's description. *)

val hw_netlist : hw -> Circuit.Netlist.t

val simulate_hw : hw -> driven:(int * bool) list -> (bool option array * bool option array)
(** Drive the given rows, relax, and read every row and column net
    ([None] = floating or conflicting). Must agree with {!resolve}. *)
