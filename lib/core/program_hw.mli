(** Device-level model of the PLA programming network (paper §4, Fig. 3).

    The charge-level protocol of {!Program} abstracts the selection
    mechanism; this module builds it physically: every crosspoint's
    polarity-gate node hangs behind {e two series n-type access
    transistors} — column select on the [VPG] side, row select on the
    storage side — and writes run in the transient solver.

    Classic array engineering is needed (and demonstrated by the tests):
    {ul
    {- {b word-line boosting}: selects are driven a threshold above VDD,
       otherwise the n-pass chain stops ~Vth short of a high [VPG] and
       the stored level falls outside the n-type decode window;}
    {- {b mid-node equalization}: each write starts by refreshing every
       (tiny) inter-transistor junction to [V0] through the column
       devices, bounding the charge-sharing bite row-mates take when the
       shared row select opens;}
    {- {b half-select isolation}: a cell with only one select active
       keeps its storage node behind an off transistor.}} *)

type t

val build : ?params:Device.Ambipolar.params -> rows:int -> cols:int -> unit -> t
(** Fresh array; every storage node starts at [V0] (all devices off). *)

val rows : t -> int

val cols : t -> int

val netlist : t -> Circuit.Netlist.t

val device_count : t -> int
(** Access transistors in the select network (2 per crosspoint). *)

val write : ?duration:float -> t -> row:int -> col:int -> float -> unit
(** One physical write: select the cell, drive [VPG], run the transient
    for [duration] (default 200 ps), deselect. *)

val write_mode : ?duration:float -> t -> row:int -> col:int -> Gnor.input_mode -> unit

val program_plane : ?duration:float -> t -> Plane.t -> unit

val stored_voltage : t -> row:int -> col:int -> float

val disturb : t -> row:int -> col:int -> float -> unit
(** Shift one storage node's charge by [delta] volts without a write —
    the radiation-strike / retention-loss model the chaos engine uses.
    A large enough shift moves the node across a decode boundary and
    {!readback} returns the wrong mode until the cell is rewritten. *)

val readback : t -> Plane.t
(** Decode every storage node's voltage into a device mode. *)

val verify : t -> Plane.t -> bool
