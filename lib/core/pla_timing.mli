(** First-order delay and energy of a PLA evaluation.

    Geometry follows the area model: a plane row spans
    [columns × √cell_area × L] of wire, a column spans
    [rows × √cell_area × L]. Delays are Elmore: the input column is driven
    through its buffer against the distributed wire plus one gate load per
    row; the pre-charged row line discharges through one conducting device
    (plus the foot device) against the distributed row wire and device
    junctions. Dynamic energy is the pre-charge charge of the switching
    row lines.

    Classical (Flash/EEPROM) planes pay twice the input columns, so their
    word lines are proportionally longer — the delay counterpart of
    Table 1's area comparison. *)

type result = {
  input_delay : float;  (** s — input buffer driving its column *)
  and_plane_delay : float;  (** s — product-row discharge *)
  or_plane_delay : float;  (** s — output-row discharge *)
  driver_delay : float;  (** s — output driver *)
  total_delay : float;
  energy_per_eval : float;  (** J — pre-charge energy of switching lines *)
  static_power : float;  (** W — off-state leakage of every crosspoint *)
  max_frequency : float;  (** Hz — 1 / (2 × total): pre-charge + evaluate *)
}

val evaluate : ?params:Device.Ambipolar.params -> ?activity:float -> Device.Tech.t -> Area.profile -> result
(** [activity] is the fraction of row lines discharging per evaluation
    (default 0.5). *)

val compare_table1 : ?params:Device.Ambipolar.params -> Area.profile -> (Device.Tech.family * result) list
(** The three technologies on one profile, in Table 1 column order. *)

type variation = {
  mean_delay : float;  (** s *)
  sigma_delay : float;
  worst_delay : float;
  yield_at_nominal : float;
      (** fraction of trials meeting 1.15 × the variation-free delay *)
  trials : int;
}

val trial_delay : Util.Rng.t -> ?sigma:float -> ?params:Device.Ambipolar.params -> Device.Tech.t -> Area.profile -> float
(** One variation trial: draw device and wire spread factors from [rng]
    and re-evaluate the total delay. Exposed so batch engines can run
    trials on independently-seeded rngs in parallel. *)

val variation_of_delays : ?params:Device.Ambipolar.params -> Device.Tech.t -> Area.profile -> float list -> variation
(** Fold trial delays into a {!variation} (nominal delay is recomputed
    from the variation-free parameters). *)

val monte_carlo : Util.Rng.t -> ?trials:int -> ?sigma:float -> ?params:Device.Ambipolar.params -> Device.Tech.t -> Area.profile -> variation
(** Device-to-device variation: each trial scales [r_on] and the wire RC
    by independent lognormal-ish factors of relative spread [sigma]
    (default 0.15 — immature nanotube processes are wide) and re-evaluates
    the PLA delay. The timing-yield view of the paper's "unreliable
    devices" remark. *)
