type t = { rows : int; cols : int; modes : Gnor.input_mode array array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Plane.create";
  { rows; cols; modes = Array.init rows (fun _ -> Array.make cols Gnor.Drop) }

let rows t = t.rows
let cols t = t.cols

let check t ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then invalid_arg "Plane: out of range"

let mode t ~row ~col =
  check t ~row ~col;
  t.modes.(row).(col)

let set_mode t ~row ~col m =
  check t ~row ~col;
  t.modes.(row).(col) <- m

let row_modes t r =
  if r < 0 || r >= t.rows then invalid_arg "Plane.row_modes";
  Array.copy t.modes.(r)

let configure_row t r ms =
  if r < 0 || r >= t.rows then invalid_arg "Plane.configure_row";
  if Array.length ms <> t.cols then invalid_arg "Plane.configure_row: width";
  Array.blit ms 0 t.modes.(r) 0 t.cols

let eval t inputs =
  if Array.length inputs <> t.cols then invalid_arg "Plane.eval";
  Array.init t.rows (fun r -> Gnor.eval_functional t.modes.(r) inputs)

let crosspoint_count t = t.rows * t.cols

let used_crosspoints t =
  let n = ref 0 in
  Array.iter (Array.iter (fun m -> if m <> Gnor.Drop then incr n)) t.modes;
  !n

let iter f t =
  Array.iteri (fun r row -> Array.iteri (fun c m -> f r c m) row) t.modes

let copy t = { t with modes = Array.map Array.copy t.modes }

let equal a b = a.rows = b.rows && a.cols = b.cols && a.modes = b.modes

type hw = {
  netlist : Circuit.Netlist.t;
  clock : Circuit.Netlist.net;
  input_nets : Circuit.Netlist.net array;
  gates : Gnor.gate array;
}

let build_hw ?params t =
  let nl = Circuit.Netlist.create ?params () in
  let clock = Circuit.Netlist.add_net nl "phi" in
  let input_nets =
    Array.init t.cols (fun c -> Circuit.Netlist.add_net nl (Printf.sprintf "col%d" c))
  in
  let gates =
    Array.init t.rows (fun r ->
        let g = Gnor.build nl ~name:(Printf.sprintf "row%d" r) ~clock ~inputs:input_nets in
        Gnor.configure nl g t.modes.(r);
        g)
  in
  { netlist = nl; clock; input_nets; gates }

let simulate_hw hw inputs =
  if Array.length inputs <> Array.length hw.input_nets then invalid_arg "Plane.simulate_hw";
  let sim = Circuit.Sim.create hw.netlist in
  Array.iteri (fun i b -> Circuit.Sim.set_input sim hw.input_nets.(i) b) inputs;
  Circuit.Sim.set_input sim hw.clock false;
  Circuit.Sim.phase sim;
  Circuit.Sim.set_input sim hw.clock true;
  Circuit.Sim.phase sim;
  Array.mapi
    (fun r g ->
      match Circuit.Sim.bool_of_net sim (Gnor.output g) with
      | Some b -> b
      | None -> raise (Gnor.Floating_output { output = r; phase = "evaluate" }))
    hw.gates
