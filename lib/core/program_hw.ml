module A = Device.Ambipolar
module N = Circuit.Netlist

type t = {
  prm : A.params;
  nrows : int;
  ncols : int;
  nl : N.t;
  tr : Circuit.Transient.t;
  vpg : N.net;
  row_sel : N.net array;
  col_sel : N.net array;
  storage : N.net array array;  (* polarity-gate nodes *)
}

let build ?(params = A.default) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Program_hw.build";
  let nl = N.create ~params () in
  let vpg = N.add_net nl "VPG" in
  let row_sel = Array.init rows (fun i -> N.add_net nl (Printf.sprintf "VSelR%d" i)) in
  let col_sel = Array.init cols (fun j -> N.add_net nl (Printf.sprintf "VSelC%d" j)) in
  let mids = ref [] in
  let storage =
    Array.init rows (fun i ->
        Array.init cols (fun j ->
            let pg = N.add_net nl (Printf.sprintf "pg_%d_%d" i j) in
            let mid = N.add_net nl (Printf.sprintf "mid_%d_%d" i j) in
            mids := mid :: !mids;
            (* Column-outer, row-inner chain:
               VPG --[VSelC_j]-- mid --[VSelR_i]-- pg.
               Column-half-selected cells then have their storage isolated
               behind the off row device; only row-mates of a write see a
               small charge-sharing bite through the (tiny) mid node. *)
            let _ =
              N.add_device nl
                ~name:(Printf.sprintf "ac_%d_%d" i j)
                ~gate:col_sel.(j) ~src:vpg ~drn:mid ~polarity:A.N_type
            in
            let _ =
              N.add_device nl
                ~name:(Printf.sprintf "ar_%d_%d" i j)
                ~gate:row_sel.(i) ~src:mid ~drn:pg ~polarity:A.N_type
            in
            pg))
  in
  let tr = Circuit.Transient.create nl in
  (* Storage nodes carry the PG capacitance and start at V0 (fabrication
     leaves devices off); mid nodes are small junctions. *)
  Array.iter
    (Array.iter (fun pg ->
         Circuit.Transient.set_capacitance tr pg params.A.c_pg;
         Circuit.Transient.drive tr pg (A.v_zero params);
         Circuit.Transient.release tr pg))
    storage;
  List.iter
    (fun mid -> Circuit.Transient.set_capacitance tr mid (0.04 *. params.A.c_gate))
    !mids;
  (* All selects and VPG idle low. *)
  Array.iter (fun n -> Circuit.Transient.drive tr n 0.0) row_sel;
  Array.iter (fun n -> Circuit.Transient.drive tr n 0.0) col_sel;
  Circuit.Transient.drive tr vpg 0.0;
  { prm = params; nrows = rows; ncols = cols; nl; tr; vpg; row_sel; col_sel; storage }

let rows t = t.nrows
let cols t = t.ncols
let netlist t = t.nl
let device_count t = 2 * t.nrows * t.ncols

let check t ~row ~col =
  if row < 0 || row >= t.nrows || col < 0 || col >= t.ncols then
    invalid_arg "Program_hw: out of range"

(* Select lines are boosted a threshold above VDD (word-line boosting) so
   the n-pass chain delivers the full programming voltage. *)
let boost t = t.prm.A.vdd +. t.prm.A.vth +. 0.1

let write ?(duration = 200e-12) t ~row ~col volts =
  check t ~row ~col;
  let now = Circuit.Transient.time t.tr in
  (* Phase 1 — mid equalization: every column select up, rows off,
     VPG = V0. All mid junctions refresh to V0 while the storage nodes sit
     isolated behind their off row devices. *)
  Circuit.Transient.drive t.tr t.vpg (A.v_zero t.prm);
  Array.iter (fun n -> Circuit.Transient.drive t.tr n (boost t)) t.col_sel;
  Circuit.Transient.run t.tr ~until:(now +. 30e-12);
  Array.iter (fun n -> Circuit.Transient.drive t.tr n 0.0) t.col_sel;
  (* Phase 2 — the write proper. *)
  Circuit.Transient.drive t.tr t.vpg volts;
  Circuit.Transient.drive t.tr t.row_sel.(row) (boost t);
  Circuit.Transient.drive t.tr t.col_sel.(col) (boost t);
  Circuit.Transient.run t.tr ~until:(now +. 30e-12 +. duration);
  (* Deselect, idle VPG; settle briefly. *)
  Circuit.Transient.drive t.tr t.row_sel.(row) 0.0;
  Circuit.Transient.drive t.tr t.col_sel.(col) 0.0;
  Circuit.Transient.drive t.tr t.vpg 0.0;
  Circuit.Transient.run t.tr ~until:(now +. 40e-12 +. duration)

let write_mode ?duration t ~row ~col m =
  write ?duration t ~row ~col (Gnor.mode_pg_voltage t.prm m)

let program_plane ?duration t plane =
  if Plane.rows plane <> t.nrows || Plane.cols plane <> t.ncols then
    invalid_arg "Program_hw.program_plane: shape mismatch";
  (* Writing the off-state (V0) is a no-op from fabrication, but a reused
     array may hold other charges: write every crosspoint explicitly. *)
  Plane.iter (fun r c m -> write_mode ?duration t ~row:r ~col:c m) plane

let stored_voltage t ~row ~col =
  check t ~row ~col;
  Circuit.Transient.voltage t.tr t.storage.(row).(col)

let disturb t ~row ~col delta =
  check t ~row ~col;
  let pg = t.storage.(row).(col) in
  let v = Circuit.Transient.voltage t.tr pg +. delta in
  Circuit.Transient.drive t.tr pg v;
  Circuit.Transient.release t.tr pg

let readback t =
  let plane = Plane.create ~rows:t.nrows ~cols:t.ncols in
  for r = 0 to t.nrows - 1 do
    for c = 0 to t.ncols - 1 do
      let pol = A.polarity_of_pg t.prm (stored_voltage t ~row:r ~col:c) in
      Plane.set_mode plane ~row:r ~col:c (Gnor.mode_of_polarity pol)
    done
  done;
  plane

let verify t plane = Plane.equal (readback t) plane
