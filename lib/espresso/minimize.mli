(** Heuristic two-level minimization in the espresso style.

    The minimizer receives an on-set cover [f] and a don't-care cover [d]
    and returns a smaller prime, irredundant cover of the same (incompletely
    specified) function. The classic loop is implemented:

    {ol
    {- compute the off-set [r = ¬(f ∪ d)];}
    {- EXPAND every cube against [r] into a prime, discarding covered
       cubes;}
    {- IRREDUNDANT: drop cubes covered by the rest;}
    {- extract relatively essential cubes into the don't-care set;}
    {- iterate REDUCE → EXPAND → IRREDUNDANT while the cost improves.}}

    Cost is (number of cubes, total literals), lexicographic. *)

type result = {
  cover : Logic.Cover.t;  (** minimized on-set *)
  iterations : int;  (** number of reduce/expand/irredundant rounds *)
  initial_cost : int * int;  (** (cubes, literals) before minimization *)
  final_cost : int * int;  (** (cubes, literals) after minimization *)
}

val minimize : ?dc:Logic.Cover.t -> Logic.Cover.t -> result
(** [minimize ?dc f] minimizes [f] under the optional don't-care set
    (default empty). *)

val calls_total : unit -> int
(** Cumulative {!minimize} invocations across the program (all domains).
    Feeds the runtime metrics. *)

val iterations_total : unit -> int
(** Cumulative reduce/expand/irredundant rounds across every {!minimize}
    call. *)

val expand_cubes_total : unit -> int
(** Cumulative cubes expanded against an off-set across the program. *)

val blocker_scans_total : unit -> int
(** Cumulative off-set cubes inspected by expand's one-pass blocker-count
    cache. *)

val blocker_scans_naive_total : unit -> int
(** Off-set cubes the pre-cache per-position rescan would have inspected
    for the same work; [1 - scans/naive] is the cache's savings. *)

val cover : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** Convenience: [(minimize ?dc f).cover]. *)

val minimize_harder : ?dc:Logic.Cover.t -> ?gasp_rounds:int -> Logic.Cover.t -> result
(** {!minimize} followed by LAST_GASP-style escape attempts: up to
    [gasp_rounds] (default 4) rounds of reduce → expand-in-reverse-order →
    irredundant, keeping only improvements. Never worse than
    {!minimize}. *)

val expand : Logic.Cover.t -> offset:Logic.Cover.t -> Logic.Cover.t
(** One EXPAND pass: raise literals and output parts of each cube while the
    cube stays disjoint from the off-set; remove cubes covered by earlier
    expanded primes. Exposed for tests and ablations. *)

val irredundant : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** Drop cubes covered by the remainder of the cover plus don't-cares. *)

val irredundant_minimal : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** Minimum-cardinality subset of the cover's own cubes still covering the
    function — exact covering over (minterm, output) pairs, so limited to
    ≤ 12 inputs. The cardinality-optimal counterpart of the
    order-dependent {!irredundant}. *)

val reduce : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** One REDUCE pass: shrink each cube to the smallest cube still covering
    the part of the function only it covers. *)

val essentials : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t * Logic.Cover.t
(** [essentials ?dc f] splits [f] into (relatively essential, remainder). *)

val verify : ?dc:Logic.Cover.t -> original:Logic.Cover.t -> Logic.Cover.t -> bool
(** [verify ?dc ~original m] checks [m] implements the same incompletely
    specified function: [m ∪ dc ⊇ original] and every cube of [m] lies in
    [original ∪ dc]. *)
