module Cube = Logic.Cube
module Cover = Logic.Cover

let check_single f =
  if Cover.num_outputs f <> 1 then invalid_arg "Qm: single-output only";
  if Cover.num_inputs f > 16 then invalid_arg "Qm: too many inputs"

(* Implicants are represented as (mask, value): bit i of mask set means
   input i is don't-care; otherwise bit i of value gives the literal. *)

let cube_of_impl n_in (mask, value) =
  let lits =
    List.init n_in (fun i ->
        if mask land (1 lsl i) <> 0 then Cube.Dc
        else if value land (1 lsl i) <> 0 then Cube.One
        else Cube.Zero)
  in
  Cube.of_literals lits ~outs:(Util.Bitvec.of_list 1 [ 0 ])

let minterm_list f dc =
  let tt = Logic.Truth_table.of_cover (Cover.union f dc) in
  let n_in = Cover.num_inputs f in
  let ms = ref [] in
  for m = (1 lsl n_in) - 1 downto 0 do
    if Logic.Truth_table.get tt ~minterm:m ~output:0 then ms := m :: !ms
  done;
  !ms

let prime_implicants ?dc f =
  check_single f;
  let n_in = Cover.num_inputs f in
  let dc =
    match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out:1
  in
  let minterms = minterm_list f dc in
  (* Level k holds implicants with k don't-care positions. Two implicants
     merge when they share the mask and differ in exactly one bit. *)
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let primes = ref S.empty in
  let current = ref (S.of_list (List.map (fun m -> (0, m)) minterms)) in
  while not (S.is_empty !current) do
    let merged = Hashtbl.create 64 in
    let next = ref S.empty in
    S.iter
      (fun (mask, value) ->
        for i = 0 to n_in - 1 do
          let bit = 1 lsl i in
          if mask land bit = 0 then begin
            let partner = (mask, value lxor bit) in
            if S.mem partner !current then begin
              Hashtbl.replace merged (mask, value) ();
              next := S.add (mask lor bit, value land lnot bit) !next
            end
          end
        done)
      !current;
    S.iter
      (fun impl -> if not (Hashtbl.mem merged impl) then primes := S.add impl !primes)
      !current;
    current := !next
  done;
  Cover.make ~n_in ~n_out:1 (List.map (cube_of_impl n_in) (S.elements !primes))

(* Branch-and-bound minimum unate covering: rows = required on-set
   minterms, columns = primes. *)
let minimize ?dc f =
  check_single f;
  let n_in = Cover.num_inputs f in
  let dc = match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out:1 in
  let required = minterm_list f (Cover.empty ~n_in ~n_out:1) in
  (* Minterms that are pure don't-cares need not be covered. *)
  let dc_tt = Logic.Truth_table.of_cover dc in
  let required = List.filter (fun m -> not (Logic.Truth_table.get dc_tt ~minterm:m ~output:0)) required in
  let primes = Cover.to_array (prime_implicants ~dc f) in
  let np = Array.length primes in
  if required = [] then Cover.empty ~n_in ~n_out:1
  else begin
    let covers_m p m =
      Cube.matches p (Array.init n_in (fun i -> m land (1 lsl i) <> 0))
    in
    let cols_of = (* for each required minterm, the primes covering it *)
      List.map (fun m -> (m, List.filter (fun j -> covers_m primes.(j) m) (List.init np Fun.id))) required
    in
    let best = ref None in
    let best_size = ref max_int in
    (* Greedy upper bound first to prune. *)
    let greedy () =
      let uncovered = ref (List.map fst cols_of) in
      let chosen = ref [] in
      while !uncovered <> [] do
        let gain j =
          List.length (List.filter (fun m -> covers_m primes.(j) m) !uncovered)
        in
        let bestj = ref 0 and bestg = ref (-1) in
        for j = 0 to np - 1 do
          let g = gain j in
          if g > !bestg then begin
            bestg := g;
            bestj := j
          end
        done;
        chosen := !bestj :: !chosen;
        uncovered := List.filter (fun m -> not (covers_m primes.(!bestj) m)) !uncovered
      done;
      !chosen
    in
    let g = greedy () in
    best := Some g;
    best_size := List.length g;
    (* Branch and bound over minterms ordered by fewest covering primes. *)
    let table =
      List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) cols_of
    in
    let rec bb chosen size remaining =
      if size >= !best_size then ()
      else
        match remaining with
        | [] ->
          best := Some chosen;
          best_size := size
        | (m, cands) :: rest ->
          let already = List.exists (fun j -> covers_m primes.(j) m) chosen in
          if already then bb chosen size rest
          else
            List.iter (fun j -> bb (j :: chosen) (size + 1) rest) cands
    in
    bb [] 0 table;
    match !best with
    | None -> assert false
    | Some chosen ->
      let chosen = List.sort_uniq compare chosen in
      Cover.make ~n_in ~n_out:1 (List.map (fun j -> primes.(j)) chosen)
  end

let minimum_size ?dc f = Cover.size (minimize ?dc f)
