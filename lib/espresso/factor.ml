module Cube = Logic.Cube
module Cover = Logic.Cover

type expr = Lit of int * bool | And of expr list | Or of expr list

(* Work on cube lists of a single-output cover. *)

let cube_literals c =
  let acc = ref [] in
  for i = Cube.num_inputs c - 1 downto 0 do
    match Cube.get c i with
    | Cube.Dc -> ()
    | Cube.One -> acc := (i, true) :: !acc
    | Cube.Zero -> acc := (i, false) :: !acc
  done;
  !acc

let and_of_cube c =
  match cube_literals c with
  | [ (i, ph) ] -> Lit (i, ph)
  | lits -> And (List.map (fun (i, ph) -> Lit (i, ph)) lits)

(* Most frequent literal over the cube list; None if every literal occurs
   at most once (then no algebraic divisor by a single literal exists). *)
let best_literal n_in cubes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun lit ->
          let cur = try Hashtbl.find counts lit with Not_found -> 0 in
          Hashtbl.replace counts lit (cur + 1))
        (cube_literals c))
    cubes;
  ignore n_in;
  Hashtbl.fold
    (fun lit n best ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ -> if n >= 2 then Some (lit, n) else best)
    counts None

let remove_literal c (i, ph) =
  ignore ph;
  Cube.set c i Cube.Dc

let has_literal c (i, ph) =
  match Cube.get c i with
  | Cube.One -> ph
  | Cube.Zero -> not ph
  | Cube.Dc -> false

let rec factor_cubes n_in cubes =
  match cubes with
  | [] -> Or []
  | [ c ] -> and_of_cube c
  | _ -> (
    match best_literal n_in cubes with
    | None -> Or (List.map and_of_cube cubes)
    | Some ((i, ph), _) ->
      let quotient, remainder = List.partition (fun c -> has_literal c (i, ph)) cubes in
      let q = List.map (fun c -> remove_literal c (i, ph)) quotient in
      let q_factored = factor_cubes n_in q in
      let head =
        match q_factored with
        | And es -> And (Lit (i, ph) :: es)
        | e -> And [ Lit (i, ph); e ]
      in
      if remainder = [] then head
      else
        let rest = factor_cubes n_in remainder in
        (match rest with
        | Or es -> Or (head :: es)
        | e -> Or [ head; e ]))

(* Constant-folding / peephole pass: flatten nested ORs and ANDs, dedupe,
   and collapse complementary bare literals ([x + x' = 1], [x·x' = 0]) —
   weak algebraic division can leave such artifacts in quotients. *)
let rec simplify e =
  match e with
  | Lit _ -> e
  | Or es ->
    let es = List.concat_map (fun x -> match simplify x with Or ys -> ys | y -> [ y ]) es in
    let es = List.sort_uniq compare es in
    if List.exists (function And [] -> true | _ -> false) es then And []
    else if
      List.exists
        (function Lit (i, ph) -> List.mem (Lit (i, not ph)) es | And _ | Or _ -> false)
        es
    then And []
    else begin
      let es = List.filter (function Or [] -> false | _ -> true) es in
      match es with [ x ] -> x | es -> Or es
    end
  | And es ->
    let es = List.concat_map (fun x -> match simplify x with And ys -> ys | y -> [ y ]) es in
    let es = List.sort_uniq compare es in
    if List.exists (function Or [] -> true | _ -> false) es then Or []
    else if
      List.exists
        (function Lit (i, ph) -> List.mem (Lit (i, not ph)) es | And _ | Or _ -> false)
        es
    then Or []
    else begin
      let es = List.filter (function And [] -> false | _ -> true) es in
      match es with [ x ] -> x | es -> And es
    end

let factor cover =
  if Cover.num_outputs cover <> 1 then invalid_arg "Factor.factor: single output only";
  (* Drop cubes contained in others first; a universal cube makes the
     function constant 1. *)
  let cover = Cover.single_cube_containment cover in
  if Array.exists (fun c -> Cube.literal_count c = 0) (Cover.to_array cover) then And []
  else simplify (factor_cubes (Cover.num_inputs cover) (Cover.cubes cover))

let factor_multi cover =
  Array.init (Cover.num_outputs cover) (fun o -> factor (Cover.restrict_output cover o))

let rec eval e a =
  match e with
  | Lit (i, ph) -> if ph then a.(i) else not a.(i)
  | And es -> List.for_all (fun x -> eval x a) es
  | Or es -> List.exists (fun x -> eval x a) es

let rec literal_count = function
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun n e -> n + literal_count e) 0 es

let flat_literal_count = Cover.literal_total

let rec to_string = function
  | Lit (i, true) -> Printf.sprintf "x%d" i
  | Lit (i, false) -> Printf.sprintf "x%d'" i
  | And [] -> "1"
  | And es -> String.concat "" (List.map paren_string es)
  | Or [] -> "0"
  | Or es -> String.concat " + " (List.map to_string es)

and paren_string e =
  match e with
  | Or (_ :: _ :: _) -> "(" ^ to_string e ^ ")"
  | Lit _ | And _ | Or _ -> to_string e

(* BDD of a factored expression. *)
let rec bdd_of man e =
  match e with
  | Lit (i, true) -> Logic.Bdd.var man i
  | Lit (i, false) -> Logic.Bdd.nvar man i
  | And es ->
    List.fold_left (fun acc x -> Logic.Bdd.and_ man acc (bdd_of man x)) (Logic.Bdd.one man) es
  | Or es ->
    List.fold_left (fun acc x -> Logic.Bdd.or_ man acc (bdd_of man x)) (Logic.Bdd.zero man) es

let verify cover exprs =
  Array.length exprs = Cover.num_outputs cover
  &&
  let man = Logic.Bdd.manager () in
  let from_cover = Logic.Bdd.of_cover man cover in
  let from_exprs = Array.map (bdd_of man) exprs in
  Array.for_all2 Logic.Bdd.equal from_cover from_exprs
