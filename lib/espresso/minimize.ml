module Cube = Logic.Cube
module Cover = Logic.Cover

type result = {
  cover : Cover.t;
  iterations : int;
  initial_cost : int * int;
  final_cost : int * int;
}

let cost c = (Cover.size c, Cover.literal_total c)

(* Cumulative work counters for the runtime metrics layer ([Atomic] so
   parallel workers can share them without locking). [blocker_scans] counts
   off-set cubes inspected by the blocker-count cache; [blocker_scans_naive]
   what the old per-position rescan would have inspected — their ratio is
   the cache's savings. *)
let total_calls = Atomic.make 0
let total_iterations = Atomic.make 0
let total_expand_cubes = Atomic.make 0
let blocker_scans = Atomic.make 0
let blocker_scans_naive = Atomic.make 0

let calls_total () = Atomic.get total_calls
let iterations_total () = Atomic.get total_iterations
let expand_cubes_total () = Atomic.get total_expand_cubes
let blocker_scans_total () = Atomic.get blocker_scans
let blocker_scans_naive_total () = Atomic.get blocker_scans_naive

let default_dc f = Cover.empty ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f)

(* A raised candidate is valid iff it intersects no off-set cube. *)
let disjoint_from_offset cand offset =
  not (Array.exists (Cube.intersects cand) (Cover.to_array offset))

(* Expand one cube into a prime against the off-set. Inputs are raised
   first (cheapest literals first: positions blocked by the fewest off-set
   cubes are tried first), then the output part is raised. *)
let expand_cube c ~offset =
  let n_in = Cube.num_inputs c and n_out = Cube.num_outputs c in
  let off = Cover.to_array offset in
  let n_off = Array.length off in
  (* Heuristic order: for each lowerable position count how many off-set
     cubes newly intersect if raised; fewer blockers first. Raising
     position i makes off cube r newly intersect iff the input conflicts
     of (c, r) are confined to {i} and the output parts already meet, so
     one pass over the off-set classifying each cube by its conflict
     profile yields every position's count — instead of rescanning the
     whole off-set once per candidate position. *)
  let candidates =
    List.filter (fun i -> Cube.raw_get c i <> 3) (List.init n_in (fun i -> i))
  in
  let blockers = Array.make (max n_in 1) 0 in
  let outs = Cube.outputs c in
  Array.iter
    (fun r ->
      if not (Util.Bitvec.disjoint outs (Cube.outputs r)) then
        match Cube.first_input_conflicts c r with
        | 0, _ ->
          (* Distance already 0: the cube blocks every raise equally —
             a constant offset that cannot change the sort order. *)
          ()
        | 1, pos -> blockers.(pos) <- blockers.(pos) + 1
        | _ -> ())
    off;
  Atomic.incr total_expand_cubes;
  ignore (Atomic.fetch_and_add blocker_scans n_off);
  ignore (Atomic.fetch_and_add blocker_scans_naive (List.length candidates * n_off));
  let ordered =
    List.sort (fun a b -> compare blockers.(a) blockers.(b)) candidates
  in
  let raise_input acc i =
    let cand = Cube.raw_set acc i 3 in
    if disjoint_from_offset cand offset then cand else acc
  in
  let c = List.fold_left raise_input c ordered in
  let raise_output acc o =
    if Util.Bitvec.get (Cube.outputs acc) o then acc
    else
      let outs = Util.Bitvec.copy (Cube.outputs acc) in
      Util.Bitvec.set outs o true;
      let cand = Cube.with_outputs acc outs in
      if disjoint_from_offset cand offset then cand else acc
  in
  let rec raise_outputs acc o = if o >= n_out then acc else raise_outputs (raise_output acc o) (o + 1) in
  raise_outputs c 0

let expand f ~offset =
  Obs.Span.with_ "espresso.expand" @@ fun () ->
  (* Expand biggest cubes first so that small cubes are more likely to be
     swallowed by already-expanded primes. *)
  let cs =
    List.sort
      (fun a b -> compare (Cube.literal_count a) (Cube.literal_count b))
      (Cover.cubes f)
  in
  let step primes c =
    if List.exists (fun p -> Cube.contains p c) primes then primes
    else expand_cube c ~offset :: primes
  in
  let primes = List.fold_left step [] cs in
  Cover.single_cube_containment
    (Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) (List.rev primes))

let irredundant ?dc f =
  Obs.Span.with_ "espresso.irredundant" @@ fun () ->
  let dc = match dc with Some d -> d | None -> default_dc f in
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let others =
        Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f)
          (List.rev_append kept rest)
      in
      if Cover.covers_cube (Cover.union others dc) c then go kept rest
      else go (c :: kept) rest
  in
  (* Try to remove large cubes last: visiting small cubes first lets them be
     absorbed while big primes stay. *)
  let cs =
    List.sort (fun a b -> compare (Cube.literal_count b) (Cube.literal_count a)) (Cover.cubes f)
  in
  Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) (go [] cs)

let irredundant_minimal ?dc f =
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  if n_in > 12 then invalid_arg "Minimize.irredundant_minimal: too many inputs";
  let dc = match dc with Some d -> d | None -> default_dc f in
  let cubes = Array.of_list (Cover.cubes f) in
  let nc = Array.length cubes in
  if nc = 0 then f
  else begin
    let tt_on = Logic.Truth_table.of_cover f in
    let tt_dc = Logic.Truth_table.of_cover dc in
    let required = ref [] in
    for m = (1 lsl n_in) - 1 downto 0 do
      for o = n_out - 1 downto 0 do
        if
          Logic.Truth_table.get tt_on ~minterm:m ~output:o
          && not (Logic.Truth_table.get tt_dc ~minterm:m ~output:o)
        then required := (m, o) :: !required
      done
    done;
    let covers j (m, o) =
      Util.Bitvec.get (Cube.outputs cubes.(j)) o
      && Cube.matches cubes.(j) (Array.init n_in (fun i -> m land (1 lsl i) <> 0))
    in
    if !required = [] then Cover.empty ~n_in ~n_out
    else begin
      (* Greedy upper bound, then branch-and-bound over the covering
         table, as in the exact minimizers. *)
      let best = ref [] and best_size = ref max_int in
      let greedy () =
        let uncovered = ref !required in
        let chosen = ref [] in
        while !uncovered <> [] do
          let bestj = ref 0 and bestg = ref (-1) in
          for j = 0 to nc - 1 do
            let g = List.length (List.filter (covers j) !uncovered) in
            if g > !bestg then begin
              bestg := g;
              bestj := j
            end
          done;
          chosen := !bestj :: !chosen;
          uncovered := List.filter (fun r -> not (covers !bestj r)) !uncovered
        done;
        !chosen
      in
      let g = greedy () in
      best := g;
      best_size := List.length g;
      let table =
        List.sort
          (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
          (List.map
             (fun r -> (r, List.filter (fun j -> covers j r) (List.init nc Fun.id)))
             !required)
      in
      let rec bb chosen size remaining =
        if size >= !best_size then ()
        else
          match remaining with
          | [] ->
            best := chosen;
            best_size := size
          | (r, cands) :: rest ->
            if List.exists (fun j -> covers j r) chosen then bb chosen size rest
            else List.iter (fun j -> bb (j :: chosen) (size + 1) rest) cands
      in
      bb [] 0 table;
      let chosen = List.sort_uniq compare !best in
      Cover.make ~n_in ~n_out (List.map (fun j -> cubes.(j)) chosen)
    end
  end

let essentials ?dc f =
  Obs.Span.with_ "espresso.essentials" @@ fun () ->
  let dc = match dc with Some d -> d | None -> default_dc f in
  let all = Cover.cubes f in
  let ess, rest =
    List.partition
      (fun c ->
        let others = List.filter (fun d -> not (Cube.equal d c)) all in
        let cover_others =
          Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) others
        in
        not (Cover.covers_cube (Cover.union cover_others dc) c))
      all
  in
  ( Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) ess,
    Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) rest )

(* Smallest cube containing the complement of [q] inside the space of cube
   [c] (q is already cofactored by c). Computed per output with the
   single-output complement, then supercubed. Returns None when the
   complement is empty (c is redundant — fully covered by q). *)
let smallest_cube_containing_complement q ~n_in ~n_out ~outs =
  let acc = ref None in
  let join cube =
    acc := Some (match !acc with None -> cube | Some s -> Cube.supercube2 s cube)
  in
  for o = 0 to n_out - 1 do
    if Util.Bitvec.get outs o then begin
      let qo = Cover.restrict_output q o in
      let comp = Cover.complement qo in
      if not (Cover.is_empty comp) then
        List.iter
          (fun cc ->
            let wide =
              Cube.of_literals
                (List.init n_in (Cube.get cc))
                ~outs:(Util.Bitvec.of_list n_out [ o ])
            in
            join wide)
          (Cover.cubes comp)
    end
  done;
  !acc

let reduce ?dc f =
  Obs.Span.with_ "espresso.reduce" @@ fun () ->
  let dc = match dc with Some d -> d | None -> default_dc f in
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  (* Visit largest cubes first (espresso's heuristic ordering). *)
  let cs =
    List.sort (fun a b -> compare (Cube.literal_count a) (Cube.literal_count b)) (Cover.cubes f)
  in
  let rec go done_ = function
    | [] -> List.rev done_
    | c :: rest ->
      let others = Cover.make ~n_in ~n_out (List.rev_append done_ rest) in
      let q = Cover.cofactor_cube (Cover.union others dc) ~by:c in
      let c' =
        match
          smallest_cube_containing_complement q ~n_in ~n_out ~outs:(Cube.outputs c)
        with
        | None -> None (* fully covered by the others: drop it *)
        | Some sccc -> Cube.intersect c sccc
      in
      (match c' with
      | None -> go done_ rest
      | Some c' -> go (c' :: done_) rest)
  in
  Cover.make ~n_in ~n_out (go [] cs)

let minimize ?dc f =
  Obs.Span.with_ "espresso.minimize" @@ fun () ->
  Atomic.incr total_calls;
  let dc = match dc with Some d -> d | None -> default_dc f in
  let initial_cost = cost f in
  if Cover.is_empty f then
    { cover = f; iterations = 0; initial_cost; final_cost = initial_cost }
  else begin
    let offset = Cover.complement (Cover.union f dc) in
    let f = expand f ~offset in
    let f = irredundant ~dc f in
    let ess, rest = essentials ~dc f in
    let dc_with_ess = Cover.union dc ess in
    let rec loop f best_cost iters =
      let f' = reduce ~dc:dc_with_ess f in
      let f' = expand f' ~offset in
      let f' = irredundant ~dc:dc_with_ess f' in
      let c' = cost f' in
      if c' < best_cost then
        if iters < 16 then loop f' c' (iters + 1) else (f', iters + 1)
      else (f, iters)
    in
    let rest_min, iterations =
      if Cover.is_empty rest then (rest, 0) else loop rest (cost rest) 0
    in
    let final =
      Obs.Span.with_ "espresso.containment" (fun () ->
          Cover.single_cube_containment (Cover.union ess rest_min))
    in
    ignore (Atomic.fetch_and_add total_iterations iterations);
    { cover = final; iterations; initial_cost; final_cost = cost final }
  end

let cover ?dc f = (minimize ?dc f).cover

(* Expand visiting the most specific cubes last (the reverse of the main
   heuristic) — a different escape direction for LAST_GASP. *)
let expand_reversed f ~offset =
  let cs =
    List.sort
      (fun a b -> compare (Cube.literal_count b) (Cube.literal_count a))
      (Cover.cubes f)
  in
  let step primes c =
    if List.exists (fun p -> Cube.contains p c) primes then primes
    else expand_cube c ~offset :: primes
  in
  let primes = List.fold_left step [] cs in
  Cover.single_cube_containment
    (Cover.make ~n_in:(Cover.num_inputs f) ~n_out:(Cover.num_outputs f) (List.rev primes))

let minimize_harder ?dc ?(gasp_rounds = 4) f =
  let dc = match dc with Some d -> d | None -> default_dc f in
  let base = minimize ~dc f in
  if Cover.is_empty base.cover then base
  else begin
    let offset = Cover.complement (Cover.union f dc) in
    let rec gasp best round =
      if round >= gasp_rounds then best
      else begin
        let cand = reduce ~dc best in
        let cand = expand_reversed cand ~offset in
        let cand = irredundant ~dc cand in
        if cost cand < cost best then gasp cand (round + 1) else best
      end
    in
    let final = gasp base.cover 0 in
    {
      cover = final;
      iterations = base.iterations;
      initial_cost = base.initial_cost;
      final_cost = cost final;
    }
  end

let verify ?dc ~original m =
  let dc = match dc with Some d -> d | None -> default_dc original in
  Cover.covers (Cover.union m dc) original && Cover.covers (Cover.union original dc) m
