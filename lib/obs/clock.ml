(* Injectable time sources for the tracing layer.

   A clock is just [unit -> int64] nanoseconds. The real clock is derived
   from [Unix.gettimeofday] but clamped through an [Atomic] high-water
   mark so consecutive readings never go backwards (gettimeofday may step
   under NTP adjustment); the trace validator relies on per-track
   monotonicity. The fixed-step double returns a deterministic arithmetic
   sequence, which makes trace output byte-for-byte reproducible in
   tests. *)

type t = unit -> int64

let monotonic =
  let last = Atomic.make 0L in
  fun () ->
    let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
    let rec clamp () =
      let prev = Atomic.get last in
      if Int64.compare now prev <= 0 then prev
      else if Atomic.compare_and_set last prev now then now
      else clamp ()
    in
    clamp ()

let fixed_step ?(start_ns = 0L) ?(step_ns = 1000L) () =
  if Int64.compare step_ns 0L < 0 then invalid_arg "Clock.fixed_step: negative step";
  let state = Atomic.make start_ns in
  let rec tick () =
    let v = Atomic.get state in
    if Atomic.compare_and_set state v (Int64.add v step_ns) then v else tick ()
  in
  tick
