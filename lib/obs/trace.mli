(** Structured-tracing collector: per-domain ring buffers of
    {!Event.t}s fed by {!span}/{!instant}, flushed with {!events}.

    The hot path is lock-free: each domain records into its own ring,
    reached through domain-local storage; the collector mutex is taken
    only when a domain first touches the collector and at flush time.
    Full rings overwrite their oldest events ({!dropped} counts them).

    {!events} reads the rings without stopping writers; call it after the
    traced work has completed (quiescence is the caller's job). *)

type t

val create : ?clock:Clock.t -> ?capacity:int -> unit -> t
(** [capacity] is per-domain ring size in events (default 65536,
    minimum 16). [clock] defaults to {!Clock.monotonic}. *)

val set_observer : t -> (name:string -> dur_s:float -> unit) -> unit
(** Called at every span end with the span's name and duration — the
    metrics bridge ([Runtime.Metrics.span_observer]) hangs here. *)

val span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a Begin/End pair on the calling domain's track.
    The End event is recorded (and the observer fired) whether the thunk
    returns or raises. [args] land on the Begin event. *)

val instant : t -> ?args:(string * string) list -> string -> unit
(** Record a single marker event at the current stack depth. *)

val events : t -> Event.t list
(** Every retained event, sorted by (track, seq). *)

val dropped : t -> int
(** Events overwritten because a ring was full. *)

val tracks : t -> int
(** Number of domains that have recorded into this collector. *)

(** {2 The process-wide collector}

    [Span.with_]/[Span.instant] record into the installed collector, or
    do nothing (one atomic load) when none is installed. *)

val install : t -> unit

val uninstall : unit -> unit

val active : unit -> t option
