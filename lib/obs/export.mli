(** Trace renderers: Chrome trace-event JSON, a hierarchical self/total
    text profile, and a schema validator for the exported JSON. *)

val to_chrome_json : Event.t list -> string
(** Chrome trace-event format (object form, one event per line, sorted
    by (track, seq)), loadable by chrome://tracing and Perfetto.
    Byte-for-byte deterministic for a given event list. *)

val text_profile : Event.t list -> string
(** Spans merged by call path into a tree; per node: invocation count,
    total wall time, and self time (total minus children). Children print
    indented under their parents, sorted by total time. Unmatched events
    (e.g. after ring-buffer drops) are skipped. *)

val validate_chrome_json : string -> (int, string) result
(** Re-parse exported JSON (built-in minimal reader, no dependencies) and
    check the trace schema: a [traceEvents] array whose entries carry
    name/ph/ts/pid/tid, phases limited to B/E/i, per-tid Begin/End
    balance and monotone timestamps. Returns the event count. *)

val subsystems : Event.t list -> string list
(** Sorted distinct span-name prefixes (text before the first ['.']) of
    the Begin events — e.g. [["batch"; "espresso"; "sim"]]. *)
