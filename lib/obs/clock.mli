(** Injectable time sources for tracing.

    A clock returns nanoseconds as [int64]. Spans record one reading at
    entry and one at exit; the only contract is that readings taken by
    one domain never decrease. *)

type t = unit -> int64

val monotonic : t
(** Wall-clock derived, clamped through a process-wide high-water mark so
    it never goes backwards. Shared by all callers. *)

val fixed_step : ?start_ns:int64 -> ?step_ns:int64 -> unit -> t
(** Deterministic test double: successive calls return [start_ns],
    [start_ns + step_ns], ... (defaults 0 and 1000). Each call to
    [fixed_step] makes an independent sequence; traces taken against it
    are byte-for-byte reproducible. *)
