(* Trace renderers.

   [to_chrome_json] emits the Chrome trace-event format (the JSON object
   form with a "traceEvents" array), loadable by chrome://tracing and
   Perfetto. One event per line, events sorted by (track, seq), and
   timestamps printed as microseconds with fixed three-digit nanosecond
   fractions — so output under an injected deterministic clock is
   byte-for-byte reproducible.

   [text_profile] folds the same events into a hierarchical self/total
   profile: spans are merged by call path (name stack), children are
   printed under their parents sorted by total time, and self time is
   total minus the children's totals.

   [validate_chrome_json] re-parses exported JSON with a minimal built-in
   JSON reader and checks the trace schema: a traceEvents array whose
   entries carry name/ph/ts/pid/tid, phases limited to B/E/i, per-tid
   Begin/End balance, and per-tid monotone timestamps. *)

(* --- chrome trace-event JSON -------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  match args with
  | [] -> ""
  | _ ->
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args))

let event_json (e : Event.t) =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%Ld.%03Ld,\"pid\":0,\"tid\":%d%s%s}"
    (escape e.Event.name) (Event.phase_code e.Event.phase)
    (Int64.div e.Event.ts_ns 1000L) (Int64.rem e.Event.ts_ns 1000L) e.Event.track
    (match e.Event.phase with Event.Instant -> ",\"s\":\"t\"" | Event.Begin | Event.End -> "")
    (args_json e.Event.args)

let to_chrome_json events =
  let events = List.sort Event.by_track_seq events in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json e))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* --- hierarchical text profile ------------------------------------------ *)

type node = {
  mutable total_ns : int64;
  mutable count : int;
  children : (string, node) Hashtbl.t;
}

let new_node () = { total_ns = 0L; count = 0; children = Hashtbl.create 4 }

let child_of node name =
  match Hashtbl.find_opt node.children name with
  | Some c -> c
  | None ->
    let c = new_node () in
    Hashtbl.replace node.children name c;
    c

(* Merge spans into a call tree keyed by name path. Unmatched events
   (possible after ring-buffer drops) are skipped rather than rejected:
   the profile is a lossy summary, [Event.check] is the strict view. *)
let profile_tree events =
  let root = new_node () in
  let module M = Map.Make (Int) in
  let stacks = ref M.empty in
  List.iter
    (fun (e : Event.t) ->
      let stack = match M.find_opt e.Event.track !stacks with Some s -> s | None -> [] in
      match e.Event.phase with
      | Event.Instant -> ()
      | Event.Begin ->
        let parent = match stack with [] -> root | (_, _, node) :: _ -> node in
        let node = child_of parent e.Event.name in
        stacks := M.add e.Event.track ((e.Event.name, e.Event.ts_ns, node) :: stack) !stacks
      | Event.End -> (
        match stack with
        | (name, ts0, node) :: rest when name = e.Event.name ->
          node.count <- node.count + 1;
          node.total_ns <- Int64.add node.total_ns (Int64.sub e.Event.ts_ns ts0);
          stacks := M.add e.Event.track rest !stacks
        | _ -> ()))
    (List.sort Event.by_track_seq events);
  root

let ms ns = Int64.to_float ns /. 1e6

let text_profile events =
  let root = profile_tree events in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %8s %12s %12s\n" "span" "count" "total(ms)" "self(ms)");
  let rec render indent node =
    let kids =
      List.sort
        (fun (_, a) (_, b) -> compare b.total_ns a.total_ns)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) node.children [])
    in
    List.iter
      (fun (name, child) ->
        let child_total =
          Hashtbl.fold (fun _ c acc -> Int64.add acc c.total_ns) child.children 0L
        in
        let label = String.make (2 * indent) ' ' ^ name in
        Buffer.add_string buf
          (Printf.sprintf "%-44s %8d %12.3f %12.3f\n" label child.count (ms child.total_ns)
             (ms (Int64.sub child.total_ns child_total)));
        render (indent + 1) child)
      kids
  in
  render 0 root;
  Buffer.contents buf

(* --- schema validation --------------------------------------------------- *)

(* A deliberately small JSON reader: enough to re-parse what this module
   (or any spec-conforming writer) emits. Numbers become floats; no
   unicode decoding beyond pass-through of escaped code points. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some c' -> fail "expected %c at offset %d, found %c" c !pos c'
      | None -> fail "expected %c at offset %d, found end of input" c !pos
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_body () =
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            (* keep escaped code points as-is; the schema check only
               compares ASCII field names *)
            Buffer.add_string buf (String.sub s (!pos + 1) 4);
            pos := !pos + 4
          | Some c -> Buffer.add_char buf c
          | None -> fail "unterminated escape");
          advance ();
          go ()
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number at offset %d" start;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "malformed number at offset %d" start
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            expect '"';
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } at offset %d" !pos
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] at offset %d" !pos
          in
          elements []
        end
      | Some '"' ->
        advance ();
        Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let validate_chrome_json text =
  let module M = Map.Make (Int) in
  try
    let json = Json.parse text in
    let events =
      match Json.member "traceEvents" json with
      | Some (Json.Arr es) -> es
      | Some _ -> Json.fail "traceEvents is not an array"
      | None -> Json.fail "missing traceEvents"
    in
    let stacks = ref M.empty in
    List.iteri
      (fun i e ->
        let str k =
          match Json.member k e with
          | Some (Json.Str s) -> s
          | _ -> Json.fail "event %d: missing string field %S" i k
        in
        let num k =
          match Json.member k e with
          | Some (Json.Num f) -> f
          | _ -> Json.fail "event %d: missing numeric field %S" i k
        in
        let name = str "name" in
        let ph = str "ph" in
        let ts = num "ts" in
        let _pid = num "pid" in
        let tid = int_of_float (num "tid") in
        let stack, last_ts =
          match M.find_opt tid !stacks with Some s -> s | None -> ([], neg_infinity)
        in
        if ts < last_ts then
          Json.fail "event %d: tid %d timestamp went backwards (%g after %g)" i tid ts last_ts;
        let stack =
          match ph with
          | "i" -> stack
          | "B" -> name :: stack
          | "E" -> (
            match stack with
            | top :: rest when top = name -> rest
            | top :: _ -> Json.fail "event %d: end %S does not match open span %S" i name top
            | [] -> Json.fail "event %d: end %S with no open span" i name)
          | _ -> Json.fail "event %d: unknown phase %S" i ph
        in
        stacks := M.add tid (stack, ts) !stacks)
      events;
    M.iter
      (fun tid (stack, _) ->
        match stack with
        | [] -> ()
        | name :: _ -> Json.fail "tid %d: span %S never ended" tid name)
      !stacks;
    Ok (List.length events)
  with Json.Parse msg -> Error msg

(* --- span-name subsystems ------------------------------------------------ *)

let subsystems events =
  List.sort_uniq compare
    (List.filter_map
       (fun (e : Event.t) ->
         match (e.Event.phase, String.index_opt e.Event.name '.') with
         | Event.Begin, Some i -> Some (String.sub e.Event.name 0 i)
         | _ -> None)
       events)
