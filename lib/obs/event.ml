(* The trace event model.

   Every span produces a Begin/End pair on the track (domain-local ring
   buffer) it executed on; instants are single marker events. [seq] is
   the per-track emission index, so sorting by (track, seq) recovers the
   exact order each domain emitted events in — timestamps alone cannot,
   because a fixed-step test clock can hand equal or interleaved readings
   to different tracks. *)

type phase = Begin | End | Instant

type t = {
  name : string;
  phase : phase;
  ts_ns : int64;
  track : int;  (* collector-local domain index, 0 = first domain seen *)
  depth : int;  (* span-stack depth at emission *)
  seq : int;  (* per-track emission index *)
  args : (string * string) list;
}

let by_track_seq a b =
  match compare a.track b.track with 0 -> compare a.seq b.seq | c -> c

let phase_code = function Begin -> "B" | End -> "E" | Instant -> "i"

(* --- well-formedness ---------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Per track, in seq order: every Begin is answered by an End naming the
   same span, strictly stack-ordered; depths equal the stack height at
   emission; timestamps never decrease. *)
let check events =
  let events = List.sort by_track_seq events in
  let module M = Map.Make (Int) in
  try
    let tracks =
      List.fold_left
        (fun acc e ->
          let stack, last_ts =
            match M.find_opt e.track acc with
            | Some s -> s
            | None -> ([], Int64.min_int)
          in
          if Int64.compare e.ts_ns last_ts < 0 then
            bad "track %d: timestamp went backwards at %S (%Ld after %Ld)" e.track e.name
              e.ts_ns last_ts;
          let stack =
            match e.phase with
            | Instant -> stack
            | Begin ->
              if e.depth <> List.length stack then
                bad "track %d: begin %S at depth %d, stack height %d" e.track e.name e.depth
                  (List.length stack);
              e.name :: stack
            | End -> (
              match stack with
              | [] -> bad "track %d: end %S with no open span" e.track e.name
              | top :: rest ->
                if top <> e.name then
                  bad "track %d: end %S does not match open span %S" e.track e.name top;
                if e.depth <> List.length rest then
                  bad "track %d: end %S at depth %d, expected %d" e.track e.name e.depth
                    (List.length rest);
                rest)
          in
          M.add e.track (stack, e.ts_ns) acc)
        M.empty events
    in
    M.iter
      (fun track (stack, _) ->
        match stack with
        | [] -> ()
        | name :: _ -> bad "track %d: span %S never ended" track name)
      tracks;
    Ok ()
  with Bad msg -> Error msg
