(** Trace events: Begin/End span markers and instant markers, each tagged
    with a monotone timestamp, the track (domain) that emitted it, the
    span-stack depth, and a per-track sequence number. *)

type phase = Begin | End | Instant

type t = {
  name : string;
  phase : phase;
  ts_ns : int64;
  track : int;  (** collector-local domain index, 0 = first domain seen *)
  depth : int;  (** span-stack depth at emission *)
  seq : int;  (** per-track emission index *)
  args : (string * string) list;
}

val by_track_seq : t -> t -> int
(** Order by (track, seq): the canonical, deterministic export order. *)

val phase_code : phase -> string
(** Chrome trace-event phase letter: ["B"], ["E"], ["i"]. *)

val check : t list -> (unit, string) result
(** Well-formedness: per track (in [seq] order) every Begin has a
    matching End, strictly stack-ordered; recorded depths equal the stack
    height; timestamps never decrease; no span left open. The input list
    may be in any order. *)
