(* Instrumentation entry points: record into the installed process-wide
   collector, or cost one atomic load + branch when tracing is off. Hot
   call sites should guard argument construction with [enabled]. *)

let enabled () = Trace.active () <> None

let with_ ?args name f =
  match Trace.active () with None -> f () | Some t -> Trace.span t ?args name f

let instant ?args name =
  match Trace.active () with None -> () | Some t -> Trace.instant t ?args name
