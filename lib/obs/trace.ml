(* Structured-tracing collector.

   A collector owns one ring buffer per domain that records into it.
   Buffers are reached through domain-local storage, so the hot path
   (span begin/end) takes no lock and shares no cache line with other
   domains; the collector's mutex is only touched the first time a domain
   records into this collector (to register the new buffer) and at flush
   time. When a ring fills, the oldest events are overwritten and
   counted in [dropped] — tracing never blocks or grows without bound.

   A process-wide [current] collector can be installed; [Span.with_]
   checks it with one atomic load, so an uninstalled tracer costs a
   single branch per span site. *)

type buffer = {
  track : int;
  ring : Event.t array;
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable seq : int;  (* emission index, keeps counting past drops *)
  mutable depth : int;
  mutable dropped : int;
}

type t = {
  clock : Clock.t;
  capacity : int;
  lock : Mutex.t;
  mutable buffers : buffer list;  (* newest-registered first *)
  dls : buffer option ref Domain.DLS.key;
  mutable observer : (name:string -> dur_s:float -> unit) option;
}

let dummy =
  { Event.name = ""; phase = Event.Instant; ts_ns = 0L; track = 0; depth = 0; seq = 0; args = [] }

let create ?(clock = Clock.monotonic) ?(capacity = 65536) () =
  {
    clock;
    capacity = max 16 capacity;
    lock = Mutex.create ();
    buffers = [];
    dls = Domain.DLS.new_key (fun () -> ref None);
    observer = None;
  }

let set_observer t f = t.observer <- Some f

let buffer_of t =
  let cell = Domain.DLS.get t.dls in
  match !cell with
  | Some b -> b
  | None ->
    Mutex.lock t.lock;
    let b =
      {
        track = List.length t.buffers;
        ring = Array.make t.capacity dummy;
        start = 0;
        len = 0;
        seq = 0;
        depth = 0;
        dropped = 0;
      }
    in
    t.buffers <- b :: t.buffers;
    Mutex.unlock t.lock;
    cell := Some b;
    b

let push b e =
  let cap = Array.length b.ring in
  if b.len = cap then begin
    b.ring.(b.start) <- e;
    b.start <- (b.start + 1) mod cap;
    b.dropped <- b.dropped + 1
  end
  else begin
    b.ring.((b.start + b.len) mod cap) <- e;
    b.len <- b.len + 1
  end;
  b.seq <- b.seq + 1

let emit t b phase name args =
  let ts = t.clock () in
  push b { Event.name; phase; ts_ns = ts; track = b.track; depth = b.depth; seq = b.seq; args };
  ts

let span t ?(args = []) name f =
  let b = buffer_of t in
  let ts0 = emit t b Event.Begin name args in
  b.depth <- b.depth + 1;
  Fun.protect
    ~finally:(fun () ->
      b.depth <- b.depth - 1;
      let ts1 = emit t b Event.End name [] in
      match t.observer with
      | Some obs -> obs ~name ~dur_s:(Int64.to_float (Int64.sub ts1 ts0) *. 1e-9)
      | None -> ())
    f

let instant t ?(args = []) name =
  let b = buffer_of t in
  ignore (emit t b Event.Instant name args)

let snapshot t =
  Mutex.lock t.lock;
  let bufs = t.buffers in
  Mutex.unlock t.lock;
  bufs

let events t =
  let all =
    List.concat_map
      (fun b ->
        List.init b.len (fun i -> b.ring.((b.start + i) mod Array.length b.ring)))
      (snapshot t)
  in
  List.sort Event.by_track_seq all

let dropped t = List.fold_left (fun n b -> n + b.dropped) 0 (snapshot t)

let tracks t = List.length (snapshot t)

(* --- the process-wide collector ----------------------------------------- *)

let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)

let uninstall () = Atomic.set current None

let active () = Atomic.get current
