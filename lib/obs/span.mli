(** Instrumentation entry points against the installed process-wide
    collector ({!Trace.install}). With no collector installed every call
    is a single atomic load and branch. *)

val enabled : unit -> bool
(** True when a collector is installed. Guard argument construction at
    hot call sites: [if Span.enabled () then Span.instant ~args ...]. *)

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span; the thunk's result (or
    exception) passes through unchanged. *)

val instant : ?args:(string * string) list -> string -> unit
