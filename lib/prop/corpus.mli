(** Persistent counterexample corpus.

    A failing case is fully determined by (property name, case seed, size):
    replaying regenerates the failing value from the seed and re-shrinks it
    deterministically, so only those three fields are stored — one small
    s-expression per file, e.g.
    [((prop "cube/ops-vs-naive") (seed 123456) (size 22))].

    Files live under a corpus directory ({!default_dir} by default,
    [_fuzz/corpus/] relative to the working directory) and are replayed by
    [Runner.regress] / [cnfet_tool fuzz] {e before} fresh generation, so a
    once-found bug is re-checked first on every subsequent run. *)

type entry = { prop : string; seed : int; size : int }

val default_dir : string
(** [_fuzz/corpus]. *)

val to_sexp : entry -> Sexp.t

val of_sexp : Sexp.t -> (entry, string) result

val parse : string -> (entry, string) result

val filename : entry -> string
(** Stable name derived from the property and seed. *)

val save : dir:string -> entry -> string
(** Write (creating the directory as needed); returns the path. *)

val load : dir:string -> (string * (entry, string) result) list
(** Every [.sexp] file in the directory in sorted filename order, parsed;
    unparsable files are reported with their error. Missing directory =
    empty corpus. *)
