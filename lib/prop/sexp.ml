type t = Atom of string | List of t list

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\\' || c = '\n' || c = '\t')
       s

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec to_buffer b = function
  | Atom s -> Buffer.add_string b (if needs_quoting s then quote s else s)
  | List xs ->
    Buffer.add_char b '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ' ';
        to_buffer b x)
      xs;
    Buffer.add_char b ')'

let to_string t =
  let b = Buffer.create 64 in
  to_buffer b t;
  Buffer.contents b

exception Parse_fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let quoted_atom () =
    advance () (* opening quote *);
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_fail "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some c -> Buffer.add_char b c
        | None -> raise (Parse_fail "dangling escape"));
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents b)
  in
  let bare_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\n' | '\t' | '\r' | '(' | ')' | '"') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    if !pos = start then raise (Parse_fail "empty atom");
    Atom (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_fail "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec items_loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_fail "unterminated list")
        | Some _ ->
          items := value () :: !items;
          items_loop ()
      in
      items_loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_fail "unexpected ')'")
    | Some '"' -> quoted_atom ()
    | Some _ -> bare_atom ()
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error "trailing characters after s-expression" else Ok v
  with Parse_fail msg -> Error msg

(* Association-list helpers over the ((key value) ...) shape corpus entries use. *)

let field t key =
  match t with
  | List items ->
    List.find_map
      (function List [ Atom k; v ] when k = key -> Some v | _ -> None)
      items
  | Atom _ -> None

let field_string t key =
  match field t key with Some (Atom s) -> Some s | _ -> None

let field_int t key =
  match field t key with Some (Atom s) -> int_of_string_opt s | _ -> None
