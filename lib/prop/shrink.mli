(** Shrinkers: lazy sequences of simpler candidate values.

    A shrinker maps a failing value to candidates ordered from most to
    least aggressive; the runner greedily descends through the first
    candidate that still fails, so earlier (coarser) candidates make
    shrinking fast and later (finer) ones make it thorough. Shrinking is
    deterministic: no randomness is drawn while minimizing, which keeps
    corpus replay exact. *)

type 'a t = 'a -> 'a Seq.t

val nil : 'a t

val append : 'a t -> 'a t -> 'a t

val int : int t
(** Toward 0: first 0 itself, then halvings of the distance. *)

val int_toward : int -> int -> int Seq.t
(** [int_toward dest n] shrinks [n] toward [dest]. *)

val list : ?elt:'a t -> 'a list t
(** Structure first (empty list, halves, single removals), then — when
    [elt] is given — each element shrunk in place. *)

val array : ?elt:'a t -> 'a array t

val array_fixed : 'a t -> 'a array t
(** Element-wise only: the array length never changes (for fixed-arity
    values such as cube literal vectors). *)

val pair : 'a t -> 'b t -> ('a * 'b) t

val option : 'a t -> 'a option t
