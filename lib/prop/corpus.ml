type entry = { prop : string; seed : int; size : int }

let default_dir = Filename.concat "_fuzz" "corpus"

let to_sexp e =
  Sexp.List
    [
      Sexp.List [ Sexp.Atom "prop"; Sexp.Atom e.prop ];
      Sexp.List [ Sexp.Atom "seed"; Sexp.Atom (string_of_int e.seed) ];
      Sexp.List [ Sexp.Atom "size"; Sexp.Atom (string_of_int e.size) ];
    ]

let of_sexp s =
  match (Sexp.field_string s "prop", Sexp.field_int s "seed", Sexp.field_int s "size") with
  | Some prop, Some seed, Some size -> Ok { prop; seed; size }
  | _ -> Error "corpus entry needs (prop ...), (seed ...) and (size ...) fields"

let parse text =
  match Sexp.of_string text with Ok s -> of_sexp s | Error e -> Error e

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '-') name

let filename e = Printf.sprintf "%s-%d.sexp" (sanitize e.prop) e.seed

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~dir e =
  mkdir_p dir;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  output_string oc (Sexp.to_string (to_sexp e));
  output_char oc '\n';
  close_out oc;
  path

let load ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let files = Sys.readdir dir in
    Array.sort compare files;
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".sexp")
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           let ic = open_in path in
           let n = in_channel_length ic in
           let text = really_input_string ic n in
           close_in ic;
           match parse text with
           | Ok e -> Some (path, Ok e)
           | Error msg -> Some (path, Error msg))
  end
