(** Deterministic property runner with integrated shrinking.

    Case seeds come from a per-property SplitMix chain keyed on the master
    seed and the property's name (FNV-1a hash), so the sequence a property
    sees is independent of registration order and of [--filter] selection.
    A failing case is replayable from [(prop, case_seed, size)] alone — the
    triple {!Corpus} stores. *)

(** Details of one (shrunk) counterexample. *)
type failure_info = {
  case_seed : int;  (** seed that regenerates the original failing value *)
  size : int;  (** size the value was generated at *)
  case_index : int;  (** 0-based index within the property's run *)
  shrink_steps : int;  (** accepted shrink steps *)
  printed : string;  (** printed form of the shrunk counterexample *)
  error : string option;  (** exception text if the law raised *)
}

type outcome = { prop : string; cases : int; failure : failure_info option }

(** Typed result of {!run}: unlike {!outcome} it carries the actual shrunk
    value, for tests that assert on counterexample structure. *)
type 'a fail = {
  f_value : 'a;  (** fully shrunk counterexample *)
  f_original : 'a;  (** the value as first generated *)
  f_case_seed : int;
  f_size : int;
  f_case_index : int;
  f_shrink_steps : int;
  f_error : string option;
}

type 'a status = Passed of int | Failed of 'a fail

val run :
  ?count:int ->
  ?min_size:int ->
  ?max_size:int ->
  seed:int ->
  name:string ->
  'a Arb.t ->
  ('a -> bool) ->
  'a status
(** Low-level check: generate [count] cases with sizes ramping linearly from
    [min_size] to [max_size], stop and greedily shrink on the first failure.
    A law that raises counts as a failure (the exception text is kept). *)

val run_case : 'a Arb.t -> ('a -> bool) -> case_seed:int -> size:int -> case_index:int -> 'a fail option
(** Run exactly one case from an explicit seed (corpus replay). *)

(** {1 Registered properties} *)

type t

val make : name:string -> ?count:int -> ?min_size:int -> ?max_size:int -> 'a Arb.t -> ('a -> bool) -> t
(** Package an arbitrary and a law under a stable name. [count] defaults to
    40, sizes to 2–30. *)

val name : t -> string

val count : t -> int

val check : ?metrics:Runtime.Metrics.t -> seed:int -> t -> outcome
(** Fresh generation. Records [prop.cases_total], [prop.<name>.cases] and on
    failure [prop.failures_total] / [prop.shrink_steps_total] /
    [prop.<name>.shrink_steps] counters. *)

val replay : ?metrics:Runtime.Metrics.t -> case_seed:int -> size:int -> t -> outcome
(** Re-run a single recorded case (regenerates and re-shrinks). *)

(** {1 Corpus regression} *)

type replay_result =
  | Replayed of { path : string; entry : Corpus.entry; outcome : outcome }
  | Unreadable of { path : string; reason : string }
      (** unparsable file, or entry naming no registered property *)

val regress : ?metrics:Runtime.Metrics.t -> dir:string -> t list -> replay_result list
(** Replay every corpus entry under [dir] (sorted filename order) against
    the given properties. Missing directory = no results. *)
