(* The fuzzing front end: corpus replay first, then fresh generation under
   an optional wall-clock budget, saving every fresh counterexample back
   into the corpus.

   Determinism contract: with no [--budget], the set of cases run — and
   therefore the whole report — is a pure function of (seed, filter,
   corpus contents). The budget only gates which properties still get a
   {e fresh} run (checked between properties, never inside one), so a
   budgeted run is always a prefix of the unbudgeted run's property list.
   [--jobs] parallelizes across properties on [Runtime.Pool] domains; each
   property's case-seed chain is self-contained, so results are identical
   at any job count. *)

type config = {
  seed : int;
  budget_ms : int option;
  filter : string option;
  corpus_dir : string;
  jobs : int;
}

let default_config =
  { seed = 2008; budget_ms = None; filter = None; corpus_dir = Corpus.default_dir; jobs = 1 }

type report = {
  replayed : Runner.replay_result list;
  fresh : Runner.outcome list;
  skipped : string list;  (** properties not run because the budget ran out *)
  saved : string list;  (** corpus paths written for fresh failures *)
}

let select ?filter props =
  match filter with
  | None -> props
  | Some re ->
    let r = Str.regexp re in
    List.filter
      (fun p ->
        match Str.search_forward r (Runner.name p) 0 with
        | _ -> true
        | exception Not_found -> false)
      props

let replay_failed = function
  | Runner.Replayed { outcome = { failure = Some _; _ }; _ } -> true
  | Runner.Replayed _ -> false
  | Runner.Unreadable _ -> true

let outcome_failed (o : Runner.outcome) = o.failure <> None

let failures report =
  List.length (List.filter replay_failed report.replayed)
  + List.length (List.filter outcome_failed report.fresh)

let run ?metrics ?(props = Props.all) config =
  let props = select ?filter:config.filter props in
  let replayed = Runner.regress ?metrics ~dir:config.corpus_dir props in
  let t0 = Unix.gettimeofday () in
  let in_budget () =
    match config.budget_ms with
    | None -> true
    | Some ms -> (Unix.gettimeofday () -. t0) *. 1000.0 < float_of_int ms
  in
  let fresh, skipped =
    if config.jobs <= 1 then begin
      let fresh = ref [] and skipped = ref [] in
      List.iter
        (fun p ->
          if in_budget () then
            fresh := Runner.check ?metrics ~seed:config.seed p :: !fresh
          else skipped := Runner.name p :: !skipped)
        props;
      (List.rev !fresh, List.rev !skipped)
    end
    else begin
      (* The budget decides up front which properties run; the pool then
         evaluates them in parallel (results land in property order). *)
      let thunks =
        Array.of_list (List.map (fun p () -> Runner.check ?metrics ~seed:config.seed p) props)
      in
      let results = Runtime.Pool.with_pool ?metrics ~jobs:config.jobs (fun pool -> Runtime.Pool.run_all pool thunks) in
      (Array.to_list results, [])
    end
  in
  let saved =
    List.filter_map
      (fun (o : Runner.outcome) ->
        match o.failure with
        | None -> None
        | Some f ->
          Some
            (Corpus.save ~dir:config.corpus_dir
               { Corpus.prop = o.prop; seed = f.case_seed; size = f.size }))
      fresh
  in
  { replayed; fresh; skipped; saved }

(* --- rendering ---------------------------------------------------------- *)

let pp_failure buf prefix (f : Runner.failure_info) =
  Buffer.add_string buf
    (Printf.sprintf "%s  seed=%d size=%d case=%d shrink_steps=%d\n" prefix f.case_seed f.size
       f.case_index f.shrink_steps);
  (match f.error with
  | Some e -> Buffer.add_string buf (Printf.sprintf "%s  raised: %s\n" prefix e)
  | None -> ());
  String.split_on_char '\n' f.printed
  |> List.iter (fun line -> Buffer.add_string buf (Printf.sprintf "%s  | %s\n" prefix line))

let render report =
  let buf = Buffer.create 1024 in
  if report.replayed <> [] then begin
    Buffer.add_string buf (Printf.sprintf "corpus: %d entr%s\n" (List.length report.replayed)
        (if List.length report.replayed = 1 then "y" else "ies"));
    List.iter
      (function
        | Runner.Unreadable { path; reason } ->
          Buffer.add_string buf (Printf.sprintf "  UNREADABLE %s: %s\n" path reason)
        | Runner.Replayed { path; entry; outcome } -> (
          match outcome.failure with
          | None ->
            Buffer.add_string buf (Printf.sprintf "  pass %s (%s)\n" path entry.Corpus.prop)
          | Some f ->
            Buffer.add_string buf (Printf.sprintf "  FAIL %s (%s)\n" path entry.Corpus.prop);
            pp_failure buf "      " f))
      report.replayed
  end;
  List.iter
    (fun (o : Runner.outcome) ->
      match o.failure with
      | None -> Buffer.add_string buf (Printf.sprintf "pass %-36s %d cases\n" o.prop o.cases)
      | Some f ->
        Buffer.add_string buf (Printf.sprintf "FAIL %-36s after %d cases\n" o.prop o.cases);
        pp_failure buf "    " f)
    report.fresh;
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "skip %-36s (budget exhausted)\n" name))
    report.skipped;
  List.iter
    (fun path -> Buffer.add_string buf (Printf.sprintf "counterexample saved to %s\n" path))
    report.saved;
  let n = failures report in
  Buffer.add_string buf
    (if n = 0 then "all properties passed\n" else Printf.sprintf "%d FAILURE%s\n" n (if n = 1 then "" else "S"));
  Buffer.contents buf
