(** Size-driven deterministic generators.

    A generator is a function of an explicit {!Util.Rng.t} (the splittable
    SplitMix64 generator — no [Random] global state, so generation is
    reproducible from one integer seed and safe on [Runtime.Pool] domains)
    and a [size] parameter that the runner ramps from small to large over a
    property's cases. Values drawn from the same seed and size are
    identical across runs, machines and domain counts; combinators draw in
    a fixed left-to-right order to keep that contract. *)

type 'a t = Util.Rng.t -> size:int -> 'a

val run : 'a t -> Util.Rng.t -> size:int -> 'a

val return : 'a -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t

val sized : (int -> 'a t) -> 'a t
(** Access the current size. *)

val with_size : int -> 'a t -> 'a t
(** Override the size for a sub-generator. *)

val bool : bool t

val int_range : int -> int -> int t
(** Inclusive bounds. *)

val small_nat : int t
(** Uniform in [\[0, size\]]. *)

val float_range : float -> float -> float t

val oneofl : 'a list -> 'a t
(** Uniform element of a non-empty list. *)

val oneof : 'a t list -> 'a t

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must sum to a positive value. *)

val list_n : int -> 'a t -> 'a list t

val array_n : int -> 'a t -> 'a array t

val list : 'a t -> 'a list t
(** Length uniform in [\[0, size\]]. *)

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
