type 'a t = { gen : 'a Gen.t; shrink : 'a Shrink.t; print : 'a -> string }

let make ?(shrink = Shrink.nil) ?(print = fun _ -> "<opaque>") gen = { gen; shrink; print }

let gen t = t.gen

let shrink t = t.shrink

let print t = t.print

let map ?shrink ?print f t =
  {
    gen = Gen.map f t.gen;
    shrink = (match shrink with Some s -> s | None -> Shrink.nil);
    print = (match print with Some p -> p | None -> fun _ -> "<opaque>");
  }
