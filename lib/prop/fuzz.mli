(** Fuzzing front end: corpus replay, then fresh generation under an
    optional wall-clock budget, persisting new counterexamples.

    Without a budget the whole run is a pure function of (seed, filter,
    corpus contents) — two invocations with the same arguments produce the
    same report, at any [--jobs] count. The budget only gates which
    properties still get a fresh run and is checked {e between} properties,
    so partial runs are prefixes of full runs. *)

type config = {
  seed : int;  (** master seed; per-property chains derive from it *)
  budget_ms : int option;  (** wall-clock budget for fresh generation *)
  filter : string option;  (** regexp ({!Str} syntax) matched anywhere in
                               the property name *)
  corpus_dir : string;
  jobs : int;  (** > 1 = run properties on a {!Runtime.Pool} *)
}

val default_config : config
(** seed 2008, no budget, no filter, {!Corpus.default_dir}, 1 job. *)

type report = {
  replayed : Runner.replay_result list;
  fresh : Runner.outcome list;
  skipped : string list;  (** properties not run because the budget ran out *)
  saved : string list;  (** corpus paths written for fresh failures *)
}

val select : ?filter:string -> Runner.t list -> Runner.t list
(** Properties whose name matches the filter (all of them when [None]). *)

val run : ?metrics:Runtime.Metrics.t -> ?props:Runner.t list -> config -> report
(** Replay the corpus against the (filtered) properties, then run each
    fresh; every fresh failure is saved back into the corpus. [props]
    defaults to {!Props.all}. *)

val failures : report -> int
(** Failed replays (including unreadable corpus files) + failed fresh
    runs. *)

val render : report -> string
(** Human-readable multi-line summary. *)
