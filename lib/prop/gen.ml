type 'a t = Util.Rng.t -> size:int -> 'a

let run g rng ~size = g rng ~size

let return x _ ~size:_ = x

let map f g rng ~size = f (g rng ~size)

let map2 f ga gb rng ~size =
  let a = ga rng ~size in
  let b = gb rng ~size in
  f a b

let bind g f rng ~size =
  let x = g rng ~size in
  f x rng ~size

let ( let* ) g f = bind g f

let sized f rng ~size = f size rng ~size

let with_size n g rng ~size:_ = g rng ~size:n

let bool rng ~size:_ = Util.Rng.bool rng

let int_range lo hi rng ~size:_ =
  if hi < lo then invalid_arg "Gen.int_range";
  lo + Util.Rng.int rng (hi - lo + 1)

let small_nat rng ~size = Util.Rng.int rng (size + 1)

let float_range lo hi rng ~size:_ = lo +. Util.Rng.float rng (hi -. lo)

let oneofl xs rng ~size:_ =
  match xs with
  | [] -> invalid_arg "Gen.oneofl"
  | _ -> List.nth xs (Util.Rng.int rng (List.length xs))

let oneof gens rng ~size =
  match gens with
  | [] -> invalid_arg "Gen.oneof"
  | _ -> (List.nth gens (Util.Rng.int rng (List.length gens))) rng ~size

let frequency weighted rng ~size =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency";
  let k = Util.Rng.int rng total in
  let rec pick k = function
    | [] -> assert false
    | (w, g) :: rest -> if k < w then g rng ~size else pick (k - w) rest
  in
  pick k weighted

(* Generation order is part of the deterministic contract, so build
   sequences with explicit left-to-right loops rather than [List.init]. *)
let list_n n g rng ~size =
  let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (g rng ~size :: acc) in
  go n []

let array_n n g rng ~size =
  if n = 0 then [||]
  else begin
    let first = g rng ~size in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- g rng ~size
    done;
    a
  end

let list g rng ~size =
  let n = Util.Rng.int rng (size + 1) in
  list_n n g rng ~size

let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc rng ~size =
  let a = ga rng ~size in
  let b = gb rng ~size in
  let c = gc rng ~size in
  (a, b, c)
