type 'a t = 'a -> 'a Seq.t

let nil _ = Seq.empty

let append (sa : 'a t) (sb : 'a t) : 'a t = fun v -> Seq.append (sa v) (sb v)

let int_toward dest n =
  if n = dest then Seq.empty
  else
    (* dest first (the most aggressive shrink), then successive halvings of
       the remaining distance: dest + d/2, dest + 3d/4, ..., n - 1. *)
    let rec halvings diff () =
      (* diff = remaining distance from dest to the candidate *)
      if diff = 0 || abs diff >= abs (n - dest) then Seq.Nil
      else Seq.Cons (dest + diff, halvings (diff * 2))
    in
    let first_step = if n > dest then 1 else -1 in
    Seq.cons dest (halvings first_step)

let int n = int_toward 0 n

(* Candidate lists with chunks removed, coarsest first: the empty list,
   each half, then each single-element removal. *)
let list_spine l =
  let n = List.length l in
  if n = 0 then Seq.empty
  else begin
    let without i = List.filteri (fun j _ -> j <> i) l in
    let singles () = Seq.init n without in
    if n = 1 then singles ()
    else begin
      let half = n / 2 in
      let first_half = List.filteri (fun j _ -> j < half) l in
      let second_half = List.filteri (fun j _ -> j >= half) l in
      Seq.append (List.to_seq [ []; second_half; first_half ]) (singles ())
    end
  end

let list_elems shrink_elt l =
  (* Pointwise: for each position, each shrink of that element. *)
  let rec go i = function
    | [] -> Seq.empty
    | x :: rest ->
      let here =
        Seq.map
          (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l)
          (shrink_elt x)
      in
      fun () -> Seq.append here (go (i + 1) rest) ()
  in
  go 0 l

let list ?elt l =
  match elt with
  | None -> list_spine l
  | Some shrink_elt -> Seq.append (list_spine l) (list_elems shrink_elt l)

let array_elems shrink_elt a =
  let n = Array.length a in
  Seq.concat
    (Seq.init n (fun i ->
         Seq.map
           (fun x' ->
             let a' = Array.copy a in
             a'.(i) <- x';
             a')
           (shrink_elt a.(i))))

let array ?elt a =
  let spine = Seq.map Array.of_list (list_spine (Array.to_list a)) in
  match elt with
  | None -> spine
  | Some shrink_elt -> Seq.append spine (array_elems shrink_elt a)

let array_fixed shrink_elt a = array_elems shrink_elt a

let pair sa sb (a, b) =
  Seq.append (Seq.map (fun a' -> (a', b)) (sa a)) (Seq.map (fun b' -> (a, b')) (sb b))

let option s = function
  | None -> Seq.empty
  | Some x -> Seq.cons None (Seq.map (fun x' -> Some x') (s x))
