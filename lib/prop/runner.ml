(* Deterministic property runner.

   Every case is identified by an integer [case_seed]: the value is
   regenerated from [Util.Rng.create case_seed] at the recorded size, so a
   failing case is replayable from the three integers the corpus stores.
   Case seeds are drawn from a per-property SplitMix chain keyed on
   (master seed, property name) — independent of registration order and of
   any --filter selection, and requiring no shared state, so properties
   can run on [Runtime.Pool] domains unchanged. *)

type failure_info = {
  case_seed : int;
  size : int;
  case_index : int;
  shrink_steps : int;
  printed : string;
  error : string option;
}

type outcome = { prop : string; cases : int; failure : failure_info option }

type 'a fail = {
  f_value : 'a;
  f_original : 'a;
  f_case_seed : int;
  f_size : int;
  f_case_index : int;
  f_shrink_steps : int;
  f_error : string option;
}

type 'a status = Passed of int | Failed of 'a fail

type t = {
  name : string;
  count : int;
  check_fn : metrics:Runtime.Metrics.t option -> seed:int -> outcome;
  replay_fn : metrics:Runtime.Metrics.t option -> case_seed:int -> size:int -> outcome;
}

let name t = t.name

let count t = t.count

(* --- seed derivation --------------------------------------------------- *)

let fnv64 s =
  String.fold_left
    (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) 0x100000001B3L)
    0xCBF29CE484222325L s

let positive i64 = Int64.to_int (Int64.shift_right_logical i64 2)

let chain_for ~seed prop_name =
  Util.Rng.create (seed lxor positive (fnv64 prop_name))

let next_case_seed chain = positive (Util.Rng.bits64 chain)

(* --- case execution ---------------------------------------------------- *)

(* [None] = law holds; [Some err] = counterexample ([err] carries the
   exception text when the law raised instead of returning [false]). *)
let check_law law v =
  match law v with
  | true -> None
  | false -> Some None
  | exception e -> Some (Some (Printexc.to_string e))

let shrink_eval_budget = 4000

let minimize arb law v0 err0 =
  Obs.Span.with_ "prop.shrink" @@ fun () ->
  let budget = ref shrink_eval_budget in
  let steps = ref 0 in
  let err = ref err0 in
  let rec go v =
    let smaller =
      Seq.find_map
        (fun c ->
          if !budget <= 0 then None
          else begin
            decr budget;
            match check_law law c with Some e -> Some (c, e) | None -> None
          end)
        (Arb.shrink arb v)
    in
    match smaller with
    | Some (c, e) when !budget > 0 ->
      incr steps;
      err := e;
      go c
    | Some (c, e) ->
      incr steps;
      err := e;
      c
    | None -> v
  in
  let v = go v0 in
  (v, !steps, !err)

let run_case arb law ~case_seed ~size ~case_index =
  let rng = Util.Rng.create case_seed in
  let v = Gen.run (Arb.gen arb) rng ~size in
  match check_law law v with
  | None -> None
  | Some err0 ->
    let shrunk, steps, err = minimize arb law v err0 in
    Some
      {
        f_value = shrunk;
        f_original = v;
        f_case_seed = case_seed;
        f_size = size;
        f_case_index = case_index;
        f_shrink_steps = steps;
        f_error = err;
      }

let size_at ~min_size ~max_size ~count i =
  if count <= 1 then max_size
  else min_size + ((max_size - min_size) * i / (count - 1))

let run ?(count = 40) ?(min_size = 2) ?(max_size = 30) ~seed ~name arb law =
  let chain = chain_for ~seed name in
  let rec go i =
    if i >= count then Passed count
    else begin
      let case_seed = next_case_seed chain in
      let size = size_at ~min_size ~max_size ~count i in
      match run_case arb law ~case_seed ~size ~case_index:i with
      | None -> go (i + 1)
      | Some f -> Failed f
    end
  in
  go 0

(* --- metrics ----------------------------------------------------------- *)

let record_cases metrics name n =
  match metrics with
  | None -> ()
  | Some m ->
    Runtime.Metrics.incr_named ~by:n m "prop.cases_total";
    Runtime.Metrics.incr_named ~by:n m (Printf.sprintf "prop.%s.cases" name)

let record_failure metrics name steps =
  match metrics with
  | None -> ()
  | Some m ->
    Runtime.Metrics.incr_named m "prop.failures_total";
    Runtime.Metrics.incr_named ~by:steps m "prop.shrink_steps_total";
    Runtime.Metrics.incr_named ~by:steps m (Printf.sprintf "prop.%s.shrink_steps" name)

(* --- registered properties --------------------------------------------- *)

let failure_of_fail arb (f : _ fail) =
  {
    case_seed = f.f_case_seed;
    size = f.f_size;
    case_index = f.f_case_index;
    shrink_steps = f.f_shrink_steps;
    printed = Arb.print arb f.f_value;
    error = f.f_error;
  }

let make ~name:prop_name ?(count = 40) ?(min_size = 2) ?(max_size = 30) arb law =
  let check_fn ~metrics ~seed =
    Obs.Span.with_ ~args:[ ("property", prop_name) ] "prop.generate" @@ fun () ->
    match run ~count ~min_size ~max_size ~seed ~name:prop_name arb law with
    | Passed n ->
      record_cases metrics prop_name n;
      { prop = prop_name; cases = n; failure = None }
    | Failed f ->
      record_cases metrics prop_name (f.f_case_index + 1);
      record_failure metrics prop_name f.f_shrink_steps;
      { prop = prop_name; cases = f.f_case_index + 1; failure = Some (failure_of_fail arb f) }
  in
  let replay_fn ~metrics ~case_seed ~size =
    record_cases metrics prop_name 1;
    match run_case arb law ~case_seed ~size ~case_index:0 with
    | None -> { prop = prop_name; cases = 1; failure = None }
    | Some f ->
      record_failure metrics prop_name f.f_shrink_steps;
      { prop = prop_name; cases = 1; failure = Some (failure_of_fail arb f) }
  in
  { name = prop_name; count; check_fn; replay_fn }

let check ?metrics ~seed t = t.check_fn ~metrics ~seed

let replay ?metrics ~case_seed ~size t = t.replay_fn ~metrics ~case_seed ~size

(* --- corpus regression -------------------------------------------------- *)

type replay_result =
  | Replayed of { path : string; entry : Corpus.entry; outcome : outcome }
  | Unreadable of { path : string; reason : string }

let regress ?metrics ~dir props =
  List.map
    (fun (path, parsed) ->
      match parsed with
      | Error reason -> Unreadable { path; reason }
      | Ok (entry : Corpus.entry) -> (
        match List.find_opt (fun p -> p.name = entry.prop) props with
        | None ->
          Unreadable { path; reason = Printf.sprintf "no registered property %S" entry.prop }
        | Some p ->
          Replayed
            { path; entry; outcome = replay ?metrics ~case_seed:entry.seed ~size:entry.size p }))
    (Corpus.load ~dir)
