(** Generators, shrinkers and printers for the repo's core values.

    Every generator works on a {e spec}: a plain immutable description
    (literal codes, mode matrices, defect lists) that shrinks structurally
    and converts to the real value on demand. Specs keep shrinking honest —
    a shrunk spec is always well formed by construction — and make
    counterexamples printable without depending on the value's own
    invariants. *)

(** {1 Cubes} *)

type cube_spec = { lits : int array  (** raw 2-bit codes: 1 = Zero, 2 = One, 3 = Dc *); outs : int  (** output bitmask *) }

val boundary_widths : int list
(** Input arities straddling the 31-literal packed-word boundary (1–8, 29–35,
    61–65): one-word, exactly-full-word and multi-word cubes. *)

val small_widths : int list
(** 1–6 inputs, for properties with exhaustive truth-table oracles. *)

val cube_of_spec : n_in:int -> n_out:int -> cube_spec -> Logic.Cube.t

val cube_spec : ?dc_weight:int -> ?allow_empty_outs:bool -> n_in:int -> n_out:int -> unit -> cube_spec Gen.t

val shrink_cube_spec : ?allow_empty_outs:bool -> cube_spec Shrink.t
(** Literals toward [Dc], then selected outputs dropped one at a time. *)

(** A differential case for the packed-vs-naive kernel: two same-arity
    cubes plus a minterm. *)
type cube_case = {
  cc_n_in : int;
  cc_n_out : int;
  cc_a : cube_spec;
  cc_b : cube_spec;  (** biased toward sharing literals with [cc_a] *)
  cc_minterm : bool array;
}

val cube_case_to_cubes : cube_case -> Logic.Cube.t * Logic.Cube.t

val cube_case : ?widths:int list -> unit -> cube_case Gen.t

val arb_cube_case : ?widths:int list -> unit -> cube_case Arb.t

(** {1 Covers} *)

type cover_spec = { cv_n_in : int; cv_n_out : int; cv_cubes : cube_spec list }

val cover_of_spec : cover_spec -> Logic.Cover.t

val cover_spec :
  ?widths:int list -> ?max_out:int -> ?min_cubes:int -> ?max_cubes:int -> ?dc_weight:int -> unit -> cover_spec Gen.t

val shrink_cover_spec : ?min_cubes:int -> cover_spec Shrink.t

val print_cover_spec : cover_spec -> string

val arb_cover_spec :
  ?widths:int list -> ?max_out:int -> ?min_cubes:int -> ?max_cubes:int -> ?dc_weight:int -> unit -> cover_spec Arb.t

(** On-set plus don't-care set of one arity (espresso's input shape). *)
type cover_dc_spec = { fd_f : cover_spec; fd_dc : cover_spec }

val arb_cover_dc_spec : ?widths:int list -> ?max_out:int -> ?max_cubes:int -> unit -> cover_dc_spec Arb.t

(** {1 GNOR planes} *)

type plane_spec = { pl_modes : Cnfet.Gnor.input_mode array array }

val plane_rows : plane_spec -> int

val plane_cols : plane_spec -> int

val plane_of_spec : plane_spec -> Cnfet.Plane.t

val arb_plane_spec : ?max_rows:int -> ?max_cols:int -> unit -> plane_spec Arb.t

(** {1 NOR networks} *)

val arb_network : ?max_pi:int -> ?max_nodes:int -> unit -> Cnfet.Cascade.network Arb.t
(** Topologically ordered random NOR DAGs with per-fanin inversion flags;
    shrinking trims fanin lists (node count and references stay fixed). *)

(** {1 Defects and repair} *)

type defect_spec = { df_rows : int; df_cols : int; df_defects : (int * int * Fault.Defect.kind) list }

val defect_map_of_spec : defect_spec -> Fault.Defect.map

val defect_spec : rows:int -> cols:int -> rate:float -> defect_spec Gen.t

(** A repair scenario: function, spare rows, and per-plane defect maps
    sized for the PLA the function maps onto. *)
type repair_case = {
  rp_cover : cover_spec;
  rp_spares : int;
  rp_and : defect_spec;
  rp_or : defect_spec;
}

val arb_repair_case : ?rate:float -> unit -> repair_case Arb.t

(** {1 Crossbars} *)

type crossbar_spec = {
  xb_rows : int;
  xb_cols : int;
  xb_conns : (int * int) list;
  xb_driven : (int * bool) list;  (** distinct rows with drive values *)
}

val crossbar_of_spec : crossbar_spec -> Cnfet.Crossbar.t

val arb_crossbar_spec : ?max_rows:int -> ?max_cols:int -> unit -> crossbar_spec Arb.t

(** {1 FPGA designs} *)

type design_case = { dg_seed : int; dg_n_pi : int; dg_n_blocks : int }

val design_of_case : design_case -> Fpga.Design.t

val arb_design_case : unit -> design_case Arb.t

(** {1 Classifier models} *)

type classify_case = {
  cl_n_features : int;  (** 3–5, so every minterm can be swept *)
  cl_n_classes : int;
  cl_weights : int array array;
  cl_bias : int array;
  cl_seed : int;  (** fault-engine seed for the degraded-device side *)
  cl_rate : float;  (** crosspoint fault rate (0 / 0.02 / 0.1) *)
}

val model_of_case : classify_case -> Classify.Model.t

val classify_case : ?min_classes:int -> unit -> classify_case Gen.t
(** [min_classes] defaults to 2; the planted mis-mapping tests pass 3 so
    the label encoding is at least two bits wide. *)

val shrink_classify_case : classify_case Shrink.t

val print_classify_case : classify_case -> string

val arb_classify_case : ?min_classes:int -> unit -> classify_case Arb.t

(** {1 Helpers} *)

val all_minterms : int -> bool array list
(** Every assignment of [n] inputs, ascending; intended for [n ≤ 8]. *)
