(** Property-based testing for the CNFET stack: deterministic generators
    with integrated shrinking, differential oracles, a persistent
    counterexample corpus and a fuzzing front end. See DESIGN.md §7. *)

module Sexp = Sexp
module Gen = Gen
module Shrink = Shrink
module Arb = Arb
module Gens = Gens
module Corpus = Corpus
module Runner = Runner
module Props = Props
module Fuzz = Fuzz

let all_props = Props.all

let regress ?metrics ?(dir = Corpus.default_dir) ?(props = Props.all) () =
  Runner.regress ?metrics ~dir props
