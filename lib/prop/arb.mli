(** An arbitrary: a generator bundled with its shrinker and printer.

    The unit a property is declared over. The shrinker defaults to
    {!Shrink.nil} (no minimization) and the printer to an opaque
    placeholder, so quick properties can be stated from a bare
    generator. *)

type 'a t = { gen : 'a Gen.t; shrink : 'a Shrink.t; print : 'a -> string }

val make : ?shrink:'a Shrink.t -> ?print:('a -> string) -> 'a Gen.t -> 'a t

val gen : 'a t -> 'a Gen.t

val shrink : 'a t -> 'a Shrink.t

val print : 'a t -> 'a -> string

val map : ?shrink:'b Shrink.t -> ?print:('b -> string) -> ('a -> 'b) -> 'a t -> 'b t
(** Mapped arbitrary; note the shrinker does {e not} transport (supply a
    new one or lose shrinking). *)
