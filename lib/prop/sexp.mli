(** Minimal s-expressions for corpus persistence.

    Just enough of the classic syntax to round-trip counterexample records:
    bare and double-quoted atoms (with backslash escapes for newline, tab,
    quote and backslash) and
    parenthesized lists. No external dependency, so {!Corpus} files stay
    readable by any sexp tool and writable by hand. *)

type t = Atom of string | List of t list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses exactly one s-expression; trailing non-whitespace is an error. *)

val field : t -> string -> t option
(** [field t key] looks up [value] in a [((key value) ...)] association
    shape; [None] when absent or [t] is not a list. *)

val field_string : t -> string -> string option

val field_int : t -> string -> int option
