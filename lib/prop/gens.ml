module Cube = Logic.Cube
module Cover = Logic.Cover
module Bitvec = Util.Bitvec

(* ------------------------------------------------------------------ *)
(* Cubes and covers                                                    *)
(* ------------------------------------------------------------------ *)

type cube_spec = { lits : int array; outs : int }

let boundary_widths = [ 1; 2; 3; 5; 8; 29; 30; 31; 32; 33; 35; 61; 62; 63; 64; 65 ]

let small_widths = [ 1; 2; 3; 4; 5; 6 ]

let outs_bitvec n_out mask =
  let v = Bitvec.create n_out in
  for o = 0 to n_out - 1 do
    if mask land (1 lsl o) <> 0 then Bitvec.set v o true
  done;
  v

let cube_of_spec ~n_in ~n_out s =
  if Array.length s.lits <> n_in then invalid_arg "Gens.cube_of_spec";
  let c = ref (Cube.make ~n_in ~n_out) in
  Array.iteri (fun i l -> if l <> 3 then c := Cube.raw_set !c i l) s.lits;
  Cube.with_outputs !c (outs_bitvec n_out s.outs)

let raw_literal ~dc_weight =
  Gen.frequency [ (dc_weight, Gen.return 3); (1, Gen.return 1); (1, Gen.return 2) ]

let cube_spec ?(dc_weight = 2) ?(allow_empty_outs = false) ~n_in ~n_out () =
  let open Gen in
  let* lits = array_n n_in (raw_literal ~dc_weight) in
  let lo = if allow_empty_outs then 0 else 1 in
  let* outs = int_range lo ((1 lsl n_out) - 1) in
  return { lits; outs }

let shrink_raw_literal l = if l = 3 then Seq.empty else Seq.return 3

let shrink_outs ~allow_empty mask =
  (* Drop one selected output at a time. *)
  Seq.filter_map
    (fun o ->
      if mask land (1 lsl o) = 0 then None
      else begin
        let m' = mask land lnot (1 lsl o) in
        if m' = 0 && not allow_empty then None else Some m'
      end)
    (Seq.init (Sys.int_size - 2) Fun.id)

let shrink_cube_spec ?(allow_empty_outs = false) s =
  Seq.append
    (Seq.map (fun lits -> { s with lits }) (Shrink.array_fixed shrink_raw_literal s.lits))
    (Seq.map (fun outs -> { s with outs }) (shrink_outs ~allow_empty:allow_empty_outs s.outs))

(* A differential cube case: two cubes of one (possibly >31-literal) arity
   plus a minterm, everything an operation of the packed kernel needs. *)
type cube_case = { cc_n_in : int; cc_n_out : int; cc_a : cube_spec; cc_b : cube_spec; cc_minterm : bool array }

let cube_case_to_cubes c =
  ( cube_of_spec ~n_in:c.cc_n_in ~n_out:c.cc_n_out c.cc_a,
    cube_of_spec ~n_in:c.cc_n_in ~n_out:c.cc_n_out c.cc_b )

let cube_case ?(widths = boundary_widths) () =
  let open Gen in
  let* n_in = oneofl widths in
  let* n_out = int_range 1 3 in
  let* a = cube_spec ~allow_empty_outs:true ~n_in ~n_out () in
  (* Bias [b] toward overlapping [a]: containment/intersection paths are
     only exercised when the cubes are related. *)
  let* related = bool in
  let* b =
    if related then
      let* lits =
        array_n n_in
          (frequency [ (3, return 0) (* copy a's literal *); (1, raw_literal ~dc_weight:2) ])
      in
      let* outs = int_range 0 ((1 lsl n_out) - 1) in
      return { lits; outs }
    else cube_spec ~allow_empty_outs:true ~n_in ~n_out ()
  in
  let b = { b with lits = Array.mapi (fun i l -> if l = 0 then a.lits.(i) else l) b.lits } in
  let* minterm = array_n n_in bool in
  return { cc_n_in = n_in; cc_n_out = n_out; cc_a = a; cc_b = b; cc_minterm = minterm }

let shrink_cube_case c =
  Seq.append
    (Seq.map
       (fun a -> { c with cc_a = a })
       (shrink_cube_spec ~allow_empty_outs:true c.cc_a))
    (Seq.map
       (fun b -> { c with cc_b = b })
       (shrink_cube_spec ~allow_empty_outs:true c.cc_b))

let print_cube_case c =
  let a, b = cube_case_to_cubes c in
  Printf.sprintf "n_in=%d n_out=%d\na = %s\nb = %s\nminterm = %s" c.cc_n_in c.cc_n_out
    (Cube.to_string a) (Cube.to_string b)
    (String.concat "" (Array.to_list (Array.map (fun v -> if v then "1" else "0") c.cc_minterm)))

let arb_cube_case ?widths () =
  Arb.make ~shrink:shrink_cube_case ~print:print_cube_case (cube_case ?widths ())

(* Covers *)

type cover_spec = { cv_n_in : int; cv_n_out : int; cv_cubes : cube_spec list }

let cover_of_spec s =
  Cover.make ~n_in:s.cv_n_in ~n_out:s.cv_n_out
    (List.map (cube_of_spec ~n_in:s.cv_n_in ~n_out:s.cv_n_out) s.cv_cubes)

let cover_spec ?(widths = small_widths) ?(max_out = 3) ?(min_cubes = 0) ?(max_cubes = 10)
    ?(dc_weight = 2) () =
  let open Gen in
  let* n_in = oneofl widths in
  let* n_out = int_range 1 max_out in
  let* n_cubes = int_range min_cubes max_cubes in
  let* cubes = list_n n_cubes (cube_spec ~dc_weight ~n_in ~n_out ()) in
  return { cv_n_in = n_in; cv_n_out = n_out; cv_cubes = cubes }

let shrink_cover_spec ?(min_cubes = 0) s =
  Seq.filter_map
    (fun cubes ->
      if List.length cubes < min_cubes then None else Some { s with cv_cubes = cubes })
    (Shrink.list ~elt:shrink_cube_spec s.cv_cubes)

let print_cover_spec s =
  Printf.sprintf "n_in=%d n_out=%d\n%s" s.cv_n_in s.cv_n_out (Cover.to_string (cover_of_spec s))

let arb_cover_spec ?widths ?max_out ?min_cubes ?max_cubes ?dc_weight () =
  Arb.make
    ~shrink:(shrink_cover_spec ?min_cubes)
    ~print:print_cover_spec
    (cover_spec ?widths ?max_out ?min_cubes ?max_cubes ?dc_weight ())

(* On-set plus don't-care set of one arity, for the espresso properties. *)
type cover_dc_spec = { fd_f : cover_spec; fd_dc : cover_spec }

let cover_dc_spec ?(widths = small_widths) ?(max_out = 3) ?(max_cubes = 8) () =
  let open Gen in
  let* f = cover_spec ~widths ~max_out ~max_cubes () in
  let* dc_cubes = int_range 0 2 in
  let* cubes = list_n dc_cubes (cube_spec ~n_in:f.cv_n_in ~n_out:f.cv_n_out ()) in
  return { fd_f = f; fd_dc = { cv_n_in = f.cv_n_in; cv_n_out = f.cv_n_out; cv_cubes = cubes } }

let shrink_cover_dc_spec s =
  Seq.append
    (Seq.map (fun f -> { s with fd_f = f }) (shrink_cover_spec s.fd_f))
    (Seq.map (fun dc -> { s with fd_dc = dc }) (shrink_cover_spec s.fd_dc))

let print_cover_dc_spec s =
  Printf.sprintf "on-set:\n%s\ndc-set:\n%s" (print_cover_spec s.fd_f) (print_cover_spec s.fd_dc)

let arb_cover_dc_spec ?widths ?max_out ?max_cubes () =
  Arb.make ~shrink:shrink_cover_dc_spec ~print:print_cover_dc_spec
    (cover_dc_spec ?widths ?max_out ?max_cubes ())

(* ------------------------------------------------------------------ *)
(* GNOR planes                                                         *)
(* ------------------------------------------------------------------ *)

type plane_spec = { pl_modes : Cnfet.Gnor.input_mode array array }

let plane_rows s = Array.length s.pl_modes

let plane_cols s = if Array.length s.pl_modes = 0 then 0 else Array.length s.pl_modes.(0)

let plane_of_spec s =
  let rows = plane_rows s and cols = plane_cols s in
  let p = Cnfet.Plane.create ~rows ~cols in
  Array.iteri (fun r modes -> Cnfet.Plane.configure_row p r modes) s.pl_modes;
  p

let gen_mode =
  Gen.frequency
    [
      (2, Gen.return Cnfet.Gnor.Drop);
      (1, Gen.return Cnfet.Gnor.Pass);
      (1, Gen.return Cnfet.Gnor.Invert);
    ]

let plane_spec ?(max_rows = 5) ?(max_cols = 6) () =
  let open Gen in
  let* rows = int_range 1 max_rows in
  let* cols = int_range 1 max_cols in
  let* modes = array_n rows (array_n cols gen_mode) in
  return { pl_modes = modes }

let shrink_mode m = if m = Cnfet.Gnor.Drop then Seq.empty else Seq.return Cnfet.Gnor.Drop

let shrink_plane_spec s =
  Seq.map
    (fun modes -> { pl_modes = modes })
    (Shrink.array_fixed (Shrink.array_fixed shrink_mode) s.pl_modes)

let print_plane_spec s =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat ""
              (Array.to_list
                 (Array.map
                    (function Cnfet.Gnor.Pass -> "p" | Cnfet.Gnor.Invert -> "i" | Cnfet.Gnor.Drop -> ".")
                    row)))
          s.pl_modes))

let arb_plane_spec ?max_rows ?max_cols () =
  Arb.make ~shrink:shrink_plane_spec ~print:print_plane_spec (plane_spec ?max_rows ?max_cols ())

(* ------------------------------------------------------------------ *)
(* NOR networks (cascade input)                                        *)
(* ------------------------------------------------------------------ *)

let network ?(max_pi = 5) ?(max_nodes = 8) () =
  let open Gen in
  let* n_pi = int_range 1 max_pi in
  let* n_nodes = int_range 1 max_nodes in
  let gen_node k =
    let* n_fanin = int_range 1 3 in
    let gen_fanin =
      let* use_pi = if k = 0 then return true else bool in
      let* s =
        if use_pi then map (fun i -> Cnfet.Cascade.Pi i) (int_range 0 (n_pi - 1))
        else map (fun j -> Cnfet.Cascade.Node j) (int_range 0 (k - 1))
      in
      let* inv = bool in
      return (s, inv)
    in
    let* fanins = list_n n_fanin gen_fanin in
    (* Duplicate signals with conflicting flags are unmappable; keep the
       first occurrence of each signal. *)
    let fanins =
      List.rev
        (List.fold_left
           (fun acc (s, inv) ->
             if List.exists (fun (s', _) -> s = s') acc then acc else (s, inv) :: acc)
           [] fanins)
    in
    return fanins
  in
  let rec gen_nodes k acc rng ~size =
    if k = n_nodes then List.rev acc
    else gen_nodes (k + 1) (Gen.run (gen_node k) rng ~size :: acc) rng ~size
  in
  let* nodes = fun rng ~size -> Array.of_list (gen_nodes 0 [] rng ~size) in
  let* n_out = int_range 1 3 in
  let* outputs =
    array_n n_out (map (fun j -> Cnfet.Cascade.Node j) (int_range 0 (n_nodes - 1)))
  in
  return { Cnfet.Cascade.n_pi; nodes; outputs }

let shrink_network (net : Cnfet.Cascade.network) =
  (* Node count and references stay fixed; fanin lists shrink (the empty
     node is the constant 1, still well formed). *)
  Seq.map
    (fun nodes -> { net with Cnfet.Cascade.nodes })
    (Shrink.array_fixed (fun fanins -> Shrink.list fanins) net.Cnfet.Cascade.nodes)

let print_network (net : Cnfet.Cascade.network) =
  let signal = function
    | Cnfet.Cascade.Pi i -> Printf.sprintf "x%d" i
    | Cnfet.Cascade.Node j -> Printf.sprintf "n%d" j
  in
  let node k fanins =
    Printf.sprintf "n%d = NOR(%s)" k
      (String.concat ", "
         (List.map (fun (s, inv) -> (if inv then "!" else "") ^ signal s) fanins))
  in
  Printf.sprintf "n_pi=%d\n%s\noutputs: %s" net.Cnfet.Cascade.n_pi
    (String.concat "\n" (Array.to_list (Array.mapi node net.Cnfet.Cascade.nodes)))
    (String.concat ", " (Array.to_list (Array.map signal net.Cnfet.Cascade.outputs)))

let arb_network ?max_pi ?max_nodes () =
  Arb.make ~shrink:shrink_network ~print:print_network (network ?max_pi ?max_nodes ())

(* ------------------------------------------------------------------ *)
(* Defect maps and repair cases                                        *)
(* ------------------------------------------------------------------ *)

type defect_spec = { df_rows : int; df_cols : int; df_defects : (int * int * Fault.Defect.kind) list }

let defect_map_of_spec s =
  let m = Fault.Defect.perfect ~rows:s.df_rows ~cols:s.df_cols in
  List.iter (fun (r, c, k) -> Fault.Defect.set m ~row:r ~col:c k) s.df_defects;
  m

let defect_spec ~rows ~cols ~rate =
  let open Gen in
  let cell r c =
    let* defective = fun rng ~size:_ -> Util.Rng.bernoulli rng rate in
    if not defective then return None
    else
      let* closed = fun rng ~size:_ -> Util.Rng.bernoulli rng 0.25 in
      return (Some (r, c, if closed then Fault.Defect.Stuck_closed else Fault.Defect.Stuck_open))
  in
  let* cells =
    fun rng ~size ->
      let acc = ref [] in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          match Gen.run (cell r c) rng ~size with
          | Some d -> acc := d :: !acc
          | None -> ()
        done
      done;
      List.rev !acc
  in
  return { df_rows = rows; df_cols = cols; df_defects = cells }

let shrink_defect_spec s =
  Seq.map (fun ds -> { s with df_defects = ds }) (Shrink.list s.df_defects)

let print_defect_spec s =
  Printf.sprintf "%dx%d defects: %s" s.df_rows s.df_cols
    (String.concat "; "
       (List.map
          (fun (r, c, k) ->
            Printf.sprintf "(%d,%d %s)" r c
              (match k with
              | Fault.Defect.Stuck_open -> "open"
              | Fault.Defect.Stuck_closed -> "closed"
              | Fault.Defect.Good -> "good"))
          s.df_defects))

(* A full repair scenario: a function, spare rows, and defect maps for
   both planes of the PLA the function maps onto. *)
type repair_case = {
  rp_cover : cover_spec;
  rp_spares : int;
  rp_and : defect_spec;
  rp_or : defect_spec;
}

let repair_case ?(rate = 0.12) () =
  let open Gen in
  let* cover = cover_spec ~widths:[ 2; 3; 4 ] ~max_out:2 ~min_cubes:1 ~max_cubes:4 () in
  let* spares = int_range 0 2 in
  let products = List.length cover.cv_cubes in
  let rows = products + spares in
  let* and_d = defect_spec ~rows ~cols:cover.cv_n_in ~rate in
  let* or_d = defect_spec ~rows:cover.cv_n_out ~cols:rows ~rate in
  return { rp_cover = cover; rp_spares = spares; rp_and = and_d; rp_or = or_d }

let shrink_repair_case c =
  (* The cover fixes the plane dimensions, so only the defect lists shrink. *)
  Seq.append
    (Seq.map (fun d -> { c with rp_and = d }) (shrink_defect_spec c.rp_and))
    (Seq.map (fun d -> { c with rp_or = d }) (shrink_defect_spec c.rp_or))

let print_repair_case c =
  Printf.sprintf "%s\nspares=%d\nAND plane %s\nOR plane %s" (print_cover_spec c.rp_cover)
    c.rp_spares (print_defect_spec c.rp_and) (print_defect_spec c.rp_or)

let arb_repair_case ?rate () =
  Arb.make ~shrink:shrink_repair_case ~print:print_repair_case (repair_case ?rate ())

(* ------------------------------------------------------------------ *)
(* Crossbars                                                           *)
(* ------------------------------------------------------------------ *)

type crossbar_spec = {
  xb_rows : int;
  xb_cols : int;
  xb_conns : (int * int) list;
  xb_driven : (int * bool) list;
}

let crossbar_of_spec s =
  let x = Cnfet.Crossbar.create ~rows:s.xb_rows ~cols:s.xb_cols in
  List.iter (fun (r, c) -> Cnfet.Crossbar.connect x ~row:r ~col:c) s.xb_conns;
  x

let crossbar_spec ?(max_rows = 4) ?(max_cols = 4) () =
  let open Gen in
  let* rows = int_range 1 max_rows in
  let* cols = int_range 1 max_cols in
  let* conns =
    fun rng ~size:_ ->
      let acc = ref [] in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if Util.Rng.bernoulli rng 0.3 then acc := (r, c) :: !acc
        done
      done;
      List.rev !acc
  in
  let* driven =
    fun rng ~size:_ ->
      let acc = ref [] in
      for r = 0 to rows - 1 do
        if Util.Rng.bool rng then acc := (r, Util.Rng.bool rng) :: !acc
      done;
      List.rev !acc
  in
  return { xb_rows = rows; xb_cols = cols; xb_conns = conns; xb_driven = driven }

let shrink_crossbar_spec s =
  Seq.append
    (Seq.map (fun conns -> { s with xb_conns = conns }) (Shrink.list s.xb_conns))
    (Seq.map (fun driven -> { s with xb_driven = driven }) (Shrink.list s.xb_driven))

let print_crossbar_spec s =
  Printf.sprintf "%dx%d conns: %s; driven: %s" s.xb_rows s.xb_cols
    (String.concat " " (List.map (fun (r, c) -> Printf.sprintf "(%d,%d)" r c) s.xb_conns))
    (String.concat " "
       (List.map (fun (r, v) -> Printf.sprintf "r%d=%d" r (if v then 1 else 0)) s.xb_driven))

let arb_crossbar_spec ?max_rows ?max_cols () =
  Arb.make ~shrink:shrink_crossbar_spec ~print:print_crossbar_spec
    (crossbar_spec ?max_rows ?max_cols ())

(* ------------------------------------------------------------------ *)
(* FPGA designs                                                        *)
(* ------------------------------------------------------------------ *)

type design_case = { dg_seed : int; dg_n_pi : int; dg_n_blocks : int }

let design_of_case c =
  Fpga.Design.random (Util.Rng.create c.dg_seed) ~n_pi:c.dg_n_pi ~n_blocks:c.dg_n_blocks ()

let design_case () =
  let open Gen in
  let* seed = int_range 0 1_000_000 in
  let* n_pi = int_range 1 8 in
  let* n_blocks = int_range 1 40 in
  return { dg_seed = seed; dg_n_pi = n_pi; dg_n_blocks = n_blocks }

let shrink_design_case c =
  Seq.append
    (Seq.filter_map
       (fun n -> if n < 1 then None else Some { c with dg_n_blocks = n })
       (Shrink.int_toward 1 c.dg_n_blocks))
    (Seq.filter_map
       (fun n -> if n < 1 then None else Some { c with dg_n_pi = n })
       (Shrink.int_toward 1 c.dg_n_pi))

let print_design_case c =
  Printf.sprintf "Design.random seed=%d n_pi=%d n_blocks=%d" c.dg_seed c.dg_n_pi c.dg_n_blocks

let arb_design_case () =
  Arb.make ~shrink:shrink_design_case ~print:print_design_case (design_case ())

(* ------------------------------------------------------------------ *)
(* Classifier models                                                   *)
(* ------------------------------------------------------------------ *)

(* Small enough that every property can sweep all 2^n_features minterms
   against the reference evaluator. Weights stay within the signed
   4-bit window Model.make enforces. *)
type classify_case = {
  cl_n_features : int;
  cl_n_classes : int;
  cl_weights : int array array;
  cl_bias : int array;
  cl_seed : int;  (* fault-engine seed for the degraded-device side *)
  cl_rate : float;  (* crosspoint fault rate for the degraded-device side *)
}

let model_of_case c =
  Classify.Model.make ~n_features:c.cl_n_features ~n_classes:c.cl_n_classes ~weight_bits:4
    ~weights:c.cl_weights ~bias:c.cl_bias

let classify_case ?(min_classes = 2) () =
  let open Gen in
  let* nf = int_range 3 5 in
  let* nc = int_range min_classes 4 in
  let* weights = array_n nc (array_n nf (int_range (-7) 7)) in
  let* bias = array_n nc (int_range (-7) 7) in
  let* seed = int_range 0 9999 in
  let* rate = oneofl [ 0.0; 0.02; 0.1 ] in
  return
    {
      cl_n_features = nf;
      cl_n_classes = nc;
      cl_weights = weights;
      cl_bias = bias;
      cl_seed = seed;
      cl_rate = rate;
    }

let shrink_classify_case c =
  (* Dimensions pin the grid; weights and biases shrink toward 0. *)
  Seq.append
    (Seq.map
       (fun w -> { c with cl_weights = w })
       (Shrink.array_fixed (Shrink.array_fixed Shrink.int) c.cl_weights))
    (Seq.map (fun b -> { c with cl_bias = b }) (Shrink.array_fixed Shrink.int c.cl_bias))

let print_classify_case c =
  Printf.sprintf "%d features -> %d classes, seed %d, rate %g\nweights: %s\nbias: %s"
    c.cl_n_features c.cl_n_classes c.cl_seed c.cl_rate
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun row ->
               "[" ^ String.concat " " (Array.to_list (Array.map string_of_int row)) ^ "]")
             c.cl_weights)))
    ("[" ^ String.concat " " (Array.to_list (Array.map string_of_int c.cl_bias)) ^ "]")

let arb_classify_case ?min_classes () =
  Arb.make ~shrink:shrink_classify_case ~print:print_classify_case
    (classify_case ?min_classes ())

(* ------------------------------------------------------------------ *)
(* Helpers shared by the battery                                       *)
(* ------------------------------------------------------------------ *)

let all_minterms n_in =
  List.init (1 lsl n_in) (fun m -> Array.init n_in (fun i -> m land (1 lsl i) <> 0))
