(** The built-in property battery: differential checks of the packed cube
    kernel against the byte-per-literal reference, espresso against exact
    Quine–McCluskey, PLA/cascade structures against truth-table oracles,
    programming-protocol round-trips, repair revalidation through defect
    maps, crossbar resolve vs switch-level simulation, folding witnesses,
    FPGA inverter absorption, trace well-formedness over random span
    programs, bit-sliced blocked evaluation against scalar [Pla.eval],
    totality of the serve wire codec, and lossless total parsing of
    benchmark run artifacts. *)

val all : Runner.t list
(** Every property, in display order. Names are stable (corpus files refer
    to them): [cube/ops-vs-naive], [cube/algebra],
    [cover/scc-preserves-function], [cover/complement-partition],
    [espresso/minimize-verifies], [espresso/harder-never-worse],
    [espresso/qm-optimality], [pla/eval-matches-cover],
    [cascade/network-eval], [cascade/cover-embedding],
    [program/charge-roundtrip], [program_hw/transistor-roundtrip],
    [atpg/full-coverage], [repair/defect-map-revalidation],
    [crossbar/resolve-vs-hw], [folding/witness-valid],
    [fpga/inverter-absorption], [trace/wellformed],
    [runtime/bitslice-vs-scalar], [serve/codec-roundtrip],
    [assess/run-roundtrip]. *)
