(* The differential / invariant property battery.

   Each property pairs a generator from [Gens] with a law checked against
   an independent oracle: the byte-per-literal reference cube kernel, exact
   Quine–McCluskey minimization, exhaustive truth tables, or a second
   implementation of the same structure (functional vs switch-level).
   Everything runs from explicit seeds — no global state anywhere. *)

module Cube = Logic.Cube
module N = Logic.Cube_naive
module Cover = Logic.Cover

let opt_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

(* --- cubes ------------------------------------------------------------- *)

(* Every exported set operation of the packed kernel against the naive
   byte-per-literal reference, on cube pairs straddling the 31-field word
   boundary. *)
let cube_ops_vs_naive =
  Runner.make ~name:"cube/ops-vs-naive" ~count:250 (Gens.arb_cube_case ())
    (fun (c : Gens.cube_case) ->
      let a, b = Gens.cube_case_to_cubes c in
      let na = N.of_cube a and nb = N.of_cube b in
      let same_cube packed naive = N.equal (N.of_cube packed) naive in
      Cube.num_inputs a = N.num_inputs na
      && Cube.contains a b = N.contains na nb
      && Cube.contains b a = N.contains nb na
      && Cube.distance a b = N.distance na nb
      && Cube.intersects a b = (N.distance na nb = 0)
      && opt_equal same_cube (Cube.intersect a b) (N.intersect na nb)
      && same_cube (Cube.supercube2 a b) (N.supercube2 na nb)
      && opt_equal same_cube (Cube.cofactor a ~by:b) (N.cofactor na ~by:nb)
      && Cube.literal_count a = N.literal_count na
      && Cube.matches a c.cc_minterm = N.matches na c.cc_minterm
      && Cube.to_string a = N.to_string na
      && (let ok = ref true in
          for i = 0 to c.cc_n_in - 1 do
            if Cube.raw_get a i <> N.raw_get na i || Cube.get a i <> N.get na i then ok := false
          done;
          !ok))

(* Algebraic laws of the packed kernel alone. *)
let cube_algebra =
  Runner.make ~name:"cube/algebra" ~count:250 (Gens.arb_cube_case ())
    (fun (c : Gens.cube_case) ->
      let a, b = Gens.cube_case_to_cubes c in
      let univ = Cube.universe ~n_in:c.cc_n_in ~n_out:c.cc_n_out in
      Cube.contains a a
      && Cube.contains univ a
      && Cube.intersects a b = (Cube.distance a b = 0)
      && (match Cube.intersect a b with
         | None -> not (Cube.intersects a b)
         | Some i -> Cube.contains a i && Cube.contains b i)
      && (let s = Cube.supercube2 a b in
          Cube.contains s a && Cube.contains s b)
      && (match Cube.cofactor a ~by:univ with
         | Some r -> Cube.equal r a
         | None ->
           (* cofactor is None exactly when the cubes are disjoint, which
              against the universe only happens for an empty output part *)
           not (Cube.intersects a univ))
      && Cube.matches_packed a (Cube.pack_minterm c.cc_minterm) = Cube.matches a c.cc_minterm)

(* --- covers ------------------------------------------------------------ *)

let scc_widths = Gens.small_widths @ [ 29; 31; 32; 33 ]

let cover_scc =
  Runner.make ~name:"cover/scc-preserves-function" ~count:120
    (Gens.arb_cover_spec ~widths:scc_widths ())
    (fun spec ->
      let f = Gens.cover_of_spec spec in
      let s = Cover.single_cube_containment f in
      Cover.size s <= Cover.size f && Cover.equivalent s f)

let cover_complement =
  Runner.make ~name:"cover/complement-partition" ~count:80
    (Gens.arb_cover_spec ~widths:Gens.small_widths ())
    (fun spec ->
      let f = Gens.cover_of_spec spec in
      let c = Cover.complement f in
      Cover.tautology (Cover.union f c)
      && List.for_all
           (fun m ->
             let on = Cover.eval f m and off = Cover.eval c m in
             let ok = ref true in
             for o = 0 to spec.Gens.cv_n_out - 1 do
               if Util.Bitvec.get on o = Util.Bitvec.get off o then ok := false
             done;
             !ok)
           (Gens.all_minterms spec.Gens.cv_n_in))

(* --- espresso ---------------------------------------------------------- *)

let minimize_verifies =
  Runner.make ~name:"espresso/minimize-verifies" ~count:60
    (Gens.arb_cover_dc_spec ~widths:Gens.small_widths ())
    (fun (s : Gens.cover_dc_spec) ->
      let f = Gens.cover_of_spec s.fd_f and dc = Gens.cover_of_spec s.fd_dc in
      let r = Espresso.Minimize.minimize ~dc f in
      Espresso.Minimize.verify ~dc ~original:f r.Espresso.Minimize.cover
      && r.Espresso.Minimize.final_cost <= r.Espresso.Minimize.initial_cost)

let harder_never_worse =
  Runner.make ~name:"espresso/harder-never-worse" ~count:40
    (Gens.arb_cover_dc_spec ~widths:Gens.small_widths ())
    (fun (s : Gens.cover_dc_spec) ->
      let f = Gens.cover_of_spec s.fd_f and dc = Gens.cover_of_spec s.fd_dc in
      let base = Espresso.Minimize.minimize ~dc f in
      let harder = Espresso.Minimize.minimize_harder ~dc f in
      Espresso.Minimize.verify ~dc ~original:f harder.Espresso.Minimize.cover
      && harder.Espresso.Minimize.final_cost <= base.Espresso.Minimize.final_cost)

let qm_optimality =
  Runner.make ~name:"espresso/qm-optimality" ~count:50 ~max_size:20
    (Gens.arb_cover_spec ~widths:[ 2; 3; 4; 5 ] ~max_out:1 ())
    (fun spec ->
      let f = Gens.cover_of_spec spec in
      let exact = Espresso.Qm.minimize f in
      let optimum = Espresso.Qm.minimum_size f in
      let heuristic = (Espresso.Minimize.minimize f).Espresso.Minimize.cover in
      Cover.equivalent exact f
      && Cover.size exact = optimum
      && Cover.size heuristic >= optimum
      && Cover.equivalent heuristic f)

(* --- PLA and cascades --------------------------------------------------- *)

let pla_eval =
  Runner.make ~name:"pla/eval-matches-cover" ~count:80
    (Gens.arb_cover_spec ~widths:Gens.small_widths ())
    (fun spec ->
      let f = Gens.cover_of_spec spec in
      Cnfet.Pla.verify_against (Cnfet.Pla.of_cover f) f)

let cascade_network_eval =
  Runner.make ~name:"cascade/network-eval" ~count:60 (Gens.arb_network ())
    (fun net ->
      let c = Cnfet.Cascade.of_network net in
      Cnfet.Cascade.verify_against_network c net)

let cascade_cover_embedding =
  Runner.make ~name:"cascade/cover-embedding" ~count:60
    (Gens.arb_cover_spec ~widths:Gens.small_widths ())
    (fun spec ->
      let f = Gens.cover_of_spec spec in
      let net = Cnfet.Cascade.network_of_cover f in
      List.for_all
        (fun m ->
          let got = Cnfet.Cascade.eval_network net m in
          let want = Cover.eval f m in
          let ok = ref true in
          for o = 0 to spec.Gens.cv_n_out - 1 do
            if got.(o) <> Util.Bitvec.get want o then ok := false
          done;
          !ok)
        (Gens.all_minterms spec.Gens.cv_n_in))

(* --- programming protocol ----------------------------------------------- *)

let program_roundtrip =
  Runner.make ~name:"program/charge-roundtrip" ~count:60 (Gens.arb_plane_spec ())
    (fun spec ->
      let plane = Gens.plane_of_spec spec in
      let rows = Gens.plane_rows spec and cols = Gens.plane_cols spec in
      let p = Cnfet.Program.create ~rows ~cols () in
      Cnfet.Program.program_plane p plane;
      Cnfet.Program.verify p plane && Cnfet.Program.steps p = rows * cols)

(* Transient-solver writes: a handful of tiny arrays is all the runtime
   budget allows, and all the coverage the protocol needs on top of the
   charge-level property above. *)
let program_hw_roundtrip =
  Runner.make ~name:"program_hw/transistor-roundtrip" ~count:4 ~max_size:6
    (Gens.arb_plane_spec ~max_rows:2 ~max_cols:3 ())
    (fun spec ->
      let plane = Gens.plane_of_spec spec in
      let p = Cnfet.Program_hw.build ~rows:(Gens.plane_rows spec) ~cols:(Gens.plane_cols spec) () in
      Cnfet.Program_hw.program_plane p plane;
      Cnfet.Program_hw.verify p plane)

(* --- fault tolerance ----------------------------------------------------- *)

let atpg_widths = [ 2; 3; 4 ]

let atpg_full_coverage =
  Runner.make ~name:"atpg/full-coverage" ~count:40
    (Gens.arb_cover_spec ~widths:atpg_widths ~max_out:2 ~max_cubes:4 ())
    (fun spec ->
      let pla = Cnfet.Pla.of_cover (Gens.cover_of_spec spec) in
      let tests, _undetectable = Fault.Atpg.generate pla in
      Fault.Atpg.coverage pla tests = 1.0)

(* What the physically defective array computes once the repair assignment
   is programmed: push every minterm through [Defect.eval_with_defects] on
   both planes and demand the original function. *)
let defective_eval pla ~and_defects ~or_defects inputs =
  let products = Fault.Defect.eval_with_defects and_defects (Cnfet.Pla.and_plane pla) inputs in
  let rows = Fault.Defect.eval_with_defects or_defects (Cnfet.Pla.or_plane pla) products in
  Array.init (Cnfet.Pla.num_outputs pla) (fun o ->
      if Cnfet.Pla.output_inverted pla o then not rows.(o) else rows.(o))

let repair_revalidation =
  Runner.make ~name:"repair/defect-map-revalidation" ~count:60 (Gens.arb_repair_case ())
    (fun (rc : Gens.repair_case) ->
      let f = Gens.cover_of_spec rc.rp_cover in
      let pla = Cnfet.Pla.of_cover f in
      let and_defects = Gens.defect_map_of_spec rc.rp_and in
      let or_defects = Gens.defect_map_of_spec rc.rp_or in
      match Fault.Repair.repair ~spare_rows:rc.rp_spares ~and_defects ~or_defects pla with
      | Fault.Repair.Unrepairable ->
        (* Matching is complete, so "unrepairable" must mean the identity
           placement fails too. *)
        not (Fault.Repair.identity_works ~and_defects ~or_defects pla)
      | Fault.Repair.Repaired assignment ->
        let rows = Cnfet.Pla.num_products pla + rc.rp_spares in
        let repaired = Fault.Repair.apply pla assignment ~rows in
        List.for_all
          (fun m ->
            let got = defective_eval repaired ~and_defects ~or_defects m in
            let want = Cover.eval f m in
            let ok = ref true in
            for o = 0 to rc.rp_cover.Gens.cv_n_out - 1 do
              if got.(o) <> Util.Bitvec.get want o then ok := false
            done;
            !ok)
          (Gens.all_minterms rc.rp_cover.Gens.cv_n_in))

(* The chaos engine's healing contract, shrunk to a property: a defect
   map that ATPG vectors can see must, after repair within the spare
   budget and re-verification {e through the defects}, evaluate
   bit-identically to the fault-free reference on every minterm. A
   failing case shrinks to a minimal unhealable witness. *)
let chaos_heal_convergence =
  Runner.make ~name:"chaos/detect-repair-reverify" ~count:40 (Gens.arb_repair_case ())
    (fun (rc : Gens.repair_case) ->
      let f = Gens.cover_of_spec rc.rp_cover in
      let pla = Cnfet.Pla.of_cover f in
      let and_defects = Gens.defect_map_of_spec rc.rp_and in
      let or_defects = Gens.defect_map_of_spec rc.rp_or in
      let products = Cnfet.Pla.num_products pla in
      let truncate m ~rows ~cols =
        let t = Fault.Defect.perfect ~rows ~cols in
        for r = 0 to rows - 1 do
          for c = 0 to cols - 1 do
            Fault.Defect.set t ~row:r ~col:c (Fault.Defect.kind m ~row:r ~col:c)
          done
        done;
        t
      in
      let and_id = truncate and_defects ~rows:products ~cols:(Fault.Defect.cols and_defects) in
      let or_id = truncate or_defects ~rows:(Fault.Defect.rows or_defects) ~cols:products in
      let tests, _ = Fault.Atpg.generate pla in
      let detected =
        List.exists
          (fun v -> defective_eval pla ~and_defects:and_id ~or_defects:or_id v <> Cnfet.Pla.eval pla v)
          tests
      in
      if not detected then true (* masked on the array as programmed: nothing to heal *)
      else
        match Fault.Repair.repair ~spare_rows:rc.rp_spares ~and_defects ~or_defects pla with
        | Fault.Repair.Unrepairable ->
          (* The claim must be sound: not even the identity placement may
             survive when repair declares the spare budget insufficient. *)
          not (Fault.Repair.identity_works ~and_defects ~or_defects pla)
        | Fault.Repair.Repaired assignment ->
          let rows = products + rc.rp_spares in
          let repaired = Fault.Repair.apply pla assignment ~rows in
          List.for_all
            (fun m ->
              let got = defective_eval repaired ~and_defects ~or_defects m in
              let want = Cover.eval f m in
              let ok = ref true in
              for o = 0 to rc.rp_cover.Gens.cv_n_out - 1 do
                if got.(o) <> Util.Bitvec.get want o then ok := false
              done;
              !ok)
            (Gens.all_minterms rc.rp_cover.Gens.cv_n_in))

(* --- crossbar ----------------------------------------------------------- *)

let crossbar_resolve_vs_hw =
  Runner.make ~name:"crossbar/resolve-vs-hw" ~count:8 ~max_size:8
    (Gens.arb_crossbar_spec ~max_rows:3 ~max_cols:3 ())
    (fun (spec : Gens.crossbar_spec) ->
      let xb = Gens.crossbar_of_spec spec in
      let hw = Cnfet.Crossbar.build_hw xb in
      let row_vals, col_vals = Cnfet.Crossbar.simulate_hw hw ~driven:spec.xb_driven in
      let driven = List.map (fun (r, b) -> (Cnfet.Crossbar.Row r, b)) spec.xb_driven in
      let agrees wire observed =
        match Cnfet.Crossbar.resolve xb ~driven wire with
        | Cnfet.Crossbar.Driven b -> observed = Some b
        | Cnfet.Crossbar.Floating -> observed = None
        | Cnfet.Crossbar.Conflict ->
          (* The switch-level sim clamps driven nets as inputs and has no X
             state, so a conflicted component reads back whichever driver
             wins; only the functional model can name the conflict. *)
          true
      in
      let ok = ref true in
      for r = 0 to spec.xb_rows - 1 do
        if not (agrees (Cnfet.Crossbar.Row r) row_vals.(r)) then ok := false
      done;
      for c = 0 to spec.xb_cols - 1 do
        if not (agrees (Cnfet.Crossbar.Col c) col_vals.(c)) then ok := false
      done;
      !ok)

(* --- folding and FPGA --------------------------------------------------- *)

let folding_witness =
  Runner.make ~name:"folding/witness-valid" ~count:80 (Gens.arb_plane_spec ())
    (fun spec ->
      let plane = Gens.plane_of_spec spec in
      let r = Cnfet.Folding.fold_plane plane in
      Cnfet.Folding.validate plane r
      && r.Cnfet.Folding.physical_columns
         = Gens.plane_cols spec - List.length r.Cnfet.Folding.folds)

let fpga_inverter_absorption =
  Runner.make ~name:"fpga/inverter-absorption" ~count:50 (Gens.arb_design_case ())
    (fun case ->
      let d = Gens.design_of_case case in
      let d' = Fpga.Design.absorb_inverters d in
      Fpga.Design.validate d';
      Fpga.Design.inverter_count d' = 0
      && Fpga.Design.block_count d' = Fpga.Design.block_count d - Fpga.Design.inverter_count d)

(* --- tracing ------------------------------------------------------------ *)

(* Random span programs — nested spans, instants, and spans whose body
   raises — executed against a private collector with a deterministic
   clock. Whatever the control flow, the recorded event list must pass
   [Event.check] and the Chrome-JSON export must re-validate with the
   same event count. Raising bodies exercise the [Fun.protect] end-event
   path; the name pool includes JSON-hostile characters to exercise
   escaping. *)
type span_op =
  | Mark of string
  | Span of { sp_name : string; sp_raises : bool; sp_body : span_op list }

let trace_names = [ "alpha"; "beta.gamma"; "qu\"ote"; "back\\slash"; "tab\there" ]

let gen_span_op =
  let open Gen in
  let name = oneofl trace_names in
  let rec op depth =
    if depth = 0 then map (fun n -> Mark n) name
    else
      frequency
        [
          (1, map (fun n -> Mark n) name);
          ( 2,
            let* sp_name = name in
            let* sp_raises = bool in
            let* sp_body = with_size 3 (list (op (depth - 1))) in
            return (Span { sp_name; sp_raises; sp_body }) );
        ]
  in
  list (op 3)

let rec shrink_span_op op =
  match op with
  | Mark _ -> Seq.empty
  | Span ({ sp_raises; sp_body; _ } as sp) ->
    List.to_seq sp_body
    |> Seq.append
         (if sp_raises then Seq.return (Span { sp with sp_raises = false })
          else Seq.empty)
    |> Seq.append
         (Seq.map
            (fun body -> Span { sp with sp_body = body })
            (Shrink.list ~elt:shrink_span_op sp_body))

let rec print_span_op op =
  match op with
  | Mark n -> Printf.sprintf "Mark %S" n
  | Span { sp_name; sp_raises; sp_body } ->
    Printf.sprintf "Span(%S,%b,[%s])" sp_name sp_raises
      (String.concat "; " (List.map print_span_op sp_body))

exception Trace_prop_abort

let rec exec_span_op t op =
  match op with
  | Mark n -> Obs.Trace.instant t ~args:[ ("k", "v") ] n
  | Span { sp_name; sp_raises; sp_body } -> (
    try
      Obs.Trace.span t sp_name (fun () ->
          List.iter (exec_span_op t) sp_body;
          if sp_raises then raise Trace_prop_abort)
    with Trace_prop_abort -> ())

let trace_wellformed =
  Runner.make ~name:"trace/wellformed" ~count:120
    (Arb.make
       ~shrink:(Shrink.list ~elt:shrink_span_op)
       ~print:(fun ops -> "[" ^ String.concat "; " (List.map print_span_op ops) ^ "]")
       gen_span_op)
    (fun ops ->
      let t = Obs.Trace.create ~clock:(Obs.Clock.fixed_step ()) () in
      List.iter (exec_span_op t) ops;
      let events = Obs.Trace.events t in
      (match Obs.Event.check events with Ok () -> true | Error _ -> false)
      &&
      match Obs.Export.validate_chrome_json (Obs.Export.to_chrome_json events) with
      | Ok n -> n = List.length events
      | Error _ -> false)

(* --- bit-sliced runtime eval -------------------------------------------- *)

(* Covers straddling the 62/63-column Masked/Indexed boundary, and batch
   sizes straddling the 63-lane block size: the blocked evaluator (full
   blocks through [eval_block], ragged tail through scalar [eval], the
   same split [Batch.eval_batch] uses) must be bit-identical to
   [Pla.eval] on every vector. A partial block evaluated directly
   (lanes < 63) is checked too. *)
let bitslice_widths = [ 2; 5; 9; 30; 61; 62; 63; 64; 80 ]

let runtime_bitslice_vs_scalar =
  let gen =
    let open Gen in
    let* spec = Gens.cover_spec ~widths:bitslice_widths () in
    let* vecs = array_n 127 (array_n spec.Gens.cv_n_in bool) in
    return (spec, vecs)
  in
  Runner.make ~name:"runtime/bitslice-vs-scalar" ~count:60
    (Arb.make ~print:(fun (spec, _) -> Gens.print_cover_spec spec) gen)
    (fun (spec, vecs) ->
      let f = Gens.cover_of_spec spec in
      let pla = Cnfet.Pla.of_cover f in
      let compiled = Runtime.Cache.compile (Runtime.Cache.create ~capacity:2 ()) f in
      let scalar = Array.map (Cnfet.Pla.eval pla) vecs in
      let lanes_max = Runtime.Cache.lanes_per_word in
      let blocked_matches n =
        let n_blocks = n / lanes_max in
        let ok = ref true in
        for b = 0 to n_blocks - 1 do
          let block = Runtime.Cache.transpose vecs ~first:(b * lanes_max) ~lanes:lanes_max in
          let outs =
            Runtime.Cache.untranspose (Runtime.Cache.eval_block compiled block)
              ~lanes:lanes_max
          in
          for v = 0 to lanes_max - 1 do
            if outs.(v) <> scalar.((b * lanes_max) + v) then ok := false
          done
        done;
        for i = n_blocks * lanes_max to n - 1 do
          if Runtime.Cache.eval compiled vecs.(i) <> scalar.(i) then ok := false
        done;
        !ok
      in
      let partial_block_matches lanes =
        let block = Runtime.Cache.transpose vecs ~first:0 ~lanes in
        let outs =
          Runtime.Cache.untranspose (Runtime.Cache.eval_block compiled block) ~lanes
        in
        let ok = ref true in
        for v = 0 to lanes - 1 do
          if outs.(v) <> scalar.(v) then ok := false
        done;
        !ok
      in
      List.for_all blocked_matches [ 1; 62; 63; 64; 126; 127 ]
      && List.for_all partial_block_matches [ 1; 17; 62 ])

(* --- serve wire codec --------------------------------------------------- *)

(* A frame case is either a well-formed message or a mangling of one:
   truncated at a byte boundary, one byte xor-flipped, decoded under a
   tiny limit, or outright garbage bytes. *)
type codec_case =
  | Cc_clean of Serve.Wire.message
  | Cc_truncate of Serve.Wire.message * int  (* keep this fraction seed *)
  | Cc_flip of Serve.Wire.message * int * int  (* position seed, xor byte *)
  | Cc_oversize of Serve.Wire.message
  | Cc_garbage of string

let gen_wire_message : Serve.Wire.message Gen.t =
  let open Gen in
  let short_string = let* n = int_range 0 12 in map (String.concat "") (list_n n (oneofl [ "a"; "B"; "~"; "\000"; "\xff"; "." ])) in
  let matrix =
    let* rows = int_range 0 5 in
    let* width = int_range 0 19 in
    map Serve.Wire.matrix_of_vectors (array_n rows (array_n width bool))
  in
  frequency
    [
      (4, let* tenant = short_string in
          let* program = short_string in
          let* batch = matrix in
          return (Serve.Wire.Eval_request { tenant; program; batch }));
      (1, return Serve.Wire.Ping);
      (2, let* tenant = short_string in
          let* model = short_string in
          let* batch = matrix in
          return (Serve.Wire.Classify_request { tenant; model; batch }));
      (3, let* first = int_range 0 100000 in
          let* outputs = matrix in
          return (Serve.Wire.Result_chunk { first; outputs }));
      (2, let* total = int_range 0 100000 in
          let* cache_hit = bool in
          let* ns = int_range 0 0x3FFF_FFFF_FFFF in
          return (Serve.Wire.Eval_done { total; cache_hit; eval_ns = Int64.of_int ns }));
      (1, let* queued = int_range 0 0xffff in
          let* inflight = int_range 0 0xffff in
          return (Serve.Wire.Overloaded { queued; inflight }));
      (2, let* code = oneofl Serve.Wire.[ Parse_failed; Arity_mismatch; Batch_too_large; Internal ] in
          let* message = short_string in
          return (Serve.Wire.Error_response { code; message }));
      (1, return Serve.Wire.Pong);
    ]

let gen_codec_case : codec_case Gen.t =
  let open Gen in
  frequency
    [
      (4, map (fun m -> Cc_clean m) gen_wire_message);
      (2, map2 (fun m k -> Cc_truncate (m, k)) gen_wire_message (int_range 0 1_000_000));
      (2, let* m = gen_wire_message in
          let* p = int_range 0 1_000_000 in
          let* x = int_range 1 255 in
          return (Cc_flip (m, p, x)));
      (1, map (fun m -> Cc_oversize m) gen_wire_message);
      (2, let* n = int_range 0 40 in
          map (fun l -> Cc_garbage (String.init (List.length l) (List.nth l))) (list_n n (map Char.chr (int_range 0 255))));
    ]

let print_codec_case = function
  | Cc_clean m -> "clean " ^ Serve.Wire.tag_name m
  | Cc_truncate (m, k) -> Printf.sprintf "truncate(%d) %s" k (Serve.Wire.tag_name m)
  | Cc_flip (m, p, x) -> Printf.sprintf "flip(%d^%02x) %s" p x (Serve.Wire.tag_name m)
  | Cc_oversize m -> "oversize " ^ Serve.Wire.tag_name m
  | Cc_garbage s -> Printf.sprintf "garbage(%d bytes)" (String.length s)

(* Decode is total: a frame either roundtrips exactly or fails with a
   typed [Wire.error] — no exception ever escapes, whatever the bytes. *)
let serve_codec_roundtrip =
  Runner.make ~name:"serve/codec-roundtrip" ~count:300
    (Arb.make ~print:print_codec_case gen_codec_case)
    (fun case ->
      let total_decode ?limit s =
        match Serve.Wire.decode ?limit s with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      match case with
      | Cc_clean m -> (
        let bytes = Serve.Wire.encode m in
        match Serve.Wire.decode bytes with
        | Ok (m', consumed) -> m' = m && consumed = String.length bytes
        | Error _ -> false
        | exception _ -> false)
      | Cc_truncate (m, k) ->
        let bytes = Serve.Wire.encode m in
        let keep = if String.length bytes <= 1 then 0 else k mod String.length bytes in
        let cut = String.sub bytes 0 keep in
        (match Serve.Wire.decode cut with
        | Error (Serve.Wire.Truncated _) -> true
        | Ok _ | Error _ -> false
        | exception _ -> false)
      | Cc_flip (m, p, x) -> (
        let bytes = Bytes.of_string (Serve.Wire.encode m) in
        let p = p mod Bytes.length bytes in
        Bytes.set bytes p (Char.chr (Char.code (Bytes.get bytes p) lxor x));
        let s = Bytes.unsafe_to_string bytes in
        total_decode s
        &&
        (* whatever decodes must re-encode and decode to the same value *)
        match Serve.Wire.decode s with
        | Ok (m', _) -> (
          match Serve.Wire.decode (Serve.Wire.encode m') with
          | Ok (m'', _) -> m'' = m'
          | Error _ -> false
          | exception _ -> false)
        | Error _ -> true
        | exception _ -> false)
      | Cc_oversize m -> (
        let bytes = Serve.Wire.encode m in
        let payload = String.length bytes - Serve.Wire.header_bytes in
        let limit = max 0 (payload - 1) in
        match Serve.Wire.decode ~limit bytes with
        | Error (Serve.Wire.Oversized _) -> true
        | Ok (m', _) -> payload = 0 && m' = m
        | Error _ -> false
        | exception _ -> false)
      | Cc_garbage s -> total_decode s)

(* --- assess run artifacts ---------------------------------------------- *)

type run_case =
  | Ra_clean of Assess.Run.t
  | Ra_truncate of Assess.Run.t * int
  | Ra_flip of Assess.Run.t * int * int

let gen_assess_run : Assess.Run.t Gen.t =
  let open Gen in
  let byte_string =
    let* n = int_range 0 10 in
    map (String.concat "")
      (list_n n
         (oneofl
            [ "a"; "Z"; "0"; "_"; "/"; " "; "\""; "\\"; "\n"; "\t"; "\000"; "\xff"; "\xc3\xa9" ]))
  in
  let finite_float =
    frequency
      [
        (3, float_range (-1000.0) 1000.0);
        (2, map float_of_int (int_range (-1_000_000) 1_000_000));
        (1,
          oneofl
            [ 0.0; -0.0; 1e-300; 5e-324; 1.0 /. 3.0; 1.7976931348623157e308; 123456789.125 ]);
      ]
  in
  let gen_metric =
    let* name = byte_string in
    let* units = oneofl [ ""; "s"; "Mop/s"; "x" ] in
    let* higher_is_better = bool in
    let* n = int_range 0 6 in
    let* samples = array_n n finite_float in
    return (Assess.Run.metric ~units ~higher_is_better name samples)
  in
  let* profile = oneofl [ "espresso-quick"; "parallel"; "serve-loadgen"; "p" ] in
  let* run_id = byte_string in
  let* seed = int_range 0 100_000 in
  let* git_rev = byte_string in
  let* host = byte_string in
  let* created_at = byte_string in
  let* wall_s = float_range 0.0 1e6 in
  let* n_meta = int_range 0 3 in
  let* meta = list_n n_meta (pair byte_string byte_string) in
  let* n_metrics = int_range 0 5 in
  let* metrics = list_n n_metrics gen_metric in
  return
    (Assess.Run.create ~run_id ~git_rev ~host ~created_at ~meta ~profile ~seed ~wall_s
       metrics)

let gen_run_case : run_case Gen.t =
  let open Gen in
  frequency
    [
      (4, map (fun r -> Ra_clean r) gen_assess_run);
      (3, map2 (fun r k -> Ra_truncate (r, k)) gen_assess_run (int_range 0 1_000_000));
      (3,
        let* r = gen_assess_run in
        let* p = int_range 0 1_000_000 in
        let* x = int_range 1 255 in
        return (Ra_flip (r, p, x)));
    ]

let print_run_case =
  let brief (r : Assess.Run.t) =
    Printf.sprintf "%s (%d metrics)" r.Assess.Run.profile (List.length r.Assess.Run.metrics)
  in
  function
  | Ra_clean r -> "clean " ^ brief r
  | Ra_truncate (r, k) -> Printf.sprintf "truncate(%d) %s" k (brief r)
  | Ra_flip (r, p, x) -> Printf.sprintf "flip(%d^%02x) %s" p x (brief r)

(* Run parsing is total and lossless: a serialized run parses back
   bit-identically (byte-identical re-encode), every strict prefix of the
   document is a typed error, and a corrupted byte either fails typed or
   parses to a value that itself roundtrips — never an exception. *)
let assess_run_roundtrip =
  let module R = Assess.Run in
  Runner.make ~name:"assess/run-roundtrip" ~count:200
    (Arb.make ~print:print_run_case gen_run_case)
    (fun case ->
      match case with
      | Ra_clean r -> (
        let doc = R.to_json r in
        match R.of_json doc with
        | Ok r' -> r' = r && R.to_json r' = doc
        | Error _ -> false
        | exception _ -> false)
      | Ra_truncate (r, k) -> (
        let doc = String.trim (R.to_json r) in
        let keep = k mod String.length doc in
        match R.of_json (String.sub doc 0 keep) with
        | Error (R.Parse _ | R.Schema _) -> true
        | Error (R.Io _) | Ok _ -> false
        | exception _ -> false)
      | Ra_flip (r, p, x) -> (
        let doc = Bytes.of_string (R.to_json r) in
        let p = p mod Bytes.length doc in
        Bytes.set doc p (Char.chr (Char.code (Bytes.get doc p) lxor x));
        match R.of_json (Bytes.unsafe_to_string doc) with
        | Error _ -> true
        | Ok r' -> (
          match R.of_json (R.to_json r') with
          | Ok r'' -> r'' = r'
          | Error _ -> false
          | exception _ -> false)
        | exception _ -> false))

(* --- sweep --------------------------------------------------------------- *)

(* The staged [Fpga.Flow] against the pre-refactor monolith kept verbatim
   in [Flow.Unstaged]: same seed, same rng consumption order, so every
   outcome field — floats included — must be structurally identical.
   This is the license for the population sweep to reuse [Flow.staged]
   in place of the code it replaced. *)
type flow_case = { fc_seed : int; fc_n_pi : int; fc_n_blocks : int }

let gen_flow_case =
  let open Gen in
  let* fc_seed = int_range 0 1_000_000 in
  let* fc_n_pi = int_range 2 5 in
  let* fc_n_blocks = int_range 1 12 in
  return { fc_seed; fc_n_pi; fc_n_blocks }

let print_flow_case c =
  Printf.sprintf "{seed=%d; n_pi=%d; n_blocks=%d}" c.fc_seed c.fc_n_pi c.fc_n_blocks

let sweep_pipeline_equivalence =
  Runner.make ~name:"sweep/pipeline-equivalence" ~count:24
    (Arb.make ~print:print_flow_case gen_flow_case)
    (fun c ->
      let design =
        Fpga.Design.random (Util.Rng.create c.fc_seed) ~n_pi:c.fc_n_pi ~n_blocks:c.fc_n_blocks ()
      in
      let grid =
        let rec fit g =
          if Fpga.Arch.sites (Fpga.Arch.cnfet ~grid:g) >= c.fc_n_blocks then g else fit (g + 1)
        in
        fit 3
      in
      let arch = Fpga.Arch.cnfet ~grid in
      let seed = c.fc_seed lxor 0x5157 in
      Fpga.Flow.run (Util.Rng.create seed) arch design
      = Fpga.Flow.Unstaged.run (Util.Rng.create seed) arch design
      && Fpga.Flow.run_timing_driven ~rounds:1 (Util.Rng.create (seed + 1)) arch design
         = Fpga.Flow.Unstaged.run_timing_driven ~rounds:1
             (Util.Rng.create (seed + 1))
             arch design)

(* A whole (tiny) population sweep per case, run twice at different job
   counts and window sizes: the deterministic report views must agree
   byte for byte, because nothing scheduling-dependent may reach an
   item's value. Kept very small — each case is two end-to-end sweeps. *)
let sweep_determinism =
  Runner.make ~name:"sweep/determinism" ~count:3
    (Arb.make ~print:string_of_int (Gen.int_range 0 10_000))
    (fun seed ->
      let config =
        {
          Sweep.Drive.default with
          profiles = 3;
          seed;
          jobs = 1;
          window = 2;
          space = Sweep.Drive.tiny_space;
          yield_trials = 4;
          checkpoint = None;
        }
      in
      let a = Sweep.Drive.run config in
      let b = Sweep.Drive.run { config with jobs = 2; window = 1 } in
      a.Sweep.Drive.r_failures = []
      && Assess.Json.to_string (Sweep.Report.deterministic_json a)
         = Assess.Json.to_string (Sweep.Report.deterministic_json b))

(* --- mcnc ---------------------------------------------------------------- *)

(* Manufactured covers survive the sweep's logical front end: the
   minimized cover is a correct minimization of the manufactured
   function, and phase optimization followed by a second application of
   the same assignment gives the original function back on every
   minterm. *)
type synth_case = { sy_seed : int; sy_n_in : int; sy_n_out : int; sy_products : int }

let gen_synth_case =
  let open Gen in
  let* sy_seed = int_range 0 1_000_000 in
  let* sy_n_in = int_range 4 6 in
  let* sy_n_out = int_range 1 3 in
  let* sy_products = int_range 3 8 in
  return { sy_seed; sy_n_in; sy_n_out; sy_products }

let print_synth_case c =
  Printf.sprintf "{seed=%d; %dx%dx%d}" c.sy_seed c.sy_n_in c.sy_n_out c.sy_products

let synthetic_phase_preserved =
  Runner.make ~name:"mcnc/synthetic-phase-preserved" ~count:10
    (Arb.make ~print:print_synth_case gen_synth_case)
    (fun c ->
      let profile =
        {
          Mcnc.Profiles.name = "prop";
          n_in = c.sy_n_in;
          n_out = c.sy_n_out;
          n_products = c.sy_products;
        }
      in
      let syn = Mcnc.Synthetic.with_profile (Util.Rng.create c.sy_seed) profile in
      let ph = Espresso.Phase.optimize ~max_rounds:1 syn.Mcnc.Synthetic.minimized in
      let unphased = Espresso.Phase.apply_phases ph.Espresso.Phase.cover ph.Espresso.Phase.phases in
      let same = ref true in
      for m = 0 to (1 lsl c.sy_n_in) - 1 do
        let inputs = Array.init c.sy_n_in (fun i -> m land (1 lsl i) <> 0) in
        let a = Cover.eval syn.Mcnc.Synthetic.on_set inputs in
        let b = Cover.eval unphased inputs in
        for o = 0 to c.sy_n_out - 1 do
          if Util.Bitvec.get a o <> Util.Bitvec.get b o then same := false
        done
      done;
      Espresso.Minimize.verify ~original:syn.Mcnc.Synthetic.on_set syn.Mcnc.Synthetic.minimized
      && !same)

(* --- classify ----------------------------------------------------------- *)

(* The bit-identity pin for the tentpole: on clean devices the lowered
   crossbar classifies every minterm exactly as the reference integer
   model; under drawn crosspoint faults it degrades to a typed label in
   the encoding range — data, never an exception. *)
let classify_mapped_vs_reference =
  Runner.make ~name:"classify/mapped-vs-reference" ~count:40
    (Gens.arb_classify_case ())
    (fun (c : Gens.classify_case) ->
      let m = Gens.model_of_case c in
      let mapped = Classify.Map.lower m in
      let minterms = Gens.all_minterms c.Gens.cl_n_features in
      let clean =
        List.for_all
          (fun x -> Classify.Map.classify mapped x = Classify.Model.predict m x)
          minterms
      in
      let spare_rows = 1 in
      let engine =
        Fault.Inject.make ~seed:c.Gens.cl_seed
          { Fault.Inject.nothing with crosspoint_flip = c.Gens.cl_rate }
      in
      let pla = mapped.Classify.Map.pla in
      let rows = Cnfet.Pla.num_products pla + spare_rows in
      let and_cols = Cnfet.Plane.cols (Cnfet.Pla.and_plane pla) in
      let n_out = Cnfet.Plane.rows (Cnfet.Pla.or_plane pla) in
      let ctr = ref 0 in
      let draw map ~row ~col =
        incr ctr;
        match Fault.Inject.crosspoint_fault_of engine ~index:!ctr with
        | Fault.Defect.Good -> ()
        | k -> Fault.Defect.set map ~row ~col k
      in
      let and_defects = Fault.Defect.perfect ~rows ~cols:and_cols in
      for r = 0 to rows - 1 do
        for cc = 0 to and_cols - 1 do
          draw and_defects ~row:r ~col:cc
        done
      done;
      let or_defects = Fault.Defect.perfect ~rows:n_out ~cols:rows in
      for r = 0 to n_out - 1 do
        for cc = 0 to rows - 1 do
          draw or_defects ~row:r ~col:cc
        done
      done;
      let phys = Classify.Map.identity_physical mapped ~spare_rows in
      let range = 1 lsl Classify.Model.label_bits m in
      let faulted =
        List.for_all
          (fun x ->
            match Classify.Map.classify_defective ~and_defects ~or_defects phys x with
            | label -> label >= 0 && label < range
            | exception _ -> false)
          minterms
      in
      clean && faulted)

let all =
  [
    cube_ops_vs_naive;
    cube_algebra;
    cover_scc;
    cover_complement;
    minimize_verifies;
    harder_never_worse;
    qm_optimality;
    pla_eval;
    cascade_network_eval;
    cascade_cover_embedding;
    program_roundtrip;
    program_hw_roundtrip;
    atpg_full_coverage;
    repair_revalidation;
    chaos_heal_convergence;
    crossbar_resolve_vs_hw;
    folding_witness;
    fpga_inverter_absorption;
    trace_wellformed;
    runtime_bitslice_vs_scalar;
    serve_codec_roundtrip;
    classify_mapped_vs_reference;
    assess_run_roundtrip;
    sweep_pipeline_equivalence;
    sweep_determinism;
    synthetic_phase_preserved;
  ]
