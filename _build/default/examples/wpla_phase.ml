(* §5's logic-synthesis claims: output-phase optimization (Sasao / MINI II
   style) and Whirlpool-PLA mapping via Doppio-Espresso, both enabled by
   the GNOR plane's free polarity.

   Run with: dune exec examples/wpla_phase.exe *)

module Expr = Logic.Expr

let () =
  let t = Util.Tableau.create [ "function"; "espresso"; "phase-opt"; "wpla (4 planes)" ] in
  let cases =
    [
      ("rd53", Mcnc.Generators.rd ~n:5);
      ("cmp3", Mcnc.Generators.comparator ~bits:3);
      ("add2", Mcnc.Generators.adder ~bits:2);
      ( "wide-or+and",
        Expr.to_cover_multi ~n_in:6
          [ Expr.(Or [ v 0; v 1; v 2; v 3; v 4; v 5 ]); Expr.(And [ v 0; v 1; v 2 ]) ] );
      ("dec4", Mcnc.Generators.decoder ~bits:4);
    ]
  in
  List.iter
    (fun (name, f) ->
      let base = Espresso.Minimize.cover f in
      let phase = Espresso.Phase.optimize f in
      let wpla = Cnfet.Wpla.of_function f in
      assert (Cnfet.Wpla.verify_against wpla f);
      Util.Tableau.add_row t
        [
          name;
          string_of_int (Logic.Cover.size base);
          string_of_int phase.Espresso.Phase.products_optimized;
          string_of_int (Cnfet.Wpla.products wpla);
        ])
    cases;
  Util.Tableau.print ~title:"Product terms under polarity freedom" t;
  print_endline "";
  (* Show a phase assignment in detail. *)
  let f =
    Expr.to_cover_multi ~n_in:6
      [ Expr.(Or [ v 0; v 1; v 2; v 3; v 4; v 5 ]); Expr.(And [ v 0; v 1; v 2 ]) ]
  in
  let r = Espresso.Phase.optimize f in
  Printf.printf "wide-or+and phase assignment: [%s]  (%d -> %d products)\n"
    (String.concat "; "
       (Array.to_list (Array.map (fun b -> if b then "pos" else "neg") r.Espresso.Phase.phases)))
    r.Espresso.Phase.products_all_positive r.Espresso.Phase.products_optimized;
  let w = Cnfet.Wpla.of_function f in
  Printf.printf "whirlpool split: positive pair %s, negative pair %s\n"
    (match Cnfet.Wpla.positive_pla w with
    | Some p -> Printf.sprintf "%d products" (Cnfet.Pla.num_products p)
    | None -> "unused")
    (match Cnfet.Wpla.negative_pla w with
    | Some p -> Printf.sprintf "%d products" (Cnfet.Pla.num_products p)
    | None -> "unused")
