(* The paper's Table 2 workload: one design implemented on a standard
   PLA-based FPGA it fills to ~99%, then on the ambipolar-CNFET fabric —
   half-area CLBs, one routed wire per connection, inverters absorbed.

   Run with: dune exec examples/fpga_speedup.exe            (fast, small)
             dune exec examples/fpga_speedup.exe -- full    (paper scale) *)

let () =
  let full = Array.length Sys.argv > 1 && Sys.argv.(1) = "full" in
  let grid = if full then 17 else 11 in
  Printf.printf "Running Table 2 experiment (standard grid %dx%d)...\n%!" grid grid;
  let t = Fpga.Flow.table2_experiment ~grid () in
  let s = t.Fpga.Flow.standard and c = t.Fpga.Flow.cnfet in
  let tab = Util.Tableau.create [ ""; "Standard FPGA"; "CNFET FPGA" ] in
  let f fmt = Printf.sprintf fmt in
  Util.Tableau.add_row tab
    [ "grid"; f "%dx%d" s.Fpga.Flow.grid s.Fpga.Flow.grid; f "%dx%d" c.Fpga.Flow.grid c.Fpga.Flow.grid ];
  Util.Tableau.add_row tab
    [ "CLBs used"; string_of_int s.Fpga.Flow.blocks_used; string_of_int c.Fpga.Flow.blocks_used ];
  Util.Tableau.add_row tab
    [
      "occupied area";
      Util.Tableau.cell_pct s.Fpga.Flow.occupancy;
      Util.Tableau.cell_pct c.Fpga.Flow.occupancy;
    ];
  Util.Tableau.add_row tab
    [
      "frequency";
      f "%.0f MHz" (s.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6);
      f "%.0f MHz" (c.Fpga.Flow.timing.Fpga.Timing.frequency_hz /. 1e6);
    ];
  Util.Tableau.add_rule tab;
  Util.Tableau.add_row tab
    [ "wirelength"; string_of_int s.Fpga.Flow.wirelength; string_of_int c.Fpga.Flow.wirelength ];
  Util.Tableau.add_row tab
    [
      "routed segments";
      string_of_int s.Fpga.Flow.routed_segments;
      string_of_int c.Fpga.Flow.routed_segments;
    ];
  Util.Tableau.add_row tab
    [
      "route overflow";
      string_of_int s.Fpga.Flow.route_overflow;
      string_of_int c.Fpga.Flow.route_overflow;
    ];
  Util.Tableau.add_row tab
    [
      "critical path";
      f "%.2f ns" (s.Fpga.Flow.timing.Fpga.Timing.critical_path *. 1e9);
      f "%.2f ns" (c.Fpga.Flow.timing.Fpga.Timing.critical_path *. 1e9);
    ];
  Util.Tableau.print ~title:"Table 2 (standard vs ambipolar-CNFET FPGA)" tab;
  Printf.printf "\nSpeed-up: %.2fx   (paper: 154 MHz -> 349 MHz, 2.27x)\n" t.Fpga.Flow.speedup;
  print_endline
    "Mechanisms: half-area CLB shrinks the pitch by sqrt(2); only one wire per\n\
     connection is routed (inverted signals are generated inside the GNOR\n\
     planes); inverter blocks are absorbed into polarity configuration; and\n\
     the uncongested fabric avoids loaded switch boxes."
