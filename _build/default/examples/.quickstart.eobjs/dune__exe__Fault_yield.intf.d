examples/fault_yield.mli:
