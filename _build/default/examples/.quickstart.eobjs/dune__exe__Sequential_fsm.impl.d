examples/sequential_fsm.ml: Array Bool Cnfet Device List Printf String Util
