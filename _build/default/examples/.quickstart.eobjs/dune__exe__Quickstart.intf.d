examples/quickstart.mli:
