examples/wpla_phase.ml: Array Cnfet Espresso List Logic Mcnc Printf String Util
