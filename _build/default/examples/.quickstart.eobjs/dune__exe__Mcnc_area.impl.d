examples/mcnc_area.ml: Cnfet Device List Mcnc Option Printf Util
