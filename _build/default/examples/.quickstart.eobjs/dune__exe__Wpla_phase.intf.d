examples/wpla_phase.mli:
