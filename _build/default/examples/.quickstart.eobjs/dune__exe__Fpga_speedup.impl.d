examples/fpga_speedup.ml: Array Fpga Printf Sys Util
