examples/fpga_speedup.mli:
