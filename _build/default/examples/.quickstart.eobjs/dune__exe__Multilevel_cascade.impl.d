examples/multilevel_cascade.ml: Array Cnfet Device List Logic Printf String Util
