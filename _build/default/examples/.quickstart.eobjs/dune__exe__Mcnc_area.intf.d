examples/mcnc_area.mli:
