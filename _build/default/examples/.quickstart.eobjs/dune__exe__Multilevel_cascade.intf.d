examples/multilevel_cascade.mli:
