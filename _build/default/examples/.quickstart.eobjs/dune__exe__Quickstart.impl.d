examples/quickstart.ml: Array Bool Cnfet Device Espresso List Logic Printf
