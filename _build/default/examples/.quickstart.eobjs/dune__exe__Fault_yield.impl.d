examples/fault_yield.ml: Cnfet Fault List Mcnc Printf Util
