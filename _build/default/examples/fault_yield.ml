(* §5's fault-tolerance claim: the regular GNOR array lets defective
   crosspoints be tolerated by remapping product terms onto working rows
   (plus spares). Monte-Carlo yield across defect rates.

   Run with: dune exec examples/fault_yield.exe *)

let () =
  let f = Mcnc.Generators.comparator ~bits:3 in
  let pla = Cnfet.Pla.of_minimized f in
  Printf.printf "function: cmp3 mapped to a %d x %d x %d CNFET PLA\n"
    (Cnfet.Pla.num_inputs pla) (Cnfet.Pla.num_products pla) (Cnfet.Pla.num_outputs pla);
  let rng = Util.Rng.create 42 in
  let rates = [ 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  let pts = Fault.Yield.sweep rng ~trials:300 ~spare_rows:3 pla ~rates in
  let t =
    Util.Tableau.create
      [ "defect rate"; "baseline yield"; "remap yield"; "remap + 3 spares" ]
  in
  List.iter
    (fun p ->
      Util.Tableau.add_row t
        [
          Printf.sprintf "%.1f%%" (100.0 *. p.Fault.Yield.defect_rate);
          Util.Tableau.cell_pct p.Fault.Yield.yield_baseline;
          Util.Tableau.cell_pct p.Fault.Yield.yield_remap;
          Util.Tableau.cell_pct p.Fault.Yield.yield_spares;
        ])
    pts;
  Util.Tableau.print ~title:"Monte-Carlo functional yield (300 trials/point)" t;
  print_endline "";
  (* One concrete repaired instance, verified through the defects. *)
  let rec demo tries =
    if tries = 0 then print_endline "no repairable instance drawn (unlucky seed)"
    else
      match Fault.Yield.functional_check rng pla f ~defect_rate:0.02 ~spare_rows:3 with
      | Some ok ->
        Printf.printf
          "example at 2%% defects: repair found an assignment; exhaustive check \
           through the defective array: %s\n"
          (if ok then "PASS" else "FAIL")
      | None -> demo (tries - 1)
  in
  demo 10;
  print_endline "";

  (* The interconnect side: routing through a defective crossbar. *)
  print_endline "crossbar routing under defects (10 signals through 10x14):";
  List.iter
    (fun p ->
      Printf.printf "  %.1f%% defects: fixed columns %.0f%%, reassigned %.0f%%\n"
        (100.0 *. p.Fault.Xbar.defect_rate)
        (100.0 *. p.Fault.Xbar.yield_identity)
        (100.0 *. p.Fault.Xbar.yield_assigned))
    (Fault.Xbar.yield_sweep rng ~trials:200 ~rows:10 ~cols:14 ~demands:10 [ 0.01; 0.03 ]);
  print_endline "";

  (* And the testing side: a compact vector set catching every fault. *)
  let small = Cnfet.Pla.of_minimized (Mcnc.Generators.mux ~select_bits:2) in
  let tests, undetectable = Fault.Atpg.generate small in
  Printf.printf
    "ATPG on mux2's PLA: %d vectors (of %d possible) detect all %d detectable\n\
     single crosspoint faults (%d redundant); coverage %.0f%%\n"
    (List.length tests)
    (1 lsl Cnfet.Pla.num_inputs small)
    (List.length (Fault.Atpg.all_faults small) - List.length undetectable)
    (List.length undetectable)
    (100.0 *. Fault.Atpg.coverage small tests)
