(* The paper's Table 1 workload: PLA area for MCNC-profile functions in
   Flash, EEPROM and ambipolar-CNFET technologies — first from the
   recorded profiles (exact reproduction), then through the full synthetic
   pipeline (generate → minimize → map → measure).

   Run with: dune exec examples/mcnc_area.exe *)

let area_row (p : Cnfet.Area.profile) =
  List.map
    (fun fam -> Cnfet.Area.pla_area (Device.Tech.get fam) p)
    Device.Tech.all

let () =
  (* Exact reproduction from recorded benchmark profiles. *)
  let t = Util.Tableau.create [ "function"; "Flash (L^2)"; "EEPROM (L^2)"; "CNFET (L^2)"; "CNFET vs Flash" ] in
  Util.Tableau.add_row t
    [ "basic cell"; "40"; "100"; "60"; "" ];
  Util.Tableau.add_rule t;
  List.iter
    (fun prof ->
      let p =
        {
          Cnfet.Area.n_in = prof.Mcnc.Profiles.n_in;
          n_out = prof.Mcnc.Profiles.n_out;
          n_products = prof.Mcnc.Profiles.n_products;
        }
      in
      match area_row p with
      | [ flash; eeprom; cnfet ] ->
        let saving = Cnfet.Area.cnfet_saving_vs Device.Tech.flash p in
        Util.Tableau.add_row t
          [
            prof.Mcnc.Profiles.name;
            Util.Tableau.cell_int flash;
            Util.Tableau.cell_int eeprom;
            Util.Tableau.cell_int cnfet;
            Printf.sprintf "%+.1f%%" (-100.0 *. saving);
          ]
      | _ -> assert false)
    Mcnc.Profiles.table1;
  Util.Tableau.print ~title:"Table 1 (recorded MCNC profiles)" t;

  (* The same table through the end-to-end pipeline on synthetic twins. *)
  let rng = Util.Rng.create 2008 in
  let t2 =
    Util.Tableau.create
      [ "function"; "target p"; "measured p"; "Flash (L^2)"; "CNFET (L^2)" ]
  in
  List.iter
    (fun r ->
      let p = Cnfet.Area.profile_of_cover r.Mcnc.Synthetic.minimized in
      Util.Tableau.add_row t2
        [
          r.Mcnc.Synthetic.profile.Mcnc.Profiles.name ^ "*";
          string_of_int r.Mcnc.Synthetic.profile.Mcnc.Profiles.n_products;
          string_of_int r.Mcnc.Synthetic.achieved_products;
          Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.flash p);
          Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.cnfet p);
        ])
    (Mcnc.Synthetic.table1_set rng);
  Util.Tableau.print ~title:"Synthetic twins through the full pipeline" t2;
  print_endline "";
  Printf.printf
    "Crossover: the CNFET PLA beats Flash whenever n_in > n_out (e.g. n_out=1 -> n_in >= %d).\n"
    (Option.value ~default:0 (Cnfet.Area.crossover_inputs Device.Tech.flash ~n_out:1))
