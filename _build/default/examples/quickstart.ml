(* Quickstart: build a GNOR gate, configure it as the paper's Fig. 2
   example, simulate it at switch level, then map a small function onto an
   ambipolar-CNFET PLA and check it end to end.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "=== Ambipolar CNFET quickstart ===";
  print_endline "";

  (* 1. The device: three states selected by the polarity-gate voltage. *)
  let p = Device.Ambipolar.default in
  Printf.printf "Device states at VDD = %.1f V:\n" p.Device.Ambipolar.vdd;
  List.iter
    (fun v ->
      Printf.printf "  PG = %4.2f V  ->  %s\n" v
        (Device.Ambipolar.polarity_to_string (Device.Ambipolar.polarity_of_pg p v)))
    [ Device.Ambipolar.v_minus p; Device.Ambipolar.v_zero p; Device.Ambipolar.v_plus p ];
  print_endline "";

  (* 2. The paper's Fig. 2: a 4-input GNOR configured as Y = NOR(A, B', D),
     with input C dropped, driven through pre-charge / evaluate phases. *)
  let modes = [| Cnfet.Gnor.Pass; Cnfet.Gnor.Invert; Cnfet.Gnor.Drop; Cnfet.Gnor.Pass |] in
  print_endline "GNOR configured as Y = NOR(A, B', D)   (input C dropped)";
  print_endline " A B C D | Y";
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    let y = Cnfet.Gnor.simulate modes inputs in
    if inputs.(2) = false then
      (* print one representative per (A,B,D) combination *)
      Printf.printf " %d %d %d %d | %d\n"
        (Bool.to_int inputs.(0)) (Bool.to_int inputs.(1)) (Bool.to_int inputs.(2))
        (Bool.to_int inputs.(3)) (Bool.to_int y)
  done;
  print_endline "";

  (* 3. A function through the full flow: minimize, map, verify. *)
  let f =
    Logic.Expr.to_cover_multi ~n_in:4
      [
        Logic.Expr.(v 0 && v 1 || (not_ (v 2) && v 3));
        Logic.Expr.(parity [ v 0; v 1; v 2 ]);
      ]
  in
  let minimized = Espresso.Minimize.minimize f in
  let c0, _ = minimized.Espresso.Minimize.initial_cost in
  let c1, _ = minimized.Espresso.Minimize.final_cost in
  Printf.printf "espresso: %d cubes -> %d cubes\n" c0 c1;
  let pla = Cnfet.Pla.of_cover minimized.Espresso.Minimize.cover in
  Printf.printf "PLA: %d inputs x %d products x %d outputs (one column per input!)\n"
    (Cnfet.Pla.num_inputs pla) (Cnfet.Pla.num_products pla) (Cnfet.Pla.num_outputs pla);
  Printf.printf "functional check vs specification: %b\n" (Cnfet.Pla.verify_against pla f);

  (* 4. Program the AND plane through the row/column-select protocol and
     read it back. *)
  let plane = Cnfet.Pla.and_plane pla in
  let prog =
    Cnfet.Program.create ~rows:(Cnfet.Plane.rows plane) ~cols:(Cnfet.Plane.cols plane) ()
  in
  Cnfet.Program.program_plane prog plane;
  Printf.printf "programming: %d write steps, readback ok = %b\n" (Cnfet.Program.steps prog)
    (Cnfet.Program.verify prog plane);

  (* 5. Area in the three technologies of Table 1. *)
  let profile = Cnfet.Area.profile_of_pla pla in
  print_endline "";
  print_endline "area (L^2):";
  List.iter
    (fun fam ->
      let tech = Device.Tech.get fam in
      Printf.printf "  %-6s %6d\n" (Device.Tech.name fam) (Cnfet.Area.pla_area tech profile))
    Device.Tech.all
