(* Multi-level logic on the GNOR fabric: "Interleaving PLA and
   interconnects enables cascades of NOR planes and realizes any logic
   function" (paper §4). Parity is the classic two-level killer — watch
   the cascade stay linear while the PLA explodes.

   Run with: dune exec examples/multilevel_cascade.exe *)

let () =
  print_endline "Parity on the ambipolar-CNFET fabric: 2-level PLA vs NOR-plane cascade";
  print_endline "";
  let t =
    Util.Tableau.create
      [ "n"; "PLA products"; "PLA devices"; "cascade stages"; "cascade devices" ]
  in
  List.iter
    (fun n ->
      let f = Logic.Expr.to_cover_multi ~n_in:n [ Logic.Expr.parity (List.init n Logic.Expr.v) ] in
      let pla = Cnfet.Pla.of_minimized f in
      let net = Cnfet.Cascade.xor_tree ~n in
      let cascade = Cnfet.Cascade.of_network net in
      assert (Cnfet.Cascade.verify_against_network cascade net);
      Util.Tableau.add_row t
        [
          string_of_int n;
          string_of_int (Cnfet.Pla.num_products pla);
          string_of_int (Cnfet.Pla.crosspoint_count pla);
          string_of_int (Cnfet.Cascade.num_stages cascade);
          string_of_int (Cnfet.Cascade.device_count cascade);
        ])
    [ 3; 5; 8; 10 ];
  Util.Tableau.print t;
  print_endline "";

  (* Show the staged structure of one cascade. *)
  let n = 8 in
  let net = Cnfet.Cascade.xor_tree ~n in
  let c = Cnfet.Cascade.of_network net in
  Printf.printf "xor%d cascade floorplan (plane and crossbar per stage):\n" n;
  List.iteri
    (fun k ((pr, pc), (xr, xc)) ->
      Printf.printf "  stage %d: crossbar %dx%d -> GNOR plane %d rows x %d cols\n" (k + 1) xr
        xc pr pc)
    (List.combine (Cnfet.Cascade.plane_dims c) (Cnfet.Cascade.crossbar_dims c));
  Printf.printf "total area (CNFET cells): %s L^2\n"
    (Util.Tableau.cell_int (Cnfet.Cascade.area Device.Tech.cnfet c));
  print_endline "";

  (* The cascade is a real mapped structure: evaluate it. *)
  let pis = Array.init n (fun i -> i mod 3 = 0) in
  Printf.printf "eval on %s -> parity = %b\n"
    (String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") pis)))
    (Cnfet.Cascade.eval c pis).(0)
