(* Sequential logic on the ambipolar-CNFET fabric: a behavioural FSM
   specification synthesized onto a registered GNOR PLA, exercised
   cycle by cycle.

   Run with: dune exec examples/sequential_fsm.exe *)

let () =
  print_endline "=== FSMs on registered GNOR PLAs ===";
  print_endline "";

  (* A '1101' sequence detector with overlap. *)
  let spec = Cnfet.Fsm.sequence_detector ~pattern:[ true; true; false; true ] in
  let fsm = Cnfet.Fsm.synthesize spec in
  let pla = Cnfet.Fsm.pla fsm in
  Printf.printf "det(1101): %d states -> %d state bits; PLA %d in x %d products x %d out\n"
    spec.Cnfet.Fsm.states (Cnfet.Fsm.state_bits fsm) (Cnfet.Pla.num_inputs pla)
    (Cnfet.Pla.num_products pla) (Cnfet.Pla.num_outputs pla);
  let stream = [ true; true; false; true; true; false; true; true; true; false; true ] in
  let outs = Cnfet.Fsm.run fsm (List.map (fun b -> [| b |]) stream) in
  Printf.printf "input : %s\n"
    (String.concat "" (List.map (fun b -> if b then "1" else "0") stream));
  Printf.printf "detect: %s\n"
    (String.concat "" (List.map (fun o -> if o.(0) then "1" else "0") outs));
  Printf.printf "matches behavioural spec over 1000 random steps: %b\n"
    (Cnfet.Fsm.verify_against_spec ~steps:1000 fsm spec);
  print_endline "";

  (* Encoding trade-off on a counter. *)
  print_endline "mod-10 counter, binary vs one-hot state encoding:";
  List.iter
    (fun enc ->
      let fsm = Cnfet.Fsm.synthesize ~encoding:enc (Cnfet.Fsm.counter ~modulo:10) in
      let pla = Cnfet.Fsm.pla fsm in
      let profile = Cnfet.Area.profile_of_pla pla in
      Printf.printf "  %-8s %d state bits, %2d products, %s L^2 of CNFET PLA\n"
        (match enc with Cnfet.Fsm.Binary -> "binary" | Cnfet.Fsm.One_hot -> "one-hot")
        (Cnfet.Fsm.state_bits fsm) (Cnfet.Pla.num_products pla)
        (Util.Tableau.cell_int (Cnfet.Area.pla_area Device.Tech.cnfet profile)))
    [ Cnfet.Fsm.Binary; Cnfet.Fsm.One_hot ];
  print_endline "";

  (* Drive the counter and print a few cycles. *)
  let fsm = Cnfet.Fsm.synthesize (Cnfet.Fsm.counter ~modulo:10) in
  let regs = ref (Cnfet.Fsm.reset_vector fsm) in
  print_endline "counting with enable pattern 1 1 1 0 1 (output = count before the tick):";
  List.iter
    (fun en ->
      let regs', outs = Cnfet.Fsm.step fsm ~registers:!regs [| en |] in
      let v = ref 0 in
      Array.iteri (fun b bit -> if bit then v := !v lor (1 lsl b)) outs;
      Printf.printf "  enable=%d  count=%d\n" (Bool.to_int en) !v;
      regs := regs')
    [ true; true; true; false; true ]
