(* Cross-module integration tests: whole pipelines from function
   specification down to programmed, simulated, repaired hardware. *)

module Cover = Logic.Cover
module Expr = Logic.Expr
module Tt = Logic.Truth_table
module G = Cnfet.Gnor
module Plane = Cnfet.Plane
module Pla = Cnfet.Pla

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Pipeline 1: .pla text → parse → minimize → map → program → readback →
   rebuild → switch-level simulate → compare with the parsed function. *)
let test_pla_text_to_silicon () =
  let text =
    ".i 4\n.o 2\n1-1- 10\n01-- 10\n--11 01\n1--- 01\n0000 11\n.e\n"
  in
  let spec = Logic.Pla_io.parse text in
  let minimized = Espresso.Minimize.cover spec.Logic.Pla_io.on_set in
  let pla = Pla.of_cover minimized in
  (* Program both planes crosspoint by crosspoint. *)
  let program_plane plane =
    let prog =
      Cnfet.Program.create ~rows:(Plane.rows plane) ~cols:(Plane.cols plane) ()
    in
    Cnfet.Program.program_plane prog plane;
    checkb "programming verified" true (Cnfet.Program.verify prog plane);
    Cnfet.Program.readback prog
  in
  let and_plane = program_plane (Pla.and_plane pla) in
  let or_plane = program_plane (Pla.or_plane pla) in
  let rebuilt =
    Pla.of_planes ~n_in:4 ~n_out:2 ~and_plane ~or_plane
      ~inverted_outputs:(Array.init 2 (fun o -> not (Pla.output_inverted pla o)))
  in
  (* Switch-level check of the readback-rebuilt PLA on all 16 patterns. *)
  let hw = Pla.build_hw rebuilt in
  for m = 0 to 15 do
    let inputs = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    let want = Cover.eval spec.Logic.Pla_io.on_set inputs in
    let got = Pla.simulate_hw hw inputs in
    for o = 0 to 1 do
      checkb
        (Printf.sprintf "pattern %d output %d" m o)
        (Util.Bitvec.get want o) got.(o)
    done
  done

(* Pipeline 2: a generated benchmark → phase optimization → CNFET PLA →
   area accounting consistent between the model and the mapped planes. *)
let test_benchmark_to_area () =
  let f = Mcnc.Generators.rd ~n:5 in
  let phase = Espresso.Phase.optimize f in
  let inverted = Array.map not phase.Espresso.Phase.phases in
  let pla = Pla.of_cover ~inverted_outputs:inverted phase.Espresso.Phase.cover in
  checkb "phase-mapped PLA implements rd53" true (Pla.verify_against pla f);
  let profile = Cnfet.Area.profile_of_pla pla in
  let model_area = Cnfet.Area.pla_area Device.Tech.cnfet profile in
  let device_area = Device.Tech.cnfet.Device.Tech.cell_area * Pla.crosspoint_count pla in
  checki "area model equals crosspoint accounting" model_area device_area

(* Pipeline 3: cascade PLAs through a crossbar (Fig. 3): the first PLA's
   outputs route through a programmed interconnect into a second PLA. *)
let test_pla_crossbar_cascade () =
  (* Stage 1: f(a,b,c) = (a·b, b⊕c). Stage 2: g(x,y) = x ∨ y. *)
  let stage1 = Pla.of_cover (Expr.to_cover_multi ~n_in:3 [ Expr.(v 0 && v 1); Expr.(v 1 ^^ v 2) ]) in
  let stage2 = Pla.of_cover (Expr.to_cover_multi ~n_in:2 [ Expr.(v 0 || v 1) ]) in
  (* Crossbar: 2 stage-1 output rows onto 2 stage-2 input columns,
     crossed: output 0 → input 1, output 1 → input 0. *)
  let x = Cnfet.Crossbar.create ~rows:2 ~cols:2 in
  Cnfet.Crossbar.connect x ~row:0 ~col:1;
  Cnfet.Crossbar.connect x ~row:1 ~col:0;
  for m = 0 to 7 do
    let inputs = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
    let s1 = Pla.eval stage1 inputs in
    let routed =
      Array.init 2 (fun col ->
          match
            Cnfet.Crossbar.resolve x
              ~driven:[ (Cnfet.Crossbar.Row 0, s1.(0)); (Cnfet.Crossbar.Row 1, s1.(1)) ]
              (Cnfet.Crossbar.Col col)
          with
          | Cnfet.Crossbar.Driven b -> b
          | Cnfet.Crossbar.Conflict | Cnfet.Crossbar.Floating ->
            Alcotest.fail "crossbar must deliver a clean value")
    in
    let s2 = Pla.eval stage2 routed in
    let expect = (inputs.(0) && inputs.(1)) || inputs.(1) <> inputs.(2) in
    checkb (Printf.sprintf "cascade pattern %d" m) expect s2.(0)
  done

(* Pipeline 4: defect injection on a mapped benchmark, repair, and
   functional verification through the defects. *)
let test_defect_repair_pipeline () =
  let f = Mcnc.Generators.comparator ~bits:2 in
  let pla = Pla.of_minimized f in
  let rng = Util.Rng.create 77 in
  let repaired = ref 0 and functional = ref 0 in
  for _ = 1 to 25 do
    match Fault.Yield.functional_check rng pla f ~defect_rate:0.03 ~spare_rows:2 with
    | Some ok ->
      incr repaired;
      if ok then incr functional
    | None -> ()
  done;
  checkb "most trials repaired" true (!repaired > 12);
  checki "every repair functional" !repaired !functional

(* Pipeline 5: WPLA against plain PLA on a phase-asymmetric function:
   both implement the function; the WPLA uses no more products. *)
let test_wpla_vs_pla () =
  let f =
    Expr.to_cover_multi ~n_in:5
      [ Expr.(Or [ v 0; v 1; v 2; v 3; v 4 ]); Expr.(And [ v 0; v 1 ]) ]
  in
  let pla = Pla.of_minimized f in
  let wpla = Cnfet.Wpla.of_function f in
  checkb "pla correct" true (Pla.verify_against pla f);
  checkb "wpla correct" true (Cnfet.Wpla.verify_against wpla f);
  checkb "wpla no more products" true (Cnfet.Wpla.products wpla <= Pla.num_products pla)

(* Pipeline 6: the end-to-end Table 1 pipeline on a synthetic twin:
   synthesize → minimize → map → measure areas in all three technologies,
   then check the orderings the paper claims. *)
let test_table1_pipeline_shape () =
  let rng = Util.Rng.create 2008 in
  let r = Mcnc.Synthetic.with_profile rng Mcnc.Profiles.max46 in
  let profile = Cnfet.Area.profile_of_cover r.Mcnc.Synthetic.minimized in
  let flash = Cnfet.Area.pla_area Device.Tech.flash profile in
  let eeprom = Cnfet.Area.pla_area Device.Tech.eeprom profile in
  let cnfet = Cnfet.Area.pla_area Device.Tech.cnfet profile in
  checkb "CNFET < EEPROM always" true (cnfet < eeprom);
  checkb "CNFET < Flash on the input-rich max46 shape" true (cnfet < flash)

(* Pipeline 7: an FSM synthesized, its PLA programmed through the physical
   select network, rebuilt from the readback, and run cycle-accurately. *)
let test_fsm_through_physical_programming () =
  let spec = Cnfet.Fsm.sequence_detector ~pattern:[ true; false; true ] in
  let fsm = Cnfet.Fsm.synthesize spec in
  let pla = Cnfet.Fsm.pla fsm in
  let reprogram plane =
    let hw =
      Cnfet.Program_hw.build ~rows:(Plane.rows plane) ~cols:(Plane.cols plane) ()
    in
    Cnfet.Program_hw.program_plane hw plane;
    checkb "physical programming verified" true (Cnfet.Program_hw.verify hw plane);
    Cnfet.Program_hw.readback hw
  in
  let rebuilt =
    Pla.of_planes ~n_in:(Pla.num_inputs pla) ~n_out:(Pla.num_outputs pla)
      ~and_plane:(reprogram (Pla.and_plane pla))
      ~or_plane:(reprogram (Pla.or_plane pla))
      ~inverted_outputs:
        (Array.init (Pla.num_outputs pla) (fun o -> not (Pla.output_inverted pla o)))
  in
  (* Drive the rebuilt combinational core as the FSM for a stimulus. *)
  let regs = ref (Cnfet.Fsm.reset_vector fsm) in
  let state_bits = Cnfet.Fsm.state_bits fsm in
  let stim = [ true; false; true; false; true; true; false; true ] in
  let outs =
    List.map
      (fun b ->
        let all = Array.append [| b |] !regs in
        let o = Pla.eval rebuilt all in
        regs := Array.sub o 0 state_bits;
        o.(state_bits))
      stim
  in
  Alcotest.check (Alcotest.list Alcotest.bool) "detector trace survives programming"
    [ false; false; true; false; true; false; false; true ]
    outs

(* Pipeline 8: minimize -> factor -> NOR cascade -> BLIF -> parse -> still
   the same function. *)
let test_factor_cascade_blif_roundtrip () =
  let f = Espresso.Minimize.cover (Mcnc.Generators.gray ~bits:4) in
  let exprs = Espresso.Factor.factor_multi f in
  let net = Cnfet.Cascade.network_of_factored ~n_in:4 exprs in
  (* Export the NOR network as BLIF: every node is a single-row table. *)
  let signal_of = function
    | Cnfet.Cascade.Pi i -> Printf.sprintf "x%d" i
    | Cnfet.Cascade.Node j -> Printf.sprintf "n%d" j
  in
  let out1 = Util.Bitvec.of_list 1 [ 0 ] in
  let node_table k fanins =
    (* NOR: output 1 exactly when every fanin contribution is 0, i.e. a
       single row where a non-inverted fanin must be 0 and an inverted one
       must be 1. *)
    let lits =
      List.map (fun (_, inv) -> if inv then Logic.Cube.One else Logic.Cube.Zero) fanins
    in
    let cover =
      Cover.make ~n_in:(List.length fanins) ~n_out:1
        [ Logic.Cube.of_literals lits ~outs:out1 ]
    in
    ( Printf.sprintf "n%d" k,
      cover,
      Array.of_list (List.map (fun (s, _) -> signal_of s) fanins) )
  in
  let buffer s = Cover.make ~n_in:1 ~n_out:1 [ Logic.Cube.of_literals [ Logic.Cube.One ] ~outs:out1 ] |> fun c -> (s, c) in
  let tables =
    List.mapi node_table (Array.to_list net.Cnfet.Cascade.nodes)
    @ List.mapi
        (fun o s ->
          let name, cover = buffer (Printf.sprintf "y%d" o) in
          (name, cover, [| signal_of s |]))
        (Array.to_list net.Cnfet.Cascade.outputs)
  in
  let blif =
    {
      Logic.Blif.name = "gray4_nor";
      inputs = Array.init 4 (Printf.sprintf "x%d");
      outputs = Array.init 4 (Printf.sprintf "y%d");
      tables;
    }
  in
  let parsed = Logic.Blif.parse (Logic.Blif.to_string blif) in
  checkb "NOR-network BLIF equals source" true
    (Cover.equivalent f (Logic.Blif.to_cover parsed))

(* Pipeline 9: technology mapping -> placement -> routing -> timing is
   self-consistent: the critical path is at least depth × CLB delay and
   every criticality is realized by some connection. *)
let test_map_place_route_time () =
  let f = Mcnc.Generators.rd ~n:7 in
  let mapped = Fpga.Map.map_cover ~clb_inputs:4 f in
  let d = Fpga.Map.to_design mapped in
  let a = Fpga.Arch.cnfet ~grid:6 in
  let p = Fpga.Place.place (Util.Rng.create 12) a d in
  let r = Fpga.Route.route ~share_nets:true p in
  checki "routes clean" 0 r.Fpga.Route.overflow;
  let t = Fpga.Timing.analyze p r in
  checkb "critical ≥ levels × clb" true
    (t.Fpga.Timing.critical_path
    >= float_of_int (Fpga.Map.levels mapped) *. a.Fpga.Arch.clb_delay);
  checkb "finite frequency" true (Float.is_finite t.Fpga.Timing.frequency_hz)

(* Pipeline 10: a 17-input synthetic twin end to end with the BDD oracle
   (beyond truth-table scale). *)
let test_t2_scale_end_to_end () =
  let r = Mcnc.Synthetic.with_profile (Util.Rng.create 7) Mcnc.Profiles.t2 in
  let minimized = r.Mcnc.Synthetic.minimized in
  checkb "minimizer correct at 17 inputs" true
    (Logic.Bdd.equivalent_covers r.Mcnc.Synthetic.on_set minimized);
  let pla = Pla.of_cover minimized in
  checki "single column per input" 17 (Cnfet.Plane.cols (Pla.and_plane pla));
  let profile = Cnfet.Area.profile_of_pla pla in
  checkb "CNFET beats EEPROM here too" true
    (Cnfet.Area.pla_area Device.Tech.cnfet profile
    < Cnfet.Area.pla_area Device.Tech.eeprom profile)

(* Pipeline 11: an FSM clocked through the switch-level transistor network
   — the combinational core simulated with pre-charge/evaluate phases at
   every step. *)
let test_fsm_switch_level_cycles () =
  let spec = Cnfet.Fsm.counter ~modulo:4 in
  let fsm = Cnfet.Fsm.synthesize spec in
  let pla = Cnfet.Fsm.pla fsm in
  let hw = Pla.build_hw pla in
  let state_bits = Cnfet.Fsm.state_bits fsm in
  let regs = ref (Cnfet.Fsm.reset_vector fsm) in
  let counts = ref [] in
  for _ = 1 to 6 do
    let all = Array.append [| true |] !regs in
    let outs = Pla.simulate_hw hw all in
    regs := Array.sub outs 0 state_bits;
    let v = ref 0 in
    Array.iteri (fun b bit -> if bit then v := !v lor (1 lsl b))
      (Array.sub outs state_bits (Array.length outs - state_bits));
    counts := !v :: !counts
  done;
  Alcotest.check (Alcotest.list Alcotest.int) "transistor-level counting"
    [ 0; 1; 2; 3; 0; 1 ] (List.rev !counts)

(* Pipeline 12: determinism of a full flow — same seed, same results. *)
let test_flow_determinism () =
  let run seed =
    let rng = Util.Rng.create seed in
    let f = Cover.random rng ~n_in:5 ~n_out:2 ~n_cubes:10 ~dc_bias:0.4 in
    let m = Espresso.Minimize.cover f in
    let pla = Pla.of_cover m in
    (Cover.size m, Pla.num_products pla, Cover.literal_total m)
  in
  checkb "deterministic" true (run 9 = run 9);
  checkb "seed-sensitive" true (run 9 <> run 10)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "pla text to silicon" `Quick test_pla_text_to_silicon;
          Alcotest.test_case "benchmark to area" `Quick test_benchmark_to_area;
          Alcotest.test_case "PLA-crossbar cascade (Fig. 3)" `Quick test_pla_crossbar_cascade;
          Alcotest.test_case "defect repair pipeline" `Quick test_defect_repair_pipeline;
          Alcotest.test_case "wpla vs pla" `Quick test_wpla_vs_pla;
          Alcotest.test_case "table 1 pipeline shape" `Quick test_table1_pipeline_shape;
          Alcotest.test_case "fsm through physical programming" `Quick
            test_fsm_through_physical_programming;
          Alcotest.test_case "factor-cascade-blif roundtrip" `Quick
            test_factor_cascade_blif_roundtrip;
          Alcotest.test_case "map-place-route-time" `Quick test_map_place_route_time;
          Alcotest.test_case "t2-scale end to end" `Quick test_t2_scale_end_to_end;
          Alcotest.test_case "fsm at switch level" `Quick test_fsm_switch_level_cycles;
          Alcotest.test_case "determinism" `Quick test_flow_determinism;
        ] );
    ]
