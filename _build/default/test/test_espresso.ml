(* Tests for the espresso library: minimization correctness and quality,
   the exact QM oracle, output-phase optimization, Doppio-Espresso. *)

module Cover = Logic.Cover
module Cube = Logic.Cube
module Tt = Logic.Truth_table
module Expr = Logic.Expr
module Min = Espresso.Minimize

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let equiv a b = Tt.equal (Tt.of_cover a) (Tt.of_cover b)

let cover_of_exprs n_in exprs = Expr.to_cover_multi ~n_in exprs

(* --- minimize: correctness ------------------------------------------------ *)

let test_minimize_preserves_random () =
  let rng = Util.Rng.create 101 in
  for _ = 1 to 40 do
    let n_in = 2 + Util.Rng.int rng 6 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(1 + Util.Rng.int rng 20) ~dc_bias:0.4 in
    let m = Min.cover f in
    checkb "equivalent" true (equiv f m);
    checkb "not larger" true (Cover.size m <= Cover.size f)
  done

let test_minimize_with_dc () =
  (* f = x0 x1 on-set, dc = x0 x1'; the minimizer may expand to x0. *)
  let n_in = 2 in
  let on = Expr.to_cover ~n_in Expr.(v 0 && v 1) in
  let dc = Expr.to_cover ~n_in Expr.(v 0 && not_ (v 1)) in
  let m = Min.cover ~dc on in
  checki "single product" 1 (Cover.size m);
  checki "single literal" 1 (Cover.literal_total m);
  (* Verify under dc semantics. *)
  checkb "verify" true (Min.verify ~dc ~original:on m)

let test_minimize_empty () =
  let f = Cover.empty ~n_in:3 ~n_out:2 in
  let m = Min.minimize f in
  checki "still empty" 0 (Cover.size m.Min.cover)

let test_minimize_constant_one () =
  let f = Expr.to_cover ~n_in:3 (Expr.Const true) in
  let m = Min.cover f in
  checki "one cube" 1 (Cover.size m);
  checki "no literals" 0 (Cover.literal_total m)

let test_minimize_redundant_input () =
  (* f = x0 x1 + x0 x1' = x0 *)
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1 || (v 0 && not_ (v 1))) ] in
  let m = Min.cover f in
  checki "merged to one cube" 1 (Cover.size m);
  checki "one literal" 1 (Cover.literal_total m)

let test_minimize_result_metadata () =
  let rng = Util.Rng.create 7 in
  let f = Cover.random rng ~n_in:5 ~n_out:2 ~n_cubes:15 ~dc_bias:0.4 in
  let r = Min.minimize f in
  let c0, l0 = r.Min.initial_cost and c1, l1 = r.Min.final_cost in
  checki "initial cubes" (Cover.size f) c0;
  checki "final cubes" (Cover.size r.Min.cover) c1;
  checkb "literals recorded" true (l0 >= 0 && l1 >= 0);
  checkb "iterations non-negative" true (r.Min.iterations >= 0)

(* --- minimize: quality (known optima) ------------------------------------- *)

let test_known_optima () =
  let cases =
    [
      ("maj3", cover_of_exprs 3 [ Expr.(majority3 (v 0) (v 1) (v 2)) ], 3);
      ("xor2", cover_of_exprs 2 [ Expr.(v 0 ^^ v 1) ], 2);
      ("xor3", cover_of_exprs 3 [ Expr.(parity [ v 0; v 1; v 2 ]) ], 4);
      ("xor4", cover_of_exprs 4 [ Expr.(parity [ v 0; v 1; v 2; v 3 ]) ], 8);
      ("and4", cover_of_exprs 4 [ Expr.(And [ v 0; v 1; v 2; v 3 ]) ], 1);
      ("or4", cover_of_exprs 4 [ Expr.(Or [ v 0; v 1; v 2; v 3 ]) ], 4);
      ("mux2", cover_of_exprs 3 [ Expr.(mux ~sel:(v 0) (v 1) (v 2)) ], 2);
    ]
  in
  List.iter
    (fun (name, f, optimum) ->
      let m = Min.cover f in
      Alcotest.check Alcotest.int (name ^ " product count") optimum (Cover.size m);
      checkb (name ^ " equivalent") true (equiv f m))
    cases

let test_primality () =
  (* Every cube of the result must be prime: raising any literal must leave
     the on-set. *)
  let rng = Util.Rng.create 55 in
  for _ = 1 to 15 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(3 + Util.Rng.int rng 10) ~dc_bias:0.35 in
    let m = Min.cover f in
    List.iter
      (fun c ->
        for i = 0 to n_in - 1 do
          if Cube.get c i <> Cube.Dc then begin
            let raised = Cube.set c i Cube.Dc in
            checkb "raised cube exceeds f" false (Cover.covers_cube f raised)
          end
        done)
      (Cover.cubes m)
  done

let test_irredundancy () =
  let rng = Util.Rng.create 77 in
  for _ = 1 to 15 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(3 + Util.Rng.int rng 10) ~dc_bias:0.35 in
    let m = Min.cover f in
    let cubes = Cover.cubes m in
    List.iteri
      (fun k c ->
        let others = List.filteri (fun j _ -> j <> k) cubes in
        let rest = Cover.make ~n_in ~n_out:1 others in
        checkb "cube is needed" false (Cover.covers_cube rest c))
      cubes
  done

let test_matches_qm_optimum_single_output () =
  (* On single-output functions espresso should stay close to the exact
     optimum; require it to match on these small random instances. *)
  let rng = Util.Rng.create 202 in
  let total_gap = ref 0 in
  for _ = 1 to 20 do
    let n_in = 3 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(2 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    if not (Cover.is_empty f) then begin
      let exact = Espresso.Qm.minimum_size f in
      let heur = Cover.size (Min.cover f) in
      checkb "heuristic >= exact" true (heur >= exact);
      total_gap := !total_gap + (heur - exact)
    end
  done;
  checkb "average gap small (≤ 3 total over 20 runs)" true (!total_gap <= 3)

(* --- expand / irredundant / reduce as standalone passes -------------------- *)

let test_expand_against_offset () =
  let n_in = 2 in
  let f = Expr.to_cover ~n_in Expr.(v 0 && v 1) in
  let offset = Cover.complement f in
  let e = Min.expand f ~offset in
  checkb "expansion equivalent" true (equiv f e);
  (* x0 x1 is already prime against its own complement. *)
  checki "still one cube" 1 (Cover.size e)

let test_expand_grows_with_dc_offset () =
  let n_in = 2 in
  let on = Expr.to_cover ~n_in Expr.(v 0 && v 1) in
  let dc = Expr.to_cover ~n_in Expr.(v 0 && not_ (v 1)) in
  let offset = Cover.complement (Cover.union on dc) in
  let e = Min.expand on ~offset in
  checki "literal dropped" 1 (Cover.literal_total e)

let test_irredundant_removes () =
  let n_in = 2 in
  (* x0 + x1 + x0x1: the last cube is redundant. *)
  let f =
    Cover.make ~n_in ~n_out:1
      (Cover.cubes (Expr.to_cover ~n_in Expr.(v 0))
      @ Cover.cubes (Expr.to_cover ~n_in Expr.(v 1))
      @ Cover.cubes (Expr.to_cover ~n_in Expr.(v 0 && v 1)))
  in
  let r = Min.irredundant f in
  checki "redundant cube dropped" 2 (Cover.size r);
  checkb "equivalent" true (equiv f r)

let test_reduce_preserves () =
  let rng = Util.Rng.create 303 in
  for _ = 1 to 15 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(2 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let r = Min.reduce f in
    checkb "reduce preserves function" true (equiv f r)
  done

let test_irredundant_minimal () =
  let rng = Util.Rng.create 404 in
  for _ = 1 to 15 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:2 ~n_cubes:(3 + Util.Rng.int rng 10) ~dc_bias:0.4 in
    let greedy = Min.irredundant f in
    let minimal = Min.irredundant_minimal f in
    checkb "minimal ≤ greedy" true (Cover.size minimal <= Cover.size greedy);
    checkb "minimal preserves function" true (equiv f minimal);
    (* result uses only cubes of f *)
    List.iter
      (fun c ->
        checkb "cube from original" true
          (List.exists (Cube.equal c) (Cover.cubes f)))
      (Cover.cubes minimal)
  done;
  checkb "rejects large inputs" true
    (try
       ignore
         (Min.irredundant_minimal
            (Cover.random rng ~n_in:13 ~n_out:1 ~n_cubes:2 ~dc_bias:0.5));
       false
     with Invalid_argument _ -> true)

(* qcheck: minimization preserves any random cover. *)
let prop_minimize_preserves =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 6 in
      let* n_out = int_range 1 3 in
      let* n_cubes = int_range 0 12 in
      let* seed = int_bound 1_000_000 in
      return (Cover.random (Util.Rng.create seed) ~n_in ~n_out ~n_cubes ~dc_bias:0.4))
  in
  QCheck.Test.make ~name:"espresso preserves any cover" ~count:100
    (QCheck.make ~print:Cover.to_string gen) (fun f ->
      equiv f (Min.cover f) && Cover.size (Min.cover f) <= Cover.size f)

let prop_factor_preserves =
  let gen =
    QCheck.Gen.(
      let* n_in = int_range 1 6 in
      let* n_cubes = int_range 0 10 in
      let* seed = int_bound 1_000_000 in
      return (Cover.random (Util.Rng.create seed) ~n_in ~n_out:1 ~n_cubes ~dc_bias:0.4))
  in
  QCheck.Test.make ~name:"factoring preserves any cover" ~count:100
    (QCheck.make ~print:Cover.to_string gen) (fun f ->
      Espresso.Factor.verify f [| Espresso.Factor.factor f |])

let test_essentials_split () =
  let n_in = 2 in
  (* x0 + x1: both cubes relatively essential. *)
  let f = cover_of_exprs n_in [ Expr.(v 0 || v 1) ] in
  let ess, rest = Min.essentials f in
  checki "both essential" 2 (Cover.size ess);
  checki "none left" 0 (Cover.size rest)

(* --- verify ---------------------------------------------------------------- *)

let test_verify_detects_wrong () =
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let wrong = cover_of_exprs 2 [ Expr.(v 0) ] in
  checkb "verify rejects over-approximation" false (Min.verify ~original:f wrong);
  checkb "verify accepts identity" true (Min.verify ~original:f f)

(* --- minimize_harder --------------------------------------------------------- *)

let test_harder_never_worse () =
  let rng = Util.Rng.create 909 in
  for _ = 1 to 15 do
    let n_in = 3 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(3 + Util.Rng.int rng 15) ~dc_bias:0.4 in
    let base = Min.minimize f in
    let harder = Min.minimize_harder f in
    checkb "still equivalent" true (equiv f harder.Min.cover);
    checkb "not worse" true (harder.Min.final_cost <= base.Min.final_cost)
  done

let test_harder_known_optima_stable () =
  (* On functions where plain espresso already hits the optimum, the gasp
     rounds must not change the product count. *)
  let maj = cover_of_exprs 3 [ Expr.(majority3 (v 0) (v 1) (v 2)) ] in
  checki "maj3 stays 3" 3 (Cover.size (Min.minimize_harder maj).Min.cover);
  let x5 = cover_of_exprs 5 [ Expr.(parity [ v 0; v 1; v 2; v 3; v 4 ]) ] in
  checki "xor5 stays 16" 16 (Cover.size (Min.minimize_harder x5).Min.cover)

let test_harder_empty () =
  let f = Cover.empty ~n_in:3 ~n_out:1 in
  checki "empty stays empty" 0 (Cover.size (Min.minimize_harder f).Min.cover)

(* --- Qm -------------------------------------------------------------------- *)

let test_qm_primes_xor () =
  let f = cover_of_exprs 3 [ Expr.(parity [ v 0; v 1; v 2 ]) ] in
  let primes = Espresso.Qm.prime_implicants f in
  (* Parity has no merging: the primes are the 4 on-minterms. *)
  checki "xor3 primes" 4 (Cover.size primes)

let test_qm_primes_and_or () =
  let f = cover_of_exprs 2 [ Expr.(v 0 || v 1) ] in
  let primes = Espresso.Qm.prime_implicants f in
  checki "x0+x1 has 2 primes" 2 (Cover.size primes)

let test_qm_minimize_equivalent () =
  let rng = Util.Rng.create 404 in
  for _ = 1 to 15 do
    let n_in = 2 + Util.Rng.int rng 4 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(1 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    let m = Espresso.Qm.minimize f in
    checkb "qm result equivalent" true (equiv f m)
  done

let test_qm_with_dc () =
  let on = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let dc = cover_of_exprs 2 [ Expr.(v 0 && not_ (v 1)) ] in
  let m = Espresso.Qm.minimize ~dc on in
  checki "dc enables single literal cover" 1 (Cover.size m);
  checki "one literal" 1 (Cover.literal_total m)

let test_qm_rejects_multi_output () =
  let f = cover_of_exprs 2 [ Expr.(v 0); Expr.(v 1) ] in
  Alcotest.check_raises "single output only" (Invalid_argument "Qm: single-output only")
    (fun () -> ignore (Espresso.Qm.minimize f))

(* --- Exact (multi-output) ------------------------------------------------------ *)

let test_exact_single_output_matches_qm () =
  let rng = Util.Rng.create 1101 in
  for _ = 1 to 10 do
    let n_in = 3 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(2 + Util.Rng.int rng 5) ~dc_bias:0.4 in
    if not (Cover.is_empty f) then
      checki "exact == qm on single output" (Espresso.Qm.minimum_size f)
        (Espresso.Exact.minimum_cubes f)
  done

let test_exact_correct_and_bounds_heuristic () =
  let rng = Util.Rng.create 1102 in
  for _ = 1 to 12 do
    let n_in = 3 + Util.Rng.int rng 2 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(2 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    if not (Cover.is_empty f) then begin
      let exact = Espresso.Exact.minimize f in
      checkb "exact equivalent" true (Logic.Bdd.equivalent_covers f exact);
      checkb "exact lower-bounds espresso" true
        (Cover.size exact <= Cover.size (Min.cover f))
    end
  done

let test_exact_output_sharing () =
  (* Identical outputs must share one cube. *)
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1); Expr.(v 0 && v 1) ] in
  checki "one shared cube" 1 (Espresso.Exact.minimum_cubes f)

let test_exact_with_dc () =
  let on = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let dc = cover_of_exprs 2 [ Expr.(v 0 && not_ (v 1)) ] in
  let m = Espresso.Exact.minimize ~dc on in
  checki "dc exploited" 1 (Cover.size m);
  checki "one literal" 1 (Cover.literal_total m)

let test_exact_rejects_large () =
  let f = Cover.random (Util.Rng.create 1) ~n_in:11 ~n_out:1 ~n_cubes:3 ~dc_bias:0.5 in
  checkb "rejects 11 inputs" true
    (try
       ignore (Espresso.Exact.minimize f);
       false
     with Invalid_argument _ -> true)

(* --- Factor ------------------------------------------------------------------ *)

let test_factor_simple_shapes () =
  (* x0 x1 + x0 x2 factors as x0 (x1 + x2): 3 literals instead of 4. *)
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1 || (v 0 && v 2)) ] in
  let m = Min.cover f in
  let e = Espresso.Factor.factor m in
  checkb "verified" true (Espresso.Factor.verify m [| e |]);
  checki "3 literals" 3 (Espresso.Factor.literal_count e);
  checki "flat has 4" 4 (Espresso.Factor.flat_literal_count m)

let test_factor_constants () =
  let one = Expr.to_cover ~n_in:2 (Expr.Const true) in
  checkb "constant 1" true (Espresso.Factor.factor one = Espresso.Factor.And []);
  let zero = Logic.Cover.empty ~n_in:2 ~n_out:1 in
  checkb "constant 0" true (Espresso.Factor.factor zero = Espresso.Factor.Or [])

let test_factor_single_literal () =
  let f = Expr.to_cover ~n_in:3 (Expr.v 1) in
  checkb "bare literal" true (Espresso.Factor.factor f = Espresso.Factor.Lit (1, true))

let test_factor_verify_suite () =
  let rng = Util.Rng.create 1001 in
  for _ = 1 to 25 do
    let n_in = 3 + Util.Rng.int rng 4 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(2 + Util.Rng.int rng 12) ~dc_bias:0.4 in
    let m = Min.cover f in
    let exprs = Espresso.Factor.factor_multi m in
    checkb "factored ≡ cover" true (Espresso.Factor.verify m exprs)
  done

let test_factor_never_inflates_much () =
  (* Single-output factoring never has more literals than the flat form. *)
  let rng = Util.Rng.create 1002 in
  for _ = 1 to 20 do
    let n_in = 3 + Util.Rng.int rng 4 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(2 + Util.Rng.int rng 12) ~dc_bias:0.4 in
    let m = Min.cover f in
    let e = Espresso.Factor.factor m in
    checkb "no literal inflation" true
      (Espresso.Factor.literal_count e <= Espresso.Factor.flat_literal_count m)
  done

let test_factor_no_complementary_pairs () =
  (* The simplifier must remove x + x' artifacts (they break plane
     mapping). *)
  let rec clean e =
    match e with
    | Espresso.Factor.Lit _ -> true
    | Espresso.Factor.And es | Espresso.Factor.Or es ->
      let lits =
        List.filter_map (function Espresso.Factor.Lit (i, p) -> Some (i, p) | _ -> None) es
      in
      List.for_all (fun (i, p) -> not (List.mem (i, not p) lits)) lits
      && List.for_all clean es
  in
  let rng = Util.Rng.create 1003 in
  for _ = 1 to 20 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out:1 ~n_cubes:(2 + Util.Rng.int rng 10) ~dc_bias:0.4 in
    checkb "no complementary literal pairs" true (clean (Espresso.Factor.factor (Min.cover f)))
  done

let test_factor_to_string () =
  let f = cover_of_exprs 2 [ Expr.(v 0 && not_ (v 1)) ] in
  Alcotest.check Alcotest.string "rendering" "x0x1'"
    (Espresso.Factor.to_string (Espresso.Factor.factor f))

(* --- Phase ------------------------------------------------------------------ *)

let test_phase_apply_identity () =
  let f = cover_of_exprs 3 [ Expr.(v 0 && v 1); Expr.(v 1 || v 2) ] in
  let same = Espresso.Phase.apply_phases f [| true; true |] in
  checkb "all-positive is identity" true (equiv f same)

let test_phase_apply_inverts () =
  let f = cover_of_exprs 2 [ Expr.(v 0 && v 1) ] in
  let neg = Espresso.Phase.apply_phases f [| false |] in
  let expect = cover_of_exprs 2 [ Expr.(not_ (v 0 && v 1)) ] in
  checkb "negative phase is complement" true (equiv neg expect)

let test_phase_optimize_finds_gain () =
  (* An OR of many literals is 1 product when inverted (NOR): the optimizer
     must choose the negative phase. *)
  let f = cover_of_exprs 4 [ Expr.(Or [ v 0; v 1; v 2; v 3 ]) ] in
  let r = Espresso.Phase.optimize f in
  checki "all-positive baseline" 4 r.Espresso.Phase.products_all_positive;
  checki "optimized" 1 r.Espresso.Phase.products_optimized;
  checkb "chose negative phase" false r.Espresso.Phase.phases.(0)

let test_phase_optimize_never_worse () =
  let rng = Util.Rng.create 505 in
  for _ = 1 to 10 do
    let n_in = 3 + Util.Rng.int rng 3 in
    let n_out = 1 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(2 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let r = Espresso.Phase.optimize f in
    checkb "no regression" true
      (r.Espresso.Phase.products_optimized <= r.Espresso.Phase.products_all_positive)
  done

let test_phase_exhaustive_bounds_greedy () =
  let rng = Util.Rng.create 606 in
  for _ = 1 to 8 do
    let n_in = 3 + Util.Rng.int rng 2 in
    let n_out = 1 + Util.Rng.int rng 3 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(2 + Util.Rng.int rng 8) ~dc_bias:0.4 in
    let greedy = Espresso.Phase.optimize f in
    let best = Espresso.Phase.optimize_exhaustive f in
    checkb "exhaustive ≤ greedy" true
      (best.Espresso.Phase.products_optimized <= greedy.Espresso.Phase.products_optimized)
  done

let test_phase_optimize_respects_function () =
  let f = cover_of_exprs 3 [ Expr.(Or [ v 0; v 1 ]); Expr.(v 1 && v 2) ] in
  let r = Espresso.Phase.optimize f in
  (* Rebuild each output from the phase-assigned cover and compare. *)
  let tt_f = Tt.of_cover f in
  let tt_c = Tt.of_cover r.Espresso.Phase.cover in
  let ok = ref true in
  for m = 0 to 7 do
    for o = 0 to 1 do
      let want = Tt.get tt_f ~minterm:m ~output:o in
      let got = Tt.get tt_c ~minterm:m ~output:o in
      let got = if r.Espresso.Phase.phases.(o) then got else not got in
      if want <> got then ok := false
    done
  done;
  checkb "phase-assigned cover encodes f" true !ok

(* --- Doppio ------------------------------------------------------------------ *)

let test_doppio_polarity_choice () =
  (* Output 0: OR of 4 (cheap inverted); output 1: AND (cheap positive). *)
  let f = cover_of_exprs 4 [ Expr.(Or [ v 0; v 1; v 2; v 3 ]); Expr.(v 0 && v 1) ] in
  let d = Espresso.Doppio.minimize f in
  checkb "output 0 negative" false d.Espresso.Doppio.choice.(0);
  checkb "output 1 positive" true d.Espresso.Doppio.choice.(1);
  checkb "whirlpool never worse" true
    (d.Espresso.Doppio.products_whirlpool <= d.Espresso.Doppio.products_two_level + 1)

let test_doppio_covers_correct () =
  let rng = Util.Rng.create 606 in
  for _ = 1 to 10 do
    let n_in = 3 + Util.Rng.int rng 2 in
    let n_out = 1 + Util.Rng.int rng 2 in
    let f = Cover.random rng ~n_in ~n_out ~n_cubes:(2 + Util.Rng.int rng 6) ~dc_bias:0.4 in
    let d = Espresso.Doppio.minimize f in
    checkb "positive cover ≡ f" true (equiv f d.Espresso.Doppio.positive);
    (* negative must be the complement per output *)
    let tt_f = Tt.of_cover f and tt_n = Tt.of_cover d.Espresso.Doppio.negative in
    let ok = ref true in
    for m = 0 to (1 lsl n_in) - 1 do
      for o = 0 to n_out - 1 do
        if Tt.get tt_f ~minterm:m ~output:o = Tt.get tt_n ~minterm:m ~output:o then ok := false
      done
    done;
    checkb "negative ≡ ¬f" true !ok
  done

let () =
  Alcotest.run "espresso"
    [
      ( "minimize-correctness",
        [
          Alcotest.test_case "random functions preserved" `Quick test_minimize_preserves_random;
          Alcotest.test_case "don't-cares exploited" `Quick test_minimize_with_dc;
          Alcotest.test_case "empty cover" `Quick test_minimize_empty;
          Alcotest.test_case "constant one" `Quick test_minimize_constant_one;
          Alcotest.test_case "redundant input merged" `Quick test_minimize_redundant_input;
          Alcotest.test_case "result metadata" `Quick test_minimize_result_metadata;
        ] );
      ( "minimize-quality",
        [
          Alcotest.test_case "known optima" `Quick test_known_optima;
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "irredundancy" `Quick test_irredundancy;
          Alcotest.test_case "near QM optimum" `Quick test_matches_qm_optimum_single_output;
        ] );
      ( "passes",
        [
          Alcotest.test_case "expand vs offset" `Quick test_expand_against_offset;
          Alcotest.test_case "expand uses dc space" `Quick test_expand_grows_with_dc_offset;
          Alcotest.test_case "irredundant removes" `Quick test_irredundant_removes;
          Alcotest.test_case "reduce preserves" `Quick test_reduce_preserves;
          Alcotest.test_case "essentials split" `Quick test_essentials_split;
          Alcotest.test_case "minimal irredundant" `Quick test_irredundant_minimal;
          Alcotest.test_case "verify detects wrong result" `Quick test_verify_detects_wrong;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_minimize_preserves;
          QCheck_alcotest.to_alcotest prop_factor_preserves;
        ] );
      ( "minimize-harder",
        [
          Alcotest.test_case "never worse" `Quick test_harder_never_worse;
          Alcotest.test_case "optima stable" `Quick test_harder_known_optima_stable;
          Alcotest.test_case "empty" `Quick test_harder_empty;
        ] );
      ( "qm",
        [
          Alcotest.test_case "xor primes" `Quick test_qm_primes_xor;
          Alcotest.test_case "or primes" `Quick test_qm_primes_and_or;
          Alcotest.test_case "minimize equivalent" `Quick test_qm_minimize_equivalent;
          Alcotest.test_case "with dc" `Quick test_qm_with_dc;
          Alcotest.test_case "rejects multi-output" `Quick test_qm_rejects_multi_output;
        ] );
      ( "exact",
        [
          Alcotest.test_case "matches QM single-output" `Quick
            test_exact_single_output_matches_qm;
          Alcotest.test_case "correct + bounds heuristic" `Quick
            test_exact_correct_and_bounds_heuristic;
          Alcotest.test_case "output sharing" `Quick test_exact_output_sharing;
          Alcotest.test_case "with dc" `Quick test_exact_with_dc;
          Alcotest.test_case "rejects large" `Quick test_exact_rejects_large;
        ] );
      ( "factor",
        [
          Alcotest.test_case "simple shapes" `Quick test_factor_simple_shapes;
          Alcotest.test_case "constants" `Quick test_factor_constants;
          Alcotest.test_case "single literal" `Quick test_factor_single_literal;
          Alcotest.test_case "verify (random)" `Quick test_factor_verify_suite;
          Alcotest.test_case "never inflates" `Quick test_factor_never_inflates_much;
          Alcotest.test_case "no complementary pairs" `Quick test_factor_no_complementary_pairs;
          Alcotest.test_case "rendering" `Quick test_factor_to_string;
        ] );
      ( "phase",
        [
          Alcotest.test_case "apply identity" `Quick test_phase_apply_identity;
          Alcotest.test_case "apply inverts" `Quick test_phase_apply_inverts;
          Alcotest.test_case "finds gain on NOR shape" `Quick test_phase_optimize_finds_gain;
          Alcotest.test_case "never worse" `Quick test_phase_optimize_never_worse;
          Alcotest.test_case "exhaustive bounds greedy" `Quick
            test_phase_exhaustive_bounds_greedy;
          Alcotest.test_case "respects function" `Quick test_phase_optimize_respects_function;
        ] );
      ( "doppio",
        [
          Alcotest.test_case "polarity choice" `Quick test_doppio_polarity_choice;
          Alcotest.test_case "covers correct" `Quick test_doppio_covers_correct;
        ] );
    ]
