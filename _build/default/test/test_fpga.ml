(* Tests for the FPGA substrate: architecture derivation, design
   generation and inverter absorption, placement, routing, timing. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Arch -------------------------------------------------------------------- *)

let test_arch_standard () =
  let a = Fpga.Arch.standard ~grid:10 in
  checki "sites" 100 (Fpga.Arch.sites a);
  checki "two wires per connection" 2 a.Fpga.Arch.wires_per_connection;
  checkb "occupancy" true (Fpga.Arch.occupancy a ~used:50 = 0.5)

let test_arch_cnfet_derived () =
  let s = Fpga.Arch.standard ~grid:17 in
  let c = Fpga.Arch.cnfet ~grid:17 in
  checki "grid floor(17*sqrt2)" 24 c.Fpga.Arch.grid;
  checki "one wire per connection" 1 c.Fpga.Arch.wires_per_connection;
  checkb "pitch shrinks by sqrt2" true
    (Float.abs ((s.Fpga.Arch.clb_pitch /. c.Fpga.Arch.clb_pitch) -. sqrt 2.0) < 1e-9);
  checkb "segment RC shrinks" true
    (c.Fpga.Arch.seg_resistance < s.Fpga.Arch.seg_resistance
    && c.Fpga.Arch.seg_capacitance < s.Fpga.Arch.seg_capacitance);
  checkb "roughly double the sites" true
    (let r = float_of_int (Fpga.Arch.sites c) /. float_of_int (Fpga.Arch.sites s) in
     r > 1.85 && r <= 2.05)

let test_arch_clb_delay_asymmetry () =
  (* Classical PLA rows span 2k+m columns vs k+m: 1.75x for k=9, m=3. *)
  let s = Fpga.Arch.standard ~grid:10 and c = Fpga.Arch.cnfet ~grid:10 in
  let ratio = s.Fpga.Arch.clb_delay /. c.Fpga.Arch.clb_delay in
  checkb "1.75x slower classical CLB" true (Float.abs (ratio -. 1.75) < 1e-9)

(* --- Design ------------------------------------------------------------------- *)

let mk_design seed =
  Fpga.Design.random (Util.Rng.create seed) ~n_pi:8 ~n_blocks:60 ~fanin:4
    ~inverter_fraction:0.1 ~layers:6 ()

let test_design_valid_and_sized () =
  let d = mk_design 1 in
  checki "block count" 60 (Fpga.Design.block_count d);
  checki "depth = layers" 6 (Fpga.Design.depth d);
  checkb "has inverters" true (Fpga.Design.inverter_count d > 0);
  checkb "connections counted" true
    (Fpga.Design.connection_count d > Fpga.Design.block_count d)

let test_design_deterministic () =
  let d1 = mk_design 7 and d2 = mk_design 7 in
  checkb "same seed same design" true (d1 = d2);
  let d3 = mk_design 8 in
  checkb "different seed differs" true (d1 <> d3)

let test_design_inverter_fraction_deterministic () =
  let d1 = mk_design 1 and d2 = mk_design 99 in
  checki "stride placement independent of rng" (Fpga.Design.inverter_count d1)
    (Fpga.Design.inverter_count d2)

let test_absorb_inverters () =
  let d = mk_design 3 in
  let inv = Fpga.Design.inverter_count d in
  let a = Fpga.Design.absorb_inverters d in
  checki "all inverters gone" 0 (Fpga.Design.inverter_count a);
  checki "block count drops by inverters" (Fpga.Design.block_count d - inv)
    (Fpga.Design.block_count a);
  checkb "validates" true
    (try
       Fpga.Design.validate a;
       true
     with Invalid_argument _ -> false);
  checkb "depth does not grow" true (Fpga.Design.depth a <= Fpga.Design.depth d)

let test_absorb_inverter_chain () =
  (* PI -> inv -> inv -> block: both inverters collapse to the PI. *)
  let open Fpga.Design in
  let d =
    {
      n_pi = 1;
      blocks =
        [|
          { is_inverter = true; fanin = [| Pi 0 |] };
          { is_inverter = true; fanin = [| Block 0 |] };
          { is_inverter = false; fanin = [| Block 1; Pi 0 |] };
        |];
      pos = [| Block 2 |];
    }
  in
  validate d;
  let a = absorb_inverters d in
  checki "one block left" 1 (block_count a);
  checkb "fanin rewired to PI" true (a.blocks.(0).fanin = [| Pi 0; Pi 0 |])

let test_design_rejects_forward_reference () =
  let open Fpga.Design in
  let bad =
    { n_pi = 1; blocks = [| { is_inverter = false; fanin = [| Block 1 |] } |]; pos = [||] }
  in
  checkb "forward reference rejected" true
    (try
       validate bad;
       false
     with Invalid_argument _ -> true)

(* --- Place ----------------------------------------------------------------------- *)

let test_place_legal () =
  let d = mk_design 5 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 42) a d in
  (* All blocks inside the grid, all on distinct sites. *)
  let seen = Hashtbl.create 64 in
  for b = 0 to Fpga.Design.block_count d - 1 do
    let x, y = Fpga.Place.block_loc p b in
    checkb "inside grid" true (x >= 0 && x < 9 && y >= 0 && y < 9);
    checkb "distinct site" false (Hashtbl.mem seen (x, y));
    Hashtbl.replace seen (x, y) ()
  done

let test_place_improves_over_random () =
  (* The annealer must substantially beat the expected random wirelength. *)
  let d = mk_design 6 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 1) a d in
  let wl = Fpga.Place.total_wirelength p in
  (* Random placement on a 9-grid has mean distance ~6 per connection. *)
  let conns = Fpga.Design.connection_count d in
  checkb "beats random by a wide margin" true (wl < 5 * conns)

let test_place_rejects_oversize () =
  let d = mk_design 2 in
  let a = Fpga.Arch.standard ~grid:7 in
  (* 60 blocks on 49 sites. *)
  checkb "raises" true
    (try
       ignore (Fpga.Place.place (Util.Rng.create 1) a d);
       false
     with Invalid_argument _ -> true)

let test_place_pads_on_ring () =
  let d = mk_design 4 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 9) a d in
  for i = 0 to d.Fpga.Design.n_pi - 1 do
    let x, y = Fpga.Place.pi_loc p i in
    checkb "pad on perimeter ring" true (x = -1 || x = 9 || y = -1 || y = 9)
  done

let test_place_connections_cover_fanins () =
  let d = mk_design 8 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 2) a d in
  checki "one connection per fanin + POs" (Fpga.Design.connection_count d)
    (List.length (Fpga.Place.connections p))

(* --- Route ------------------------------------------------------------------------ *)

let routed_setup seed =
  let d = mk_design seed in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create seed) a d in
  (p, Fpga.Route.route p)

let test_route_all_connections () =
  let p, r = routed_setup 10 in
  checki "every connection routed" (List.length (Fpga.Place.connections p))
    (List.length r.Fpga.Route.routes)

let test_route_paths_connect_endpoints () =
  let p, r = routed_setup 11 in
  List.iter
    (fun routed ->
      let path = routed.Fpga.Route.path in
      let src = Fpga.Place.source_loc p routed.Fpga.Route.connection.Fpga.Place.src in
      let dst = routed.Fpga.Route.connection.Fpga.Place.dst_loc in
      checkb "starts at source" true (List.hd path = src);
      checkb "ends at sink" true (List.nth path (List.length path - 1) = dst);
      (* consecutive cells adjacent *)
      let rec adjacent = function
        | (x0, y0) :: ((x1, y1) :: _ as rest) ->
          abs (x0 - x1) + abs (y0 - y1) = 1 && adjacent rest
        | _ -> true
      in
      checkb "path is connected" true (adjacent path))
    r.Fpga.Route.routes

let test_route_converges_uncongested () =
  (* A small design on a big device routes without overflow immediately. *)
  let d = Fpga.Design.random (Util.Rng.create 1) ~n_pi:4 ~n_blocks:10 ~layers:3 () in
  let a = Fpga.Arch.standard ~grid:12 in
  let p = Fpga.Place.place (Util.Rng.create 1) a d in
  let r = Fpga.Route.route p in
  checki "no overflow" 0 r.Fpga.Route.overflow;
  checki "single iteration" 1 r.Fpga.Route.iterations

let test_route_histogram_consistent () =
  let _, r = routed_setup 12 in
  let total_cells = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Fpga.Route.usage_histogram in
  checki "histogram covers all cells" (11 * 11) total_cells
  (* grid 9 + pad ring = 11x11 cells *)

let test_route_usage_at_matches_max () =
  let _, r = routed_setup 13 in
  let best = ref 0 in
  for x = -1 to 9 do
    for y = -1 to 9 do
      best := max !best (r.Fpga.Route.usage_at (x, y))
    done
  done;
  checki "max usage consistent" r.Fpga.Route.max_usage !best

let test_route_net_trees_valid_paths () =
  let d = mk_design 24 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 24) a d in
  let r = Fpga.Route.route ~share_nets:true p in
  List.iter
    (fun routed ->
      let path = routed.Fpga.Route.path in
      let src = Fpga.Place.source_loc p routed.Fpga.Route.connection.Fpga.Place.src in
      let dst = routed.Fpga.Route.connection.Fpga.Place.dst_loc in
      checkb "starts at source" true (List.hd path = src);
      checkb "ends at sink" true (List.nth path (List.length path - 1) = dst);
      let rec adjacent = function
        | (x0, y0) :: ((x1, y1) :: _ as rest) ->
          abs (x0 - x1) + abs (y0 - y1) = 1 && adjacent rest
        | _ -> true
      in
      checkb "connected path" true (adjacent path))
    r.Fpga.Route.routes

let test_route_net_trees_reduce_demand () =
  (* Fanout sharing must lower peak channel usage on a fanout-heavy
     design. *)
  let d = mk_design 25 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 25) a d in
  let per_conn = Fpga.Route.route p in
  let trees = Fpga.Route.route ~share_nets:true p in
  checkb "trees never increase peak usage much" true
    (trees.Fpga.Route.max_usage <= per_conn.Fpga.Route.max_usage);
  checki "still no overflow" 0 trees.Fpga.Route.overflow

let test_route_capacity_override () =
  (* Tiny capacity forces overflow that the default capacity avoids. *)
  let _, r_default = routed_setup 16 in
  checki "default capacity routes" 0 r_default.Fpga.Route.overflow;
  let d = mk_design 16 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 16) a d in
  let r_tight = Fpga.Route.route ~capacity:2 p in
  checkb "capacity 2 overflows" true (r_tight.Fpga.Route.overflow > 0)

let test_minimum_channel_width () =
  let d = mk_design 17 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 17) a d in
  match Fpga.Route.minimum_channel_width p with
  | None -> Alcotest.fail "design must be routable at 64 tracks"
  | Some w ->
    checkb "positive width" true (w >= 1);
    (* The found width is feasible and w-1 is not. *)
    checki "w feasible" 0 (Fpga.Route.route ~capacity:(2 * w) p).Fpga.Route.overflow;
    if w > 1 then
      checkb "w-1 infeasible" true
        ((Fpga.Route.route ~capacity:(2 * (w - 1)) p).Fpga.Route.overflow > 0)

let test_channel_width_standard_vs_cnfet () =
  (* The same logical design demands roughly twice the tracks on the
     classical fabric (two wires per connection). *)
  let d = Fpga.Design.random (Util.Rng.create 21) ~n_pi:12 ~n_blocks:60 ~layers:8 () in
  let std = Fpga.Arch.standard ~grid:8 in
  let p_std = Fpga.Place.place (Util.Rng.create 5) std d in
  let cn = Fpga.Arch.cnfet ~grid:8 in
  let p_cn = Fpga.Place.place (Util.Rng.create 5) cn (Fpga.Design.absorb_inverters d) in
  match (Fpga.Route.minimum_channel_width p_std, Fpga.Route.minimum_channel_width p_cn) with
  | Some w_std, Some w_cn ->
    checkb "classical needs clearly more tracks" true
      (float_of_int w_std >= 1.5 *. float_of_int w_cn)
  | _ -> Alcotest.fail "both must route at 64 tracks"

(* --- Timing ------------------------------------------------------------------------- *)

let test_timing_positive_and_finite () =
  let p, r = routed_setup 14 in
  let t = Fpga.Timing.analyze p r in
  checkb "positive critical path" true (t.Fpga.Timing.critical_path > 0.0);
  checkb "finite frequency" true (Float.is_finite t.Fpga.Timing.frequency_hz);
  checkb "worst >= mean" true
    (t.Fpga.Timing.worst_connection >= t.Fpga.Timing.mean_connection);
  checki "levels" 6 t.Fpga.Timing.logic_levels

let test_timing_critical_at_least_levels () =
  let p, r = routed_setup 15 in
  let a = Fpga.Place.arch p in
  let t = Fpga.Timing.analyze p r in
  checkb "critical ≥ levels × clb_delay" true
    (t.Fpga.Timing.critical_path
    >= float_of_int t.Fpga.Timing.logic_levels *. a.Fpga.Arch.clb_delay)

let test_timing_connection_delay_monotone () =
  let a = Fpga.Arch.standard ~grid:9 in
  let d k = Fpga.Timing.connection_delay a ~hops:k in
  checkb "monotone in hops" true (d 10 > d 5 && d 5 > d 1)

let test_timing_load_raises_delay () =
  let a = Fpga.Arch.standard ~grid:9 in
  let path = [ (0, 0); (1, 0); (2, 0) ] in
  let unloaded = Fpga.Timing.path_delay a ~usage_at:(fun _ -> 0) ~capacity:28 path in
  let loaded = Fpga.Timing.path_delay a ~usage_at:(fun _ -> 28) ~capacity:28 path in
  checkb "full switch boxes are slower" true (loaded > 1.5 *. unloaded)

(* --- Map (technology mapping) ---------------------------------------------------------- *)

let test_map_fits_budget () =
  List.iter
    (fun k ->
      let m = Fpga.Map.map_cover ~clb_inputs:k (Mcnc.Generators.rd ~n:7) in
      checkb "respects input budget" true (Fpga.Map.max_block_inputs m <= k))
    [ 3; 4; 5; 6 ]

let test_map_correct_bdd_and_eval () =
  let cases =
    [ Mcnc.Generators.rd ~n:5; Mcnc.Generators.comparator ~bits:3; Mcnc.Generators.alu_slice () ]
  in
  List.iter
    (fun f ->
      let m = Fpga.Map.map_cover ~clb_inputs:4 f in
      checkb "BDD equivalence" true (Fpga.Map.verify_against m f);
      let n_in = Logic.Cover.num_inputs f in
      let ok = ref true in
      for mm = 0 to (1 lsl n_in) - 1 do
        let pis = Array.init n_in (fun i -> mm land (1 lsl i) <> 0) in
        let want = Logic.Cover.eval f pis in
        let got = Fpga.Map.eval m pis in
        for o = 0 to Logic.Cover.num_outputs f - 1 do
          if got.(o) <> Util.Bitvec.get want o then ok := false
        done
      done;
      checkb "exhaustive equivalence" true !ok)
    cases

let test_map_no_decomposition_when_fits () =
  (* cmp3 has 6 inputs: at k=6 every output is a single block. *)
  let f = Mcnc.Generators.comparator ~bits:3 in
  let m = Fpga.Map.map_cover ~clb_inputs:6 f in
  checki "one block per output" 3 (Fpga.Map.block_count m);
  checki "single level" 1 (Fpga.Map.levels m)

let test_map_smaller_budget_more_blocks () =
  let f = Mcnc.Generators.rd ~n:7 in
  let b k = Fpga.Map.block_count (Fpga.Map.map_cover ~clb_inputs:k f) in
  checkb "monotone-ish growth" true (b 3 > b 4 && b 4 > b 6)

let test_map_shares_cofactors () =
  (* rd outputs share cofactor structure; the memo should kick in: fewer
     blocks than a share-nothing mapping would need. With k=4 on rd53
     (5 inputs, 3 outputs) expect well under 3 × (1 + 2 + 4) blocks. *)
  let m = Fpga.Map.map_cover ~clb_inputs:4 (Mcnc.Generators.rd ~n:5) in
  checkb "sharing keeps the block count low" true (Fpga.Map.block_count m <= 12)

let test_map_constant_output () =
  let f = Logic.Expr.to_cover_multi ~n_in:4 [ Logic.Expr.Const true; Logic.Expr.(v 0) ] in
  let m = Fpga.Map.map_cover f in
  checkb "constant output correct" true (Fpga.Map.verify_against m f)

let test_map_to_design_valid () =
  let f = Mcnc.Generators.rd ~n:7 in
  let m = Fpga.Map.map_cover ~clb_inputs:4 f in
  let d = Fpga.Map.to_design m in
  checki "block counts agree" (Fpga.Map.block_count m) (Fpga.Design.block_count d);
  (* The mapped design places and routes on a small device. *)
  let arch = Fpga.Arch.standard ~grid:8 in
  let p = Fpga.Place.place (Util.Rng.create 3) arch d in
  let r = Fpga.Route.route p in
  checki "routes clean" 0 r.Fpga.Route.overflow

let test_map_blif_export () =
  let f = Mcnc.Generators.rd ~n:5 in
  let m = Fpga.Map.map_cover ~clb_inputs:3 f in
  let b = Fpga.Map.to_blif ~name:"rd53" m in
  let b' = Logic.Blif.parse (Logic.Blif.to_string b) in
  checkb "BLIF roundtrip equals source function" true
    (Logic.Cover.equivalent f (Logic.Blif.to_cover b'))

let test_timing_driven_no_regression () =
  (* run_timing_driven keeps the best placement, so it can never be slower
     than the plain run with the same seed. *)
  let m = Fpga.Map.map_cover ~clb_inputs:3 (Mcnc.Generators.rd ~n:7) in
  let d = Fpga.Map.to_design m in
  let a = Fpga.Arch.standard ~grid:8 in
  let base = Fpga.Flow.run (Util.Rng.create 1) a d in
  let td = Fpga.Flow.run_timing_driven ~rounds:2 (Util.Rng.create 1) a d in
  checkb "no regression" true
    (td.Fpga.Flow.timing.Fpga.Timing.critical_path
    <= base.Fpga.Flow.timing.Fpga.Timing.critical_path +. 1e-15)

let test_criticalities_range_and_peak () =
  let d = mk_design 19 in
  let a = Fpga.Arch.standard ~grid:9 in
  let p = Fpga.Place.place (Util.Rng.create 19) a d in
  let r = Fpga.Route.route p in
  let crits = Fpga.Timing.criticalities p r in
  checki "one criticality per connection" (List.length (Fpga.Place.connections p))
    (Array.length crits);
  Array.iter (fun c -> checkb "in [0,1]" true (c >= 0.0 && c <= 1.0)) crits;
  checkb "critical path has criticality 1" true
    (Array.exists (fun c -> c > 0.999) crits)

let test_place_weights_shorten_heavy_connections () =
  (* Make one PO connection extremely heavy: its length should not exceed
     the unweighted one. *)
  let d = mk_design 20 in
  let a = Fpga.Arch.standard ~grid:9 in
  let n_conns = Fpga.Design.connection_count d in
  let heavy = Array.make n_conns 1.0 in
  heavy.(n_conns - 1) <- 500.0;
  let len placement =
    let conns = Fpga.Place.connections placement in
    let last = List.nth conns (n_conns - 1) in
    let sx, sy = Fpga.Place.source_loc placement last.Fpga.Place.src in
    let dx, dy = last.Fpga.Place.dst_loc in
    abs (sx - dx) + abs (sy - dy)
  in
  let base = Fpga.Place.place (Util.Rng.create 4) a d in
  let weighted = Fpga.Place.place ~weights:heavy (Util.Rng.create 4) a d in
  checkb "heavy connection pulled short" true (len weighted <= len base)

let test_map_rejects_tiny_budget () =
  checkb "k=2 rejected" true
    (try
       ignore (Fpga.Map.map_cover ~clb_inputs:2 (Mcnc.Generators.rd ~n:5));
       false
     with Invalid_argument _ -> true)

(* --- Flow (scaled-down Table 2 shape) ------------------------------------------------- *)

let test_flow_speedup_shape () =
  (* A small instance of the Table 2 experiment: the CNFET fabric must be
     substantially faster and around half as occupied. *)
  let t = Fpga.Flow.table2_experiment ~seed:5 ~grid:10 () in
  let s = t.Fpga.Flow.standard and c = t.Fpga.Flow.cnfet in
  checkb "standard nearly full" true (s.Fpga.Flow.occupancy > 0.95);
  checkb "cnfet around half" true
    (c.Fpga.Flow.occupancy > 0.35 && c.Fpga.Flow.occupancy < 0.55);
  checkb "speedup > 1.5x" true (t.Fpga.Flow.speedup > 1.5);
  checkb "routable" true (c.Fpga.Flow.route_overflow = 0)

let () =
  Alcotest.run "fpga"
    [
      ( "arch",
        [
          Alcotest.test_case "standard" `Quick test_arch_standard;
          Alcotest.test_case "cnfet derived" `Quick test_arch_cnfet_derived;
          Alcotest.test_case "clb delay asymmetry" `Quick test_arch_clb_delay_asymmetry;
        ] );
      ( "design",
        [
          Alcotest.test_case "valid and sized" `Quick test_design_valid_and_sized;
          Alcotest.test_case "deterministic" `Quick test_design_deterministic;
          Alcotest.test_case "inverter stride" `Quick test_design_inverter_fraction_deterministic;
          Alcotest.test_case "absorb inverters" `Quick test_absorb_inverters;
          Alcotest.test_case "absorb chains" `Quick test_absorb_inverter_chain;
          Alcotest.test_case "rejects forward reference" `Quick
            test_design_rejects_forward_reference;
        ] );
      ( "place",
        [
          Alcotest.test_case "legal" `Quick test_place_legal;
          Alcotest.test_case "improves over random" `Quick test_place_improves_over_random;
          Alcotest.test_case "rejects oversize" `Quick test_place_rejects_oversize;
          Alcotest.test_case "pads on ring" `Quick test_place_pads_on_ring;
          Alcotest.test_case "connections cover fanins" `Quick
            test_place_connections_cover_fanins;
        ] );
      ( "route",
        [
          Alcotest.test_case "all connections" `Quick test_route_all_connections;
          Alcotest.test_case "paths connect endpoints" `Quick
            test_route_paths_connect_endpoints;
          Alcotest.test_case "converges uncongested" `Quick test_route_converges_uncongested;
          Alcotest.test_case "histogram consistent" `Quick test_route_histogram_consistent;
          Alcotest.test_case "usage_at matches max" `Quick test_route_usage_at_matches_max;
          Alcotest.test_case "net trees valid paths" `Quick test_route_net_trees_valid_paths;
          Alcotest.test_case "net trees reduce demand" `Quick
            test_route_net_trees_reduce_demand;
          Alcotest.test_case "capacity override" `Quick test_route_capacity_override;
          Alcotest.test_case "minimum channel width" `Quick test_minimum_channel_width;
          Alcotest.test_case "channel width std vs cnfet" `Slow
            test_channel_width_standard_vs_cnfet;
        ] );
      ( "timing",
        [
          Alcotest.test_case "positive and finite" `Quick test_timing_positive_and_finite;
          Alcotest.test_case "critical ≥ logic depth" `Quick
            test_timing_critical_at_least_levels;
          Alcotest.test_case "monotone in hops" `Quick test_timing_connection_delay_monotone;
          Alcotest.test_case "loading raises delay" `Quick test_timing_load_raises_delay;
        ] );
      ( "map",
        [
          Alcotest.test_case "fits budget" `Quick test_map_fits_budget;
          Alcotest.test_case "correct (bdd + exhaustive)" `Quick test_map_correct_bdd_and_eval;
          Alcotest.test_case "no decomposition when fits" `Quick
            test_map_no_decomposition_when_fits;
          Alcotest.test_case "smaller budget more blocks" `Quick
            test_map_smaller_budget_more_blocks;
          Alcotest.test_case "shares cofactors" `Quick test_map_shares_cofactors;
          Alcotest.test_case "constant output" `Quick test_map_constant_output;
          Alcotest.test_case "to_design valid + routable" `Quick test_map_to_design_valid;
          Alcotest.test_case "BLIF export" `Quick test_map_blif_export;
          Alcotest.test_case "rejects tiny budget" `Quick test_map_rejects_tiny_budget;
        ] );
      ( "timing-driven",
        [
          Alcotest.test_case "no regression" `Quick test_timing_driven_no_regression;
          Alcotest.test_case "criticalities sane" `Quick test_criticalities_range_and_peak;
          Alcotest.test_case "weights steer placement" `Quick
            test_place_weights_shorten_heavy_connections;
        ] );
      ( "flow",
        [ Alcotest.test_case "Table 2 shape (small)" `Slow test_flow_speedup_shape ] );
    ]
