(* Tests for the device library: ambipolar CNFET states, I–V model,
   retention, technology parameters. *)

module A = Device.Ambipolar
module Tech = Device.Tech

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

let p = A.default

(* --- polarity selection (paper Fig. 1 semantics) -------------------------- *)

let test_polarity_thresholds () =
  checkb "V+ gives n-type" true (A.polarity_of_pg p (A.v_plus p) = A.N_type);
  checkb "V- gives p-type" true (A.polarity_of_pg p (A.v_minus p) = A.P_type);
  checkb "V0 gives off" true (A.polarity_of_pg p (A.v_zero p) = A.Off_state)

let test_polarity_dead_zone () =
  let mid = A.v_zero p in
  let half = p.A.polarity_window *. p.A.vdd in
  checkb "just inside dead zone (above)" true
    (A.polarity_of_pg p (mid +. (half /. 2.)) = A.Off_state);
  checkb "just inside dead zone (below)" true
    (A.polarity_of_pg p (mid -. (half /. 2.)) = A.Off_state);
  checkb "at upper edge" true (A.polarity_of_pg p (mid +. half) = A.N_type);
  checkb "at lower edge" true (A.polarity_of_pg p (mid -. half) = A.P_type)

let test_polarity_roundtrip () =
  List.iter
    (fun pol ->
      checkb "pg_of_polarity inverts polarity_of_pg" true
        (A.polarity_of_pg p (A.pg_of_polarity p pol) = pol))
    [ A.N_type; A.P_type; A.Off_state ]

(* --- switch-level conduction ----------------------------------------------- *)

let test_conducts () =
  checkb "n conducts with CG high" true (A.conducts p A.N_type ~cg:p.A.vdd);
  checkb "n blocks with CG low" false (A.conducts p A.N_type ~cg:0.0);
  checkb "p conducts with CG low" true (A.conducts p A.P_type ~cg:0.0);
  checkb "p blocks with CG high" false (A.conducts p A.P_type ~cg:p.A.vdd);
  checkb "off never conducts (high)" false (A.conducts p A.Off_state ~cg:p.A.vdd);
  checkb "off never conducts (low)" false (A.conducts p A.Off_state ~cg:0.0)

(* --- I–V model --------------------------------------------------------------- *)

let test_drain_current_off () =
  let i = A.drain_current p A.Off_state ~vgs:p.A.vdd ~vds:p.A.vdd in
  checkf "off leaks i_off" p.A.i_off i

let test_drain_current_n_on () =
  let i = A.drain_current p A.N_type ~vgs:p.A.vdd ~vds:p.A.vdd in
  checkb "n-type on current near i_on" true (i > 0.5 *. p.A.i_on && i <= 1.1 *. p.A.i_on)

let test_drain_current_subthreshold () =
  let i = A.drain_current p A.N_type ~vgs:(p.A.vth /. 2.) ~vds:p.A.vdd in
  checkf "below threshold only leakage" p.A.i_off i

let test_drain_current_sign () =
  let i = A.drain_current p A.N_type ~vgs:p.A.vdd ~vds:(-.p.A.vdd) in
  checkb "reverse vds gives negative current" true (i < 0.0)

let test_drain_current_monotone_vds () =
  let prev = ref 0.0 in
  for k = 0 to 10 do
    let vds = p.A.vdd *. float_of_int k /. 10.0 in
    let i = A.drain_current p A.N_type ~vgs:p.A.vdd ~vds in
    checkb "monotone in vds" true (i >= !prev -. 1e-15);
    prev := i
  done

let test_drain_current_monotone_vgs () =
  let prev = ref (-1.0) in
  for k = 0 to 10 do
    let vgs = p.A.vdd *. float_of_int k /. 10.0 in
    let i = A.drain_current p A.N_type ~vgs ~vds:p.A.vdd in
    checkb "monotone in vgs" true (i >= !prev);
    prev := i
  done

(* --- transfer curve: the ambipolar V shape (Fig. 1) ------------------------- *)

let test_transfer_curve_v_shape () =
  let pts = A.transfer_curve p ~cg:p.A.vdd ~vds:p.A.vdd ~n:41 in
  checki "sample count" 41 (List.length pts);
  (* The minimum current must sit at the middle (V0) and both extremes must
     conduct orders of magnitude more. *)
  let currents = List.map snd pts in
  let at_mid = List.nth currents 20 in
  let at_lo = List.hd currents in
  let at_hi = List.nth currents 40 in
  checkb "valley at V0" true (at_mid <= p.A.i_off *. 1.001);
  checkb "p-branch conducts" true (at_lo > 100.0 *. at_mid);
  checkb "n-branch conducts" true (at_hi > 100.0 *. at_mid)

let test_transfer_curve_branch_monotone () =
  let pts = Array.of_list (A.transfer_curve p ~cg:p.A.vdd ~vds:p.A.vdd ~n:41) in
  (* Within the n branch, deeper PG voltage must not reduce current. *)
  for k = 31 to 39 do
    checkb "n branch rises" true (snd pts.(k + 1) >= snd pts.(k) -. 1e-15)
  done

(* --- resistance and retention ------------------------------------------------ *)

let test_effective_resistance () =
  checkf "on resistance" p.A.r_on (A.effective_resistance p A.N_type ~cg:p.A.vdd);
  let off_r = A.effective_resistance p A.N_type ~cg:0.0 in
  checkb "off resistance huge" true (off_r > 1e5 *. p.A.r_on)

let test_retention_decay_toward_v0 () =
  let v0 = A.v_plus p in
  let late = A.retention_after p v0 (10.0 /. p.A.pg_leak_per_s) in
  checkb "decays toward V0" true (Float.abs (late -. A.v_zero p) < 0.01);
  let soon = A.retention_after p v0 0.0 in
  checkf "no decay at t=0" v0 soon

let test_retention_state_lifetime () =
  (* The stored n-state must survive at least one second at default leak. *)
  let v = A.retention_after p (A.v_plus p) 1.0 in
  checkb "still n-type after 1 s" true (A.polarity_of_pg p v = A.N_type)

(* --- technology parameters (Table 1 first row) ------------------------------- *)

let test_corners () =
  let fast = A.corner A.Fast and slow = A.corner A.Slow and typ = A.corner A.Typical in
  checkb "typical is default" true (typ = A.default);
  checkb "fast drives harder" true (fast.A.r_on < typ.A.r_on && fast.A.i_on > typ.A.i_on);
  checkb "slow drives softer" true (slow.A.r_on > typ.A.r_on && slow.A.i_on < typ.A.i_on);
  checkb "corner spread symmetric-ish" true
    (Float.abs ((fast.A.r_on *. slow.A.r_on) -. (typ.A.r_on *. typ.A.r_on))
    < 0.01 *. typ.A.r_on *. typ.A.r_on)

let test_cell_areas () =
  checki "Flash 40" 40 Tech.flash.Tech.cell_area;
  checki "EEPROM 100" 100 Tech.eeprom.Tech.cell_area;
  checki "CNFET 60" 60 Tech.cnfet.Tech.cell_area

let test_cell_area_relations () =
  (* Paper: CNFET cell 50% larger than Flash, 40% smaller than EEPROM. *)
  checkf "1.5x flash" 1.5
    (float_of_int Tech.cnfet.Tech.cell_area /. float_of_int Tech.flash.Tech.cell_area);
  checkf "0.6x eeprom" 0.6
    (float_of_int Tech.cnfet.Tech.cell_area /. float_of_int Tech.eeprom.Tech.cell_area)

let test_columns_per_input () =
  checki "flash 2" 2 (Tech.columns_per_input Tech.flash);
  checki "eeprom 2" 2 (Tech.columns_per_input Tech.eeprom);
  checki "cnfet 1" 1 (Tech.columns_per_input Tech.cnfet)

let test_get_consistent () =
  List.iter
    (fun fam -> checkb "family matches" true ((Tech.get fam).Tech.family = fam))
    Tech.all

let () =
  Alcotest.run "device"
    [
      ( "polarity",
        [
          Alcotest.test_case "thresholds" `Quick test_polarity_thresholds;
          Alcotest.test_case "dead zone" `Quick test_polarity_dead_zone;
          Alcotest.test_case "roundtrip" `Quick test_polarity_roundtrip;
        ] );
      ( "conduction",
        [
          Alcotest.test_case "switch-level" `Quick test_conducts;
          Alcotest.test_case "off leakage" `Quick test_drain_current_off;
          Alcotest.test_case "n-type on current" `Quick test_drain_current_n_on;
          Alcotest.test_case "subthreshold" `Quick test_drain_current_subthreshold;
          Alcotest.test_case "sign follows vds" `Quick test_drain_current_sign;
          Alcotest.test_case "monotone in vds" `Quick test_drain_current_monotone_vds;
          Alcotest.test_case "monotone in vgs" `Quick test_drain_current_monotone_vgs;
        ] );
      ( "transfer-curve",
        [
          Alcotest.test_case "V shape (Fig. 1)" `Quick test_transfer_curve_v_shape;
          Alcotest.test_case "branch monotone" `Quick test_transfer_curve_branch_monotone;
        ] );
      ( "resistance-retention",
        [
          Alcotest.test_case "effective resistance" `Quick test_effective_resistance;
          Alcotest.test_case "decay toward V0" `Quick test_retention_decay_toward_v0;
          Alcotest.test_case "state lifetime" `Quick test_retention_state_lifetime;
        ] );
      ( "technology",
        [
          Alcotest.test_case "process corners" `Quick test_corners;
          Alcotest.test_case "cell areas" `Quick test_cell_areas;
          Alcotest.test_case "area relations (paper §5)" `Quick test_cell_area_relations;
          Alcotest.test_case "columns per input" `Quick test_columns_per_input;
          Alcotest.test_case "get consistent" `Quick test_get_consistent;
        ] );
    ]
