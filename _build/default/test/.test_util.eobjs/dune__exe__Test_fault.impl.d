test/test_fault.ml: Alcotest Array Cnfet Fault Fun List Logic Mcnc Util
