test/test_integration.ml: Alcotest Array Cnfet Device Espresso Fault Float Fpga List Logic Mcnc Printf Util
