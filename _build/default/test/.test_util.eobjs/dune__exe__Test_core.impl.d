test/test_core.ml: Alcotest Array Bytes Char Circuit Cnfet Device Espresso Filename Float List Logic Mcnc Printf QCheck QCheck_alcotest String Sys Util
