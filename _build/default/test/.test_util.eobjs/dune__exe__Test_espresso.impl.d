test/test_espresso.ml: Alcotest Array Espresso List Logic QCheck QCheck_alcotest Util
