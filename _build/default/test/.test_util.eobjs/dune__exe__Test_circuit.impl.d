test/test_circuit.ml: Alcotest Array Circuit Device Filename Float List Printf String Sys
