test/test_logic.ml: Alcotest Array Espresso Filename List Logic Mcnc QCheck QCheck_alcotest String Sys Util
