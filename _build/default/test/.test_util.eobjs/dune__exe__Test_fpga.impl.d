test/test_fpga.ml: Alcotest Array Float Fpga Hashtbl List Logic Mcnc Util
