test/test_mcnc.ml: Alcotest Array Cnfet Device Espresso Filename List Logic Mcnc Sys Util
