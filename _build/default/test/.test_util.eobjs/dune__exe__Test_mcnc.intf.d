test/test_mcnc.mli:
