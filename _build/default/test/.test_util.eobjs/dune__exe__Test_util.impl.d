test/test_util.ml: Alcotest Array Format Fun Int64 List QCheck QCheck_alcotest String Util
