(* Tests for the util library: RNG determinism, bit vectors, statistics,
   table rendering. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Util.Rng.bits64 a) (Util.Rng.bits64 b)) then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 13 in
    checkb "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_covers_range () =
  let rng = Util.Rng.create 9 in
  let seen = Array.make 8 false in
  for _ = 1 to 2_000 do
    seen.(Util.Rng.int rng 8) <- true
  done;
  checkb "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 1_000 do
    let v = Util.Rng.float rng 2.5 in
    checkb "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_bias () =
  let rng = Util.Rng.create 3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Util.Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  checkb "frequency near 0.3" true (freq > 0.27 && freq < 0.33)

let test_rng_split_independent () =
  let parent = Util.Rng.create 42 in
  let child = Util.Rng.split parent in
  let a = Util.Rng.bits64 parent and b = Util.Rng.bits64 child in
  checkb "parent and child diverge" true (not (Int64.equal a b))

let test_rng_copy () =
  let a = Util.Rng.create 11 in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  Alcotest.check Alcotest.int64 "copies agree" (Util.Rng.bits64 a) (Util.Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Util.Rng.create 99 in
  let a = Array.init 50 Fun.id in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick () =
  let rng = Util.Rng.create 1 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Util.Rng.pick rng a in
    checkb "picked element" true (Array.mem v a)
  done

(* --- Bitvec -------------------------------------------------------------- *)

let test_bitvec_create_empty () =
  let v = Util.Bitvec.create 17 in
  checki "length" 17 (Util.Bitvec.length v);
  checki "popcount 0" 0 (Util.Bitvec.pop_count v);
  checkb "is_empty" true (Util.Bitvec.is_empty v)

let test_bitvec_full () =
  let v = Util.Bitvec.create_full 13 in
  checki "popcount = length" 13 (Util.Bitvec.pop_count v);
  checkb "is_full" true (Util.Bitvec.is_full v)

let test_bitvec_set_get () =
  let v = Util.Bitvec.create 20 in
  Util.Bitvec.set v 0 true;
  Util.Bitvec.set v 7 true;
  Util.Bitvec.set v 8 true;
  Util.Bitvec.set v 19 true;
  checkb "bit 0" true (Util.Bitvec.get v 0);
  checkb "bit 7 (byte boundary)" true (Util.Bitvec.get v 7);
  checkb "bit 8 (byte boundary)" true (Util.Bitvec.get v 8);
  checkb "bit 19" true (Util.Bitvec.get v 19);
  checkb "bit 3 unset" false (Util.Bitvec.get v 3);
  Util.Bitvec.set v 7 false;
  checkb "bit 7 cleared" false (Util.Bitvec.get v 7);
  checki "popcount" 3 (Util.Bitvec.pop_count v)

let test_bitvec_set_ops () =
  let a = Util.Bitvec.of_list 10 [ 1; 3; 5 ] in
  let b = Util.Bitvec.of_list 10 [ 3; 5; 7 ] in
  check (Alcotest.list Alcotest.int) "union" [ 1; 3; 5; 7 ]
    (Util.Bitvec.to_list (Util.Bitvec.union a b));
  check (Alcotest.list Alcotest.int) "inter" [ 3; 5 ]
    (Util.Bitvec.to_list (Util.Bitvec.inter a b));
  check (Alcotest.list Alcotest.int) "diff" [ 1 ] (Util.Bitvec.to_list (Util.Bitvec.diff a b))

let test_bitvec_complement_padding () =
  (* Complement must not set padding bits beyond the length. *)
  let v = Util.Bitvec.of_list 9 [ 0; 8 ] in
  let c = Util.Bitvec.complement v in
  checki "popcount" 7 (Util.Bitvec.pop_count c);
  checkb "bit 0 off" false (Util.Bitvec.get c 0);
  checkb "bit 8 off" false (Util.Bitvec.get c 8);
  checkb "bit 4 on" true (Util.Bitvec.get c 4);
  checkb "double complement" true (Util.Bitvec.equal v (Util.Bitvec.complement c))

let test_bitvec_subset_disjoint () =
  let a = Util.Bitvec.of_list 12 [ 2; 4 ] in
  let b = Util.Bitvec.of_list 12 [ 2; 4; 9 ] in
  let c = Util.Bitvec.of_list 12 [ 0; 1 ] in
  checkb "a ⊆ b" true (Util.Bitvec.subset a b);
  checkb "b ⊄ a" false (Util.Bitvec.subset b a);
  checkb "a,c disjoint" true (Util.Bitvec.disjoint a c);
  checkb "a,b not disjoint" false (Util.Bitvec.disjoint a b)

let test_bitvec_union_inplace () =
  let a = Util.Bitvec.of_list 8 [ 1 ] in
  let b = Util.Bitvec.of_list 8 [ 6 ] in
  Util.Bitvec.union_inplace a b;
  check (Alcotest.list Alcotest.int) "in-place union" [ 1; 6 ] (Util.Bitvec.to_list a);
  check (Alcotest.list Alcotest.int) "b untouched" [ 6 ] (Util.Bitvec.to_list b)

let test_bitvec_compare_consistent () =
  let a = Util.Bitvec.of_list 8 [ 1 ] and b = Util.Bitvec.of_list 8 [ 1 ] in
  checki "equal compare 0" 0 (Util.Bitvec.compare a b);
  checkb "equal" true (Util.Bitvec.equal a b);
  let c = Util.Bitvec.of_list 8 [ 2 ] in
  checkb "different" false (Util.Bitvec.equal a c)

let test_bitvec_iter_set () =
  let v = Util.Bitvec.of_list 16 [ 3; 9; 15 ] in
  let acc = ref [] in
  Util.Bitvec.iter_set (fun i -> acc := i :: !acc) v;
  check (Alcotest.list Alcotest.int) "ascending" [ 3; 9; 15 ] (List.rev !acc)

let test_bitvec_zero_length () =
  let v = Util.Bitvec.create 0 in
  checkb "empty" true (Util.Bitvec.is_empty v);
  checkb "full (vacuously)" true (Util.Bitvec.is_full v);
  checki "popcount" 0 (Util.Bitvec.pop_count v)

(* qcheck properties *)

let bitvec_gen =
  QCheck.Gen.(
    sized (fun n ->
        let len = 1 + (n mod 64) in
        map (fun bits -> Util.Bitvec.of_list len (List.filter (fun i -> i < len) bits))
          (list_size (int_bound 32) (int_bound (len - 1)))))

let arb_bitvec = QCheck.make ~print:(Format.asprintf "%a" Util.Bitvec.pp) bitvec_gen

let prop_union_commutes =
  QCheck.Test.make ~name:"bitvec union commutes" ~count:200
    (QCheck.pair arb_bitvec arb_bitvec) (fun (a, b) ->
      let b' =
        Util.Bitvec.of_list (Util.Bitvec.length a)
          (List.filter (fun i -> i < Util.Bitvec.length a) (Util.Bitvec.to_list b))
      in
      Util.Bitvec.equal (Util.Bitvec.union a b') (Util.Bitvec.union b' a))

let prop_demorgan =
  QCheck.Test.make ~name:"bitvec De Morgan" ~count:200 (QCheck.pair arb_bitvec arb_bitvec)
    (fun (a, b) ->
      let b' =
        Util.Bitvec.of_list (Util.Bitvec.length a)
          (List.filter (fun i -> i < Util.Bitvec.length a) (Util.Bitvec.to_list b))
      in
      Util.Bitvec.equal
        (Util.Bitvec.complement (Util.Bitvec.union a b'))
        (Util.Bitvec.inter (Util.Bitvec.complement a) (Util.Bitvec.complement b')))

(* --- Stats --------------------------------------------------------------- *)

let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_stats_mean () =
  checkf "mean" 2.5 (Util.Stats.mean [ 1.; 2.; 3.; 4. ]);
  checkf "empty mean" 0. (Util.Stats.mean [])

let test_stats_stddev () =
  checkf "constant stddev" 0. (Util.Stats.stddev [ 5.; 5.; 5. ]);
  checkf "known stddev" 2. (Util.Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_median () =
  checkf "odd median" 3. (Util.Stats.median [ 5.; 3.; 1. ]);
  checkf "even median" 2.5 (Util.Stats.median [ 4.; 1.; 2.; 3. ])

let test_stats_min_max () =
  let lo, hi = Util.Stats.min_max [ 3.; -1.; 7.; 2. ] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.min_max: empty") (fun () ->
      ignore (Util.Stats.min_max []))

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p50" 50. (Util.Stats.percentile 50. xs);
  checkf "p100" 100. (Util.Stats.percentile 100. xs)

let test_stats_summary () =
  let s = Util.Stats.summarize [ 1.; 2.; 3. ] in
  checki "n" 3 s.Util.Stats.n;
  checkf "mean" 2. s.Util.Stats.mean;
  checkf "median" 2. s.Util.Stats.median

let test_stats_ratio () =
  checkf "ratio" 2. (Util.Stats.ratio 4. 2.);
  checkf "div by zero" 0. (Util.Stats.ratio 4. 0.)

(* --- Tableau ------------------------------------------------------------- *)

let test_tableau_render () =
  let t = Util.Tableau.create [ "name"; "value" ] in
  Util.Tableau.add_row t [ "alpha"; "1" ];
  Util.Tableau.add_row t [ "b"; "22" ];
  let s = Util.Tableau.render t in
  checkb "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  let lines = String.split_on_char '\n' (String.trim s) in
  checki "4 lines" 4 (List.length lines)

let test_tableau_pads_short_rows () =
  let t = Util.Tableau.create [ "a"; "b"; "c" ] in
  Util.Tableau.add_row t [ "x" ];
  let s = Util.Tableau.render t in
  checkb "renders" true (String.length s > 0)

let test_tableau_rejects_long_rows () =
  let t = Util.Tableau.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Tableau.add_row: too many cells") (fun () ->
      Util.Tableau.add_row t [ "1"; "2" ])

let test_tableau_csv () =
  let t = Util.Tableau.create [ "name"; "value" ] in
  Util.Tableau.add_row t [ "plain"; "1" ];
  Util.Tableau.add_rule t;
  Util.Tableau.add_row t [ "with,comma"; "say \"hi\"" ];
  let csv = Util.Tableau.to_csv t in
  check Alcotest.string "csv rendering"
    "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n" csv

let test_tableau_cells () =
  check Alcotest.string "thousands" "34 960" (Util.Tableau.cell_int 34960);
  check Alcotest.string "negative" "-1 234" (Util.Tableau.cell_int (-1234));
  check Alcotest.string "small" "7" (Util.Tableau.cell_int 7);
  check Alcotest.string "float" "3.14" (Util.Tableau.cell_float 3.14159);
  check Alcotest.string "pct" "44.9%" (Util.Tableau.cell_pct 0.449)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli bias" `Quick test_rng_bernoulli_bias;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "create empty" `Quick test_bitvec_create_empty;
          Alcotest.test_case "create full" `Quick test_bitvec_full;
          Alcotest.test_case "set/get boundaries" `Quick test_bitvec_set_get;
          Alcotest.test_case "set operations" `Quick test_bitvec_set_ops;
          Alcotest.test_case "complement padding" `Quick test_bitvec_complement_padding;
          Alcotest.test_case "subset/disjoint" `Quick test_bitvec_subset_disjoint;
          Alcotest.test_case "union in place" `Quick test_bitvec_union_inplace;
          Alcotest.test_case "compare consistent" `Quick test_bitvec_compare_consistent;
          Alcotest.test_case "iter over set bits" `Quick test_bitvec_iter_set;
          Alcotest.test_case "zero length" `Quick test_bitvec_zero_length;
          QCheck_alcotest.to_alcotest prop_union_commutes;
          QCheck_alcotest.to_alcotest prop_demorgan;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "render" `Quick test_tableau_render;
          Alcotest.test_case "pads short rows" `Quick test_tableau_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_tableau_rejects_long_rows;
          Alcotest.test_case "csv export" `Quick test_tableau_csv;
          Alcotest.test_case "cell formatting" `Quick test_tableau_cells;
        ] );
    ]
