(** Test-pattern generation for programmed CNFET PLAs.

    After manufacture (or field reconfiguration) the array must be
    {e tested}: which input vectors expose which crosspoint faults? The
    single-fault model covers every crosspoint of both planes going
    stuck-open or stuck-closed. A fault is {e detected} by a vector when
    the faulty PLA's outputs differ from the good one's.

    Generation enumerates the input space (≤ 14 inputs), finds the
    detectable faults, and greedily compacts a complete test set — the
    regular structure keeps these sets small, one more practical payoff of
    the PLA architecture. *)

type plane_kind = And_plane | Or_plane

type fault = {
  plane : plane_kind;
  row : int;
  col : int;
  kind : Defect.kind;  (** [Stuck_open] or [Stuck_closed] *)
}

val all_faults : Cnfet.Pla.t -> fault list
(** Every crosspoint of both planes × both fault kinds, except
    stuck-open faults on crosspoints programmed [Drop] (no effect by
    construction). *)

val faulty_outputs : Cnfet.Pla.t -> fault -> bool array -> bool array
(** Outputs of the PLA with the single fault injected. *)

val detects : Cnfet.Pla.t -> fault -> bool array -> bool

val generate : Cnfet.Pla.t -> bool array list * fault list
(** [(tests, undetectable)]: a compacted vector set detecting every
    detectable fault, and the faults no vector exposes (logically
    redundant crosspoint states). *)

val coverage : Cnfet.Pla.t -> bool array list -> float
(** Fraction of detectable faults caught by a given vector set. *)
