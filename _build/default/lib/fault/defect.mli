(** Crosspoint defect model for regular CNFET arrays (paper §5, after
    Schmid et al.).

    Immature nanotube processes leave a fraction of devices unusable. Two
    failure modes matter for a GNOR plane:
    {ul
    {- [Stuck_open]: the device never conducts — it can only serve a
       crosspoint whose desired mode is [Drop];}
    {- [Stuck_closed]: the device conducts whenever the row evaluates —
       it discharges the row unconditionally, making the row unusable
       (in an OR plane: acceptable only if the row's product is genuinely
       selected by that output).}} *)

type kind = Good | Stuck_open | Stuck_closed

type map
(** Defect map of one [rows × cols] plane. *)

val perfect : rows:int -> cols:int -> map

val random : Util.Rng.t -> rows:int -> cols:int -> rate:float -> ?closed_share:float -> unit -> map
(** Each crosspoint is defective independently with probability [rate];
    a defective one is [Stuck_closed] with probability [closed_share]
    (default 0.25, opens dominate in practice). *)

val kind : map -> row:int -> col:int -> kind

val set : map -> row:int -> col:int -> kind -> unit

val rows : map -> int

val cols : map -> int

val defect_count : map -> int

val row_has_stuck_closed : map -> int -> bool

val compatible_and_row : map -> row:int -> Cnfet.Gnor.input_mode array -> bool
(** Can this physical AND-plane row realize the given row configuration?
    [Stuck_open] needs [Drop] at that column; any [Stuck_closed] in the
    row kills it. *)

val eval_with_defects : map -> Cnfet.Plane.t -> bool array -> bool array
(** What the physical plane actually computes when the target
    configuration is programmed through the defects: [Stuck_open]
    crosspoints behave as [Drop]; a row containing a [Stuck_closed]
    crosspoint evaluates to constant 0 (the device discharges the
    pre-charged row unconditionally). *)
