(** Monte-Carlo yield of PLAs on defective arrays.

    For each trial a defect map is drawn at the given device defect rate
    and the mapped function is declared alive if (a) the identity mapping
    survives (baseline), or (b) remapping products to rows — with optional
    spare rows — finds a working assignment (fault-tolerant flow). The
    ratio of live trials estimates functional yield, the quantity the
    paper expects the regular architecture to improve. *)

type point = {
  defect_rate : float;
  yield_baseline : float;  (** identity mapping, no spares *)
  yield_remap : float;  (** matching-based remap, no spares *)
  yield_spares : float;  (** remap with the requested spare rows *)
  trials : int;
}

val estimate : Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> defect_rate:float -> point
(** Default 200 trials, 2 spare rows. *)

val sweep : Util.Rng.t -> ?trials:int -> ?spare_rows:int -> ?closed_share:float -> Cnfet.Pla.t -> rates:float list -> point list

val functional_check : Util.Rng.t -> ?closed_share:float -> Cnfet.Pla.t -> Logic.Cover.t -> defect_rate:float -> spare_rows:int -> bool option
(** Draw one defect map; if repair succeeds, exhaustively verify that the
    repaired PLA {e evaluated through the defects} still implements the
    cover ([Some ok]); [None] when unrepairable. Inputs must be ≤ 16. *)
