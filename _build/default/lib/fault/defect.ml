type kind = Good | Stuck_open | Stuck_closed

type map = { nrows : int; ncols : int; cells : kind array array }

let perfect ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Defect.perfect";
  { nrows = rows; ncols = cols; cells = Array.init rows (fun _ -> Array.make cols Good) }

let random rng ~rows ~cols ~rate ?(closed_share = 0.25) () =
  let m = perfect ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if Util.Rng.bernoulli rng rate then
        m.cells.(r).(c) <-
          (if Util.Rng.bernoulli rng closed_share then Stuck_closed else Stuck_open)
    done
  done;
  m

let check m ~row ~col =
  if row < 0 || row >= m.nrows || col < 0 || col >= m.ncols then
    invalid_arg "Defect: out of range"

let kind m ~row ~col =
  check m ~row ~col;
  m.cells.(row).(col)

let set m ~row ~col k =
  check m ~row ~col;
  m.cells.(row).(col) <- k

let rows m = m.nrows
let cols m = m.ncols

let defect_count m =
  let n = ref 0 in
  Array.iter (Array.iter (fun k -> if k <> Good then incr n)) m.cells;
  !n

let row_has_stuck_closed m r =
  if r < 0 || r >= m.nrows then invalid_arg "Defect.row_has_stuck_closed";
  Array.exists (fun k -> k = Stuck_closed) m.cells.(r)

let compatible_and_row m ~row modes =
  if Array.length modes <> m.ncols then invalid_arg "Defect.compatible_and_row";
  if row < 0 || row >= m.nrows then invalid_arg "Defect.compatible_and_row";
  let ok = ref true in
  Array.iteri
    (fun c k ->
      match k with
      | Good -> ()
      | Stuck_open -> if modes.(c) <> Cnfet.Gnor.Drop then ok := false
      | Stuck_closed -> ok := false)
    m.cells.(row);
  !ok

let eval_with_defects m plane inputs =
  if Cnfet.Plane.rows plane <> m.nrows || Cnfet.Plane.cols plane <> m.ncols then
    invalid_arg "Defect.eval_with_defects: shape mismatch";
  Array.init m.nrows (fun r ->
      if row_has_stuck_closed m r then false
      else begin
        let modes = Cnfet.Plane.row_modes plane r in
        Array.iteri
          (fun c k -> if k = Stuck_open then modes.(c) <- Cnfet.Gnor.Drop)
          m.cells.(r);
        Cnfet.Gnor.eval_functional modes inputs
      end)
