lib/fault/defect.ml: Array Cnfet Util
