lib/fault/repair.ml: Array Cnfet Defect Fun List Util
