lib/fault/atpg.ml: Array Cnfet Defect Hashtbl List
