lib/fault/defect.mli: Cnfet Util
