lib/fault/repair.mli: Cnfet Defect Util
