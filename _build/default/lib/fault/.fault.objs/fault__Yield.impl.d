lib/fault/yield.ml: Array Cnfet Defect List Logic Repair Util
