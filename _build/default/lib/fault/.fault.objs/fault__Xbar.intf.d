lib/fault/xbar.mli: Defect Util
