lib/fault/atpg.mli: Cnfet Defect
