lib/fault/yield.mli: Cnfet Logic Util
