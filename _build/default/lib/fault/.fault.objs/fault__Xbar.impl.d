lib/fault/xbar.ml: Array Defect Fun List
