type polarity = N_type | P_type | Off_state

let polarity_to_string = function
  | N_type -> "n-type"
  | P_type -> "p-type"
  | Off_state -> "off"

let pp_polarity fmt p = Format.pp_print_string fmt (polarity_to_string p)

type params = {
  vdd : float;
  polarity_window : float;
  vth : float;
  r_on : float;
  i_on : float;
  i_off : float;
  c_gate : float;
  c_pg : float;
  pg_leak_per_s : float;
}

let default =
  {
    vdd = 1.2;
    polarity_window = 0.2;
    vth = 0.3;
    r_on = 25e3;
    i_on = 20e-6;
    i_off = 1e-10;
    c_gate = 0.05e-15;
    c_pg = 0.10e-15;
    pg_leak_per_s = 1e-3;
  }

type corner = Typical | Fast | Slow

let corner = function
  | Typical -> default
  | Fast ->
    {
      default with
      r_on = default.r_on /. 1.2;
      i_on = default.i_on *. 1.2;
      c_gate = default.c_gate /. 1.2;
      c_pg = default.c_pg /. 1.2;
    }
  | Slow ->
    {
      default with
      r_on = default.r_on *. 1.2;
      i_on = default.i_on /. 1.2;
      c_gate = default.c_gate *. 1.2;
      c_pg = default.c_pg *. 1.2;
    }

let v_plus p = p.vdd
let v_minus _ = 0.0
let v_zero p = p.vdd /. 2.0

let polarity_of_pg p v =
  let mid = v_zero p in
  let half = p.polarity_window *. p.vdd in
  if v >= mid +. half then N_type
  else if v <= mid -. half then P_type
  else Off_state

let pg_of_polarity p = function
  | N_type -> v_plus p
  | P_type -> v_minus p
  | Off_state -> v_zero p

let conducts p pol ~cg =
  match pol with
  | N_type -> cg >= p.vdd -. p.vth
  | P_type -> cg <= p.vth
  | Off_state -> false

(* Linear-then-saturated FET characteristic with an overdrive-squared
   saturation current, the usual first-order Schottky-barrier CNFET
   abstraction. *)
let drain_current p pol ~vgs ~vds =
  let sign = if vds >= 0.0 then 1.0 else -1.0 in
  let vds_abs = Float.abs vds in
  (* Overdrive: n-type conducts as vgs rises above vth, p-type as vgs drops
     below vdd - vth. *)
  let overdrive =
    match pol with
    | N_type -> vgs -. p.vth
    | P_type -> p.vdd -. p.vth -. vgs
    | Off_state -> 0.0
  in
  if overdrive <= 0.0 then sign *. p.i_off
  else begin
    let od = Float.min 1.0 (overdrive /. (p.vdd -. p.vth)) in
    let i_sat = p.i_on *. od *. od in
    let v_knee = Float.max 1e-3 (overdrive /. 2.0) in
    let i =
      if vds_abs < v_knee then i_sat *. (vds_abs /. v_knee) *. (2.0 -. (vds_abs /. v_knee))
      else i_sat
    in
    sign *. (i +. p.i_off)
  end

let transfer_curve p ~cg ~vds ~n =
  assert (n >= 2);
  List.init n (fun k ->
      let vpg = p.vdd *. float_of_int k /. float_of_int (n - 1) in
      let pol = polarity_of_pg p vpg in
      (* The PG acts as the barrier-thinning terminal; once a polarity is
         selected, conduction strength follows the CG as vgs. *)
      let i =
        match pol with
        | Off_state -> p.i_off
        | N_type ->
          (* deeper into the n window → thinner barrier → closer to full drive *)
          let depth = (vpg -. (v_zero p +. (p.polarity_window *. p.vdd))) /. (p.vdd /. 2.0) in
          let scale = 0.25 +. (0.75 *. Float.min 1.0 (Float.max 0.0 depth *. 2.0)) in
          scale *. Float.abs (drain_current p N_type ~vgs:cg ~vds)
        | P_type ->
          (* The hole branch is driven by the complementary overdrive: a CG
             bias that turns the n branch fully on turns the p branch fully
             on too once the PG selects holes (the barrier, not the channel,
             limits conduction). *)
          let depth = ((v_zero p -. (p.polarity_window *. p.vdd)) -. vpg) /. (p.vdd /. 2.0) in
          let scale = 0.25 +. (0.75 *. Float.min 1.0 (Float.max 0.0 depth *. 2.0)) in
          scale *. Float.abs (drain_current p P_type ~vgs:(p.vdd -. cg) ~vds)
      in
      (vpg, i))

let effective_resistance p pol ~cg =
  if conducts p pol ~cg then p.r_on else p.vdd /. p.i_off

let retention_after p v0 seconds =
  let target = v_zero p in
  let decay = exp (-.p.pg_leak_per_s *. seconds) in
  target +. ((v0 -. target) *. decay)
