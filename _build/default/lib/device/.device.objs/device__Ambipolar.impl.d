lib/device/ambipolar.ml: Float Format List
