lib/device/ambipolar.mli: Format
