lib/device/tech.mli: Format
