lib/device/tech.ml: Format
