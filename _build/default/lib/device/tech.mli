(** Technology parameter sets for the three memory-cell families compared
    in the paper's Table 1.

    Cell areas are in units of [L²] where [L] is the lithography
    resolution; Flash and EEPROM values are derived from the ITRS, the
    ambipolar CNFET value from the scaling rules of Patil et al. (DAC
    2007): the CNFET basic cell is 50% larger than Flash and 40% smaller
    than EEPROM. *)

type family = Flash | Eeprom | Cnfet

val all : family list
(** In the paper's column order: Flash, EEPROM, CNFET. *)

val name : family -> string

type t = {
  family : family;
  cell_area : int;  (** contacted basic-cell area, L² *)
  needs_both_polarities : bool;
      (** classical AND/OR planes need a column for each input polarity;
          GNOR planes generate polarity internally *)
  wire_pitch : float;  (** routing pitch, in L *)
  l_nm : float;  (** lithography resolution, nm *)
}

val get : family -> t

val flash : t
val eeprom : t
val cnfet : t

val columns_per_input : t -> int
(** 2 for classical technologies, 1 for the ambipolar CNFET plane. *)

val pp : Format.formatter -> t -> unit
