(** Behavioural model of the ambipolar carbon-nanotube FET.

    The device (Lin et al., IEDM 2004; self-aligned double-gate per Javey et
    al. 2004) has two gates:
    {ul
    {- the {e control gate} (CG) over region A turns the channel on or off;}
    {- the {e polarity gate} (PG) over region B sets the carrier type by
       thinning the Schottky barrier for electrons ([V+] → n-type) or holes
       ([V−] → p-type); at [V0 = VDD/2] neither barrier is thin and the
       device is always off.}}

    The model exposes the three polarity states, a threshold map from PG
    voltage to state (with a dead zone around [V0]), and a first-order
    analytic I–V suitable for switch-level and Elmore-delay simulation. *)

type polarity = N_type | P_type | Off_state

val pp_polarity : Format.formatter -> polarity -> unit

val polarity_to_string : polarity -> string

type params = {
  vdd : float;  (** supply voltage, V *)
  polarity_window : float;
      (** half-width (fraction of VDD) of the always-off dead zone centred
          on VDD/2 *)
  vth : float;  (** control-gate threshold magnitude, V *)
  r_on : float;  (** on-resistance of a conducting device, Ω *)
  i_on : float;  (** saturation current, A *)
  i_off : float;  (** residual leakage in the off state, A *)
  c_gate : float;  (** control-gate capacitance, F *)
  c_pg : float;  (** polarity-gate storage capacitance, F *)
  pg_leak_per_s : float;
      (** fraction of stored PG charge lost per second (retention model) *)
}

val default : params
(** 32 nm-class parameters following the scaling rules of Patil et al.
    (DAC 2007). *)

type corner = Typical | Fast | Slow

val corner : corner -> params
(** Process corners: [Fast] scales drive up / parasitics down by 20%,
    [Slow] the reverse; [Typical] = {!default}. *)

val v_plus : params -> float
(** PG voltage programming n-type behaviour (= VDD). *)

val v_minus : params -> float
(** PG voltage programming p-type behaviour (= 0). *)

val v_zero : params -> float
(** PG voltage for the always-off state (= VDD/2). *)

val polarity_of_pg : params -> float -> polarity
(** State selected by a PG voltage. *)

val pg_of_polarity : params -> polarity -> float
(** Canonical programming voltage for a state. *)

val conducts : params -> polarity -> cg:float -> bool
(** Switch-level conduction: an n-type device conducts when CG is high, a
    p-type device when CG is low, an off-state device never. *)

val drain_current : params -> polarity -> vgs:float -> vds:float -> float
(** First-order I–V: thermionic/tunnelling-limited linear-then-saturated
    characteristic; sign follows [vds]. Off-state devices leak [i_off]. *)

val transfer_curve : params -> cg:float -> vds:float -> n:int -> (float * float) list
(** [transfer_curve p ~cg ~vds ~n] samples |I_d| at [n] PG voltages from 0
    to VDD — the V-shaped ambipolar signature of the paper's Fig. 1. *)

val effective_resistance : params -> polarity -> cg:float -> float
(** [r_on] when conducting, else a large off-resistance derived from
    [i_off]. *)

val retention_after : params -> float -> float -> float
(** [retention_after p v0 seconds]: stored PG voltage decayed toward
    [v_zero] (worst case for state integrity) after the given time. *)
