type family = Flash | Eeprom | Cnfet

let all = [ Flash; Eeprom; Cnfet ]

let name = function Flash -> "Flash" | Eeprom -> "EEPROM" | Cnfet -> "CNFET"

type t = {
  family : family;
  cell_area : int;
  needs_both_polarities : bool;
  wire_pitch : float;
  l_nm : float;
}

let flash =
  { family = Flash; cell_area = 40; needs_both_polarities = true; wire_pitch = 2.0; l_nm = 32.0 }

let eeprom =
  { family = Eeprom; cell_area = 100; needs_both_polarities = true; wire_pitch = 2.0; l_nm = 32.0 }

let cnfet =
  { family = Cnfet; cell_area = 60; needs_both_polarities = false; wire_pitch = 2.0; l_nm = 32.0 }

let get = function Flash -> flash | Eeprom -> eeprom | Cnfet -> cnfet

let columns_per_input t = if t.needs_both_polarities then 2 else 1

let pp fmt t =
  Format.fprintf fmt "%s(cell=%dL^2,%s)" (name t.family) t.cell_area
    (if t.needs_both_polarities then "2col/in" else "1col/in")
