module Tech = Device.Tech

type profile = { n_in : int; n_out : int; n_products : int }

let profile_of_cover cover =
  {
    n_in = Logic.Cover.num_inputs cover;
    n_out = Logic.Cover.num_outputs cover;
    n_products = Logic.Cover.size cover;
  }

let profile_of_pla pla =
  {
    n_in = Pla.num_inputs pla;
    n_out = Pla.num_outputs pla;
    n_products = Pla.num_products pla;
  }

let basic_cell_area (tech : Tech.t) = tech.Tech.cell_area

let and_plane_crosspoints tech p = Tech.columns_per_input tech * p.n_in * p.n_products

let or_plane_crosspoints _tech p = p.n_out * p.n_products

let pla_area tech p =
  tech.Tech.cell_area * (and_plane_crosspoints tech p + or_plane_crosspoints tech p)

let input_wires tech p = Tech.columns_per_input tech * p.n_in

let total_wires tech p = input_wires tech p + p.n_out

let wire_reduction_factor p =
  let classical = float_of_int (input_wires Tech.flash p) in
  let gnor = float_of_int (input_wires Tech.cnfet p) in
  if gnor = 0.0 then 1.0 else classical /. gnor

let area_ratio a b p = float_of_int (pla_area a p) /. float_of_int (pla_area b p)

let cnfet_saving_vs tech p =
  let classical = float_of_int (pla_area tech p) in
  let ours = float_of_int (pla_area Tech.cnfet p) in
  if classical = 0.0 then 0.0 else (classical -. ours) /. classical

let crossover_inputs tech ~n_out =
  (* Areas are linear in n_in for a fixed product count, so the product
     count cancels; search a generous range. *)
  let beats n_in =
    let p = { n_in; n_out; n_products = 1 } in
    pla_area Tech.cnfet p < pla_area tech p
  in
  let limit = (10 * n_out) + 1000 in
  let rec go n = if n > limit then None else if beats n then Some n else go (n + 1) in
  go 1
