type fold = { top : int; bottom : int }

type result = { folds : fold list; row_order : int array; physical_columns : int }

let column_users plane col =
  List.filter
    (fun r -> Plane.mode plane ~row:r ~col <> Gnor.Drop)
    (List.init (Plane.rows plane) Fun.id)

(* Precedence digraph over rows as adjacency sets; acyclicity by Kahn. *)
let topo_order n edges =
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  Hashtbl.iter
    (fun (a, b) () ->
      succs.(a) <- b :: succs.(a);
      indegree.(b) <- indegree.(b) + 1)
    edges;
  let queue = ref (List.filter (fun r -> indegree.(r) = 0) (List.init n Fun.id)) in
  let order = ref [] in
  let count = ref 0 in
  while !queue <> [] do
    match !queue with
    | [] -> ()
    | r :: rest ->
      queue := rest;
      order := r :: !order;
      incr count;
      List.iter
        (fun s ->
          indegree.(s) <- indegree.(s) - 1;
          if indegree.(s) = 0 then queue := s :: !queue)
        succs.(r)
  done;
  if !count = n then Some (Array.of_list (List.rev !order)) else None

let fold_plane plane =
  let n_rows = Plane.rows plane and n_cols = Plane.cols plane in
  let users = Array.init n_cols (fun c -> column_users plane c) in
  let edges = Hashtbl.create 64 in
  let add_pair_edges top bottom =
    List.iter
      (fun a -> List.iter (fun b -> if a <> b then Hashtbl.replace edges (a, b) ()) users.(bottom))
      users.(top)
  in
  let remove_pair_edges top bottom =
    List.iter
      (fun a -> List.iter (fun b -> if a <> b then Hashtbl.remove edges (a, b)) users.(bottom))
      users.(top)
  in
  let folded = Array.make n_cols false in
  let folds = ref [] in
  (* Candidate pairs: disjoint users, lightest columns first (they
     constrain the ordering least). *)
  let cols_by_usage =
    List.sort
      (fun a b -> compare (List.length users.(a)) (List.length users.(b)))
      (List.init n_cols Fun.id)
  in
  List.iteri
    (fun _ top ->
      if not folded.(top) then
        List.iter
          (fun bottom ->
            if
              (not folded.(top)) && (not folded.(bottom)) && top <> bottom
              && List.for_all (fun r -> not (List.mem r users.(bottom))) users.(top)
              && users.(top) <> [] && users.(bottom) <> []
            then begin
              add_pair_edges top bottom;
              match topo_order n_rows edges with
              | Some _ ->
                folded.(top) <- true;
                folded.(bottom) <- true;
                folds := { top; bottom } :: !folds
              | None -> remove_pair_edges top bottom
            end)
          cols_by_usage)
    cols_by_usage;
  let row_order =
    match topo_order n_rows edges with
    | Some o -> o
    | None -> assert false (* every accepted fold kept the graph acyclic *)
  in
  {
    folds = List.rev !folds;
    row_order;
    physical_columns = n_cols - List.length !folds;
  }

let validate plane r =
  let n_rows = Plane.rows plane and n_cols = Plane.cols plane in
  Array.length r.row_order = n_rows
  && List.sort compare (Array.to_list r.row_order) = List.init n_rows Fun.id
  && r.physical_columns = n_cols - List.length r.folds
  && begin
       let position = Array.make n_rows 0 in
       Array.iteri (fun pos row -> position.(row) <- pos) r.row_order;
       let folded_cols = List.concat_map (fun f -> [ f.top; f.bottom ]) r.folds in
       List.sort_uniq compare folded_cols = List.sort compare folded_cols
       && List.for_all
            (fun f ->
              let top_users = column_users plane f.top in
              let bottom_users = column_users plane f.bottom in
              List.for_all
                (fun a -> List.for_all (fun b -> position.(a) < position.(b)) bottom_users)
                top_users)
            r.folds
     end

let folded_pla_area tech pla =
  let fold_cols plane = (fold_plane plane).physical_columns in
  let and_plane = Pla.and_plane pla and or_plane = Pla.or_plane pla in
  tech.Device.Tech.cell_area
  * ((fold_cols and_plane * Plane.rows and_plane)
    + (fold_cols or_plane * Plane.rows or_plane))
