(** Configuration bitstreams for GNOR arrays.

    A deployed reconfigurable part needs its configuration stored and
    shipped: two bits per crosspoint (three polarity states plus a spare
    code), row-major, planes in sequence, with a small header carrying the
    geometry and an integrity checksum. The format round-trips through
    {!Program} — a loaded bitstream is just a sequence of write steps. *)

type t
(** An encoded configuration. *)

val of_pla : Pla.t -> t

val of_planes : Plane.t list -> t

val to_planes : t -> Plane.t list
(** Raises [Invalid_argument] on corrupt data (bad magic, checksum or
    trailing bytes). *)

val to_pla : n_in:int -> n_out:int -> inverted_outputs:bool array -> t -> Pla.t
(** Reassemble a two-plane bitstream into a PLA (same conventions as
    {!Pla.of_planes}). *)

val to_bytes : t -> string

val of_bytes : string -> t
(** Validates the header and checksum. *)

val write_file : string -> t -> unit

val read_file : string -> t

val size_bytes : t -> int

val program_steps : t -> int
(** Crosspoints encoded = write steps needed to load the part. *)
