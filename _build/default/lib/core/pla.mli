(** The ambipolar-CNFET PLA (paper §4, Figs. 3–4).

    Two cascaded GNOR planes realize a sum-of-products: the first plane has
    one row per product term and — thanks to internal inversion — only
    {e one column per input}; the second plane has one row per output. The
    second plane's GNOR computes the NOR of the selected product terms, so
    each output is available in both polarities; an output driver inverts
    where needed (this freedom is what enables output-phase optimization).

    Mapping of a cube to an AND-plane row: a positive literal programs the
    crosspoint to [Invert] (the device discharges the row when the input is
    low, i.e. the row stays high only if the input is 1), a negative
    literal programs [Pass], an absent input [Drop]. *)

type t

val of_cover : ?inverted_outputs:bool array -> Logic.Cover.t -> t
(** Map a cover onto a PLA. [inverted_outputs.(o)] (default all [false])
    declares that the cover's output [o] is the {e complement} of the
    desired function (negative phase), in which case the output driver is
    configured not to invert. *)

val of_minimized : ?dc:Logic.Cover.t -> Logic.Cover.t -> t
(** Convenience: espresso-minimize, then map. *)

val of_planes : n_in:int -> n_out:int -> and_plane:Plane.t -> or_plane:Plane.t -> inverted_outputs:bool array -> t
(** Assemble a PLA from explicit plane configurations (the AND plane must
    have [n_in] columns wide rows equal to the OR plane's columns;
    [inverted_outputs] follows {!of_cover}'s convention). Used by repair
    and by tests that build planes directly. *)

val num_inputs : t -> int

val num_outputs : t -> int

val num_products : t -> int

val and_plane : t -> Plane.t

val or_plane : t -> Plane.t

val output_inverted : t -> int -> bool
(** Whether the driver of output [o] inverts the second plane's row. *)

val eval : t -> bool array -> bool array
(** Zero-delay functional evaluation. *)

val eval_products : t -> bool array -> bool array
(** Product-term values for an input assignment (first-plane outputs). *)

val verify_against : t -> Logic.Cover.t -> bool
(** Exhaustive check (inputs ≤ 16) that the PLA implements the cover. *)

val crosspoint_count : t -> int
(** Total devices in both planes. *)

(** Switch-level realization: both planes share a netlist; the planes are
    clocked by two phases and each output has a static inverting/buffering
    driver. *)
type hw = {
  netlist : Circuit.Netlist.t;
  clock1 : Circuit.Netlist.net;
  clock2 : Circuit.Netlist.net;
  input_nets : Circuit.Netlist.net array;
  product_gates : Gnor.gate array;
  output_gates : Gnor.gate array;
  output_nets : Circuit.Netlist.net array;
}

val build_hw : ?params:Device.Ambipolar.params -> t -> hw

val simulate_hw : hw -> bool array -> bool array
(** Three-phase schedule: pre-charge both planes; evaluate plane 1;
    evaluate plane 2 while plane 1 holds. *)
