(** The paper's PLA area and wire-count models (§5, Table 1).

    Classical PLA planes need both polarities of every input, one column
    each; a GNOR plane generates polarity internally, so one column per
    input suffices. With [p] product terms:

    {ul
    {- classical (Flash/EEPROM): [cell_area × (2·n_in + n_out) × p];}
    {- ambipolar CNFET:          [cell_area × (n_in + n_out) × p].}}

    The crosspoint counts are exactly the devices in the AND and OR planes.
    Wire counts follow the same column structure and are what drives the
    FPGA routing advantage ("number of signals to route reduced by almost
    the factor 2"). *)

type profile = { n_in : int; n_out : int; n_products : int }

val profile_of_cover : Logic.Cover.t -> profile

val profile_of_pla : Pla.t -> profile

val pla_area : Device.Tech.t -> profile -> int
(** Area in units of [L²]. *)

val basic_cell_area : Device.Tech.t -> int

val and_plane_crosspoints : Device.Tech.t -> profile -> int

val or_plane_crosspoints : Device.Tech.t -> profile -> int

val input_wires : Device.Tech.t -> profile -> int
(** Signals to route into the PLA: [2·n_in] classical, [n_in] GNOR. *)

val total_wires : Device.Tech.t -> profile -> int
(** Input columns plus output lines. *)

val wire_reduction_factor : profile -> float
(** Classical input wires over GNOR input wires (≈ 2). *)

val area_ratio : Device.Tech.t -> Device.Tech.t -> profile -> float
(** [area_ratio a b p] = area in technology [a] ÷ area in technology [b]. *)

val cnfet_saving_vs : Device.Tech.t -> profile -> float
(** Fractional area saving of the CNFET PLA against the given technology
    (positive = CNFET smaller). *)

val crossover_inputs : Device.Tech.t -> n_out:int -> int option
(** Smallest input count at which the CNFET PLA beats the given classical
    technology, independent of the product count; [None] if it never
    does. *)
