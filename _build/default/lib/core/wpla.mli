(** Whirlpool PLA: four GNOR planes in a ring (paper §5; Brayton et al.,
    ICCAD 2002).

    The cascade of four NOR planes — realizable here because crossbars can
    interleave GNOR planes — implements each output through one of two
    NOR-NOR pairs. Doppio-Espresso decides per output which polarity
    (hence which pair) is cheaper; product terms are shared inside each
    pair. This module maps a {!Espresso.Doppio.result} onto two
    {!Pla}-style plane pairs and exposes the combined structure. *)

type t

val of_function : ?dc:Logic.Cover.t -> Logic.Cover.t -> t
(** Run Doppio-Espresso on the function and build the ring. *)

val of_doppio : n_in:int -> n_out:int -> Espresso.Doppio.result -> t

val num_inputs : t -> int

val num_outputs : t -> int

val num_planes : t -> int
(** Always 4. *)

val products : t -> int
(** Product terms across both pairs (the Whirlpool cost metric). *)

val products_two_level : t -> int
(** Product count of the plain two-plane espresso mapping (baseline). *)

val positive_pla : t -> Pla.t option
(** The pair implementing positively-phased outputs ([None] when no output
    chose that polarity). *)

val negative_pla : t -> Pla.t option

val choice : t -> bool array
(** Per-output polarity choice (true = positive pair). *)

val eval : t -> bool array -> bool array

val verify_against : t -> Logic.Cover.t -> bool
(** Exhaustive equivalence check against the original function
    (inputs ≤ 16). *)

val area : Device.Tech.t -> t -> int
(** Total crosspoint area of the four planes. *)
