(** A GNOR plane: a rectangular array of ambipolar CNFETs forming one GNOR
    gate per row over a shared set of input columns (paper Fig. 4).

    The configuration is a matrix of {!Gnor.input_mode}s, one per
    crosspoint. The plane is the unit on which the programming protocol
    ({!Program}) and defect injection operate. *)

type t

val create : rows:int -> cols:int -> t
(** All crosspoints start in the [Drop] state. *)

val rows : t -> int

val cols : t -> int

val mode : t -> row:int -> col:int -> Gnor.input_mode

val set_mode : t -> row:int -> col:int -> Gnor.input_mode -> unit

val row_modes : t -> int -> Gnor.input_mode array
(** Copy of one row's configuration. *)

val configure_row : t -> int -> Gnor.input_mode array -> unit

val eval : t -> bool array -> bool array
(** Zero-delay evaluation: output [r] is the GNOR of row [r] applied to the
    column values. *)

val crosspoint_count : t -> int
(** rows × cols — the device count driving the area model. *)

val used_crosspoints : t -> int
(** Crosspoints not in the [Drop] state. *)

val iter : (int -> int -> Gnor.input_mode -> unit) -> t -> unit

val copy : t -> t

val equal : t -> t -> bool

(** Switch-level realization. *)
type hw = {
  netlist : Circuit.Netlist.t;
  clock : Circuit.Netlist.net;
  input_nets : Circuit.Netlist.net array;
  gates : Gnor.gate array;
}

val build_hw : ?params:Device.Ambipolar.params -> t -> hw
(** Instantiate the plane on a fresh netlist and program every crosspoint. *)

val simulate_hw : hw -> bool array -> bool array
(** Drive the inputs, run pre-charge then evaluate, read every row output. *)
