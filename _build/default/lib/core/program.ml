module A = Device.Ambipolar

type t = {
  prm : A.params;
  disturb : float;
  nrows : int;
  ncols : int;
  stored : float array array;
  mutable nsteps : int;
}

let create ?(params = A.default) ?(disturb = 0.0) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Program.create";
  {
    prm = params;
    disturb;
    nrows = rows;
    ncols = cols;
    stored = Array.init rows (fun _ -> Array.make cols (A.v_zero params));
    nsteps = 0;
  }

let rows t = t.nrows
let cols t = t.ncols

let check t ~row ~col =
  if row < 0 || row >= t.nrows || col < 0 || col >= t.ncols then
    invalid_arg "Program: out of range"

let write t ~row ~col vpg =
  check t ~row ~col;
  t.stored.(row).(col) <- vpg;
  if t.disturb > 0.0 then begin
    (* Half-selected cells share either the row or the column select line
       and creep toward VPG. *)
    for c = 0 to t.ncols - 1 do
      if c <> col then
        t.stored.(row).(c) <- t.stored.(row).(c) +. (t.disturb *. (vpg -. t.stored.(row).(c)))
    done;
    for r = 0 to t.nrows - 1 do
      if r <> row then
        t.stored.(r).(col) <- t.stored.(r).(col) +. (t.disturb *. (vpg -. t.stored.(r).(col)))
    done
  end;
  t.nsteps <- t.nsteps + 1

let write_mode t ~row ~col m = write t ~row ~col (Gnor.mode_pg_voltage t.prm m)

let program_plane t plane =
  if Plane.rows plane <> t.nrows || Plane.cols plane <> t.ncols then
    invalid_arg "Program.program_plane: shape mismatch";
  Plane.iter (fun r c m -> write_mode t ~row:r ~col:c m) plane

let steps t = t.nsteps

let stored_voltage t ~row ~col =
  check t ~row ~col;
  t.stored.(row).(col)

let readback t =
  let plane = Plane.create ~rows:t.nrows ~cols:t.ncols in
  for r = 0 to t.nrows - 1 do
    for c = 0 to t.ncols - 1 do
      let pol = A.polarity_of_pg t.prm t.stored.(r).(c) in
      Plane.set_mode plane ~row:r ~col:c (Gnor.mode_of_polarity pol)
    done
  done;
  plane

let verify t plane = Plane.equal (readback t) plane

let age t ~seconds =
  for r = 0 to t.nrows - 1 do
    for c = 0 to t.ncols - 1 do
      t.stored.(r).(c) <- A.retention_after t.prm t.stored.(r).(c) seconds
    done
  done
