module Cover = Logic.Cover
module Cube = Logic.Cube

type half = { pla : Pla.t; out_map : int array (* local output -> global output *) }

type t = {
  n_in : int;
  n_out : int;
  positive : half option;
  negative : half option;
  choice : bool array;
  baseline_products : int;
}

(* Restrict a cover to the outputs selected by [keep], renumbering them
   densely; cubes left with no output disappear. *)
let sub_cover cover keep =
  let n_in = Cover.num_inputs cover and n_out = Cover.num_outputs cover in
  let selected = List.filter (fun o -> keep o) (List.init n_out Fun.id) in
  let out_map = Array.of_list selected in
  let n_sub = Array.length out_map in
  if n_sub = 0 then None
  else begin
    let local_of_global = Hashtbl.create 8 in
    Array.iteri (fun l g -> Hashtbl.replace local_of_global g l) out_map;
    let shrink c =
      let outs = Cube.outputs c in
      let sub_outs = Util.Bitvec.create n_sub in
      let any = ref false in
      Util.Bitvec.iter_set
        (fun g ->
          match Hashtbl.find_opt local_of_global g with
          | Some l ->
            Util.Bitvec.set sub_outs l true;
            any := true
          | None -> ())
        outs;
      if !any then Some (Cube.of_literals (List.init n_in (Cube.get c)) ~outs:sub_outs)
      else None
    in
    let cubes = List.filter_map shrink (Cover.cubes cover) in
    Some (Cover.make ~n_in ~n_out:n_sub cubes, out_map)
  end

let of_doppio ~n_in ~n_out (d : Espresso.Doppio.result) =
  let positive =
    match sub_cover d.Espresso.Doppio.positive (fun o -> d.Espresso.Doppio.choice.(o)) with
    | None -> None
    | Some (c, out_map) -> Some { pla = Pla.of_cover c; out_map }
  in
  let negative =
    match
      sub_cover d.Espresso.Doppio.negative (fun o -> not d.Espresso.Doppio.choice.(o))
    with
    | None -> None
    | Some (c, out_map) ->
      (* The negative cover holds ¬f, so its drivers must not invert. *)
      let inverted = Array.make (Cover.num_outputs c) true in
      Some { pla = Pla.of_cover ~inverted_outputs:inverted c; out_map }
  in
  {
    n_in;
    n_out;
    positive;
    negative;
    choice = Array.copy d.Espresso.Doppio.choice;
    baseline_products = d.Espresso.Doppio.products_two_level;
  }

let of_function ?dc cover =
  let d = Espresso.Doppio.minimize ?dc cover in
  of_doppio ~n_in:(Cover.num_inputs cover) ~n_out:(Cover.num_outputs cover) d

let num_inputs t = t.n_in
let num_outputs t = t.n_out
let num_planes _ = 4

let half_products = function None -> 0 | Some h -> Pla.num_products h.pla

let products t = half_products t.positive + half_products t.negative

let products_two_level t = t.baseline_products

let positive_pla t = Option.map (fun h -> h.pla) t.positive
let negative_pla t = Option.map (fun h -> h.pla) t.negative

let choice t = Array.copy t.choice

let eval t inputs =
  let out = Array.make t.n_out false in
  let run = function
    | None -> ()
    | Some h ->
      let vals = Pla.eval h.pla inputs in
      Array.iteri (fun l g -> out.(g) <- vals.(l)) h.out_map
  in
  run t.positive;
  run t.negative;
  out

let verify_against t cover =
  if Cover.num_inputs cover <> t.n_in || Cover.num_outputs cover <> t.n_out then false
  else if t.n_in > 16 then invalid_arg "Wpla.verify_against: too many inputs"
  else begin
    let ok = ref true in
    for m = 0 to (1 lsl t.n_in) - 1 do
      let assignment = Array.init t.n_in (fun i -> m land (1 lsl i) <> 0) in
      let got = eval t assignment in
      let want = Cover.eval cover assignment in
      for o = 0 to t.n_out - 1 do
        if got.(o) <> Util.Bitvec.get want o then ok := false
      done
    done;
    !ok
  end

let area tech t =
  let half_area = function
    | None -> 0
    | Some h -> tech.Device.Tech.cell_area * Pla.crosspoint_count h.pla
  in
  half_area t.positive + half_area t.negative
