(** The PLA configuration protocol (paper §4).

    To avoid one wire per polarity gate, the architecture stores a charge
    on every PG: a single global line [VPG] reaches all polarity gates and
    a device at position [(i, j)] is selected for writing by raising the
    row and column select lines [VSelR_i] and [VSelC_j]; only the selected
    device's PG node is connected to [VPG] and takes its voltage.

    This module models that state machine at the charge level: stored
    voltages, write steps, optional half-select disturb, retention decay,
    and readback into {!Plane} configurations. *)

type t

val create : ?params:Device.Ambipolar.params -> ?disturb:float -> rows:int -> cols:int -> unit -> t
(** Fresh programmer for a [rows × cols] plane; every PG starts at [V0]
    (all devices off). [disturb] (default 0) is the fraction by which a
    {e half-selected} cell's stored voltage drifts toward [VPG] on each
    write step — a classic array-programming hazard. *)

val rows : t -> int

val cols : t -> int

val write : t -> row:int -> col:int -> float -> unit
(** One protocol step: select [(row, col)], drive [VPG] to the given
    voltage. Increments the step counter; applies disturb to half-selected
    cells. *)

val write_mode : t -> row:int -> col:int -> Gnor.input_mode -> unit
(** {!write} with the canonical voltage of a mode. *)

val program_plane : t -> Plane.t -> unit
(** Program every crosspoint of the target configuration, one write step
    per device ("every ambipolar CNFET is selected individually"). *)

val steps : t -> int
(** Number of write steps performed so far. *)

val stored_voltage : t -> row:int -> col:int -> float

val readback : t -> Plane.t
(** Interpret every stored voltage as a polarity and return the resulting
    configuration. *)

val verify : t -> Plane.t -> bool
(** Does the readback match the target configuration? *)

val age : t -> seconds:float -> unit
(** Apply retention decay to every stored charge
    ({!Device.Ambipolar.retention_after}). *)
