module Cover = Logic.Cover
module Cube = Logic.Cube

type spec = {
  name : string;
  inputs : int;
  outputs : int;
  states : int;
  reset : int;
  next : int -> bool array -> int;
  out : int -> bool array -> bool array;
}

type encoding = Binary | One_hot

type t = {
  pla : Pla.t;
  enc : encoding;
  n_state_bits : int;
  spec_inputs : int;
  spec_outputs : int;
  reset_code : bool array;
}

let check spec =
  if spec.inputs < 0 || spec.inputs > 8 then invalid_arg "Fsm: inputs out of range";
  if spec.states < 1 || spec.states > 64 then invalid_arg "Fsm: states out of range";
  if spec.reset < 0 || spec.reset >= spec.states then invalid_arg "Fsm: bad reset state";
  if spec.outputs < 0 then invalid_arg "Fsm: bad outputs"

let bits_for states =
  let rec go k = if 1 lsl k >= states then k else go (k + 1) in
  go 1

let encode_state enc n_bits states s =
  ignore states;
  match enc with
  | Binary -> Array.init n_bits (fun b -> (s lsr b) land 1 = 1)
  | One_hot -> Array.init n_bits (fun b -> b = s)

let decode_state enc n_bits code =
  match enc with
  | Binary ->
    let v = ref 0 in
    for b = n_bits - 1 downto 0 do
      v := (2 * !v) + if code.(b) then 1 else 0
    done;
    Some !v
  | One_hot ->
    let hot = ref [] in
    Array.iteri (fun b on -> if on then hot := b :: !hot) code;
    (match !hot with [ b ] -> Some b | _ -> None)

let synthesize ?(encoding = Binary) spec =
  check spec;
  let n_state_bits = match encoding with Binary -> bits_for spec.states | One_hot -> spec.states in
  let n_in = spec.inputs + n_state_bits in
  let n_out = n_state_bits + spec.outputs in
  (* Tabulate on-set and don't-care set: minterms whose state-bit part is
     not a valid code are free. *)
  let on = ref [] and dc = ref [] in
  let valid_code code =
    match decode_state encoding n_state_bits code with
    | Some s -> if s < spec.states then Some s else None
    | None -> None
  in
  for m = 0 to (1 lsl n_in) - 1 do
    let assignment = Array.init n_in (fun i -> m land (1 lsl i) <> 0) in
    let ins = Array.sub assignment 0 spec.inputs in
    let code = Array.sub assignment spec.inputs n_state_bits in
    let lits =
      List.init n_in (fun i -> if assignment.(i) then Cube.One else Cube.Zero)
    in
    match valid_code code with
    | None ->
      (* Whole output row is a don't-care. *)
      let outs = Util.Bitvec.create_full n_out in
      dc := Cube.of_literals lits ~outs :: !dc
    | Some s ->
      let s' = spec.next s ins in
      if s' < 0 || s' >= spec.states then invalid_arg "Fsm: next out of range";
      let code' = encode_state encoding n_state_bits spec.states s' in
      let ovec = spec.out s ins in
      if Array.length ovec <> spec.outputs then invalid_arg "Fsm: output width";
      let outs = Util.Bitvec.create n_out in
      Array.iteri (fun b on_bit -> if on_bit then Util.Bitvec.set outs b true) code';
      Array.iteri (fun o on_bit -> if on_bit then Util.Bitvec.set outs (n_state_bits + o) true) ovec;
      if not (Util.Bitvec.is_empty outs) then on := Cube.of_literals lits ~outs :: !on
  done;
  let on = Cover.make ~n_in ~n_out !on in
  let dc = Cover.make ~n_in ~n_out !dc in
  let minimized = Espresso.Minimize.cover ~dc on in
  {
    pla = Pla.of_cover minimized;
    enc = encoding;
    n_state_bits;
    spec_inputs = spec.inputs;
    spec_outputs = spec.outputs;
    reset_code = encode_state encoding n_state_bits spec.states spec.reset;
  }

let pla t = t.pla

let state_bits t = t.n_state_bits

let encoding_of t = t.enc

let reset_vector t = Array.copy t.reset_code

let encode t s = encode_state t.enc t.n_state_bits 0 s

let step t ~registers inputs =
  if Array.length registers <> t.n_state_bits then invalid_arg "Fsm.step: register width";
  if Array.length inputs <> t.spec_inputs then invalid_arg "Fsm.step: input width";
  let all = Array.append inputs registers in
  let outs = Pla.eval t.pla all in
  (Array.sub outs 0 t.n_state_bits, Array.sub outs t.n_state_bits t.spec_outputs)

let run t stimulus =
  let registers = ref (reset_vector t) in
  List.map
    (fun inputs ->
      let regs', outs = step t ~registers:!registers inputs in
      registers := regs';
      outs)
    stimulus

let verify_against_spec ?(steps = 500) ?(seed = 1) t spec =
  let rng = Util.Rng.create seed in
  let registers = ref (reset_vector t) in
  let state = ref spec.reset in
  let ok = ref true in
  for _ = 1 to steps do
    let inputs = Array.init spec.inputs (fun _ -> Util.Rng.bool rng) in
    let regs', outs = step t ~registers:!registers inputs in
    let want_out = spec.out !state inputs in
    if outs <> want_out then ok := false;
    state := spec.next !state inputs;
    registers := regs';
    (match decode_state t.enc t.n_state_bits regs' with
    | Some s when s = !state -> ()
    | _ -> ok := false)
  done;
  !ok

let sequence_detector ~pattern =
  let pat = Array.of_list pattern in
  let n = Array.length pat in
  if n < 1 then invalid_arg "Fsm.sequence_detector: empty pattern";
  (* State = length of the longest pattern prefix matching the input
     history's suffix (KMP). [border k] is the longest proper border of
     pat[0..k-1]. *)
  let border k =
    let rec try_len l =
      if l = 0 then 0
      else if Array.sub pat 0 l = Array.sub pat (k - l) l then l
      else try_len (l - 1)
    in
    if k = 0 then 0 else try_len (k - 1)
  in
  let rec advance matched bit =
    if matched < n && pat.(matched) = bit then matched + 1
    else if matched = 0 then 0
    else advance (border matched) bit
  in
  {
    name = "seqdet";
    inputs = 1;
    outputs = 1;
    states = n;
    reset = 0;
    next =
      (fun s ins ->
        let m = advance s ins.(0) in
        (* A full match is transient: continue from the pattern's border. *)
        if m = n then border n else m);
    out = (fun s ins -> [| advance s ins.(0) = n |]);
  }

let counter ~modulo =
  if modulo < 2 || modulo > 64 then invalid_arg "Fsm.counter";
  let out_bits = bits_for modulo in
  {
    name = "counter";
    inputs = 1;
    outputs = out_bits;
    states = modulo;
    reset = 0;
    next = (fun s ins -> if ins.(0) then (s + 1) mod modulo else s);
    out = (fun s _ -> Array.init out_bits (fun b -> (s lsr b) land 1 = 1));
  }
