(** Simple column folding of PLA planes (Hachtel–Hemachandra–Newton–
    Sangiovanni style).

    Two input columns can share one physical column when no product row
    uses both {e and} the rows can be ordered so every user of the first
    sits above every user of the second — the column is then split by a
    cut, entering from the top for one signal and from the bottom for the
    other. Folding shrinks exactly the dimension the paper's area model
    charges per input column, compounding with the GNOR plane's built-in
    halving.

    The folder greedily pairs disjoint columns while the accumulated
    row-precedence constraints stay acyclic, and returns a witness row
    order; {!validate} re-checks the separation property. *)

type fold = { top : int; bottom : int }
(** Logical columns sharing one physical column: [top] enters from above
    the cut, [bottom] from below. *)

type result = {
  folds : fold list;
  row_order : int array;  (** permutation: position → original row *)
  physical_columns : int;  (** columns after folding *)
}

val fold_plane : Plane.t -> result
(** Fold as many column pairs as the precedence constraints allow. *)

val validate : Plane.t -> result -> bool
(** Every fold's users are disjoint and separated by the row order, and
    the physical column count is consistent. *)

val folded_pla_area : Device.Tech.t -> Pla.t -> int
(** Area of the PLA with both planes column-folded (cell × physical
    crosspoints). *)

val column_users : Plane.t -> int -> int list
(** Rows whose crosspoint in the column is not [Drop]. *)
