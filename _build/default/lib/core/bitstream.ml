(* Format (all integers big-endian 16-bit):
     "CNF1"  magic
     plane count
     per plane: rows, cols, then ceil(rows·cols/4) bytes of 2-bit codes
       (00 = Drop, 01 = Pass, 10 = Invert), row-major, LSB-first in each
       byte
     checksum: 16-bit sum of all preceding bytes mod 65521 *)

type t = { planes : Plane.t list }

let magic = "CNF1"

let code_of_mode = function Gnor.Drop -> 0 | Gnor.Pass -> 1 | Gnor.Invert -> 2

let mode_of_code = function
  | 0 -> Gnor.Drop
  | 1 -> Gnor.Pass
  | 2 -> Gnor.Invert
  | _ -> invalid_arg "Bitstream: bad crosspoint code"

let of_planes planes = { planes = List.map Plane.copy planes }

let of_pla pla = of_planes [ Pla.and_plane pla; Pla.or_plane pla ]

let to_planes t = List.map Plane.copy t.planes

let to_pla ~n_in ~n_out ~inverted_outputs t =
  match t.planes with
  | [ and_plane; or_plane ] -> Pla.of_planes ~n_in ~n_out ~and_plane ~or_plane ~inverted_outputs
  | _ -> invalid_arg "Bitstream.to_pla: expected exactly two planes"

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let to_bytes t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  add_u16 buf (List.length t.planes);
  List.iter
    (fun plane ->
      let rows = Plane.rows plane and cols = Plane.cols plane in
      if rows > 0xffff || cols > 0xffff then invalid_arg "Bitstream: plane too large";
      add_u16 buf rows;
      add_u16 buf cols;
      let n = rows * cols in
      let byte = ref 0 and filled = ref 0 in
      for idx = 0 to n - 1 do
        let code = code_of_mode (Plane.mode plane ~row:(idx / cols) ~col:(idx mod cols)) in
        byte := !byte lor (code lsl (2 * !filled));
        incr filled;
        if !filled = 4 then begin
          Buffer.add_char buf (Char.chr !byte);
          byte := 0;
          filled := 0
        end
      done;
      if !filled > 0 then Buffer.add_char buf (Char.chr !byte))
    t.planes;
  let body = Buffer.contents buf in
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) mod 65521) body;
  add_u16 buf !sum;
  Buffer.contents buf

let of_bytes s =
  let fail msg = invalid_arg ("Bitstream.of_bytes: " ^ msg) in
  let len = String.length s in
  if len < 8 then fail "truncated";
  if String.sub s 0 4 <> magic then fail "bad magic";
  (* checksum over everything but the trailing two bytes *)
  let sum = ref 0 in
  for i = 0 to len - 3 do
    sum := (!sum + Char.code s.[i]) mod 65521
  done;
  let u16 pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1] in
  if u16 (len - 2) <> !sum then fail "checksum mismatch";
  let pos = ref 4 in
  let read_u16 () =
    if !pos + 2 > len - 2 then fail "truncated";
    let v = u16 !pos in
    pos := !pos + 2;
    v
  in
  let n_planes = read_u16 () in
  let planes =
    List.init n_planes (fun _ ->
        let rows = read_u16 () in
        let cols = read_u16 () in
        if rows = 0 || cols = 0 then fail "empty plane";
        let plane = Plane.create ~rows ~cols in
        let n = rows * cols in
        let nbytes = (n + 3) / 4 in
        if !pos + nbytes > len - 2 then fail "truncated plane data";
        for idx = 0 to n - 1 do
          let b = Char.code s.[!pos + (idx / 4)] in
          let code = (b lsr (2 * (idx mod 4))) land 3 in
          Plane.set_mode plane ~row:(idx / cols) ~col:(idx mod cols) (mode_of_code code)
        done;
        pos := !pos + nbytes;
        plane)
  in
  if !pos <> len - 2 then fail "trailing bytes";
  { planes }

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_bytes t);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_bytes s

let size_bytes t = String.length (to_bytes t)

let program_steps t =
  List.fold_left (fun acc p -> acc + Plane.crosspoint_count p) 0 t.planes
