(** Finite-state machines on a registered PLA.

    Reconfigurable logic is rarely purely combinational: the natural
    sequential extension of the paper's architecture is a GNOR PLA whose
    feedback outputs pass through a state register. This module
    synthesizes a behavioural Mealy specification into such a registered
    PLA:

    {ul
    {- states are encoded in binary or one-hot;}
    {- the (state, input) → (next-state, output) relation is tabulated,
       with {e unused state codes contributing don't-cares} that the
       minimizer exploits;}
    {- the combinational part is espresso-minimized and mapped onto a
       {!Pla}.}} *)

type spec = {
  name : string;
  inputs : int;  (** primary-input count (≤ 8) *)
  outputs : int;
  states : int;  (** ≥ 1, ≤ 64 *)
  reset : int;
  next : int -> bool array -> int;  (** behavioural next-state *)
  out : int -> bool array -> bool array;  (** Mealy output function *)
}

type encoding = Binary | One_hot

type t

val synthesize : ?encoding:encoding -> spec -> t
(** Default encoding: [Binary]. *)

val pla : t -> Pla.t
(** The combinational core: inputs = primary inputs ++ state bits,
    outputs = next-state bits ++ primary outputs. *)

val state_bits : t -> int

val encoding_of : t -> encoding

val reset_vector : t -> bool array
(** Register contents encoding the reset state. *)

val encode : t -> int -> bool array
(** Code of a behavioural state. *)

val step : t -> registers:bool array -> bool array -> bool array * bool array
(** [step t ~registers inputs] = (next registers, outputs), evaluated
    through the mapped PLA. *)

val run : t -> bool array list -> bool array list
(** Output trace from reset for an input sequence. *)

val verify_against_spec : ?steps:int -> ?seed:int -> t -> spec -> bool
(** Drive the synthesized machine and the behavioural spec with the same
    random stimulus from reset and compare outputs and (decoded) states
    at every step (default 500 steps). *)

(** {1 Ready-made specifications} *)

val sequence_detector : pattern:bool list -> spec
(** 1-input 1-output Mealy detector asserting on every (overlapping)
    occurrence of [pattern]. *)

val counter : modulo:int -> spec
(** Mod-[modulo] up-counter with an enable input; outputs the binary
    count. *)
