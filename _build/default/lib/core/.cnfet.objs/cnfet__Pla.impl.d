lib/core/pla.ml: Array Circuit Device Espresso Gnor Logic Plane Printf Util
