lib/core/program_hw.ml: Array Circuit Device Gnor List Plane Printf
