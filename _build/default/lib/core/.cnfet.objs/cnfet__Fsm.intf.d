lib/core/fsm.mli: Pla
