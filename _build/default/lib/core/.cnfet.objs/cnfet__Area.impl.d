lib/core/area.ml: Device Logic Pla
