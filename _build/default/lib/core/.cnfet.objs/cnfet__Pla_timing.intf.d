lib/core/pla_timing.mli: Area Device Util
