lib/core/wpla.mli: Device Espresso Logic Pla
