lib/core/wpla.ml: Array Device Espresso Fun Hashtbl List Logic Option Pla Util
