lib/core/cascade.ml: Array Circuit Device Espresso Fun Gnor Hashtbl List Logic Plane Printf Util
