lib/core/program_hw.mli: Circuit Device Gnor Plane
