lib/core/pla.mli: Circuit Device Gnor Logic Plane
