lib/core/gnor.ml: Array Circuit Device Format Printf
