lib/core/cascade.mli: Circuit Device Espresso Logic
