lib/core/pla_timing.ml: Area Device List Util
