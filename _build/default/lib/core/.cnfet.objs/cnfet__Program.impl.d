lib/core/program.ml: Array Device Gnor Plane
