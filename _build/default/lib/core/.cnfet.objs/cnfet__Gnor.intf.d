lib/core/gnor.mli: Circuit Device Format
