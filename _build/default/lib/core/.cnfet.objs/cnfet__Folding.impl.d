lib/core/folding.ml: Array Device Fun Gnor Hashtbl List Pla Plane
