lib/core/folding.mli: Device Pla Plane
