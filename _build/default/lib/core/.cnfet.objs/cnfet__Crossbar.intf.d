lib/core/crossbar.mli: Circuit Device
