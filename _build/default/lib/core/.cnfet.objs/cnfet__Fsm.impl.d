lib/core/fsm.ml: Array Espresso List Logic Pla Util
