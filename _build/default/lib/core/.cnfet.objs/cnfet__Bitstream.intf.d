lib/core/bitstream.mli: Pla Plane
