lib/core/program.mli: Device Gnor Plane
