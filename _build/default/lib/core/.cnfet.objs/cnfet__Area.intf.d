lib/core/area.mli: Device Logic Pla
