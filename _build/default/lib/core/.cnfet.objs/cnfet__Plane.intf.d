lib/core/plane.mli: Circuit Device Gnor
