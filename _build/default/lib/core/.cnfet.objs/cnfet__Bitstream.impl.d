lib/core/bitstream.ml: Buffer Char Gnor List Pla Plane String
