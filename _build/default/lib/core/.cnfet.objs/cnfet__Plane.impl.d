lib/core/plane.ml: Array Circuit Gnor Printf
