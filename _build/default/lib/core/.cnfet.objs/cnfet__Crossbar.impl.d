lib/core/crossbar.ml: Array Bool Circuit Device Fun Hashtbl List Printf
