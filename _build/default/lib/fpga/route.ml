type routed = { connection : Place.connection; path : (int * int) list }

type result = {
  routes : routed list;
  iterations : int;
  overflow : int;
  max_usage : int;
  total_segments : int;
  usage_histogram : (int * int) list;
  usage_at : int * int -> int;
}

let capacity_per_cell (a : Arch.t) = 2 * a.Arch.tracks

(* Cells are channel positions aligned with the CLB grid, extended one ring
   outward for the I/O pads: coordinates in [-1, grid]. *)
let cell_index grid (x, y) = ((y + 1) * (grid + 2)) + (x + 1)

let in_bounds grid (x, y) = x >= -1 && x <= grid && y >= -1 && y <= grid

let neighbours (x, y) = [ (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ]

(* Multi-source A*: grow from every cell of [seeds] (at cost 0) to [dst].
   Returns the path from the seed it grew out of to [dst], inclusive. *)
let astar_from_tree grid ~cost ~seeds ~dst =
  let ncells = (grid + 2) * (grid + 2) in
  let dist = Array.make ncells infinity in
  let prev = Array.make ncells None in
  let heur (x, y) =
    let dx, dy = dst in
    float_of_int (abs (x - dx) + abs (y - dy))
  in
  let module Pq = Set.Make (struct
    type t = float * int * (int * int)

    let compare = compare
  end) in
  let q = ref Pq.empty in
  List.iter
    (fun xy ->
      let i = cell_index grid xy in
      if dist.(i) > 0.0 then begin
        dist.(i) <- 0.0;
        q := Pq.add (heur xy, i, xy) !q
      end)
    seeds;
  let found = ref false in
  while (not !found) && not (Pq.is_empty !q) do
    let ((_, ci, cxy) as elt) = Pq.min_elt !q in
    q := Pq.remove elt !q;
    if cxy = dst then found := true
    else
      List.iter
        (fun nxy ->
          if in_bounds grid nxy then begin
            let ni = cell_index grid nxy in
            let nd = dist.(ci) +. cost nxy in
            if nd < dist.(ni) then begin
              dist.(ni) <- nd;
              prev.(ni) <- Some cxy;
              q := Pq.add (nd +. heur nxy, ni, nxy) !q
            end
          end)
        (neighbours cxy)
  done;
  if not !found then None
  else begin
    let rec walk acc xy =
      match prev.(cell_index grid xy) with
      | Some p -> walk (xy :: acc) p
      | None -> xy :: acc
    in
    Some (walk [] dst)
  end

let route ?(max_iterations = 24) ?capacity ?(share_nets = false) placement =
  let a = Place.arch placement in
  let grid = a.Arch.grid in
  let wires = a.Arch.wires_per_connection in
  let cap = match capacity with Some c -> c | None -> capacity_per_cell a in
  let ncells = (grid + 2) * (grid + 2) in
  let usage = Array.make ncells 0 in
  let history = Array.make ncells 0.0 in
  let conns = Array.of_list (Place.connections placement) in
  let n_conns = Array.length conns in
  (* Nets: groups of connection indices sharing a driver. Without
     share_nets every connection is its own single-sink net. *)
  let nets =
    if not share_nets then List.init n_conns (fun k -> [ k ])
    else begin
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      Array.iteri
        (fun k c ->
          let key = c.Place.src in
          (match Hashtbl.find_opt tbl key with
          | None ->
            Hashtbl.replace tbl key [ k ];
            order := key :: !order
          | Some ks -> Hashtbl.replace tbl key (k :: ks)))
        conns;
      List.rev_map (fun key -> List.rev (Hashtbl.find tbl key)) !order
    end
  in
  let paths = Array.make n_conns [] in
  (* Channel cells each net currently occupies (interior of its tree). *)
  let net_cells = Array.make (List.length nets) [] in
  let occupy cells sign =
    List.iter
      (fun xy ->
        let i = cell_index grid xy in
        usage.(i) <- usage.(i) + (sign * wires))
      cells
  in
  let iteration = ref 0 in
  (* Pathfinder schedule: the present-overuse penalty sharpens every
     iteration so early exploration gives way to strict legality. *)
  let cost_of xy =
    let i = cell_index grid xy in
    let over = float_of_int (max 0 (usage.(i) + wires - cap)) in
    let pres_fac = 2.0 *. (1.4 ** float_of_int !iteration) in
    1.0 +. history.(i) +. (pres_fac *. over)
  in
  let overflow () = Array.fold_left (fun acc u -> acc + max 0 (u - cap)) 0 usage in
  let route_net net_id sinks =
    (* Rip up the previous tree. *)
    occupy net_cells.(net_id) (-1);
    net_cells.(net_id) <- [];
    let src = Place.source_loc placement conns.(List.hd sinks).Place.src in
    (* Tree: cell -> path from source to that cell, inclusive. *)
    let tree = Hashtbl.create 32 in
    Hashtbl.replace tree src [ src ];
    (* Nearest sinks first grow the trunk cheaply. *)
    let manhattan (x0, y0) (x1, y1) = abs (x0 - x1) + abs (y0 - y1) in
    let ordered =
      List.sort
        (fun k1 k2 ->
          compare
            (manhattan src conns.(k1).Place.dst_loc)
            (manhattan src conns.(k2).Place.dst_loc))
        sinks
    in
    List.iter
      (fun k ->
        let dst = conns.(k).Place.dst_loc in
        let seeds = Hashtbl.fold (fun xy _ acc -> xy :: acc) tree [] in
        match astar_from_tree grid ~cost:cost_of ~seeds ~dst with
        | None -> failwith "Route: no path (should not happen on a full grid)"
        | Some segment ->
          let join = List.hd segment in
          let prefix =
            match Hashtbl.find_opt tree join with
            | Some p -> p
            | None -> assert false
          in
          let full = prefix @ List.tl segment in
          paths.(k) <- full;
          (* Grow the tree along the new segment. *)
          let rec extend path_so_far = function
            | [] -> ()
            | cell :: rest ->
              let path_here = path_so_far @ [ cell ] in
              if not (Hashtbl.mem tree cell) then Hashtbl.replace tree cell path_here;
              extend path_here rest
          in
          extend prefix (List.tl segment))
      ordered;
    (* Occupy the tree interior: everything except the driver cell and the
       sink cells (dedicated pins, as in per-connection mode). *)
    let sink_cells = List.map (fun k -> conns.(k).Place.dst_loc) sinks in
    let cells =
      Hashtbl.fold
        (fun xy _ acc ->
          if xy = src || List.mem xy sink_cells then acc else xy :: acc)
        tree []
    in
    net_cells.(net_id) <- cells;
    occupy cells 1
  in
  let do_iteration () =
    incr iteration;
    List.iteri route_net nets;
    Array.iteri
      (fun i u -> if u > cap then history.(i) <- history.(i) +. (0.5 *. float_of_int (u - cap)))
      usage
  in
  do_iteration ();
  while overflow () > 0 && !iteration < max_iterations do
    do_iteration ()
  done;
  let routes =
    List.init n_conns (fun k -> { connection = conns.(k); path = paths.(k) })
  in
  let max_usage = Array.fold_left max 0 usage in
  let total_segments =
    List.fold_left (fun acc r -> acc + (List.length r.path - 1)) 0 routes
  in
  let histogram =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun u ->
        let cur = try Hashtbl.find tbl u with Not_found -> 0 in
        Hashtbl.replace tbl u (cur + 1))
      usage;
    List.sort compare (Hashtbl.fold (fun u n acc -> (u, n) :: acc) tbl [])
  in
  {
    routes;
    iterations = !iteration;
    overflow = overflow ();
    max_usage;
    total_segments;
    usage_histogram = histogram;
    usage_at = (fun xy -> if in_bounds grid xy then usage.(cell_index grid xy) else 0);
  }

let path_length r = List.length r.path - 1

let minimum_channel_width ?(max_tracks = 64) placement =
  let feasible tracks = (route ~capacity:(2 * tracks) placement).overflow = 0 in
  if not (feasible max_tracks) then None
  else begin
    (* Binary search for the smallest feasible track count. Feasibility is
       monotone for all practical purposes (more capacity never hurts the
       negotiated router). *)
    let rec search lo hi =
      (* invariant: hi feasible, lo infeasible (lo = 0 sentinel) *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if feasible mid then search lo mid else search mid hi
      end
    in
    Some (search 0 max_tracks)
  end
