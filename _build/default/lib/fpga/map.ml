module Cover = Logic.Cover
module Cube = Logic.Cube

type source = Pi of int | Block_out of int

type block = { cover : Cover.t; inputs : source array }

type t = { n_pi : int; blocks : block array; outputs : source array }

let block_count t = Array.length t.blocks

(* Support of a single-output cover: inputs bound in some cube. *)
let support cover =
  let n_in = Cover.num_inputs cover in
  let used = Array.make n_in false in
  List.iter
    (fun c ->
      for i = 0 to n_in - 1 do
        if Cube.get c i <> Cube.Dc then used.(i) <- true
      done)
    (Cover.cubes cover);
  List.filter (fun i -> used.(i)) (List.init n_in Fun.id)

(* Re-index a cover onto exactly the given variables. *)
let compress cover vars =
  let n_sub = List.length vars in
  let cubes =
    List.map
      (fun c ->
        Cube.of_literals (List.map (Cube.get c) vars) ~outs:(Cube.outputs c))
      (Cover.cubes cover)
  in
  Cover.make ~n_in:n_sub ~n_out:1 cubes

type sub = Const of bool | Sig of source

let map_cover ?(clb_inputs = 6) cover =
  if clb_inputs < 3 then invalid_arg "Map.map_cover: need at least 3 CLB inputs";
  let n_pi = Cover.num_inputs cover in
  let blocks = ref [] in
  let n_blocks = ref 0 in
  let add_block b =
    blocks := b :: !blocks;
    incr n_blocks;
    Block_out (!n_blocks - 1)
  in
  (* Share identical (minimized) sub-functions. *)
  let memo = Hashtbl.create 32 in
  let key f =
    String.concat "|" (List.sort compare (List.map Cube.to_string (Cover.cubes f)))
  in
  (* synth: single-output cover over the full PI space -> sub *)
  let rec synth f =
    let f = Espresso.Minimize.cover f in
    if Cover.is_empty f then Const false
    else if List.exists (fun c -> Cube.literal_count c = 0) (Cover.cubes f) then Const true
    else begin
      let k = key f in
      match Hashtbl.find_opt memo k with
      | Some s -> s
      | None ->
        let s = synth_uncached f in
        Hashtbl.replace memo k s;
        s
    end
  and synth_uncached f =
    let sup = support f in
    if List.length sup <= clb_inputs then
      Sig (add_block { cover = compress f sup; inputs = Array.of_list (List.map (fun i -> Pi i) sup) })
    else begin
      (* Shannon: split on the most frequently bound variable. *)
      let counts = Array.make (Cover.num_inputs f) 0 in
      List.iter
        (fun c ->
          List.iter (fun i -> if Cube.get c i <> Cube.Dc then counts.(i) <- counts.(i) + 1) sup)
        (Cover.cubes f);
      let x = List.fold_left (fun b i -> if counts.(i) > counts.(b) then i else b) (List.hd sup) sup in
      let hi = synth (Cover.cofactor_var f x Cube.One) in
      let lo = synth (Cover.cofactor_var f x Cube.Zero) in
      (* Recombine: f = x·hi + x'·lo over the available sub-signals. *)
      let inputs, cubes =
        let out1 = Util.Bitvec.of_list 1 [ 0 ] in
        let lit n_in pairs =
          List.fold_left
            (fun c (pos, lit) -> Cube.set c pos lit)
            (Cube.make ~n_in ~n_out:1 |> fun c -> Cube.with_outputs c out1)
            pairs
        in
        match (hi, lo) with
        | Sig a, Sig b ->
          ( [| Pi x; a; b |],
            [ lit 3 [ (0, Cube.One); (1, Cube.One) ]; lit 3 [ (0, Cube.Zero); (2, Cube.One) ] ] )
        | Sig a, Const false -> ([| Pi x; a |], [ lit 2 [ (0, Cube.One); (1, Cube.One) ] ])
        | Sig a, Const true ->
          ( [| Pi x; a |],
            [ lit 2 [ (0, Cube.One); (1, Cube.One) ]; lit 2 [ (0, Cube.Zero) ] ] )
        | Const false, Sig b -> ([| Pi x; b |], [ lit 2 [ (0, Cube.Zero); (1, Cube.One) ] ])
        | Const true, Sig b ->
          ( [| Pi x; b |],
            [ lit 2 [ (0, Cube.Zero); (1, Cube.One) ]; lit 2 [ (0, Cube.One) ] ] )
        | Const a, Const b ->
          (* Both cofactors constant would mean support ≤ 1. *)
          ( [| Pi x |],
            (if a then [ lit 1 [ (0, Cube.One) ] ] else [])
            @ if b then [ lit 1 [ (0, Cube.Zero) ] ] else [] )
      in
      let n_in = Array.length inputs in
      Sig (add_block { cover = Cover.make ~n_in ~n_out:1 cubes; inputs })
    end
  in
  let constant_block value =
    (* A 1-input block ignoring its input. *)
    let out1 = Util.Bitvec.of_list 1 [ 0 ] in
    let cubes = if value then [ Cube.with_outputs (Cube.make ~n_in:1 ~n_out:1) out1 ] else [] in
    add_block { cover = Cover.make ~n_in:1 ~n_out:1 cubes; inputs = [| Pi 0 |] }
  in
  let outputs =
    Array.init (Cover.num_outputs cover) (fun o ->
        match synth (Cover.restrict_output cover o) with
        | Sig s -> s
        | Const v -> constant_block v)
  in
  { n_pi; blocks = Array.of_list (List.rev !blocks); outputs }

let eval t pis =
  if Array.length pis <> t.n_pi then invalid_arg "Map.eval";
  let values = Array.make (Array.length t.blocks) false in
  let read = function Pi i -> pis.(i) | Block_out b -> values.(b) in
  Array.iteri
    (fun b blk ->
      let local = Array.map read blk.inputs in
      values.(b) <- Util.Bitvec.get (Cover.eval blk.cover local) 0)
    t.blocks;
  Array.map read t.outputs

let levels t =
  let depth = Array.make (Array.length t.blocks) 1 in
  Array.iteri
    (fun b blk ->
      let from_src = function Pi _ -> 0 | Block_out j -> depth.(j) in
      depth.(b) <- 1 + Array.fold_left (fun m s -> max m (from_src s)) 0 blk.inputs)
    t.blocks;
  Array.fold_left
    (fun m s -> match s with Pi _ -> m | Block_out b -> max m depth.(b))
    0 t.outputs

let max_block_inputs t =
  Array.fold_left (fun m b -> max m (Array.length b.inputs)) 0 t.blocks

let verify_against t cover =
  let n_pi = Cover.num_inputs cover in
  if n_pi > 20 then invalid_arg "Map.verify_against: too many inputs";
  (* BDD comparison: build each block's function over the PIs. *)
  let man = Logic.Bdd.manager () in
  let block_bdds = Array.make (Array.length t.blocks) (Logic.Bdd.zero man) in
  let bdd_of_source = function
    | Pi i -> Logic.Bdd.var man i
    | Block_out b -> block_bdds.(b)
  in
  Array.iteri
    (fun b blk ->
      let inputs = Array.map bdd_of_source blk.inputs in
      (* Compose the sub-cover over its input BDDs. *)
      let cube_bdd c =
        let acc = ref (Logic.Bdd.one man) in
        for i = 0 to Cube.num_inputs c - 1 do
          match Cube.get c i with
          | Cube.Dc -> ()
          | Cube.One -> acc := Logic.Bdd.and_ man !acc inputs.(i)
          | Cube.Zero -> acc := Logic.Bdd.and_ man !acc (Logic.Bdd.not_ man inputs.(i))
        done;
        !acc
      in
      block_bdds.(b) <-
        List.fold_left
          (fun acc c -> Logic.Bdd.or_ man acc (cube_bdd c))
          (Logic.Bdd.zero man) (Cover.cubes blk.cover))
    t.blocks;
  let want = Logic.Bdd.of_cover man cover in
  Array.length t.outputs = Array.length want
  && Array.for_all2 Logic.Bdd.equal (Array.map bdd_of_source t.outputs) want

let to_blif ~name t =
  let signal_of = function Pi i -> Printf.sprintf "x%d" i | Block_out b -> Printf.sprintf "n%d" b in
  let tables =
    List.mapi
      (fun b blk ->
        (Printf.sprintf "n%d" b, blk.cover, Array.map signal_of blk.inputs))
      (Array.to_list t.blocks)
  in
  (* Outputs may be PIs or block outputs; BLIF outputs must be named
     signals, so alias each output through a buffer table. *)
  let out1 = Util.Bitvec.of_list 1 [ 0 ] in
  let buffer_cover =
    Cover.make ~n_in:1 ~n_out:1
      [ Cube.of_literals [ Cube.One ] ~outs:out1 ]
  in
  let out_tables =
    List.mapi
      (fun o s -> (Printf.sprintf "y%d" o, buffer_cover, [| signal_of s |]))
      (Array.to_list t.outputs)
  in
  {
    Logic.Blif.name;
    inputs = Array.init t.n_pi (Printf.sprintf "x%d");
    outputs = Array.init (Array.length t.outputs) (Printf.sprintf "y%d");
    tables = tables @ out_tables;
  }

let to_design t =
  let blocks =
    Array.map
      (fun blk ->
        {
          Design.is_inverter = false;
          fanin =
            Array.map
              (function Pi i -> Design.Pi i | Block_out b -> Design.Block b)
              blk.inputs;
        })
      t.blocks
  in
  let outputs =
    Array.map (function Pi i -> Design.Pi i | Block_out b -> Design.Block b) t.outputs
  in
  let d = { Design.n_pi = t.n_pi; blocks; pos = outputs } in
  Design.validate d;
  d
