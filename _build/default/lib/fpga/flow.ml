type outcome = {
  flavour : Arch.flavour;
  grid : int;
  sites : int;
  blocks_used : int;
  occupancy : float;
  wirelength : int;
  routed_segments : int;
  route_overflow : int;
  route_iterations : int;
  timing : Timing.report;
}

let run rng arch design =
  let placement = Place.place rng arch design in
  let routing = Route.route placement in
  let timing = Timing.analyze placement routing in
  let used = Design.block_count design in
  {
    flavour = arch.Arch.flavour;
    grid = arch.Arch.grid;
    sites = Arch.sites arch;
    blocks_used = used;
    occupancy = Arch.occupancy arch ~used;
    wirelength = Place.total_wirelength placement;
    routed_segments = routing.Route.total_segments;
    route_overflow = routing.Route.overflow;
    route_iterations = routing.Route.iterations;
    timing;
  }

let outcome_of arch design placement =
  let routing = Route.route placement in
  let timing = Timing.analyze placement routing in
  let used = Design.block_count design in
  ( routing,
    {
      flavour = arch.Arch.flavour;
      grid = arch.Arch.grid;
      sites = Arch.sites arch;
      blocks_used = used;
      occupancy = Arch.occupancy arch ~used;
      wirelength = Place.total_wirelength placement;
      routed_segments = routing.Route.total_segments;
      route_overflow = routing.Route.overflow;
      route_iterations = routing.Route.iterations;
      timing;
    } )

let run_timing_driven ?(rounds = 1) rng arch design =
  let placement = Place.place rng arch design in
  let routing, first = outcome_of arch design placement in
  let rec refine best_outcome prev_placement prev_routing k =
    if k = 0 then best_outcome
    else begin
      let crits = Timing.criticalities prev_placement prev_routing in
      (* Sharp exponent (VPR-style): only the truly critical connections
         should dominate the cost. *)
      let weights = Array.map (fun c -> 1.0 +. (7.0 *. (c ** 8.0))) crits in
      let placement' = Place.place ~weights rng arch design in
      let routing', outcome' = outcome_of arch design placement' in
      let best =
        if
          outcome'.timing.Timing.critical_path
          < best_outcome.timing.Timing.critical_path
        then outcome'
        else best_outcome
      in
      refine best placement' routing' (k - 1)
    end
  in
  refine first placement routing rounds

let run_standard rng ~grid design = run rng (Arch.standard ~grid) design

let run_cnfet rng ~grid design =
  let absorbed = Design.absorb_inverters design in
  (* Same die: the CNFET grid is derived from the standard one; half-area
     CLBs pack √2 more per side. *)
  let arch = Arch.cnfet ~grid in
  run rng arch absorbed

type table2 = { standard : outcome; cnfet : outcome; speedup : float }

let table2_experiment ?(seed = 2008) ?(grid = 17) () =
  let rng = Util.Rng.create seed in
  let sites = grid * grid in
  let n_blocks = int_of_float (0.99 *. float_of_int sites) in
  let design =
    Design.random rng ~n_pi:(2 * grid) ~n_blocks ~fanin:4 ~inverter_fraction:0.095
      ~layers:12 ()
  in
  let standard = run_standard (Util.Rng.split rng) ~grid design in
  let cnfet = run_cnfet (Util.Rng.split rng) ~grid design in
  {
    standard;
    cnfet;
    speedup = cnfet.timing.Timing.frequency_hz /. standard.timing.Timing.frequency_hz;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: grid=%dx%d blocks=%d occ=%.1f%% wl=%d segs=%d overflow=%d iters=%d %a"
    (Arch.flavour_name o.flavour) o.grid o.grid o.blocks_used (100.0 *. o.occupancy)
    o.wirelength o.routed_segments o.route_overflow o.route_iterations Timing.pp_report
    o.timing
