(** Logical designs mapped onto FPGA CLBs.

    A design is a DAG of blocks. Each block is either a logic block (one
    CLB's worth of function) or an explicit inverter; sources are primary
    inputs or other blocks' outputs. The synthetic generator produces
    layered netlists with a controlled inverter fraction, mimicking how a
    technology mapper splits a large function into CLB-sized pieces
    ("the same way standard FPGAs split large functions into different
    CLBs", paper §5).

    The key architectural transform is {!absorb_inverters}: on the GNOR
    fabric an inverter is free (a polarity setting at the consuming CLB),
    so inverter blocks disappear and their fanout reconnects to the
    inverter's source. *)

type source = Pi of int | Block of int

type block = { is_inverter : bool; fanin : source array }

type t = {
  n_pi : int;
  blocks : block array;
  pos : source array;  (** primary outputs *)
}

val validate : t -> unit
(** Raises [Invalid_argument] if a fanin references a later or missing
    block (the DAG must be topologically ordered) or an out-of-range PI. *)

val block_count : t -> int

val inverter_count : t -> int

val connection_count : t -> int
(** Total fanin edges (each is one routed connection). *)

val depth : t -> int
(** Longest PI→PO path in blocks. *)

val random : Util.Rng.t -> n_pi:int -> n_blocks:int -> ?fanin:int -> ?inverter_fraction:float -> ?layers:int -> unit -> t
(** Layered random DAG, the shape a technology mapper produces: blocks are
    spread over [layers] ranks (default 12); a block in rank [k] draws its
    [2..fanin] sources from rank [k-1] (mostly) and earlier ranks or PIs.
    A deterministic [inverter_fraction] of blocks are inverters (default
    0.10, a typical post-mapping share; placed by stride so the count does
    not depend on sampling luck). The primary outputs tap the last rank,
    so {!depth} ≈ [layers]. *)

val absorb_inverters : t -> t
(** Remove inverter blocks by rewiring their consumers to the inverter's
    source (polarity is then a CLB configuration, not logic). Chains of
    inverters collapse. Block indices are renumbered. *)
