type flavour = Standard | Cnfet

let flavour_name = function Standard -> "Standard FPGA" | Cnfet -> "CNFET FPGA"

type t = {
  flavour : flavour;
  grid : int;
  tracks : int;
  clb_inputs : int;
  clb_outputs : int;
  wires_per_connection : int;
  clb_pitch : float;
  seg_resistance : float;
  seg_capacitance : float;
  switch_resistance : float;
  clb_delay : float;
  driver_resistance : float;
  sink_capacitance : float;
  load_alpha : float;
}

(* Reference pitch and RC for the standard PLA-based CLB; these constants
   are the calibration knob that places the standard FPGA near the paper's
   154 MHz (see EXPERIMENTS.md). *)
let ref_pitch = 12.0 (* µm *)
let ref_seg_r = 600.0 (* Ω per pitch of routing wire *)
let ref_seg_c = 5.5e-15 (* F per pitch *)
let ref_switch_r = 600.0 (* Ω per switch-point *)
let ref_clb_delay = 0.08e-9 (* s; dynamic GNOR-plane evaluation *)

(* A classical PLA CLB spans 2k+m plane columns against the GNOR plane's
   k+m (both input polarities need a column), so its word lines — and the
   dynamic evaluation they gate — are proportionally slower. *)
let clb_delay_of ~wires_per_connection ~k ~m =
  let columns = float_of_int ((wires_per_connection * k) + m) in
  ref_clb_delay *. (columns /. float_of_int (k + m))
let ref_driver_r = 3.0e3 (* Ω *)
let ref_sink_c = 4.0e-15 (* F *)
let ref_tracks = 14
let ref_load_alpha = 3.5

let standard ~grid =
  {
    flavour = Standard;
    grid;
    tracks = ref_tracks;
    clb_inputs = 9;
    clb_outputs = 3;
    wires_per_connection = 2;
    clb_pitch = ref_pitch;
    seg_resistance = ref_seg_r;
    seg_capacitance = ref_seg_c;
    switch_resistance = ref_switch_r;
    clb_delay = clb_delay_of ~wires_per_connection:2 ~k:9 ~m:3;
    driver_resistance = ref_driver_r;
    sink_capacitance = ref_sink_c;
    load_alpha = ref_load_alpha;
  }

let cnfet ~grid =
  let shrink = sqrt 2.0 in
  (* Half-area CLBs double the site count on the same die; the square grid
     side is the floor of grid·√2, and the pitch (hence per-segment RC)
     shrinks by √2. *)
  let grid' = int_of_float (floor (float_of_int grid *. shrink)) in
  {
    flavour = Cnfet;
    grid = grid';
    tracks = ref_tracks;
    clb_inputs = 9;
    clb_outputs = 3;
    wires_per_connection = 1;
    clb_pitch = ref_pitch /. shrink;
    seg_resistance = ref_seg_r /. shrink;
    seg_capacitance = ref_seg_c /. shrink;
    switch_resistance = ref_switch_r;
    clb_delay = clb_delay_of ~wires_per_connection:1 ~k:9 ~m:3;
    driver_resistance = ref_driver_r;
    sink_capacitance = ref_sink_c;
    load_alpha = ref_load_alpha;
  }

let sites t = t.grid * t.grid

let occupancy t ~used = float_of_int used /. float_of_int (sites t)
