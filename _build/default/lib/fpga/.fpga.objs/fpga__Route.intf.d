lib/fpga/route.mli: Arch Place
