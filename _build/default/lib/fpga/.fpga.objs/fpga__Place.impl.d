lib/fpga/place.ml: Arch Array Design Fun Hashtbl List Printf Util
