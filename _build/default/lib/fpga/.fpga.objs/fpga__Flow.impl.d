lib/fpga/flow.ml: Arch Array Design Format Place Route Timing Util
