lib/fpga/place.mli: Arch Design Util
