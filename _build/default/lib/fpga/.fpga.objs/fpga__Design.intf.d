lib/fpga/design.mli: Util
