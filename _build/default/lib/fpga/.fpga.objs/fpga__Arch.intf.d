lib/fpga/arch.mli:
