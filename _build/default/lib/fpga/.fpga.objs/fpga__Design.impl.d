lib/fpga/design.ml: Array Float List Util
