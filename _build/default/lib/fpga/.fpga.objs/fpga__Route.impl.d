lib/fpga/route.ml: Arch Array Hashtbl List Place Set
