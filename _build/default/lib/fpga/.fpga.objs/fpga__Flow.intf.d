lib/fpga/flow.mli: Arch Design Format Timing Util
