lib/fpga/timing.ml: Arch Array Design Float Format List Place Route
