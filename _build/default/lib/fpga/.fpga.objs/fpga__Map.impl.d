lib/fpga/map.ml: Array Design Espresso Fun Hashtbl List Logic Printf String Util
