lib/fpga/arch.ml:
