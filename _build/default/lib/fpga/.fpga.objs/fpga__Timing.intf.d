lib/fpga/timing.mli: Arch Format Place Route
