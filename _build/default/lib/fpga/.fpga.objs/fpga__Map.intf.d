lib/fpga/map.mli: Design Logic
