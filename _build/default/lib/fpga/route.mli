(** Negotiated-congestion maze routing (Pathfinder-style).

    The routing fabric is abstracted as one capacity per channel cell:
    a connection occupies [Arch.wires_per_connection] wire units in every
    cell it crosses (this is precisely where the standard fabric pays for
    routing both signal polarities). Each iteration routes every
    connection with A* under a cost that penalizes present overuse and
    accumulated history; rip-up and re-route until no cell exceeds its
    capacity or the iteration budget is spent. *)

type routed = {
  connection : Place.connection;
  path : (int * int) list;  (** cells crossed, source to sink inclusive *)
}

type result = {
  routes : routed list;
  iterations : int;
  overflow : int;  (** wire units above capacity after the last iteration *)
  max_usage : int;
  total_segments : int;
  usage_histogram : (int * int) list;  (** (usage, cell count), ascending *)
  usage_at : int * int -> int;  (** wire units used in a channel cell *)
}

val capacity_per_cell : Arch.t -> int
(** [2 × tracks] wire units (horizontal + vertical). *)

val route : ?max_iterations:int -> ?capacity:int -> ?share_nets:bool -> Place.t -> result
(** Route every connection of the placement (default 24 iterations).
    [capacity] overrides the architecture's per-cell wire budget
    ({!capacity_per_cell}) — used by the channel-width search.

    With [share_nets] (default false), connections driven by the same
    source are routed as one {e net tree}: each additional sink grows the
    existing tree from its nearest point (multi-source maze expansion), so
    fanout shares wire instead of paying per sink. Per-connection [path]s
    still run source → sink (through the tree) for timing. *)

val minimum_channel_width : ?max_tracks:int -> Place.t -> int option
(** Smallest per-channel track count at which the placement routes with no
    overflow (binary search, re-routing at each probe). [None] if even
    [max_tracks] (default 64) is not enough. The classical fabric demands
    roughly twice the tracks of the GNOR fabric for the same design — the
    routability counterpart of the paper's wire-count claim. *)

val path_length : routed -> int
(** Hops (segments) of one route. *)
