type source = Pi of int | Block of int

type block = { is_inverter : bool; fanin : source array }

type t = { n_pi : int; blocks : block array; pos : source array }

let validate t =
  if t.n_pi <= 0 then invalid_arg "Design: no primary inputs";
  let check_src limit = function
    | Pi i -> if i < 0 || i >= t.n_pi then invalid_arg "Design: bad PI reference"
    | Block b -> if b < 0 || b >= limit then invalid_arg "Design: fanin must reference earlier block"
  in
  Array.iteri
    (fun i b ->
      if b.is_inverter && Array.length b.fanin <> 1 then
        invalid_arg "Design: inverter with fanin <> 1";
      Array.iter (check_src i) b.fanin)
    t.blocks;
  Array.iter (check_src (Array.length t.blocks)) t.pos

let block_count t = Array.length t.blocks

let inverter_count t =
  Array.fold_left (fun n b -> if b.is_inverter then n + 1 else n) 0 t.blocks

let connection_count t =
  Array.fold_left (fun n b -> n + Array.length b.fanin) 0 t.blocks
  + Array.length t.pos

let depth t =
  let d = Array.make (Array.length t.blocks) 0 in
  Array.iteri
    (fun i b ->
      let from_src = function Pi _ -> 0 | Block j -> d.(j) in
      let m = Array.fold_left (fun acc s -> max acc (from_src s)) 0 b.fanin in
      d.(i) <- m + 1)
    t.blocks;
  Array.fold_left
    (fun acc s -> match s with Pi _ -> acc | Block j -> max acc d.(j))
    0 t.pos

let random rng ~n_pi ~n_blocks ?(fanin = 4) ?(inverter_fraction = 0.10) ?(layers = 12) () =
  if n_pi <= 0 || n_blocks <= 0 || layers <= 0 then invalid_arg "Design.random";
  let layers = min layers n_blocks in
  (* Rank boundaries: block i belongs to rank (i * layers / n_blocks). *)
  let rank_of i = i * layers / n_blocks in
  let rank_start = Array.make (layers + 1) n_blocks in
  for i = n_blocks - 1 downto 0 do
    rank_start.(rank_of i) <- i
  done;
  rank_start.(0) <- 0;
  let pick_source i =
    let r = rank_of i in
    if r = 0 then Pi (Util.Rng.int rng n_pi)
    else begin
      (* Mostly the previous rank, occasionally any earlier rank or a PI —
         mapped netlists have a few long feed-forward and input nets. *)
      let roll = Util.Rng.float rng 1.0 in
      if roll < 0.75 then begin
        let lo = rank_start.(r - 1) and hi = rank_start.(r) in
        Block (lo + Util.Rng.int rng (max 1 (hi - lo)))
      end
      else if roll < 0.9 then Block (Util.Rng.int rng (max 1 rank_start.(r)))
      else Pi (Util.Rng.int rng n_pi)
    end
  in
  (* Deterministic inverter share: every stride-th block outside rank 0,
     so the measured block counts do not ride on sampling luck. *)
  let stride =
    if inverter_fraction <= 0.0 then max_int
    else max 1 (int_of_float (Float.round (1.0 /. inverter_fraction)))
  in
  let blocks =
    Array.init n_blocks (fun i ->
        let is_inverter = rank_of i > 0 && i mod stride = stride - 1 in
        let n_fanin = if is_inverter then 1 else 2 + Util.Rng.int rng (max 1 (fanin - 1)) in
        { is_inverter; fanin = Array.init n_fanin (fun _ -> pick_source i) })
  in
  let n_po = max 1 (n_blocks / 10) in
  let last_lo = rank_start.(layers - 1) in
  let last_width = n_blocks - last_lo in
  let pos = Array.init n_po (fun k -> Block (last_lo + (k mod last_width))) in
  let t = { n_pi; blocks; pos } in
  validate t;
  t

let absorb_inverters t =
  let n = Array.length t.blocks in
  (* Resolve a source through any chain of inverters to its driving
     non-inverter source. *)
  let resolved = Array.make n None in
  let rec resolve = function
    | Pi i -> Pi i
    | Block j ->
      if t.blocks.(j).is_inverter then begin
        match resolved.(j) with
        | Some s -> s
        | None ->
          let s = resolve t.blocks.(j).fanin.(0) in
          resolved.(j) <- Some s;
          s
      end
      else Block j
  in
  (* Renumber surviving blocks. *)
  let new_id = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if not t.blocks.(i).is_inverter then begin
      new_id.(i) <- !next;
      incr next
    end
  done;
  let remap s =
    match resolve s with
    | Pi i -> Pi i
    | Block j -> Block new_id.(j)
  in
  let blocks =
    Array.of_list
      (List.filter_map
         (fun b ->
           if b.is_inverter then None
           else Some { b with fanin = Array.map remap b.fanin })
         (Array.to_list t.blocks))
  in
  let out = { n_pi = t.n_pi; blocks; pos = Array.map remap t.pos } in
  validate out;
  out
