(** Technology mapping: splitting a function into PLA-CLB-sized blocks.

    The paper expects functions "to be split into blocks the same way
    standard FPGAs split large functions into different CLBs" (§5). This
    mapper takes a multi-output cover and produces a DAG of blocks, each
    a sub-PLA with at most [clb_inputs] inputs:

    {ul
    {- an output whose support already fits becomes one block;}
    {- an output with a wider support is Shannon-decomposed:
       [f = x·f_x + x'·f_x'] — the cofactors are mapped recursively and a
       3-input multiplexer block recombines them.}}

    The result carries full functional semantics ({!eval} is checked
    against the source cover in tests) and lowers to a {!Design} for
    placement and routing. *)

type source = Pi of int | Block_out of int

type block = {
  cover : Logic.Cover.t;  (** single-output sub-function *)
  inputs : source array;  (** signal feeding each sub-function input *)
}

type t = {
  n_pi : int;
  blocks : block array;  (** topologically ordered *)
  outputs : source array;
}

val map_cover : ?clb_inputs:int -> Logic.Cover.t -> t
(** Map every output (default CLB input budget: 6). Raises
    [Invalid_argument] if [clb_inputs < 3] (the multiplexer block needs
    3). *)

val block_count : t -> int

val levels : t -> int
(** Depth of the block DAG. *)

val eval : t -> bool array -> bool array

val verify_against : t -> Logic.Cover.t -> bool
(** BDD equivalence with the source cover. *)

val to_design : t -> Design.t
(** Forget the logic, keep the structure: one design block per mapped
    block, fanins wired accordingly — ready for {!Place} / {!Route}. *)

val max_block_inputs : t -> int
(** Largest input count over all blocks (must be ≤ the budget). *)

val to_blif : name:string -> t -> Logic.Blif.t
(** Multi-level BLIF export: one [.names] table per block — loadable by
    ABC/SIS/VPR-class tools. *)
