(** End-to-end FPGA flow (generate → place → route → time) and the paper's
    Table 2 experiment.

    The experiment mirrors the paper's emulation: one logical design is
    implemented on (a) a standard PLA-based FPGA it fills to ~99%, routing
    two wires per connection and keeping inverters as blocks, and (b) the
    ambipolar-CNFET fabric on the same die — CLBs at half area (pitch /
    √2), one wire per connection, inverters absorbed into GNOR polarity
    configuration. *)

type outcome = {
  flavour : Arch.flavour;
  grid : int;
  sites : int;
  blocks_used : int;
  occupancy : float;
  wirelength : int;
  routed_segments : int;
  route_overflow : int;
  route_iterations : int;
  timing : Timing.report;
}

val run : Util.Rng.t -> Arch.t -> Design.t -> outcome
(** Place, route and time one design on one architecture. *)

val run_timing_driven : ?rounds:int -> Util.Rng.t -> Arch.t -> Design.t -> outcome
(** {!run}, then re-place with connection weights [1 + 7·criticality⁸]
    from the previous round's timing and re-route — [rounds] refinement
    passes (default 1), keeping whichever placement times best. Gains a
    few percent on designs with uneven path depths (mapped functions);
    depth-uniform netlists have nothing to trade. *)

val run_standard : Util.Rng.t -> grid:int -> Design.t -> outcome

val run_cnfet : Util.Rng.t -> grid:int -> Design.t -> outcome
(** [grid] is the {e standard} grid; the CNFET architecture derives its
    own (larger) grid from the same die. Inverters are absorbed before
    mapping. *)

type table2 = { standard : outcome; cnfet : outcome; speedup : float }

val table2_experiment : ?seed:int -> ?grid:int -> unit -> table2
(** Full Table 2 reproduction. The design is sized to fill the standard
    device to ≈99%; defaults: [seed 2008], [grid 17]. *)

val pp_outcome : Format.formatter -> outcome -> unit
