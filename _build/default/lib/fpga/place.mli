(** Simulated-annealing placement of design blocks on the CLB grid.

    Primary inputs and outputs live on perimeter pads; blocks occupy grid
    sites. The cost is total Manhattan length over all connections —
    the quantity the router's congestion and delay both follow. *)

type t

val place : ?weights:float array -> Util.Rng.t -> Arch.t -> Design.t -> t
(** Random initial placement refined by annealing (deterministic given the
    generator). Raises [Invalid_argument] if the design has more blocks
    than the architecture has sites. [weights] (in {!connections} order,
    default all 1) scale each connection's contribution to the cost —
    timing-driven placement passes criticalities here. *)

val arch : t -> Arch.t

val design : t -> Design.t

val block_loc : t -> int -> int * int
(** Grid coordinates of a block's site. *)

val pi_loc : t -> int -> int * int
(** Pad coordinates of a primary input (on the perimeter ring). *)

val po_loc : t -> int -> int * int
(** Pad coordinates of a primary output. *)

val source_loc : t -> Design.source -> int * int

type connection = { src : Design.source; dst_loc : int * int; dst_desc : string }

val connections : t -> connection list
(** Every routed connection: block fanins and PO hookups. *)

val total_wirelength : t -> int
(** Manhattan length summed over {!connections}. *)
