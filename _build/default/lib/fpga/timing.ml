type report = {
  critical_path : float;
  frequency_hz : float;
  worst_connection : float;
  mean_connection : float;
  logic_levels : int;
}

(* Buffered-segment wire model: every switch-point crossing re-drives the
   wire, so delay is linear in hops. The capacitance a segment presents
   grows with local switch-box utilization (load_alpha): crowded switch
   matrices mean longer internal wires and more parasitic junctions. *)
let seg_delay (a : Arch.t) ~load =
  let c = a.Arch.seg_capacitance *. (1.0 +. (a.Arch.load_alpha *. load)) in
  (a.Arch.seg_resistance +. a.Arch.switch_resistance) *. c

let connection_delay (a : Arch.t) ~hops =
  let hops = max 1 hops in
  (a.Arch.driver_resistance *. (a.Arch.seg_capacitance +. a.Arch.sink_capacitance))
  +. (float_of_int hops *. seg_delay a ~load:0.0)
  +. ((a.Arch.seg_resistance +. a.Arch.switch_resistance) *. a.Arch.sink_capacitance)

let path_delay (a : Arch.t) ~usage_at ~capacity path =
  match path with
  | [] | [ _ ] ->
    (* Source and sink in the same channel cell. *)
    a.Arch.driver_resistance *. (a.Arch.seg_capacitance +. a.Arch.sink_capacitance)
  | first :: rest ->
    let load xy = float_of_int (usage_at xy) /. float_of_int (max 1 capacity) in
    let d0 =
      a.Arch.driver_resistance
      *. ((a.Arch.seg_capacitance *. (1.0 +. (a.Arch.load_alpha *. load first)))
         +. a.Arch.sink_capacitance)
    in
    let hops = List.fold_left (fun acc xy -> acc +. seg_delay a ~load:(load xy)) 0.0 rest in
    d0 +. hops
    +. ((a.Arch.seg_resistance +. a.Arch.switch_resistance) *. a.Arch.sink_capacitance)

let analyze placement (routing : Route.result) =
  let a = Place.arch placement in
  let d = Place.design placement in
  let n_blocks = Array.length d.Design.blocks in
  let capacity = Route.capacity_per_cell a in
  (* The route list is in Place.connections order: block fanins in block
     order, then POs; walk it in step with the DAG. *)
  let delays =
    List.map
      (fun r -> path_delay a ~usage_at:routing.Route.usage_at ~capacity r.Route.path)
      routing.Route.routes
  in
  let delays = Array.of_list delays in
  let arrival = Array.make n_blocks 0.0 in
  let idx = ref 0 in
  Array.iteri
    (fun b (blk : Design.block) ->
      let worst = ref 0.0 in
      Array.iter
        (fun s ->
          let src_arrival = match s with Design.Pi _ -> 0.0 | Design.Block j -> arrival.(j) in
          let t = src_arrival +. delays.(!idx) in
          incr idx;
          if t > !worst then worst := t)
        blk.Design.fanin;
      arrival.(b) <- !worst +. a.Arch.clb_delay)
    d.Design.blocks;
  let critical = ref 0.0 in
  Array.iter
    (fun s ->
      let src_arrival = match s with Design.Pi _ -> 0.0 | Design.Block j -> arrival.(j) in
      let t = src_arrival +. delays.(!idx) in
      incr idx;
      if t > !critical then critical := t)
    d.Design.pos;
  assert (!idx = Array.length delays);
  let worst_conn = Array.fold_left Float.max 0.0 delays in
  let mean_conn =
    if Array.length delays = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 delays /. float_of_int (Array.length delays)
  in
  {
    critical_path = !critical;
    frequency_hz = (if !critical > 0.0 then 1.0 /. !critical else infinity);
    worst_connection = worst_conn;
    mean_connection = mean_conn;
    logic_levels = Design.depth d;
  }

let criticalities placement (routing : Route.result) =
  let a = Place.arch placement in
  let d = Place.design placement in
  let n_blocks = Array.length d.Design.blocks in
  let capacity = Route.capacity_per_cell a in
  let delays =
    Array.of_list
      (List.map
         (fun r -> path_delay a ~usage_at:routing.Route.usage_at ~capacity r.Route.path)
         routing.Route.routes)
  in
  (* Forward pass: arrival at each block output. *)
  let arrival = Array.make n_blocks 0.0 in
  let idx = ref 0 in
  let conn_src = Array.make (Array.length delays) (Design.Pi 0) in
  let conn_dst = Array.make (Array.length delays) None in
  Array.iteri
    (fun b (blk : Design.block) ->
      let worst = ref 0.0 in
      Array.iter
        (fun s ->
          conn_src.(!idx) <- s;
          conn_dst.(!idx) <- Some b;
          let src_arrival = match s with Design.Pi _ -> 0.0 | Design.Block j -> arrival.(j) in
          let t = src_arrival +. delays.(!idx) in
          incr idx;
          if t > !worst then worst := t)
        blk.Design.fanin;
      arrival.(b) <- !worst +. a.Arch.clb_delay)
    d.Design.blocks;
  Array.iter
    (fun s ->
      conn_src.(!idx) <- s;
      conn_dst.(!idx) <- None;
      incr idx)
    d.Design.pos;
  (* Backward pass: longest remaining path from each block output to a PO,
     starting at the block's output pin (net delay not yet paid). *)
  let downstream = Array.make n_blocks 0.0 in
  let conn_count = Array.length delays in
  (* Connections are listed fanins-first in block order, so walking them in
     reverse visits consumers before producers. *)
  for k = conn_count - 1 downto 0 do
    let tail =
      match conn_dst.(k) with
      | None -> delays.(k)
      | Some b -> delays.(k) +. a.Arch.clb_delay +. downstream.(b)
    in
    match conn_src.(k) with
    | Design.Pi _ -> ()
    | Design.Block j -> if tail > downstream.(j) then downstream.(j) <- tail
  done;
  let critical =
    Array.fold_left max 1e-30
      (Array.mapi
         (fun k _ ->
           let src_arrival =
             match conn_src.(k) with Design.Pi _ -> 0.0 | Design.Block j -> arrival.(j)
           in
           let after =
             match conn_dst.(k) with
             | None -> 0.0
             | Some b -> a.Arch.clb_delay +. downstream.(b)
           in
           src_arrival +. delays.(k) +. after)
         delays)
  in
  Array.mapi
    (fun k _ ->
      let src_arrival =
        match conn_src.(k) with Design.Pi _ -> 0.0 | Design.Block j -> arrival.(j)
      in
      let after =
        match conn_dst.(k) with None -> 0.0 | Some b -> a.Arch.clb_delay +. downstream.(b)
      in
      Float.min 1.0 ((src_arrival +. delays.(k) +. after) /. critical))
    delays

let pp_report fmt r =
  Format.fprintf fmt "critical=%.3g ns freq=%.1f MHz levels=%d worst_net=%.3g ns mean_net=%.3g ns"
    (r.critical_path *. 1e9) (r.frequency_hz /. 1e6) r.logic_levels
    (r.worst_connection *. 1e9) (r.mean_connection *. 1e9)
