(** Island-style PLA-based FPGA architecture parameters (paper §5).

    The device is a square grid of configurable logic blocks (CLBs), each
    a small PLA, separated by routing channels with a fixed number of
    tracks. Two architecture flavours are compared:

    {ul
    {- [Standard]: classical PLA CLBs. Both polarities of every signal
       must be delivered, so each logical connection consumes {e two}
       routing wires; inverters are explicit blocks.}
    {- [Cnfet]: GNOR-based CLBs at {e half} the area (so the CLB pitch
       shrinks by [√2] on the same die) — only one wire per connection and
       inverters are absorbed into the polarity configuration.}} *)

type flavour = Standard | Cnfet

val flavour_name : flavour -> string

type t = {
  flavour : flavour;
  grid : int;  (** CLBs per side *)
  tracks : int;  (** routing tracks per channel *)
  clb_inputs : int;
  clb_outputs : int;
  wires_per_connection : int;  (** 2 for [Standard], 1 for [Cnfet] *)
  clb_pitch : float;  (** centre-to-centre CLB distance, µm *)
  seg_resistance : float;  (** Ω per channel segment (one pitch) *)
  seg_capacitance : float;  (** F per channel segment *)
  switch_resistance : float;  (** Ω per switch-point crossing *)
  clb_delay : float;  (** s, intrinsic CLB (PLA) evaluation delay *)
  driver_resistance : float;  (** Ω, output driver *)
  sink_capacitance : float;  (** F, CLB input load *)
  load_alpha : float;
      (** switch-box loading coefficient: a routed segment's capacitance is
          [seg_capacitance × (1 + load_alpha × usage/capacity)] — crowded
          switch matrices present longer internal wires and more parasitic
          junctions *)
}

val standard : grid:int -> t
(** Reference 90 nm-class parameters; the CLB pitch and RC values are the
    single calibration knob recorded in EXPERIMENTS.md. *)

val cnfet : grid:int -> t
(** Same die as [standard ~grid]: the half-area CLB shrinks the pitch by
    [√2] and the grid gains [√2] sites per side; segment RC scales with the
    pitch. *)

val sites : t -> int
(** Total CLB sites. *)

val occupancy : t -> used:int -> float
(** Fraction of sites used by a design. *)
