type t = {
  arch : Arch.t;
  design : Design.t;
  loc : (int * int) array;
  pi_pads : (int * int) array;
  po_pads : (int * int) array;
}

let arch t = t.arch
let design t = t.design

let block_loc t b = t.loc.(b)
let pi_loc t i = t.pi_pads.(i)
let po_loc t o = t.po_pads.(o)

let source_loc t = function
  | Design.Pi i -> t.pi_pads.(i)
  | Design.Block b -> t.loc.(b)

type connection = { src : Design.source; dst_loc : int * int; dst_desc : string }

let connections t =
  let conns = ref [] in
  Array.iteri
    (fun b (blk : Design.block) ->
      Array.iteri
        (fun k s ->
          conns :=
            { src = s; dst_loc = t.loc.(b); dst_desc = Printf.sprintf "b%d.in%d" b k }
            :: !conns)
        blk.Design.fanin)
    t.design.Design.blocks;
  Array.iteri
    (fun o s ->
      conns := { src = s; dst_loc = t.po_pads.(o); dst_desc = Printf.sprintf "po%d" o } :: !conns)
    t.design.Design.pos;
  List.rev !conns

let manhattan (x0, y0) (x1, y1) = abs (x0 - x1) + abs (y0 - y1)

let total_wirelength t =
  List.fold_left (fun acc c -> acc + manhattan (source_loc t c.src) c.dst_loc) 0 (connections t)

(* Pads sit on a ring just outside the grid, spread uniformly. *)
let ring_pads grid n offset =
  let perimeter = 4 * (grid + 1) in
  Array.init n (fun k ->
      let p = (offset + (k * perimeter / max 1 n)) mod perimeter in
      let side = p / (grid + 1) and along = p mod (grid + 1) in
      match side with
      | 0 -> (along, -1)
      | 1 -> (grid, along)
      | 2 -> (grid - along, grid)
      | _ -> (-1, grid - along))

let place ?weights rng (a : Arch.t) (d : Design.t) =
  let n_blocks = Array.length d.Design.blocks in
  let sites = Arch.sites a in
  if n_blocks > sites then invalid_arg "Place.place: design larger than device";
  let pi_pads = ring_pads a.Arch.grid d.Design.n_pi 0 in
  let po_pads = ring_pads a.Arch.grid (Array.length d.Design.pos) (2 * (a.Arch.grid + 1)) in
  (* Random initial assignment of blocks to distinct sites. *)
  let site_of = Array.init sites Fun.id in
  Util.Rng.shuffle rng site_of;
  let loc =
    Array.init n_blocks (fun b -> (site_of.(b) mod a.Arch.grid, site_of.(b) / a.Arch.grid))
  in
  let occupant = Hashtbl.create sites in
  Array.iteri (fun b xy -> Hashtbl.replace occupant xy b) loc;
  let t = { arch = a; design = d; loc; pi_pads; po_pads } in
  (* Per-block incident connections for incremental cost; connections are
     id'd in the same order Place.connections emits them (block fanins in
     block order, then POs), so external weights line up. *)
  let incident = Array.make n_blocks [] in
  let n_conns = Design.connection_count d in
  let weight =
    match weights with
    | None -> Array.make n_conns 1.0
    | Some w ->
      if Array.length w <> n_conns then invalid_arg "Place.place: weights length";
      w
  in
  let conn_id = ref 0 in
  let add_conn src dst_of =
    let id = !conn_id in
    incr conn_id;
    (match src with
    | Design.Block b -> incident.(b) <- (id, src, dst_of) :: incident.(b)
    | Design.Pi _ -> ());
    match dst_of with
    | `Block b -> incident.(b) <- (id, src, dst_of) :: incident.(b)
    | `Pad _ -> ()
  in
  Array.iteri
    (fun b (blk : Design.block) ->
      Array.iter (fun s -> add_conn s (`Block b)) blk.Design.fanin)
    d.Design.blocks;
  Array.iteri (fun o s -> add_conn s (`Pad po_pads.(o))) d.Design.pos;
  let conn_len (id, src, dst_of) =
    let s = source_loc t src in
    let e = match dst_of with `Block b -> t.loc.(b) | `Pad xy -> xy in
    weight.(id) *. float_of_int (manhattan s e)
  in
  let local_cost b = List.fold_left (fun acc c -> acc +. conn_len c) 0.0 incident.(b) in
  (* Annealing: swap a block with a random site (occupied or free). *)
  let moves = 400 * sites in
  let temp = ref (2.0 +. (0.02 *. float_of_int n_blocks)) in
  let cooling = exp (log (0.005 /. !temp) /. float_of_int moves) in
  for _ = 1 to moves do
    let b = Util.Rng.int rng n_blocks in
    let sx = Util.Rng.int rng a.Arch.grid and sy = Util.Rng.int rng a.Arch.grid in
    let target = (sx, sy) in
    let old_b = t.loc.(b) in
    if target <> old_b then begin
      let other = Hashtbl.find_opt occupant target in
      let before =
        local_cost b +. (match other with Some o when o <> b -> local_cost o | _ -> 0.0)
      in
      (* Apply *)
      t.loc.(b) <- target;
      (match other with Some o when o <> b -> t.loc.(o) <- old_b | _ -> ());
      let after =
        local_cost b +. (match other with Some o when o <> b -> local_cost o | _ -> 0.0)
      in
      let delta = after -. before in
      let accept = delta <= 0.0 || Util.Rng.float rng 1.0 < exp (-.delta /. !temp) in
      if accept then begin
        Hashtbl.replace occupant target b;
        (match other with
        | Some o when o <> b -> Hashtbl.replace occupant old_b o
        | _ -> Hashtbl.remove occupant old_b)
      end
      else begin
        (* Revert *)
        t.loc.(b) <- old_b;
        match other with Some o when o <> b -> t.loc.(o) <- target | _ -> ()
      end
    end;
    temp := !temp *. cooling
  done;
  t
