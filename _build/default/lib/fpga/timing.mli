(** Static timing over the routed design.

    Every connection's delay follows its routed path with a buffered
    switch-point model (linear in hops) whose per-segment capacitance
    grows with local switch-box utilization; block arrival times propagate
    through the DAG; the critical path fixes the clock frequency. *)

type report = {
  critical_path : float;  (** seconds *)
  frequency_hz : float;
  worst_connection : float;  (** slowest single connection, seconds *)
  mean_connection : float;
  logic_levels : int;  (** depth of the design in blocks *)
}

val connection_delay : Arch.t -> hops:int -> float
(** Delay of an unloaded connection crossing [hops] segments (buffered
    switch points: linear in hops). *)

val path_delay : Arch.t -> usage_at:(int * int -> int) -> capacity:int -> (int * int) list -> float
(** Delay along an actual routed path, with per-cell switch-box loading. *)

val analyze : Place.t -> Route.result -> report

val criticalities : Place.t -> Route.result -> float array
(** Per-connection criticality in [\[0, 1\]] ({!Place.connections} order):
    the longest PI→PO path through the connection divided by the critical
    path. 1.0 marks the critical path itself; timing-driven placement uses
    these as connection weights. *)

val pp_report : Format.formatter -> report -> unit
