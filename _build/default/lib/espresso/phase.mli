(** Output-phase optimization (Sasao, MINI II style).

    A GNOR-based PLA produces each product term in both polarities, so every
    output may be implemented in either positive or negative phase and
    inverted for free at the driver. Choosing phases jointly can shrink the
    product-term count. This module provides the greedy flip heuristic used
    in the paper's §5 discussion. *)

type assignment = bool array
(** [assignment.(o) = true] means output [o] is implemented in positive
    phase. *)

type result = {
  phases : assignment;
  cover : Logic.Cover.t;  (** minimized cover of the phase-assigned function *)
  products_all_positive : int;  (** baseline product count (all positive) *)
  products_optimized : int;
}

val apply_phases : ?dc:Logic.Cover.t -> Logic.Cover.t -> assignment -> Logic.Cover.t
(** On-set of the function whose output [o] equals [f_o] when
    [phases.(o)], and [¬f_o] otherwise (don't-cares preserved). *)

val optimize : ?dc:Logic.Cover.t -> ?max_rounds:int -> Logic.Cover.t -> result
(** Greedy descent: start from the all-positive assignment and flip the
    phase of one output at a time whenever re-minimization lowers the
    product count; stop at a fixpoint or after [max_rounds] (default 3)
    sweeps. *)

val optimize_exhaustive : ?dc:Logic.Cover.t -> Logic.Cover.t -> result
(** Try {e every} of the [2^n_out] assignments (≤ 10 outputs) — the
    optimum over phase choices given the heuristic minimizer, used to
    audit the greedy descent. *)
