(** Algebraic factoring of two-level covers (QUICK_FACTOR style).

    Turns a sum-of-products into a factored form — the front half of
    multi-level synthesis. The recursion divides by the most frequent
    literal: [F = ℓ·Q + R] with [Q = F/ℓ], then factors [Q] and [R].
    Factored forms feed {!Cnfet.Cascade}-style NOR-plane mapping, where
    every product level costs real crosspoints, so fewer literals means a
    smaller cascade. *)

type expr =
  | Lit of int * bool  (** input index, phase (true = positive) *)
  | And of expr list
  | Or of expr list

val factor : Logic.Cover.t -> expr
(** Factor a {e single-output} cover. An empty cover gives [Or []]
    (constant 0); the universal cube gives [And []] (constant 1). *)

val factor_multi : Logic.Cover.t -> expr array
(** Factor every output independently. *)

val eval : expr -> bool array -> bool

val literal_count : expr -> int
(** Literals in the factored form (the classic quality metric). *)

val flat_literal_count : Logic.Cover.t -> int
(** Literals of the flat SOP, for comparison. *)

val to_string : expr -> string

val verify : Logic.Cover.t -> expr array -> bool
(** BDD check that the factored forms equal the cover's outputs. *)
