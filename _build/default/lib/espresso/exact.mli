(** Exact {e multi-output} two-level minimization.

    Extends the single-output Quine–McCluskey oracle ({!Qm}) with output
    parts: a multi-output prime is a pair (input cube, output set) where
    the cube is prime for the AND of the selected outputs' (on ∪ dc)
    functions and the output set is maximal. Minimum-cardinality covering
    is solved by branch-and-bound over the (minterm, output) incidence
    table.

    Exponential in inputs {e and} outputs — intended for ≤ 10 inputs and
    ≤ 5 outputs, as the optimality reference for the heuristic
    minimizer. *)

val prime_implicants : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cube.t list
(** All multi-output primes, output parts included. *)

val minimize : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** A minimum-cube-count prime cover of the on-set. *)

val minimum_cubes : ?dc:Logic.Cover.t -> Logic.Cover.t -> int
