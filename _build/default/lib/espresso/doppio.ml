module Cover = Logic.Cover
module Cube = Logic.Cube

type result = {
  positive : Cover.t;
  negative : Cover.t;
  choice : bool array;
  products_two_level : int;
  products_whirlpool : int;
}

(* Product terms used by output [o] inside a minimized multi-output cover. *)
let products_for cover o =
  List.length
    (List.filter (fun c -> Util.Bitvec.get (Cube.outputs c) o) (Cover.cubes cover))

let minimize ?dc f =
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  let dc = match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out in
  let pos = Minimize.cover ~dc f in
  let neg_on =
    (* ¬f per output, assembled into one multi-output cover. *)
    let parts = ref [] in
    for o = n_out - 1 downto 0 do
      let comp =
        Cover.complement_of_incompletely_specified (Cover.restrict_output f o)
          (Cover.restrict_output dc o)
      in
      let widen c =
        Cube.of_literals (List.init n_in (Cube.get c)) ~outs:(Util.Bitvec.of_list n_out [ o ])
      in
      parts := List.map widen (Cover.cubes comp) @ !parts
    done;
    Cover.make ~n_in ~n_out !parts
  in
  let neg = Minimize.cover ~dc neg_on in
  let choice =
    Array.init n_out (fun o -> products_for pos o <= products_for neg o)
  in
  (* Count each product term once if any choosing output uses it. *)
  let used cover keep =
    List.length
      (List.filter
         (fun c ->
           let outs = Cube.outputs c in
           List.exists (fun o -> keep o && Util.Bitvec.get outs o) (List.init n_out Fun.id))
         (Cover.cubes cover))
  in
  let products_whirlpool =
    used pos (fun o -> choice.(o)) + used neg (fun o -> not choice.(o))
  in
  {
    positive = pos;
    negative = neg;
    choice;
    products_two_level = Cover.size pos;
    products_whirlpool;
  }
