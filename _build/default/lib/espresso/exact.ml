module Cube = Logic.Cube
module Cover = Logic.Cover
module Tt = Logic.Truth_table

let check f =
  if Cover.num_inputs f > 10 then invalid_arg "Exact: too many inputs";
  if Cover.num_outputs f > 5 then invalid_arg "Exact: too many outputs";
  if Cover.num_outputs f < 1 then invalid_arg "Exact: no outputs"

(* (on ∪ dc) per output as minterm bitsets. *)
let care_sets f dc =
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  let tt_on = Tt.of_cover f and tt_dc = Tt.of_cover dc in
  Array.init n_out (fun o ->
      Array.init (1 lsl n_in) (fun m ->
          Tt.get tt_on ~minterm:m ~output:o || Tt.get tt_dc ~minterm:m ~output:o))

(* Single-output primes of an arbitrary minterm predicate, as
   (mask, value) implicants, reusing Qm through a minterm cover. *)
let primes_of_predicate n_in pred =
  let cubes = ref [] in
  for m = (1 lsl n_in) - 1 downto 0 do
    if pred m then begin
      let lits =
        List.init n_in (fun i -> if m land (1 lsl i) <> 0 then Cube.One else Cube.Zero)
      in
      cubes := Cube.of_literals lits ~outs:(Util.Bitvec.of_list 1 [ 0 ]) :: !cubes
    end
  done;
  if !cubes = [] then []
  else Cover.cubes (Qm.prime_implicants (Cover.make ~n_in ~n_out:1 !cubes))

let cube_minterms n_in c =
  List.filter
    (fun m -> Cube.matches c (Array.init n_in (fun i -> m land (1 lsl i) <> 0)))
    (List.init (1 lsl n_in) Fun.id)

let prime_implicants ?dc f =
  check f;
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  let dc = match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out in
  let care = care_sets f dc in
  let outputs_subsets =
    (* non-empty subsets of outputs, as bit masks *)
    List.filter (fun s -> s <> 0) (List.init (1 lsl n_out) Fun.id)
  in
  let widen c out_mask =
    let outs = Util.Bitvec.create n_out in
    for o = 0 to n_out - 1 do
      if out_mask land (1 lsl o) <> 0 then Util.Bitvec.set outs o true
    done;
    Cube.of_literals (List.init n_in (Cube.get c)) ~outs
  in
  let candidates =
    List.concat_map
      (fun out_mask ->
        let pred m =
          let rec ok o =
            o >= n_out || ((out_mask land (1 lsl o) = 0 || care.(o).(m)) && ok (o + 1))
          in
          ok 0
        in
        List.map (fun c -> (c, out_mask)) (primes_of_predicate n_in pred))
      outputs_subsets
  in
  (* Keep (c, O) only when O is maximal for c: no further output's care set
     contains c entirely. *)
  let maximal (c, out_mask) =
    let ms = cube_minterms n_in c in
    let rec check o =
      o >= n_out
      || ((out_mask land (1 lsl o) <> 0 || not (List.for_all (fun m -> care.(o).(m)) ms))
         && check (o + 1))
    in
    check 0
  in
  let kept = List.filter maximal candidates in
  (* Distinct multi-output primes (an input cube may appear once per
     maximal output set; dedupe exact duplicates). *)
  let widened = List.map (fun (c, om) -> widen c om) kept in
  List.sort_uniq Cube.compare widened

let minimize ?dc f =
  check f;
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  let dc = match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out in
  let primes = Array.of_list (prime_implicants ~dc f) in
  let tt_on = Tt.of_cover f in
  let tt_dc = Tt.of_cover dc in
  (* Required (minterm, output) pairs: in the on-set and not don't-care. *)
  let required = ref [] in
  for m = (1 lsl n_in) - 1 downto 0 do
    for o = n_out - 1 downto 0 do
      if Tt.get tt_on ~minterm:m ~output:o && not (Tt.get tt_dc ~minterm:m ~output:o) then
        required := (m, o) :: !required
    done
  done;
  let covers p (m, o) =
    Util.Bitvec.get (Cube.outputs p) o
    && Cube.matches p (Array.init n_in (fun i -> m land (1 lsl i) <> 0))
  in
  if !required = [] then Cover.empty ~n_in ~n_out
  else begin
    let np = Array.length primes in
    let best = ref None and best_size = ref max_int in
    (* Greedy upper bound. *)
    let greedy () =
      let uncovered = ref !required in
      let chosen = ref [] in
      while !uncovered <> [] do
        let bestj = ref 0 and bestg = ref (-1) in
        for j = 0 to np - 1 do
          let g = List.length (List.filter (covers primes.(j)) !uncovered) in
          if g > !bestg then begin
            bestg := g;
            bestj := j
          end
        done;
        chosen := !bestj :: !chosen;
        uncovered := List.filter (fun r -> not (covers primes.(!bestj) r)) !uncovered
      done;
      !chosen
    in
    let g = greedy () in
    best := Some g;
    best_size := List.length g;
    let table =
      List.sort
        (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
        (List.map
           (fun r -> (r, List.filter (fun j -> covers primes.(j) r) (List.init np Fun.id)))
           !required)
    in
    let rec bb chosen size remaining =
      if size >= !best_size then ()
      else
        match remaining with
        | [] ->
          best := Some chosen;
          best_size := size
        | (r, cands) :: rest ->
          if List.exists (fun j -> covers primes.(j) r) chosen then bb chosen size rest
          else List.iter (fun j -> bb (j :: chosen) (size + 1) rest) cands
    in
    bb [] 0 table;
    match !best with
    | None -> assert false
    | Some chosen ->
      let chosen = List.sort_uniq compare chosen in
      Cover.make ~n_in ~n_out (List.map (fun j -> primes.(j)) chosen)
  end

let minimum_cubes ?dc f = Cover.size (minimize ?dc f)
