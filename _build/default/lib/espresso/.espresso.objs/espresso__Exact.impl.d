lib/espresso/exact.ml: Array Fun List Logic Qm Util
