lib/espresso/qm.ml: Array Fun Hashtbl List Logic Set Util
