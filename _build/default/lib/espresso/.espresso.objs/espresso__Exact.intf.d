lib/espresso/exact.mli: Logic
