lib/espresso/qm.mli: Logic
