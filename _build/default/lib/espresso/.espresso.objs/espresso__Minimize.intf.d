lib/espresso/minimize.mli: Logic
