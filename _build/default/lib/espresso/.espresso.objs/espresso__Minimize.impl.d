lib/espresso/minimize.ml: Array Fun List Logic Util
