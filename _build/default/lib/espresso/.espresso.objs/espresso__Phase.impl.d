lib/espresso/phase.ml: Array List Logic Minimize Util
