lib/espresso/doppio.mli: Logic
