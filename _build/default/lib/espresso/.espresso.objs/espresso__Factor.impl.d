lib/espresso/factor.ml: Array Hashtbl List Logic Printf String
