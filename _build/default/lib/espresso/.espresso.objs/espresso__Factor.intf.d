lib/espresso/factor.mli: Logic
