lib/espresso/phase.mli: Logic
