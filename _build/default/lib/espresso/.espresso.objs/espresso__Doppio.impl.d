lib/espresso/doppio.ml: Array Fun List Logic Minimize Util
