module Cover = Logic.Cover
module Cube = Logic.Cube

type assignment = bool array

type result = {
  phases : assignment;
  cover : Cover.t;
  products_all_positive : int;
  products_optimized : int;
}

let apply_phases ?dc f phases =
  let n_in = Cover.num_inputs f and n_out = Cover.num_outputs f in
  if Array.length phases <> n_out then invalid_arg "Phase.apply_phases";
  let dc = match dc with Some d -> d | None -> Cover.empty ~n_in ~n_out in
  let parts = ref [] in
  for o = n_out - 1 downto 0 do
    let widen c =
      Cube.of_literals (List.init n_in (Cube.get c)) ~outs:(Util.Bitvec.of_list n_out [ o ])
    in
    let on_o = Cover.restrict_output f o in
    let chosen =
      if phases.(o) then on_o
      else
        (* Negative phase: on-set of ¬f_o is the complement of on ∪ dc
           (minterms that are certainly 0 in f_o). *)
        Cover.complement_of_incompletely_specified on_o (Cover.restrict_output dc o)
    in
    parts := List.map widen (Cover.cubes chosen) @ !parts
  done;
  Cover.make ~n_in ~n_out !parts

let optimize_exhaustive ?dc f =
  let n_out = Cover.num_outputs f in
  if n_out > 10 then invalid_arg "Phase.optimize_exhaustive: too many outputs";
  let minimize_for phases = Minimize.cover ?dc (apply_phases ?dc f phases) in
  let all_pos = Array.make n_out true in
  let base = minimize_for all_pos in
  let best_cover = ref base and best_phases = ref (Array.copy all_pos) in
  let best_size = ref (Cover.size base) in
  for mask = 1 to (1 lsl n_out) - 1 do
    let phases = Array.init n_out (fun o -> mask land (1 lsl o) = 0) in
    let m = minimize_for phases in
    if Cover.size m < !best_size then begin
      best_size := Cover.size m;
      best_cover := m;
      best_phases := phases
    end
  done;
  {
    phases = !best_phases;
    cover = !best_cover;
    products_all_positive = Cover.size base;
    products_optimized = !best_size;
  }

let optimize ?dc ?(max_rounds = 3) f =
  let n_out = Cover.num_outputs f in
  let minimize_for phases =
    Minimize.cover ?dc (apply_phases ?dc f phases)
  in
  let all_pos = Array.make n_out true in
  let base = minimize_for all_pos in
  let best_cover = ref base and best_phases = ref (Array.copy all_pos) in
  let best_size = ref (Cover.size base) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    for o = 0 to n_out - 1 do
      let cand = Array.copy !best_phases in
      cand.(o) <- not cand.(o);
      let m = minimize_for cand in
      if Cover.size m < !best_size then begin
        best_size := Cover.size m;
        best_cover := m;
        best_phases := cand;
        improved := true
      end
    done
  done;
  {
    phases = !best_phases;
    cover = !best_cover;
    products_all_positive = Cover.size base;
    products_optimized = !best_size;
  }
