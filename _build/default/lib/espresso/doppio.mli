(** Doppio-Espresso: joint minimization of a function and its complement
    for Whirlpool-PLA mapping (Brayton et al., ICCAD 2002).

    A Whirlpool PLA cascades four NOR planes in a ring; realizing output
    [o] requires a cover of either [f_o] or [¬f_o] in the first plane pair
    and its re-inversion in the second. Doppio-Espresso therefore minimizes
    both polarities of the function and selects, per output, the cheaper
    one; shared product terms are counted once. *)

type result = {
  positive : Logic.Cover.t;  (** minimized cover of f *)
  negative : Logic.Cover.t;  (** minimized cover of ¬f *)
  choice : bool array;  (** [choice.(o)] = use positive polarity for output o *)
  products_two_level : int;  (** plain espresso product count (baseline) *)
  products_whirlpool : int;  (** product terms used after per-output choice *)
}

val minimize : ?dc:Logic.Cover.t -> Logic.Cover.t -> result
