(** Exact two-level minimization (Quine–McCluskey + branch-and-bound
    covering) for {e single-output} functions of few inputs.

    Serves as an optimality oracle in tests and as the exact baseline in
    ablation benches. Complexity is exponential; intended for at most ~12
    inputs. *)

val prime_implicants : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** All prime implicants of the single-output function [on ∪ dc], by
    iterated merging of adjacent implicants. *)

val minimize : ?dc:Logic.Cover.t -> Logic.Cover.t -> Logic.Cover.t
(** Minimum-cardinality prime cover of the on-set (don't-cares may be used
    but need not be covered). Branch-and-bound on the covering table. *)

val minimum_size : ?dc:Logic.Cover.t -> Logic.Cover.t -> int
(** Size of a minimum prime cover. *)
