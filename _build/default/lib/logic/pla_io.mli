(** Reader/writer for the Berkeley espresso [.pla] exchange format.

    Supported directives: [.i], [.o], [.p] (advisory), [.ilb], [.ob],
    [.type] ([f], [fd], [fr], [fdr]), [.e]/[.end], comments ([#]). Cube
    lines use [0 1 -] for inputs and [0 1 - ~ 4] for outputs; [1] adds the
    minterm set to the on-set of that output, [-]/[~]/[4] to the don't-care
    set, [0] to neither. *)

type spec = {
  n_in : int;
  n_out : int;
  input_labels : string array option;
  output_labels : string array option;
  on_set : Cover.t;
  dc_set : Cover.t;
}

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> spec
(** Parse the full text of a [.pla] file. *)

val parse_file : string -> spec
(** Read and parse a file from disk. *)

val to_string : ?input_labels:string array -> ?output_labels:string array -> on_set:Cover.t -> dc_set:Cover.t -> unit -> string
(** Render a [.pla] file (type [fd]; the dc-set may be empty). *)

val write_file : string -> spec -> unit

val spec_of_cover : Cover.t -> spec
(** Wrap a cover as a spec with an empty don't-care set. *)
