(** Boolean expression AST.

    A convenient front end for building functions in examples and tests;
    converted to covers (sum-of-products) through cover algebra, or
    evaluated directly. Variables are input indices. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

val v : int -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( ^^ ) : t -> t -> t
val not_ : t -> t

val eval : t -> bool array -> bool

val max_var : t -> int
(** Largest variable index occurring, or [-1] for a constant expression. *)

val to_cover : n_in:int -> t -> Cover.t
(** Single-output sum-of-products cover of the expression over [n_in]
    inputs (all variable indices must be < [n_in]). *)

val to_cover_multi : n_in:int -> t list -> Cover.t
(** Multi-output cover; expression [i] drives output [i]. *)

val majority3 : t -> t -> t -> t

val mux : sel:t -> t -> t -> t
(** [mux ~sel a b] is [a] when [sel] is false, [b] when [sel] is true. *)

val parity : t list -> t

val pp : Format.formatter -> t -> unit
