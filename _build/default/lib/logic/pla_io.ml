type spec = {
  n_in : int;
  n_out : int;
  input_labels : string array option;
  output_labels : string array option;
  on_set : Cover.t;
  dc_set : Cover.t;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

type raw_line = { lineno : int; ins : string; outs : string }

let parse text =
  let lines = String.split_on_char '\n' text in
  let n_in = ref None and n_out = ref None in
  let ilb = ref None and ob = ref None in
  let raw = ref [] in
  let handle_cube_line lineno words =
    match words with
    | [ ins; outs ] -> raw := { lineno; ins; outs } :: !raw
    | [ single ] ->
      (* Allow "110-1 1" written without space only when arities known. *)
      (match (!n_in, !n_out) with
      | Some ni, Some no when String.length single = ni + no ->
        raw :=
          { lineno; ins = String.sub single 0 ni; outs = String.sub single ni no } :: !raw
      | _ -> fail lineno "cube line %S needs input and output fields" single)
    | _ -> fail lineno "malformed cube line"
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = strip_comment line in
      match split_ws line with
      | [] -> ()
      | word :: rest when String.length word > 0 && word.[0] = '.' -> (
        match (word, rest) with
        | ".i", [ n ] -> n_in := Some (int_of_string n)
        | ".o", [ n ] -> n_out := Some (int_of_string n)
        | ".p", [ _ ] -> ()
        | ".ilb", labels -> ilb := Some (Array.of_list labels)
        | ".ob", labels -> ob := Some (Array.of_list labels)
        | ".type", [ ("f" | "fd" | "fr" | "fdr") ] -> ()
        | ".type", [ ty ] -> fail lineno "unsupported .type %s" ty
        | (".e" | ".end"), _ -> ()
        | ".phase", _ | ".pair", _ | ".symbolic", _ ->
          fail lineno "unsupported directive %s" word
        | _, _ -> fail lineno "unknown directive %s" word)
      | words -> handle_cube_line lineno words)
    lines;
  let n_in =
    match !n_in with Some n -> n | None -> fail 0 ".i missing"
  in
  let n_out =
    match !n_out with Some n -> n | None -> fail 0 ".o missing"
  in
  let on = ref [] and dc = ref [] in
  let parse_cube { lineno; ins; outs } =
    if String.length ins <> n_in then fail lineno "input field has %d chars, expected %d" (String.length ins) n_in;
    if String.length outs <> n_out then
      fail lineno "output field has %d chars, expected %d" (String.length outs) n_out;
    let lits =
      List.init n_in (fun i ->
          match ins.[i] with
          | '0' -> Cube.Zero
          | '1' -> Cube.One
          | '-' | '2' | 'x' | 'X' -> Cube.Dc
          | c -> fail lineno "bad input character %C" c)
    in
    let on_outs = Util.Bitvec.create n_out and dc_outs = Util.Bitvec.create n_out in
    String.iteri
      (fun o c ->
        match c with
        | '1' -> Util.Bitvec.set on_outs o true
        | '0' -> ()
        | '-' | '~' | '4' | '2' -> Util.Bitvec.set dc_outs o true
        | c -> fail lineno "bad output character %C" c)
      outs;
    if not (Util.Bitvec.is_empty on_outs) then
      on := Cube.of_literals lits ~outs:on_outs :: !on;
    if not (Util.Bitvec.is_empty dc_outs) then
      dc := Cube.of_literals lits ~outs:dc_outs :: !dc
  in
  List.iter parse_cube (List.rev !raw);
  {
    n_in;
    n_out;
    input_labels = !ilb;
    output_labels = !ob;
    on_set = Cover.make ~n_in ~n_out !on;
    dc_set = Cover.make ~n_in ~n_out !dc;
  }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string ?input_labels ?output_labels ~on_set ~dc_set () =
  let n_in = Cover.num_inputs on_set and n_out = Cover.num_outputs on_set in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf ".i %d\n.o %d\n" n_in n_out;
  (match input_labels with
  | Some ls -> Printf.bprintf buf ".ilb %s\n" (String.concat " " (Array.to_list ls))
  | None -> ());
  (match output_labels with
  | Some ls -> Printf.bprintf buf ".ob %s\n" (String.concat " " (Array.to_list ls))
  | None -> ());
  Printf.bprintf buf ".p %d\n" (Cover.size on_set + Cover.size dc_set);
  let emit marker c =
    let outs = Cube.outputs c in
    for i = 0 to n_in - 1 do
      Buffer.add_char buf
        (match Cube.get c i with Cube.Zero -> '0' | Cube.One -> '1' | Cube.Dc -> '-')
    done;
    Buffer.add_char buf ' ';
    for o = 0 to n_out - 1 do
      Buffer.add_char buf (if Util.Bitvec.get outs o then marker else '0')
    done;
    Buffer.add_char buf '\n'
  in
  List.iter (emit '1') (Cover.cubes on_set);
  List.iter (emit '-') (Cover.cubes dc_set);
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let write_file path spec =
  let oc = open_out path in
  output_string oc
    (to_string ?input_labels:spec.input_labels ?output_labels:spec.output_labels
       ~on_set:spec.on_set ~dc_set:spec.dc_set ());
  close_out oc

let spec_of_cover on_set =
  {
    n_in = Cover.num_inputs on_set;
    n_out = Cover.num_outputs on_set;
    input_labels = None;
    output_labels = None;
    on_set;
    dc_set = Cover.empty ~n_in:(Cover.num_inputs on_set) ~n_out:(Cover.num_outputs on_set);
  }
