lib/logic/bdd.ml: Array Cover Cube Hashtbl List Util
