lib/logic/cover.ml: Array Cube Format List String Util
