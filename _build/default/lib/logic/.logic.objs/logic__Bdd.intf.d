lib/logic/bdd.mli: Cover Cube
