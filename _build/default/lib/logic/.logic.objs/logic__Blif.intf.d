lib/logic/blif.mli: Cover
