lib/logic/blif.ml: Array Buffer Cover Cube Hashtbl List Printf String Truth_table Util
