lib/logic/cube.mli: Format Util
