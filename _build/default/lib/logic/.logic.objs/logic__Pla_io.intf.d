lib/logic/pla_io.mli: Cover
