lib/logic/pla_io.ml: Array Buffer Cover Cube List Printf String Util
