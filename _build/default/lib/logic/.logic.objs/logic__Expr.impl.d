lib/logic/expr.ml: Array Cover Cube Format List Stdlib Util
