lib/logic/truth_table.ml: Array Cover Cube Format List Util
