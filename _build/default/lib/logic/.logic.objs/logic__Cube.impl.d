lib/logic/cube.ml: Array Buffer Bytes Char Format Hashtbl List Printf Util
