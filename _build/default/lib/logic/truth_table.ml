type t = { n_in : int; n_out : int; bits : Util.Bitvec.t array }

let max_inputs = 20

let create ~n_in ~n_out =
  if n_in < 0 || n_in > max_inputs then invalid_arg "Truth_table.create: bad n_in";
  { n_in; n_out; bits = Array.init n_out (fun _ -> Util.Bitvec.create (1 lsl n_in)) }

let num_inputs t = t.n_in
let num_outputs t = t.n_out

let get t ~minterm ~output = Util.Bitvec.get t.bits.(output) minterm

let set t ~minterm ~output b = Util.Bitvec.set t.bits.(output) minterm b

let assignment_of_minterm n_in m = Array.init n_in (fun i -> m land (1 lsl i) <> 0)

let of_cover cover =
  let n_in = Cover.num_inputs cover and n_out = Cover.num_outputs cover in
  let t = create ~n_in ~n_out in
  for m = 0 to (1 lsl n_in) - 1 do
    let outs = Cover.eval cover (assignment_of_minterm n_in m) in
    Util.Bitvec.iter_set (fun o -> set t ~minterm:m ~output:o true) outs
  done;
  t

let of_fun ~n_in ~n_out f =
  let t = create ~n_in ~n_out in
  for m = 0 to (1 lsl n_in) - 1 do
    let a = assignment_of_minterm n_in m in
    for o = 0 to n_out - 1 do
      if f a o then set t ~minterm:m ~output:o true
    done
  done;
  t

let equal a b =
  a.n_in = b.n_in && a.n_out = b.n_out
  && Array.for_all2 Util.Bitvec.equal a.bits b.bits

let ones t ~output = Util.Bitvec.pop_count t.bits.(output)

let to_minterm_cover t =
  let acc = ref [] in
  for m = (1 lsl t.n_in) - 1 downto 0 do
    let outs = Util.Bitvec.create t.n_out in
    let any = ref false in
    for o = 0 to t.n_out - 1 do
      if get t ~minterm:m ~output:o then begin
        Util.Bitvec.set outs o true;
        any := true
      end
    done;
    if !any then begin
      let lits =
        List.init t.n_in (fun i -> if m land (1 lsl i) <> 0 then Cube.One else Cube.Zero)
      in
      acc := Cube.of_literals lits ~outs :: !acc
    end
  done;
  Cover.make ~n_in:t.n_in ~n_out:t.n_out !acc

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for m = 0 to (1 lsl t.n_in) - 1 do
    Format.fprintf fmt "%*d:" 4 m;
    for o = 0 to t.n_out - 1 do
      Format.pp_print_char fmt (if get t ~minterm:m ~output:o then '1' else '0')
    done;
    Format.pp_print_cut fmt ()
  done;
  Format.fprintf fmt "@]"
