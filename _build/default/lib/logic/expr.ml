type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let v i = Var i
let ( && ) a b = And [ a; b ]
let ( || ) a b = Or [ a; b ]
let ( ^^ ) a b = Xor (a, b)
let not_ a = Not a

let rec eval e env =
  match e with
  | Const b -> b
  | Var i -> env.(i)
  | Not a -> Stdlib.not (eval a env)
  | And es -> List.for_all (fun a -> eval a env) es
  | Or es -> List.exists (fun a -> eval a env) es
  | Xor (a, b) -> Stdlib.( <> ) (eval a env) (eval b env)

let rec max_var = function
  | Const _ -> -1
  | Var i -> i
  | Not a -> max_var a
  | And es | Or es -> List.fold_left (fun m a -> max (max_var a) m) (-1) es
  | Xor (a, b) -> max (max_var a) (max_var b)

(* Cover algebra on single-output covers: OR is cube union, AND is pairwise
   intersection, NOT is unate-recursive complement. *)
let to_cover ~n_in e =
  if max_var e >= n_in then invalid_arg "Expr.to_cover: variable out of range";
  let out1 = Util.Bitvec.of_list 1 [ 0 ] in
  let universe = Cover.make ~n_in ~n_out:1 [ Cube.universe ~n_in ~n_out:1 ] in
  let none = Cover.empty ~n_in ~n_out:1 in
  let rec go = function
    | Const true -> universe
    | Const false -> none
    | Var i ->
      Cover.make ~n_in ~n_out:1 [ Cube.set (Cube.universe ~n_in ~n_out:1) i Cube.One ]
    | Not a -> Cover.complement (go a)
    | Or es ->
      Cover.single_cube_containment
        (List.fold_left (fun acc a -> Cover.union acc (go a)) none es)
    | And es ->
      let product f g =
        let cs =
          List.concat_map
            (fun c -> List.filter_map (fun d -> Cube.intersect c d) (Cover.cubes g))
            (Cover.cubes f)
        in
        Cover.single_cube_containment (Cover.make ~n_in ~n_out:1 cs)
      in
      List.fold_left (fun acc a -> product acc (go a)) universe es
    | Xor (a, b) -> go (Or [ And [ a; Not b ]; And [ Not a; b ] ])
  in
  let c = go e in
  Cover.make ~n_in ~n_out:1 (List.map (fun c -> Cube.with_outputs c out1) (Cover.cubes c))

let to_cover_multi ~n_in exprs =
  let n_out = List.length exprs in
  let widen o c =
    Cube.of_literals (List.init n_in (Cube.get c)) ~outs:(Util.Bitvec.of_list n_out [ o ])
  in
  let cubes =
    List.concat (List.mapi (fun o e -> List.map (widen o) (Cover.cubes (to_cover ~n_in e))) exprs)
  in
  Cover.make ~n_in ~n_out cubes

let majority3 a b c = Or [ And [ a; b ]; And [ a; c ]; And [ b; c ] ]

let mux ~sel a b = Or [ And [ Not sel; a ]; And [ sel; b ] ]

let parity = function
  | [] -> Const false
  | e :: es -> List.fold_left (fun acc a -> Xor (acc, a)) e es

let rec pp fmt = function
  | Const b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Var i -> Format.fprintf fmt "x%d" i
  | Not a -> Format.fprintf fmt "!%a" pp_atom a
  | And es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " & ") pp)
      es
  | Or es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " | ") pp)
      es
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp a pp b

and pp_atom fmt e =
  match e with
  | Const _ | Var _ -> pp fmt e
  | Not _ | And _ | Or _ | Xor _ -> Format.fprintf fmt "(%a)" pp e
