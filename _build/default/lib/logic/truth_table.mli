(** Explicit truth tables for small multi-output functions.

    The table stores one bit per (minterm, output) pair; minterm index [m]
    encodes input [i] in bit [i] of [m]. Intended as an exact oracle for
    testing and for functions of at most ~20 inputs. *)

type t

val create : n_in:int -> n_out:int -> t
(** All-zero function. *)

val num_inputs : t -> int

val num_outputs : t -> int

val get : t -> minterm:int -> output:int -> bool

val set : t -> minterm:int -> output:int -> bool -> unit

val of_cover : Cover.t -> t
(** Exact evaluation of a cover (raises [Invalid_argument] above 20
    inputs). *)

val of_fun : n_in:int -> n_out:int -> (bool array -> int -> bool) -> t
(** [of_fun ~n_in ~n_out f] tabulates [f assignment output]. *)

val equal : t -> t -> bool

val ones : t -> output:int -> int
(** Number of on-set minterms of one output. *)

val to_minterm_cover : t -> Cover.t
(** Canonical sum-of-minterms cover. *)

val pp : Format.formatter -> t -> unit
