(** Berkeley Logic Interchange Format (BLIF) reader/writer — the common
    exchange format of academic synthesis tools (SIS, ABC, VPR).

    Supported subset: one [.model] with [.inputs], [.outputs] and
    combinational [.names] tables (1-terminated rows; [.names] with no
    rows is constant 0, a single empty row is constant 1). No latches,
    no subcircuits. Line continuations ([\\]) and [#] comments are
    handled. *)

type t = {
  name : string;
  inputs : string array;
  outputs : string array;
  tables : (string * Cover.t * string array) list;
      (** (signal defined, single-output cover, input signal names) in
          file order *)
}

exception Parse_error of int * string

val parse : string -> t

val parse_file : string -> t

val to_string : t -> string

val write_file : string -> t -> unit

val of_cover : name:string -> Cover.t -> t
(** Flat export: one [.names] per output over the primary inputs, signals
    named [x0..] / [y0..]. *)

val to_cover : t -> Cover.t
(** Flatten a (possibly multi-level) BLIF back to a two-level cover over
    its primary inputs by evaluating table by table (inputs ≤ 20). *)

val eval : t -> bool array -> bool array
(** Evaluate the network (tables must be in dependency order, as this
    module writes them). *)
