type t = { n_in : int; n_out : int; cubes : Cube.t list }

let check_arity t c =
  if Cube.num_inputs c <> t.n_in || Cube.num_outputs c <> t.n_out then
    invalid_arg "Cover: cube arity mismatch"

let make ~n_in ~n_out cubes =
  let t = { n_in; n_out; cubes } in
  List.iter (check_arity t) cubes;
  t

let empty ~n_in ~n_out = { n_in; n_out; cubes = [] }

let num_inputs t = t.n_in
let num_outputs t = t.n_out
let cubes t = t.cubes
let size t = List.length t.cubes
let is_empty t = t.cubes = []

let literal_total t =
  List.fold_left (fun acc c -> acc + Cube.literal_count c) 0 t.cubes

let add t c =
  check_arity t c;
  { t with cubes = c :: t.cubes }

let union a b =
  if a.n_in <> b.n_in || a.n_out <> b.n_out then invalid_arg "Cover.union: arity mismatch";
  { a with cubes = a.cubes @ b.cubes }

let equal_as_sets a b =
  let mem c cs = List.exists (Cube.equal c) cs in
  a.n_in = b.n_in && a.n_out = b.n_out
  && List.for_all (fun c -> mem c b.cubes) a.cubes
  && List.for_all (fun c -> mem c a.cubes) b.cubes

let single_cube_containment t =
  (* Keep a cube only if no *other* kept-or-later cube strictly contains it;
     among equal cubes keep the first occurrence. *)
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let contained_elsewhere =
        List.exists (fun d -> Cube.contains d c) rest
        || List.exists (fun d -> Cube.contains d c) kept
      in
      if contained_elsewhere then go kept rest else go (c :: kept) rest
  in
  { t with cubes = go [] t.cubes }

let eval t minterm =
  let acc = Util.Bitvec.create t.n_out in
  List.iter
    (fun c -> if Cube.matches c minterm then Util.Bitvec.union_inplace acc (Cube.outputs c))
    t.cubes;
  acc

let restrict_output t o =
  let on = Util.Bitvec.of_list 1 [ 0 ] in
  let keep c =
    if Util.Bitvec.get (Cube.outputs c) o then Some (Cube.with_outputs c on) else None
  in
  { n_in = t.n_in; n_out = 1; cubes = List.filter_map keep t.cubes }

let cofactor_cube t ~by =
  { t with cubes = List.filter_map (fun c -> Cube.cofactor c ~by) t.cubes }

let cofactor_var t i lit =
  (match lit with
  | Cube.Dc -> invalid_arg "Cover.cofactor_var: Dc"
  | Cube.Zero | Cube.One -> ());
  let p = Cube.set (Cube.universe ~n_in:t.n_in ~n_out:t.n_out) i lit in
  cofactor_cube t ~by:p

(* --- Unate recursive paradigm ------------------------------------------- *)

(* A cube's input part is "all don't care" iff it imposes no input
   constraint; with a full output part it covers the whole space. The
   recursions below work on covers whose output parts are already full
   (guaranteed by entry points that cofactor per output). *)

let input_universe c =
  let n = Cube.num_inputs c in
  let rec go i = i >= n || (Cube.raw_get c i = 3 && go (i + 1)) in
  go 0

(* Most binate variable: maximise the number of cubes in which the variable
   appears; tie-break on balance between 0- and 1-phase occurrences. Returns
   None when the cover is unate in every variable that appears. *)
let most_binate_var t =
  let zeros = Array.make t.n_in 0 and ones = Array.make t.n_in 0 in
  List.iter
    (fun c ->
      for i = 0 to t.n_in - 1 do
        match Cube.raw_get c i with
        | 1 -> zeros.(i) <- zeros.(i) + 1
        | 2 -> ones.(i) <- ones.(i) + 1
        | _ -> ()
      done)
    t.cubes;
  let best = ref None in
  for i = 0 to t.n_in - 1 do
    if zeros.(i) > 0 && ones.(i) > 0 then begin
      let score = (zeros.(i) + ones.(i), -abs (zeros.(i) - ones.(i))) in
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (i, score)
    end
  done;
  match !best with Some (i, _) -> Some i | None -> None

(* Any variable that actually appears (used when the cover is unate but we
   still want to recurse — not needed for tautology thanks to the unate leaf
   rule, but kept for the complement). *)
let any_active_var t =
  let active i =
    List.exists (fun c -> Cube.raw_get c i <> 3) t.cubes
  in
  let rec go i = if i >= t.n_in then None else if active i then Some i else go (i + 1) in
  go 0

let rec tautology_inputs t =
  if List.exists input_universe t.cubes then true
  else if t.cubes = [] then false
  else
    match most_binate_var t with
    | None ->
      (* Unate cover: tautology iff it contains the universal cube, which we
         already checked. *)
      false
    | Some j ->
      tautology_inputs (cofactor_var t j Cube.Zero)
      && tautology_inputs (cofactor_var t j Cube.One)

let tautology t =
  if t.n_out = 0 then true
  else
    let rec go o =
      o >= t.n_out
      || (tautology_inputs (restrict_output t o) && go (o + 1))
    in
    go 0

let covers_cube t c =
  check_arity t c;
  let outs = Cube.outputs c in
  let rec check_output o =
    if o >= t.n_out then true
    else if not (Util.Bitvec.get outs o) then check_output (o + 1)
    else
      let fo = restrict_output t o in
      let single = Cube.with_outputs c (Util.Bitvec.of_list 1 [ 0 ]) in
      tautology_inputs (cofactor_cube fo ~by:single) && check_output (o + 1)
  in
  check_output 0

let covers t g = List.for_all (covers_cube t) g.cubes

let equivalent a b = covers a b && covers b a

(* Complement of a single-output cover (output parts assumed full width 1),
   by unate recursion: ¬F = x'·¬F_{x'} ∪ x·¬F_x, merged with the branch
   literal. Base cases: empty cover → universe; cover containing the
   universal cube → empty; single cube → De Morgan. *)
let complement_single t =
  let out1 = Util.Bitvec.of_list 1 [ 0 ] in
  let universe = Cube.universe ~n_in:t.n_in ~n_out:1 in
  let demorgan c =
    let acc = ref [] in
    for i = 0 to t.n_in - 1 do
      match Cube.raw_get c i with
      | 3 -> ()
      | v ->
        (* flip within the 2-bit domain *)
        let flipped = lnot v land 3 in
        acc := Cube.raw_set universe i flipped :: !acc
    done;
    !acc
  in
  let rec go t =
    if List.exists input_universe t.cubes then []
    else
      match t.cubes with
      | [] -> [ universe ]
      | [ c ] -> demorgan c
      | _ ->
        let j =
          match most_binate_var t with
          | Some j -> j
          | None -> (
            match any_active_var t with
            | Some j -> j
            | None -> assert false (* some cube would be the universe *))
        in
        let left = go (cofactor_var t j Cube.Zero) in
        let right = go (cofactor_var t j Cube.One) in
        List.map (fun c -> Cube.set c j Cube.Zero) left
        @ List.map (fun c -> Cube.set c j Cube.One) right
  in
  let cubes = go t in
  single_cube_containment { n_in = t.n_in; n_out = 1; cubes = List.map (fun c -> Cube.with_outputs c out1) cubes }

let complement t =
  if t.n_out = 0 then { t with cubes = [] }
  else begin
    let parts = ref [] in
    for o = t.n_out - 1 downto 0 do
      let single = complement_single (restrict_output t o) in
      let widen c =
        let outs = Util.Bitvec.of_list t.n_out [ o ] in
        Cube.of_literals (List.init t.n_in (Cube.get c)) ~outs
      in
      parts := List.map widen (cubes single) @ !parts
    done;
    { t with cubes = !parts }
  end

let sharp a b =
  if a.n_in <> b.n_in || a.n_out <> b.n_out then invalid_arg "Cover.sharp: arity mismatch";
  let nb = complement b in
  let cubes =
    List.concat_map
      (fun c -> List.filter_map (fun d -> Cube.intersect c d) nb.cubes)
      a.cubes
  in
  single_cube_containment { a with cubes }

let complement_of_incompletely_specified on dc = complement (union on dc)

let minterms t =
  if t.n_in > 24 then invalid_arg "Cover.minterms: too many inputs";
  let total = 1 lsl t.n_in in
  let acc = ref [] in
  let minterm_cube idx o =
    let lits =
      List.init t.n_in (fun i -> if idx land (1 lsl i) <> 0 then Cube.One else Cube.Zero)
    in
    Cube.of_literals lits ~outs:(Util.Bitvec.of_list t.n_out [ o ])
  in
  for idx = total - 1 downto 0 do
    let assignment = Array.init t.n_in (fun i -> idx land (1 lsl i) <> 0) in
    let outs = eval t assignment in
    Util.Bitvec.iter_set (fun o -> acc := minterm_cube idx o :: !acc) outs
  done;
  { t with cubes = !acc }

let random rng ~n_in ~n_out ~n_cubes ~dc_bias =
  let cube () =
    let lits =
      List.init n_in (fun _ ->
          if Util.Rng.bernoulli rng dc_bias then Cube.Dc
          else if Util.Rng.bool rng then Cube.One
          else Cube.Zero)
    in
    let outs = Util.Bitvec.create n_out in
    Util.Bitvec.set outs (Util.Rng.int rng n_out) true;
    for o = 0 to n_out - 1 do
      if Util.Rng.bernoulli rng (1.0 /. float_of_int (2 * n_out)) then
        Util.Bitvec.set outs o true
    done;
    Cube.of_literals lits ~outs
  in
  { n_in; n_out; cubes = List.init n_cubes (fun _ -> cube ()) }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun c -> Format.fprintf fmt "%a@," Cube.pp c) t.cubes;
  Format.fprintf fmt "@]"

let to_string t = String.concat "\n" (List.map Cube.to_string t.cubes)
